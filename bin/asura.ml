(* asura: the push-button command-line front end (paper section 1:
   "The approach is used in a push-button manner").

   Subcommands mirror the development flow: generate the controller
   tables, check invariants, check for deadlocks, map D to implementation
   tables, emit code, run the simulator scenarios, and run the
   explicit-state baseline. *)

open Cmdliner

(* ---------------------- observability & logging ----------------------- *)

(* Every subcommand takes the same setup term: -v/-q (Logs verbosity),
   --trace FILE (Chrome trace-event export), --stats (span/metric
   summary on stderr), --domains N (parallelism degree), --progress
   (live heartbeat), --manifest [DIR] (persistent run manifest) and
   --log-file PATH (redirect logs + heartbeats).  Tracing and manifest
   output are finalized in at_exit hooks so commands that exit 1 on a
   failed verdict still write them. *)

let obs_setup level trace_file stats domains log_file progress manifest =
  Fmt_tty.setup_std_outputs ();
  (match log_file with
  | None -> Logs.set_reporter (Logs_fmt.reporter ())
  | Some path ->
      (* Logs and Runlog heartbeats both go to the file; stdout stays
         untouched for machine-parseable command output. *)
      let oc = open_out path in
      at_exit (fun () -> try close_out oc with Sys_error _ -> ());
      Obs.Runlog.set_sink oc;
      let fmt = Format.formatter_of_out_channel oc in
      Logs.set_reporter (Logs.format_reporter ~app:fmt ~dst:fmt ()));
  Logs.set_level level;
  Option.iter Par.Pool.set_domains domains;
  if progress then begin
    Obs.Coverage.enable ();
    Obs.Runlog.enable_progress ()
  end;
  (match manifest with
  | None -> ()
  | Some dir ->
      (* Manifests embed the coverage summary and a metrics snapshot, so
         arm both collectors.  They also embed the flight-recorder drain,
         and an interrupted run is exactly when that evidence matters —
         turn SIGINT/SIGTERM into orderly exits so the at_exit write
         below still happens. *)
      Obs.Coverage.enable ();
      Obs.Config.enable ();
      Obs.Flightrec.arm_signal_drain ();
      let cmd = if Array.length Sys.argv > 1 then Sys.argv.(1) else "run" in
      Obs.Runlog.configure ~dir ~cmd ~argv:Sys.argv;
      Obs.Runlog.note "domains" (Obs.Json.Int (Par.Pool.domains ()));
      at_exit (fun () ->
          match Obs.Runlog.write () with
          | Some path ->
              Printf.fprintf (Obs.Runlog.sink ()) "wrote run manifest to %s\n%!"
                path
          | None -> ()));
  if trace_file <> None || stats then begin
    Obs.Config.enable ();
    at_exit (fun () ->
        (match trace_file with
        | Some file -> (
            try
              Obs.Trace.save file;
              Logs.app (fun m ->
                  m "wrote Chrome trace (%d events) to %s; load it in \
                     chrome://tracing or https://ui.perfetto.dev"
                    (List.length (Obs.Trace.events ()))
                    file)
            with Sys_error msg ->
              Logs.err (fun m -> m "could not write trace: %s" msg))
        | None -> ());
        if stats then prerr_string (Obs.Report.render ()))
  end

let setup_term =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record monotonic-clock spans of every pipeline stage and \
             write them as a Chrome trace-event JSON file (viewable in \
             chrome://tracing or Perfetto).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print a span roll-up and all subsystem metric registries \
             (solver pruning, join cardinalities, model-checker frontier, \
             simulator queues) to standard error on exit.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N" ~env:(Cmd.Env.info "ASURA_DOMAINS")
          ~doc:
            "Number of OCaml domains to spread table generation, \
             dependency composition and model-checker frontier expansion \
             across.  1 (the default) runs the original sequential code \
             paths; results are identical at every setting.")
  in
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-file" ] ~docv:"PATH"
          ~doc:
            "Redirect log output and $(b,--progress) heartbeats to this \
             file instead of standard error, keeping standard output \
             machine-parseable.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Print a live heartbeat (states explored, frontier size, \
             states/sec, transition coverage, ETA) to standard error \
             while long-running commands work.  Also enables transition \
             coverage collection.")
  in
  let manifest =
    Arg.(
      value
      & opt ~vopt:(Some "runs") (some string) None
      & info [ "manifest" ] ~docv:"DIR"
          ~doc:
            "Write a persistent run manifest (schema asura-run/1: argv, \
             git revision, wall time, transition coverage, metrics \
             snapshot) into $(docv) on exit (default $(b,runs)).  \
             Aggregate manifests later with $(b,asura report).")
  in
  Term.(
    const obs_setup $ Logs_cli.level () $ trace_file $ stats $ domains
    $ log_file $ progress $ manifest)

let list_tables () =
  List.iter
    (fun c ->
      let t = Protocol.Ctrl_spec.table c.Protocol.spec in
      Printf.printf "%-6s %6d rows  %3d columns\n" (Relalg.Table.name t)
        (Relalg.Table.cardinality t) (Relalg.Table.arity t))
    Protocol.controllers

let show_table name constraints_only =
  match Protocol.find name with
  | None ->
      Printf.eprintf "unknown controller %s (try: D M C N RAC IO PIF LK)\n" name;
      exit 1
  | Some c ->
      if constraints_only then
        print_string (Protocol.Ctrl_spec.constraints_listing c.Protocol.spec)
      else
        print_string
          (Relalg.Table.to_string (Protocol.Ctrl_spec.table c.Protocol.spec))

(* ---------------------------- generate ------------------------------- *)

let generate_cmd =
  let table =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "table" ] ~docv:"NAME"
          ~doc:"Print one generated controller table in full.")
  in
  let constraints =
    Arg.(
      value & flag
      & info [ "c"; "constraints" ]
          ~doc:"Print the column constraints instead of the rows.")
  in
  let run () table constraints =
    match table with
    | None -> list_tables ()
    | Some name -> show_table name constraints
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generate the eight controller tables from their column \
          constraints (paper section 3).")
    Term.(const run $ setup_term $ table $ constraints)

(* ---------------------------- invariants ----------------------------- *)

let invariants_cmd =
  let verbose =
    Arg.(
      value & flag
      & info [ "a"; "all" ] ~doc:"Print every invariant, not only failures.")
  in
  let run () verbose =
    let db = Protocol.database () in
    let results = Checker.Invariant.run_all db in
    let failures = Checker.Invariant.failures results in
    if verbose then print_string (Checker.Invariant.summary results)
    else begin
      List.iter
        (fun (r : Checker.Invariant.result) ->
          Printf.printf "FAIL %s: %s\n%s" r.invariant.id
            r.invariant.description
            (Relalg.Table.to_string r.violations))
        failures;
      Printf.printf "%d invariants checked, %d failed\n" (List.length results)
        (List.length failures)
    end;
    if failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "invariants"
       ~doc:"Check all protocol invariants with SQL (paper section 4.3).")
    Term.(const run $ setup_term $ verbose)

(* ----------------------------- deadlock ------------------------------ *)

let assignment_conv =
  let parse = function
    | "initial" -> Ok Checker.Vcassign.initial
    | "vc4" -> Ok Checker.Vcassign.with_vc4
    | "debugged" -> Ok Checker.Vcassign.debugged
    | s -> Error (`Msg ("unknown assignment " ^ s ^ " (initial|vc4|debugged)"))
  in
  Arg.conv (parse, fun fmt v -> Format.pp_print_string fmt v.Checker.Vcassign.name)

(* Like [assignment_conv] but also accepts a CSV file (columns m,s,d,v),
   so externally-edited channel assignments can be analyzed directly. *)
let assignment_or_csv_conv =
  let parse = function
    | "initial" -> Ok Checker.Vcassign.initial
    | "vc4" -> Ok Checker.Vcassign.with_vc4
    | "debugged" -> Ok Checker.Vcassign.debugged
    | path when Sys.file_exists path -> (
        try
          Ok
            (Checker.Vcassign.of_table
               (Relalg.Csv.load
                  ~name:(Filename.remove_extension (Filename.basename path))
                  ~filename:path))
        with Relalg.Csv.Csv_error { line; message } ->
          Error (`Msg (Printf.sprintf "%s: line %d: %s" path line message)))
    | s ->
        Error
          (`Msg
             ("unknown assignment " ^ s
            ^ " (initial|vc4|debugged, or a CSV file with columns m,s,d,v)"))
  in
  Arg.conv
    (parse, fun fmt v -> Format.pp_print_string fmt v.Checker.Vcassign.name)

let deadlock_cmd =
  let assignment =
    Arg.(
      value
      & opt assignment_conv Checker.Vcassign.debugged
      & info [ "a"; "assignment" ] ~docv:"ASSIGNMENT"
          ~doc:
            "Virtual-channel assignment: $(b,initial) (VC0-VC3), $(b,vc4) \
             (the paper's Figure 4 setup) or $(b,debugged) (the fix).")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ] ~doc:"Emit the VCG in Graphviz format instead.")
  in
  let narrative =
    Arg.(
      value & flag
      & info [ "narrative" ]
          ~doc:"Run all three assignments in the paper's order.")
  in
  let run () assignment dot narrative =
    if narrative then
      List.iter
        (fun (desc, r) ->
          Printf.printf "=== %s ===\n%s\n" desc (Checker.Deadlock.summary r))
        (Checker.Deadlock.narrative ())
    else
      let r = Checker.Deadlock.analyze assignment in
      if dot then print_string (Checker.Vcg.to_dot r.Checker.Deadlock.vcg)
      else print_string (Checker.Deadlock.summary r);
      if not (Checker.Deadlock.is_deadlock_free r) then exit 1
  in
  Cmd.v
    (Cmd.info "deadlock"
       ~doc:
         "Build the virtual-channel dependency graph and report cycles \
          (paper sections 4.1-4.2).")
    Term.(const run $ setup_term $ assignment $ dot $ narrative)

(* -------------------------------- why -------------------------------- *)

(* Populate the live rings with the paper's Figure-4 drama: replay the
   scenario through the queue-accurate simulator, whose deliveries go
   through the same instrumented Semantics.eval the model checker uses —
   every wb/readex rule firing lands in the recorder with its controller
   table and row.  The simulator has no stop bookkeeping of its own, so
   the CLI stamps the terminal deadlock/stop event, mirroring what
   Mcheck.Explore.finish records. *)
let exercise_events_figure4 assignment =
  let result, _trace = Sim.Scenario.figure4 assignment in
  (match result with
  | Sim.Runner.Deadlock _ ->
      Obs.Flightrec.record ~tag:Obs.Flightrec.tag_deadlock ();
      Obs.Flightrec.record ~tag:Obs.Flightrec.tag_stop
        ~a:Obs.Flightrec.stop_violation ()
  | _ ->
      Obs.Flightrec.record ~tag:Obs.Flightrec.tag_stop
        ~a:Obs.Flightrec.stop_complete ());
  result

(* Render the last [n] events as a relation: attach sys.events and let
   the SQL front end do the windowing, so `asura events tail` is the
   same query a user could type. *)
let print_events_tail n docs =
  let total = List.length docs in
  let db =
    Relalg.Database.replace_system Relalg.Database.empty
      (Systables.events_of docs)
  in
  let sql =
    Printf.sprintf
      "SELECT seq, t_us, dom, tag, a, b, c, table_name, detail FROM \
       sys.events WHERE seq >= %d ORDER BY seq"
      (max 0 (total - n))
  in
  Printf.printf "-- %s\n" sql;
  print_string (Relalg.Table.to_string (Relalg.Sql_exec.query db sql));
  if total > n then
    Printf.printf "(%d earlier events not shown; %d recorded in total)\n"
      (total - n) total

let live_event_docs () = Obs.Flightrec.of_json (Obs.Flightrec.to_json ())

let why_cmd =
  let what =
    Arg.(
      required
      & pos 0 (some (enum [ "deadlock", `Deadlock; "invariant", `Invariant ]))
          None
      & info [] ~docv:"WHAT"
          ~doc:"$(b,deadlock), or $(b,invariant) followed by an invariant id.")
  in
  let inv_id =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Invariant id (with $(b,why invariant); see $(b,invariants -a)).")
  in
  let assignment =
    Arg.(
      value
      & opt assignment_or_csv_conv Checker.Vcassign.with_vc4
      & info [ "vc" ] ~docv:"ASSIGNMENT"
          ~doc:
            "Virtual-channel assignment to explain: $(b,initial), $(b,vc4), \
             $(b,debugged), or a CSV file with columns m,s,d,v (as written \
             by $(b,export)).")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:
            "Emit the witness subgraph (cycle channels, edges labeled with \
             a witnessing dependency and its controller-row origin) in \
             Graphviz format instead of the narrative.")
  in
  let events =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:
            "After the narrative, replay the Figure-4 scenario under the \
             same assignment through the simulator and print the \
             flight-recorder tail — the last rule firings, decoded to \
             their controller rows, before the channels wedge.")
  in
  let run () what inv_id assignment dot events =
    match what with
    | `Deadlock ->
        let r = Checker.Deadlock.analyze assignment in
        if dot then print_string (Checker.Why.deadlock_dot r)
        else print_string (Checker.Why.deadlock r);
        if events then begin
          ignore (exercise_events_figure4 assignment);
          print_string "\n## Flight recorder (last events before the wedge)\n";
          print_events_tail 40 (live_event_docs ())
        end;
        if not (Checker.Deadlock.is_deadlock_free r) then exit 1
    | `Invariant -> (
        match inv_id with
        | None ->
            prerr_endline
              "why invariant: missing invariant id (see asura invariants -a)";
            exit 2
        | Some id -> (
            match Checker.Invariant.find id with
            | None ->
                Printf.eprintf "unknown invariant %s\n" id;
                exit 2
            | Some inv ->
                let passed, text =
                  Checker.Why.invariant (Protocol.database ()) inv
                in
                print_string text;
                if not passed then exit 1))
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "Explain a verdict from row-level provenance: render each VCG \
          cycle as the controller transitions behind it (the paper's \
          Figure 4 narrative, reconstructed automatically), or decode an \
          invariant violation back to the base-table rows it was derived \
          from.")
    Term.(const run $ setup_term $ what $ inv_id $ assignment $ dot $ events)

(* ------------------------------- map --------------------------------- *)

let map_cmd =
  let emit =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~docv:"TABLE"
          ~doc:"Emit generated Verilog for one implementation table.")
  in
  let run () emit =
    let db = Mapping.Partition.run () in
    match emit with
    | Some name -> (
        match
          List.find_opt
            (fun (g : Mapping.Partition.group) -> g.table_name = name)
            Mapping.Partition.groups
        with
        | None ->
            Printf.eprintf "unknown implementation table %s\n" name;
            exit 1
        | Some g ->
            let t = Relalg.Database.find db g.table_name in
            print_string
              (Mapping.Codegen.to_verilog ~name:g.table_name
                 (Mapping.Codegen.rules_of_table
                    ~inputs:Mapping.Extend.input_columns ~outputs:g.payload t)))
    | None ->
        let ed = Mapping.Extend.ed () in
        Printf.printf "ED: %d rows x %d columns\n" (Relalg.Table.cardinality ed)
          (Relalg.Table.arity ed);
        List.iter
          (fun t ->
            Printf.printf "  %-18s %6d rows\n" (Relalg.Table.name t)
              (Relalg.Table.cardinality t))
          (Mapping.Partition.implementation_tables db);
        let o = Mapping.Reconstruct.check ~db () in
        Printf.printf "reconstruction: ED preserved = %b, D contained = %b\n"
          o.Mapping.Reconstruct.ed_preserved o.Mapping.Reconstruct.d_preserved;
        if not (o.ed_preserved && o.d_preserved) then exit 1
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:
         "Map the debugged directory table to the nine implementation \
          tables and verify the reconstruction (paper section 5).")
    Term.(const run $ setup_term $ emit)

(* ------------------------------ simulate ----------------------------- *)

let simulate_cmd =
  let scenario =
    Arg.(
      value
      & pos 0 (enum [ "figure4", `Figure4; "readex", `Readex;
                      "contention", `Contention ]) `Figure4
      & info [] ~docv:"SCENARIO" ~doc:"figure4, readex or contention.")
  in
  let assignment =
    Arg.(
      value
      & opt assignment_conv Checker.Vcassign.with_vc4
      & info [ "a"; "assignment" ] ~docv:"ASSIGNMENT"
          ~doc:"Channel assignment (initial|vc4|debugged).")
  in
  let msc =
    Arg.(
      value & flag
      & info [ "msc" ]
          ~doc:"Render the trace as a message-sequence chart (the form of                 the paper's Figures 2 and 4).")
  in
  let run () scenario assignment msc_flag =
    let result, trace =
      match scenario with
      | `Figure4 -> Sim.Scenario.figure4 assignment
      | `Readex -> Sim.Scenario.readex_walkthrough assignment
      | `Contention -> Sim.Scenario.contention assignment
    in
    if msc_flag then print_string (Sim.Msc.render_run trace)
    else List.iter print_endline trace;
    Format.printf "%a@." Sim.Runner.pp_result result;
    match result with Sim.Runner.Deadlock _ -> exit 1 | _ -> ()
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Replay a scenario in the queue-accurate simulator (the Figure 4 \
          deadlock by default).")
    Term.(const run $ setup_term $ scenario $ assignment $ msc)

(* ------------------------------- mcheck ------------------------------ *)

let mcheck_cmd =
  let nodes =
    Arg.(value & opt int 2 & info [ "n"; "nodes" ] ~doc:"Number of caches.")
  in
  let addrs =
    Arg.(value & opt int 1 & info [ "addrs" ] ~doc:"Number of cache lines.")
  in
  let max_states =
    Arg.(value & opt int 200_000 & info [ "max-states" ] ~doc:"Search bound.")
  in
  let evictions =
    Arg.(value & flag & info [ "evictions" ] ~doc:"Include eviction operations.")
  in
  let depth_profile =
    Arg.(
      value & flag
      & info [ "depth-profile" ]
          ~doc:"Print the per-depth expansion histogram of the BFS.")
  in
  let msc =
    Arg.(
      value & flag
      & info [ "msc" ]
          ~doc:
            "On a violation, render the counterexample trace as a \
             message-sequence chart (the form of the paper's Figures 2 \
             and 4) instead of raw trace lines.")
  in
  let engine =
    let engine_conv =
      Arg.enum
        [
          "auto", `Auto; "seq", `Seq; "seq-packed", `Seq_packed;
          "level", `Level; "steal", `Steal;
        ]
    in
    Arg.(
      value & opt engine_conv `Auto
      & info [ "engine" ]
          ~doc:
            "Exploration core: $(b,auto) (default: sequential boxed at one \
             domain, work-stealing packed otherwise), $(b,seq) (boxed \
             reference), $(b,seq-packed) (bit-packed, single-threaded), \
             $(b,level) (level-synchronized parallel BFS) or $(b,steal) \
             (work-stealing packed frontier).")
  in
  let compact_bits =
    Arg.(
      value & opt (some int) None
      & info [ "compact-bits" ] ~docv:"N"
          ~doc:
            "Stern-Dill hash compaction: keep only an $(docv)-bit \
             fingerprint (8..62) per visited state.  Memory drops to the \
             fingerprint table, but a fingerprint collision can silently \
             merge two states, so the run is reported as probabilistic \
             and violations carry no trace.")
  in
  let run () nodes addrs max_states evictions depth_profile msc_flag engine
      compact_bits =
    let ops =
      [ "load"; "store" ] @ if evictions then [ "evictmod"; "evictsh" ] else []
    in
    let r =
      Mcheck.Explore.run ~max_states ~engine ?compact_bits
        { Mcheck.Semantics.nodes; addrs; ops; capacity = 3; io_addrs = []; lossy = false }
    in
    Format.printf "%a@." Mcheck.Explore.pp_result r;
    if depth_profile then Format.printf "%a" Mcheck.Explore.pp_depth_profile r;
    match r.Mcheck.Explore.violation with
    | Some v ->
        if msc_flag then
          print_string
            (Sim.Msc.render_run ~title:"counterexample replay"
               v.Mcheck.Explore.trace)
        else List.iter print_endline v.Mcheck.Explore.trace;
        exit 1
    | None -> ()
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Exhaustively model-check the table-driven protocol (the \
          Murphi-style baseline the paper compares against).")
    Term.(
      const run $ setup_term $ nodes $ addrs $ max_states $ evictions
      $ depth_profile $ msc $ engine $ compact_bits)

(* ------------------------- system tables (sys.) ----------------------- *)

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Load every .json under a --runs directory as labeled documents for
   the manifest-backed sys. tables; unreadable or unparseable files are
   skipped with a warning, like [asura report]. *)
let load_run_docs dir =
  let entries =
    match Sys.readdir dir with
    | entries ->
        Array.sort compare entries;
        Array.to_list entries
    | exception Sys_error msg ->
        Printf.eprintf "cannot read runs directory: %s\n" msg;
        exit 2
  in
  List.filter_map
    (fun f ->
      if not (Filename.check_suffix f ".json") then None
      else
        match Obs.Json.parse (read_file (Filename.concat dir f)) with
        | Ok j -> Some (f, j)
        | Error msg ->
            Printf.eprintf "warning: skipping %s: %s\n" f msg;
            None
        | exception Sys_error msg ->
            Printf.eprintf "warning: skipping %s: %s\n" f msg;
            None)
    entries

let warn_skipped =
  List.iter (fun (label, reason) ->
      Printf.eprintf "warning: skipping %s: %s\n" label reason)

let runs_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "runs" ] ~docv:"DIR"
        ~doc:
          "Attach the manifest-backed system tables ($(b,sys.runs), \
           $(b,sys.run_metrics), $(b,sys.bench), $(b,sys.coverage), \
           $(b,sys.plans), $(b,sys.plan_ops)) built from the run manifests \
           and bench snapshots under $(docv).")

(* Execute one statement with every engine error rendered as a clean
   diagnostic (exit 2) instead of an uncaught exception.  Writes are
   executed but the resulting catalog is ephemeral — the CLI's value is
   that CREATE/INSERT/DROP statements are validated, including the
   reserved-sys. rejection. *)
let run_statement db q =
  match Relalg.Sql_exec.exec db q with
  | _, Some t -> print_string (Relalg.Table.to_string t)
  | _, None -> ()
  | exception Relalg.Sql_parser.Parse_error msg
  | exception Relalg.Sql_exec.Exec_error msg ->
      Printf.eprintf "sql: %s\n" msg;
      exit 2
  | exception Relalg.Sql_lexer.Lex_error { pos; message } ->
      Printf.eprintf "sql: at offset %d: %s\n" pos message;
      exit 2
  | exception Relalg.Database.Unknown_table t ->
      Printf.eprintf "sql: unknown table %s\n" t;
      exit 2
  | exception Relalg.Schema.Unknown_column c ->
      Printf.eprintf "sql: unknown column %s\n" c;
      exit 2

(* -------------------------------- sql -------------------------------- *)

let sql_cmd =
  let query =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "A SQL query over the controller tables, or over the engine's \
             own telemetry via the $(b,sys.) system tables.")
  in
  let run () query runs =
    let db = Protocol.database () in
    (* A query that mentions sys. gets the telemetry snapshot attached;
       everything else runs against the protocol catalog untouched. *)
    let db =
      if runs = None && not (Systables.mentions_sys query) then db
      else
        let db = Systables.attach_live db in
        match runs with
        | None -> db
        | Some dir ->
            (* manifest-backed tables replace the live sys.coverage so
               the query sees the same merged bitmaps asura report does *)
            let db, skipped = Systables.attach_docs (load_run_docs dir) db in
            warn_skipped skipped;
            db
    in
    run_statement db query
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:
         "Run a SQL query against the controller-table database, e.g. \
          \"SELECT inmsg, locmsg FROM D WHERE bdirlookup = 'hit'\" — or \
          against the engine's own telemetry, e.g. \"SELECT table_name, \
          COUNT(*) FROM sys.coverage WHERE NOT covered GROUP BY \
          table_name\" with --runs.")
    Term.(const run $ setup_term $ query $ runs_arg)

(* -------------------------------- top --------------------------------- *)

let top_cmd =
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "query" ] ~docv:"KEY"
          ~doc:"Run a single canned query instead of the whole set.")
  in
  let max_states =
    Arg.(
      value & opt int 5_000
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "State budget of the small model-checking run used to \
             exercise the engine.")
  in
  let run () runs only max_states =
    (* Exercise the pipeline with telemetry armed so the live sys.
       tables have something to say: the invariant suite and deadlock
       analysis populate spans/metrics, the small mcheck run fires
       transition coverage. *)
    Obs.Config.enable ();
    Obs.Coverage.enable ();
    let db = Protocol.database () in
    ignore (Checker.Invariant.run_all db);
    ignore (Checker.Deadlock.analyze Checker.Vcassign.debugged);
    ignore
      (Mcheck.Explore.run ~max_states
         {
           Mcheck.Semantics.nodes = 2;
           addrs = 1;
           ops = [ "load"; "store" ];
           capacity = 3;
           io_addrs = [];
           lossy = false;
         });
    let db = Systables.attach_live db in
    let db, have_docs =
      match runs with
      | None -> (db, false)
      | Some dir ->
          let db, skipped = Systables.attach_docs (load_run_docs dir) db in
          warn_skipped skipped;
          (db, true)
    in
    let wanted =
      match only with
      | None -> Systables.canned
      | Some key -> (
          match
            List.find_opt (fun c -> c.Systables.key = key) Systables.canned
          with
          | Some c -> [ c ]
          | None ->
              Printf.eprintf "top: unknown query %s (one of: %s)\n" key
                (String.concat ", "
                   (List.map (fun c -> c.Systables.key) Systables.canned));
              exit 2)
    in
    List.iter
      (fun (c : Systables.canned) ->
        Printf.printf "## %s [%s]\n" c.title c.key;
        if (not c.Systables.live) && not have_docs then
          print_string "(skipped: needs --runs DIR)\n\n"
        else begin
          Printf.printf "-- %s\n" c.sql;
          print_string (Relalg.Table.to_string (Relalg.Sql_exec.query db c.sql));
          print_newline ()
        end)
      wanted
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Exercise the engine with telemetry on and answer the canned \
          operational questions — slowest operators, hottest and \
          least-covered controller tables, bench speedup regressions — \
          each implemented as plain SQL over the sys. system tables.")
    Term.(const run $ setup_term $ runs_arg $ only $ max_states)

(* ------------------------------- events ------------------------------- *)

let manifest_event_docs dir =
  let agg, skipped = Obs.Runreport.collect (load_run_docs dir) in
  warn_skipped skipped;
  (Obs.Runreport.events agg, Obs.Runreport.events_dropped agg)

let events_tail_cmd =
  let n =
    Arg.(
      value & opt int 40
      & info [ "n"; "last" ] ~docv:"K"
          ~doc:"How many trailing events to show.")
  in
  let assignment =
    Arg.(
      value
      & opt assignment_or_csv_conv Checker.Vcassign.with_vc4
      & info [ "vc" ] ~docv:"ASSIGNMENT"
          ~doc:
            "Virtual-channel assignment for the live Figure-4 replay: \
             $(b,initial), $(b,vc4) (default: the paper's deadlock), \
             $(b,debugged), or a CSV file.")
  in
  let run () n runs assignment =
    let docs =
      match runs with
      | Some dir -> fst (manifest_event_docs dir)
      | None ->
          ignore (exercise_events_figure4 assignment);
          live_event_docs ()
    in
    if docs = [] then print_endline "(no events recorded)"
    else print_events_tail n docs
  in
  Cmd.v
    (Cmd.info "tail"
       ~doc:
         "Show the last K flight-recorder events before the run stopped — \
          by default the live replay of the paper's Figure-4 VC4 deadlock, \
          whose final window is the wb/readex interleaving that wedges the \
          channels, each firing decoded to its controller row.  With \
          $(b,--runs), the trailing window of the events persisted in run \
          manifests.")
    Term.(const run $ setup_term $ n $ runs_arg $ assignment)

let events_canned_keys = [ "hottest-rules"; "steals-by-domain"; "dedup-by-depth" ]

let events_top_cmd =
  let max_states =
    Arg.(
      value & opt int 5_000
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "State budget of the model-checking run used to exercise the \
             recorder.")
  in
  let run () runs max_states =
    let db =
      match runs with
      | Some dir ->
          let db, skipped =
            Systables.attach_docs (load_run_docs dir) (Protocol.database ())
          in
          warn_skipped skipped;
          db
      | None ->
          (* a small exploration fills the rings: fires and dedup from
             any engine, steals when domains > 1 pick the stealing core
             (explicit `Steal keeps the requested degree even when the
             hardware offers fewer cores, unlike `Auto) *)
          let engine =
            if Par.Pool.domains () > 1 then `Steal else `Auto
          in
          ignore
            (Mcheck.Explore.run ~max_states ~engine
               {
                 Mcheck.Semantics.nodes = 2;
                 addrs = 1;
                 ops = [ "load"; "store" ];
                 capacity = 3;
                 io_addrs = [];
                 lossy = false;
               });
          Systables.attach_live (Protocol.database ())
    in
    List.iter
      (fun key ->
        match
          List.find_opt (fun c -> c.Systables.key = key) Systables.canned
        with
        | None -> ()
        | Some c ->
            Printf.printf "## %s [%s]\n" c.Systables.title c.Systables.key;
            Printf.printf "-- %s\n" c.Systables.sql;
            print_string
              (Relalg.Table.to_string
                 (Relalg.Sql_exec.query db c.Systables.sql));
            print_newline ())
      events_canned_keys
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Answer the flight-recorder canned queries — hottest rules by \
          recorded firings, per-domain steal counts, dedup hits vs inserts \
          by depth — as plain SQL over $(b,sys.events).")
    Term.(const run $ setup_term $ runs_arg $ max_states)

let events_dump_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the asura-events/1 JSON document (the only format; the \
             flag exists for symmetry with other subcommands).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the document to this file instead of standard output.")
  in
  let assignment =
    Arg.(
      value
      & opt assignment_or_csv_conv Checker.Vcassign.with_vc4
      & info [ "vc" ] ~docv:"ASSIGNMENT"
          ~doc:"Assignment for the live Figure-4 replay (as in tail).")
  in
  let run () _json output runs assignment =
    let doc =
      match runs with
      | Some dir ->
          let docs, dropped = manifest_event_docs dir in
          Obs.Flightrec.docs_to_json ~dropped docs
      | None ->
          ignore (exercise_events_figure4 assignment);
          Obs.Flightrec.to_json ()
    in
    let text = Obs.Json.to_string doc ^ "\n" in
    match output with
    | None -> print_string text
    | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc text);
        Printf.printf "wrote %d events to %s\n"
          (List.length (Obs.Flightrec.of_json doc))
          file
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Dump the flight recording as an asura-events/1 JSON document — \
          the live Figure-4 replay by default, or the concatenation of the \
          events embedded in run manifests with $(b,--runs).")
    Term.(const run $ setup_term $ json $ output $ runs_arg $ assignment)

let events_cmd =
  Cmd.group
    (Cmd.info "events"
       ~doc:
         "The exploration flight recorder: always-on per-domain rings of \
          packed events (rule firings, dedup, steals, visited-set growth, \
          solver steps) drained on violation, deadlock, signal or exit, \
          and queryable as the $(b,sys.events) system table.")
    [ events_tail_cmd; events_top_cmd; events_dump_cmd ]

(* ------------------------------ export ------------------------------- *)

(* Resolve a table name: controller table, ED, or implementation table. *)
let resolve_table name =
  match Protocol.find name with
  | Some c -> Protocol.Ctrl_spec.table c.Protocol.spec
  | None ->
      if name = "ED" then Mapping.Extend.ed ()
      else
        let db = Mapping.Partition.run () in
        (match Relalg.Database.find_opt db name with
        | Some t -> t
        | None ->
            Printf.eprintf "unknown table %s\n" name;
            exit 1)

let export_cmd =
  let table =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TABLE"
          ~doc:"Controller table (D M C N RAC IO PIF LK), ED, or an                 implementation table name.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write CSV to this file instead of standard output.")
  in
  let run () table output =
    let t = resolve_table table in
    match output with
    | None -> print_string (Relalg.Csv.to_string t)
    | Some filename ->
        Relalg.Csv.save ~filename t;
        Printf.printf "wrote %d rows to %s
" (Relalg.Table.cardinality t)
          filename
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a generated table as CSV (SQL report generation).")
    Term.(const run $ setup_term $ table $ output)

(* ------------------------------- stats -------------------------------- *)

let stats_cmd =
  let table =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TABLE"
          ~doc:"Controller table (D M C N RAC IO PIF LK), ED, or an \
                implementation table name.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the profile as a JSON object instead of text.")
  in
  let run () table json_flag =
    let p = Relalg.Profile.profile (resolve_table table) in
    if json_flag then print_endline (Obs.Json.to_string (Relalg.Profile.to_json p))
    else print_string (Relalg.Profile.to_string p)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Profile a generated table: per-column distinct counts, NULL \
          sparsity and most-common values (the numbers behind the \
          paper's \"quite sparse\" observation), plus the columnar \
          storage footprint — total bytes, dictionary hit rate, and \
          per-column dictionary sizes.")
    Term.(const run $ setup_term $ table $ json)

(* ------------------------------ review ------------------------------- *)

let review_cmd =
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Embed the complete controller tables and column constraints.")
  in
  let assignment =
    Arg.(
      value
      & opt assignment_conv Checker.Vcassign.debugged
      & info [ "a"; "assignment" ] ~docv:"ASSIGNMENT"
          ~doc:"Channel assignment to analyze (initial|vc4|debugged).")
  in
  let run () full assignment =
    let options =
      {
        Checker.Report.include_tables = full;
        include_constraints = full;
        assignment;
      }
    in
    print_string (Checker.Report.generate ~options ());
    (* executed transaction walkthroughs, Figure 2-style *)
    print_string (Sim.Walkthrough.to_markdown (Sim.Walkthrough.all ()))
  in
  Cmd.v
    (Cmd.info "review"
       ~doc:
         "Emit the enhanced-architecture-specification review document           (Markdown): tables, channel assignment, deadlock verdict,           invariants.")
    Term.(const run $ setup_term $ full $ assignment)

(* ------------------------------ report ------------------------------- *)

(* Decode an uncovered row back to a readable transition by regenerating
   the controller table; refuse when the regenerated table's shape does
   not match what the manifest recorded (different protocol version). *)
let decode_row ~table ~rows ~row =
  match Protocol.find table with
  | None -> None
  | Some c ->
      let spec = c.Protocol.spec in
      let t = Protocol.Ctrl_spec.table spec in
      if Relalg.Table.cardinality t = rows && row >= 0 && row < rows then
        Some (Protocol.Ctrl_spec.describe_row spec row)
      else None

let report_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Run manifests (asura-run/1), bench snapshots (asura-bench/*), \
             table profiles (asura-stats/1) or EXPLAIN ANALYZE output \
             (asura-explain/1).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the aggregate as a JSON object (schema asura-report/1).")
  in
  let html =
    Arg.(value & flag & info [ "html" ] ~doc:"Render HTML instead of Markdown.")
  in
  let min_coverage =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-coverage" ] ~docv:"PCT"
          ~doc:
            "Exit 1 if overall transition coverage across all manifests \
             is below $(docv) percent.")
  in
  let min_table =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "min-table" ] ~docv:"TABLE=PCT"
          ~doc:
            "Exit 1 if coverage of one controller table is below $(docv) \
             percent (or the table appears in no manifest).  Repeatable.")
  in
  let max_uncovered =
    Arg.(
      value & opt int 10
      & info [ "max-uncovered" ] ~docv:"N"
          ~doc:"Cap the decoded uncovered-transition listing per table.")
  in
  let trend =
    Arg.(
      value & flag
      & info [ "trend" ]
          ~doc:
            "Append a trend section charting coverage percent and \
             states/s across the run manifests, computed by querying the \
             $(b,sys.runs) system table (Markdown output only).")
  in
  let max_misest =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-misest" ] ~docv:"RATIO"
          ~doc:
            "Exit 1 if any aggregated plan misestimates cardinality by \
             more than $(docv)x (worst per-operator estimated-vs-actual \
             row ratio, from the plan logs the manifests embed).")
  in
  let run () files json_flag html max_uncovered trend min_coverage min_table
      max_misest =
    (* A file that fails to read, parse or classify is skipped with a
       warning instead of aborting the report; only when every input is
       bad is there nothing to aggregate and exit 2 applies. *)
    let docs, unreadable =
      List.fold_left
        (fun (docs, bad) f ->
          match Obs.Json.parse (read_file f) with
          | Ok j -> ((Filename.basename f, j) :: docs, bad)
          | Error msg -> (docs, (Filename.basename f, msg) :: bad)
          | exception Sys_error msg -> (docs, (Filename.basename f, msg) :: bad))
        ([], []) files
    in
    let agg, misclassified = Obs.Runreport.collect (List.rev docs) in
    let skipped = List.rev unreadable @ misclassified in
    List.iter
      (fun (label, reason) ->
        Printf.eprintf "warning: skipping %s: %s\n" label reason)
      skipped;
    if Obs.Runreport.is_empty agg then begin
      prerr_endline "report: no usable input documents";
      exit 2
    end;
    let decode = decode_row in
    if json_flag then
      print_endline
        (Obs.Json.to_string (Obs.Runreport.to_json ~decode ~skipped agg))
    else if html then
      print_string (Obs.Runreport.render_html ~decode ~max_uncovered ~skipped agg)
    else begin
      print_string
        (Obs.Runreport.render_markdown ~decode ~max_uncovered ~skipped agg);
      if trend then print_string ("\n" ^ Systables.trend (List.rev docs))
    end;
        let failed = ref false in
        (match min_coverage with
        | None -> ()
        | Some threshold ->
            let overall = Obs.Runreport.overall_percent agg in
            if overall < threshold then begin
              Printf.eprintf
                "coverage gate: overall %.1f%% is below the required %.1f%%\n"
                overall threshold;
              failed := true
            end);
        let per_table = Obs.Runreport.coverage agg in
        List.iter
          (fun (name, threshold) ->
            match
              List.find_opt
                (fun (tc : Obs.Coverage.table_coverage) -> tc.name = name)
                per_table
            with
            | None ->
                Printf.eprintf
                  "coverage gate: table %s appears in no manifest\n" name;
                failed := true
            | Some tc ->
                let pct =
                  Obs.Coverage.percent ~covered:tc.covered ~rows:tc.rows
                in
                if pct < threshold then begin
                  Printf.eprintf
                    "coverage gate: table %s at %.1f%% is below the \
                     required %.1f%%\n"
                    name pct threshold;
                  failed := true
                end)
          min_table;
        (match max_misest with
        | None -> ()
        | Some threshold ->
            List.iter
              (fun (e : Obs.Planlog.entry) ->
                let m = Obs.Planlog.misest e in
                if m > threshold then begin
                  Printf.eprintf
                    "plan gate: [%s] %s misestimates by %.1fx (fingerprint \
                     %s), above the allowed %.1fx\n"
                    e.Obs.Planlog.e_site e.Obs.Planlog.e_query m
                    e.Obs.Planlog.e_fingerprint threshold;
                  failed := true
                end)
              (Obs.Runreport.plans agg));
        if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate run manifests and bench snapshots into a coverage \
          report: per-controller transition coverage, uncovered rows \
          decoded back to readable transitions, the invariant hit \
          matrix, and seq-vs-par bench regressions.")
    Term.(
      const run $ setup_term $ files $ json $ html $ max_uncovered $ trend
      $ min_coverage $ min_table $ max_misest)

(* ------------------------------ explain ------------------------------ *)

let explain_cmd =
  let query =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"A SQL query to plan.")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Actually execute the query against the controller-table \
             database and print per-operator rows in/out, \
             materialized-vs-streamed output, storage bytes, dictionary \
             hit rates and wall-clock timings (EXPLAIN ANALYZE).")
  in
  let index =
    Arg.(
      value
      & opt_all (pair ~sep:'.' string string) []
      & info [ "index" ] ~docv:"TABLE.COLUMN"
          ~doc:
            "With $(b,--analyze): declare a hash index, enabling the \
             index-lookup access path.  Repeatable.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "With $(b,--analyze): emit the measured operator tree as a \
             JSON object instead of text.")
  in
  let run () query analyze indexes json_flag =
    if analyze then begin
      let db = Protocol.database () in
      (* --index forces the reference physical engine (the planner has
         no index access paths); otherwise the cost-based planner runs
         the vectorized engine and reports estimated vs. actual rows *)
      if Relalg.Planner.active () && indexes = [] then begin
        let r = Relalg.Planner.analyze db query in
        if json_flag then
          print_endline (Obs.Json.to_string (Relalg.Planner.to_json r))
        else
          Printf.printf "planner (est vs actual):\n%s"
            (Relalg.Planner.render_report r)
      end
      else begin
        let store = Relalg.Physical.make_store db in
        let r = Relalg.Analyze.run ~indexes store query in
        if json_flag then
          print_endline (Obs.Json.to_string (Relalg.Analyze.to_json r))
        else
          Printf.printf "physical plan:\n%s\nexecution:\n%s"
            (Relalg.Physical.explain r.Relalg.Analyze.physical)
            (Relalg.Analyze.render r)
      end
    end
    else begin
      if json_flag then begin
        prerr_endline "explain: --json requires --analyze";
        exit 2
      end;
      let plan = Relalg.Plan.of_query (Relalg.Sql_parser.parse_query query) in
      Printf.printf "plan:\n%s\noptimized:\n%s"
        (Relalg.Plan.explain plan)
        (Relalg.Plan.explain (Relalg.Plan.optimize plan));
      if Relalg.Planner.active () then
        Printf.printf "cost-based (est rows, cumulative cost):\n%s"
          (Relalg.Planner.explain (Protocol.database ()) query)
    end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the logical query plan before and after optimization; \
          with --analyze, execute it and report per-operator row counts \
          and timings.")
    Term.(const run $ setup_term $ query $ analyze $ index $ json)

(* ------------------------------- plan -------------------------------- *)

(* Run the deterministic plan workload with telemetry on, so the live
   plan observatory has a reproducible population.  Returns the protocol
   database the workload ran against. *)
let exercise_plan_workload () =
  Obs.Config.enable ();
  let db = Protocol.database () in
  Systables.run_plan_workload db;
  db

let plan_canned_keys = [ "hottest-plans"; "worst-misest" ]

let plan_top_cmd =
  let run () runs =
    let db =
      match runs with
      | None -> Systables.attach_live (exercise_plan_workload ())
      | Some dir ->
          (* manifest-backed: answer from the aggregated sys.plans the
             manifests carry instead of re-running the workload *)
          let db, skipped =
            Systables.attach_docs (load_run_docs dir) (Protocol.database ())
          in
          warn_skipped skipped;
          db
    in
    List.iter
      (fun key ->
        match
          List.find_opt (fun c -> c.Systables.key = key) Systables.canned
        with
        | None -> ()
        | Some c ->
            Printf.printf "## %s [%s]\n" c.Systables.title c.Systables.key;
            Printf.printf "-- %s\n" c.Systables.sql;
            print_string
              (Relalg.Table.to_string (Relalg.Sql_exec.query db c.Systables.sql));
            print_newline ())
      plan_canned_keys
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run the deterministic plan workload and answer the plan canned \
          queries — hottest plans by total time and worst cardinality \
          misestimates — as plain SQL over $(b,sys.plans).")
    Term.(const run $ setup_term $ runs_arg)

let plan_snapshot_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write the asura-plans/1 document to this file instead of \
             standard output.")
  in
  let run () output runs =
    let json =
      match runs with
      | Some dir ->
          (* aggregate the plan logs the manifests under DIR embed — the
             same Runreport.plans aggregation the report renders *)
          let agg, skipped = Obs.Runreport.collect (load_run_docs dir) in
          warn_skipped skipped;
          Obs.Planlog.entries_to_json (Obs.Runreport.plans agg)
      | None ->
          ignore (exercise_plan_workload ());
          Obs.Planlog.to_json ()
    in
    let text = Obs.Json.to_string json ^ "\n" in
    match output with
    | None -> print_string text
    | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc text);
        Printf.printf "wrote %d plans to %s\n"
          (List.length (Obs.Planlog.of_json json))
          file
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Capture a plan baseline (schema asura-plans/1): run the \
          deterministic plan workload and dump every recorded plan with \
          its structural fingerprint and est-vs-actual telemetry — or, \
          with $(b,--runs), aggregate the plan logs embedded in run \
          manifests.  Commit the output and gate on it with $(b,asura \
          plan diff --strict).")
    Term.(const run $ setup_term $ output $ runs_arg)

let plan_diff_cmd =
  let old_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD"
          ~doc:"Baseline plan document (asura-plans/1 or a run manifest).")
  in
  let new_file =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Plan document to compare against OLD.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit 1 when any plan changed, appeared or disappeared — the \
             CI plan-regression gate.")
  in
  let run () old_file new_file strict =
    let load f =
      match Obs.Json.parse (read_file f) with
      | Ok j -> Obs.Planlog.of_json j
      | Error msg ->
          Printf.eprintf "plan diff: %s: %s\n" f msg;
          exit 2
      | exception Sys_error msg ->
          Printf.eprintf "plan diff: %s\n" msg;
          exit 2
    in
    let changes, unchanged = Obs.Planlog.diff (load old_file) (load new_file) in
    List.iter (fun c -> print_string (Obs.Planlog.render_change c)) changes;
    Printf.printf "%d plans changed, %d unchanged\n" (List.length changes)
      unchanged;
    if strict && changes <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two plan documents by (site, query): report every plan \
          whose structural fingerprint changed, appeared or disappeared, \
          with per-operator estimated-vs-actual deltas.  Execution counts \
          and timings are deliberately not compared, so two runs of the \
          same workload at different speeds diff clean.")
    Term.(const run $ setup_term $ old_file $ new_file $ strict)

let plan_cmd =
  Cmd.group
    (Cmd.info "plan"
       ~doc:
         "The plan observatory: capture, inspect and gate on the query \
          planner's decisions.  Every planner execution records a \
          structural fingerprint plus per-operator estimated-vs-actual \
          telemetry, queryable as $(b,sys.plans) / $(b,sys.plan_ops) and \
          diffable across commits.")
    [ plan_top_cmd; plan_snapshot_cmd; plan_diff_cmd ]

let () =
  let doc =
    "table-driven cache-coherence protocol design and early error \
     detection using SQL (IPPS 2003 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "asura" ~version:"1.0.0" ~doc)
          [
            generate_cmd; invariants_cmd; deadlock_cmd; why_cmd; map_cmd;
            simulate_cmd; mcheck_cmd; sql_cmd; top_cmd; review_cmd;
            report_cmd; explain_cmd; export_cmd; stats_cmd; plan_cmd;
            events_cmd;
          ]))
