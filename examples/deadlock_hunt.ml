(* Deadlock hunt: walk the paper's section 4 narrative end to end.

   Starting from four virtual channels, the static analysis finds several
   cycles; a fifth channel for the memory path leaves the Figure 4
   wb/readex cycle; moving mread to a dedicated hardware path resolves
   it.  The static verdicts are then confirmed dynamically by replaying
   the Figure 4 interleaving in the queue-accurate simulator.

   Run with: dune exec examples/deadlock_hunt.exe *)

let separator title = Logs.app (fun m -> m "@.%s@.%s" title (String.make (String.length title) '-'))

let () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.App);
  (* --- static analysis, the paper's loop: check, fix, repeat --------- *)
  List.iter
    (fun (step, r) ->
      separator step;
      print_string (Checker.Deadlock.summary r))
    (Checker.Deadlock.narrative ());

  (* --- zoom into the Figure 4 cycle ---------------------------------- *)
  separator "the Figure 4 circular wait, statically";
  let r = Checker.Deadlock.analyze Checker.Vcassign.with_vc4 in
  List.iter
    (fun (c : _ Vcgraph.Cycles.cycle) ->
      if List.mem "VC4" c.nodes then begin
        Printf.printf "cycle %s\n" (Format.asprintf "%a" Vcgraph.Cycles.pp c);
        List.iter
          (fun witnesses ->
            match witnesses with
            | (e : Checker.Dependency.entry) :: _ ->
                Printf.printf "  via %s\n"
                  (Format.asprintf "%a" Checker.Dependency.pp_dep e.dep)
            | [] -> ())
          c.labels
      end)
    r.Checker.Deadlock.cycles;

  (* --- dynamic confirmation ------------------------------------------ *)
  separator "the same scenario, replayed with single-slot channels";
  List.iter
    (fun (name, v) ->
      let result, _ = Sim.Scenario.figure4 v in
      Printf.printf "%-12s -> %s\n" name
        (Format.asprintf "%a" Sim.Runner.pp_result result))
    [
      "V-vc4", Checker.Vcassign.with_vc4;
      "V-debugged", Checker.Vcassign.debugged;
    ];

  (* --- export the dependency graph for a design review --------------- *)
  separator "Graphviz export (write to vcg.dot and render with dot -Tpdf)";
  let dot = Checker.Vcg.to_dot r.Checker.Deadlock.vcg in
  print_string (String.concat "\n" (List.filteri (fun i _ -> i < 8)
    (String.split_on_char '\n' dot)));
  Printf.printf "\n... (%d total lines)\n"
    (List.length (String.split_on_char '\n' dot))
