(* Model checking the generated tables: the Murphi-style baseline the
   paper compares its static approach against.

   The checker executes the same table rows that the SQL pipeline
   generates, debugs and maps to hardware — so passing here means the
   artifact itself (not a hand-written model of it) is coherent, and the
   state counts show exactly the explosion the paper warns about.

   Run with: dune exec examples/model_check.exe *)

let () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.App);
  Logs.app (fun m -> m "loading the generated controller tables...");
  let tables = Mcheck.Semantics.load_tables () in

  (* 1. exhaustive check of a small configuration *)
  let config =
    {
      Mcheck.Semantics.nodes = 2;
      addrs = 1;
      ops = [ "load"; "store"; "evictmod"; "evictsh" ];
      capacity = 3;
      io_addrs = [];
      lossy = false;
    }
  in
  let r = Mcheck.Explore.run ~tables config in
  Format.printf "2 caches, 1 line, full workload: %a@." Mcheck.Explore.pp_result r;

  (* 2. the explosion: one more cache *)
  let r3 =
    Mcheck.Explore.run ~max_states:100_000 ~tables
      { config with Mcheck.Semantics.nodes = 3 }
  in
  Format.printf "3 caches:                        %a@." Mcheck.Explore.pp_result r3;

  (* 3. seed a data-coherence bug: drop the sharing writeback that copies
     a dirty owner's data back to memory when it is downgraded.  A later
     silent eviction then loses the only fresh copy, and some interleaving
     reads stale memory — the checker produces that interleaving. *)
  Logs.app (fun m ->
      m "seeding a bug: read-sdata-grant loses the sharing writeback...");
  let buggy =
    Protocol.Ctrl_spec.map_scenario Protocol.Dir_controller.spec
      "read-sdata-grant" (fun s ->
        { s with emit = List.filter (fun (c, _) -> c <> "memmsg") s.emit })
  in
  let buggy_tables = Mcheck.Semantics.load_tables_with ~dir:buggy () in
  let r =
    Mcheck.Explore.run ~max_states:300_000 ~tables:buggy_tables config
  in
  (match r.Mcheck.Explore.violation with
  | Some v ->
      Format.printf "found: %s@.counterexample (%d steps):@." v.detail
        (List.length v.trace);
      List.iter (fun l -> Format.printf "  %s@." l) v.trace
  | None -> Format.printf "no violation found (unexpected)@.");

  (* 4. the same protocol, checked statically, in milliseconds *)
  let t0 = Sys.time () in
  let failures =
    Checker.Invariant.failures (Checker.Invariant.run_all (Protocol.database ()))
  in
  Format.printf
    "@.static SQL analysis of the debugged tables: %d failures in %.1f ms@."
    (List.length failures)
    ((Sys.time () -. t0) *. 1000.)
