(** Operational semantics of the protocol, driven directly by the
    generated controller tables.

    Each transition either {e issues} a processor operation through the
    PIF table or {e delivers} the head of one FIFO to its endpoint and
    executes the matching row of the D / C / N / M table.  Executing the
    tables (rather than a hand-written re-implementation) means the model
    checker validates exactly the artifact the methodology produces — the
    same rows that are mapped to hardware in section 5. *)

type tables
(** Precompiled rule lists for the five executable tables. *)

val load_tables : unit -> tables

val load_tables_with : ?dir:Protocol.Ctrl_spec.t -> unit -> tables
(** Like {!load_tables} but with the directory-controller specification
    replaced — used to model-check seeded-bug variants of D. *)

val index_tables : tables -> tables
(** Rules re-bucketed by a discriminating guard column (the input
    message name, in practice) so rule dispatch scans a handful of
    candidates instead of the whole table.  First-match semantics —
    including the matched row recorded in the coverage bitmaps — are
    exactly those of the unindexed rules; the packed exploration
    engines run on indexed tables while the boxed reference engine
    keeps the naive scan the differential suite trusts. *)

type config = {
  nodes : int;  (** caches in the system (2–5 are practical) *)
  addrs : int;  (** distinct cache lines (1–2 are practical) *)
  ops : string list;
      (** processor operations the workload may issue, from
          [load; store; evictmod; evictsh] *)
  capacity : int;
      (** FIFO capacity per (source, destination, class) channel; a
          transition whose outputs would overflow a queue is disabled
          (hardware backpressure), which both keeps the state space
          finite and lets the search find channel deadlocks *)
  io_addrs : int list;
      (** addresses living in the uncached I/O space: only I/O operations
          ([ioload] / [iostore] / [iormwop]) target them, and they are
          served by the device-bus (IO) controller table *)
  lossy : bool;
      (** inter-node links may silently drop a message (the link
          controller's crcdrop behaviour); the search then finds the
          orphaned transactions lost messages leave behind — the protocol
          has no timeout/recovery layer, as in the paper *)
}

type outcome =
  | Next of Mstate.t
  | Broken of string  (** the transition exposed a protocol error *)

val successors :
  ?labels:bool -> tables -> config -> Mstate.t -> (string * outcome) list
(** All enabled transitions with human-readable labels.  [~labels:false]
    returns [""] in place of every label, skipping the rendering cost —
    for engines that reconstruct traces by replay instead of storing a
    label per visited state. *)

val state_violations : config -> Mstate.t -> string list
(** Structural coherence violations of a state itself: two owners, an
    owner coexisting with sharers, or caches alive under an idle invalid
    directory. *)

(** {1 Single-step primitives}

    Exposed for the queue-accurate simulator ({!Sim}), which schedules
    deliveries itself against virtual-channel capacities instead of
    exploring all interleavings. *)

val deliver :
  ?config:config ->
  tables ->
  Mstate.t ->
  cls:string ->
  dst:int ->
  Mstate.msg ->
  outcome
(** Process one already-dequeued message at its endpoint.  [config]
    defaults to an all-memory address space (only [io_addrs] is
    consulted here). *)

val issue_op :
  tables -> Mstate.t -> node:int -> addr:int -> op:string -> Mstate.t option
(** Run one processor operation through the PIF table; [None] if it is a
    pure cache hit (no state change) or undefined for the line state. *)

val reissue : Mstate.t -> node:int -> addr:int -> Mstate.t option
(** Re-enter a backed-off (retried) operation into the network as a
    fresh request; [None] if nothing is backed off at that line. *)

val dir_binding :
  config -> Mstate.t -> cls:string -> Mstate.msg -> (string * string) list
(** The input binding the directory table sees for a message — also the
    first half of the ED binding used by the implementation-level
    simulator ({!Sim.Impl_runner}). *)

val directory_rules : tables -> Mapping.Codegen.rule list
(** The compiled directory rule list (for gating against ED variants). *)

val pack_vocab : tables -> (string * string list) list
(** Every (column, value) string pair appearing in any guard or action
    of the compiled tables, grouped by column and sorted.  The
    bit-packer ({!Pack.layout}) seeds its per-field dictionaries from
    this, so packing in pool workers never has to intern. *)
