(** Breadth-first explicit-state exploration with counterexample traces.

    This is the Murphi-style baseline the paper positions itself against:
    exhaustive, able to find deep interleavings, and exponential in the
    number of nodes — experiment E9 sweeps [nodes] and shows the state
    count exploding while the SQL static analysis stays flat. *)

type violation = {
  kind : [ `Coherence | `Stale_data | `Unhandled | `Deadlock ];
  detail : string;
  trace : string list;  (** transition labels from the initial state *)
}

type result = {
  explored : int;  (** distinct states visited *)
  transitions : int;
  max_depth : int;
  elapsed : float;  (** seconds *)
  violation : violation option;  (** first violation found, if any *)
  complete : bool;  (** false if [max_states] stopped the search *)
  dedup_hits : int;  (** successors already in the visited set *)
  per_depth : (int * int) list;  (** states expanded per BFS depth *)
  max_frontier : int;  (** peak BFS queue length *)
  states : string list option;
      (** sorted visited-set keys, when requested with [keep_states] *)
}

val states_per_sec : result -> float

val dedup_rate : result -> float
(** Fraction of transitions whose target was already visited. *)

val run :
  ?max_states:int ->
  ?symmetry:bool ->
  ?tables:Semantics.tables ->
  ?keep_states:bool ->
  Semantics.config ->
  result
(** BFS from the all-invalid initial state.  [max_states] (default
    200_000) bounds the search; [tables] lets callers reuse precompiled
    rule lists across runs.  [symmetry] (default false) visits one
    representative per node-permutation orbit
    ({!Mstate.canonical_key}) — same verdicts, far fewer states;
    counterexample traces then describe a representative of each orbit
    rather than the literal interleaving.  [keep_states] (default false)
    returns the sorted visited-set keys in {!field-states}, used by the
    differential test suite to compare reachable-state sets.

    When {!Par.Pool.domains} is above one, each BFS level is expanded in
    parallel across the domain pool (level-synchronized BFS with a
    sharded dedup set); the merge replays the sequential bookkeeping in
    frontier order, so verdicts, traces, and every counter in the result
    are identical to the single-domain run. *)

val pp_result : Format.formatter -> result -> unit

val pp_depth_profile : Format.formatter -> result -> unit
(** ASCII histogram of states expanded per BFS depth. *)
