(** Breadth-first explicit-state exploration with counterexample traces.

    This is the Murphi-style baseline the paper positions itself against:
    exhaustive, able to find deep interleavings, and exponential in the
    number of nodes — experiment E9 sweeps [nodes] and shows the state
    count exploding while the SQL static analysis stays flat. *)

type violation = {
  kind : [ `Coherence | `Stale_data | `Unhandled | `Deadlock ];
  detail : string;
  trace : string list;  (** transition labels from the initial state *)
}

type result = {
  explored : int;  (** distinct states visited *)
  transitions : int;
  max_depth : int;
  elapsed : float;  (** seconds *)
  violation : violation option;  (** first violation found, if any *)
  complete : bool;  (** false if [max_states] stopped the search *)
  dedup_hits : int;  (** successors already in the visited set *)
  per_depth : (int * int) list;  (** states expanded per BFS depth *)
  max_frontier : int;
      (** peak BFS queue length (approximate in-flight peak for the
          stealing engine) *)
  states : string list option;
      (** sorted visited-set keys, when requested with [keep_states] *)
  engine : string;
      (** which exploration core ran: ["seq"], ["seq-packed"], ["level"]
          or ["steal"] *)
  probabilistic : bool;
      (** dedup used hash compaction ([compact_bits]): a fingerprint
          collision may have hidden states, so a clean result is
          high-confidence, not proof *)
}

val states_per_sec : result -> float

val dedup_rate : result -> float
(** Fraction of transitions whose target was already visited. *)

val layout_of_tables : Semantics.tables -> Semantics.config -> Pack.layout
(** The packing layout the stealing engine uses for a model: per-field
    dictionaries seeded with the full vocabulary of the controller
    tables ({!Semantics.pack_vocab}) plus the protocol constants the
    semantics writes programmatically. *)

val run :
  ?max_states:int ->
  ?symmetry:bool ->
  ?tables:Semantics.tables ->
  ?keep_states:bool ->
  ?engine:[ `Auto | `Seq | `Seq_packed | `Level | `Steal ] ->
  ?compact_bits:int ->
  Semantics.config ->
  result
(** Explicit-state search from the all-invalid initial state.
    [max_states] (default 200_000) bounds the search; [tables] lets
    callers reuse precompiled rule lists across runs.  [symmetry]
    (default false) visits one representative per node-permutation orbit
    ({!Mstate.canonical_key} / {!Pack.canonical}) — same verdicts, far
    fewer states; counterexample traces then describe a representative
    of each orbit rather than the literal interleaving.  [keep_states]
    (default false) returns the sorted visited-set keys in
    {!field-states}, used by the differential test suite to compare
    reachable-state sets; the packed engines report the same strings by
    unpacking their visited vectors through the boxed key function.

    [engine] selects the exploration core:
    - [`Seq]: the boxed reference — FIFO BFS, Marshal-string visited
      set, exact parent-pointer counterexample traces.
    - [`Seq_packed]: the same single-threaded BFS order over the
      bit-packed representation ({!Pack}) — the isolation benchmark for
      packing.
    - [`Level]: the level-synchronized parallel BFS whose merge replays
      sequential bookkeeping, bit-identical to [`Seq] in every field.
    - [`Steal]: the work-stealing packed frontier
      ({!Par.Pool.steal_loop}).  For complete exact searches the
      reachable set, [explored], [transitions], [dedup_hits], verdicts
      and coverage bitmaps are identical to [`Seq]; [per_depth],
      [max_depth] and [max_frontier] are schedule-dependent.  A bounded
      search still expands exactly [max_states] states (atomic tickets)
      but an arbitrary subset.  When the steal path hits a violation it
      stops and replays through [`Seq] for a bit-identical verdict and
      trace.
    - [`Auto] (default): [`Seq] when {!Par.Pool.sequential}, otherwise
      [`Steal].

    [compact_bits] (packed engines only) switches the visited set to
    N-bit hash compaction: memory bounded by the fingerprint table, but
    the result is flagged {!field-probabilistic}, [keep_states] is
    unavailable, and violations are reported without traces. *)

val pp_result : Format.formatter -> result -> unit

val pp_depth_profile : Format.formatter -> result -> unit
(** ASCII histogram of states expanded per BFS depth. *)
