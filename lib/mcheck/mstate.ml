let dir = -1
let mem = -2

type msg = { m : string; src : int; dst : int; addr : int; fresh : bool }

type busy = {
  bst : string;
  requester : int;
  acks : int;
  snapshot : int;
  data_fresh : bool;
}

type addr_state = {
  dirst : string;
  sharers : int;
  busy : busy option;
  mem_fresh : bool;
}

type t = {
  addrs : addr_state list;
  caches : string list list;
  pend : string option list list;
  queues : ((int * int * string) * msg list) list;
}

let initial ~nodes ~addrs =
  let addr0 = { dirst = "I"; sharers = 0; busy = None; mem_fresh = true } in
  {
    addrs = List.init addrs (fun _ -> addr0);
    caches = List.init nodes (fun _ -> List.init addrs (fun _ -> "I"));
    pend = List.init nodes (fun _ -> List.init addrs (fun _ -> None));
    queues = [];
  }

(* No_sharing matters for correctness, not just size: with sharing
   enabled the byte string depends on which of the (structurally equal)
   strings inside [t] are physically shared, so the same state reached
   through different rule firings could serialize differently and be
   visited twice.  The packed-vs-boxed differential suite caught exactly
   that: without this flag the boxed engine overcounts reachable
   states. *)
let key t = Marshal.to_string t [ Marshal.No_sharing ]

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let permute m ~nodes t =
  let remap_mask mask =
    List.fold_left
      (fun acc j -> if mask land (1 lsl j) <> 0 then acc lor (1 lsl (m j)) else acc)
      0
      (List.init nodes Fun.id)
  in
  let remap_endpoint e = if e >= 0 then m e else e in
  let reorder l =
    (* new position (m j) holds old entry j *)
    let arr = Array.of_list l in
    let out = Array.make (Array.length arr) (Array.get arr 0) in
    List.iteri (fun j x -> out.(m j) <- x) (Array.to_list arr);
    ignore l;
    Array.to_list out
  in
  {
    addrs =
      List.map
        (fun a ->
          {
            a with
            sharers = remap_mask a.sharers;
            busy =
              Option.map
                (fun b ->
                  {
                    b with
                    requester = remap_endpoint b.requester;
                    acks = remap_mask b.acks;
                    snapshot = remap_mask b.snapshot;
                  })
                a.busy;
          })
        t.addrs;
    caches = reorder t.caches;
    pend = reorder t.pend;
    queues =
      List.sort compare
        (List.map
           (fun ((src, dst, cls), q) ->
             ( (remap_endpoint src, remap_endpoint dst, cls),
               List.map
                 (fun msg ->
                   { msg with src = remap_endpoint msg.src;
                     dst = remap_endpoint msg.dst })
                 q ))
           t.queues);
  }

let canonical_key ~nodes t =
  let ids = List.init nodes Fun.id in
  List.fold_left
    (fun best perm ->
      let arr = Array.of_list perm in
      let k = key (permute (fun j -> arr.(j)) ~nodes t) in
      match best with Some b when b <= k -> best | _ -> Some k)
    None (permutations ids)
  |> Option.get

let update_nth l i f = List.mapi (fun j x -> if i = j then f x else x) l

let enqueue t ~cls msg =
  let k = msg.src, msg.dst, cls in
  let rec go = function
    | [] -> [ k, [ msg ] ]
    | ((k', q) as entry) :: rest ->
        if k' = k then (k, q @ [ msg ]) :: rest
        else if compare k' k > 0 then (k, [ msg ]) :: entry :: rest
        else entry :: go rest
  in
  { t with queues = go t.queues }

let dequeue t k =
  match List.assoc_opt k t.queues with
  | None | Some [] -> None
  | Some (msg :: rest) ->
      let queues =
        if rest = [] then List.remove_assoc k t.queues
        else List.map (fun (k', q) -> if k' = k then k', rest else k', q) t.queues
      in
      Some (msg, { t with queues })

let queue_heads t =
  List.filter_map
    (fun (k, q) -> match q with [] -> None | m :: _ -> Some (k, m))
    t.queues

let addr_state t a = List.nth t.addrs a
let set_addr t a st = { t with addrs = update_nth t.addrs a (fun _ -> st) }
let cache t ~node ~addr = List.nth (List.nth t.caches node) addr

let set_cache t ~node ~addr st =
  {
    t with
    caches = update_nth t.caches node (fun row -> update_nth row addr (fun _ -> st));
  }

let pending t ~node ~addr = List.nth (List.nth t.pend node) addr

let set_pending t ~node ~addr op =
  {
    t with
    pend = update_nth t.pend node (fun row -> update_nth row addr (fun _ -> op));
  }

let popcount mask =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 mask

let pv_encode mask =
  match popcount mask with 0 -> "zero" | 1 -> "one" | _ -> "gone"

let quiescent t =
  t.queues = []
  && List.for_all (fun a -> a.busy = None) t.addrs
  && List.for_all (List.for_all Option.is_none) t.pend

let pp fmt t =
  let node_sets mask =
    String.concat ","
      (List.filter_map
         (fun i -> if mask land (1 lsl i) <> 0 then Some (string_of_int i) else None)
         (List.init 16 Fun.id))
  in
  List.iteri
    (fun a st ->
      Format.fprintf fmt "addr %d: dir=%s sharers={%s}%s memfresh=%b@." a
        st.dirst (node_sets st.sharers)
        (match st.busy with
        | None -> ""
        | Some b ->
            Printf.sprintf " busy=%s req=%d acks={%s}" b.bst b.requester
              (node_sets b.acks))
        st.mem_fresh)
    t.addrs;
  List.iteri
    (fun n row ->
      Format.fprintf fmt "node %d: cache=[%s] pend=[%s]@." n
        (String.concat " " row)
        (String.concat " "
           (List.map (Option.value ~default:"-") (List.nth t.pend n))))
    t.caches;
  List.iter
    (fun ((src, dst, cls), q) ->
      Format.fprintf fmt "queue %d->%d %s: %s@." src dst cls
        (String.concat " " (List.map (fun m -> Printf.sprintf "%s(a%d)" m.m m.addr) q)))
    t.queues
