(** Bit-packed state vectors and the packed visited set.

    The throughput core of the checker: an {!Mstate.t} is encoded into a
    short immutable [int array] whose field widths are fixed once per
    model from per-field dictionary cardinalities
    ({!Relalg.Dict}), so the visited set compares and hashes machine
    words instead of Marshal strings.  [pack]/[unpack] are exact
    inverses over {e arbitrary} states (the qcheck battery in
    [test/test_pack.ml] proves round-trip and
    pack-equality ⟺ structural-equality), so counterexample replay and
    MSC rendering never notice the representation. *)

type layout
(** Field widths + dictionaries for one model shape.  Build once, share
    across a whole search; packing against a layout is safe from pool
    workers as long as the seed vocabulary covers every string that can
    appear (dictionary reads are lock-free; only unseen strings
    intern). *)

exception Overflow of string
(** A dictionary outgrew its field width (or a structural field its
    fixed width).  Recover with {!refresh}: vectors packed before the
    refresh remain decodable with the {e old} layout value. *)

val layout :
  nodes:int ->
  addrs:int ->
  capacity:int ->
  dirst:string list ->
  bst:string list ->
  cache:string list ->
  pend:string list ->
  msg:string list ->
  unit ->
  layout
(** [capacity] bounds per-channel queue length (one headroom bit is
    added); the five string lists seed the per-field dictionaries
    (typically harvested from the controller tables via
    {!Semantics.pack_vocab}).  Every field width gets one headroom bit,
    so a dictionary can roughly double before {!Overflow}. *)

val refresh : layout -> layout
(** Recompute field widths from current dictionary sizes (plus
    headroom).  The dictionaries are shared with the old layout — codes
    never change — but packed vectors are only comparable when produced
    by the same layout value. *)

val pack : ?perm:int array * int array -> layout -> Mstate.t -> int array
(** Encode.  [perm = (m, m⁻¹)] applies the node permutation [m] during
    encoding — [pack ~perm l st] equals [pack l (Mstate.permute m st)]
    without materializing the permuted state. *)

val unpack : layout -> int array -> Mstate.t
(** Exact inverse of {!pack} (with the identity permutation). *)

val canonical : layout -> Mstate.t -> int array
(** The lexicographically smallest packed vector over all node
    permutations: the packed analogue of {!Mstate.canonical_key}.
    Symmetric states canonicalize to the same vector. *)

val canonical_seeded : layout -> int array -> Mstate.t -> int array
(** [canonical_seeded l id st] equals [canonical l st] given
    [id = pack l st] (the identity packing, which callers deduping on
    exact identity have already paid for): the identity permutation is
    reused instead of re-encoded. *)

val equal : int array -> int array -> bool
(** Word-by-word compare; with a shared layout this is exactly
    structural state equality. *)

val hash : int array -> int
(** Deterministic across domains and runs (pure arithmetic, no seed). *)

val compare_packed : int array -> int array -> int
(** Total order (length, then lexicographic by word). *)

(** Sharded open-addressing visited set over packed vectors.  Each of
    the 64 shards has its own lock, so stealing workers contend only on
    shard collisions.  With [compact_bits n] only an n-bit fingerprint
    is stored per state (Stern–Dill hash compaction): memory is bounded
    and dedup stays O(1), but a fingerprint collision silently merges
    two distinct states — searches over a compacted set must be
    reported as probabilistic. *)
module Vset : sig
  type t

  val create : ?compact_bits:int -> unit -> t
  (** [compact_bits] must be within [8..62] when given. *)

  val add : t -> int array -> bool
  (** Insert; [true] iff the vector (or, compacted, its fingerprint) was
      not already present.  Thread-safe. *)

  val mem : t -> int array -> bool

  val cardinal : t -> int

  val iter : t -> (int array -> unit) -> unit
  (** Exact mode only.  @raise Invalid_argument on a compacted set. *)

  val probabilistic : t -> bool

  val words : t -> int
  (** Approximate heap words held in slots (capacity + stored vectors). *)
end
