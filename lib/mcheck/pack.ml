(* Bit-packed state vectors for the explicit-state checker.

   A model state is encoded into an immutable int array: every symbolic
   field (directory state, busy state, cache state, pending op, message
   name) is interned into a per-field dictionary (Relalg.Dict) and
   written as a fixed-width code, with the width computed once per model
   from the dictionary cardinality plus one headroom bit.  Dedup then
   becomes a machine-word hash plus a word-by-word compare instead of a
   Marshal string and polymorphic structural equality, and the encoding
   is exactly invertible ([unpack]) so counterexample replay and MSC
   rendering still see ordinary {!Mstate.t} values.

   The encoding is injective on arbitrary states, not just reachable
   ones: message endpoints are written explicitly per message (even
   though reachable states keep them redundant with the channel key),
   option fields carry a presence bit, and channels are written in a
   canonical order.  Injectivity is what lets pack-equality stand in for
   structural equality in the visited set — the qcheck battery in
   test/test_pack.ml checks both directions.

   Node permutations are applied *during* encoding ([pack ?perm]), so
   symmetry reduction (lexicographically minimal packed vector over all
   permutations) never materializes the permuted boxed state. *)

type field = {
  dict : Relalg.Dict.t;
  mutable width : int;
  memo : (string, int) Hashtbl.t;
      (* plain string → code shortcut so the hot path hashes the bare
         string once instead of boxing a [Value.Str]; grows only when
         the dictionary does (spawning domain, per the Dict contract) *)
}

exception Overflow of string

let bits_needed n =
  (* bits to represent codes 0 .. n-1 (at least 1) *)
  let rec go acc m = if m <= 1 then max 1 acc else go (acc + 1) ((m + 1) / 2) in
  go 0 n

let field_of_seed seed =
  let dict = Relalg.Dict.create () in
  let memo = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let c = Relalg.Dict.intern dict (Relalg.Value.Str s) in
      if not (Hashtbl.mem memo s) then Hashtbl.add memo s c)
    seed;
  (* one headroom bit: the dictionary may double before codes stop
     fitting, so a handful of late-interned strings never force a
     re-encode of the visited set *)
  { dict; width = bits_needed (max 2 (Relalg.Dict.size dict)) + 1; memo }

(* The message classes are a closed set fixed by the channel structure,
   not a dictionary: three bits, stable across every model. *)
let classes = [| "reqq"; "respq"; "snp"; "resp"; "ackq"; "memq" |]
let w_cls = 3

let cls_code name =
  let rec go i =
    if i >= Array.length classes then raise (Overflow ("class " ^ name))
    else if String.equal classes.(i) name then i
    else go (i + 1)
  in
  go 0

type layout = {
  nodes : int;
  addrs : int;
  f_dirst : field;
  f_bst : field;
  f_cache : field;
  f_pend : field;
  f_msg : field;
  w_ep : int;  (** endpoint, encoded as [e + 2] so dir/mem fit *)
  w_mask : int;  (** sharer/ack bitmask: one bit per node *)
  w_addr : int;
  w_qlen : int;
  w_qcount : int;
  id_perm : int array * int array;
  perms : (int array * int array) list;  (** (perm, inverse) pairs *)
}

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let layout ~nodes ~addrs ~capacity ~dirst ~bst ~cache ~pend ~msg () =
  let identity = Array.init nodes Fun.id in
  let perms =
    List.map
      (fun p ->
        let m = Array.of_list p in
        let inv = Array.make nodes 0 in
        Array.iteri (fun j mj -> inv.(mj) <- j) m;
        m, inv)
      (permutations (Array.to_list identity))
  in
  {
    nodes;
    addrs;
    f_dirst = field_of_seed dirst;
    f_bst = field_of_seed bst;
    f_cache = field_of_seed cache;
    f_pend = field_of_seed pend;
    f_msg = field_of_seed msg;
    w_ep = bits_needed (nodes + 2);
    w_mask = max 1 nodes;
    w_addr = bits_needed (max 2 addrs);
    (* queues can transiently exceed the model capacity by one while a
       successor is being built, and a layout may be probed with states
       from slightly larger configs; one headroom bit covers both *)
    w_qlen = bits_needed (max 2 (capacity + 2)) + 1;
    w_qcount = bits_needed (max 2 (6 * (nodes + 2) * (nodes + 2))) + 1;
    id_perm = identity, identity;
    perms;
  }

let refresh l =
  let grow f = { f with width = bits_needed (max 2 (Relalg.Dict.size f.dict)) + 1 } in
  {
    l with
    f_dirst = grow l.f_dirst;
    f_bst = grow l.f_bst;
    f_cache = grow l.f_cache;
    f_pend = grow l.f_pend;
    f_msg = grow l.f_msg;
  }

(* [code] stays read-only ([Dict.code_opt]) as long as the seed
   vocabulary covers the string — the property that makes packing safe
   from pool workers.  A genuinely new string interns (spawning domain
   only, by the Dict contract) and raises once it outgrows the field
   width; callers then [refresh] into a wider layout. *)
let code what f s =
  let c =
    match Hashtbl.find_opt f.memo s with
    | Some c -> c
    | None ->
        let c = Relalg.Dict.intern f.dict (Relalg.Value.Str s) in
        Hashtbl.add f.memo s c;
        c
  in
  if c >= 1 lsl f.width then
    raise (Overflow (Printf.sprintf "%s %S: code %d needs more than %d bits" what s c f.width))
  else c

(* --------------------------- bit stream -------------------------------
   62 payload bits per word keeps every shift strictly inside OCaml's
   63-bit native int, on both sides of a word boundary. *)

let word_bits = 62
let word_mask = (1 lsl word_bits) - 1

type writer = {
  mutable buf : int array;
  mutable bit : int;
  (* Canonical-scan cutoff.  While [cut_i >= 0], every word the writer
     completes is compared against the incumbent minimum [cut]: the
     moment a completed word is greater the whole encoding is provably
     greater (words are written most-significant-field first and never
     touched again once [bit] moves past them), so the pack aborts with
     {!Cut}; a smaller word decides the scan the other way and disables
     further compares ([cut_i <- -1]).  [-1] also means "no cutoff". *)
  mutable cut : int array;
  mutable cut_i : int;
}

exception Cut

let writer () = { buf = Array.make 4 0; bit = 0; cut = [||]; cut_i = -1 }

let put wr ~width v =
  if v < 0 || v >= 1 lsl width then
    raise (Overflow (Printf.sprintf "value %d exceeds %d-bit field" v width));
  let iw = wr.bit / word_bits and ib = wr.bit mod word_bits in
  if iw + 1 >= Array.length wr.buf then begin
    let buf = Array.make (2 * Array.length wr.buf) 0 in
    Array.blit wr.buf 0 buf 0 (Array.length wr.buf);
    wr.buf <- buf
  end;
  wr.buf.(iw) <- wr.buf.(iw) lor (v lsl ib land word_mask);
  if ib + width > word_bits then wr.buf.(iw + 1) <- v lsr (word_bits - ib);
  wr.bit <- wr.bit + width;
  if wr.cut_i >= 0 then begin
    let cw = wr.bit / word_bits in
    while wr.cut_i >= 0 && wr.cut_i < cw && wr.cut_i < Array.length wr.cut do
      let i = wr.cut_i in
      let a = Array.unsafe_get wr.buf i and b = Array.unsafe_get wr.cut i in
      if a > b then raise Cut
      else if a < b then wr.cut_i <- -1
      else wr.cut_i <- i + 1
    done
  end

let contents wr =
  let words = (wr.bit + word_bits - 1) / word_bits in
  Array.sub wr.buf 0 (max 1 words)

type reader = { r_buf : int array; mutable r_bit : int }

let reader v = { r_buf = v; r_bit = 0 }

let get rd ~width =
  let iw = rd.r_bit / word_bits and ib = rd.r_bit mod word_bits in
  let lo = rd.r_buf.(iw) lsr ib land ((1 lsl width) - 1) in
  let v =
    if ib + width <= word_bits then lo
    else
      lo
      lor (rd.r_buf.(iw + 1) land ((1 lsl (ib + width - word_bits)) - 1))
          lsl (word_bits - ib)
  in
  rd.r_bit <- rd.r_bit + width;
  v

(* ------------------------------ encode ------------------------------- *)

let b2i b = if b then 1 else 0

let remap_mask m nodes mask =
  let acc = ref 0 in
  for j = 0 to nodes - 1 do
    if mask land (1 lsl j) <> 0 then acc := !acc lor (1 lsl m.(j))
  done;
  !acc

let remap_ep m e = if e >= 0 then m.(e) else e

let pack_into wr ?perm l (st : Mstate.t) =
  let m, minv = match perm with Some p -> p | None -> l.id_perm in
  let put_busy = function
    | None ->
        put wr ~width:1 0;
        put wr ~width:l.f_bst.width 0;
        put wr ~width:l.w_ep 0;
        put wr ~width:l.w_mask 0;
        put wr ~width:l.w_mask 0;
        put wr ~width:1 0
    | Some (b : Mstate.busy) ->
        put wr ~width:1 1;
        put wr ~width:l.f_bst.width (code "bst" l.f_bst b.bst);
        put wr ~width:l.w_ep (remap_ep m b.requester + 2);
        put wr ~width:l.w_mask (remap_mask m l.nodes b.acks);
        put wr ~width:l.w_mask (remap_mask m l.nodes b.snapshot);
        put wr ~width:1 (b2i b.data_fresh)
  in
  List.iter
    (fun (a : Mstate.addr_state) ->
      put wr ~width:l.f_dirst.width (code "dirst" l.f_dirst a.dirst);
      put wr ~width:l.w_mask (remap_mask m l.nodes a.sharers);
      put wr ~width:1 (b2i a.mem_fresh);
      put_busy a.busy)
    st.addrs;
  (* per-node rows, emitted in permuted order: output row i is the
     original row m⁻¹(i), matching Mstate.permute's reorder *)
  let caches = Array.of_list st.caches in
  let pend = Array.of_list st.pend in
  for i = 0 to l.nodes - 1 do
    List.iter
      (fun c -> put wr ~width:l.f_cache.width (code "cache" l.f_cache c))
      caches.(minv.(i))
  done;
  for i = 0 to l.nodes - 1 do
    List.iter
      (fun p ->
        match p with
        | None ->
            put wr ~width:1 0;
            put wr ~width:l.f_pend.width 0
        | Some op ->
            put wr ~width:1 1;
            put wr ~width:l.f_pend.width (code "pend" l.f_pend op))
      pend.(minv.(i))
  done;
  (* channels, sorted by the canonical (src+2, dst+2, class-code) order
     after endpoint remapping; message FIFO order is preserved *)
  let chans =
    List.sort compare
      (List.map
         (fun ((src, dst, cls), q) ->
           (remap_ep m src + 2, remap_ep m dst + 2, cls_code cls), q)
         st.queues)
  in
  put wr ~width:l.w_qcount (List.length chans);
  List.iter
    (fun ((src2, dst2, cc), q) ->
      put wr ~width:l.w_ep src2;
      put wr ~width:l.w_ep dst2;
      put wr ~width:w_cls cc;
      put wr ~width:l.w_qlen (List.length q);
      List.iter
        (fun (msg : Mstate.msg) ->
          put wr ~width:l.f_msg.width (code "msg" l.f_msg msg.m);
          put wr ~width:l.w_ep (remap_ep m msg.src + 2);
          put wr ~width:l.w_ep (remap_ep m msg.dst + 2);
          put wr ~width:l.w_addr msg.addr;
          put wr ~width:1 (b2i msg.fresh))
        q)
    chans

let pack ?perm l st =
  let wr = writer () in
  pack_into wr ?perm l st;
  contents wr

(* ------------------------------ decode ------------------------------- *)

let decode what f c =
  match Relalg.Dict.value f.dict c with
  | Relalg.Value.Str s -> s
  | _ -> invalid_arg ("Pack.unpack: non-string " ^ what ^ " code")

let unpack l v : Mstate.t =
  let rd = reader v in
  let addrs =
    List.init l.addrs (fun _ ->
        let dirst = decode "dirst" l.f_dirst (get rd ~width:l.f_dirst.width) in
        let sharers = get rd ~width:l.w_mask in
        let mem_fresh = get rd ~width:1 = 1 in
        let present = get rd ~width:1 = 1 in
        let bst_c = get rd ~width:l.f_bst.width in
        let requester = get rd ~width:l.w_ep - 2 in
        let acks = get rd ~width:l.w_mask in
        let snapshot = get rd ~width:l.w_mask in
        let data_fresh = get rd ~width:1 = 1 in
        let busy =
          if not present then None
          else
            Some
              {
                Mstate.bst = decode "bst" l.f_bst bst_c;
                requester;
                acks;
                snapshot;
                data_fresh;
              }
        in
        { Mstate.dirst; sharers; busy; mem_fresh })
  in
  let caches =
    List.init l.nodes (fun _ ->
        List.init l.addrs (fun _ ->
            decode "cache" l.f_cache (get rd ~width:l.f_cache.width)))
  in
  let pend =
    List.init l.nodes (fun _ ->
        List.init l.addrs (fun _ ->
            let present = get rd ~width:1 = 1 in
            let c = get rd ~width:l.f_pend.width in
            if present then Some (decode "pend" l.f_pend c) else None))
  in
  let nchans = get rd ~width:l.w_qcount in
  let chans =
    List.init nchans (fun _ ->
        let src = get rd ~width:l.w_ep - 2 in
        let dst = get rd ~width:l.w_ep - 2 in
        let cls = classes.(get rd ~width:w_cls) in
        let qlen = get rd ~width:l.w_qlen in
        let q =
          List.init qlen (fun _ ->
              let mname = decode "msg" l.f_msg (get rd ~width:l.f_msg.width) in
              let msrc = get rd ~width:l.w_ep - 2 in
              let mdst = get rd ~width:l.w_ep - 2 in
              let maddr = get rd ~width:l.w_addr in
              let fresh = get rd ~width:1 = 1 in
              { Mstate.m = mname; src = msrc; dst = mdst; addr = maddr; fresh })
        in
        (src, dst, cls), q)
  in
  (* restore Mstate's invariant order: sorted by the raw (src, dst, cls)
     key — the canonical pack order agrees on endpoints but ranks
     classes by code, not alphabetically *)
  { addrs; caches; pend; queues = List.sort compare chans }

(* --------------------------- word-level ops --------------------------- *)

let equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i =
    i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
  in
  go 0

(* Pure arithmetic — no per-process salt, no Domain state — so the same
   vector hashes identically on every domain and in every run. *)
let hash v =
  let h = ref 0x3ade68b1 in
  for i = 0 to Array.length v - 1 do
    let x = !h lxor Array.unsafe_get v i in
    let x = x * 0x2545F4914F6CDD1D land max_int in
    h := x lxor (x lsr 31)
  done;
  !h

let compare_packed a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let c = compare (Array.unsafe_get a i) (Array.unsafe_get b i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

(* One scratch writer serves every permutation: the encoded bit length
   of a state is permutation-invariant (same fields, same queue
   lengths), so candidates compare word-for-word in the scratch buffer
   and only the running minimum is ever copied out.  [seed], when
   given, must be the identity packing of [st]; the identity
   permutation is then skipped instead of re-encoded. *)
let canonical_loop ?seed l st =
  let wr = writer () in
  let best = ref (match seed with Some v -> v | None -> [||]) in
  List.iter
    (fun ((m, _) as perm) ->
      if not (seed <> None && m = fst l.id_perm) then begin
        Array.fill wr.buf 0 (Array.length wr.buf) 0;
        wr.bit <- 0;
        (* arm the writer's cutoff against the incumbent minimum: most
           candidate permutations lose on the first completed word (the
           directory/cache section) and abort after a fraction of the
           encoding (encoded length is permutation-invariant, so
           word-for-word compare against [best] is sound mid-pack) *)
        wr.cut <- !best;
        wr.cut_i <- (if Array.length !best = 0 then -1 else 0);
        match pack_into wr ~perm l st with
        | exception Cut -> wr.cut_i <- -1 (* provably greater: skip *)
        | () ->
            let words = max 1 ((wr.bit + word_bits - 1) / word_bits) in
            let decided_smaller = Array.length !best > 0 && wr.cut_i < 0 in
            let tail_start = max 0 wr.cut_i in
            wr.cut_i <- -1;
            let better =
              Array.length !best = 0 || decided_smaller
              ||
              (* equal prefix up to the last complete word: compare the
                 (at most one partial) tail *)
              let rec go i =
                if i >= words then false
                else
                  let a = Array.unsafe_get wr.buf i
                  and b = Array.unsafe_get !best i in
                  if a < b then true else if a > b then false else go (i + 1)
              in
              go tail_start
            in
            if better then best := Array.sub wr.buf 0 words
      end)
    l.perms;
  !best

let canonical l st =
  match l.perms with [] | [ _ ] -> pack l st | _ -> canonical_loop l st

let canonical_seeded l seed st =
  match l.perms with [] | [ _ ] -> seed | _ -> canonical_loop ~seed l st

(* --------------------------- visited set -----------------------------

   Open-addressing hash sets sharded 64 ways: the shard index comes from
   the low hash bits, the probe sequence from the high bits, and each
   shard carries its own lock, so concurrent inserts from stealing
   workers contend only when they land in the same shard.  In exact mode
   the packed vectors themselves are stored and compared word-by-word;
   with [compact_bits n] only an n-bit fingerprint of the hash survives
   (Stern–Dill hash compaction), which bounds memory at the cost of a
   fingerprint collision silently merging two distinct states — callers
   must report such searches as probabilistic. *)

module Vset = struct
  let shard_count = 64

  type shard = {
    lock : Mutex.t;
    mutable keys : int array array;  (** exact: [[||]] marks an empty slot *)
    mutable fps : int array;  (** compact: [0] marks an empty slot *)
    mutable count : int;
    mutable mask : int;
  }

  type t = { shards : shard array; compact : int option }

  let create ?compact_bits () =
    (match compact_bits with
    | Some n when n < 8 || n > 62 ->
        invalid_arg "Vset.create: compact_bits must be in 8..62"
    | _ -> ());
    let mk () =
      {
        lock = Mutex.create ();
        keys = (if compact_bits = None then Array.make 64 [||] else [||]);
        fps = (if compact_bits = None then [||] else Array.make 64 0);
        count = 0;
        mask = 63;
      }
    in
    { shards = Array.init shard_count (fun _ -> mk ()); compact = compact_bits }

  let probabilistic t = t.compact <> None

  let fingerprint bits h =
    let fp = (h lsr 6) land ((1 lsl bits) - 1) in
    if fp = 0 then 1 else fp

  let grow_exact s =
    let old = s.keys in
    let cap = 2 * Array.length old in
    s.keys <- Array.make cap [||];
    s.mask <- cap - 1;
    Array.iter
      (fun k ->
        if Array.length k > 0 then begin
          let i = ref (hash k lsr 6 land s.mask) in
          while Array.length s.keys.(!i) > 0 do
            i := (!i + 1) land s.mask
          done;
          s.keys.(!i) <- k
        end)
      old

  let grow_compact s =
    let old = s.fps in
    let cap = 2 * Array.length old in
    s.fps <- Array.make cap 0;
    s.mask <- cap - 1;
    Array.iter
      (fun fp ->
        if fp <> 0 then begin
          let i = ref (fp land s.mask) in
          while s.fps.(!i) <> 0 do
            i := (!i + 1) land s.mask
          done;
          s.fps.(!i) <- fp
        end)
      old

  (* [add t v] inserts and reports whether [v] was new. *)
  let add t v =
    let h = hash v in
    let si = h land (shard_count - 1) in
    let s = t.shards.(si) in
    Mutex.lock s.lock;
    let inserted =
      match t.compact with
      | None ->
          let rec probe i =
            let k = s.keys.(i) in
            if Array.length k = 0 then begin
              s.keys.(i) <- v;
              s.count <- s.count + 1;
              if 2 * s.count >= Array.length s.keys then begin
                grow_exact s;
                (* shard pressure: the open-addressing table doubled *)
                Obs.Flightrec.record ~tag:Obs.Flightrec.tag_compact ~a:si
                  ~b:(Array.length s.keys) ()
              end;
              true
            end
            else if equal k v then false
            else probe ((i + 1) land s.mask)
          in
          probe (h lsr 6 land s.mask)
      | Some bits ->
          let fp = fingerprint bits h in
          let rec probe i =
            if s.fps.(i) = 0 then begin
              s.fps.(i) <- fp;
              s.count <- s.count + 1;
              if 2 * s.count >= Array.length s.fps then begin
                grow_compact s;
                Obs.Flightrec.record ~tag:Obs.Flightrec.tag_compact ~a:si
                  ~b:(Array.length s.fps) ()
              end;
              true
            end
            else if s.fps.(i) = fp then false
            else probe ((i + 1) land s.mask)
          in
          probe (fp land s.mask)
    in
    Mutex.unlock s.lock;
    inserted

  let mem t v =
    let h = hash v in
    let s = t.shards.(h land (shard_count - 1)) in
    Mutex.lock s.lock;
    let found =
      match t.compact with
      | None ->
          let rec probe i =
            let k = s.keys.(i) in
            if Array.length k = 0 then false
            else if equal k v then true
            else probe ((i + 1) land s.mask)
          in
          probe (h lsr 6 land s.mask)
      | Some bits ->
          let fp = fingerprint bits h in
          let rec probe i =
            if s.fps.(i) = 0 then false
            else if s.fps.(i) = fp then true
            else probe ((i + 1) land s.mask)
          in
          probe (fp land s.mask)
    in
    Mutex.unlock s.lock;
    found

  let cardinal t =
    Array.fold_left (fun acc s -> acc + s.count) 0 t.shards

  let iter t f =
    if t.compact <> None then
      invalid_arg "Vset.iter: compacted sets hold fingerprints, not states";
    Array.iter
      (fun s -> Array.iter (fun k -> if Array.length k > 0 then f k) s.keys)
      t.shards

  let words t =
    Array.fold_left
      (fun acc s ->
        acc + Array.length s.fps
        + Array.fold_left (fun a k -> a + 1 + Array.length k) 0 s.keys)
      0 t.shards
end
