open Mstate

(* A compiled rule list plus the runtime Table.id of the table it came
   from, so every fired rule can be charged to its source row in the
   transition-coverage bitmaps.

   [index] is an optional dispatch accelerator built by {!index_tables}:
   rules bucketed by the value their guard binds one discriminating
   column to (the input message name, in practice).  A bucket holds, in
   the original priority order, exactly the rules that can match a
   binding carrying that value — rules that leave the column
   unconstrained appear in every bucket — so first-match evaluation over
   a bucket returns the same row as a scan of the full list.  The
   reference engines never build the index; the packed engines do, which
   turns the per-delivery O(|table|) guard scan into a scan of a few
   candidate rows. *)
type rule_index =
  | Flat of Mapping.Codegen.rule list
  | Split of {
      disc : string;
      buckets : (string, rule_index) Hashtbl.t;
      unbound : rule_index;
          (* rules whose guard leaves [disc] free: the candidates for a
             discriminator value no guard ever names *)
      all : Mapping.Codegen.rule list;
          (* fallback when a binding doesn't carry [disc] at all *)
    }

type ruleset = {
  rules : Mapping.Codegen.rule list;
  cov : int;
  index : rule_index option;
}

type tables = {
  d_rules : ruleset;
  c_rules : ruleset;
  n_rules : ruleset;
  pif_rules : ruleset;
  m_rules : ruleset;
  io_rules : ruleset;
}

let ruleset_of_table ~inputs ~outputs t =
  let rules = Mapping.Codegen.rules_of_table ~inputs ~outputs t in
  Obs.Coverage.register ~id:(Relalg.Table.id t)
    ~name:(Relalg.Table.name t)
    ~rows:(Relalg.Table.cardinality t);
  { rules; cov = Relalg.Table.id t; index = None }

let rules_of (c : Protocol.controller) =
  let spec = c.Protocol.spec in
  ruleset_of_table
    ~inputs:(Protocol.Ctrl_spec.input_columns spec)
    ~outputs:(Protocol.Ctrl_spec.output_columns spec)
    (Protocol.Ctrl_spec.table spec)

let load_tables_with ?dir () =
  let d_rules =
    match dir with
    | None -> rules_of Protocol.directory
    | Some spec ->
        ruleset_of_table
          ~inputs:(Protocol.Ctrl_spec.input_columns spec)
          ~outputs:(Protocol.Ctrl_spec.output_columns spec)
          (fst (Protocol.Ctrl_spec.generate spec))
  in
  {
    d_rules;
    c_rules = rules_of Protocol.cache;
    n_rules = rules_of Protocol.node;
    pif_rules = rules_of Protocol.pif;
    m_rules = rules_of Protocol.memory;
    io_rules = rules_of Protocol.io;
  }

let load_tables () = load_tables_with ()

(* The discriminator is the guard column with the most distinct values
   (ties broken by how many guards constrain it): the input message name
   for the delivery tables, the processor op for PIF.  More distinct
   values means smaller buckets. *)
let best_disc rules =
  let vals : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let hits : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Mapping.Codegen.rule) ->
      List.iter
        (fun (c, v) ->
          Hashtbl.replace hits c
            (1 + Option.value (Hashtbl.find_opt hits c) ~default:0);
          let seen = Option.value (Hashtbl.find_opt vals c) ~default:[] in
          if not (List.mem v seen) then Hashtbl.replace vals c (v :: seen))
        r.guard)
    rules;
  Hashtbl.fold
    (fun c vs best ->
      let score = (List.length vs, Hashtbl.find hits c) in
      match best with
      | Some (_, bs) when bs >= score -> best
      | _ -> Some (c, score))
    vals None
  |> Option.map fst

(* Buckets bigger than this get split again on the next-best column
   (e.g. D splits on inmsg, then within a message on dirst); depth is
   bounded so degenerate tables can't recurse forever. *)
let split_threshold = 8

let rec build_index fuel rules =
  if fuel = 0 || List.length rules <= split_threshold then Flat rules
  else
    match best_disc rules with
    | None -> Flat rules
    | Some disc ->
        let values =
          List.sort_uniq compare
            (List.filter_map
               (fun (r : Mapping.Codegen.rule) -> List.assoc_opt disc r.guard)
               rules)
        in
        let bucket_of v =
          List.filter
            (fun (r : Mapping.Codegen.rule) ->
              match List.assoc_opt disc r.guard with
              | Some g -> String.equal g v
              | None -> true)
            rules
        in
        let bs = List.map (fun v -> (v, bucket_of v)) values in
        if
          (* no progress: every bucket is the whole list (all guards
             agree on one value, or none constrain the column) *)
          List.for_all
            (fun (_, b) -> List.length b = List.length rules)
            bs
        then Flat rules
        else begin
          let buckets = Hashtbl.create (2 * List.length values) in
          List.iter
            (fun (v, b) -> Hashtbl.replace buckets v (build_index (fuel - 1) b))
            bs;
          let unbound =
            List.filter
              (fun (r : Mapping.Codegen.rule) ->
                List.assoc_opt disc r.guard = None)
              rules
          in
          Split
            { disc; buckets; unbound = build_index (fuel - 1) unbound;
              all = rules }
        end

let index_ruleset rs =
  match build_index 3 rs.rules with
  | Flat _ -> rs
  | index -> { rs with index = Some index }

let index_tables t =
  {
    d_rules = index_ruleset t.d_rules;
    c_rules = index_ruleset t.c_rules;
    n_rules = index_ruleset t.n_rules;
    pif_rules = index_ruleset t.pif_rules;
    m_rules = index_ruleset t.m_rules;
    io_rules = index_ruleset t.io_rules;
  }

let directory_rules t = t.d_rules.rules

(* Every symbolic string a reachable state can contain comes out of a
   controller-table cell: harvest them per column, so the bit-packer can
   seed its per-field dictionaries up front and pool workers never
   intern (Pack relies on the read-only Dict.code_opt fast path). *)
let pack_vocab t =
  let tbl : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let record (col, v) =
    let prev = Option.value (Hashtbl.find_opt tbl col) ~default:[] in
    if not (List.mem v prev) then Hashtbl.replace tbl col (v :: prev)
  in
  List.iter
    (fun rs ->
      List.iter
        (fun (r : Mapping.Codegen.rule) ->
          List.iter record r.guard;
          List.iter record r.action)
        rs.rules)
    [ t.d_rules; t.c_rules; t.n_rules; t.pif_rules; t.m_rules; t.io_rules ];
  Hashtbl.fold
    (fun col vs acc -> (col, List.sort compare vs) :: acc)
    tbl []
  |> List.sort compare

type config = {
  nodes : int;
  addrs : int;
  ops : string list;
  capacity : int;
  io_addrs : int list;  (* addresses living in the uncached I/O space *)
  lossy : bool;  (* inter-node links may drop messages (LK crcdrop) *)
}
type outcome = Next of Mstate.t | Broken of string

(* The single choke point where controller-table rows fire: record the
   matched row in the coverage bitmap (a no-op branch when coverage is
   off — safe from parallel workers, see Obs.Coverage). *)
let rec index_candidates idx binding =
  match idx with
  | Flat rules -> rules
  | Split { disc; buckets; unbound; all } -> (
      match List.assoc_opt disc binding with
      | None -> all (* binding doesn't carry the discriminator *)
      | Some v -> (
          match Hashtbl.find_opt buckets v with
          | Some sub -> index_candidates sub binding
          | None -> index_candidates unbound binding))

let eval rs binding =
  let candidates =
    match rs.index with
    | None -> rs.rules
    | Some idx -> index_candidates idx binding
  in
  match Mapping.Codegen.eval_rule candidates binding with
  | None -> None
  | Some r ->
      Obs.Coverage.record ~id:rs.cov ~row:r.Mapping.Codegen.row;
      (* same (table id, row) attribution as coverage, so flight-recorded
         firings decode through the identical registry *)
      Obs.Flightrec.record ~tag:Obs.Flightrec.tag_fire ~a:rs.cov
        ~b:r.Mapping.Codegen.row ();
      Some r.Mapping.Codegen.action
let bit n = 1 lsl n
let data_bearing m =
  List.mem m
    [ "data"; "datax"; "mdata"; "sdata"; "swbdata"; "wb"; "mwrite"; "mupdate" ]

(* The request a node reissues after a retry, from its pending op. *)
let request_of_pendop = function
  | "read" -> Some "read"
  | "ifetch" -> Some "fetch"
  | "write" -> Some "readex"
  | "rmw" -> Some "swap"
  | "upgrade" -> Some "upgrade"
  | "wback" -> Some "wb"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Directory                                                           *)
(* ------------------------------------------------------------------ *)

let dir_binding config st ~cls msg =
  let a = addr_state st msg.addr in
  let addrspace =
    if List.mem msg.addr config.io_addrs then "io" else "mem"
  in
  let src_role =
    if cls = "reqq" || cls = "ackq" then "local"
    else if msg.src = mem then "home"
    else "remote"
  in
  [
    "inmsg", msg.m; "inmsgsrc", src_role; "inmsgdest", "home";
    "inmsgres", cls; "addrspace", addrspace; "dirst", a.dirst;
    "dirpv", pv_encode a.sharers;
    "reqpv", (if a.sharers land bit msg.src <> 0 then "in" else "out");
    "bdirst", (match a.busy with Some b -> b.bst | None -> "I");
    "bdirpv", (match a.busy with Some b -> pv_encode b.acks | None -> "zero");
    "dirlookup", (if a.dirst = "I" then "miss" else "hit");
    "bdirlookup", (if a.busy = None then "miss" else "hit");
  ]

let deliver_dir tables config st cls msg =
  let a = addr_state st msg.addr in
  let binding = dir_binding config st ~cls msg in
  match eval tables.d_rules binding with
  | None ->
      Broken
        (Printf.sprintf "D has no row for %s (%s) dirst=%s bdirst=%s" msg.m
           (List.assoc "inmsgsrc" binding)
           a.dirst
           (match a.busy with Some b -> b.bst | None -> "I"))
  | Some outputs ->
      let field c = List.assoc_opt c outputs in
      let requester =
        match cls, a.busy with
        | "reqq", _ -> msg.src
        | _, Some b -> b.requester
        | _, None -> msg.src
      in
      (* freshness of any data this row forwards to the requester *)
      let incoming_fresh =
        if data_bearing msg.m then Some msg.fresh else None
      in
      let forwarded_fresh =
        match incoming_fresh, a.busy with
        | Some f, _ -> f
        | None, Some b -> b.data_fresh
        | None, None -> true
      in
      (* snoop targets, before any state update *)
      let drepl = field "nxtbdirpv" = Some "drepl" in
      let targets =
        match field "remmsg" with
        | None -> 0
        | Some "sinv" ->
            if drepl then a.sharers land lnot (bit requester) else a.sharers
        | Some _ -> a.sharers
      in
      let st = ref st in
      (match field "locmsg" with
      | Some locmsg ->
          st :=
            enqueue !st ~cls:"resp"
              {
                m = locmsg; src = dir; dst = requester; addr = msg.addr;
                fresh =
                  (if data_bearing locmsg then forwarded_fresh else true);
              }
      | None -> ());
      (match field "remmsg" with
      | Some remmsg ->
          List.iter
            (fun n ->
              if targets land bit n <> 0 then
                st :=
                  enqueue !st ~cls:"snp"
                    { m = remmsg; src = dir; dst = n; addr = msg.addr;
                      fresh = true })
            (List.init 16 Fun.id)
      | None -> ());
      (match field "memmsg" with
      | Some memmsg ->
          st :=
            enqueue !st ~cls:"memq"
              {
                m = memmsg; src = dir; dst = mem; addr = msg.addr;
                fresh =
                  (if memmsg = "mwrite" || memmsg = "mupdate" then
                     forwarded_fresh
                   else true);
              }
      | None -> ());
      (* busy-directory operation *)
      let base = match a.busy with Some b -> b.snapshot | None -> a.sharers in
      let busy' =
        match field "bdirop" with
        | Some "alloc" ->
            Some
              {
                bst = Option.value (field "nxtbdirst") ~default:"I";
                requester;
                acks = targets;
                snapshot =
                  (if drepl then a.sharers land lnot (bit requester)
                   else a.sharers);
                data_fresh = forwarded_fresh;
              }
        | Some "update" ->
            Option.map
              (fun b ->
                let acks =
                  if
                    cls = "respq"
                    && List.mem msg.m
                         [ "idone"; "sack"; "snack"; "sdata"; "swbdata" ]
                  then b.acks land lnot (bit msg.src)
                  else b.acks
                in
                {
                  b with
                  bst = Option.value (field "nxtbdirst") ~default:b.bst;
                  acks;
                  data_fresh = forwarded_fresh;
                })
              a.busy
        | Some "dealloc" -> None
        | _ -> a.busy
      in
      (* directory state and concrete presence-vector operation *)
      let dirst' = Option.value (field "nxtdirst") ~default:a.dirst in
      let sharers' =
        match field "nxtdirpv" with
        | Some "repl" -> bit requester
        | Some "inc" -> base lor bit requester
        | Some "dec" ->
            let actor = if cls = "reqq" then msg.src else requester in
            a.sharers land lnot (bit actor)
        | Some "drepl" -> base land lnot (bit requester)
        | _ -> a.sharers
      in
      let sharers' = if field "nxtdirst" = Some "I" then 0 else sharers' in
      st :=
        set_addr !st msg.addr
          { a with dirst = dirst'; sharers = sharers'; busy = busy' };
      Next !st

(* ------------------------------------------------------------------ *)
(* Node: snoops and responses                                          *)
(* ------------------------------------------------------------------ *)

let deliver_snoop tables st node msg =
  let binding =
    [
      "inmsg", msg.m; "inmsgsrc", "home"; "inmsgdest", "remote";
      "inmsgres", "snpq"; "cachest", cache st ~node ~addr:msg.addr;
    ]
  in
  match eval tables.c_rules binding with
  | None ->
      Broken
        (Printf.sprintf "C has no row for %s at node %d in %s" msg.m node
           (cache st ~node ~addr:msg.addr))
  | Some outputs ->
      let st = ref st in
      (match List.assoc_opt "respmsg" outputs with
      | Some resp ->
          st :=
            enqueue !st ~cls:"respq"
              { m = resp; src = node; dst = dir; addr = msg.addr; fresh = true }
      | None -> ());
      (match List.assoc_opt "nxtcachest" outputs with
      | Some c -> st := set_cache !st ~node ~addr:msg.addr c
      | None -> ());
      Next !st

let deliver_response tables st node msg =
  let pendop = pending st ~node ~addr:msg.addr in
  let binding =
    [
      "inmsg", msg.m; "inmsgsrc", "home"; "inmsgdest", "local";
      "inmsgres", "respq";
      "pendop", Option.value pendop ~default:"none";
    ]
  in
  match eval tables.n_rules binding with
  | None ->
      Broken
        (Printf.sprintf "N has no row for %s at node %d pending %s" msg.m node
           (Option.value pendop ~default:"none"))
  | Some outputs ->
      let field c = List.assoc_opt c outputs in
      if data_bearing msg.m && not msg.fresh then
        Broken
          (Printf.sprintf "stale data: %s delivered to node %d for addr %d"
             msg.m node msg.addr)
      else begin
        let st = ref st in
        (match field "cachefill" with
        | Some "shared" -> st := set_cache !st ~node ~addr:msg.addr "S"
        | Some "excl" ->
            st := set_cache !st ~node ~addr:msg.addr "M";
            (* the new owner will write: memory is no longer current *)
            let a = addr_state !st msg.addr in
            st := set_addr !st msg.addr { a with mem_fresh = false }
        | _ -> ());
        (match field "ackmsg" with
        | Some ackmsg ->
            st :=
              enqueue !st ~cls:"ackq"
                { m = ackmsg; src = node; dst = dir; addr = msg.addr;
                  fresh = true }
        | None -> ());
        (match field "procresult" with
        | Some ("done" | "fault") ->
            st := set_pending !st ~node ~addr:msg.addr None
        | Some "retrylater" -> (
            (* the node controller emits nothing: the processor interface
               reissues later, as a separate (backpressurable) step --
               consuming a retry must never need request-channel space *)
            match pendop with
            | Some op ->
                st := set_pending !st ~node ~addr:msg.addr (Some ("backoff:" ^ op))
            | None -> ())
        | _ -> ());
        Next !st
      end

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let deliver_mem tables st msg =
  let io_request = msg.m = "mioread" || msg.m = "miowrite" in
  let binding =
    [ "inmsg", msg.m; "inmsgsrc", "home"; "inmsgdest", "home";
      "inmsgres", "memq" ]
    @ (if io_request then [ "devst", "ready" ] else [ "eccst", "ok" ])
  in
  match eval (if io_request then tables.io_rules else tables.m_rules) binding with
  | None -> Broken (Printf.sprintf "M/IO has no row for %s" msg.m)
  | Some outputs ->
      let a = addr_state st msg.addr in
      let st =
        if msg.m = "mwrite" || msg.m = "mupdate" then
          set_addr st msg.addr { a with mem_fresh = msg.fresh }
        else st
      in
      let a = addr_state st msg.addr in
      let st =
        match List.assoc_opt "outmsg" outputs with
        | Some resp ->
            enqueue st ~cls:"respq"
              {
                m = resp; src = mem; dst = dir; addr = msg.addr;
                fresh = (if resp = "mdata" then a.mem_fresh else true);
              }
        | None -> st
      in
      Next st

(* ------------------------------------------------------------------ *)
(* Processor issue                                                     *)
(* ------------------------------------------------------------------ *)

let issue tables st node addr op =
  let cachest = cache st ~node ~addr in
  let binding = [ "procop", op; "cachest", cachest ] in
  match eval tables.pif_rules binding with
  | None -> None
  | Some outputs ->
      let field c = List.assoc_opt c outputs in
      (match field "reqmsg" with
      | None -> None (* a pure cache hit changes nothing: skip *)
      | Some req ->
          let st =
            enqueue st ~cls:"reqq"
              { m = req; src = node; dst = dir; addr; fresh = true }
          in
          let st =
            match field "pendop" with
            | Some p -> set_pending st ~node ~addr (Some p)
            | None -> st
          in
          (* evictions drop the line from the cache as they issue *)
          let st =
            if op = "evictmod" || op = "evictsh" then
              set_cache st ~node ~addr "I"
            else st
          in
          Some st)

(* A backed-off operation re-enters the network as a fresh request. *)
let backoff_of pend =
  match pend with
  | Some s when String.length s > 8 && String.sub s 0 8 = "backoff:" ->
      Some (String.sub s 8 (String.length s - 8))
  | _ -> None

let reissue st ~node ~addr =
  match backoff_of (pending st ~node ~addr) with
  | None -> None
  | Some op -> (
      match request_of_pendop op with
      | None -> None
      | Some req ->
          let st =
            enqueue st ~cls:"reqq"
              { m = req; src = node; dst = dir; addr; fresh = true }
          in
          Some (set_pending st ~node ~addr (Some op)))

(* ------------------------------------------------------------------ *)
(* Successor relation and structural checks                            *)
(* ------------------------------------------------------------------ *)

let within_capacity config st =
  List.for_all
    (fun (_, q) -> List.length q <= config.capacity)
    st.Mstate.queues

let successors ?(labels = true) tables config st =
  (* Label rendering is a real fraction of the per-state cost (several
     Printf.sprintf per expansion).  The boxed reference engine needs
     the labels — it stores one per visited state for counterexample
     traces — but the packed engines reconstruct traces by sequential
     replay and pass [~labels:false] to skip the rendering entirely. *)
  let lbl f = if labels then f () else "" in
  let io_op op = List.mem op [ "ioload"; "iostore"; "iormwop" ] in
  let reissues =
    List.concat_map
      (fun node ->
        List.filter_map
          (fun addr ->
            match reissue st ~node ~addr with
            | Some st' when within_capacity config st' ->
                Some
                  ( lbl (fun () ->
                        Printf.sprintf "reissue node%d addr%d" node addr),
                    Next st' )
            | Some _ | None -> None)
          (List.init config.addrs Fun.id))
      (List.init config.nodes Fun.id)
  in
  let issues =
    List.concat_map
      (fun node ->
        List.concat_map
          (fun addr ->
            let is_io = List.mem addr config.io_addrs in
            if pending st ~node ~addr <> None then []
            else
              List.filter_map
                (fun op ->
                  if io_op op <> is_io then None
                  else
                  match issue tables st node addr op with
                  | Some st' when within_capacity config st' ->
                      Some
                        ( lbl (fun () ->
                              Printf.sprintf "issue %s node%d addr%d" op node
                                addr),
                          Next st' )
                  | Some _ | None -> None)
                config.ops)
          (List.init config.addrs Fun.id))
      (List.init config.nodes Fun.id)
  in
  let deliveries =
    List.filter_map
      (fun ((_, dst, cls), msg) ->
        let label =
          lbl (fun () ->
              Printf.sprintf "deliver %s %d->%d (%s) addr%d" msg.m msg.src dst
                cls msg.addr)
        in
        let st' =
          match dequeue st (msg.src, dst, cls) with
          | Some (_, st') -> st'
          | None -> assert false
        in
        let outcome =
          if dst = dir then deliver_dir tables config st' cls msg
          else if dst = mem then deliver_mem tables st' msg
          else if cls = "snp" then deliver_snoop tables st' dst msg
          else deliver_response tables st' dst msg
        in
        match outcome with
        | Next s when not (within_capacity config s) ->
            None (* backpressure: the consumer stalls on a full queue *)
        | outcome -> Some (label, outcome))
      (queue_heads st)
  in
  let drops =
    if not config.lossy then []
    else
      (* a faulty link silently drops an inter-node message (the link
         controller's crcdrop row); intra-node and reserved resources
         (memq, ackq) are not links *)
      List.filter_map
        (fun ((src, dst, cls), (msg : Mstate.msg)) ->
          if List.mem cls [ "reqq"; "respq"; "snp"; "resp" ] then
            match dequeue st (src, dst, cls) with
            | Some (_, st') ->
                Some
                  ( lbl (fun () ->
                        Printf.sprintf "DROP %s %d->%d (%s) addr%d" msg.m src
                          dst cls msg.addr),
                    Next st' )
            | None -> None
          else None)
        (queue_heads st)
  in
  reissues @ issues @ deliveries @ drops

let deliver ?(config = { nodes = 0; addrs = 0; ops = []; capacity = 0; io_addrs = []; lossy = false })
    tables st ~cls ~dst msg =
  if dst = dir then deliver_dir tables config st cls msg
  else if dst = mem then deliver_mem tables st msg
  else if cls = "snp" then deliver_snoop tables st dst msg
  else deliver_response tables st dst msg

let issue_op tables st ~node ~addr ~op = issue tables st node addr op

let state_violations config st =
  List.concat
    (List.mapi
       (fun addr a ->
         let caches =
           List.init config.nodes (fun n -> n, cache st ~node:n ~addr)
         in
         let owners = List.filter (fun (_, c) -> c = "M" || c = "E") caches in
         let sharers = List.filter (fun (_, c) -> c = "S") caches in
         let multi_owner =
           if List.length owners > 1 then
             [ Printf.sprintf "addr %d: multiple owners" addr ]
           else []
         in
         let owner_and_sharer =
           if owners <> [] && sharers <> [] then
             [ Printf.sprintf "addr %d: owner coexists with sharers" addr ]
           else []
         in
         let orphaned =
           (* a busy transaction with nothing in flight for its address
              and no backed-off request that could regenerate traffic can
              never complete: the protocol-level consequence of a lost
              message *)
           if
             a.busy <> None
             && (not (List.exists (fun (_, q) ->
                     List.exists (fun m -> m.addr = addr) q) st.queues))
             && not
                  (List.exists
                     (fun n ->
                       backoff_of (pending st ~node:n ~addr) <> None)
                     (List.init config.nodes Fun.id))
           then [ Printf.sprintf "addr %d: orphaned busy transaction" addr ]
           else []
         in
         let idle_invalid =
           (* only meaningful when nothing is in flight for this address *)
           if
             a.dirst = "I" && a.busy = None
             && (not (List.exists (fun (_, q) ->
                     List.exists (fun m -> m.addr = addr) q) st.queues))
             && List.exists (fun (_, c) -> c <> "I") caches
           then [ Printf.sprintf "addr %d: cached under invalid directory" addr ]
           else []
         in
         multi_owner @ owner_and_sharer @ orphaned @ idle_invalid)
       st.addrs)
