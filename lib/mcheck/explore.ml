type violation = {
  kind : [ `Coherence | `Stale_data | `Unhandled | `Deadlock ];
  detail : string;
  trace : string list;
}

type result = {
  explored : int;
  transitions : int;
  max_depth : int;
  elapsed : float;
  violation : violation option;
  complete : bool;
  dedup_hits : int;  (** successor states already in the visited set *)
  per_depth : (int * int) list;  (** states expanded at each BFS depth *)
  max_frontier : int;  (** peak BFS queue length *)
  states : string list option;
      (** sorted visited-set keys, when requested with [keep_states] *)
  engine : string;  (** which exploration core produced this result *)
  probabilistic : bool;
      (** dedup used hash compaction: a fingerprint collision may have
          hidden states, so "no violation" is high-confidence, not
          proof *)
}

let states_per_sec r =
  if r.elapsed <= 0. then 0. else float_of_int r.explored /. r.elapsed

let dedup_rate r =
  if r.transitions = 0 then 0.
  else float_of_int r.dedup_hits /. float_of_int r.transitions

let classify detail =
  if String.length detail >= 5 && String.sub detail 0 5 = "stale" then
    `Stale_data
  else `Unhandled

let obs_reg = lazy (Obs.Metrics.registry "mcheck")

(* The visited set of the parallel engine, sharded by key hash so each
   shard's hashtable stays small and cheap to grow as the state count
   climbs into the hundreds of thousands.  Only the merging (spawning)
   domain ever writes; expansion workers never touch it. *)
module Sharded = struct
  let shards = 64

  let create () = Array.init shards (fun _ -> Hashtbl.create 256)
  let slot key = Hashtbl.hash key land (shards - 1)
  let mem t key = Hashtbl.mem t.(slot key) key
  let add t key = Hashtbl.add t.(slot key) key ()

  let keys t =
    Array.fold_left
      (fun acc h -> Hashtbl.fold (fun k () acc -> k :: acc) h acc)
      [] t
end

(* Mutable search bookkeeping shared by the sequential and parallel
   engines; [finish] renders it into a {!result}. *)
type search = {
  t0 : float;
  mutable s_explored : int;
  mutable s_transitions : int;
  mutable s_max_depth : int;
  mutable s_dedup_hits : int;
  mutable s_max_frontier : int;
  s_per_depth : (int, int) Hashtbl.t;
  depth_histogram : Obs.Metrics.histogram;
}

let new_search () =
  {
    t0 = Sys.time ();
    s_explored = 0;
    s_transitions = 0;
    s_max_depth = 0;
    s_dedup_hits = 0;
    s_max_frontier = 0;
    s_per_depth = Hashtbl.create 64;
    depth_histogram =
      Obs.Metrics.histogram
        ~bounds:(Obs.Metrics.exponential_bounds ~start:1. ~factor:2. 12)
        (Lazy.force obs_reg) "expansion_depth";
  }

(* Per-state bookkeeping at expansion time, identical in both engines:
   the frontier length is sampled before the state is counted. *)
let expand_state sr ~frontier ~depth =
  if frontier > sr.s_max_frontier then sr.s_max_frontier <- frontier;
  (* sample the frontier sparsely so tracing stays cheap *)
  if sr.s_explored land 1023 = 0 then
    Obs.Trace.counter "mcheck.frontier" [ "queued", float_of_int frontier ];
  Obs.Flightrec.record ~tag:Obs.Flightrec.tag_expand ~a:depth ~b:frontier ();
  sr.s_explored <- sr.s_explored + 1;
  Hashtbl.replace sr.s_per_depth depth
    (1 + Option.value (Hashtbl.find_opt sr.s_per_depth depth) ~default:0);
  Obs.Metrics.observe sr.depth_histogram (float_of_int depth);
  if depth > sr.s_max_depth then sr.s_max_depth <- depth

(* The --progress heartbeat.  Only ever called from the spawning domain
   (the sequential loop and the parallel merge loop, after the level's
   workers have joined), so snapshotting coverage shards is safe and
   worker determinism is untouched.  [Runlog.tick] rate-limits to the
   configured interval; when --progress is off this is one match. *)
let heartbeat_vals ~t0 ~max_states ~explored ~frontier ~max_depth =
  Obs.Runlog.tick (fun () ->
      (* The first tick can fire with elapsed ~ 0 (or exactly 0 at clock
         granularity): dividing by it yields an absurd or non-finite
         rate, and the ETA then prints as inf/nan.  Below a millisecond
         of elapsed time there is no meaningful rate yet. *)
      let elapsed = Sys.time () -. t0 in
      let rate =
        if elapsed < 1e-3 then 0. else float_of_int explored /. elapsed
      in
      let rate = if Float.is_finite rate && rate > 0. then rate else 0. in
      let covered, rows = Obs.Coverage.totals (Obs.Coverage.snapshot ()) in
      let eta =
        if rate <= 0. then "?"
        else
          let s = float_of_int (max 0 (max_states - explored)) /. rate in
          if Float.is_finite s then Printf.sprintf "%.0fs" s else "?"
      in
      Printf.sprintf
        "[mcheck] explored=%d frontier=%d depth=%d states/s=%.0f \
         coverage=%.1f%% eta<=%s"
        explored frontier max_depth rate
        (Obs.Coverage.percent ~covered ~rows)
        eta)

let heartbeat sr ~max_states ~frontier =
  heartbeat_vals ~t0:sr.t0 ~max_states ~explored:sr.s_explored ~frontier
    ~max_depth:sr.s_max_depth

let violation_code = function
  | `Coherence -> 0
  | `Stale_data -> 1
  | `Unhandled -> 2
  | `Deadlock -> 3

let finish sr ~states ~engine ~probabilistic violation complete =
  let elapsed = Sys.time () -. sr.t0 in
  (* the stop reason closes the flight recording, so a drain's tail
     explains *why* the engine stopped right after *what* it was doing *)
  (match violation with
  | Some v ->
      let tag =
        if v.kind = `Deadlock then Obs.Flightrec.tag_deadlock
        else Obs.Flightrec.tag_violation
      in
      Obs.Flightrec.record ~tag ~a:(violation_code v.kind) ~b:sr.s_max_depth ()
  | None -> ());
  Obs.Flightrec.record ~tag:Obs.Flightrec.tag_stop
    ~a:
      (if violation <> None then Obs.Flightrec.stop_violation
       else if complete then Obs.Flightrec.stop_complete
       else Obs.Flightrec.stop_budget)
    ~b:sr.s_explored ();
  let reg = Lazy.force obs_reg in
  Obs.Metrics.add (Obs.Metrics.counter reg "states_explored") sr.s_explored;
  Obs.Metrics.add (Obs.Metrics.counter reg "transitions") sr.s_transitions;
  Obs.Metrics.add (Obs.Metrics.counter reg "dedup_hits") sr.s_dedup_hits;
  Obs.Metrics.set
    (Obs.Metrics.gauge reg "states_per_sec")
    (if elapsed <= 0. then 0. else float_of_int sr.s_explored /. elapsed);
  Obs.Metrics.set
    (Obs.Metrics.gauge reg "max_frontier")
    (float_of_int sr.s_max_frontier);
  if Obs.Runlog.configured () then
    Obs.Runlog.note "mcheck"
      (Obs.Json.Obj
         [
           ("explored", Obs.Json.Int sr.s_explored);
           ("transitions", Obs.Json.Int sr.s_transitions);
           ("max_depth", Obs.Json.Int sr.s_max_depth);
           ("elapsed_s", Obs.Json.Float elapsed);
           ( "states_per_sec",
             Obs.Json.Float
               (if elapsed <= 0. then 0.
                else float_of_int sr.s_explored /. elapsed) );
           ("max_frontier", Obs.Json.Int sr.s_max_frontier);
           ("dedup_hits", Obs.Json.Int sr.s_dedup_hits);
           ("complete", Obs.Json.Bool complete);
           ("engine", Obs.Json.Str engine);
           ("probabilistic", Obs.Json.Bool probabilistic);
           ( "violation",
             match violation with
             | None -> Obs.Json.Null
             | Some v -> Obs.Json.Str v.detail );
         ]);
  {
    explored = sr.s_explored;
    transitions = sr.s_transitions;
    max_depth = sr.s_max_depth;
    elapsed;
    violation;
    complete;
    dedup_hits = sr.s_dedup_hits;
    per_depth =
      List.sort compare
        (Hashtbl.fold (fun d n acc -> (d, n) :: acc) sr.s_per_depth []);
    max_frontier = sr.s_max_frontier;
    states;
    engine;
    probabilistic;
  }

exception Found of violation

(* ------------------------- sequential engine -------------------------- *)

let run_seq ?(engine = "seq") ~max_states ~keep_states ~state_key ~tables
    config =
  let sr = new_search () in
  let initial = Mstate.initial ~nodes:config.Semantics.nodes ~addrs:config.addrs in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let parent : (string, string * string) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let initial_key = state_key initial in
  Hashtbl.add visited initial_key ();
  Queue.add (initial, initial_key, 0) queue;
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find_opt parent key with
      | None -> acc
      | Some (pkey, label) -> go pkey (label :: acc)
    in
    go key []
  in
  let states () =
    if keep_states then
      Some
        (List.sort compare
           (Hashtbl.fold (fun k () acc -> k :: acc) visited []))
    else None
  in
  try
    while not (Queue.is_empty queue) do
      if sr.s_explored >= max_states then raise Exit;
      let frontier = Queue.length queue in
      let st, key, depth = Queue.take queue in
      expand_state sr ~frontier ~depth;
      heartbeat sr ~max_states ~frontier;
      (match Semantics.state_violations config st with
      | [] -> ()
      | detail :: _ ->
          raise (Found { kind = `Coherence; detail; trace = trace_to key }));
      let succs = Semantics.successors tables config st in
      if succs = [] && not (Mstate.quiescent st) then
        raise
          (Found
             {
               kind = `Deadlock;
               detail = "no transition enabled but work is pending";
               trace = trace_to key;
             });
      List.iter
        (fun (label, outcome) ->
          sr.s_transitions <- sr.s_transitions + 1;
          match outcome with
          | Semantics.Broken detail ->
              raise
                (Found
                   {
                     kind = classify detail;
                     detail;
                     trace = trace_to key @ [ label ];
                   })
          | Semantics.Next st' ->
              let key' = state_key st' in
              if Hashtbl.mem visited key' then begin
                sr.s_dedup_hits <- sr.s_dedup_hits + 1;
                Obs.Flightrec.record ~tag:Obs.Flightrec.tag_dedup
                  ~a:(depth + 1) ~b:1 ()
              end
              else begin
                Obs.Flightrec.record ~tag:Obs.Flightrec.tag_dedup
                  ~a:(depth + 1) ~b:0 ();
                Hashtbl.add visited key' ();
                Hashtbl.add parent key' (key, label);
                Queue.add (st', key', depth + 1) queue
              end)
        succs
    done;
    finish sr ~states:(states ()) ~engine ~probabilistic:false None true
  with
  | Exit -> finish sr ~states:(states ()) ~engine ~probabilistic:false None false
  | Found v ->
      finish sr ~states:(states ()) ~engine ~probabilistic:false (Some v) true

(* -------------------------- parallel engine --------------------------- *)

(* Level-synchronized BFS.  The expensive per-state work — the coherence
   check, computing all successor states by executing the controller
   tables, and hashing each successor into its (symmetry-reduced) key —
   runs chunk-parallel over the depth-d frontier.  The merge loop then
   walks the expansion results in frontier order and replays exactly the
   bookkeeping the sequential engine performs, including the frontier
   length the FIFO queue would have had ([remaining states of this level]
   + [successors enqueued so far]), so every counter in the result is
   bit-identical to the sequential run. *)
let run_par ~max_states ~keep_states ~state_key ~tables config =
  let sr = new_search () in
  let initial = Mstate.initial ~nodes:config.Semantics.nodes ~addrs:config.addrs in
  let visited = Sharded.create () in
  let parent : (string, string * string) Hashtbl.t = Hashtbl.create 4096 in
  let initial_key = state_key initial in
  Sharded.add visited initial_key;
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find_opt parent key with
      | None -> acc
      | Some (pkey, label) -> go pkey (label :: acc)
    in
    go key []
  in
  let states () =
    if keep_states then Some (List.sort compare (Sharded.keys visited))
    else None
  in
  try
    let frontier = ref [| initial, initial_key |] in
    let depth = ref 0 in
    while Array.length !frontier > 0 do
      let level = !frontier in
      let expansions =
        Par.Pool.map_array ~min_chunk:4
          (fun (st, _key) ->
            let violations = Semantics.state_violations config st in
            let succs =
              List.map
                (fun (label, outcome) ->
                  match outcome with
                  | Semantics.Next st' -> label, outcome, state_key st'
                  | Semantics.Broken _ -> label, outcome, "")
                (Semantics.successors tables config st)
            in
            violations, succs, Mstate.quiescent st)
          level
      in
      let next = ref [] and next_count = ref 0 in
      Array.iteri
        (fun i (violations, succs, quiescent) ->
          let _, key = level.(i) in
          if sr.s_explored >= max_states then raise Exit;
          let frontier_len = Array.length level - i + !next_count in
          expand_state sr ~frontier:frontier_len ~depth:!depth;
          heartbeat sr ~max_states ~frontier:frontier_len;
          (match violations with
          | [] -> ()
          | detail :: _ ->
              raise (Found { kind = `Coherence; detail; trace = trace_to key }));
          if succs = [] && not quiescent then
            raise
              (Found
                 {
                   kind = `Deadlock;
                   detail = "no transition enabled but work is pending";
                   trace = trace_to key;
                 });
          List.iter
            (fun (label, outcome, key') ->
              sr.s_transitions <- sr.s_transitions + 1;
              match outcome with
              | Semantics.Broken detail ->
                  raise
                    (Found
                       {
                         kind = classify detail;
                         detail;
                         trace = trace_to key @ [ label ];
                       })
              | Semantics.Next st' ->
                  if Sharded.mem visited key' then begin
                    sr.s_dedup_hits <- sr.s_dedup_hits + 1;
                    Obs.Flightrec.record ~tag:Obs.Flightrec.tag_dedup
                      ~a:(!depth + 1) ~b:1 ()
                  end
                  else begin
                    Obs.Flightrec.record ~tag:Obs.Flightrec.tag_dedup
                      ~a:(!depth + 1) ~b:0 ();
                    Sharded.add visited key';
                    Hashtbl.add parent key' (key, label);
                    next := (st', key') :: !next;
                    incr next_count
                  end)
            succs)
        expansions;
      frontier := Array.of_list (List.rev !next);
      incr depth
    done;
    finish sr ~states:(states ()) ~engine:"level" ~probabilistic:false None true
  with
  | Exit ->
      finish sr ~states:(states ()) ~engine:"level" ~probabilistic:false None
        false
  | Found v ->
      finish sr ~states:(states ()) ~engine:"level" ~probabilistic:false
        (Some v) true

(* ------------------------ work-stealing engine ------------------------ *)

(* Glue between the controller tables and the bit-packer: seed every
   per-field dictionary with the full vocabulary that can ever reach a
   state, so packing inside stealing workers stays on the read-only
   dictionary path.  The protocol-level constants that the semantics
   writes programmatically (cache fills, reissued request names, backoff
   markers) are appended to what {!Semantics.pack_vocab} harvests from
   the table cells. *)
let layout_of_tables tables (config : Semantics.config) =
  let vocab = Semantics.pack_vocab tables in
  let cols names extra =
    List.sort_uniq compare
      (extra
      @ List.concat_map
          (fun c -> Option.value (List.assoc_opt c vocab) ~default:[])
          names)
  in
  let pend_base = cols [ "pendop" ] [] in
  Pack.layout ~nodes:config.nodes ~addrs:config.addrs
    ~capacity:config.capacity
    ~dirst:(cols [ "dirst"; "nxtdirst" ] [ "I" ])
    ~bst:(cols [ "bdirst"; "nxtbdirst" ] [ "I" ])
    ~cache:(cols [ "cachest"; "nxtcachest" ] [ "I"; "S"; "E"; "M" ])
    ~pend:
      (List.sort_uniq compare
         (pend_base @ List.map (fun op -> "backoff:" ^ op) pend_base))
    ~msg:
      (cols
         [ "inmsg"; "reqmsg"; "locmsg"; "remmsg"; "memmsg"; "respmsg";
           "ackmsg"; "outmsg" ]
         [ "read"; "fetch"; "readex"; "swap"; "upgrade"; "wb" ])
    ()

(* One-slot caches for the two per-search build steps the packed
   engines pay before touching a single state: bucketing the rule index
   (~11ms over the 1156-row delivery tables) and harvesting the packed
   layout's dictionaries.  Callers that loop over [run] with the same
   tables value — the benchmarks, the differential suites, repeated CLI
   sweeps — hit the cache on physical identity and skip the rebuild.
   Reuse is sound: bucketing is a pure reindexing of the same rows, and
   a layout's dictionaries only ever grow (codes never change), so
   packing stays exact across searches.  A racing miss merely rebuilds;
   the slots are plain refs on purpose. *)
let index_cache : (Semantics.tables * Semantics.tables) option ref = ref None

let indexed_tables tables =
  match !index_cache with
  | Some (raw, indexed) when raw == tables -> indexed
  | _ ->
      let indexed = Semantics.index_tables tables in
      index_cache := Some (tables, indexed);
      indexed

let layout_cache :
    (Semantics.tables * Semantics.config * Pack.layout) option ref =
  ref None

let cached_layout tables config =
  match !layout_cache with
  | Some (raw, cfg, layout) when raw == tables && cfg = config -> layout
  | _ ->
      let layout = layout_of_tables tables config in
      layout_cache := Some (tables, config, layout);
      layout

(* Per-participant bookkeeping of the stealing engine.  Everything
   order-free (counts, per-depth sums) merges after the join; anything
   schedule-dependent (depths under racing discovery orders, the
   frontier gauge) is documented as approximate in steal mode. *)
type sacc = {
  sa_self : int;
  mutable sa_explored : int;
  mutable sa_transitions : int;
  mutable sa_dedup : int;
  mutable sa_max_depth : int;
  sa_per_depth : (int, int) Hashtbl.t;
  mutable sa_violation : violation option;
}

(* The frontier never synchronizes: per-participant deques with
   randomized stealing (Par.Pool.steal_loop), dedup through the sharded
   packed visited set, and an atomic ticket counter bounding the search
   at exactly [max_states] expansions.  On a violation the search stops
   and — in exact mode — the boxed sequential reference engine replays
   the whole search, so verdicts and counterexample traces are
   bit-identical to [run_seq]; the steal path itself only ever proves
   the *absence* of violations.  With [compact_bits] the replay is
   skipped (the point of compaction is that the full search does not
   fit) and the violation is reported without a trace. *)
let run_steal ?workers ~engine ~max_states ~keep_states ~state_key ~symmetry
    ~compact_bits ~tables config =
  let sr = new_search () in
  let layout = cached_layout tables config in
  (* the packed engines dispatch rules through the bucketed index —
     same first-match row, a fraction of the guard scans; the boxed
     reference engines keep the naive scan *)
  let tables = indexed_tables tables in
  let key_of =
    if symmetry then Pack.canonical layout else Pack.pack ?perm:None layout
  in
  let visited = Pack.Vset.create ?compact_bits () in
  (* Symmetry-mode fast path: dedup on the identity packing first, and
     only run the all-permutations canonicalization for states never
     seen verbatim.  Sound because an exact duplicate's canonical form
     is already in [visited] (it was inserted when the state was first
     seen), so counters and the reachable set are unchanged — the
     filter only skips provably redundant canonical packs.  Disabled
     under compaction, where the whole point is bounded memory.
     [dedup_key] returns [None] for an exact duplicate, [Some key]
     otherwise. *)
  let dedup_key =
    if symmetry && compact_bits = None then begin
      let exact = Pack.Vset.create () in
      let initial_id =
        Pack.pack layout
          (Mstate.initial ~nodes:config.Semantics.nodes ~addrs:config.addrs)
      in
      ignore (Pack.Vset.add exact initial_id : bool);
      fun st' ->
        let id = Pack.pack layout st' in
        if Pack.Vset.add exact id then
          Some (Pack.canonical_seeded layout id st')
        else None
    end
    else fun st' -> Some (key_of st')
  in
  let initial =
    Mstate.initial ~nodes:config.Semantics.nodes ~addrs:config.addrs
  in
  ignore (Pack.Vset.add visited (key_of initial) : bool);
  let budget = Atomic.make max_states in
  let truncated = Atomic.make false in
  let inflight = Atomic.make 1 in
  let maxfront = Atomic.make 1 in
  let accs =
    Par.Pool.steal_loop ?workers
      ~init:(fun i ->
        {
          sa_self = i;
          sa_explored = 0;
          sa_transitions = 0;
          sa_dedup = 0;
          sa_max_depth = 0;
          sa_per_depth = Hashtbl.create 64;
          sa_violation = None;
        })
      ~work:(fun acc ctl (st, depth) ->
        Atomic.decr inflight;
        let ticket = Atomic.fetch_and_add budget (-1) in
        if ticket <= 0 then begin
          Atomic.set truncated true;
          ctl.Par.Pool.stop ()
        end
        else begin
          acc.sa_explored <- acc.sa_explored + 1;
          Obs.Flightrec.record ~tag:Obs.Flightrec.tag_expand ~a:depth
            ~b:(Atomic.get inflight) ();
          Hashtbl.replace acc.sa_per_depth depth
            (1 + Option.value (Hashtbl.find_opt acc.sa_per_depth depth) ~default:0);
          if depth > acc.sa_max_depth then acc.sa_max_depth <- depth;
          (* the progress heartbeat stays on the spawning domain
             (participant 0 runs there), per the Runlog contract *)
          if acc.sa_self = 0 then
            heartbeat_vals ~t0:sr.t0 ~max_states
              ~explored:(max_states - Atomic.get budget)
              ~frontier:(Atomic.get inflight) ~max_depth:acc.sa_max_depth;
          match Semantics.state_violations config st with
          | detail :: _ ->
              acc.sa_violation <- Some { kind = `Coherence; detail; trace = [] };
              ctl.Par.Pool.stop ()
          | [] ->
              let succs = Semantics.successors ~labels:false tables config st in
              if succs = [] && not (Mstate.quiescent st) then begin
                acc.sa_violation <-
                  Some
                    {
                      kind = `Deadlock;
                      detail = "no transition enabled but work is pending";
                      trace = [];
                    };
                ctl.Par.Pool.stop ()
              end
              else
                List.iter
                  (fun (_label, outcome) ->
                    acc.sa_transitions <- acc.sa_transitions + 1;
                    match outcome with
                    | Semantics.Broken detail ->
                        if acc.sa_violation = None then
                          acc.sa_violation <-
                            Some { kind = classify detail; detail; trace = [] };
                        ctl.Par.Pool.stop ()
                    | Semantics.Next st' -> (
                        match dedup_key st' with
                        | None ->
                            acc.sa_dedup <- acc.sa_dedup + 1;
                            Obs.Flightrec.record ~tag:Obs.Flightrec.tag_dedup
                              ~a:(depth + 1) ~b:1 ()
                        | Some k ->
                            if Pack.Vset.add visited k then begin
                              Obs.Flightrec.record
                                ~tag:Obs.Flightrec.tag_dedup ~a:(depth + 1)
                                ~b:0 ();
                              let n = Atomic.fetch_and_add inflight 1 + 1 in
                              if n > Atomic.get maxfront then
                                Atomic.set maxfront n;
                              ctl.Par.Pool.push (st', depth + 1)
                            end
                            else begin
                              acc.sa_dedup <- acc.sa_dedup + 1;
                              Obs.Flightrec.record
                                ~tag:Obs.Flightrec.tag_dedup ~a:(depth + 1)
                                ~b:1 ()
                            end))
                  succs
        end)
      [ initial, 0 ]
  in
  let violation =
    Array.fold_left
      (fun found a -> match found with Some _ -> found | None -> a.sa_violation)
      None accs
  in
  match violation with
  | Some _ when compact_bits = None ->
      (* exact mode: replay through the boxed reference engine for the
         bit-identical verdict and counterexample trace *)
      let r = run_seq ~engine ~max_states ~keep_states ~state_key ~tables config in
      if r.violation <> None then r
      else
        (* the bounded replay visited a different subset and missed it:
           keep the steal verdict, traceless *)
        { r with violation; complete = true }
  | _ ->
      Array.iter
        (fun a ->
          sr.s_explored <- sr.s_explored + a.sa_explored;
          sr.s_transitions <- sr.s_transitions + a.sa_transitions;
          sr.s_dedup_hits <- sr.s_dedup_hits + a.sa_dedup;
          if a.sa_max_depth > sr.s_max_depth then
            sr.s_max_depth <- a.sa_max_depth;
          Hashtbl.iter
            (fun d n ->
              Hashtbl.replace sr.s_per_depth d
                (n + Option.value (Hashtbl.find_opt sr.s_per_depth d) ~default:0))
            a.sa_per_depth)
        accs;
      sr.s_max_frontier <- Atomic.get maxfront;
      if Obs.Config.on () then
        Hashtbl.iter
          (fun d n ->
            for _ = 1 to n do
              Obs.Metrics.observe sr.depth_histogram (float_of_int d)
            done)
          sr.s_per_depth;
      let states =
        if keep_states && compact_bits = None then begin
          let acc = ref [] in
          Pack.Vset.iter visited (fun v ->
              acc := state_key (Pack.unpack layout v) :: !acc);
          Some (List.sort compare !acc)
        end
        else None
      in
      let complete = not (Atomic.get truncated) in
      finish sr ~states ~engine ~probabilistic:(compact_bits <> None) violation
        complete

let run ?(max_states = 200_000) ?(symmetry = false) ?tables
    ?(keep_states = false) ?(engine = `Auto) ?compact_bits config =
  Obs.Trace.with_span ~cat:"mcheck"
    ~args:
      [ "nodes", Obs.Json.Int config.Semantics.nodes;
        "addrs", Obs.Json.Int config.Semantics.addrs;
        "domains", Obs.Json.Int (Par.Pool.domains ()) ]
    "mcheck.run"
  @@ fun () ->
  let tables = match tables with Some t -> t | None -> Semantics.load_tables () in
  let state_key =
    if symmetry then Mstate.canonical_key ~nodes:config.Semantics.nodes
    else Mstate.key
  in
  let steal ?workers engine =
    run_steal ?workers ~engine ~max_states ~keep_states ~state_key ~symmetry
      ~compact_bits ~tables config
  in
  match engine with
  | `Seq -> run_seq ~max_states ~keep_states ~state_key ~tables config
  | `Seq_packed -> steal ~workers:1 "seq-packed"
  | `Level ->
      if Par.Pool.sequential () then
        run_seq ~max_states ~keep_states ~state_key ~tables config
      else run_par ~max_states ~keep_states ~state_key ~tables config
  | `Steal -> steal "steal"
  | `Auto ->
      (* Oversubscribing stealing workers past the hardware buys nothing
         and costs real time: every extra domain must be scheduled into
         each stop-the-world minor collection.  Auto caps the degree at
         what the machine can actually run; an explicit `Steal keeps the
         requested degree (tests rely on that to exercise genuinely
         concurrent stealing even on small machines). *)
      let workers =
        max 1 (min (Par.Pool.domains ()) (Domain.recommended_domain_count ()))
      in
      if compact_bits <> None then steal ~workers "steal"
      else if Par.Pool.sequential () then
        run_seq ~max_states ~keep_states ~state_key ~tables config
      else steal ~workers "steal"

let pp_result fmt r =
  Format.fprintf fmt
    "states=%d transitions=%d depth=%d time=%.2fs (%.0f states/s, dedup \
     %.0f%%) engine=%s%s %s"
    r.explored r.transitions r.max_depth r.elapsed (states_per_sec r)
    (100. *. dedup_rate r)
    r.engine
    (if r.probabilistic then " (probabilistic)" else "")
    (match r.violation with
    | None -> if r.complete then "no violations" else "bounded, no violations"
    | Some v ->
        Printf.sprintf "VIOLATION %s (trace length %d)" v.detail
          (List.length v.trace))

let pp_depth_profile fmt r =
  Format.fprintf fmt "depth histogram (states expanded per BFS depth):@.";
  let widest =
    List.fold_left (fun acc (_, n) -> max acc n) 1 r.per_depth
  in
  List.iter
    (fun (depth, n) ->
      let bar = max 1 (n * 40 / widest) in
      Format.fprintf fmt "  %3d %8d %s@." depth n (String.make bar '#'))
    r.per_depth
