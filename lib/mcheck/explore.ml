type violation = {
  kind : [ `Coherence | `Stale_data | `Unhandled | `Deadlock ];
  detail : string;
  trace : string list;
}

type result = {
  explored : int;
  transitions : int;
  max_depth : int;
  elapsed : float;
  violation : violation option;
  complete : bool;
  dedup_hits : int;  (** successor states already in the visited set *)
  per_depth : (int * int) list;  (** states expanded at each BFS depth *)
  max_frontier : int;  (** peak BFS queue length *)
  states : string list option;
      (** sorted visited-set keys, when requested with [keep_states] *)
}

let states_per_sec r =
  if r.elapsed <= 0. then 0. else float_of_int r.explored /. r.elapsed

let dedup_rate r =
  if r.transitions = 0 then 0.
  else float_of_int r.dedup_hits /. float_of_int r.transitions

let classify detail =
  if String.length detail >= 5 && String.sub detail 0 5 = "stale" then
    `Stale_data
  else `Unhandled

let obs_reg = lazy (Obs.Metrics.registry "mcheck")

(* The visited set of the parallel engine, sharded by key hash so each
   shard's hashtable stays small and cheap to grow as the state count
   climbs into the hundreds of thousands.  Only the merging (spawning)
   domain ever writes; expansion workers never touch it. *)
module Sharded = struct
  let shards = 64

  let create () = Array.init shards (fun _ -> Hashtbl.create 256)
  let slot key = Hashtbl.hash key land (shards - 1)
  let mem t key = Hashtbl.mem t.(slot key) key
  let add t key = Hashtbl.add t.(slot key) key ()

  let keys t =
    Array.fold_left
      (fun acc h -> Hashtbl.fold (fun k () acc -> k :: acc) h acc)
      [] t
end

(* Mutable search bookkeeping shared by the sequential and parallel
   engines; [finish] renders it into a {!result}. *)
type search = {
  t0 : float;
  mutable s_explored : int;
  mutable s_transitions : int;
  mutable s_max_depth : int;
  mutable s_dedup_hits : int;
  mutable s_max_frontier : int;
  s_per_depth : (int, int) Hashtbl.t;
  depth_histogram : Obs.Metrics.histogram;
}

let new_search () =
  {
    t0 = Sys.time ();
    s_explored = 0;
    s_transitions = 0;
    s_max_depth = 0;
    s_dedup_hits = 0;
    s_max_frontier = 0;
    s_per_depth = Hashtbl.create 64;
    depth_histogram =
      Obs.Metrics.histogram
        ~bounds:(Obs.Metrics.exponential_bounds ~start:1. ~factor:2. 12)
        (Lazy.force obs_reg) "expansion_depth";
  }

(* Per-state bookkeeping at expansion time, identical in both engines:
   the frontier length is sampled before the state is counted. *)
let expand_state sr ~frontier ~depth =
  if frontier > sr.s_max_frontier then sr.s_max_frontier <- frontier;
  (* sample the frontier sparsely so tracing stays cheap *)
  if sr.s_explored land 1023 = 0 then
    Obs.Trace.counter "mcheck.frontier" [ "queued", float_of_int frontier ];
  sr.s_explored <- sr.s_explored + 1;
  Hashtbl.replace sr.s_per_depth depth
    (1 + Option.value (Hashtbl.find_opt sr.s_per_depth depth) ~default:0);
  Obs.Metrics.observe sr.depth_histogram (float_of_int depth);
  if depth > sr.s_max_depth then sr.s_max_depth <- depth

(* The --progress heartbeat.  Only ever called from the spawning domain
   (the sequential loop and the parallel merge loop, after the level's
   workers have joined), so snapshotting coverage shards is safe and
   worker determinism is untouched.  [Runlog.tick] rate-limits to the
   configured interval; when --progress is off this is one match. *)
let heartbeat sr ~max_states ~frontier =
  Obs.Runlog.tick (fun () ->
      (* The first tick can fire with elapsed ~ 0 (or exactly 0 at clock
         granularity): dividing by it yields an absurd or non-finite
         rate, and the ETA then prints as inf/nan.  Below a millisecond
         of elapsed time there is no meaningful rate yet. *)
      let elapsed = Sys.time () -. sr.t0 in
      let rate =
        if elapsed < 1e-3 then 0.
        else float_of_int sr.s_explored /. elapsed
      in
      let rate = if Float.is_finite rate && rate > 0. then rate else 0. in
      let covered, rows = Obs.Coverage.totals (Obs.Coverage.snapshot ()) in
      let eta =
        if rate <= 0. then "?"
        else
          let s = float_of_int (max 0 (max_states - sr.s_explored)) /. rate in
          if Float.is_finite s then Printf.sprintf "%.0fs" s else "?"
      in
      Printf.sprintf
        "[mcheck] explored=%d frontier=%d depth=%d states/s=%.0f \
         coverage=%.1f%% eta<=%s"
        sr.s_explored frontier sr.s_max_depth rate
        (Obs.Coverage.percent ~covered ~rows)
        eta)

let finish sr ~states violation complete =
  let elapsed = Sys.time () -. sr.t0 in
  let reg = Lazy.force obs_reg in
  Obs.Metrics.add (Obs.Metrics.counter reg "states_explored") sr.s_explored;
  Obs.Metrics.add (Obs.Metrics.counter reg "transitions") sr.s_transitions;
  Obs.Metrics.add (Obs.Metrics.counter reg "dedup_hits") sr.s_dedup_hits;
  Obs.Metrics.set
    (Obs.Metrics.gauge reg "states_per_sec")
    (if elapsed <= 0. then 0. else float_of_int sr.s_explored /. elapsed);
  Obs.Metrics.set
    (Obs.Metrics.gauge reg "max_frontier")
    (float_of_int sr.s_max_frontier);
  if Obs.Runlog.configured () then
    Obs.Runlog.note "mcheck"
      (Obs.Json.Obj
         [
           ("explored", Obs.Json.Int sr.s_explored);
           ("transitions", Obs.Json.Int sr.s_transitions);
           ("max_depth", Obs.Json.Int sr.s_max_depth);
           ("elapsed_s", Obs.Json.Float elapsed);
           ( "states_per_sec",
             Obs.Json.Float
               (if elapsed <= 0. then 0.
                else float_of_int sr.s_explored /. elapsed) );
           ("max_frontier", Obs.Json.Int sr.s_max_frontier);
           ("dedup_hits", Obs.Json.Int sr.s_dedup_hits);
           ("complete", Obs.Json.Bool complete);
           ( "violation",
             match violation with
             | None -> Obs.Json.Null
             | Some v -> Obs.Json.Str v.detail );
         ]);
  {
    explored = sr.s_explored;
    transitions = sr.s_transitions;
    max_depth = sr.s_max_depth;
    elapsed;
    violation;
    complete;
    dedup_hits = sr.s_dedup_hits;
    per_depth =
      List.sort compare
        (Hashtbl.fold (fun d n acc -> (d, n) :: acc) sr.s_per_depth []);
    max_frontier = sr.s_max_frontier;
    states;
  }

exception Found of violation

(* ------------------------- sequential engine -------------------------- *)

let run_seq ~max_states ~keep_states ~state_key ~tables config =
  let sr = new_search () in
  let initial = Mstate.initial ~nodes:config.Semantics.nodes ~addrs:config.addrs in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let parent : (string, string * string) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let initial_key = state_key initial in
  Hashtbl.add visited initial_key ();
  Queue.add (initial, initial_key, 0) queue;
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find_opt parent key with
      | None -> acc
      | Some (pkey, label) -> go pkey (label :: acc)
    in
    go key []
  in
  let states () =
    if keep_states then
      Some
        (List.sort compare
           (Hashtbl.fold (fun k () acc -> k :: acc) visited []))
    else None
  in
  try
    while not (Queue.is_empty queue) do
      if sr.s_explored >= max_states then raise Exit;
      let frontier = Queue.length queue in
      let st, key, depth = Queue.take queue in
      expand_state sr ~frontier ~depth;
      heartbeat sr ~max_states ~frontier;
      (match Semantics.state_violations config st with
      | [] -> ()
      | detail :: _ ->
          raise (Found { kind = `Coherence; detail; trace = trace_to key }));
      let succs = Semantics.successors tables config st in
      if succs = [] && not (Mstate.quiescent st) then
        raise
          (Found
             {
               kind = `Deadlock;
               detail = "no transition enabled but work is pending";
               trace = trace_to key;
             });
      List.iter
        (fun (label, outcome) ->
          sr.s_transitions <- sr.s_transitions + 1;
          match outcome with
          | Semantics.Broken detail ->
              raise
                (Found
                   {
                     kind = classify detail;
                     detail;
                     trace = trace_to key @ [ label ];
                   })
          | Semantics.Next st' ->
              let key' = state_key st' in
              if Hashtbl.mem visited key' then
                sr.s_dedup_hits <- sr.s_dedup_hits + 1
              else begin
                Hashtbl.add visited key' ();
                Hashtbl.add parent key' (key, label);
                Queue.add (st', key', depth + 1) queue
              end)
        succs
    done;
    finish sr ~states:(states ()) None true
  with
  | Exit -> finish sr ~states:(states ()) None false
  | Found v -> finish sr ~states:(states ()) (Some v) true

(* -------------------------- parallel engine --------------------------- *)

(* Level-synchronized BFS.  The expensive per-state work — the coherence
   check, computing all successor states by executing the controller
   tables, and hashing each successor into its (symmetry-reduced) key —
   runs chunk-parallel over the depth-d frontier.  The merge loop then
   walks the expansion results in frontier order and replays exactly the
   bookkeeping the sequential engine performs, including the frontier
   length the FIFO queue would have had ([remaining states of this level]
   + [successors enqueued so far]), so every counter in the result is
   bit-identical to the sequential run. *)
let run_par ~max_states ~keep_states ~state_key ~tables config =
  let sr = new_search () in
  let initial = Mstate.initial ~nodes:config.Semantics.nodes ~addrs:config.addrs in
  let visited = Sharded.create () in
  let parent : (string, string * string) Hashtbl.t = Hashtbl.create 4096 in
  let initial_key = state_key initial in
  Sharded.add visited initial_key;
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find_opt parent key with
      | None -> acc
      | Some (pkey, label) -> go pkey (label :: acc)
    in
    go key []
  in
  let states () =
    if keep_states then Some (List.sort compare (Sharded.keys visited))
    else None
  in
  try
    let frontier = ref [| initial, initial_key |] in
    let depth = ref 0 in
    while Array.length !frontier > 0 do
      let level = !frontier in
      let expansions =
        Par.Pool.map_array ~min_chunk:4
          (fun (st, _key) ->
            let violations = Semantics.state_violations config st in
            let succs =
              List.map
                (fun (label, outcome) ->
                  match outcome with
                  | Semantics.Next st' -> label, outcome, state_key st'
                  | Semantics.Broken _ -> label, outcome, "")
                (Semantics.successors tables config st)
            in
            violations, succs, Mstate.quiescent st)
          level
      in
      let next = ref [] and next_count = ref 0 in
      Array.iteri
        (fun i (violations, succs, quiescent) ->
          let _, key = level.(i) in
          if sr.s_explored >= max_states then raise Exit;
          let frontier_len = Array.length level - i + !next_count in
          expand_state sr ~frontier:frontier_len ~depth:!depth;
          heartbeat sr ~max_states ~frontier:frontier_len;
          (match violations with
          | [] -> ()
          | detail :: _ ->
              raise (Found { kind = `Coherence; detail; trace = trace_to key }));
          if succs = [] && not quiescent then
            raise
              (Found
                 {
                   kind = `Deadlock;
                   detail = "no transition enabled but work is pending";
                   trace = trace_to key;
                 });
          List.iter
            (fun (label, outcome, key') ->
              sr.s_transitions <- sr.s_transitions + 1;
              match outcome with
              | Semantics.Broken detail ->
                  raise
                    (Found
                       {
                         kind = classify detail;
                         detail;
                         trace = trace_to key @ [ label ];
                       })
              | Semantics.Next st' ->
                  if Sharded.mem visited key' then
                    sr.s_dedup_hits <- sr.s_dedup_hits + 1
                  else begin
                    Sharded.add visited key';
                    Hashtbl.add parent key' (key, label);
                    next := (st', key') :: !next;
                    incr next_count
                  end)
            succs)
        expansions;
      frontier := Array.of_list (List.rev !next);
      incr depth
    done;
    finish sr ~states:(states ()) None true
  with
  | Exit -> finish sr ~states:(states ()) None false
  | Found v -> finish sr ~states:(states ()) (Some v) true

let run ?(max_states = 200_000) ?(symmetry = false) ?tables
    ?(keep_states = false) config =
  Obs.Trace.with_span ~cat:"mcheck"
    ~args:
      [ "nodes", Obs.Json.Int config.Semantics.nodes;
        "addrs", Obs.Json.Int config.Semantics.addrs;
        "domains", Obs.Json.Int (Par.Pool.domains ()) ]
    "mcheck.run"
  @@ fun () ->
  let tables = match tables with Some t -> t | None -> Semantics.load_tables () in
  let state_key =
    if symmetry then Mstate.canonical_key ~nodes:config.Semantics.nodes
    else Mstate.key
  in
  if Par.Pool.sequential () then
    run_seq ~max_states ~keep_states ~state_key ~tables config
  else run_par ~max_states ~keep_states ~state_key ~tables config

let pp_result fmt r =
  Format.fprintf fmt
    "states=%d transitions=%d depth=%d time=%.2fs (%.0f states/s, dedup %.0f%%) %s"
    r.explored r.transitions r.max_depth r.elapsed (states_per_sec r)
    (100. *. dedup_rate r)
    (match r.violation with
    | None -> if r.complete then "no violations" else "bounded, no violations"
    | Some v ->
        Printf.sprintf "VIOLATION %s (trace length %d)" v.detail
          (List.length v.trace))

let pp_depth_profile fmt r =
  Format.fprintf fmt "depth histogram (states expanded per BFS depth):@.";
  let widest =
    List.fold_left (fun acc (_, n) -> max acc n) 1 r.per_depth
  in
  List.iter
    (fun (depth, n) ->
      let bar = max 1 (n * 40 / widest) in
      Format.fprintf fmt "  %3d %8d %s@." depth n (String.make bar '#'))
    r.per_depth
