type violation = {
  kind : [ `Coherence | `Stale_data | `Unhandled | `Deadlock ];
  detail : string;
  trace : string list;
}

type result = {
  explored : int;
  transitions : int;
  max_depth : int;
  elapsed : float;
  violation : violation option;
  complete : bool;
  dedup_hits : int;  (** successor states already in the visited set *)
  per_depth : (int * int) list;  (** states expanded at each BFS depth *)
  max_frontier : int;  (** peak BFS queue length *)
}

let states_per_sec r =
  if r.elapsed <= 0. then 0. else float_of_int r.explored /. r.elapsed

let dedup_rate r =
  if r.transitions = 0 then 0.
  else float_of_int r.dedup_hits /. float_of_int r.transitions

let classify detail =
  if String.length detail >= 5 && String.sub detail 0 5 = "stale" then
    `Stale_data
  else `Unhandled

let obs_reg = lazy (Obs.Metrics.registry "mcheck")

let run ?(max_states = 200_000) ?(symmetry = false) ?tables config =
  Obs.Trace.with_span ~cat:"mcheck"
    ~args:
      [ "nodes", Obs.Json.Int config.Semantics.nodes;
        "addrs", Obs.Json.Int config.Semantics.addrs ]
    "mcheck.run"
  @@ fun () ->
  let tables = match tables with Some t -> t | None -> Semantics.load_tables () in
  let t0 = Sys.time () in
  let state_key =
    if symmetry then Mstate.canonical_key ~nodes:config.Semantics.nodes
    else Mstate.key
  in
  let initial = Mstate.initial ~nodes:config.Semantics.nodes ~addrs:config.addrs in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let parent : (string, string * string) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let initial_key = state_key initial in
  Hashtbl.add visited initial_key ();
  Queue.add (initial, initial_key, 0) queue;
  let explored = ref 0 and transitions = ref 0 and max_depth = ref 0 in
  let dedup_hits = ref 0 and max_frontier = ref 0 in
  let per_depth : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let depth_histogram =
    Obs.Metrics.histogram
      ~bounds:(Obs.Metrics.exponential_bounds ~start:1. ~factor:2. 12)
      (Lazy.force obs_reg) "expansion_depth"
  in
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find_opt parent key with
      | None -> acc
      | Some (pkey, label) -> go pkey (label :: acc)
    in
    go key []
  in
  let finish violation complete =
    let elapsed = Sys.time () -. t0 in
    let reg = Lazy.force obs_reg in
    Obs.Metrics.add (Obs.Metrics.counter reg "states_explored") !explored;
    Obs.Metrics.add (Obs.Metrics.counter reg "transitions") !transitions;
    Obs.Metrics.add (Obs.Metrics.counter reg "dedup_hits") !dedup_hits;
    Obs.Metrics.set
      (Obs.Metrics.gauge reg "states_per_sec")
      (if elapsed <= 0. then 0. else float_of_int !explored /. elapsed);
    Obs.Metrics.set
      (Obs.Metrics.gauge reg "max_frontier")
      (float_of_int !max_frontier);
    {
      explored = !explored;
      transitions = !transitions;
      max_depth = !max_depth;
      elapsed;
      violation;
      complete;
      dedup_hits = !dedup_hits;
      per_depth =
        List.sort compare
          (Hashtbl.fold (fun d n acc -> (d, n) :: acc) per_depth []);
      max_frontier = !max_frontier;
    }
  in
  let exception Found of violation in
  try
    while not (Queue.is_empty queue) do
      if !explored >= max_states then raise Exit;
      let frontier = Queue.length queue in
      if frontier > !max_frontier then max_frontier := frontier;
      (* sample the frontier sparsely so tracing stays cheap *)
      if !explored land 1023 = 0 then
        Obs.Trace.counter "mcheck.frontier"
          [ "queued", float_of_int frontier ];
      let st, key, depth = Queue.take queue in
      incr explored;
      Hashtbl.replace per_depth depth
        (1 + Option.value (Hashtbl.find_opt per_depth depth) ~default:0);
      Obs.Metrics.observe depth_histogram (float_of_int depth);
      if depth > !max_depth then max_depth := depth;
      (match Semantics.state_violations config st with
      | [] -> ()
      | detail :: _ ->
          raise (Found { kind = `Coherence; detail; trace = trace_to key }));
      let succs = Semantics.successors tables config st in
      if succs = [] && not (Mstate.quiescent st) then
        raise
          (Found
             {
               kind = `Deadlock;
               detail = "no transition enabled but work is pending";
               trace = trace_to key;
             });
      List.iter
        (fun (label, outcome) ->
          incr transitions;
          match outcome with
          | Semantics.Broken detail ->
              raise
                (Found
                   {
                     kind = classify detail;
                     detail;
                     trace = trace_to key @ [ label ];
                   })
          | Semantics.Next st' ->
              let key' = state_key st' in
              if Hashtbl.mem visited key' then incr dedup_hits
              else begin
                Hashtbl.add visited key' ();
                Hashtbl.add parent key' (key, label);
                Queue.add (st', key', depth + 1) queue
              end)
        succs
    done;
    finish None true
  with
  | Exit -> finish None false
  | Found v -> finish (Some v) true

let pp_result fmt r =
  Format.fprintf fmt
    "states=%d transitions=%d depth=%d time=%.2fs (%.0f states/s, dedup %.0f%%) %s"
    r.explored r.transitions r.max_depth r.elapsed (states_per_sec r)
    (100. *. dedup_rate r)
    (match r.violation with
    | None -> if r.complete then "no violations" else "bounded, no violations"
    | Some v ->
        Printf.sprintf "VIOLATION %s (trace length %d)" v.detail
          (List.length v.trace))

let pp_depth_profile fmt r =
  Format.fprintf fmt "depth histogram (states expanded per BFS depth):@.";
  let widest =
    List.fold_left (fun acc (_, n) -> max acc n) 1 r.per_depth
  in
  List.iter
    (fun (depth, n) ->
      let bar = max 1 (n * 40 / widest) in
      Format.fprintf fmt "  %3d %8d %s@." depth n (String.make bar '#'))
    r.per_depth
