(** Code generation from implementation tables — the paper's "code is
    automatically generated from these tables using SQL report
    generation".

    A table becomes an ordered rule list: each row contributes a guard
    (its non-NULL input cells — NULL inputs are dont-cares, which is what
    makes the mapping compact) and an action (its non-NULL output cells).
    Rules are ordered most-specific-first so a dont-care row never shadows
    a more constrained one.  From the rules we emit Verilog-style
    priority logic and an OCaml match function; {!agrees_with_table}
    replays every table row through the rule list to prove the generated
    logic computes exactly the table (experiment E8). *)

type rule = {
  row : int;
      (** index of the generating row in the source table — survives the
          specificity sort, so a fired rule can be traced back to (and
          coverage charged against) its table row *)
  guard : (string * string) list;  (** input column = value conjuncts *)
  action : (string * string) list;  (** output column := value *)
}

val rules_of_table :
  inputs:string list -> outputs:string list -> Relalg.Table.t -> rule list

val eval_rule : rule list -> (string * string) list -> rule option
(** First-match-wins evaluation over a concrete input binding (absent
    columns behave as NULL); the whole matched rule, so callers can see
    which table row fired.  [None] if no rule fires. *)

val eval_rules :
  rule list -> (string * string) list -> (string * string) list option
(** [eval_rule] projected to the action. *)

val agrees_with_table :
  inputs:string list -> outputs:string list -> Relalg.Table.t -> bool
(** Replay every row: the rule list must reproduce the row's outputs. *)

val to_verilog : name:string -> rule list -> string
(** Priority if/else always-block with localparam enum encodings. *)

val to_ocaml : name:string -> rule list -> string
(** An OCaml function over (string * string) list environments. *)

val emit_all : Relalg.Database.t -> (string * string) list
(** Verilog for each of the nine implementation tables of a database
    produced by {!Partition.run}: (table name, code). *)
