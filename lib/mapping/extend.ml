open Relalg

let qstatus_values = [ "Full"; "NotFull" ]

let d_inputs = Protocol.Dir_controller.input_columns
let d_outputs = Protocol.Dir_controller.output_columns
let input_columns = d_inputs @ [ "qstatus"; "dqstatus"; "fdctx" ]
let output_columns = d_outputs @ [ "fdback" ]

let schema = Schema.of_list (input_columns @ output_columns)

let v = Value.str
let null = Value.Null

(* Build one ED row from a D row: the D inputs, the three implementation
   inputs, then either the D outputs or an override. *)
let ed_row d_schema d_row ~qstatus ~dqstatus ~fdctx ~outputs =
  let inputs =
    Array.map
      (fun c -> d_row.(Schema.index d_schema c))
      (Array.of_list d_inputs)
  in
  Array.concat [ inputs; [| qstatus; dqstatus; fdctx |]; outputs ]

let out_idx c =
  let rec find i = function
    | [] -> invalid_arg ("Extend.out_idx: " ^ c)
    | x :: _ when x = c -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 output_columns

let outputs_with cells =
  let out = Array.make (List.length output_columns) null in
  List.iter (fun (c, x) -> out.(out_idx c) <- x) cells;
  out

let retry_outputs =
  outputs_with
    [
      "locmsg", v "retry"; "locmsgsrc", v "home"; "locmsgdest", v "local";
      "locmsgres", v "locq";
    ]

let feedback_outputs = outputs_with [ "fdback", v "dfdback" ]

let generate () =
  let d = Protocol.Dir_controller.table () in
  let d_schema = Table.schema d in
  let get row c = row.(Schema.index d_schema c) in
  let original_outputs row =
    Array.append
      (Array.map
         (fun c -> row.(Schema.index d_schema c))
         (Array.of_list d_outputs))
      [| null |]
  in
  let is_request row = Value.equal (get row "inmsgres") (v "reqq") in
  let needs_update row = Value.equal (get row "dirwr") (v "yes") in
  let expand row =
    if is_request row then
      [
        ed_row d_schema row ~qstatus:(v "Full") ~dqstatus:null ~fdctx:null
          ~outputs:retry_outputs;
        ed_row d_schema row ~qstatus:(v "NotFull") ~dqstatus:null ~fdctx:null
          ~outputs:(original_outputs row);
      ]
    else if needs_update row then begin
      (* The deferred variant reinjects the response through the feedback
         path; the dfdback request replays it once the queues drain. *)
      let ctx = get row "inmsg" in
      let replay_inputs =
        Array.map
          (fun c ->
            match c with
            | "inmsg" -> v "dfdback"
            | "inmsgsrc" | "inmsgdest" -> v "home"
            | "inmsgres" -> v "reqq"
            | _ -> get row c)
          (Array.of_list d_inputs)
      in
      let replay ~qstatus ~dqstatus ~outputs =
        Array.concat [ replay_inputs; [| qstatus; dqstatus; ctx |]; outputs ]
      in
      [
        ed_row d_schema row ~qstatus:null ~dqstatus:(v "Full") ~fdctx:null
          ~outputs:feedback_outputs;
        ed_row d_schema row ~qstatus:null ~dqstatus:(v "NotFull") ~fdctx:null
          ~outputs:(original_outputs row);
        replay ~qstatus:(v "NotFull") ~dqstatus:(v "NotFull")
          ~outputs:(original_outputs row);
        replay ~qstatus:(v "NotFull") ~dqstatus:(v "Full")
          ~outputs:feedback_outputs;
        replay ~qstatus:(v "Full") ~dqstatus:null ~outputs:feedback_outputs;
      ]
    end
    else
      [
        ed_row d_schema row ~qstatus:null ~dqstatus:null ~fdctx:null
          ~outputs:(original_outputs row);
      ]
  in
  Table.distinct
    (Table.of_rows ~name:"ED" schema
       (List.concat
          (List.rev (Table.fold (fun acc row -> expand row :: acc) [] d))))

let cache = ref None

let ed () =
  match !cache with
  | Some t -> t
  | None ->
      let t = generate () in
      cache := Some t;
      t

let database () = Database.add (Protocol.database ()) (ed ())
