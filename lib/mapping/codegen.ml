open Relalg

type rule = {
  row : int;  (* index of the generating row in the source table *)
  guard : (string * string) list;
  action : (string * string) list;
}

let cells_of cols schema row =
  List.filter_map
    (fun c ->
      match row.(Schema.index schema c) with
      | Value.Str s -> Some (c, s)
      | Value.Int i -> Some (c, string_of_int i)
      | Value.Bool b -> Some (c, string_of_bool b)
      | Value.Float f -> Some (c, Value.to_string (Value.Float f))
      | Value.Null -> None)
    cols

(* Rule extraction runs off the dictionary codes: each referenced
   column's dictionary entries are rendered to strings once, and every
   row's guard/action cells are then array lookups — no row is decoded.
   This is the path the model checker and the table-driven simulator
   load their controllers through, so it runs once per (big) table. *)
let rules_of_table ~inputs ~outputs t =
  let schema = Table.schema t in
  let rendered cols =
    List.map
      (fun c ->
        let j = Schema.index schema c in
        let d = Table.dict t j in
        let strs =
          Array.init (Dict.size d) (fun code ->
              match Dict.value d code with
              | Value.Str s -> Some s
              | Value.Int i -> Some (string_of_int i)
              | Value.Bool b -> Some (string_of_bool b)
              | Value.Float f -> Some (Value.to_string (Value.Float f))
              | Value.Null -> None)
        in
        (c, Table.codes t j, strs))
      cols
  in
  let rin = rendered inputs and rout = rendered outputs in
  let cells_at cols i =
    List.filter_map
      (fun (c, codes, strs) -> Option.map (fun s -> (c, s)) strs.(codes.(i)))
      cols
  in
  let rules =
    List.init (Table.cardinality t) (fun i ->
        { row = i; guard = cells_at rin i; action = cells_at rout i })
  in
  (* Most-specific-first so dont-care rows cannot shadow constrained
     ones; stable within equal specificity to keep table order. *)
  List.stable_sort
    (fun a b -> compare (List.length b.guard) (List.length a.guard))
    rules

let eval_rule rules binding =
  let matches r =
    List.for_all
      (fun (c, want) ->
        match List.assoc_opt c binding with
        | Some got -> String.equal got want
        | None -> false)
      r.guard
  in
  List.find_opt matches rules

let eval_rules rules binding =
  Option.map (fun r -> r.action) (eval_rule rules binding)

let agrees_with_table ~inputs ~outputs t =
  let rules = rules_of_table ~inputs ~outputs t in
  let schema = Table.schema t in
  List.for_all
    (fun row ->
      let binding = cells_of inputs schema row in
      let expected = cells_of outputs schema row in
      match eval_rules rules binding with
      | Some action ->
          List.sort compare action = List.sort compare expected
      | None -> expected = [])
    (Table.rows t)

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let enum_token col value = String.uppercase_ascii (sanitize (col ^ "_" ^ value))

let enums_of_rules rules =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  let note (c, v) =
    if not (Hashtbl.mem tbl (c, v)) then begin
      Hashtbl.add tbl (c, v) ();
      order := (c, v) :: !order
    end
  in
  List.iter
    (fun r ->
      List.iter note r.guard;
      List.iter note r.action)
    rules;
  List.rev !order

let to_verilog ~name rules =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "// generated from table %s -- do not edit\n" name;
  pr "module %s;\n" (String.lowercase_ascii (sanitize name));
  let enums = enums_of_rules rules in
  List.iteri
    (fun i (c, v) -> pr "  localparam %s = %d; // %s = %s\n" (enum_token c v) i c v)
    enums;
  pr "  always @* begin\n";
  List.iteri
    (fun i r ->
      let cond =
        match r.guard with
        | [] -> "1'b1"
        | g ->
            String.concat " && "
              (List.map (fun (c, v) -> Printf.sprintf "%s == %s" (sanitize c) (enum_token c v)) g)
      in
      pr "    %s (%s) begin\n" (if i = 0 then "if" else "else if") cond;
      List.iter
        (fun (c, v) -> pr "      %s <= %s;\n" (sanitize c) (enum_token c v))
        r.action;
      pr "    end\n")
    rules;
  pr "  end\nendmodule\n";
  Buffer.contents buf

let to_ocaml ~name rules =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "(* generated from table %s -- do not edit *)\n" name;
  pr "let %s binding =\n" (String.lowercase_ascii (sanitize name));
  pr "  let is c v = List.assoc_opt c binding = Some v in\n";
  pr "  ignore is;\n";
  List.iter
    (fun r ->
      let cond =
        match r.guard with
        | [] -> "true"
        | g ->
            String.concat " && "
              (List.map (fun (c, v) -> Printf.sprintf "is %S %S" c v) g)
      in
      pr "  if %s then Some [%s] else\n" cond
        (String.concat "; "
           (List.map (fun (c, v) -> Printf.sprintf "%S, %S" c v) r.action)))
    rules;
  pr "  None\n";
  Buffer.contents buf

let emit_all db =
  List.map
    (fun (g : Partition.group) ->
      let t = Database.find db g.table_name in
      let rules =
        rules_of_table ~inputs:Extend.input_columns ~outputs:g.payload t
      in
      g.table_name, to_verilog ~name:g.table_name rules)
    Partition.groups
