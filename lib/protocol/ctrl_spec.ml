open Relalg

type input_spec = V of string | Among of string list
type output_spec = Out of string | Copy of string

type scenario = {
  label : string;
  when_ : (string * input_spec) list;
  emit : (string * output_spec) list;
}

type t = {
  name : string;
  inputs : (string * string list) list;
  outputs : (string * string list) list;
  scenarios : scenario list;
  mutable generated : Table.t option;
}

exception Invalid_controller of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_controller s)) fmt

let validate t =
  let check_distinct what names =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun n ->
        if Hashtbl.mem seen n then invalid "%s: duplicate %s %s" t.name what n;
        Hashtbl.add seen n ())
      names
  in
  check_distinct "column" (List.map fst t.inputs @ List.map fst t.outputs);
  check_distinct "scenario" (List.map (fun s -> s.label) t.scenarios);
  let in_domain cols col v =
    match List.assoc_opt col cols with
    | None -> false
    | Some dom -> List.mem v dom
  in
  List.iter
    (fun s ->
      List.iter
        (fun (col, spec) ->
          if not (List.mem_assoc col t.inputs) then
            invalid "%s/%s: unknown input column %s" t.name s.label col;
          let vs = match spec with V v -> [ v ] | Among vs -> vs in
          if vs = [] then invalid "%s/%s: empty Among on %s" t.name s.label col;
          List.iter
            (fun v ->
              if not (in_domain t.inputs col v) then
                invalid "%s/%s: value %s not in column table %s" t.name s.label
                  v col)
            vs)
        s.when_;
      check_distinct (Printf.sprintf "input of scenario %s" s.label)
        (List.map fst s.when_);
      List.iter
        (fun (col, spec) ->
          if not (List.mem_assoc col t.outputs) then
            invalid "%s/%s: unknown output column %s" t.name s.label col;
          match spec with
          | Out v ->
              if not (in_domain t.outputs col v) then
                invalid "%s/%s: value %s not in column table %s" t.name s.label
                  v col
          | Copy src ->
              if not (List.mem_assoc src t.inputs) then
                invalid "%s/%s: Copy from non-input column %s" t.name s.label
                  src)
        s.emit;
      check_distinct (Printf.sprintf "output of scenario %s" s.label)
        (List.map fst s.emit))
    t.scenarios;
  t

let make ~name ~inputs ~outputs ~scenarios =
  validate { name; inputs; outputs; scenarios; generated = None }

let name t = t.name
let input_columns t = List.map fst t.inputs
let output_columns t = List.map fst t.outputs

let domain t col =
  match List.assoc_opt col (t.inputs @ t.outputs) with
  | Some dom -> Value.Null :: List.map Value.str dom
  | None -> invalid "%s: unknown column %s" t.name col

let scenarios t = t.scenarios
let find_scenario t label = List.find_opt (fun s -> s.label = label) t.scenarios

(* The box of a scenario restricted to a set of input columns: mentioned
   columns must match their spec, unmentioned ones are pinned to NULL. *)
let box_over t s cols =
  let atom col =
    match List.assoc_opt col s.when_ with
    | Some (V v) -> Expr.eq col v
    | Some (Among vs) -> Expr.isin col vs
    | None -> Expr.eq_null col
  in
  ignore t;
  Expr.conj (List.map atom cols)

let guard t s = box_over t s (input_columns t)

let output_atom col = function
  | Out v -> Expr.eq col v
  | Copy src -> Expr.Eq (Expr.Col col, Expr.Col src)

(* Column constraints.  For input column c (the i-th in order), the
   constraint is the disjunction of scenario boxes over columns 1..i; the
   one on the last input column is exact, earlier ones prune the
   incremental search.  For output column c, the constraint is the paper's
   ternary chain: box1 ? c = v1 : box2 ? c = v2 : ... : c = NULL. *)
let column_constraint t col =
  let ins = input_columns t in
  if List.mem_assoc col t.inputs then begin
    let rec prefix acc = function
      | [] -> invalid "%s: unknown input %s" t.name col
      | c :: rest ->
          if c = col then List.rev (c :: acc)
          else prefix (c :: acc) rest
    in
    let cols = prefix [] ins in
    Expr.disj (List.map (fun s -> box_over t s cols) t.scenarios)
  end
  else if List.mem_assoc col t.outputs then
    List.fold_right
      (fun s rest ->
        let out =
          match List.assoc_opt col s.emit with
          | Some spec -> output_atom col spec
          | None -> Expr.eq_null col
        in
        Expr.Ternary (guard t s, out, rest))
      t.scenarios (Expr.eq_null col)
  else invalid "%s: unknown column %s" t.name col

let to_solver_spec t =
  let mk role (cname, _dom) =
    { Solver.cname; role; domain = domain t cname }
  in
  let columns =
    List.map (mk Solver.Input) t.inputs @ List.map (mk Solver.Output) t.outputs
  in
  let constraints =
    List.map
      (fun (c, _) -> c, column_constraint t c)
      (t.inputs @ t.outputs)
  in
  Solver.make ~name:t.name ~columns ~constraints

let generate t = Solver.generate (to_solver_spec t)

let table t =
  match t.generated with
  | Some tbl -> tbl
  | None ->
      let tbl, _ = generate t in
      t.generated <- Some tbl;
      tbl

(* One table row as a readable transition: the non-NULL input cells as
   a guard, "->", the non-NULL output cells as the action — the decoded
   form `asura report` prints for uncovered rows. *)
let describe_row t i =
  let tbl = table t in
  let row = Relalg.Table.get tbl i in
  let cells cols =
    List.filter_map
      (fun c ->
        match Relalg.Table.cell tbl row c with
        | Relalg.Value.Null -> None
        | v -> Some (Printf.sprintf "%s=%s" c (Relalg.Value.to_string v)))
      cols
  in
  let side cols empty =
    match cells cols with [] -> empty | cs -> String.concat " " cs
  in
  Printf.sprintf "%s -> %s"
    (side (input_columns t) "(always)")
    (side (output_columns t) "(no action)")

let constraints_listing t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "-- column constraints for %s\n" t.name);
  List.iter
    (fun (c, _) ->
      Buffer.add_string buf
        (Format.asprintf "%s:@.  %a@." c Expr.pp (column_constraint t c)))
    (t.inputs @ t.outputs);
  Buffer.contents buf

let with_scenarios t scenarios =
  validate { t with scenarios; generated = None }

let map_scenario t label f =
  if not (List.exists (fun s -> s.label = label) t.scenarios) then
    invalid "%s: no scenario %s" t.name label;
  with_scenarios t
    (List.map (fun s -> if s.label = label then f s else s) t.scenarios)

let drop_scenario t label =
  if not (List.exists (fun s -> s.label = label) t.scenarios) then
    invalid "%s: no scenario %s" t.name label;
  with_scenarios t (List.filter (fun s -> s.label <> label) t.scenarios)
