(** Controller specifications: scenarios, column tables, and the derived
    SQL column constraints (section 3 of the paper).

    A controller is a multi-input/multi-output state machine.  Its
    specification names the input and output columns with their column
    tables (legal values — [NULL] is always added, meaning dont-care on
    inputs and no-op on outputs) and lists {e scenarios}.  A scenario pins
    some input columns to a value or a small set of values (unmentioned
    inputs are dont-care, i.e. [NULL] in the generated rows) and gives the
    outputs (unmentioned outputs are no-op, i.e. [NULL]).

    From the scenarios this module derives exactly the artifacts the paper
    feeds to the database:
    - one {e column constraint} per column — ternary chains of the form
      [cond ? col = v : …] for outputs, prefix-box disjunctions for inputs
      ({!column_constraint} renders them; {!to_solver_spec} hands them to
      the {!Relalg.Solver});
    - the generated controller table — the set of satisfying assignments.

    Scenario order matters the way ternary order matters in the paper: the
    first matching scenario defines the outputs. *)

type input_spec =
  | V of string  (** the column must equal this value *)
  | Among of string list  (** one row per listed value *)

type output_spec =
  | Out of string  (** constant output value *)
  | Copy of string  (** copy the value of the named input column *)

type scenario = {
  label : string;  (** unique id, used in reports and seeded-bug ablations *)
  when_ : (string * input_spec) list;
  emit : (string * output_spec) list;
}

type t

exception Invalid_controller of string

val make :
  name:string ->
  inputs:(string * string list) list ->
  outputs:(string * string list) list ->
  scenarios:scenario list ->
  t
(** Validate and build.  @raise Invalid_controller on: unknown columns in a
    scenario, values outside the column table, duplicate column or scenario
    labels, or a [Copy] from a non-input column. *)

val name : t -> string
val input_columns : t -> string list
val output_columns : t -> string list
val domain : t -> string -> Relalg.Value.t list
(** Column table contents (includes [Null]). @raise Invalid_controller. *)

val scenarios : t -> scenario list
val find_scenario : t -> string -> scenario option

val guard : t -> scenario -> Relalg.Expr.t
(** The scenario's full box over all input columns (unmentioned inputs
    pinned to [NULL]). *)

val column_constraint : t -> string -> Relalg.Expr.t
(** The derived column constraint, in the paper's ternary style for output
    columns; for an input column, the disjunction of scenario boxes
    restricted to the columns bound so far. *)

val to_solver_spec : t -> Relalg.Solver.spec
val generate : t -> Relalg.Table.t * Relalg.Solver.stats
(** Incremental generation (the paper's fast path). *)

val table : t -> Relalg.Table.t
(** Memoized {!generate}. *)

val describe_row : t -> int -> string
(** Row [i] of {!table} as a readable transition:
    ["inmsg=readex dirst=I ... -> locmsg=data ..."] (non-NULL input
    cells, then non-NULL outputs).  Used by [asura report] to decode
    uncovered coverage-bitmap rows.
    @raise Invalid_argument on an out-of-range index. *)

val constraints_listing : t -> string
(** Human-readable dump of every column constraint — the "database input"
    component (ii) of the paper's push-button flow. *)

val with_scenarios : t -> scenario list -> t
(** Re-validated copy with different scenarios (used to seed bugs in the
    ablation experiments). *)

val map_scenario : t -> string -> (scenario -> scenario) -> t
(** Rewrite one scenario by label. @raise Invalid_controller if absent. *)

val drop_scenario : t -> string -> t
(** Remove one scenario by label. @raise Invalid_controller if absent. *)
