open Relalg
open Ctrl_spec

(* ------------------------------------------------------------------ *)
(* Column tables                                                       *)
(* ------------------------------------------------------------------ *)

let input_columns =
  [
    "inmsg"; "inmsgsrc"; "inmsgdest"; "inmsgres"; "addrspace"; "dirst";
    "dirpv"; "reqpv"; "bdirst"; "bdirpv"; "dirlookup"; "bdirlookup";
  ]

let output_columns =
  [
    "locmsg"; "locmsgsrc"; "locmsgdest"; "locmsgres"; "remmsg"; "remmsgsrc";
    "remmsgdest"; "remmsgres"; "memmsg"; "memmsgsrc"; "memmsgdest";
    "memmsgres"; "nxtdirst"; "nxtdirpv"; "nxtbdirst"; "nxtbdirpv"; "dirwr";
    "bdirop"; "datasrc";
  ]

let inputs =
  [
    ( "inmsg",
      Message.local_requests @ Message.snoop_responses
      @ Message.memory_responses @ [ "compl" ] );
    "inmsgsrc", [ "local"; "remote"; "home" ];
    "inmsgdest", [ "home" ];
    "inmsgres", [ "reqq"; "respq"; "ackq" ];
    "addrspace", [ "mem"; "io" ];
    "dirst", [ "I"; "SI"; "MESI" ];
    "dirpv", State.pv_values;
    "reqpv", [ "in"; "out" ];
    "bdirst", State.bdir_domain;
    "bdirpv", State.pv_values;
    "dirlookup", State.lookup_values;
    "bdirlookup", State.lookup_values;
  ]

let outputs =
  [
    ( "locmsg",
      [ "data"; "datax"; "compl"; "retry"; "nack"; "iodata"; "iocompl";
        "intack"; "lockgrant"; "racfill" ] );
    "locmsgsrc", [ "home" ];
    "locmsgdest", [ "local" ];
    "locmsgres", [ "locq" ];
    "remmsg", Message.snoop_requests;
    "remmsgsrc", [ "home" ];
    "remmsgdest", [ "remote" ];
    "remmsgres", [ "remq" ];
    "memmsg", Message.memory_requests;
    "memmsgsrc", [ "home" ];
    "memmsgdest", [ "home" ];
    "memmsgres", [ "memq" ];
    "nxtdirst", [ "I"; "SI"; "MESI" ];
    "nxtdirpv", State.pv_ops;
    "nxtbdirst", State.bdir_domain;
    "nxtbdirpv", State.pv_ops;
    "dirwr", [ "yes"; "no" ];
    "bdirop", [ "alloc"; "update"; "dealloc" ];
    "datasrc", [ "mem"; "owner" ];
  ]

(* ------------------------------------------------------------------ *)
(* Scenario combinators                                                *)
(* ------------------------------------------------------------------ *)

let scen label when_ emit = { label; when_; emit }
let busy txn p = Printf.sprintf "Busy-%s-%s" txn p

(* A request being served (line not busy).  [dirst], when given, also pins
   the directory-lookup result; [space] is the address space of the
   transaction (mem / io), omitted for special messages. *)
let request_when ?dirst ?dirpv ?reqpv ?space msgs =
  let inmsg = match msgs with [ m ] -> V m | ms -> Among ms in
  [
    "inmsg", inmsg;
    "inmsgsrc", V "local";
    "inmsgdest", V "home";
    "inmsgres", V "reqq";
    "bdirlookup", V "miss";
  ]
  @ (match space with None -> [] | Some sp -> [ "addrspace", V sp ])
  @ (match dirst with
    | None -> []
    | Some st ->
        [ "dirst", V st; "dirlookup", V (if st = "I" then "miss" else "hit") ])
  @ (match reqpv with None -> [] | Some r -> [ "reqpv", V r ])
  @ match dirpv with
    | None -> []
    | Some [ pv ] -> [ "dirpv", V pv ]
    | Some pvs -> [ "dirpv", Among pvs ]

(* A response consuming a busy-directory entry. *)
let response_when ?bdirpv ~bdirst msg =
  let m = Message.find_exn msg in
  [
    "inmsg", V msg;
    "inmsgsrc", V (Topology.node_class_to_string m.Message.src);
    "inmsgdest", V "home";
    "inmsgres", V "respq";
    "bdirlookup", V "hit";
    "bdirst", bdirst;
  ]
  @ match bdirpv with None -> [] | Some pv -> [ "bdirpv", V pv ]

let to_local msg =
  [
    "locmsg", Out msg; "locmsgsrc", Out "home"; "locmsgdest", Out "local";
    "locmsgres", Out "locq";
  ]

let to_remote msg =
  [
    "remmsg", Out msg; "remmsgsrc", Out "home"; "remmsgdest", Out "remote";
    "remmsgres", Out "remq";
  ]

let to_mem msg =
  [
    "memmsg", Out msg; "memmsgsrc", Out "home"; "memmsgdest", Out "home";
    "memmsgres", Out "memq";
  ]

let dir_write ?pv st =
  [ "dirwr", Out "yes"; "nxtdirst", Out st ]
  @ match pv with None -> [] | Some op -> [ "nxtdirpv", Out op ]

(* Allocate a busy entry; its pv is loaded from the directory pv ([repl])
   or from the directory pv minus the requester itself ([drepl]). *)
let alloc ?(pv = "repl") st = [ "bdirop", Out "alloc"; "nxtbdirst", Out st; "nxtbdirpv", Out pv ]

let update ?pv st =
  [ "bdirop", Out "update"; "nxtbdirst", Out st ]
  @ match pv with None -> [] | Some op -> [ "nxtbdirpv", Out op ]

let dealloc = [ "bdirop", Out "dealloc"; "nxtbdirst", Out "I" ]
let from_owner = [ "datasrc", Out "owner" ]
let from_mem = [ "datasrc", Out "mem" ]

(* ------------------------------------------------------------------ *)
(* Transaction families                                                *)
(* ------------------------------------------------------------------ *)

(* Shared reads (read, fetch): data ends up shared; a dirty owner is
   downgraded with [sread] and supplies the data. *)
let read_family txn =
  [
    scen (txn ^ "-miss")
      (request_when ~dirst:"I" ~dirpv:[ "zero" ] ~space:"mem" [ txn ])
      (to_mem "mread" @ alloc (busy txn "d") @ from_mem);
    scen (txn ^ "-shared")
      (request_when ~dirst:"SI" ~dirpv:[ "one"; "gone" ] ~space:"mem" [ txn ])
      (to_mem "mread" @ dir_write "I" @ alloc (busy txn "d") @ from_mem);
    scen (txn ^ "-owned")
      (request_when ~dirst:"MESI" ~dirpv:[ "one" ] ~space:"mem" [ txn ])
      (to_remote "sread" @ dir_write "I" @ alloc (busy txn "s") @ from_owner);
    scen (txn ^ "-mdata-grant")
      (response_when ~bdirst:(V (busy txn "d")) "mdata")
      (to_local "data" @ update (busy txn "c") @ from_mem);
    scen (txn ^ "-sdata-grant")
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"one" "sdata")
      (to_local "data" @ to_mem "mupdate" @ update (busy txn "c")
      @ from_owner);
  ]

(* Exclusive accesses (readex, swap): all sharers invalidated, dirty owner
   flushed; the requester becomes the MESI owner.  This is the paper's
   Figure 2/3 transaction. *)
let exclusive_family txn =
  [
    scen (txn ^ "-miss")
      (request_when ~dirst:"I" ~dirpv:[ "zero" ] ~space:"mem" [ txn ])
      (to_mem "mread" @ alloc (busy txn "d") @ from_mem);
    scen (txn ^ "-shared")
      (request_when ~dirst:"SI" ~dirpv:[ "one"; "gone" ] ~space:"mem" [ txn ])
      (to_remote "sinv" @ to_mem "mread" @ dir_write "I"
      @ alloc (busy txn "sd") @ from_mem);
    scen (txn ^ "-owned")
      (request_when ~dirst:"MESI" ~dirpv:[ "one" ] ~space:"mem" [ txn ])
      (to_remote "sflush" @ dir_write "I" @ alloc (busy txn "s") @ from_owner);
    scen (txn ^ "-idone-sd-more")
      (response_when ~bdirst:(V (busy txn "sd")) ~bdirpv:"gone" "idone")
      (update (busy txn "sd") ~pv:"dec");
    scen (txn ^ "-idone-sd-last")
      (response_when ~bdirst:(V (busy txn "sd")) ~bdirpv:"one" "idone")
      (update (busy txn "d") ~pv:"dec");
    scen (txn ^ "-mdata-sd")
      (response_when ~bdirst:(V (busy txn "sd")) "mdata")
      (update (busy txn "s"));
    scen (txn ^ "-idone-s-more")
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"gone" "idone")
      (update (busy txn "s") ~pv:"dec");
    scen (txn ^ "-idone-s-grant")
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"one" "idone")
      (to_local "datax" @ update (busy txn "c") @ from_mem);
    scen (txn ^ "-mdata-grant")
      (response_when ~bdirst:(V (busy txn "d")) "mdata")
      (to_local "datax" @ update (busy txn "c") @ from_mem);
    scen (txn ^ "-sdata-grant")
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"one" "sdata")
      (to_local "datax" @ update (busy txn "c") @ from_owner);
    scen (txn ^ "-swbdata-grant")
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"one" "swbdata")
      (to_local "datax" @ update (busy txn "c") @ from_owner);
  ]

(* Ownership upgrade: no data needed when the requester is the only
   sharer; otherwise the other sharers are invalidated.  Races where the
   requester's copy was already invalidated degrade to a readex. *)
let upgrade_family =
  let txn = "upgrade" in
  [
    (* the requester still holds its shared copy (presence bit set) *)
    scen "upgrade-solo"
      (request_when ~dirst:"SI" ~dirpv:[ "one" ] ~reqpv:"in" ~space:"mem"
         [ txn ])
      (to_local "compl" @ dir_write "I" @ alloc (busy txn "c"));
    scen "upgrade-shared"
      (request_when ~dirst:"SI" ~dirpv:[ "gone" ] ~reqpv:"in" ~space:"mem"
         [ txn ])
      (to_remote "sinv" @ dir_write "I" @ alloc ~pv:"drepl" (busy txn "s"));
    (* the requester's copy was invalidated while the upgrade was in
       flight: it needs data again, like a readex *)
    scen "upgrade-lost"
      (request_when ~dirst:"SI" ~dirpv:[ "one"; "gone" ] ~reqpv:"out"
         ~space:"mem" [ txn ])
      (to_remote "sinv" @ to_mem "mread" @ dir_write "I"
      @ alloc (busy txn "sd") @ from_mem);
    scen "upgrade-race-owned"
      (request_when ~dirst:"MESI" ~dirpv:[ "one" ] ~reqpv:"out" ~space:"mem"
         [ txn ])
      (to_remote "sflush" @ dir_write "I" @ alloc (busy txn "s") @ from_owner);
    scen "upgrade-race-inval"
      (request_when ~dirst:"I" ~dirpv:[ "zero" ] ~space:"mem" [ txn ])
      (to_mem "mread" @ alloc (busy txn "d") @ from_mem);
    scen "upgrade-idone-sd-more"
      (response_when ~bdirst:(V (busy txn "sd")) ~bdirpv:"gone" "idone")
      (update (busy txn "sd") ~pv:"dec");
    scen "upgrade-idone-sd-last"
      (response_when ~bdirst:(V (busy txn "sd")) ~bdirpv:"one" "idone")
      (update (busy txn "d") ~pv:"dec");
    scen "upgrade-mdata-sd"
      (response_when ~bdirst:(V (busy txn "sd")) "mdata")
      (update (busy txn "s"));
    scen "upgrade-idone-more"
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"gone" "idone")
      (update (busy txn "s") ~pv:"dec");
    scen "upgrade-idone-grant"
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"one" "idone")
      (to_local "compl" @ update (busy txn "c"));
    scen "upgrade-sdata-grant"
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"one" "sdata")
      (to_local "datax" @ update (busy txn "c") @ from_owner);
    scen "upgrade-swbdata-grant"
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"one" "swbdata")
      (to_local "datax" @ update (busy txn "c") @ from_owner);
    scen "upgrade-mdata-grant"
      (response_when ~bdirst:(V (busy txn "d")) "mdata")
      (to_local "datax" @ update (busy txn "c") @ from_mem);
  ]

(* Writeback-race absorption.  A dirty owner may issue [wb] concurrently
   with a flush snoop for the same line; the snoop then finds the line
   gone and answers [snack].  Retrying the crossing [wb] would let the
   requester read stale memory, so instead the directory absorbs it:
   forward the data to memory ([mwrite]), complete the writeback, and
   fetch fresh data with [mread] only after the write is ordered (the
   memory queue is FIFO, so enqueueing the read after the ack suffices).
   The states: [w] — snack seen, writeback still in flight; [m] —
   writeback forwarded, ack pending, read next; [sm] — writeback absorbed
   before its snack arrived. *)
let wb_race_family txn =
  let wb_at st =
    [
      "inmsg", V "wb"; "inmsgsrc", V "local"; "inmsgdest", V "home";
      "inmsgres", V "reqq"; "bdirlookup", V "hit"; "bdirst", V (busy txn st);
    ]
  in
  let absorb = to_mem "mwrite" @ to_local "compl" in
  [
    scen (txn ^ "-snack-owner-gone")
      (response_when ~bdirst:(V (busy txn "s")) ~bdirpv:"one" "snack")
      (update (busy txn "w") ~pv:"dec");
    scen (txn ^ "-wb-late") (wb_at "w") (absorb @ update (busy txn "m"));
    scen (txn ^ "-mack-refetch")
      (response_when ~bdirst:(V (busy txn "m")) "mack")
      (to_mem "mread" @ update (busy txn "d"));
    scen (txn ^ "-wb-early") (wb_at "s") (absorb @ update (busy txn "sm"));
    scen (txn ^ "-mack-early")
      (response_when ~bdirst:(V (busy txn "sm")) "mack")
      (update (busy txn "sr"));
    scen (txn ^ "-snack-early")
      (response_when ~bdirst:(V (busy txn "sm")) "snack")
      (update (busy txn "m"));
    scen (txn ^ "-snack-refetch")
      (response_when ~bdirst:(V (busy txn "sr")) "snack")
      (to_mem "mread" @ update (busy txn "d"));
  ]

(* Writebacks (wb, flush): dirty data returns to home memory; the paper's
   Figure 4 deadlock is triggered by exactly this forwarding path. *)
let writeback_family txn =
  [
    scen (txn ^ "-owned")
      (request_when ~dirst:"MESI" ~dirpv:[ "one" ] ~reqpv:"in" ~space:"mem"
         [ txn ])
      (to_mem "mwrite" @ dir_write "I" ~pv:"dec" @ alloc (busy txn "d"));
    scen (txn ^ "-stale")
      (request_when ~dirst:"I" ~dirpv:[ "zero" ] ~space:"mem" [ txn ])
      (to_local "nack");
    scen (txn ^ "-mack-compl")
      (response_when ~bdirst:(V (busy txn "d")) "mack")
      (to_local "compl" @ dealloc);
  ]

(* Sharer-eviction hints (repl, racevict): unacknowledged presence-vector
   maintenance. *)
let eviction_family txn =
  [
    scen (txn ^ "-many")
      (request_when ~dirst:"SI" ~dirpv:[ "gone" ] ~reqpv:"in" ~space:"mem"
         [ txn ])
      (dir_write "SI" ~pv:"dec");
    scen (txn ^ "-last")
      (request_when ~dirst:"SI" ~dirpv:[ "one" ] ~reqpv:"in" ~space:"mem"
         [ txn ])
      (dir_write "I" ~pv:"dec");
    (* a hint that crossed an invalidation: the bit is already clear *)
    scen (txn ^ "-stale-si")
      (request_when ~dirst:"SI" ~dirpv:[ "one"; "gone" ] ~reqpv:"out"
         ~space:"mem" [ txn ])
      [];
    scen (txn ^ "-stale-i")
      (request_when ~dirst:"I" ~dirpv:[ "zero" ] ~space:"mem" [ txn ])
      [];
    scen (txn ^ "-stale-owned")
      (request_when ~dirst:"MESI" ~dirpv:[ "one" ] ~reqpv:"out" ~space:"mem"
         [ txn ])
      [];
  ]

(* Uncached I/O: serialized through the busy directory, data served by the
   home device/memory controller. *)
let io_family =
  [
    scen "ioread-start"
      (request_when ~space:"io" [ "ioread" ])
      (to_mem "mioread" @ alloc (busy "ioread" "d"));
    scen "ioread-mdata-compl"
      (response_when ~bdirst:(V (busy "ioread" "d")) "mdata")
      (to_local "iodata" @ dealloc);
    scen "iowrite-start"
      (request_when ~space:"io" [ "iowrite" ])
      (to_mem "miowrite" @ alloc (busy "iowrite" "d"));
    scen "iowrite-mack-compl"
      (response_when ~bdirst:(V (busy "iowrite" "d")) "mack")
      (to_local "iocompl" @ dealloc);
    scen "iormw-start"
      (request_when ~space:"io" [ "iormw" ])
      (to_mem "mrmw" @ alloc (busy "iormw" "d"));
    scen "iormw-mdata-compl"
      (response_when ~bdirst:(V (busy "iormw" "d")) "mdata")
      (to_local "iodata" @ dealloc);
  ]

(* Synchronization: directory entries double as lock homes. *)
let sync_family =
  [
    scen "lock-free"
      (request_when ~dirst:"I" ~dirpv:[ "zero" ] [ "lock" ])
      (to_local "lockgrant" @ dir_write "MESI" ~pv:"repl");
    (* the holder's presence bit arbitrates: only it may release, and a
       re-acquisition by the holder itself is refused (non-reentrant) *)
    scen "lock-held"
      (request_when ~dirst:"MESI" ~dirpv:[ "one" ] ~reqpv:"out" [ "lock" ])
      (to_local "retry");
    scen "lock-reentrant"
      (request_when ~dirst:"MESI" ~dirpv:[ "one" ] ~reqpv:"in" [ "lock" ])
      (to_local "nack");
    scen "unlock-held"
      (request_when ~dirst:"MESI" ~dirpv:[ "one" ] ~reqpv:"in" [ "unlock" ])
      (to_local "compl" @ dir_write "I" ~pv:"dec");
    scen "unlock-not-holder"
      (request_when ~dirst:"MESI" ~dirpv:[ "one" ] ~reqpv:"out" [ "unlock" ])
      (to_local "nack");
    scen "unlock-stale"
      (request_when ~dirst:"I" ~dirpv:[ "zero" ] [ "unlock" ])
      (to_local "nack");
    scen "sync-idle" (request_when [ "sync" ]) (to_local "compl");
    scen "intr-deliver" (request_when [ "intr" ]) (to_local "intack");
  ]

let busy_retry_label = "busy-retry"

(* Serialization: any request against any busy state is retried.  This one
   scenario expands to |requests| x |busy states| rows — the "all
   transaction interleavings" bulk of D. *)
let retry_scenario =
  scen busy_retry_label
    [
      "inmsg", Among Message.local_requests;
      "inmsgsrc", V "local";
      "inmsgdest", V "home";
      "inmsgres", V "reqq";
      "bdirlookup", V "hit";
      "bdirst", Among State.busy_strings;
    ]
    (to_local "retry")

(* Memory-error path: any data-pending transaction is aborted with nack. *)
let mnack_scenario =
  (* Only states with a memory operation outstanding can see mnack; lock,
     repl and racevict never allocate busy entries (caught by the
     d-busy-lifecycle invariant). *)
  let coherent = List.map State.txn_to_string State.coherent_txns in
  let d_states =
    List.map
      (fun txn -> busy txn "d")
      (coherent @ [ "wb"; "flush"; "ioread"; "iowrite"; "iormw" ])
    @ List.concat_map (fun txn -> [ busy txn "m"; busy txn "sm" ]) coherent
  in
  scen "mnack-abort"
    (response_when ~bdirst:(Among d_states) "mnack")
    (to_local "nack" @ dealloc)

(* Eviction hints against a busy line are dropped, not retried: they are
   fire-and-forget, so a retry could only be misattributed to some other
   outstanding request of the same node, and the winning transaction will
   rewrite the presence vector anyway. *)
let hint_drop_scenarios =
  [
    scen "hint-drop-busy"
      [
        "inmsg", Among [ "repl"; "racevict" ];
        "inmsgsrc", V "local"; "inmsgdest", V "home"; "inmsgres", V "reqq";
        "bdirlookup", V "hit"; "bdirst", Among State.busy_strings;
      ]
      [];
  ]

(* Completion acks: the requester confirms it installed the grant; only
   then does the directory publish the new sharing state and release the
   busy entry.  The ack rides a reserved per-entry resource (ackq), so it
   can always be consumed - no channel dependency arises. *)
let ack_when states =
  [
    "inmsg", V "compl"; "inmsgsrc", V "local"; "inmsgdest", V "home";
    "inmsgres", V "ackq"; "bdirlookup", V "hit"; "bdirst", Among states;
  ]

let ack_scenarios =
  [
    scen "ack-shared"
      (ack_when [ busy "read" "c"; busy "fetch" "c" ])
      (dir_write "SI" ~pv:"inc" @ dealloc);
    scen "ack-exclusive"
      (ack_when [ busy "readex" "c"; busy "swap" "c"; busy "upgrade" "c" ])
      (dir_write "MESI" ~pv:"repl" @ dealloc);
  ]

(* Order matters: the writeback-race rows must precede the generic busy
   retry, which would otherwise capture the crossing wb. *)
let scenarios =
  List.concat_map wb_race_family
    (List.map State.txn_to_string State.coherent_txns)
  @ hint_drop_scenarios @ ack_scenarios @ [ retry_scenario ]
  @ read_family "read" @ read_family "fetch" @ exclusive_family "readex"
  @ exclusive_family "swap" @ upgrade_family @ writeback_family "wb"
  @ writeback_family "flush" @ eviction_family "repl"
  @ eviction_family "racevict" @ io_family @ sync_family
  @ [ mnack_scenario ]

let spec = make ~name:"D" ~inputs ~outputs ~scenarios
let table () = Ctrl_spec.table spec

let readex_scenario_labels =
  List.filter_map
    (fun s ->
      if String.length s.label >= 6 && String.sub s.label 0 6 = "readex" then
        Some s.label
      else None)
    scenarios

(* Figure 3 of the paper: the readex rows with busy states folded into the
   dirst/dirpv columns, projected onto the paper's eight columns. *)
let figure3 () =
  let d = table () in
  let schema = Table.schema d in
  let get row c = row.(Schema.index schema c) in
  let is_readex_row row =
    (not (Value.equal (get row "locmsg") (Value.str "retry")))
    && (Value.equal (get row "inmsg") (Value.str "readex")
       ||
       let b = get row "bdirst" in
       match b with
       | Value.Str s ->
           String.length s > 12 && String.sub s 0 12 = "Busy-readex-"
       | _ -> false)
  in
  let fold row =
    let busy_row = not (Value.is_null (get row "bdirst")) in
    let merged c bc = if busy_row then get row bc else get row c in
    [|
      get row "inmsg";
      merged "dirst" "bdirst";
      merged "dirpv" "bdirpv";
      get row "locmsg";
      get row "remmsg";
      get row "memmsg";
      (let next_dir = get row "nxtdirst" in
       if busy_row && Value.is_null next_dir then get row "nxtbdirst"
       else next_dir);
      get row "nxtdirpv";
    |]
  in
  let out_schema =
    Schema.of_list
      [ "inmsg"; "dirst"; "dirpv"; "locmsg"; "remmsg"; "memmsg"; "nxtdirst";
        "nxtdirpv" ]
  in
  let rows =
    Table.fold
      (fun acc row -> if is_readex_row row then fold row :: acc else acc)
      [] d
  in
  Table.of_rows ~name:"figure3" out_schema (List.rev rows)
