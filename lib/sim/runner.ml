type config = {
  v : Checker.Vcassign.t;
  capacity : string -> int;
  nodes : int;
  addrs : int;
  io_addrs : int list;
}

let uniform_capacity n _ = n

type event =
  | Issue of { node : int; addr : int; op : string }
  | Deliver of { src : int; dst : int; cls : string }

type result =
  | Quiescent of { steps : int }
  | Deadlock of {
      steps : int;
      occupancy : (string * int) list;
      blocked : string list;
    }

exception Script_error of string

let fits config st =
  Channel.over_capacity ~v:config.v ~capacity:config.capacity st = []

let tables = lazy (Mcheck.Semantics.load_tables ())

let semantics_config config =
  {
    Mcheck.Semantics.nodes = config.nodes;
    addrs = config.addrs;
    ops = [];
    capacity = max_int;
    io_addrs = config.io_addrs;
    lossy = false;
  }

(* Attempt to deliver the head of one FIFO; [None] when the queue is
   empty or the outputs do not fit their channels. *)
let try_deliver config st key =
  let src, dst, cls = key in
  match Mcheck.Mstate.dequeue st key with
  | None -> None
  | Some (msg, st') -> (
      match
        Mcheck.Semantics.deliver ~config:(semantics_config config)
          (Lazy.force tables) st' ~cls ~dst msg
      with
      | Mcheck.Semantics.Broken reason -> raise (Script_error reason)
      | Mcheck.Semantics.Next st'' ->
          if fits config st'' then
            Some (Printf.sprintf "deliver %s %d->%d (%s)" msg.m src dst cls, st'')
          else None)

let apply_event config st = function
  | Issue { node; addr; op } -> (
      match
        Mcheck.Semantics.issue_op (Lazy.force tables) st ~node ~addr ~op
      with
      | Some st' when fits config st' ->
          Printf.sprintf "issue %s node%d addr%d" op node addr, st'
      | Some _ ->
          raise (Script_error (Printf.sprintf "issue %s overflows a channel" op))
      | None -> raise (Script_error (Printf.sprintf "issue %s not enabled" op)))
  | Deliver { src; dst; cls } -> (
      match try_deliver config st (src, dst, cls) with
      | Some r -> r
      | None ->
          raise
            (Script_error
               (Printf.sprintf "deliver %d->%d (%s) not enabled" src dst cls)))

let blocked_heads config st =
  List.filter_map
    (fun ((src, dst, cls), (m : Mcheck.Mstate.msg)) ->
      match try_deliver config st (src, dst, cls) with
      | Some _ -> None
      | None ->
          Some
            (Printf.sprintf "%s %d->%d (%s) blocked: outputs do not fit" m.m
               src dst cls))
    (Mcheck.Mstate.queue_heads st)

let obs_reg = lazy (Obs.Metrics.registry "sim")

(* One Chrome counter sample per simulator step: Perfetto renders the
   series as a stacked per-virtual-channel occupancy track. *)
let sample_occupancy config st =
  if Obs.Config.on () then
    Obs.Trace.counter "sim.vc_occupancy"
      (List.map
         (fun (vc, n) -> vc, float_of_int n)
         (Channel.occupancy ~v:config.v st))

let record_wedge ~t0 ~steps result =
  match result with
  | Quiescent _ -> ()
  | Deadlock { blocked; _ } ->
      let latency_ms = Obs.Clock.to_ms (Obs.Clock.since t0) in
      let reg = Lazy.force obs_reg in
      Obs.Metrics.incr (Obs.Metrics.counter reg "wedges_detected");
      Obs.Metrics.set
        (Obs.Metrics.gauge reg "wedge_detect_latency_ms")
        latency_ms;
      Obs.Trace.instant ~cat:"sim"
        ~args:
          [ "steps", Obs.Json.Int steps;
            "blocked", Obs.Json.Int (List.length blocked) ]
        "sim.wedge"

let run ?(script = []) ?(trace = fun _ -> ()) ?(max_steps = 10_000) config st =
  Obs.Trace.with_span ~cat:"sim" "sim.run" @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let steps = ref 0 in
  let st = ref st in
  (* --progress heartbeat: one line per interval with the step count and
     total channel occupancy; a single match when progress is off *)
  let beat () =
    Obs.Runlog.tick (fun () ->
        let in_flight =
          List.fold_left
            (fun acc (_, n) -> acc + n)
            0
            (Channel.occupancy ~v:config.v !st)
        in
        Printf.sprintf "[sim] steps=%d in_flight=%d" !steps in_flight)
  in
  List.iter
    (fun ev ->
      let label, st' = apply_event config !st ev in
      incr steps;
      trace label;
      st := st';
      sample_occupancy config !st;
      beat ())
    script;
  let rec free_run () =
    if !steps >= max_steps then
      ( Deadlock
          {
            steps = !steps;
            occupancy = Channel.occupancy ~v:config.v !st;
            blocked = [ "step budget exhausted (livelock?)" ];
          },
        !st )
    else if Mcheck.Mstate.quiescent !st then Quiescent { steps = !steps }, !st
    else
      let heads = Mcheck.Mstate.queue_heads !st in
      let progressed =
        List.exists
          (fun (key, _) ->
            match try_deliver config !st key with
            | Some (label, st') ->
                incr steps;
                trace label;
                st := st';
                sample_occupancy config !st;
                beat ();
                true
            | None -> false)
          heads
      in
      let reissued =
        if progressed then false
        else
          (* nothing deliverable: let a backed-off processor op re-enter,
             if its request fits its channel *)
          List.exists
            (fun node ->
              List.exists
                (fun addr ->
                  match Mcheck.Semantics.reissue !st ~node ~addr with
                  | Some st' when fits config st' ->
                      incr steps;
                      trace (Printf.sprintf "reissue node%d addr%d" node addr);
                      st := st';
                      sample_occupancy config !st;
                      true
                  | Some _ | None -> false)
                (List.init config.addrs Fun.id))
            (List.init config.nodes Fun.id)
      in
      if progressed || reissued then free_run ()
      else if heads = [] then
        (* pending processor state but nothing in flight: wedged *)
        ( Deadlock
            { steps = !steps; occupancy = []; blocked = [ "no messages in flight" ] },
          !st )
      else
        ( Deadlock
            {
              steps = !steps;
              occupancy = Channel.occupancy ~v:config.v !st;
              blocked = blocked_heads config !st;
            },
          !st )
  in
  let result, final = free_run () in
  record_wedge ~t0 ~steps:!steps result;
  if Obs.Runlog.configured () then
    Obs.Runlog.note "sim"
      (Obs.Json.Obj
         [
           ("steps", Obs.Json.Int !steps);
           ( "result",
             Obs.Json.Str
               (match result with
               | Quiescent _ -> "quiescent"
               | Deadlock _ -> "deadlock") );
           ( "blocked",
             match result with
             | Quiescent _ -> Obs.Json.Int 0
             | Deadlock { blocked; _ } -> Obs.Json.Int (List.length blocked) );
         ]);
  result, final

let pp_result fmt = function
  | Quiescent { steps } -> Format.fprintf fmt "quiescent after %d steps" steps
  | Deadlock { steps; occupancy; blocked } ->
      Format.fprintf fmt "DEADLOCK after %d steps@." steps;
      List.iter
        (fun (vc, n) -> Format.fprintf fmt "  %s: %d in flight@." vc n)
        occupancy;
      List.iter (fun b -> Format.fprintf fmt "  %s@." b) blocked
