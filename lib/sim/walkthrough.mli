(** Per-transaction walkthroughs for the enhanced architecture
    specification.

    The paper criticizes informal specifications for documenting "only a
    few commonly occurring individual protocol transactions"; the
    methodology's answer is tables for everything, but architects still
    want the Figure 2-style walkthroughs.  This module generates them
    {e from execution}: each representative transaction is run in the
    simulator and rendered as a message-sequence chart, so the document
    can never drift from the tables. *)

type t = {
  name : string;
  description : string;
  trace : string list;
  chart : string;  (** ASCII message-sequence chart *)
  rows_exercised : int option;
      (** controller-table rows this walkthrough covered for the first
          time in the current coverage session ([None] when coverage
          recording is off) *)
}

val all : ?v:Checker.Vcassign.t -> unit -> t list
(** Walkthroughs of the representative transactions (read miss, store
    miss with invalidations, upgrade, writeback, dirty-read downgrade,
    I/O read, lock handoff), executed under the given assignment
    (default: the debugged one). *)

val to_markdown : t list -> string
