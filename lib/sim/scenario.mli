(** Canned simulation scenarios.

    {!figure4} replays the paper's Figure 4 deadlock dynamically: two
    writeback transactions interleaved with a read-exclusive whose
    response processing needs the directory-to-memory channel, under
    single-slot virtual channels.  Under the faulty assignment (VC4
    shared, the paper's pre-fix design) the system wedges with VC2 and
    VC4 mutually occupied; under the debugged assignment (dedicated
    [mread] path) the same schedule drains. *)

val make_initial :
  nodes:int -> addrs:int -> owners:(int * int) list -> Mcheck.Mstate.t
(** [owners] maps address → owning node: the directory is set to MESI
    with that single sharer, the owner's cache to M, memory to stale. *)

val figure4 : Checker.Vcassign.t -> Runner.result * string list
(** Run the Figure 4 interleaving under the given channel assignment;
    returns the outcome and the transition trace. *)

val figure4_wedged :
  Checker.Vcassign.t -> Runner.result * string list * Mcheck.Mstate.t
(** {!figure4} plus the final state the schedule left behind — under the
    faulty assignment, the wedged configuration itself (VC2 and VC4
    mutually occupied).  The packed-path golden test round-trips this
    state through {!Mcheck.Pack} to pin the witness. *)

val readex_walkthrough : Checker.Vcassign.t -> Runner.result * string list
(** The paper's Figure 2 read-exclusive transaction end to end: a store
    miss against a line shared by two remote nodes. *)

val contention : Checker.Vcassign.t -> Runner.result * string list
(** Two nodes storing to the same line: exercises serialization (retry)
    and the reissue path. *)

val stress :
  ?seed:int ->
  ?rounds:int ->
  ?nodes:int ->
  ?addrs:int ->
  Checker.Vcassign.t ->
  Runner.result * int
(** Randomized soak test: a seeded scheduler interleaves random processor
    operations (loads, stores, evictions) with message deliveries under
    the given channel assignment and uniform capacity 2, then lets the
    system drain.  Returns the outcome and the number of operations
    issued.  Under the debugged assignment every seed must reach
    quiescence — the dynamic complement of the static deadlock-freedom
    verdict. *)
