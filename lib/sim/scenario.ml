open Mcheck.Mstate

let make_initial ~nodes ~addrs ~owners =
  let st = initial ~nodes ~addrs in
  List.fold_left
    (fun st (addr, owner) ->
      let st =
        set_addr st addr
          {
            dirst = "MESI";
            sharers = 1 lsl owner;
            busy = None;
            mem_fresh = false;
          }
      in
      set_cache st ~node:owner ~addr "M")
    st owners

let shared_line st ~addr ~sharers =
  let mask = List.fold_left (fun m n -> m lor (1 lsl n)) 0 sharers in
  let st =
    set_addr st addr { dirst = "SI"; sharers = mask; busy = None; mem_fresh = true }
  in
  List.fold_left (fun st n -> set_cache st ~node:n ~addr "S") st sharers

let collect () =
  let log = ref [] in
  (fun line -> log := line :: !log), fun () -> List.rev !log

let dir = Mcheck.Mstate.dir
let mem = Mcheck.Mstate.mem

(* The Figure 4 interleaving.  Address 0 (the paper's A) is owned by node
   1, address 1 (the paper's B) by node 2.  Node 0 wants A exclusively
   while node 1 concurrently writes A back; once A's transaction reaches
   the refetch point, node 2's writeback of B occupies the memory-request
   channel, and memory's ack for it needs the response channel occupied by
   A's ack.  Channel capacities: one slot everywhere, two on the request
   channel (both writebacks plus the readex are requests). *)
let figure4_wedged v =
  let config =
    {
      Runner.v;
      capacity = (fun vc -> if vc = "VC0" then 2 else 1);
      nodes = 3;
      addrs = 2;
      io_addrs = [];
    }
  in
  let st = make_initial ~nodes:3 ~addrs:2 ~owners:[ 0, 1; 1, 2 ] in
  let script =
    [
      Runner.Issue { node = 1; addr = 0; op = "evictmod" };
      Runner.Issue { node = 0; addr = 0; op = "store" };
      Runner.Deliver { src = 0; dst = dir; cls = "reqq" };
      Runner.Deliver { src = dir; dst = 1; cls = "snp" };
      Runner.Deliver { src = 1; dst = dir; cls = "respq" };
      Runner.Deliver { src = 1; dst = dir; cls = "reqq" };
      Runner.Deliver { src = dir; dst = 1; cls = "resp" };
      Runner.Deliver { src = dir; dst = mem; cls = "memq" };
      Runner.Issue { node = 2; addr = 1; op = "evictmod" };
      Runner.Deliver { src = 2; dst = dir; cls = "reqq" };
    ]
  in
  let trace, log = collect () in
  let result, final = Runner.run ~script ~trace config st in
  result, log (), final

let figure4 v =
  let result, log, _ = figure4_wedged v in
  result, log

(* Figure 2: node 0 requests exclusive ownership of a line shared by
   nodes 1 and 2; both are invalidated, memory supplies data, the
   directory hands over ownership. *)
let readex_walkthrough v =
  let config =
    { Runner.v; capacity = Runner.uniform_capacity 4; nodes = 3; addrs = 1;
      io_addrs = [] }
  in
  let st = initial ~nodes:3 ~addrs:1 in
  let st = shared_line st ~addr:0 ~sharers:[ 1; 2 ] in
  let trace, log = collect () in
  let result, _ =
    Runner.run
      ~script:[ Runner.Issue { node = 0; addr = 0; op = "store" } ]
      ~trace config st
  in
  result, log ()

(* Randomized soak test: issue random operations and deliver random
   queue heads under finite channels; a correct assignment must always
   drain once the workload stops. *)
let stress ?(seed = 42) ?(rounds = 200) ?(nodes = 3) ?(addrs = 2) v =
  let rng = Random.State.make [| seed |] in
  let config =
    { Runner.v; capacity = Runner.uniform_capacity 2; nodes; addrs;
      io_addrs = [] }
  in
  let tables = Mcheck.Semantics.load_tables () in
  let issued = ref 0 in
  let st = ref (initial ~nodes ~addrs) in
  let ops = [| "load"; "store"; "evictmod"; "evictsh" |] in
  let try_deliver_random () =
    match Mcheck.Mstate.queue_heads !st with
    | [] -> ()
    | heads ->
        let key, msg = List.nth heads (Random.State.int rng (List.length heads)) in
        let _, dst, cls = key in
        (match Mcheck.Mstate.dequeue !st key with
        | Some (_, st') -> (
            match Mcheck.Semantics.deliver tables st' ~cls ~dst msg with
            | Mcheck.Semantics.Next st'' ->
                (* respect channel capacities: drop the step if it would
                   overflow (the consumer would stall in hardware) *)
                if
                  Checker.Vcassign.channels v = []
                  || Channel.over_capacity ~v ~capacity:config.Runner.capacity
                       st''
                     = []
                then st := st''
            | Mcheck.Semantics.Broken reason -> failwith reason)
        | None -> ())
  in
  for _ = 1 to rounds do
    if Random.State.bool rng then begin
      let node = Random.State.int rng nodes in
      let addr = Random.State.int rng addrs in
      let op = ops.(Random.State.int rng (Array.length ops)) in
      if Mcheck.Mstate.pending !st ~node ~addr = None then
        match Mcheck.Semantics.issue_op tables !st ~node ~addr ~op with
        | Some st'
          when Channel.over_capacity ~v ~capacity:config.Runner.capacity st'
               = [] ->
            incr issued;
            st := st'
        | Some _ | None -> ()
    end
    else try_deliver_random ()
  done;
  (* workload over: the system must drain *)
  let result, _ = Runner.run ~max_steps:20_000 config !st in
  result, !issued

(* Two stores racing to the same invalid line: one is served, the other
   retried until the first completes. *)
let contention v =
  let config =
    { Runner.v; capacity = Runner.uniform_capacity 4; nodes = 2; addrs = 1;
      io_addrs = [] }
  in
  let st = initial ~nodes:2 ~addrs:1 in
  let trace, log = collect () in
  let result, _ =
    Runner.run
      ~script:
        [
          Runner.Issue { node = 0; addr = 0; op = "store" };
          Runner.Issue { node = 1; addr = 0; op = "store" };
          (* node 0 wins the race; node 1's request arrives while busy *)
          Runner.Deliver { src = 0; dst = dir; cls = "reqq" };
          Runner.Deliver { src = 1; dst = dir; cls = "reqq" };
        ]
      ~trace config st
  in
  result, log ()
