type t = {
  name : string;
  description : string;
  trace : string list;
  chart : string;
  rows_exercised : int option;
      (* controller-table rows this walkthrough covered for the first
         time in the current coverage session; None when coverage is off *)
}

let collect () =
  let log = ref [] in
  (fun line -> log := line :: !log), fun () -> List.rev !log

(* Issue each operation and let the system drain before the next one, so
   walkthroughs document one transaction at a time, like Figure 2. *)
let run_ops ?(nodes = 3) ?(addrs = 1) ?(io_addrs = []) ?(prepare = Fun.id) v ops =
  let config =
    { Runner.v; capacity = Runner.uniform_capacity 4; nodes; addrs; io_addrs }
  in
  let trace, log = collect () in
  let st =
    List.fold_left
      (fun st (node, addr, op) ->
        match
          Runner.run ~script:[ Runner.Issue { node; addr; op } ] ~trace config
            st
        with
        | Runner.Quiescent _, st' -> st'
        | Runner.Deadlock _, _ ->
            failwith "Walkthrough: a representative transaction wedged")
      (prepare (Mcheck.Mstate.initial ~nodes ~addrs))
      ops
  in
  ignore st;
  log ()

(* [trace_f] runs the transaction; bracketing it with coverage totals
   attributes to each walkthrough the rows it is first to exercise, so
   the generated document shows what each transaction adds. *)
let make name description trace_f =
  let covered () = fst (Obs.Coverage.totals (Obs.Coverage.snapshot ())) in
  let before = if Obs.Coverage.on () then Some (covered ()) else None in
  let trace = trace_f () in
  let rows_exercised = Option.map (fun b -> covered () - b) before in
  { name; description; trace; chart = Msc.render_run trace; rows_exercised }

let all ?(v = Checker.Vcassign.debugged) () =
  [
    make "read miss"
      "A load against an uncached line: the directory fetches the data \
       from home memory and installs the requester as a sharer once its \
       completion ack arrives."
      (fun () -> run_ops v [ 0, 0, "load" ]);
    make "store miss with invalidations"
      "The paper's Figure 2: a store against a line shared by two remote \
       nodes.  Both sharers are invalidated (sinv/idone), memory supplies \
       the data, ownership transfers with the exclusive grant."
      (fun () -> run_ops v
         ~prepare:(fun st ->
           let st =
             Mcheck.Mstate.set_addr st 0
               { dirst = "SI"; sharers = 0b110; busy = None; mem_fresh = true }
           in
           let st = Mcheck.Mstate.set_cache st ~node:1 ~addr:0 "S" in
           Mcheck.Mstate.set_cache st ~node:2 ~addr:0 "S")
         [ 0, 0, "store" ]);
    make "ownership upgrade"
      "A store by an existing sharer: no data moves; the other sharer is \
       invalidated and the directory grants ownership with a bare compl."
      (fun () -> run_ops v
         ~prepare:(fun st ->
           let st =
             Mcheck.Mstate.set_addr st 0
               { dirst = "SI"; sharers = 0b011; busy = None; mem_fresh = true }
           in
           let st = Mcheck.Mstate.set_cache st ~node:0 ~addr:0 "S" in
           Mcheck.Mstate.set_cache st ~node:1 ~addr:0 "S")
         [ 0, 0, "store" ]);
    make "writeback"
      "The owner evicts its dirty line: the data is forwarded to memory \
       (mwrite/mack) and the transaction completes with compl."
      (fun () -> run_ops v
         ~prepare:(fun st ->
           let st =
             Mcheck.Mstate.set_addr st 0
               { dirst = "MESI"; sharers = 0b001; busy = None;
                 mem_fresh = false }
           in
           Mcheck.Mstate.set_cache st ~node:0 ~addr:0 "M")
         [ 0, 0, "evictmod" ]);
    make "read from a dirty owner"
      "A load against a line another node owns dirty: the owner is \
       downgraded with sread, supplies the data, and the directory copies \
       it back to memory with the sharing writeback mupdate."
      (fun () -> run_ops v
         ~prepare:(fun st ->
           let st =
             Mcheck.Mstate.set_addr st 0
               { dirst = "MESI"; sharers = 0b010; busy = None;
                 mem_fresh = false }
           in
           Mcheck.Mstate.set_cache st ~node:1 ~addr:0 "M")
         [ 0, 0, "load" ]);
    make "uncached I/O read"
      "An I/O-space load: serialized through the busy directory and served \
       by the home device bus (mioread/mdata), no coherence machinery."
      (fun () -> run_ops v ~io_addrs:[ 0 ] [ 0, 0, "ioload" ]);
    make "lock handoff"
      "Acquire and release of a synchronization lock homed in the \
       directory: grant on a free line, release restores it."
      (fun () -> run_ops v [ 0, 0, "lockacq"; 0, 0, "lockrel" ]);
  ]

let to_markdown ws =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "## Transaction walkthroughs (executed)\n\n";
  List.iter
    (fun w ->
      Buffer.add_string buf (Printf.sprintf "### %s\n\n%s\n\n" w.name w.description);
      (match w.rows_exercised with
      | Some n when n > 0 ->
          Buffer.add_string buf
            (Printf.sprintf "_First to exercise %d controller-table row%s._\n\n"
               n
               (if n = 1 then "" else "s"))
      | Some _ | None -> ());
      Buffer.add_string buf (Printf.sprintf "```\n%s```\n\n" w.chart))
    ws;
  Buffer.contents buf
