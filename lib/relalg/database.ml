type t = {
  tables : (string * Table.t) list;  (* registration order *)
  funcs : (string * (Value.t -> bool)) list;
}

exception Unknown_table of string
exception Duplicate_table of string
exception Reserved_name of string

let system_prefix = "sys."

let is_system_name n =
  String.length n >= 4 && String.sub n 0 4 = system_prefix

let guard n = if is_system_name n then raise (Reserved_name n)

let empty = { tables = []; funcs = [] }

let add_unchecked db table =
  let n = Table.name table in
  if List.mem_assoc n db.tables then raise (Duplicate_table n);
  { db with tables = db.tables @ [ n, table ] }

let replace_unchecked db table =
  let n = Table.name table in
  if List.mem_assoc n db.tables then
    { db with tables = List.map (fun (k, t) -> if k = n then k, table else k, t) db.tables }
  else add_unchecked db table

let add db table =
  guard (Table.name table);
  add_unchecked db table

let replace db table =
  guard (Table.name table);
  replace_unchecked db table

let add_system = add_unchecked
let replace_system = replace_unchecked

let remove db n =
  guard n;
  { db with tables = List.remove_assoc n db.tables }

let find db n =
  match List.assoc_opt n db.tables with
  | Some t -> t
  | None -> raise (Unknown_table n)

let find_opt db n = List.assoc_opt n db.tables
let mem db n = List.mem_assoc n db.tables
let tables db = List.map snd db.tables
let table_names db = List.map fst db.tables

let register_function db name f = { db with funcs = (name, f) :: db.funcs }
let functions db name = List.assoc_opt name db.funcs
let of_tables ts = List.fold_left add empty ts
