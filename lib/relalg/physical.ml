type access =
  | Seq_scan of string
  | Index_lookup of {
      table : string;
      column : string;
      value : Value.t;
      residual : Expr.t option;
    }

type t =
  | Access of access
  | Select of Expr.t * t
  | Project of string list * t
  | Distinct of t
  | Sort of (string * [ `Asc | `Desc ]) list * t
  | Limit of int * t
  | Union of t * t
  | Except of t * t
  | Intersect of t * t
  | Count of t
  | Group_count of string list * t
  | Join of (string * string) list * t * t
  | Empty of string list

(* The index cache is keyed by (table name, column) but each entry also
   remembers the Table.id of the snapshot it was built from: a CREATE
   TABLE … AS that re-registers the same name produces a table with a
   fresh id, so the stale entry is detected and rebuilt on next use
   instead of silently serving rows of the dead snapshot. *)
type store = {
  db : Database.t;
  cache : (string * string, int * Index.t) Hashtbl.t;
}

let make_store db = { db; cache = Hashtbl.create 16 }
let store_db store = store.db
let with_db store db = { db; cache = store.cache }

let index_of store table column =
  let current = Database.find store.db table in
  match Hashtbl.find_opt store.cache (table, column) with
  | Some (id, i) when id = Table.id current -> i
  | _ ->
      let i = Index.build current column in
      Hashtbl.replace store.cache (table, column) (Table.id current, i);
      i

let indexed_columns indexes table =
  List.filter_map (fun (t, c) -> if t = table then Some c else None) indexes

(* Split a predicate into its top-level conjuncts. *)
let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function [] -> None | es -> Some (Expr.conj es)

(* Find the first [col = literal] conjunct on an indexed column. *)
let split_indexable indexed pred =
  let rec go seen = function
    | [] -> None
    | Expr.Eq (Expr.Col c, Expr.Const v) :: rest when List.mem c indexed ->
        Some (c, v, List.rev_append seen rest)
    | Expr.Eq (Expr.Const v, Expr.Col c) :: rest when List.mem c indexed ->
        Some (c, v, List.rev_append seen rest)
    | e :: rest -> go (e :: seen) rest
  in
  go [] (conjuncts pred)

let rec physicalize ~indexes (p : Plan.t) : t =
  match p with
  | Plan.Scan name -> Access (Seq_scan name)
  | Plan.Select (pred, Plan.Scan name) -> (
      match split_indexable (indexed_columns indexes name) pred with
      | Some (column, value, residual) ->
          Access
            (Index_lookup
               { table = name; column; value; residual = conjoin residual })
      | None -> Select (pred, Access (Seq_scan name)))
  | Plan.Select (pred, inner) -> Select (pred, physicalize ~indexes inner)
  | Plan.Project (cols, inner) -> Project (cols, physicalize ~indexes inner)
  | Plan.Distinct inner -> Distinct (physicalize ~indexes inner)
  | Plan.Sort (keys, inner) -> Sort (keys, physicalize ~indexes inner)
  | Plan.Limit (n, inner) -> Limit (n, physicalize ~indexes inner)
  | Plan.Union (a, b) -> Union (physicalize ~indexes a, physicalize ~indexes b)
  | Plan.Except (a, b) -> Except (physicalize ~indexes a, physicalize ~indexes b)
  | Plan.Intersect (a, b) ->
      Intersect (physicalize ~indexes a, physicalize ~indexes b)
  | Plan.Count inner -> Count (physicalize ~indexes inner)
  | Plan.Group_count (cols, inner) ->
      Group_count (cols, physicalize ~indexes inner)
  | Plan.Join (on, a, b) ->
      Join (on, physicalize ~indexes a, physicalize ~indexes b)
  | Plan.Empty cols -> Empty cols

let execute_access store = function
  | Seq_scan name -> Database.find store.db name
  | Index_lookup { table; column; value; residual } ->
      let t = Index.lookup_gather (index_of store table column) value in
      (match residual with
      | None -> t
      | Some pred -> Ops.select ~funcs:(Database.functions store.db) pred t)

let rec execute store = function
  | Access a -> execute_access store a
  | Select (pred, inner) ->
      Ops.select ~funcs:(Database.functions store.db) pred (execute store inner)
  | Project (cols, inner) -> Ops.project cols (execute store inner)
  | Distinct inner -> Table.distinct (execute store inner)
  | Sort (keys, inner) -> Ops.order_by keys (execute store inner)
  | Limit (n, inner) -> Ops.limit n (execute store inner)
  | Union (a, b) -> Ops.union (execute store a) (execute store b)
  | Except (a, b) -> Ops.except (execute store a) (execute store b)
  | Intersect (a, b) -> Ops.intersect (execute store a) (execute store b)
  | Join (on, a, b) -> Ops.equi_join ~on (execute store a) (execute store b)
  | Count inner ->
      Table.of_rows ~name:"<count>"
        (Schema.of_list [ "count" ])
        [ [| Value.Int (Table.cardinality (execute store inner)) |] ]
  | Group_count (cols, inner) ->
      Table.of_rows ~name:"<group>"
        (Schema.of_list (cols @ [ "count" ]))
        (List.map
           (fun (key, n) -> Array.append key [| Value.Int n |])
           (Ops.group_count ~by:cols (execute store inner)))
  | Empty cols -> Table.create ~name:"<empty>" (Schema.of_list cols)

let run ?(indexes = []) store src =
  Obs.Trace.with_span ~cat:"relalg"
    ~args:[ "query", Obs.Json.Str src ]
    "sql.physical_run"
  @@ fun () ->
  let logical = Plan.optimize (Plan.of_query (Sql_parser.parse_query src)) in
  execute store (physicalize ~indexes logical)

let explain p =
  let buf = Buffer.create 256 in
  let rec go indent p =
    let pr fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string buf (String.make indent ' ');
          Buffer.add_string buf s;
          Buffer.add_char buf '\n')
        fmt
    in
    match p with
    | Access (Seq_scan name) -> pr "seq scan %s" name
    | Access (Index_lookup { table; column; value; residual }) ->
        pr "index lookup %s.%s = %s%s" table column (Value.to_sql value)
          (match residual with
          | None -> ""
          | Some e -> Format.asprintf " [filter %a]" Expr.pp e)
    | Select (e, inner) ->
        pr "filter %s" (Format.asprintf "%a" Expr.pp e);
        go (indent + 2) inner
    | Project (cols, inner) ->
        pr "project [%s]" (String.concat ", " cols);
        go (indent + 2) inner
    | Distinct inner -> pr "distinct"; go (indent + 2) inner
    | Sort (keys, inner) ->
        pr "sort [%s]"
          (String.concat ", "
             (List.map
                (fun (c, d) ->
                  c ^ match d with `Asc -> "" | `Desc -> " desc")
                keys));
        go (indent + 2) inner
    | Limit (n, inner) -> pr "limit %d" n; go (indent + 2) inner
    | Count inner -> pr "count"; go (indent + 2) inner
    | Group_count (cols, inner) ->
        pr "group count by [%s]" (String.concat ", " cols);
        go (indent + 2) inner
    | Union (a, b) -> pr "union"; go (indent + 2) a; go (indent + 2) b
    | Except (a, b) -> pr "except"; go (indent + 2) a; go (indent + 2) b
    | Intersect (a, b) -> pr "intersect"; go (indent + 2) a; go (indent + 2) b
    | Join (on, a, b) ->
        pr "hash join [%s]"
          (String.concat ", "
             (List.map (fun (l, r) -> Printf.sprintf "%s=%s" l r) on));
        go (indent + 2) a;
        go (indent + 2) b
    | Empty cols -> pr "empty [%s]" (String.concat ", " cols)
  in
  go 0 p;
  Buffer.contents buf
