(** Relations: a named schema plus a sequence of rows.

    Tables are immutable values; every operation returns a new table.  Rows
    keep insertion order (useful for printing controller tables in the
    paper's layout) but all set-like operations ({!Ops}) treat a table as a
    set of rows.

    {b Storage.}  Since the columnar refactor a table no longer holds a
    [Row.t list]: rows live column-wise in growable integer arrays, and
    every cell is a code into a per-column {!Dict} (dictionary encoding).
    Appends are O(1) amortized, {!cardinality} is O(1), and the physical
    operators in {!Ops} work directly on the code arrays — equality on the
    hot path is an integer compare.  Derived tables (selections,
    projections, joins) share their parents' dictionaries, and projections
    and renames share the code buffers themselves.  {!rows} still
    materializes the classic row-major view for callers that want it, but
    iteration ({!iter}, {!fold}, {!get}) decodes one row at a time. *)

type t

exception Arity_mismatch of { table : string; expected : int; got : int }

val create : name:string -> Schema.t -> t
(** Empty table. *)

val of_rows : name:string -> Schema.t -> Row.t list -> t
(** Encode a row-major list into fresh columnar storage.
    @raise Arity_mismatch if any row length differs from the schema arity. *)

val name : t -> string
val with_name : string -> t -> t
val schema : t -> Schema.t
val rows : t -> Row.t list
(** Rows in insertion order.  This {e materializes}: every cell is decoded
    through its column dictionary.  Prefer {!iter}/{!fold}/{!get} (or the
    code-level accessors below) on hot paths. *)

val cardinality : t -> int
(** O(1). *)

val arity : t -> int
val is_empty : t -> bool

val id : t -> int
(** A unique identity for this table value's storage version.  Any
    operation that produces a new table — including {!add} — yields a
    fresh id, so caches (e.g. the index cache in {!Physical}) can detect
    that a table registered under the same name has been replaced. *)

val add : t -> Row.t -> t
(** Append one row, O(1) amortized (the columnar buffers are extended in
    place when this table owns their tails, and branch-copied otherwise).
    @raise Arity_mismatch. *)

val add_all : t -> Row.t list -> t
val mem : t -> Row.t -> bool

val cell : t -> Row.t -> string -> Value.t
(** [cell t row col] reads a named field of a row of [t].
    @raise Schema.Unknown_column. *)

val get : t -> int -> Row.t
(** [get t i] decodes row [i] (0-based insertion order). *)

val iter : (Row.t -> unit) -> t -> unit
val fold : ('a -> Row.t -> 'a) -> 'a -> t -> 'a
val iter_column : (Value.t -> unit) -> t -> string -> unit
(** Iterate one column top to bottom without decoding whole rows. *)

val filter : (Row.t -> bool) -> t -> t
val map_rows : (Row.t -> Row.t) -> t -> t
(** Row-wise rewrite preserving the schema.  The result gets fresh
    dictionaries.  @raise Arity_mismatch if the function changes row
    length. *)

val sort : t -> t
(** Rows in {!Row.compare} order. *)

val distinct : t -> t
(** Remove duplicate rows, keeping the first occurrence of each.
    Runs on dictionary codes: no cell is decoded. *)

val equal_as_sets : t -> t -> bool
(** Same schema (column names in order) and same set of rows. *)

val subset : t -> t -> bool
(** [subset a b]: every row of [a] occurs in [b] (schemas must be
    union-compatible).  This is the paper's "resulting table contains the
    original debugged table" check for implementation mappings.  Works by
    translating [a]'s codes into [b]'s dictionary space — a row whose
    value is absent from [b]'s dictionaries cannot be a member. *)

val to_string : t -> string
(** Aligned textual rendering with a header line, as in Figure 3. *)

val pp : Format.formatter -> t -> unit

val row_assoc : t -> Row.t -> (string * Value.t) list
(** A row as (column, value) pairs, in schema order. *)

(** {1 Columnar access}

    The physical layer ({!Ops}, {!Index}, {!Physical}) operates on these.
    The returned arrays are the live backing buffers: only indices
    [0 .. cardinality - 1] are meaningful, and callers must never mutate
    them. *)

val dict : t -> int -> Dict.t
(** The dictionary of column [j] (0-based schema order). *)

val codes : t -> int -> int array
(** The code buffer of column [j]. *)

val filter_idx : (int -> bool) -> t -> t
(** Keep the rows whose index satisfies the predicate, sharing every
    dictionary with the input.  No cell is decoded. *)

val gather : ?name:string -> t -> int list -> t
(** The sub-table made of the given row indices, in the given order,
    sharing dictionaries with the input. *)

val select_columns : ?name:string -> Schema.t -> t -> int list -> t
(** [select_columns schema t js] is the zero-copy view whose [k]-th column
    is column [js_k] of [t] (buffers and dictionaries shared), under the
    given schema.  This is how {!Ops.project} and {!Ops.rename} avoid
    touching any row.  [schema]'s arity must equal [List.length js]. *)

val row_membership : of_:t -> t -> int -> bool
(** [row_membership ~of_:b a] precomputes a membership test: the returned
    predicate tells whether row [i] of [a] occurs in [b].  Works in code
    space via dictionary translation, like {!subset}.  Schemas must be
    union-compatible (callers check). *)

val concat : t -> t -> t
(** Union-all: the rows of both tables in order, under the first table's
    name and dictionaries ([b]'s codes are re-interned).  Schemas must be
    union-compatible — callers ({!Ops.union}) check. *)

val of_columns :
  ?lineage:Lineage.row array ->
  name:string -> Schema.t -> nrows:int -> (Dict.t * int array) array -> t
(** Assemble a table directly from per-column (dictionary, codes) pairs —
    the fast path for operators that compute code arrays wholesale
    ({!Ops.cross}, {!Ops.equi_join}).  Every code array must have at least
    [nrows] entries valid against its dictionary.  [lineage], when given,
    must have exactly [nrows] entries. *)

(** {1 Row-level provenance}

    When {!Lineage.tracking} is on, every derived table carries one
    {!Lineage.row} per row: the base contributors the row came from.
    The first operator that consumes a lineage-free table treats it as
    a {e base}: it registers the table with {!Lineage.register} (keyed
    by {!id}) and synthesizes the identity lineage.  With tracking off
    nothing is allocated and every check is a single [None] match. *)

val lineage : t -> Lineage.row array option
(** Per-row contributors (indices [0 .. cardinality - 1]), or [None]
    for a base (or tracking-off) table. *)

val with_lineage : t -> Lineage.row array -> t
(** Attach explicit lineage (length must be {!cardinality}).
    @raise Invalid_argument on a length mismatch. *)

val lineage_rows : t -> Lineage.row array
(** The table's lineage, synthesizing (and registering) the identity
    lineage if the table is a base.  Meant for operators and
    diagnostics that run under {!Lineage.tracking}. *)

(** {1 Storage accounting} *)

val storage_bytes : t -> int
(** Approximate heap footprint: code buffers plus each column's
    dictionary.  Shared dictionaries are counted once per table. *)

val dict_sizes : t -> (string * int) list
(** Per column, the number of distinct values in its dictionary (in
    schema order).  A shared dictionary may exceed the column's own
    distinct count. *)

val dict_hit_rate : t -> float
(** Aggregate {!Dict.hit_rate} across the table's dictionaries —
    effectively the fraction of interned cells that were repeats. *)
