exception Schema_clash of string
exception Incompatible_schemas of string

(* Chunk sizes below which the pool is not worth waking: selections and
   join probes are cheap per row, so parallelism only pays on bulk scans. *)
let select_min_chunk = 1024
let probe_min_chunk = 512

let select ?funcs pred t =
  let check =
    Expr.compile_columns ?funcs (Table.schema t) ~dict:(Table.dict t)
      ~codes:(Table.codes t) pred
  in
  let n = Table.cardinality t in
  if Par.Pool.degree ~min_chunk:select_min_chunk n <= 1 then
    Table.filter_idx check t
  else
    (* The compiled predicate only reads code arrays and compile-time memo
       tables, so chunks can evaluate it concurrently; the chunk-order
       merge keeps the kept indices ascending, exactly like the
       sequential filter. *)
    Table.gather t
      (Par.Pool.filter_list ~min_chunk:select_min_chunk check
         (List.init n Fun.id))

let project cols t =
  let schema = Table.schema t in
  Table.select_columns (Schema.project schema cols) t
    (List.map (Schema.index schema) cols)

let rename mapping t =
  let schema = Table.schema t in
  Table.select_columns (Schema.rename schema mapping) t
    (List.init (Schema.arity schema) Fun.id)

let check_disjoint sa sb =
  List.iter
    (fun c -> if Schema.mem sa c then raise (Schema_clash c))
    (Schema.columns sb)

(* Lineage of a row combined from row [ia] of [ta] and row [ib] of [tb]
   (joins, products): the union of both parents' contributors.  Only
   evaluated when either input carries lineage or tracking is on. *)
let pair_lineage ta tb =
  if
    Table.lineage ta <> None || Table.lineage tb <> None
    || Lineage.tracking ()
  then begin
    let la = Table.lineage_rows ta and lb = Table.lineage_rows tb in
    Some (fun ia ib -> Lineage.merge la.(ia) lb.(ib))
  end
  else None

let cross ta tb =
  let sa = Table.schema ta and sb = Table.schema tb in
  check_disjoint sa sb;
  let schema = Schema.append sa (Schema.columns sb) in
  let na = Table.cardinality ta and nb = Table.cardinality tb in
  let n = na * nb in
  (* Row (ia, ib) lands at index ia*nb + ib: a-columns repeat each code nb
     times, b-columns tile their whole code sequence na times. *)
  let col_of_a j =
    let src = Table.codes ta j in
    let out = Array.make n 0 in
    for ia = 0 to na - 1 do
      Array.fill out (ia * nb) nb src.(ia)
    done;
    (Table.dict ta j, out)
  in
  let col_of_b j =
    let src = Table.codes tb j in
    let out = Array.make n 0 in
    for ia = 0 to na - 1 do
      Array.blit src 0 out (ia * nb) nb
    done;
    (Table.dict tb j, out)
  in
  let lineage =
    Option.map
      (fun combine ->
        Array.init n (fun k -> combine (k / nb) (k mod nb)))
      (pair_lineage ta tb)
  in
  Table.of_columns ?lineage
    ~name:(Table.name ta ^ "*" ^ Table.name tb)
    schema ~nrows:n
    (Array.append
       (Array.init (Schema.arity sa) col_of_a)
       (Array.init (Schema.arity sb) col_of_b))

let cross_many ~name = function
  | [] -> invalid_arg "Ops.cross_many: empty list"
  | t :: ts -> Table.with_name name (List.fold_left cross t ts)

let prefix_columns prefix t =
  let mapping =
    List.map (fun c -> c, prefix ^ c) (Schema.columns (Table.schema t))
  in
  rename mapping t

let require_compatible op ta tb =
  if not (Schema.union_compatible (Table.schema ta) (Table.schema tb)) then
    raise
      (Incompatible_schemas
         (Printf.sprintf "%s: %s vs %s" op (Table.name ta) (Table.name tb)))

let union ta tb =
  require_compatible "union" ta tb;
  Table.distinct (Table.concat ta tb)

let union_many ~name schema = function
  | [] -> Table.create ~name schema
  | t :: ts -> Table.with_name name (List.fold_left union t ts)

let except ta tb =
  require_compatible "except" ta tb;
  let in_b = Table.row_membership ~of_:tb ta in
  Table.distinct (Table.filter_idx (fun i -> not (in_b i)) ta)

let intersect ta tb =
  require_compatible "intersect" ta tb;
  let in_b = Table.row_membership ~of_:tb ta in
  Table.distinct (Table.filter_idx in_b ta)

let equi_join ~on ta tb =
  let sa = Table.schema ta and sb = Table.schema tb in
  let a_keys = List.map (fun (a, _) -> Schema.index sa a) on in
  let b_keys = List.map (fun (_, b) -> Schema.index sb b) on in
  let b_key_cols = List.map snd on in
  let kept_b =
    List.filter (fun c -> not (List.mem c b_key_cols)) (Schema.columns sb)
  in
  List.iter (fun c -> if Schema.mem sa c then raise (Schema_clash c)) kept_b;
  let na = Table.cardinality ta and nb = Table.cardinality tb in
  (* Hash join in code space: index tb row numbers by their key codes,
     translate ta's key codes into tb's dictionaries once, then probe. *)
  let b_key = Array.of_list (List.map (Table.codes tb) b_keys) in
  let buckets = Hashtbl.create (max 16 nb) in
  for ib = 0 to nb - 1 do
    let k = Array.map (fun cs -> cs.(ib)) b_key in
    let existing = Option.value (Hashtbl.find_opt buckets k) ~default:[] in
    Hashtbl.replace buckets k (ib :: existing)
  done;
  (* buckets accumulate newest-first; reversing each into an array once
     restores tb row order, so probes need no per-row reversal *)
  let index = Hashtbl.create (max 16 nb) in
  Hashtbl.iter
    (fun k l -> Hashtbl.replace index k (Array.of_list (List.rev l)))
    buckets;
  let a_key = Array.of_list (List.map (Table.codes ta) a_keys) in
  let trans =
    Array.of_list
      (List.map2
         (fun ja jb ->
           let da = Table.dict ta ja and db = Table.dict tb jb in
           if da == db then None else Some (Dict.translate ~from:da ~into:db))
         a_keys b_keys)
  in
  let nkeys = Array.length a_key in
  (* write row ia's translated key codes into scratch array [k]; false
     when a key value has no code in tb's dictionary (no match) *)
  let key_into k ia =
    let ok = ref true in
    for j = 0 to nkeys - 1 do
      let c = a_key.(j).(ia) in
      let c' = match trans.(j) with None -> c | Some map -> map.(c) in
      if c' < 0 then ok := false else k.(j) <- c'
    done;
    !ok
  in
  let seq_pairs () =
    (* probe with one reused key array and push straight into growable
       index buffers: no per-row allocation on the sequential path *)
    let cap = ref 16 in
    let ias = ref (Array.make !cap 0) and ibs = ref (Array.make !cap 0) in
    let m = ref 0 in
    let k = Array.make nkeys 0 in
    for ia = 0 to na - 1 do
      if key_into k ia then
        match Hashtbl.find_opt index k with
        | None -> ()
        | Some matches ->
            Array.iter
              (fun ib ->
                if !m = !cap then begin
                  cap := !cap * 2;
                  let grow a =
                    let a' = Array.make !cap 0 in
                    Array.blit a 0 a' 0 !m;
                    a'
                  in
                  ias := grow !ias;
                  ibs := grow !ibs
                end;
                !ias.(!m) <- ia;
                !ibs.(!m) <- ib;
                incr m)
              matches
    done;
    (!ias, !ibs, !m)
  in
  let par_pairs () =
    let probe ia =
      let k = Array.make nkeys 0 in
      if not (key_into k ia) then []
      else
        match Hashtbl.find_opt index k with
        | None -> []
        | Some matches ->
            Array.fold_right (fun ib acc -> (ia, ib) :: acc) matches []
    in
    (* The build index and translation maps are immutable once populated,
       so probe chunks may read them from several domains concurrently;
       pair chunks concatenate in row order, matching the sequential
       probe loop exactly. *)
    let pairs =
      Par.Pool.concat_map_list ~min_chunk:probe_min_chunk probe
        (List.init na Fun.id)
    in
    let m = List.length pairs in
    let ias = Array.make (max 1 m) 0 and ibs = Array.make (max 1 m) 0 in
    List.iteri
      (fun k (ia, ib) ->
        ias.(k) <- ia;
        ibs.(k) <- ib)
      pairs;
    (ias, ibs, m)
  in
  let ias, ibs, m =
    if Par.Pool.degree ~min_chunk:probe_min_chunk na <= 1 then seq_pairs ()
    else par_pairs ()
  in
  let col_from t idxs j =
    let src = Table.codes t j in
    let data = Array.make (max 1 m) 0 in
    for k = 0 to m - 1 do
      data.(k) <- src.(idxs.(k))
    done;
    (Table.dict t j, data)
  in
  let lineage =
    Option.map
      (fun combine -> Array.init m (fun k -> combine ias.(k) ibs.(k)))
      (pair_lineage ta tb)
  in
  Table.of_columns ?lineage
    ~name:(Table.name ta ^ "|x|" ^ Table.name tb)
    (Schema.append sa kept_b) ~nrows:m
    (Array.append
       (Array.init (Schema.arity sa) (col_from ta ias))
       (Array.of_list (List.map (fun jb -> col_from tb ibs jb) (List.map (Schema.index sb) kept_b))))

let add_column ~name f t =
  let schema = Schema.append (Table.schema t) [ name ] in
  let n = Table.cardinality t in
  let d = Dict.create () in
  let extra = Array.init n (fun i -> Dict.intern d (f (Table.get t i))) in
  let shared =
    Array.init (Table.arity t) (fun j ->
        (Table.dict t j, Array.sub (Table.codes t j) 0 n))
  in
  let lineage =
    if Table.lineage t <> None || Lineage.tracking () then
      Some (Array.sub (Table.lineage_rows t) 0 n)
    else None
  in
  Table.of_columns ?lineage ~name:(Table.name t) schema ~nrows:n
    (Array.append shared [| (d, extra) |])

let group_count ~by t =
  let projected = project by t in
  let n = Table.cardinality projected in
  let arity = Table.arity projected in
  let cols = Array.init arity (Table.codes projected) in
  let counts = Hashtbl.create 64 in
  let order = ref [] in
  for i = 0 to n - 1 do
    let key = Array.map (fun cs -> cs.(i)) cols in
    match Hashtbl.find_opt counts key with
    | Some c -> Hashtbl.replace counts key (c + 1)
    | None ->
        Hashtbl.add counts key 1;
        order := (i, key) :: !order
  done;
  List.rev_map
    (fun (i, key) -> (Table.get projected i, Hashtbl.find counts key))
    !order

let group_count_lineage ~by t =
  let projected = project by t in
  let lin = Table.lineage_rows projected in
  let n = Table.cardinality projected in
  let arity = Table.arity projected in
  let cols = Array.init arity (Table.codes projected) in
  let groups : (int array, int * Lineage.row) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  for i = 0 to n - 1 do
    let key = Array.map (fun cs -> cs.(i)) cols in
    match Hashtbl.find_opt groups key with
    | Some (c, l) -> Hashtbl.replace groups key (c + 1, Lineage.merge l lin.(i))
    | None ->
        Hashtbl.add groups key (1, lin.(i));
        order := (i, key) :: !order
  done;
  List.rev_map
    (fun (i, key) ->
      let c, l = Hashtbl.find groups key in
      (Table.get projected i, c, l))
    !order

(* Sort keys are decoded once into value arrays; the stable sort then
   compares decoded cells under Value.order (numeric across Int/Float)
   and ties keep input order.  Gathering by the sorted index list reuses
   the input's dictionaries, so sorting never re-interns. *)
let order_by keys t =
  let schema = Table.schema t in
  let n = Table.cardinality t in
  let cols =
    List.map
      (fun (c, dir) ->
        let j = Schema.index schema c in
        let d = Table.dict t j and cs = Table.codes t j in
        (Array.init n (fun i -> Dict.value d cs.(i)), dir))
      keys
  in
  let rec cmp cols a b =
    match cols with
    | [] -> 0
    | (vals, dir) :: rest ->
        let r = Value.order vals.(a) vals.(b) in
        let r = match dir with `Asc -> r | `Desc -> -r in
        if r <> 0 then r else cmp rest a b
  in
  Table.gather ~name:(Table.name t) t
    (List.stable_sort (cmp cols) (List.init n Fun.id))

let limit n t =
  if n >= Table.cardinality t then t else Table.filter_idx (fun i -> i < n) t
