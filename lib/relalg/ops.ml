exception Schema_clash of string
exception Incompatible_schemas of string

(* Chunk sizes below which the pool is not worth waking: selections and
   join probes are cheap per row, so parallelism only pays on bulk scans. *)
let select_min_chunk = 1024
let probe_min_chunk = 512

let select ?funcs pred t =
  let check = Expr.compile ?funcs (Table.schema t) pred in
  let rows = Table.rows t in
  if Par.Pool.degree ~min_chunk:select_min_chunk (List.length rows) <= 1 then
    Table.filter check t
  else
    Table.of_rows ~name:(Table.name t) (Table.schema t)
      (Par.Pool.filter_list ~min_chunk:select_min_chunk check rows)

let project cols t =
  let schema = Table.schema t in
  let idxs = Array.of_list (List.map (Schema.index schema) cols) in
  let sub row = Array.map (fun i -> row.(i)) idxs in
  Table.of_rows ~name:(Table.name t) (Schema.project schema cols)
    (List.map sub (Table.rows t))

let rename mapping t =
  Table.of_rows ~name:(Table.name t)
    (Schema.rename (Table.schema t) mapping)
    (Table.rows t)

let check_disjoint sa sb =
  List.iter
    (fun c -> if Schema.mem sa c then raise (Schema_clash c))
    (Schema.columns sb)

let cross ta tb =
  let sa = Table.schema ta and sb = Table.schema tb in
  check_disjoint sa sb;
  let schema = Schema.append sa (Schema.columns sb) in
  let rows =
    List.concat_map
      (fun ra -> List.map (fun rb -> Array.append ra rb) (Table.rows tb))
      (Table.rows ta)
  in
  Table.of_rows ~name:(Table.name ta ^ "*" ^ Table.name tb) schema rows

let cross_many ~name = function
  | [] -> invalid_arg "Ops.cross_many: empty list"
  | t :: ts -> Table.with_name name (List.fold_left cross t ts)

let prefix_columns prefix t =
  let mapping =
    List.map (fun c -> c, prefix ^ c) (Schema.columns (Table.schema t))
  in
  rename mapping t

let require_compatible op ta tb =
  if not (Schema.union_compatible (Table.schema ta) (Table.schema tb)) then
    raise
      (Incompatible_schemas
         (Printf.sprintf "%s: %s vs %s" op (Table.name ta) (Table.name tb)))

let union ta tb =
  require_compatible "union" ta tb;
  Table.distinct (Table.add_all ta (Table.rows tb))

let union_many ~name schema = function
  | [] -> Table.create ~name schema
  | t :: ts -> Table.with_name name (List.fold_left union t ts)

let except ta tb =
  require_compatible "except" ta tb;
  let drop = Row.Tbl.create 64 in
  List.iter (fun r -> Row.Tbl.replace drop r ()) (Table.rows tb);
  Table.distinct (Table.filter (fun r -> not (Row.Tbl.mem drop r)) ta)

let intersect ta tb =
  require_compatible "intersect" ta tb;
  let keep = Row.Tbl.create 64 in
  List.iter (fun r -> Row.Tbl.replace keep r ()) (Table.rows tb);
  Table.distinct (Table.filter (Row.Tbl.mem keep) ta)

let equi_join ~on ta tb =
  let sa = Table.schema ta and sb = Table.schema tb in
  let a_keys = List.map (fun (a, _) -> Schema.index sa a) on in
  let b_keys = List.map (fun (_, b) -> Schema.index sb b) on in
  let b_key_cols = List.map snd on in
  let kept_b =
    List.filter (fun c -> not (List.mem c b_key_cols)) (Schema.columns sb)
  in
  List.iter (fun c -> if Schema.mem sa c then raise (Schema_clash c)) kept_b;
  let kept_b_idx = Array.of_list (List.map (Schema.index sb) kept_b) in
  let key_of row idxs = Row.of_list (List.map (fun i -> row.(i)) idxs) in
  (* Hash join: index tb rows by key, then probe with ta rows. *)
  let index = Row.Tbl.create (Table.cardinality tb) in
  List.iter
    (fun rb ->
      let k = key_of rb b_keys in
      let existing = Option.value (Row.Tbl.find_opt index k) ~default:[] in
      Row.Tbl.replace index k (rb :: existing))
    (Table.rows tb);
  (* The build side is immutable once populated, so probe chunks may read
     it from several domains concurrently; probe results concatenate in
     row order, matching the sequential concat_map exactly. *)
  let rows =
    Par.Pool.concat_map_list ~min_chunk:probe_min_chunk
      (fun ra ->
        match Row.Tbl.find_opt index (key_of ra a_keys) with
        | None -> []
        | Some matches ->
            List.rev_map
              (fun rb ->
                Array.append ra (Array.map (fun i -> rb.(i)) kept_b_idx))
              matches)
      (Table.rows ta)
  in
  Table.of_rows
    ~name:(Table.name ta ^ "|x|" ^ Table.name tb)
    (Schema.append sa kept_b) rows

let add_column ~name f t =
  let schema = Schema.append (Table.schema t) [ name ] in
  Table.of_rows ~name:(Table.name t) schema
    (List.map (fun row -> Array.append row [| f row |]) (Table.rows t))

let group_count ~by t =
  let projected = project by t in
  let counts = Row.Tbl.create 64 in
  let order = ref [] in
  Table.iter
    (fun row ->
      match Row.Tbl.find_opt counts row with
      | Some n -> Row.Tbl.replace counts row (n + 1)
      | None ->
          Row.Tbl.add counts row 1;
          order := row :: !order)
    projected;
  List.rev_map (fun row -> row, Row.Tbl.find counts row) !order
