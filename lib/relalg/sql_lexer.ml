type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | KW of string
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | QUESTION
  | COLON
  | SEMI
  | EOF

exception Lex_error of { pos : int; message : string }

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "IN"; "CREATE";
    "TABLE"; "AS"; "INSERT"; "INTO"; "VALUES"; "UNION"; "EXCEPT"; "INTERSECT";
    "NULL"; "TRUE"; "FALSE"; "DROP"; "EMPTY"; "GROUP"; "BY"; "ORDER";
    "LIMIT"; "ASC"; "DESC";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let error pos message = raise (Lex_error { pos; message }) in
  let rec skip i = if i < n && (src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r') then skip (i + 1) else i in
  let rec go i =
    let i = skip i in
    if i >= n then emit EOF
    else
      let c = src.[i] in
      if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        let word = String.sub src i (!j - i) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then emit (KW upper) else emit (IDENT word);
        go !j
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do incr j done;
        if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1]
        then begin
          incr j;
          while !j < n && is_digit src.[!j] do incr j done;
          emit (FLOAT (float_of_string (String.sub src i (!j - i))))
        end
        else emit (INT (int_of_string (String.sub src i (!j - i))));
        go !j
      end
      else
        match c with
        | '\'' ->
            let buf = Buffer.create 16 in
            let rec str j =
              if j >= n then error i "unterminated string literal"
              else if src.[j] = '\'' then
                if j + 1 < n && src.[j + 1] = '\'' then begin
                  Buffer.add_char buf '\'';
                  str (j + 2)
                end
                else j + 1
              else begin
                Buffer.add_char buf src.[j];
                str (j + 1)
              end
            in
            let j = str (i + 1) in
            emit (STRING (Buffer.contents buf));
            go j
        | '"' ->
            (* The paper's examples quote constants with double quotes;
               accept them as string literals too. *)
            let rec str j =
              if j >= n then error i "unterminated string literal" else
              if src.[j] = '"' then j else str (j + 1)
            in
            let j = str (i + 1) in
            emit (STRING (String.sub src (i + 1) (j - i - 1)));
            go (j + 1)
        | '(' -> emit LPAREN; go (i + 1)
        | ')' -> emit RPAREN; go (i + 1)
        | ',' -> emit COMMA; go (i + 1)
        | '*' -> emit STAR; go (i + 1)
        | '=' -> emit EQ; go (i + 1)
        | '?' -> emit QUESTION; go (i + 1)
        | ':' -> emit COLON; go (i + 1)
        | ';' -> emit SEMI; go (i + 1)
        | '<' when i + 1 < n && src.[i + 1] = '>' -> emit NEQ; go (i + 2)
        | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NEQ; go (i + 2)
        | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE; go (i + 2)
        | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE; go (i + 2)
        | '<' -> emit LT; go (i + 1)
        | '>' -> emit GT; go (i + 1)
        | _ -> error i (Printf.sprintf "illegal character %C" c)
  in
  go 0;
  List.rev !toks

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "ident %s" s
  | STRING s -> Format.fprintf fmt "string %S" s
  | INT i -> Format.fprintf fmt "int %d" i
  | FLOAT f -> Format.fprintf fmt "float %s" (Value.float_repr f)
  | KW k -> Format.pp_print_string fmt k
  | LPAREN -> Format.pp_print_string fmt "("
  | RPAREN -> Format.pp_print_string fmt ")"
  | COMMA -> Format.pp_print_string fmt ","
  | STAR -> Format.pp_print_string fmt "*"
  | EQ -> Format.pp_print_string fmt "="
  | NEQ -> Format.pp_print_string fmt "<>"
  | LT -> Format.pp_print_string fmt "<"
  | LE -> Format.pp_print_string fmt "<="
  | GT -> Format.pp_print_string fmt ">"
  | GE -> Format.pp_print_string fmt ">="
  | QUESTION -> Format.pp_print_string fmt "?"
  | COLON -> Format.pp_print_string fmt ":"
  | SEMI -> Format.pp_print_string fmt ";"
  | EOF -> Format.pp_print_string fmt "<eof>"
