(** Relational-algebra operators over {!Table.t}.

    These are the operations the paper performs through SQL: selection by a
    boolean constraint, projection, renaming, cross product (table
    generation), union (assembling dependency tables), difference, and
    joins (pairwise composition).  Set-producing operators ([union],
    [except], [intersect]) return duplicate-free tables; [select]/[project]
    preserve multiplicity like their SQL counterparts. *)

exception Schema_clash of string
(** Raised by {!cross} when operand schemas share a column name. *)

exception Incompatible_schemas of string

val select : ?funcs:Expr.funcs -> Expr.t -> Table.t -> Table.t
(** Keep rows satisfying the predicate. *)

val project : string list -> Table.t -> Table.t
(** Keep (and reorder to) the named columns; duplicates are retained — pair
    with {!Table.distinct} for SQL's [SELECT DISTINCT]. *)

val rename : (string * string) list -> Table.t -> Table.t

val cross : Table.t -> Table.t -> Table.t
(** Cartesian product. @raise Schema_clash on shared column names. *)

val cross_many : name:string -> Table.t list -> Table.t
(** Left-to-right product of several tables (used to build the candidate
    space of a controller table from its column tables). *)

val prefix_columns : string -> Table.t -> Table.t
(** [prefix_columns "t1." t] renames every column [c] to ["t1." ^ c]. *)

val union : Table.t -> Table.t -> Table.t
(** Set union. @raise Incompatible_schemas unless union-compatible. *)

val union_many : name:string -> Schema.t -> Table.t list -> Table.t

val except : Table.t -> Table.t -> Table.t
val intersect : Table.t -> Table.t -> Table.t

val equi_join : on:(string * string) list -> Table.t -> Table.t -> Table.t
(** [equi_join ~on:[(a1, b1); ...] ta tb]: rows of the product where each
    [ta.ai = tb.bi]; the result keeps all columns of [ta] and the columns of
    [tb] that are not join keys.  @raise Schema_clash if a kept [tb] column
    collides with a [ta] column. *)

val add_column :
  name:string -> (Row.t -> Value.t) -> Table.t -> Table.t
(** Extend every row with a computed column appended on the right. *)

val group_count : by:string list -> Table.t -> (Row.t * int) list
(** Multiplicity of each distinct projection onto [by] (used for table
    statistics reported in the benches). *)

val group_count_lineage :
  by:string list -> Table.t -> (Row.t * int * Lineage.row) list
(** {!group_count} plus, per group, the merged base contributors of
    every member row ({!Lineage.tracking}-style provenance for
    aggregates).  Synthesizes identity lineage when the input is a
    base table. *)

val order_by : (string * [ `Asc | `Desc ]) list -> Table.t -> Table.t
(** Stable sort of the rows by the named columns under {!Value.order}
    (so [Int]/[Float] cells order numerically); ties keep input order.
    Backs SQL's [ORDER BY]. *)

val limit : int -> Table.t -> Table.t
(** Keep the first [n] rows in current order.  Backs SQL's [LIMIT]. *)
