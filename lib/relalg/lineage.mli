(** Row-level provenance for derived tables.

    When tracking is enabled, every table produced by {!Ops} or
    {!Solver} carries, per row, a compact {e lineage}: the set of base
    contributors [(source id, row index)] that the row was derived
    from.  A base table is any table that does not itself carry
    lineage; the first operator that consumes it synthesizes the
    identity lineage [row i <- (id, i)] and registers the table here,
    so the contributors of any derived row can later be decoded back
    into named base rows — the raw material of the checker's
    [asura why] narratives.

    Tracking is {e off} by default and the whole subsystem then costs
    one [None] check per operator: the columnar hot path stays
    integer-only.  Enabling it is meant for diagnostic runs
    (invariant explanation, deadlock narratives, the lineage test
    suite), not for benchmarking. *)

type contrib = { source : int; row : int }
(** One base contributor: [source] identifies a registered base table,
    [row] a row index within it. *)

type row = contrib array
(** The contributors of one derived row, in derivation order
    (duplicates removed). *)

val tracking : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val with_tracking : (unit -> 'a) -> 'a
(** Run a thunk with tracking enabled, restoring the previous state
    (exception-safe). *)

(** {1 Source registry}

    Base tables are registered the first time an operator synthesizes
    their identity lineage, keyed by {!Table.id}.  The registry keeps
    the table name, its schema columns and a row accessor, so
    diagnostics can render a contributor without holding the original
    table value.  Guarded by a mutex: safe from any domain. *)

type source = {
  id : int;
  name : string;
  columns : string list;
  get : int -> Value.t array;  (** decode one row of the base table *)
}

val register : id:int -> name:string -> columns:string list ->
  get:(int -> Value.t array) -> unit
(** Idempotent per [id]. *)

val source : int -> source option
val source_name : int -> string
(** The registered name, or ["#<id>"] when unknown. *)

val clear : unit -> unit
(** Drop every registered source (test isolation). *)

(** {1 Helpers} *)

val base : int -> int -> row
(** [base id i]: the identity lineage of row [i] of base table [id]. *)

val merge : row -> row -> row
(** Contributors of a row derived from two parents (set union,
    left-to-right order preserved). *)

val pp : Format.formatter -> row -> unit
(** Render as [name[row] + name[row] + ...]. *)

val to_string : row -> string
