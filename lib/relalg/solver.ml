type role = Input | Output
type column = { cname : string; role : role; domain : Value.t list }

type spec = {
  sname : string;
  cols : column list;
  constraints : (string * Expr.t) list;
}

type column_stats = { column : string; considered : int; kept : int }

type stats = {
  candidates : int;
  evaluations : int;
  per_column : (string * int) list;
  pruning : column_stats list;
}

let pruned c = c.considered - c.kept

let obs_reg = lazy (Obs.Metrics.registry "solver")

let obs_counter name = Obs.Metrics.counter (Lazy.force obs_reg) name

exception Invalid_spec of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_spec s)) fmt

let make ~name ~columns ~constraints =
  let names = List.map (fun c -> c.cname) columns in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c then invalid "duplicate column %s in %s" c name;
      Hashtbl.add seen c ())
    names;
  List.iter
    (fun c ->
      if c.domain = [] then invalid "empty domain for column %s in %s" c.cname name)
    columns;
  List.iter
    (fun (c, e) ->
      if not (Hashtbl.mem seen c) then
        invalid "constraint on unknown column %s in %s" c name;
      List.iter
        (fun fc ->
          if not (Hashtbl.mem seen fc) then
            invalid "constraint on %s in %s mentions unknown column %s" c name fc)
        (Expr.free_columns e))
    constraints;
  { sname = name; cols = columns; constraints }

let name s = s.sname
let columns s = s.cols
let inputs s = List.filter (fun c -> c.role = Input) s.cols
let outputs s = List.filter (fun c -> c.role = Output) s.cols

let constraint_of s c =
  if not (List.exists (fun col -> col.cname = c) s.cols) then
    invalid "no column %s in %s" c s.sname;
  match List.assoc_opt c s.constraints with Some e -> e | None -> Expr.True

let search_space s =
  List.fold_left (fun acc c -> acc * List.length c.domain) 1 s.cols

(* Column addition order: inputs in declaration order, then outputs in
   declaration order — the paper first solves the input combinations, then
   extends with one output column at a time. *)
let ordered_columns s = inputs s @ outputs s

(* Provenance of a generated table: every cell is literally one element
   of its column table (the domain), so under lineage tracking each row
   points at the domain entries that were composed into it.  The column
   tables are materialized as 1-column base tables named
   "<table>.<column>" and registered as lineage sources.  Reconstructed
   after generation so the row-extension hot path stays untouched when
   tracking is off. *)
let attach_domain_lineage s table =
  if not (Lineage.tracking ()) then table
  else begin
    let sources =
      List.map
        (fun c ->
          let ct =
            Table.of_rows
              ~name:(s.sname ^ "." ^ c.cname)
              (Schema.of_list [ c.cname ])
              (List.map (fun v -> [| v |]) c.domain)
          in
          Lineage.register ~id:(Table.id ct) ~name:(Table.name ct)
            ~columns:[ c.cname ] ~get:(Table.get ct);
          let index = Hashtbl.create 16 in
          List.iteri (fun i v -> Hashtbl.replace index v i) c.domain;
          (Table.id ct, index))
        (ordered_columns s)
    in
    let srcs = Array.of_list sources in
    let lin =
      Array.init (Table.cardinality table) (fun i ->
          Array.mapi
            (fun j cell ->
              let cid, index = srcs.(j) in
              { Lineage.source = cid; row = Hashtbl.find index cell })
            (Table.get table i))
    in
    Table.with_lineage table lin
  end

let generate_reference ?funcs s =
  Obs.Trace.with_span ~cat:"solver"
    ~args:[ "table", Obs.Json.Str s.sname ]
    "solver.generate"
  @@ fun () ->
  let order = ordered_columns s in
  let evaluations = ref 0 and candidates = ref 0 in
  let per_column = ref [] in
  let pruning = ref [] in
  (* Constraints not yet applied, with their free-column sets. *)
  let pending =
    ref
      (List.map
         (fun c ->
           let e = constraint_of s c.cname in
           Expr.free_columns e, e)
         order
       |> List.filter (fun (_, e) -> e <> Expr.True))
  in
  let bound = Hashtbl.create 16 in
  let step (schema, rows) col =
    Obs.Trace.with_span ~cat:"solver"
      ~args:[ "column", Obs.Json.Str col.cname ]
      "solver.extend"
    @@ fun () ->
    let candidates_before = !candidates in
    Hashtbl.add bound col.cname ();
    let schema' = Schema.append schema [ col.cname ] in
    let ready, waiting =
      List.partition
        (fun (free, _) -> List.for_all (Hashtbl.mem bound) free)
        !pending
    in
    pending := waiting;
    let applicable =
      List.map (fun (_, e) -> Expr.compile ?funcs schema' e) ready
    in
    (* Extend each surviving row by every domain value of the new column,
       keeping the candidates that pass the newly-applicable constraints.
       The row stream is partitioned into contiguous chunks across the
       domain pool; each chunk counts its own candidates/evaluations and
       the spawning domain merges chunk results in chunk order, so both
       the row order and the stats are identical to the sequential run. *)
    let run_chunk chunk =
      let cand = ref 0 and evals = ref 0 in
      let extend row v =
        incr cand;
        let row' = Array.append row [| v |] in
        let ok =
          List.for_all
            (fun check ->
              incr evals;
              check row')
            applicable
        in
        if ok then Some row' else None
      in
      let out =
        List.concat_map
          (fun row -> List.filter_map (extend row) col.domain)
          (Array.to_list chunk)
      in
      out, !cand, !evals
    in
    let parts =
      Par.Pool.map_chunks ~min_chunk:64 run_chunk (Array.of_list rows)
    in
    let rows' =
      List.concat (Array.to_list (Array.map (fun (r, _, _) -> r) parts))
    in
    Array.iter
      (fun (_, c, e) ->
        candidates := !candidates + c;
        evaluations := !evaluations + e)
      parts;
    let kept = List.length rows' in
    per_column := (col.cname, kept) :: !per_column;
    let considered = !candidates - candidates_before in
    Obs.Flightrec.record ~tag:Obs.Flightrec.tag_solver_extend ~a:considered
      ~b:kept ();
    pruning := { column = col.cname; considered; kept } :: !pruning;
    (* per-constraint pruning attribution: candidate rows this column's
       newly-applicable constraints eliminated, so the most selective
       constraints are visible in metrics snapshots and run manifests *)
    Obs.Metrics.add
      (obs_counter (Printf.sprintf "pruned.%s.%s" s.sname col.cname))
      (considered - kept);
    schema', rows'
  in
  let schema, rows =
    List.fold_left step (Schema.of_list [], [ [||] ]) order
  in
  Obs.Metrics.add (obs_counter "candidates") !candidates;
  Obs.Metrics.add (obs_counter "evaluations") !evaluations;
  Obs.Metrics.add (obs_counter "rows_generated") (List.length rows);
  Obs.Flightrec.record ~tag:Obs.Flightrec.tag_solver_gen
    ~a:(List.length rows) ~b:(List.length order) ();
  let table = attach_domain_lineage s (Table.of_rows ~name:s.sname schema rows) in
  Obs.Metrics.add (obs_counter "storage_bytes") (Table.storage_bytes table);
  ( table,
    {
      candidates = !candidates;
      evaluations = !evaluations;
      per_column = List.rev !per_column;
      pruning = List.rev !pruning;
    } )

(* Vectorized row extension: the same candidate enumeration as the
   reference [step] — parent-major, domain order, newly-applicable
   constraints applied in the same order — but over columnar code
   buffers with once-per-chunk compiled predicates and selection-vector
   compaction instead of a boxed [Value] array per candidate.

   All telemetry is counter-exact with the reference path: candidates
   per step is [rows * |domain|] either way, and applying constraint [i]
   only to the survivors of constraints [1..i-1] performs exactly the
   evaluations of the reference's per-candidate short-circuit
   [List.for_all].  Chunks over parent rows merge in chunk order, so row
   order (and hence every downstream golden, including coverage row
   indices) is identical too.  The new column's dictionary is interned
   on the spawning domain before the parallel region; workers only read. *)
let generate_vectorized ?funcs s =
  Obs.Trace.with_span ~cat:"solver"
    ~args:[ "table", Obs.Json.Str s.sname ]
    "solver.generate"
  @@ fun () ->
  let order = ordered_columns s in
  let evaluations = ref 0 and candidates = ref 0 in
  let per_column = ref [] in
  let pruning = ref [] in
  (* plan-observatory accounting: one "extend" op per column, recorded
     as a single solver.generate plan after the fold (spawning domain
     only; workers never touch obs) *)
  let t_gen = Obs.Clock.now_ns () in
  let plan_ops = ref [] in
  let plan_cost = ref 0. in
  let pending =
    ref
      (List.map
         (fun c ->
           let e = constraint_of s c.cname in
           Expr.free_columns e, e)
         order
       |> List.filter (fun (_, e) -> e <> Expr.True))
  in
  let bound = Hashtbl.create 16 in
  (* state: one (dict, codes) pair per bound column, [nrows] valid rows *)
  let step (schema, cols, nrows) col =
    Obs.Trace.with_span ~cat:"solver"
      ~args:[ "column", Obs.Json.Str col.cname ]
      "solver.extend"
    @@ fun () ->
    let t_step = Obs.Clock.now_ns () in
    let candidates_before = !candidates in
    Hashtbl.add bound col.cname ();
    let schema' = Schema.append schema [ col.cname ] in
    let ready, waiting =
      List.partition
        (fun (free, _) -> List.for_all (Hashtbl.mem bound) free)
        !pending
    in
    pending := waiting;
    let checks = List.map snd ready in
    let arity = Array.length cols in
    let dom = Array.of_list col.domain in
    let d = Array.length dom in
    let ndict = Dict.create () in
    let dom_codes = Array.map (Dict.intern ndict) dom in
    let dicts = Array.append (Array.map fst cols) [| ndict |] in
    let run_chunk parents =
      let np = Array.length parents in
      let ncand = np * d in
      let cand_cols =
        Array.init (arity + 1) (fun j ->
            if j < arity then
              let src = snd cols.(j) in
              Array.init ncand (fun k -> src.(parents.(k / d)))
            else Array.init ncand (fun k -> dom_codes.(k mod d)))
      in
      let sel = ref (Array.init ncand Fun.id) in
      let m = ref ncand in
      let evals = ref 0 in
      List.iter
        (fun e ->
          let check =
            Expr.compile_columns ?funcs schema'
              ~dict:(fun j -> dicts.(j))
              ~codes:(fun j -> cand_cols.(j))
              e
          in
          evals := !evals + !m;
          let cur = !sel in
          let keep = Array.make (max 1 !m) 0 in
          let k = ref 0 in
          for i = 0 to !m - 1 do
            let c = cur.(i) in
            if check c then begin
              keep.(!k) <- c;
              incr k
            end
          done;
          sel := keep;
          m := !k)
        checks;
      let m = !m and sel = !sel in
      let out =
        Array.init (arity + 1) (fun j ->
            let src = cand_cols.(j) in
            Array.init m (fun i -> src.(sel.(i))))
      in
      out, m, ncand, !evals
    in
    let parts =
      Par.Pool.map_chunks ~min_chunk:64 run_chunk (Array.init nrows Fun.id)
    in
    let kept = Array.fold_left (fun acc (_, m, _, _) -> acc + m) 0 parts in
    let out_cols =
      Array.init (arity + 1) (fun j ->
          let dst = Array.make (max 1 kept) 0 in
          let off = ref 0 in
          Array.iter
            (fun (o, m, _, _) ->
              Array.blit o.(j) 0 dst !off m;
              off := !off + m)
            parts;
          dst)
    in
    Array.iter
      (fun (_, _, c, e) ->
        candidates := !candidates + c;
        evaluations := !evaluations + e)
      parts;
    per_column := (col.cname, kept) :: !per_column;
    let considered = !candidates - candidates_before in
    Obs.Flightrec.record ~tag:Obs.Flightrec.tag_solver_extend ~a:considered
      ~b:kept ();
    pruning := { column = col.cname; considered; kept } :: !pruning;
    Obs.Metrics.add
      (obs_counter (Printf.sprintf "pruned.%s.%s" s.sname col.cname))
      (considered - kept);
    if Obs.Config.on () then begin
      let considered_f = float_of_int considered in
      (* uninformed textbook half per newly-ready constraint — the same
         default the planner uses for registered functions; the misest
         column of sys.plans shows how far off that is per column *)
      let est_rows =
        considered_f *. (0.5 ** float_of_int (List.length checks))
      in
      plan_cost := !plan_cost +. considered_f;
      plan_ops :=
        {
          Obs.Planlog.op =
            Printf.sprintf "extend %s (domain=%d, checks=%d)" col.cname d
              (List.length checks);
          est_rows;
          est_cost = !plan_cost;
          actual_rows = kept;
          actual_ns = Int64.to_float (Obs.Clock.since t_step);
          batches = Array.length parts;
        }
        :: !plan_ops
    end;
    ( schema',
      Array.init (arity + 1) (fun j -> (dicts.(j), out_cols.(j))),
      kept )
  in
  let schema, cols, nrows =
    List.fold_left step (Schema.of_list [], [||], 1) order
  in
  Obs.Metrics.add (obs_counter "candidates") !candidates;
  Obs.Metrics.add (obs_counter "evaluations") !evaluations;
  Obs.Metrics.add (obs_counter "rows_generated") nrows;
  Obs.Flightrec.record ~tag:Obs.Flightrec.tag_solver_gen ~a:nrows
    ~b:(List.length order) ();
  (if Obs.Config.on () then
     let ops = List.rev !plan_ops in
     (* structural fingerprint: table, column order, domain sizes and
        per-column constraint counts — the extension "plan" the column
        ordering heuristic chose *)
     let fingerprint =
       Obs.Planlog.fingerprint
         ("solver-generate" :: s.sname
         :: List.map (fun (o : Obs.Planlog.op) -> o.op) ops)
     in
     Obs.Planlog.record ~site:"solver.generate" ~fingerprint
       ~query:("generate " ^ s.sname) ~est_cost:!plan_cost
       ~total_ns:(Int64.to_float (Obs.Clock.since t_gen))
       ~rows_out:nrows ops);
  let table = Table.of_columns ~name:s.sname schema ~nrows cols in
  Obs.Metrics.add (obs_counter "storage_bytes") (Table.storage_bytes table);
  ( table,
    {
      candidates = !candidates;
      evaluations = !evaluations;
      per_column = List.rev !per_column;
      pruning = List.rev !pruning;
    } )

(* Lineage needs per-row provenance, which only the boxed reference path
   synthesizes (via {!attach_domain_lineage} over [Table.get]) — the
   {!Planner.active} gate covers that case too. *)
let generate ?funcs s =
  if Planner.active () && List.compare_length_with (ordered_columns s) 0 > 0
  then generate_vectorized ?funcs s
  else generate_reference ?funcs s

let generate_monolithic ?funcs s =
  Obs.Trace.with_span ~cat:"solver"
    ~args:[ "table", Obs.Json.Str s.sname ]
    "solver.generate_monolithic"
  @@ fun () ->
  let order = ordered_columns s in
  let schema = Schema.of_list (List.map (fun c -> c.cname) order) in
  let conjunction =
    Expr.compile ?funcs schema
      (Expr.conj (List.map (fun c -> constraint_of s c.cname) order))
  in
  (* Enumerate the full cross product without materializing it as a list of
     lists: depth-first over the domains.  For the parallel path the
     outermost column's values are split across the pool; each chunk
     enumerates its sub-product with private counters and a private row
     buffer, and chunk results concatenate in value order — the exact
     depth-first order of the sequential enumeration. *)
  let domains = Array.of_list (List.map (fun c -> Array.of_list c.domain) order) in
  let n = Array.length domains in
  let enum_chunk first_values =
    let evaluations = ref 0 and candidates = ref 0 in
    let kept = ref [] in
    let row = Array.make (max n 1) Value.Null in
    let rec enum i =
      if i = n then begin
        incr candidates;
        incr evaluations;
        let r = Array.sub row 0 n in
        if conjunction r then kept := r :: !kept
      end
      else
        let values = if i = 0 then first_values else domains.(i) in
        Array.iter
          (fun v ->
            row.(i) <- v;
            enum (i + 1))
          values
    in
    enum 0;
    List.rev !kept, !candidates, !evaluations
  in
  let parts =
    if n = 0 then [||] else Par.Pool.map_chunks ~min_chunk:1 enum_chunk domains.(0)
  in
  let rows =
    List.concat (Array.to_list (Array.map (fun (r, _, _) -> r) parts))
  in
  let candidates =
    ref (Array.fold_left (fun acc (_, c, _) -> acc + c) 0 parts)
  in
  let evaluations =
    ref (Array.fold_left (fun acc (_, _, e) -> acc + e) 0 parts)
  in
  Obs.Metrics.add
    (obs_counter (Printf.sprintf "pruned.%s.<full product>" s.sname))
    (!candidates - List.length rows);
  Obs.Flightrec.record ~tag:Obs.Flightrec.tag_solver_gen
    ~a:(List.length rows) ~b:n ();
  ( attach_domain_lineage s (Table.of_rows ~name:s.sname schema rows),
    {
      candidates = !candidates;
      evaluations = !evaluations;
      per_column = [ ("<full product>", List.length rows) ];
      pruning =
        [ { column = "<full product>"; considered = !candidates;
            kept = List.length rows } ];
    } )
