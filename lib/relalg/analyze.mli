(** EXPLAIN ANALYZE: run a physical plan while measuring every operator.

    The runtime counterpart of {!Physical.explain} — per operator it
    records rows in (sum of the children's outputs; for access paths,
    the cardinality of the source table), rows out, and inclusive wall
    time on the monotonic clock.  Each operator also emits an [Obs] span
    (category ["relalg"]), so an analyzed query shows up as an operator
    tree on a [--trace] timeline. *)

type node = {
  op : string;  (** one-line operator description *)
  rows_in : int;
  rows_out : int;
  bytes_out : int;
      (** columnar storage footprint of the operator's output
          ({!Table.storage_bytes}) *)
  materialized : bool;
      (** [true] when the operator allocated fresh code buffers; [false]
          for zero-copy outputs (seq scan of a stored table, project,
          empty).  Totals accumulate in the ["relalg"] registry as
          [rows_materialized] / [rows_streamed] / [bytes_materialized]. *)
  dict_hit : float;  (** dictionary hit rate of the output table *)
  elapsed_ns : int64;  (** inclusive wall time *)
  children : node list;
}

val execute : Physical.store -> Physical.t -> Table.t * node
(** Evaluate, returning the result and the measured operator tree. *)

type result = {
  table : Table.t;
  root : node;
  logical : Plan.t;  (** optimized logical plan *)
  physical : Physical.t;
  total_ns : int64;  (** parse + optimize + physicalize + execute *)
}

val run : ?indexes:(string * string) list -> Physical.store -> string -> result
(** Parse → optimize → physicalize → {!execute} a SQL string. *)

val render_node : node -> string
(** Indented per-operator tree with row counts and timings. *)

val render : result -> string
(** {!render_node} plus a total line. *)

val node_to_json : node -> Obs.Json.t

val to_json : result -> Obs.Json.t
(** Machine-readable form of {!render} ([explain --analyze --json]):
    total time, result cardinality, the physical plan as text, and the
    measured operator tree as nested objects. *)
