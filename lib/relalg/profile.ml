type column_stats = {
  column : string;
  distinct : int;
  nulls : int;
  most_common : (Value.t * int) option;
}

type t = {
  table : string;
  rows : int;
  columns : int;
  null_cells : int;
  total_cells : int;
  per_column : column_stats list;
}

let sparsity p =
  if p.total_cells = 0 then 0.
  else float_of_int p.null_cells /. float_of_int p.total_cells

let column_stats tbl idx column =
  let counts = Hashtbl.create 16 in
  let nulls = ref 0 in
  Table.iter
    (fun row ->
      match row.(idx) with
      | Value.Null -> incr nulls
      | v ->
          Hashtbl.replace counts v
            (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
    tbl;
  let most_common =
    Hashtbl.fold
      (fun v n best ->
        match best with
        | Some (_, m) when m >= n -> best
        | _ -> Some (v, n))
      counts None
  in
  { column; distinct = Hashtbl.length counts; nulls = !nulls; most_common }

let profile tbl =
  let schema = Table.schema tbl in
  let per_column =
    List.mapi (fun i c -> column_stats tbl i c) (Schema.columns schema)
  in
  let rows = Table.cardinality tbl in
  let columns = Schema.arity schema in
  {
    table = Table.name tbl;
    rows;
    columns;
    null_cells = List.fold_left (fun acc c -> acc + c.nulls) 0 per_column;
    total_cells = rows * columns;
    per_column;
  }

let column_sparsity p c =
  if p.rows = 0 then 0. else float_of_int c.nulls /. float_of_int p.rows

let to_string p =
  let buf = Buffer.create 512 in
  Printf.ksprintf (Buffer.add_string buf)
    "%s: %d rows x %d columns, %.0f%% of cells are NULL\n" p.table p.rows
    p.columns
    (100. *. sparsity p);
  List.iter
    (fun c ->
      Printf.ksprintf (Buffer.add_string buf)
        "  %-12s %4d distinct, %5d null (%3.0f%% sparse)%s\n" c.column
        c.distinct c.nulls
        (100. *. column_sparsity p c)
        (match c.most_common with
        | Some (v, n) ->
            Printf.sprintf ", mode %s (%d, %.0f%% of rows)"
              (Value.to_string v) n
              (if p.rows = 0 then 0.
               else 100. *. float_of_int n /. float_of_int p.rows)
        | None -> ""))
    p.per_column;
  Buffer.contents buf
