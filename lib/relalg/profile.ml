type column_stats = {
  column : string;
  distinct : int;
  nulls : int;
  most_common : (Value.t * int) option;
  dict_entries : int;
}

type t = {
  table : string;
  rows : int;
  columns : int;
  null_cells : int;
  total_cells : int;
  per_column : column_stats list;
  storage_bytes : int;
  dict_hit_rate : float;
}

let sparsity p =
  if p.total_cells = 0 then 0.
  else float_of_int p.null_cells /. float_of_int p.total_cells

(* Frequencies come straight off the code arrays: one int-indexed count
   per dictionary code, decoded only for the winner. *)
let column_stats tbl idx column =
  let dict = Table.dict tbl idx in
  let codes = Table.codes tbl idx in
  let n = Table.cardinality tbl in
  let counts = Array.make (max 1 (Dict.size dict)) 0 in
  for i = 0 to n - 1 do
    counts.(codes.(i)) <- counts.(codes.(i)) + 1
  done;
  let nulls = ref 0 and distinct = ref 0 in
  let best = ref None in
  Array.iteri
    (fun c k ->
      if k > 0 then
        match Dict.value dict c with
        | Value.Null -> nulls := k
        | v -> (
            incr distinct;
            match !best with
            | Some (_, m) when m >= k -> ()
            | _ -> best := Some (v, k)))
    counts;
  {
    column;
    distinct = !distinct;
    nulls = !nulls;
    most_common = !best;
    dict_entries = Dict.size dict;
  }

let profile tbl =
  let schema = Table.schema tbl in
  let per_column =
    List.mapi (fun i c -> column_stats tbl i c) (Schema.columns schema)
  in
  let rows = Table.cardinality tbl in
  let columns = Schema.arity schema in
  {
    table = Table.name tbl;
    rows;
    columns;
    null_cells = List.fold_left (fun acc c -> acc + c.nulls) 0 per_column;
    total_cells = rows * columns;
    per_column;
    storage_bytes = Table.storage_bytes tbl;
    dict_hit_rate = Table.dict_hit_rate tbl;
  }

let column_sparsity p c =
  if p.rows = 0 then 0. else float_of_int c.nulls /. float_of_int p.rows

let to_json p =
  Obs.Json.Obj
    [
      "schema", Obs.Json.Str "asura-stats/1";
      "table", Obs.Json.Str p.table;
      "rows", Obs.Json.Int p.rows;
      "columns", Obs.Json.Int p.columns;
      "null_cells", Obs.Json.Int p.null_cells;
      "total_cells", Obs.Json.Int p.total_cells;
      "sparsity", Obs.Json.Float (sparsity p);
      "storage_bytes", Obs.Json.Int p.storage_bytes;
      "dict_hit_rate", Obs.Json.Float p.dict_hit_rate;
      ( "per_column",
        Obs.Json.List
          (List.map
             (fun c ->
               Obs.Json.Obj
                 ([
                    "column", Obs.Json.Str c.column;
                    "distinct", Obs.Json.Int c.distinct;
                    "nulls", Obs.Json.Int c.nulls;
                    "dict_entries", Obs.Json.Int c.dict_entries;
                  ]
                 @
                 match c.most_common with
                 | None -> []
                 | Some (v, n) ->
                     [
                       "mode", Obs.Json.Str (Value.to_string v);
                       "mode_count", Obs.Json.Int n;
                     ]))
             p.per_column) );
    ]

let to_string p =
  let buf = Buffer.create 512 in
  Printf.ksprintf (Buffer.add_string buf)
    "%s: %d rows x %d columns, %.0f%% of cells are NULL\n" p.table p.rows
    p.columns
    (100. *. sparsity p);
  Printf.ksprintf (Buffer.add_string buf)
    "storage: %s columnar (dictionary hit rate %.0f%%)\n"
    (Obs.Json.human_bytes p.storage_bytes)
    (100. *. p.dict_hit_rate);
  List.iter
    (fun c ->
      Printf.ksprintf (Buffer.add_string buf)
        "  %-12s %4d distinct, %5d null (%3.0f%% sparse), dict %3d%s\n"
        c.column c.distinct c.nulls
        (100. *. column_sparsity p c)
        c.dict_entries
        (match c.most_common with
        | Some (v, n) ->
            Printf.sprintf ", mode %s (%d, %.0f%% of rows)"
              (Value.to_string v) n
              (if p.rows = 0 then 0.
               else 100. *. float_of_int n /. float_of_int p.rows)
        | None -> ""))
    p.per_column;
  Buffer.contents buf
