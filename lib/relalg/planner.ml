(* Cost-based planning: annotate a logical {!Plan.t} with cardinality
   estimates from per-column dictionary sizes and table row counts, pick
   physical operators (hash-join build side, top-k instead of
   sort-then-limit), and execute through the vectorized {!Batch} layer.
   The row-at-a-time {!Ops} path stays behind as the reference engine:
   [ASURA_PLANNER=off] disables planning globally, and lineage tracking
   disables it implicitly because batches carry no provenance. *)

let enabled () =
  match Sys.getenv_opt "ASURA_PLANNER" with
  | Some ("off" | "0" | "false" | "OFF") -> false
  | _ -> true

let active () = enabled () && not (Lineage.tracking ())

(* ASURA_PLAN_BUILD=left|right overrides the hash-join build-side choice
   everywhere (annotation and the programmatic [equi_join]).  This is
   the deterministic "planted plan regression" knob: the structural
   fingerprint covers the build side, so flipping it is exactly what
   `asura plan diff --strict` and the CI plan gate must catch.  Read
   dynamically, like ASURA_PLANNER. *)
let forced_build_side () =
  match Sys.getenv_opt "ASURA_PLAN_BUILD" with
  | Some ("left" | "LEFT" | "l") -> Some true
  | Some ("right" | "RIGHT" | "r") -> Some false
  | _ -> None

let choose_build_side ~auto =
  match forced_build_side () with Some b -> b | None -> auto

(* ------------------------- annotated plans ---------------------------- *)

type keys = (string * [ `Asc | `Desc ]) list

type op =
  | Scan of string
  | Filter of Expr.t
  | Project of string list
  | Distinct
  | Sort of keys
  | Topk of int * keys
  | Limit of int
  | Hash_join of { on : (string * string) list; build_left : bool }
  | Union
  | Except
  | Intersect
  | Count
  | Group of string list
  | Nothing of string list

type t = {
  op : op;
  est : float;  (* estimated output rows *)
  cost : float;  (* cumulative cost estimate, in abstract row-touches *)
  mutable actual : int;  (* output rows observed by execution; -1 before *)
  mutable ns : int64;  (* wall time at this node, inclusive of children *)
  mutable batches : int;  (* batches pulled through (streaming nodes) *)
  children : t list;
}

(* --------------------------- statistics ------------------------------- *)

(* Estimated row count plus per-column number of distinct values.  Base
   ndv comes straight from the columnar storage: every column's
   dictionary size is an exact distinct count of the values ever
   interned, capped by the current cardinality. *)
type stats = { rows : float; cols : string list; ndv : (string * float) list }

let ndv_of st c =
  match List.assoc_opt c st.ndv with
  | Some n -> max 1. n
  | None -> max 1. (min st.rows 16.)

(* Cap every ndv by a new (smaller) row estimate. *)
let restrict st rows =
  let rows = max 0. rows in
  { st with rows; ndv = List.map (fun (c, n) -> (c, min n (max 1. rows))) st.ndv }

let table_stats t =
  let rows = float_of_int (Table.cardinality t) in
  let cols = Schema.columns (Table.schema t) in
  let ndv =
    List.mapi
      (fun j c -> (c, min (max 1. rows) (float_of_int (Dict.size (Table.dict t j)))))
      cols
  in
  { rows; cols; ndv }

let scan_stats db name = table_stats (Database.find db name)

(* Textbook selectivities over dictionary ndv: equality selects 1/ndv,
   range predicates a third, IN k values k/ndv, registered functions an
   uninformed half; connectives assume independence. *)
let rec selectivity st (e : Expr.t) =
  match e with
  | Expr.True -> 1.
  | Expr.False -> 0.
  | Expr.Eq (Expr.Col c, Expr.Const _) | Expr.Eq (Expr.Const _, Expr.Col c) ->
      1. /. ndv_of st c
  | Expr.Eq (Expr.Col a, Expr.Col b) -> 1. /. max (ndv_of st a) (ndv_of st b)
  | Expr.Eq (Expr.Const _, Expr.Const _) -> 0.5
  | Expr.Neq (a, b) -> 1. -. selectivity st (Expr.Eq (a, b))
  | Expr.Cmp _ -> 1. /. 3.
  | Expr.In (Expr.Col c, vs) ->
      min 1. (float_of_int (List.length vs) /. ndv_of st c)
  | Expr.In _ -> 0.5
  | Expr.Fn _ -> 0.5
  | Expr.And (a, b) -> selectivity st a *. selectivity st b
  | Expr.Or (a, b) ->
      let sa = selectivity st a and sb = selectivity st b in
      sa +. sb -. (sa *. sb)
  | Expr.Not a -> 1. -. selectivity st a
  | Expr.Ternary (c, a, b) ->
      let sc = selectivity st c in
      (sc *. selectivity st a) +. ((1. -. sc) *. selectivity st b)

(* Estimated distinct rows over [cols]: product of per-column ndv,
   capped by the row count. *)
let distinct_est st cols =
  min st.rows (List.fold_left (fun acc c -> acc *. ndv_of st c) 1. cols)

let nlogn n = n *. (log (max 2. n) /. log 2.)

(* ------------------------ planner rewrites ---------------------------- *)

(* Output columns of a plan, resolving bare scans against the database
   (unlike {!Plan.schema_hint}, which is database-free). *)
let rec plan_cols db (p : Plan.t) =
  match p with
  | Plan.Scan name -> (
      match Database.find_opt db name with
      | Some t -> Some (Schema.columns (Table.schema t))
      | None -> None)
  | Plan.Project (cols, _) | Plan.Empty cols -> Some cols
  | Plan.Select (_, p) | Plan.Distinct p | Plan.Sort (_, p) | Plan.Limit (_, p)
    ->
      plan_cols db p
  | Plan.Union (a, b) | Plan.Except (a, b) | Plan.Intersect (a, b) -> (
      match plan_cols db a with Some c -> Some c | None -> plan_cols db b)
  | Plan.Count _ -> Some [ "count" ]
  | Plan.Group_count (cols, _) -> Some (cols @ [ "count" ])
  | Plan.Join (on, a, b) -> (
      match (plan_cols db a, plan_cols db b) with
      | Some ca, Some cb ->
          let keys = List.map snd on in
          Some (ca @ List.filter (fun c -> not (List.mem c keys)) cb)
      | _ -> None)

let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Push a selection's conjuncts below a join into whichever side covers
   their free columns.  A join emits pairs in left-major order, so
   filtering a side before joining yields exactly the surviving pairs in
   the same relative order as filtering after — the rewrite is
   order-preserving, not just multiset-preserving.  {!Plan.rewrite}
   leaves this case alone because it cannot resolve scan schemas. *)
let rec push_into_joins db (p : Plan.t) : Plan.t =
  match p with
  | Plan.Scan _ | Plan.Empty _ -> p
  | Plan.Select (e, inner) -> (
      match push_into_joins db inner with
      | Plan.Join (on, a, b) as j -> (
          match (plan_cols db a, plan_cols db b) with
          | Some ca, Some cb ->
              let keys = List.map snd on in
              let kept_b = List.filter (fun c -> not (List.mem c keys)) cb in
              let la, lb, above =
                List.fold_left
                  (fun (la, lb, above) c ->
                    let free = Expr.free_columns c in
                    if List.for_all (fun x -> List.mem x ca) free then
                      (c :: la, lb, above)
                    else if List.for_all (fun x -> List.mem x kept_b) free then
                      (la, c :: lb, above)
                    else (la, lb, c :: above))
                  ([], [], []) (conjuncts e)
              in
              let wrap side = function
                | [] -> side
                | es -> push_into_joins db (Plan.Select (Expr.conj (List.rev es), side))
              in
              let j = Plan.Join (on, wrap a la, wrap b lb) in
              (match above with
              | [] -> j
              | es -> Plan.Select (Expr.conj (List.rev es), j))
          | _ -> Plan.Select (e, j))
      | inner -> Plan.Select (e, inner))
  | Plan.Project (cols, inner) -> Plan.Project (cols, push_into_joins db inner)
  | Plan.Distinct inner -> Plan.Distinct (push_into_joins db inner)
  | Plan.Sort (keys, inner) -> Plan.Sort (keys, push_into_joins db inner)
  | Plan.Limit (n, inner) -> Plan.Limit (n, push_into_joins db inner)
  | Plan.Count inner -> Plan.Count (push_into_joins db inner)
  | Plan.Group_count (cols, inner) ->
      Plan.Group_count (cols, push_into_joins db inner)
  | Plan.Union (a, b) -> Plan.Union (push_into_joins db a, push_into_joins db b)
  | Plan.Except (a, b) ->
      Plan.Except (push_into_joins db a, push_into_joins db b)
  | Plan.Intersect (a, b) ->
      Plan.Intersect (push_into_joins db a, push_into_joins db b)
  | Plan.Join (on, a, b) ->
      Plan.Join (on, push_into_joins db a, push_into_joins db b)

(* ---------------------------- annotation ------------------------------ *)

let node op est cost children =
  { op; est; cost; actual = -1; ns = 0L; batches = 0; children }

let rec annotate db (p : Plan.t) : t * stats =
  match p with
  | Plan.Scan name ->
      let st = scan_stats db name in
      (node (Scan name) st.rows st.rows [], st)
  | Plan.Select (e, inner) ->
      let c, st = annotate db inner in
      let rows = st.rows *. selectivity st (Plan.simplify_predicate e) in
      (node (Filter e) rows (c.cost +. st.rows) [ c ], restrict st rows)
  | Plan.Project (cols, inner) ->
      let c, st = annotate db inner in
      let st =
        { st with cols; ndv = List.filter (fun (c, _) -> List.mem c cols) st.ndv }
      in
      (* zero-copy column aliasing: no per-row cost *)
      (node (Project cols) st.rows c.cost [ c ], st)
  | Plan.Distinct inner ->
      let c, st = annotate db inner in
      let rows = distinct_est st st.cols in
      (node Distinct rows (c.cost +. st.rows) [ c ], restrict st rows)
  (* LIMIT over ORDER BY (with or without an intervening projection,
     which preserves order) is a top-k: keep a bounded buffer of the k
     least rows instead of sorting everything. *)
  | Plan.Limit (n, Plan.Sort (keys, inner)) ->
      let c, st = annotate db inner in
      let rows = min st.rows (float_of_int n) in
      ( node (Topk (n, keys))
          rows
          (c.cost +. (st.rows *. (log (max 2. (float_of_int n)) /. log 2.)))
          [ c ],
        restrict st rows )
  | Plan.Limit (n, Plan.Project (cols, Plan.Sort (keys, inner))) ->
      let topk, st = annotate db (Plan.Limit (n, Plan.Sort (keys, inner))) in
      let st =
        { st with cols; ndv = List.filter (fun (c, _) -> List.mem c cols) st.ndv }
      in
      (node (Project cols) st.rows topk.cost [ topk ], st)
  | Plan.Sort (keys, inner) ->
      let c, st = annotate db inner in
      (node (Sort keys) st.rows (c.cost +. nlogn st.rows) [ c ], st)
  | Plan.Limit (n, inner) ->
      let c, st = annotate db inner in
      let rows = min st.rows (float_of_int n) in
      (node (Limit n) rows (c.cost +. rows) [ c ], restrict st rows)
  | Plan.Count inner ->
      let c, st = annotate db inner in
      ( node Count 1. (c.cost +. st.rows) [ c ],
        { rows = 1.; cols = [ "count" ]; ndv = [ ("count", 1.) ] } )
  | Plan.Group_count (cols, inner) ->
      let c, st = annotate db inner in
      let rows = distinct_est st cols in
      let ndv =
        List.map (fun g -> (g, min rows (ndv_of st g))) cols
        @ [ ("count", rows) ]
      in
      ( node (Group cols) rows (c.cost +. st.rows) [ c ],
        { rows; cols = cols @ [ "count" ]; ndv } )
  | Plan.Join (on, a, b) ->
      let ca, sta = annotate db a and cb, stb = annotate db b in
      let key_sel =
        List.fold_left
          (fun acc (l, r) -> acc /. max (ndv_of sta l) (ndv_of stb r))
          1. on
      in
      let rows = sta.rows *. stb.rows *. key_sel in
      (* build the hash index on the estimated-smaller side, unless
         ASURA_PLAN_BUILD forces a side *)
      let build_left = choose_build_side ~auto:(sta.rows <= stb.rows) in
      let keys = List.map snd on in
      let kept_b = List.filter (fun c -> not (List.mem c keys)) stb.cols in
      let ndv =
        List.map (fun (c, n) -> (c, min n (max 1. rows))) sta.ndv
        @ List.filter_map
            (fun (c, n) ->
              if List.mem c kept_b then Some (c, min n (max 1. rows)) else None)
            stb.ndv
      in
      ( node
          (Hash_join { on; build_left })
          rows
          (ca.cost +. cb.cost +. sta.rows +. stb.rows +. rows)
          [ ca; cb ],
        { rows; cols = sta.cols @ kept_b; ndv } )
  | Plan.Union (a, b) ->
      let ca, sta = annotate db a and cb, stb = annotate db b in
      let merged =
        {
          rows = sta.rows +. stb.rows;
          cols = sta.cols;
          ndv = List.map (fun (c, n) -> (c, max n (ndv_of stb c))) sta.ndv;
        }
      in
      let rows = distinct_est merged merged.cols in
      ( node Union rows (ca.cost +. cb.cost +. merged.rows) [ ca; cb ],
        restrict merged rows )
  | Plan.Except (a, b) ->
      let ca, sta = annotate db a and cb, stb = annotate db b in
      let rows = distinct_est sta sta.cols *. 0.5 in
      ( node Except rows (ca.cost +. cb.cost +. sta.rows +. stb.rows) [ ca; cb ],
        restrict sta rows )
  | Plan.Intersect (a, b) ->
      let ca, sta = annotate db a and cb, stb = annotate db b in
      let rows = min (distinct_est sta sta.cols) (distinct_est stb stb.cols) *. 0.5 in
      ( node Intersect rows
          (ca.cost +. cb.cost +. sta.rows +. stb.rows)
          [ ca; cb ],
        restrict sta rows )
  | Plan.Empty cols ->
      ( node (Nothing cols) 0. 0. [],
        { rows = 0.; cols; ndv = List.map (fun c -> (c, 1.)) cols } )

let plan db (p : Plan.t) : t =
  fst (annotate db (push_into_joins db (Plan.optimize p)))

(* ---------------------------- fingerprint ----------------------------- *)

(* Canonical per-node strings hashed into the structural plan
   fingerprint.  Column references are rewritten to positional indices
   into the node's input columns, so renaming columns leaves the
   fingerprint unchanged; a filter's conjuncts are canonicalized
   individually and sorted, so predicate order doesn't matter; build
   side, top-k recognition and pushdown placement all appear in the
   node strings, so every physical decision does. *)

let index_of c cols =
  let rec go i = function
    | [] -> None
    | x :: _ when String.equal x c -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 cols

let col_ref cols c =
  match index_of c cols with
  | Some i -> "#" ^ string_of_int i
  | None -> c (* unresolvable column: keep the name, still deterministic *)

let canon_operand cols = function
  | Expr.Col c -> col_ref cols c
  | Expr.Const v -> Value.to_sql v

(* Equality and inequality are commutative: normalize by sorting the
   rendered operands, so [a = b] and [b = a] fingerprint identically. *)
let rec canon_expr cols (e : Expr.t) =
  let opnd = canon_operand cols in
  let commut tag a b =
    let a = opnd a and b = opnd b in
    let a, b = if String.compare a b <= 0 then (a, b) else (b, a) in
    Printf.sprintf "%s(%s,%s)" tag a b
  in
  match e with
  | Expr.True -> "t"
  | Expr.False -> "f"
  | Expr.Eq (a, b) -> commut "eq" a b
  | Expr.Neq (a, b) -> commut "ne" a b
  | Expr.Cmp (c, a, b) ->
      Printf.sprintf "%s(%s,%s)" (Expr.cmp_to_string c) (opnd a) (opnd b)
  | Expr.In (a, vs) ->
      Printf.sprintf "in(%s,[%s])" (opnd a)
        (String.concat ";" (List.sort compare (List.map Value.to_sql vs)))
  | Expr.Fn (f, a) -> Printf.sprintf "fn:%s(%s)" f (opnd a)
  | Expr.And (a, b) -> conj_string cols (Expr.And (a, b))
  | Expr.Or (a, b) ->
      Printf.sprintf "or(%s)"
        (String.concat ","
           (List.sort compare [ canon_expr cols a; canon_expr cols b ]))
  | Expr.Not a -> Printf.sprintf "not(%s)" (canon_expr cols a)
  | Expr.Ternary (c, a, b) ->
      Printf.sprintf "if(%s,%s,%s)" (canon_expr cols c) (canon_expr cols a)
        (canon_expr cols b)

(* Flattened conjunct list, canonicalized then sorted: AND is
   commutative and associative, and [push_into_joins] already reorders
   conjuncts freely. *)
and conj_string cols e =
  match conjuncts e with
  | [ single ] -> canon_expr cols single
  | cs ->
      Printf.sprintf "and(%s)"
        (String.concat "," (List.sort compare (List.map (canon_expr cols) cs)))

let canon_keys cols keys =
  String.concat ","
    (List.map
       (fun (c, d) ->
         col_ref cols c ^ match d with `Asc -> "" | `Desc -> " desc")
       keys)

(* Pre-order canonical strings plus the node's output columns.  The scan
   schema comes through [lookup] so programmatic plans (whose inputs are
   tables, not database names) fingerprint with the same machinery. *)
let rec canon lookup n =
  let child () =
    match n.children with
    | [ c ] -> canon lookup c
    | _ -> invalid_arg "Planner.canon: arity"
  in
  let two () =
    match n.children with
    | [ a; b ] -> (canon lookup a, canon lookup b)
    | _ -> invalid_arg "Planner.canon: arity"
  in
  match n.op with
  | Scan name ->
      ([ "scan:" ^ name ], Option.value ~default:[] (lookup name))
  | Filter e ->
      let parts, cols = child () in
      (("filter:" ^ conj_string cols e) :: parts, cols)
  | Project cs ->
      let parts, cols = child () in
      ( Printf.sprintf "project:[%s]"
          (String.concat "," (List.map (col_ref cols) cs))
        :: parts,
        cs )
  | Distinct ->
      let parts, cols = child () in
      ("distinct" :: parts, cols)
  | Sort keys ->
      let parts, cols = child () in
      (Printf.sprintf "sort:[%s]" (canon_keys cols keys) :: parts, cols)
  | Topk (k, keys) ->
      let parts, cols = child () in
      ( Printf.sprintf "topk:%d:[%s]" k (canon_keys cols keys) :: parts,
        cols )
  | Limit k ->
      let parts, cols = child () in
      (Printf.sprintf "limit:%d" k :: parts, cols)
  | Hash_join { on; build_left } ->
      let (pa, ca), (pb, cb) = two () in
      let keys = List.map snd on in
      let out = ca @ List.filter (fun c -> not (List.mem c keys)) cb in
      ( Printf.sprintf "hashjoin:[%s]:build=%s"
          (String.concat ","
             (List.map
                (fun (l, r) -> col_ref ca l ^ "=" ^ col_ref cb r)
                on))
          (if build_left then "L" else "R")
        :: (pa @ pb),
        out )
  | Union ->
      let (pa, ca), (pb, _) = two () in
      (("union" :: pa) @ pb, ca)
  | Except ->
      let (pa, ca), (pb, _) = two () in
      (("except" :: pa) @ pb, ca)
  | Intersect ->
      let (pa, ca), (pb, _) = two () in
      (("intersect" :: pa) @ pb, ca)
  | Count ->
      let parts, _ = child () in
      ("count" :: parts, [ "count" ])
  | Group cs ->
      let parts, cols = child () in
      ( Printf.sprintf "group:[%s]"
          (String.concat "," (List.map (col_ref cols) cs))
        :: parts,
        cs @ [ "count" ] )
  | Nothing cs ->
      ([ Printf.sprintf "empty:%d" (List.length cs) ], cs)

let fingerprint_with lookup root = Obs.Planlog.fingerprint (fst (canon lookup root))

let db_lookup db name =
  Option.map
    (fun t -> Schema.columns (Table.schema t))
    (Database.find_opt db name)

let fingerprint db root = fingerprint_with (db_lookup db) root

(* ---------------------------- execution ------------------------------- *)

(* Streaming nodes compose {!Batch} sources, tapped so [actual] counts
   accumulate per operator and timed per pull so [ns]/[batches] fill in;
   blocking nodes materialize tables (their [actual] is the result
   cardinality, their [ns] the wall time of the whole materialization)
   and re-enter the stream via {!Batch.of_table}.  All [ns] figures are
   inclusive of children, matching the plan-observatory convention. *)
let timed n (src : Batch.source) =
  Batch.timed
    (fun ns b ->
      n.ns <- Int64.add n.ns ns;
      if b >= 0 then n.batches <- n.batches + 1)
    src

let rec source_of db (n : t) : Batch.source =
  match (n.op, n.children) with
  | Scan name, [] ->
      let t = Database.find db name in
      n.actual <- Table.cardinality t;
      timed n (Batch.of_table t)
  | Filter e, [ c ] ->
      n.actual <- 0;
      timed n
        (Batch.tap
           (fun b -> n.actual <- n.actual + b)
           (Batch.select ~funcs:(Database.functions db) e (source_of db c)))
  | Project cols, [ c ] ->
      n.actual <- 0;
      timed n
        (Batch.tap
           (fun b -> n.actual <- n.actual + b)
           (Batch.project cols (source_of db c)))
  | Limit k, [ c ] ->
      n.actual <- 0;
      timed n
        (Batch.tap
           (fun b -> n.actual <- n.actual + b)
           (Batch.limit k (source_of db c)))
  | _ -> Batch.of_table (execute db n)

and execute db (n : t) : Table.t =
  let t0 = Obs.Clock.now_ns () in
  let record t =
    n.actual <- Table.cardinality t;
    n.ns <- Obs.Clock.since t0;
    t
  in
  match (n.op, n.children) with
  | Scan name, [] -> record (Database.find db name)
  | (Filter _ | Project _ | Limit _), _ ->
      (* a streaming chain asked to produce a table: drain it *)
      Batch.to_table ~name:"<batch>" (source_of db n)
  | Distinct, [ c ] ->
      record (Batch.distinct_table ~name:"<distinct>" (source_of db c))
  | Sort keys, [ c ] ->
      record (Batch.sort_table ~name:"<sort>" keys (source_of db c))
  | Topk (k, keys), [ c ] ->
      record (Batch.topk_table ~name:"<topk>" k keys (source_of db c))
  | Group cols, [ ({ op = Scan name; _ } as c) ] ->
      (* projection pushdown into the scan: grouping only reads the key
         columns, so don't stream the table's full arity *)
      let t = Database.find db name in
      c.actual <- Table.cardinality t;
      record (Batch.group_table ~by:cols (Batch.of_table (Ops.project cols t)))
  | Group cols, [ c ] -> record (Batch.group_table ~by:cols (source_of db c))
  | Count, [ c ] ->
      record
        (Table.of_rows ~name:"<count>"
           (Schema.of_list [ "count" ])
           [ [| Value.Int (Batch.count (source_of db c)) |] ])
  | Hash_join { on; build_left }, [ a; b ] ->
      record (Batch.join_tables ~build_left ~on (execute db a) (execute db b))
  (* set operators delegate to the reference implementations for their
     exact dictionary-sharing and first-occurrence semantics; both
     inputs are already vectorized upstream *)
  | Union, [ a; b ] -> record (Ops.union (execute db a) (execute db b))
  | Except, [ a; b ] -> record (Ops.except (execute db a) (execute db b))
  | Intersect, [ a; b ] -> record (Ops.intersect (execute db a) (execute db b))
  | Nothing cols, [] ->
      record (Table.create ~name:"<empty>" (Schema.of_list cols))
  | _ -> invalid_arg "Planner.execute: malformed plan"

(* --------------------------- rendering -------------------------------- *)

let op_string = function
  | Scan name -> "seq scan " ^ name
  | Filter e -> Format.asprintf "filter %a" Expr.pp e
  | Project cols -> Printf.sprintf "project [%s]" (String.concat ", " cols)
  | Distinct -> "distinct"
  | Sort keys | Topk (_, keys) as op ->
      let ks =
        String.concat ", "
          (List.map
             (fun (c, d) -> c ^ match d with `Asc -> "" | `Desc -> " desc")
             keys)
      in
      (match op with
      | Topk (k, _) -> Printf.sprintf "top-k %d [%s]" k ks
      | _ -> Printf.sprintf "sort [%s]" ks)
  | Limit n -> Printf.sprintf "limit %d" n
  | Hash_join { on; build_left } ->
      Printf.sprintf "hash join [%s] (build=%s)"
        (String.concat ", "
           (List.map (fun (l, r) -> Printf.sprintf "%s=%s" l r) on))
        (if build_left then "left" else "right")
  | Union -> "union"
  | Except -> "except"
  | Intersect -> "intersect"
  | Count -> "count"
  | Group cols ->
      Printf.sprintf "group count by [%s]" (String.concat ", " cols)
  | Nothing cols -> Printf.sprintf "empty [%s]" (String.concat ", " cols)

let render root =
  let buf = Buffer.create 256 in
  let rec go indent n =
    Printf.ksprintf (Buffer.add_string buf) "%s%-*s est=%-9.0f %s cost=%.0f\n"
      (String.make indent ' ')
      (max 1 (40 - indent))
      (op_string n.op) n.est
      (if n.actual < 0 then "actual=-     "
       else Printf.sprintf "actual=%-6d" n.actual)
      n.cost;
    List.iter (go (indent + 2)) n.children
  in
  go 0 root;
  Buffer.contents buf

let explain db src =
  render (plan db (Plan.of_query (Sql_parser.parse_query src)))

(* ------------------------- plan observatory --------------------------- *)

(* Pre-order per-operator telemetry handed to the {!Obs.Planlog}
   collector; [actual_ns] is inclusive of children, as measured. *)
let rec planlog_ops n =
  {
    Obs.Planlog.op = op_string n.op;
    est_rows = n.est;
    est_cost = n.cost;
    actual_rows = max 0 n.actual;
    actual_ns = Int64.to_float n.ns;
    batches = n.batches;
  }
  :: List.concat_map planlog_ops n.children

(* The plan-diff key is (site, query), so the label must identify the
   *logical* workload: it deliberately omits physical choices (build
   side) the fingerprint tracks — otherwise a plan change would report
   as removed+added instead of changed. *)
let label_of root =
  match root.op with
  | Hash_join { on; _ } ->
      Printf.sprintf "join [%s]"
        (String.concat ", "
           (List.map (fun (l, r) -> Printf.sprintf "%s=%s" l r) on))
  | op -> op_string op

let observe ?query ~lookup root total_ns rows_out =
  if Obs.Config.on () then
    let query = match query with Some q -> q | None -> label_of root in
    Obs.Planlog.record
      ~fingerprint:(fingerprint_with lookup root)
      ~query ~est_cost:root.cost
      ~total_ns:(Int64.to_float total_ns)
      ~rows_out (planlog_ops root)

let run_annotated ?query db root =
  let t0 = Obs.Clock.now_ns () in
  let t = execute db root in
  observe ?query ~lookup:(db_lookup db) root (Obs.Clock.since t0)
    (Table.cardinality t);
  t

let run_plan db p = run_annotated db (plan db p)

let run_query ?label db (q : Sql_ast.query) =
  let query =
    match label with
    | Some l -> l
    | None -> Format.asprintf "%a" Sql_ast.pp_query q
  in
  Table.with_name "<query>"
    (run_annotated ~query db (plan db (Plan.of_query q)))

(* -------------------------- EXPLAIN ANALYZE --------------------------- *)

type report = {
  table : Table.t;
  root : t;
  total_ns : int64;
  fingerprint : string;
}

let analyze db src =
  Obs.Trace.with_span ~cat:"relalg"
    ~args:[ ("query", Obs.Json.Str src) ]
    "sql.planner_analyze"
  @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let root = plan db (Plan.of_query (Sql_parser.parse_query src)) in
  let table = Table.with_name "<query>" (execute db root) in
  let total_ns = Obs.Clock.since t0 in
  observe ~query:src ~lookup:(db_lookup db) root total_ns
    (Table.cardinality table);
  { table; root; total_ns; fingerprint = fingerprint db root }

let render_report r =
  Printf.sprintf "%stotal: %.3f ms, %d rows\n" (render r.root)
    (Obs.Clock.to_ms r.total_ns)
    (Table.cardinality r.table)

(* Per-node misestimation: symmetric 1-smoothed ratio between estimated
   and actual output rows (>= 1.0; 1.0 = perfect), same definition as
   {!Obs.Planlog.misest} applies per operator. *)
let node_misest n =
  let actual = float_of_int (max 0 n.actual) in
  let est = max 0. n.est in
  (max actual est +. 1.) /. (min actual est +. 1.)

let rec node_to_json n =
  Obs.Json.Obj
    [
      ("op", Obs.Json.Str (op_string n.op));
      ("est_rows", Obs.Json.Float n.est);
      ("actual_rows", Obs.Json.Int n.actual);
      ("misest", Obs.Json.Float (node_misest n));
      ("cost", Obs.Json.Float n.cost);
      ("actual_ms", Obs.Json.Float (Int64.to_float n.ns /. 1e6));
      ("batches", Obs.Json.Int n.batches);
      ("children", Obs.Json.List (List.map node_to_json n.children));
    ]

(* asura-explain/2 = asura-explain/1 plus the top-level "fingerprint"
   and per-node "misest"/"actual_ms"/"batches" members; every /1 member
   is retained unchanged (compat note in DESIGN.md §12). *)
let to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "asura-explain/2");
      ("fingerprint", Obs.Json.Str r.fingerprint);
      ("rows", Obs.Json.Int (Table.cardinality r.table));
      ("total_ns", Obs.Json.Float (Int64.to_float r.total_ns));
      ("physical", Obs.Json.Str (render r.root));
      ("plan", node_to_json r.root);
    ]

(* ----------------------- programmatic operators ----------------------- *)

(* Direct entry points for consumers that build operator chains in code
   (solver, checkers, bench) rather than through SQL: vectorized when
   the planner is on and inputs are lineage-free, reference otherwise.
   [Batch.join_tables] double-checks lineage itself.

   Each vectorized path reports to the plan observatory through a small
   synthetic annotated tree — scan children under the one real operator
   — built with the same estimators annotation uses, so sys.plans shows
   est-vs-actual for programmatic plans exactly like SQL ones.  All of
   that is gated on {!Obs.Config.on}: an uninstrumented run pays two
   clock reads per call and nothing else. *)

(* Fingerprint scans of a synthetic tree against the input tables. *)
let tables_lookup tables name =
  List.find_map
    (fun t ->
      if String.equal (Table.name t) name then
        Some (Schema.columns (Table.schema t))
      else None)
    tables

let observe_tables root total_ns out tables =
  if Obs.Config.on () then begin
    root.actual <- Table.cardinality out;
    root.ns <- total_ns;
    observe ~lookup:(tables_lookup tables) root total_ns
      (Table.cardinality out)
  end

let scan_node t st =
  let n = node (Scan (Table.name t)) st.rows st.rows [] in
  n.actual <- Table.cardinality t;
  n

let equi_join ~on ta tb =
  if enabled () then begin
    let na = Table.cardinality ta and nb = Table.cardinality tb in
    (* same <= tie-break annotation uses, overridable for plan-gate
       regression drills *)
    let build_left = choose_build_side ~auto:(na <= nb) in
    let t0 = Obs.Clock.now_ns () in
    let out = Batch.join_tables ~build_left ~on ta tb in
    let total = Obs.Clock.since t0 in
    if Obs.Config.on () then begin
      let sta = table_stats ta and stb = table_stats tb in
      let key_sel =
        List.fold_left
          (fun acc (l, r) -> acc /. max (ndv_of sta l) (ndv_of stb r))
          1. on
      in
      let rows = sta.rows *. stb.rows *. key_sel in
      let ca = scan_node ta sta and cb = scan_node tb stb in
      let root =
        node
          (Hash_join { on; build_left })
          rows
          (ca.cost +. cb.cost +. sta.rows +. stb.rows +. rows)
          [ ca; cb ]
      in
      observe_tables root total out [ ta; tb ]
    end;
    out
  end
  else Ops.equi_join ~on ta tb

let lineage_free t = Table.lineage t = None

let select ?funcs e t =
  if active () && lineage_free t then begin
    let t0 = Obs.Clock.now_ns () in
    let out =
      Batch.to_table ~name:(Table.name t)
        (Batch.select ?funcs e (Batch.of_table t))
    in
    let total = Obs.Clock.since t0 in
    if Obs.Config.on () then begin
      let st = table_stats t in
      let rows = st.rows *. selectivity st (Plan.simplify_predicate e) in
      let c = scan_node t st in
      let root = node (Filter e) rows (c.cost +. st.rows) [ c ] in
      observe_tables root total out [ t ]
    end;
    out
  end
  else Ops.select ?funcs e t

let group_count ~by t =
  if active () && lineage_free t then begin
    let t0 = Obs.Clock.now_ns () in
    (* project before scanning so the stream only reads the grouping
       columns, not the table's full arity *)
    let out = Batch.group_table ~by (Batch.of_table (Ops.project by t)) in
    let total = Obs.Clock.since t0 in
    if Obs.Config.on () then begin
      let st = table_stats t in
      let rows = distinct_est st by in
      let c = scan_node t st in
      let root = node (Group by) rows (c.cost +. st.rows) [ c ] in
      observe_tables root total out [ t ]
    end;
    out
  end
  else
    Table.of_rows ~name:"<group>"
      (Schema.of_list (by @ [ "count" ]))
      (List.map
         (fun (key, n) -> Array.append key [| Value.Int n |])
         (Ops.group_count ~by t))

let distinct t =
  if active () && lineage_free t then begin
    let t0 = Obs.Clock.now_ns () in
    let out = Batch.distinct_table ~name:(Table.name t) (Batch.of_table t) in
    let total = Obs.Clock.since t0 in
    if Obs.Config.on () then begin
      let st = table_stats t in
      let rows = distinct_est st st.cols in
      let c = scan_node t st in
      let root = node Distinct rows (c.cost +. st.rows) [ c ] in
      observe_tables root total out [ t ]
    end;
    out
  end
  else Table.distinct t
