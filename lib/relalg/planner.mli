(** Cost-based query planning over the vectorized {!Batch} layer.

    The planner annotates an optimized logical {!Plan.t} with cardinality
    estimates — per-column dictionary sizes are exact distinct counts in
    the columnar engine, so selectivity estimation is unusually well
    informed — then picks physical operators: hash-join build side by
    estimated input size, [LIMIT]-over-[ORDER BY] as a bounded top-k,
    selections pushed below joins into whichever side covers their
    columns.  Execution streams batches of dictionary codes through
    {!Batch} and records actual per-operator cardinalities, so
    [EXPLAIN --analyze] can show estimated vs. actual rows for every
    operator.

    The row-at-a-time {!Ops} path remains the reference engine:
    differential tests compare the two, [ASURA_PLANNER=off] turns
    planning off globally, and lineage tracking falls back implicitly
    (batches carry no provenance, so [why] narratives always come from
    the reference path). *)

val enabled : unit -> bool
(** [ASURA_PLANNER] is not set to [off]/[0]/[false] (read dynamically). *)

val active : unit -> bool
(** {!enabled} and lineage tracking is off. *)

val forced_build_side : unit -> bool option
(** [ASURA_PLAN_BUILD=left|right] overrides every hash-join build-side
    choice (read dynamically); [Some true] means build-left.  The
    deterministic "planted plan regression" knob the plan gate drills
    with: the structural fingerprint covers the build side, so forcing
    the non-chosen side is exactly what [asura plan diff --strict] must
    catch. *)

type keys = (string * [ `Asc | `Desc ]) list

type op =
  | Scan of string
  | Filter of Expr.t
  | Project of string list
  | Distinct
  | Sort of keys
  | Topk of int * keys  (** first [k] of the stable sort, bounded buffer *)
  | Limit of int
  | Hash_join of { on : (string * string) list; build_left : bool }
  | Union
  | Except
  | Intersect
  | Count
  | Group of string list
  | Nothing of string list  (** provably empty *)

type t = {
  op : op;
  est : float;  (** estimated output rows *)
  cost : float;  (** cumulative cost estimate (abstract row-touches) *)
  mutable actual : int;  (** rows observed by execution; [-1] before *)
  mutable ns : int64;
      (** wall time observed at this node, inclusive of children *)
  mutable batches : int;  (** batches pulled through (streaming nodes) *)
  children : t list;
}

val plan : Database.t -> Plan.t -> t
(** Optimize ({!Plan.optimize} + join pushdown), then annotate with
    estimates and physical choices.
    @raise Database.Unknown_table for unresolvable scans. *)

val fingerprint : Database.t -> t -> string
(** Structural plan fingerprint (16 hex chars, {!Obs.Planlog.fingerprint}
    over canonical node strings).  Invariant under conjunct reordering
    and column renaming (column references canonicalize to positional
    indices); sensitive to operator shape, hash-join build side,
    pushdown placement and top-k recognition.  Stable across processes,
    so safe to persist in manifests and committed baselines. *)

val execute : Database.t -> t -> Table.t
(** Run the annotated plan through {!Batch}, filling [actual], [ns] and
    [batches] fields. *)

val run_plan : Database.t -> Plan.t -> Table.t
val run_query : ?label:string -> Database.t -> Sql_ast.query -> Table.t
(** Plan, execute, and report the execution to the plan observatory
    ({!Obs.Planlog}) under [label] (default: the query pretty-printed);
    the result is named ["<query>"] like the reference {!Sql_exec}
    path. *)

val render : t -> string
(** Indented tree with [est]/[actual]/[cost] per operator ([actual=-]
    before execution). *)

val explain : Database.t -> string -> string
(** Plan a query string and render it unexecuted — the [EXPLAIN] (no
    [--analyze]) view with cost estimates. *)

type report = {
  table : Table.t;
  root : t;
  total_ns : int64;
  fingerprint : string;
}

val analyze : Database.t -> string -> report
(** Plan, execute, and time a query string: [EXPLAIN --analyze] with
    estimated vs. actual rows per operator.  Also records the execution
    to the plan observatory under the query text. *)

val render_report : report -> string
val to_json : report -> Obs.Json.t
(** [asura-explain/2]-schema document: every [asura-explain/1] member
    unchanged, plus the top-level ["fingerprint"] and per-node
    ["misest"]/["actual_ms"]/["batches"]. *)

(** {2 Programmatic operators}

    Entry points for consumers that build operator chains in code
    (solver, checkers, bench): vectorized when the planner is active and
    the inputs are lineage-free, reference {!Ops}/{!Table} otherwise. *)

val equi_join : on:(string * string) list -> Table.t -> Table.t -> Table.t
val select : ?funcs:Expr.funcs -> Expr.t -> Table.t -> Table.t
val group_count : by:string list -> Table.t -> Table.t
(** The materialized [by @ ["count"]] table (name ["<group>"]), like the
    SQL layer's GROUP BY result. *)

val distinct : Table.t -> Table.t
