(* Vectorized physical operators.  A [source] is a pull-based stream of
   fixed-size batches of dictionary codes: every operator owns one set of
   output buffers, allocated once, so downstream compiled predicates bind
   to stable arrays and the inner loops are tight int loops with no
   per-row [Value] boxing.  Blocking operators (join build sides, group,
   distinct, sort) drain their input and index rows by *combined integer
   keys* — a dense array when the key domain (product of dictionary
   sizes) is small, open addressing with per-column code comparison
   otherwise — instead of the polymorphic [int array]-keyed hash tables
   of the row-at-a-time reference path in {!Ops}. *)

let batch_rows = 1024

type source = {
  schema : Schema.t;
  dicts : Dict.t array;
  cols : int array array;
      (* stable per-operator buffers; row [i] of the current batch is
         [cols.(j).(i)] for every column [j] *)
  width : int;
      (* max rows a single batch may carry: [batch_rows] for operators
         that re-batch, the full cardinality for borrowed table scans —
         consumers size their gather buffers to this *)
  pull : unit -> int;  (* rows in the next batch; -1 when exhausted *)
}

let schema s = s.schema

(* Scan-copy accounting for sys.plan_ops: whole-column borrows vs the
   bytes the engine still has to materialize (filter gathers, drains). *)
let relalg_metrics = lazy (Obs.Metrics.registry "relalg")

let bytes_borrowed =
  lazy (Obs.Metrics.counter (Lazy.force relalg_metrics) "batch.bytes_borrowed")

let bytes_copied =
  lazy (Obs.Metrics.counter (Lazy.force relalg_metrics) "batch.bytes_copied")

let word_bytes = Sys.word_size / 8

(* ------------------------------ sources ------------------------------ *)

(* A table scan consumes entire stored columns with no selection vector,
   so there is nothing to re-batch: hand out the table's own code
   buffers (immutable by {!Table.codes}' contract) as one full-width
   batch instead of blitting [batch_rows]-sized windows.  Downstream
   operators bind buffers once before the first pull either way. *)
let of_table t =
  let arity = Table.arity t in
  let n = Table.cardinality t in
  let cols = Array.init arity (Table.codes t) in
  let spent = ref false in
  let pull () =
    if !spent then -1
    else begin
      spent := true;
      Obs.Metrics.add (Lazy.force bytes_borrowed) (word_bytes * arity * n);
      n
    end
  in
  {
    schema = Table.schema t;
    dicts = Array.init arity (Table.dict t);
    cols;
    width = max 1 n;
    pull;
  }

(* --------------------------- streaming ops --------------------------- *)

let select ?funcs pred src =
  let arity = Array.length src.cols in
  let check =
    Expr.compile_columns ?funcs src.schema
      ~dict:(fun j -> src.dicts.(j))
      ~codes:(fun j -> src.cols.(j))
      pred
  in
  let out = Array.init arity (fun _ -> Array.make src.width 0) in
  let sel = Array.make src.width 0 in
  let pull () =
    let n = src.pull () in
    if n < 0 then -1
    else begin
      (* selection vector first, then a per-column gather: the classic
         vectorized filter shape *)
      let m = ref 0 in
      for i = 0 to n - 1 do
        if check i then begin
          sel.(!m) <- i;
          incr m
        end
      done;
      let m = !m in
      for j = 0 to arity - 1 do
        let s = src.cols.(j) and d = out.(j) in
        for k = 0 to m - 1 do
          Array.unsafe_set d k (Array.unsafe_get s (Array.unsafe_get sel k))
        done
      done;
      Obs.Metrics.add (Lazy.force bytes_copied) (word_bytes * arity * m);
      m
    end
  in
  { src with cols = out; pull }

let project cols src =
  (* zero-copy: the projected source aliases the parent's buffers *)
  let js = List.map (Schema.index src.schema) cols in
  {
    schema = Schema.project src.schema cols;
    dicts = Array.of_list (List.map (fun j -> src.dicts.(j)) js);
    cols = Array.of_list (List.map (fun j -> src.cols.(j)) js);
    width = src.width;
    pull = src.pull;
  }

let tap f src =
  let pull () =
    let b = src.pull () in
    if b > 0 then f b;
    b
  in
  { src with pull }

let timed f src =
  let pull () =
    let t0 = Obs.Clock.now_ns () in
    let b = src.pull () in
    f (Obs.Clock.since t0) b;
    b
  in
  { src with pull }

let limit n src =
  let remaining = ref n in
  let pull () =
    if !remaining <= 0 then -1
    else
      let b = src.pull () in
      if b < 0 then -1
      else begin
        let k = min b !remaining in
        remaining := !remaining - k;
        k
      end
  in
  { src with pull }

(* ------------------------------ draining ----------------------------- *)

(* Accumulate a whole stream into growable per-column code arrays. *)
let drain src =
  let arity = Array.length src.cols in
  let cap = ref (max batch_rows src.width) in
  let data = ref (Array.init arity (fun _ -> Array.make !cap 0)) in
  let n = ref 0 in
  let rec loop () =
    let b = src.pull () in
    if b >= 0 then begin
      if !n + b > !cap then begin
        let cap' = max (2 * !cap) (!n + b) in
        data :=
          Array.map
            (fun d ->
              let d' = Array.make cap' 0 in
              Array.blit d 0 d' 0 !n;
              d')
            !data;
        cap := cap'
      end;
      Obs.Metrics.add (Lazy.force bytes_copied) (word_bytes * arity * b);
      let dst = !data in
      for j = 0 to arity - 1 do
        Array.blit src.cols.(j) 0 dst.(j) !n b
      done;
      n := !n + b;
      loop ()
    end
  in
  loop ();
  (!data, !n)

let to_table ~name src =
  let data, n = drain src in
  Table.of_columns ~name src.schema ~nrows:n
    (Array.mapi (fun j d -> (src.dicts.(j), d)) data)

let count src =
  let n = ref 0 in
  let rec loop () =
    let b = src.pull () in
    if b >= 0 then begin
      n := !n + b;
      loop ()
    end
  in
  loop ();
  !n

(* ----------------------------- key indexes --------------------------- *)

(* Dense combined keys are only worth a direct-address table while the
   key domain stays small; 1<<16 caps the heads array at 512 KB. *)
let dense_limit = 1 lsl 16

(* Product of the key dictionaries' sizes, or -1 when it exceeds
   [dense_limit] (use the generic open-addressing index instead). *)
let dense_domain dicts =
  Array.fold_left
    (fun acc d ->
      if acc < 0 then -1
      else
        let s = max 1 (Dict.size d) in
        let p = acc * s in
        if p > dense_limit then -1 else p)
    1 dicts

let mix k =
  let h = k * 0x2545F4914F6CDD1 in
  (h lxor (h lsr 29)) land max_int

let rec pow2_at_least n = if n <= 16 then 16 else 2 * pow2_at_least ((n + 1) / 2)

(* Open-addressing set of rows keyed by their code tuple: [slot] holds a
   caller-supplied id per distinct key, resolved by hashing the codes and
   comparing column-by-column.  No boxing, no polymorphic hash. *)
type rowset = {
  mask : int;
  slots : int array;  (* id or -1 *)
  hash_of : int -> int;  (* row -> hash of its code tuple *)
  same_key : int -> int -> bool;  (* candidate row vs stored id *)
}

let make_rowset ~expected ~hash_of ~same_key =
  let cap = pow2_at_least (4 * max 1 expected) in
  { mask = cap - 1; slots = Array.make cap (-1); hash_of; same_key }

(* Slot holding this row's key: either already claimed by an equal key
   (slots.(i) >= 0) or the free slot to claim. *)
let rowset_slot rs row =
  let rec probe i =
    let id = rs.slots.(i) in
    if id < 0 || rs.same_key row id then i else probe ((i + 1) land rs.mask)
  in
  probe (mix (rs.hash_of row) land rs.mask)

let hash_codes cols arity i =
  let h = ref 0 in
  for j = 0 to arity - 1 do
    h := (!h * 1000003) + cols.(j).(i)
  done;
  !h

(* ------------------------------ group by ----------------------------- *)

(* First-occurrence-ordered group count, exactly like {!Ops.group_count}
   but over combined int keys.  Returns the [by @ ["count"]] table the
   SQL layer materializes for GROUP BY. *)
let group_table ~by src =
  let src = project by src in
  let arity = Array.length src.cols in
  let out_cap = ref 64 in
  let out = ref (Array.init arity (fun _ -> Array.make !out_cap 0)) in
  let counts = ref (Array.make !out_cap 0) in
  let ngroups = ref 0 in
  let grow () =
    let cap' = 2 * !out_cap in
    out :=
      Array.map
        (fun d ->
          let d' = Array.make cap' 0 in
          Array.blit d 0 d' 0 !ngroups;
          d')
        !out;
    let c' = Array.make cap' 0 in
    Array.blit !counts 0 c' 0 !ngroups;
    counts := c';
    out_cap := cap'
  in
  let add_group i =
    if !ngroups = !out_cap then grow ();
    let g = !ngroups in
    let dst = !out in
    for j = 0 to arity - 1 do
      dst.(j).(g) <- src.cols.(j).(i)
    done;
    !counts.(g) <- 1;
    incr ngroups;
    g
  in
  let bump g = !counts.(g) <- !counts.(g) + 1 in
  let dense = dense_domain src.dicts in
  if dense >= 0 then begin
    let slot_of = Array.make dense (-1) in
    (* radix weights hoisted out of the scan: the per-row key is a tight
       multiply-add chain with no dictionary lookups *)
    let weights = Array.map (fun d -> max 1 (Dict.size d)) src.dicts in
    let key i =
      let k = ref 0 in
      for j = 0 to arity - 1 do
        k :=
          (!k * Array.unsafe_get weights j)
          + Array.unsafe_get (Array.unsafe_get src.cols j) i
      done;
      !k
    in
    let rec loop () =
      let b = src.pull () in
      if b >= 0 then begin
        for i = 0 to b - 1 do
          let k = key i in
          let g = Array.unsafe_get slot_of k in
          if g >= 0 then bump g else Array.unsafe_set slot_of k (add_group i)
        done;
        loop ()
      end
    in
    loop ()
  end
  else begin
    let rs =
      make_rowset ~expected:4096
        ~hash_of:(fun i -> hash_codes src.cols arity i)
        ~same_key:(fun i g ->
          let ok = ref true in
          let stored = !out in
          for j = 0 to arity - 1 do
            if src.cols.(j).(i) <> stored.(j).(g) then ok := false
          done;
          !ok)
    in
    (* the fixed-capacity set only covers the expected group count; past
       that the dedup falls back to growing the table by rehashing *)
    let rs = ref rs in
    let rehash () =
      let old = !rs in
      let bigger =
        make_rowset
          ~expected:(2 * (old.mask + 1))
          ~hash_of:(fun g -> hash_codes !out arity g)
          ~same_key:(fun a b ->
            let ok = ref true in
            let stored = !out in
            for j = 0 to arity - 1 do
              if stored.(j).(a) <> stored.(j).(b) then ok := false
            done;
            !ok)
      in
      for g = 0 to !ngroups - 1 do
        let s = rowset_slot bigger g in
        bigger.slots.(s) <- g
      done;
      (* rebind lookups to batch rows against the regrown slots *)
      rs :=
        {
          bigger with
          hash_of = old.hash_of;
          same_key = old.same_key;
        }
    in
    let rec loop () =
      let b = src.pull () in
      if b >= 0 then begin
        for i = 0 to b - 1 do
          let s = rowset_slot !rs i in
          let g = !rs.slots.(s) in
          if g >= 0 then bump g
          else begin
            let g = add_group i in
            !rs.slots.(s) <- g;
            if 2 * !ngroups > !rs.mask then rehash ()
          end
        done;
        loop ()
      end
    in
    loop ()
  end;
  let n = !ngroups in
  let count_dict = Dict.create () in
  let count_codes =
    Array.init n (fun g -> Dict.intern count_dict (Value.Int !counts.(g)))
  in
  Table.of_columns ~name:"<group>"
    (Schema.of_list (Schema.columns src.schema @ [ "count" ]))
    ~nrows:n
    (Array.append
       (Array.mapi (fun j d -> (src.dicts.(j), d)) !out)
       [| (count_dict, count_codes) |])

(* ------------------------------ distinct ----------------------------- *)

(* Keep the first occurrence of each code tuple, like {!Table.distinct},
   deduplicating on the fly so the full input is never materialized. *)
let distinct_table ~name src =
  let arity = Array.length src.cols in
  let out_cap = ref 64 in
  let out = ref (Array.init arity (fun _ -> Array.make !out_cap 0)) in
  let kept = ref 0 in
  let add_row i =
    if !kept = !out_cap then begin
      let cap' = 2 * !out_cap in
      out :=
        Array.map
          (fun d ->
            let d' = Array.make cap' 0 in
            Array.blit d 0 d' 0 !kept;
            d')
          !out;
      out_cap := cap'
    end;
    let dst = !out in
    for j = 0 to arity - 1 do
      dst.(j).(!kept) <- src.cols.(j).(i)
    done;
    incr kept;
    !kept - 1
  in
  let dense = dense_domain src.dicts in
  if dense >= 0 then begin
    let seen = Array.make dense false in
    let weights = Array.map (fun d -> max 1 (Dict.size d)) src.dicts in
    let key i =
      let k = ref 0 in
      for j = 0 to arity - 1 do
        k :=
          (!k * Array.unsafe_get weights j)
          + Array.unsafe_get (Array.unsafe_get src.cols j) i
      done;
      !k
    in
    let rec loop () =
      let b = src.pull () in
      if b >= 0 then begin
        for i = 0 to b - 1 do
          let k = key i in
          if not seen.(k) then begin
            seen.(k) <- true;
            ignore (add_row i)
          end
        done;
        loop ()
      end
    in
    loop ()
  end
  else begin
    let make expected =
      make_rowset ~expected
        ~hash_of:(fun i -> hash_codes src.cols arity i)
        ~same_key:(fun i g ->
          let ok = ref true in
          let stored = !out in
          for j = 0 to arity - 1 do
            if src.cols.(j).(i) <> stored.(j).(g) then ok := false
          done;
          !ok)
    in
    let rs = ref (make 4096) in
    let rehash () =
      let bigger = make (2 * (!rs.mask + 1)) in
      for g = 0 to !kept - 1 do
        let s =
          let rec probe i =
            if bigger.slots.(i) < 0 then i else probe ((i + 1) land bigger.mask)
          in
          probe (mix (hash_codes !out arity g) land bigger.mask)
        in
        bigger.slots.(s) <- g
      done;
      rs := bigger
    in
    let rec loop () =
      let b = src.pull () in
      if b >= 0 then begin
        for i = 0 to b - 1 do
          let s = rowset_slot !rs i in
          if !rs.slots.(s) < 0 then begin
            let g = add_row i in
            !rs.slots.(s) <- g;
            if 2 * !kept > !rs.mask then rehash ()
          end
        done;
        loop ()
      end
    in
    loop ()
  end;
  Table.of_columns ~name src.schema ~nrows:!kept
    (Array.mapi (fun j d -> (src.dicts.(j), d)) !out)

(* ----------------------------- sort / top-k --------------------------- *)

let sort_comparator keys schema dicts data n =
  let cols =
    List.map
      (fun (c, dir) ->
        let j = Schema.index schema c in
        let d = dicts.(j) and cs = data.(j) in
        (Array.init n (fun i -> Dict.value d cs.(i)), dir))
      keys
  in
  let rec cmp cols a b =
    match cols with
    | [] -> 0
    | (vals, dir) :: rest ->
        let r = Value.order vals.(a) vals.(b) in
        let r = match dir with `Asc -> r | `Desc -> -r in
        if r <> 0 then r else cmp rest a b
  in
  cmp cols

let gather_block ~name schema dicts data idx m =
  let arity = Array.length data in
  let cols =
    Array.init arity (fun j ->
        let src = data.(j) in
        let d = Array.make (max 1 m) 0 in
        for k = 0 to m - 1 do
          d.(k) <- src.(idx.(k))
        done;
        (dicts.(j), d))
  in
  Table.of_columns ~name schema ~nrows:m cols

let sort_table ~name keys src =
  let data, n = drain src in
  let cmp = sort_comparator keys src.schema src.dicts data n in
  let idx =
    Array.of_list (List.stable_sort cmp (List.init n Fun.id))
  in
  gather_block ~name src.schema src.dicts data idx n

(* Bounded top-k: the first [k] rows of the stable sort, computed with a
   sorted insertion buffer of size [k] instead of sorting (or even fully
   gathering) all [n] rows.  The comparator is made total by the row
   index, so ties resolve to input order exactly like the stable sort. *)
let topk_limit = 256

let topk_table ~name k keys src =
  let data, n = drain src in
  if k >= n || k > topk_limit then begin
    let cmp = sort_comparator keys src.schema src.dicts data n in
    let idx = Array.of_list (List.stable_sort cmp (List.init n Fun.id)) in
    let m = min k n in
    gather_block ~name src.schema src.dicts data idx m
  end
  else begin
    let cmp0 = sort_comparator keys src.schema src.dicts data n in
    let cmp a b =
      let r = cmp0 a b in
      if r <> 0 then r else compare a b
    in
    let keep = Array.make (max 1 k) 0 in
    let m = ref 0 in
    (* insertion point: first slot whose row orders after [i] *)
    let insert_at i =
      let lo = ref 0 and hi = ref !m in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cmp i keep.(mid) < 0 then hi := mid else lo := mid + 1
      done;
      !lo
    in
    for i = 0 to n - 1 do
      if !m < k then begin
        let at = insert_at i in
        Array.blit keep at keep (at + 1) (!m - at);
        keep.(at) <- i;
        incr m
      end
      else if k > 0 && cmp i keep.(k - 1) < 0 then begin
        let at = insert_at i in
        Array.blit keep at keep (at + 1) (k - 1 - at);
        keep.(at) <- i
      end
    done;
    gather_block ~name src.schema src.dicts data keep !m
  end

(* ------------------------------- join -------------------------------- *)

(* Hash equi-join on dictionary codes with explicit build-side choice.
   The output is bit-identical to {!Ops.equi_join} — all [ta] columns
   then the non-key [tb] columns, rows in [ta]-major order with matches
   in [tb] row order — whichever side carries the index: building on the
   probe side's left collects pairs probe-major and a stable counting
   sort by [ia] restores the reference order. *)
let join_tables ?build_left ~on ta tb =
  if
    Table.lineage ta <> None || Table.lineage tb <> None || Lineage.tracking ()
  then Ops.equi_join ~on ta tb
  else begin
    let sa = Table.schema ta and sb = Table.schema tb in
    let a_keys = List.map (fun (a, _) -> Schema.index sa a) on in
    let b_keys = List.map (fun (_, b) -> Schema.index sb b) on in
    let b_key_cols = List.map snd on in
    let kept_b =
      List.filter (fun c -> not (List.mem c b_key_cols)) (Schema.columns sb)
    in
    List.iter
      (fun c -> if Schema.mem sa c then raise (Ops.Schema_clash c))
      kept_b;
    let na = Table.cardinality ta and nb = Table.cardinality tb in
    let build_left =
      match build_left with Some b -> b | None -> na < nb
    in
    (* [bt] owns the index; [pt] streams through it. *)
    let bt, pt, b_keyix, p_keyix =
      if build_left then (ta, tb, a_keys, b_keys) else (tb, ta, b_keys, a_keys)
    in
    let nbuild = Table.cardinality bt and nprobe = Table.cardinality pt in
    let nkeys = List.length on in
    let bcols = Array.of_list (List.map (Table.codes bt) b_keyix) in
    let bdicts = Array.of_list (List.map (Table.dict bt) b_keyix) in
    let pcols = Array.of_list (List.map (Table.codes pt) p_keyix) in
    let trans =
      Array.of_list
        (List.map2
           (fun jp jb ->
             let dp = Table.dict pt jp and db = Table.dict bt jb in
             if dp == db then None else Some (Dict.translate ~from:dp ~into:db))
           p_keyix b_keyix)
    in
    (* translated probe key, written into [k]; false = no possible match *)
    let key_into k ip =
      let ok = ref true in
      for j = 0 to nkeys - 1 do
        let c = pcols.(j).(ip) in
        let c' = match trans.(j) with None -> c | Some map -> map.(c) in
        if c' < 0 then ok := false else k.(j) <- c'
      done;
      !ok
    in
    let next = Array.make (max 1 nbuild) (-1) in
    let dense = dense_domain bdicts in
    let scratch = Array.make (max 1 nkeys) 0 in
    (* [find]: head of the chain for the translated key in [scratch] *)
    let find =
      if dense >= 0 then begin
        let heads = Array.make dense (-1) in
        let weights = Array.map (fun d -> max 1 (Dict.size d)) bdicts in
        let key cols i =
          let k = ref 0 in
          for j = 0 to nkeys - 1 do
            k := (!k * Array.unsafe_get weights j) + cols j i
          done;
          !k
        in
        (* insert high-to-low so every chain lists build rows ascending *)
        for ib = nbuild - 1 downto 0 do
          let k = key (fun j i -> bcols.(j).(i)) ib in
          next.(ib) <- heads.(k);
          heads.(k) <- ib
        done;
        fun () -> heads.(key (fun j _ -> scratch.(j)) 0)
      end
      else begin
        let cap = pow2_at_least (4 * max 1 nbuild) in
        let mask = cap - 1 in
        let keys = Array.make cap (-1) in
        (* first build row of the slot's chain; keys compare per column *)
        let heads = Array.make cap (-1) in
        let hash cols i =
          let h = ref 0 in
          for j = 0 to nkeys - 1 do
            h := (!h * 1000003) + cols j i
          done;
          mix !h land mask
        in
        let same cols i ib =
          let ok = ref true in
          for j = 0 to nkeys - 1 do
            if cols j i <> bcols.(j).(ib) then ok := false
          done;
          !ok
        in
        let slot cols i =
          let rec probe s =
            if keys.(s) < 0 || same cols i keys.(s) then s
            else probe ((s + 1) land mask)
          in
          probe (hash cols i)
        in
        for ib = nbuild - 1 downto 0 do
          let s = slot (fun j i -> bcols.(j).(i)) ib in
          if keys.(s) < 0 then keys.(s) <- ib;
          next.(ib) <- heads.(s);
          heads.(s) <- ib
        done;
        fun () ->
          let s = slot (fun j _ -> scratch.(j)) 0 in
          if keys.(s) < 0 then -1 else heads.(s)
      end
    in
    (* probe in order, pushing matches into growable pair buffers *)
    let cap = ref 64 in
    let ip_arr = ref (Array.make !cap 0) and ib_arr = ref (Array.make !cap 0) in
    let m = ref 0 in
    let push ip ib =
      if !m = !cap then begin
        cap := 2 * !cap;
        let grow a =
          let a' = Array.make !cap 0 in
          Array.blit a 0 a' 0 !m;
          a'
        in
        ip_arr := grow !ip_arr;
        ib_arr := grow !ib_arr
      end;
      !ip_arr.(!m) <- ip;
      !ib_arr.(!m) <- ib;
      incr m
    in
    for ip = 0 to nprobe - 1 do
      if key_into scratch ip then begin
        let b = ref (find ()) in
        while !b >= 0 do
          push ip !b;
          b := next.(!b)
        done
      end
    done;
    let m = !m in
    let ias, ibs =
      if not build_left then (!ip_arr, !ib_arr)
      else begin
        (* pairs are (probe=ib)-major; stable counting sort by the build
           row [ia] restores ta-major order with tb matches ascending *)
        let counts = Array.make (na + 1) 0 in
        let bsrc = !ib_arr in
        for k = 0 to m - 1 do
          counts.(bsrc.(k) + 1) <- counts.(bsrc.(k) + 1) + 1
        done;
        for i = 1 to na do
          counts.(i) <- counts.(i) + counts.(i - 1)
        done;
        let ias = Array.make (max 1 m) 0 and ibs = Array.make (max 1 m) 0 in
        let psrc = !ip_arr in
        for k = 0 to m - 1 do
          let ia = bsrc.(k) in
          let at = counts.(ia) in
          counts.(ia) <- at + 1;
          ias.(at) <- ia;
          ibs.(at) <- psrc.(k)
        done;
        (ias, ibs)
      end
    in
    (* a semijoin-shaped result (every ta row matched exactly once, in
       order) needs no gather at all: the output's ta columns are ta's own
       immutable code arrays, shared zero-copy like {!Ops.project} *)
    let identity idxs n =
      m = n
      &&
      let ok = ref true in
      for k = 0 to m - 1 do
        if Array.unsafe_get idxs k <> k then ok := false
      done;
      !ok
    in
    let col_from t idxs id j =
      let src = Table.codes t j in
      if id then (Table.dict t j, src)
      else begin
        let data = Array.make (max 1 m) 0 in
        for k = 0 to m - 1 do
          Array.unsafe_set data k
            (Array.unsafe_get src (Array.unsafe_get idxs k))
        done;
        (Table.dict t j, data)
      end
    in
    let ia_id = identity ias na in
    let ib_id = identity ibs (Table.cardinality tb) in
    Table.of_columns
      ~name:(Table.name ta ^ "|x|" ^ Table.name tb)
      (Schema.append sa kept_b) ~nrows:m
      (Array.append
         (Array.init (Schema.arity sa) (col_from ta ias ia_id))
         (Array.of_list
            (List.map
               (fun jb -> col_from tb ibs ib_id jb)
               (List.map (Schema.index sb) kept_b))))
  end
