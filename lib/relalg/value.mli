(** Typed atomic values stored in relation cells.

    The paper's column tables hold symbolic protocol constants (message
    names, state names, presence-vector encodings) plus the distinguished
    [NULL] value, which denotes a dont-care on input columns and a no-op on
    output columns.  Unlike ANSI SQL, [NULL] here is an ordinary first-class
    constant: [Null = Null] holds.  This matches how the paper uses NULL
    (rows are generated with NULL cells and later compared for containment),
    and avoids three-valued logic the paper never relies on. *)

type t =
  | Null  (** dont-care (input column) / no-op (output column) *)
  | Str of string  (** symbolic constant, e.g. ["readex"], ["Busy-sd"] *)
  | Int of int  (** numeric constant, e.g. a queue capacity *)
  | Bool of bool  (** boolean constant *)
  | Float of float
      (** measured quantity (durations, speedups, percentiles) — carried
          by the [sys.*] telemetry tables, not by protocol columns *)

val equal : t -> t -> bool
(** Structural equality; [equal Null Null = true]. *)

val compare : t -> t -> int
(** Total order used for sorting and set-like table operations.  [Null] is
    smallest; then [Bool], [Int], [Float], [Str]. *)

val order : t -> t -> int
(** Numeric-aware ordering used by SQL comparison predicates ([<], [>=],
    …) and [ORDER BY]: [Int] and [Float] compare by magnitude
    ([order (Int 1) (Float 1.) = 0]), everything else falls back to
    {!compare}.  Deliberately inconsistent with {!equal} across the
    Int/Float divide, which is why sorting/dedup keep using
    {!compare}. *)

val hash : t -> int
(** Hash consistent with {!equal}. *)

val is_null : t -> bool

val str : string -> t
(** [str s] is [Str s]. *)

val float_repr : float -> string
(** Canonical rendering of a float cell: integral values keep a trailing
    [.0] (so [Float 2.] never reads back as [Int 2]), others print with
    enough digits to round-trip. *)

val to_string : t -> string
(** Rendering used in table printouts and generated reports; [Null] prints
    as ["-"]. *)

val to_sql : t -> string
(** Rendering as a SQL literal; strings are single-quoted, [Null] prints as
    [NULL]. *)

val pp : Format.formatter -> t -> unit
