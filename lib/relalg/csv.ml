exception Csv_error of { line : int; message : string }

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let render_cell = function
  | Value.Null -> "NULL"
  | Value.Int i -> string_of_int i
  | Value.Bool b -> string_of_bool b
  | Value.Float f -> Value.to_string (Value.Float f)
  | Value.Str s ->
      if needs_quoting s || s = "NULL" || s = "" then
        "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
      else s

let parse_cell s =
  match s with
  | "" | "NULL" -> Value.Null
  | "true" -> Value.Bool true
  | "false" -> Value.Bool false
  | _ -> (
      match int_of_string_opt s with
      | Some i -> Value.Int i
      | None -> (
          (* only dotted numerals parse as floats, so symbolic constants
             like "nan" or "infinity" stay strings *)
          match
            if String.contains s '.' then float_of_string_opt s else None
          with
          | Some f -> Value.Float f
          | None -> Value.Str s))

let to_string t =
  let buf = Buffer.create 1024 in
  let emit_line cells =
    Buffer.add_string buf (String.concat "," cells);
    Buffer.add_char buf '\n'
  in
  emit_line (Schema.columns (Table.schema t));
  (* Render each dictionary entry once; emitting a cell is then an array
     lookup on its code instead of a fresh Value rendering per row. *)
  let arity = Table.arity t in
  let rendered =
    Array.init arity (fun j ->
        let d = Table.dict t j in
        Array.init (Dict.size d) (fun c -> render_cell (Dict.value d c)))
  in
  let codes = Array.init arity (Table.codes t) in
  for i = 0 to Table.cardinality t - 1 do
    emit_line
      (List.init arity (fun j -> rendered.(j).(codes.(j).(i))))
  done;
  Buffer.contents buf

(* RFC-4180-style splitting: returns the records of the document, each a
   list of raw cell strings (quotes resolved). *)
let records src =
  let n = String.length src in
  let cell = Buffer.create 16 in
  let row = ref [] in
  let rows = ref [] in
  let line = ref 1 in
  let quoted_cell = ref false in
  let flush_cell () =
    let raw = Buffer.contents cell in
    Buffer.clear cell;
    let value = if !quoted_cell then Value.Str raw else parse_cell raw in
    quoted_cell := false;
    row := value :: !row
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let rec plain i =
    if i >= n then (if !row <> [] || Buffer.length cell > 0 then flush_row ())
    else
      match src.[i] with
      | ',' -> flush_cell (); plain (i + 1)
      | '\n' -> incr line; flush_row (); plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length cell = 0 ->
          quoted_cell := true;
          quoted (i + 1)
      | c -> Buffer.add_char cell c; plain (i + 1)
  and quoted i =
    if i >= n then raise (Csv_error { line = !line; message = "unterminated quote" })
    else
      match src.[i] with
      | '"' when i + 1 < n && src.[i + 1] = '"' ->
          Buffer.add_char cell '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | '\n' ->
          incr line;
          Buffer.add_char cell '\n';
          quoted (i + 1)
      | c -> Buffer.add_char cell c; quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let of_string ~name src =
  match records src with
  | [] -> raise (Csv_error { line = 1; message = "empty document" })
  | header :: rest ->
      let columns =
        List.map
          (function
            | Value.Str s -> s
            | v -> Value.to_string v)
          header
      in
      let schema = Schema.of_list columns in
      let arity = Schema.arity schema in
      let rows =
        List.mapi
          (fun i cells ->
            if List.length cells <> arity then
              raise
                (Csv_error
                   {
                     line = i + 2;
                     message =
                       Printf.sprintf "expected %d cells, got %d" arity
                         (List.length cells);
                   });
            Row.of_list cells)
          rest
      in
      Table.of_rows ~name schema rows

let save ~filename t =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load ~name ~filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string ~name (really_input_string ic len))
