(** Executor: runs parsed or textual SQL against a {!Database.t}.

    This is the layer the rest of the system drives: controller-table
    checks (section 4), implementation-table generation (section 5) and
    emptiness-style invariants all go through [query] / [exec] /
    [is_empty]. *)

exception Exec_error of string

val run_query : ?label:string -> Database.t -> Sql_ast.query -> Table.t
(** Evaluate a query AST.  The result table is named ["<query>"] unless
    produced by [CREATE TABLE … AS].  Dispatches to the cost-based
    {!Planner} (vectorized execution) when it is active and no
    referenced table carries lineage; otherwise runs the row-at-a-time
    reference interpreter ({!run_query_reference}).  Planner executions
    are recorded in the plan observatory under [label] (default: the
    pretty-printed query), at site ["sql"] unless a more specific
    {!Obs.Planlog.with_site} label is active. *)

val run_query_reference : Database.t -> Sql_ast.query -> Table.t
(** The row-at-a-time reference interpreter, unconditionally — the
    oracle the planner is differentially tested against. *)

val run_statement : Database.t -> Sql_ast.statement -> Database.t * Table.t option
(** Evaluate a statement; [CREATE TABLE AS] / [INSERT] / [DROP] return the
    updated database, plain queries also return the result table. *)

val query : Database.t -> string -> Table.t
(** Parse then {!run_query}. *)

val exec : Database.t -> string -> Database.t * Table.t option
(** Parse then {!run_statement}. *)

val exec_script : Database.t -> string list -> Database.t
(** Run statements in sequence, threading the database. *)

val is_empty : Database.t -> string -> bool
(** [is_empty db sql]: the paper's [\[Select …\] = empty] invariant check. *)
