(* Columnar hash index: buckets map dictionary *codes* (not values) of
   the indexed column to row numbers of the source snapshot.  A probe
   value is first looked up in the column dictionary — a value that was
   never interned cannot appear in the table, so the probe is a miss
   without hashing a single row. *)

type t = {
  source : Table.t;  (* the snapshot indexed *)
  column : string;
  col : int;  (* offset of [column] in the source schema *)
  buckets : (int, int list) Hashtbl.t;  (* code -> row indices, reversed *)
}

let build tbl column =
  let col = Schema.index (Table.schema tbl) column in
  let codes = Table.codes tbl col in
  let buckets = Hashtbl.create 64 in
  for i = 0 to Table.cardinality tbl - 1 do
    let c = codes.(i) in
    let existing = Option.value (Hashtbl.find_opt buckets c) ~default:[] in
    Hashtbl.replace buckets c (i :: existing)
  done;
  { source = tbl; column; col; buckets }

let source t = t.source
let table_name t = Table.name t.source
let column t = t.column

let lookup_idx t v =
  match Dict.code_opt (Table.dict t.source t.col) v with
  | None -> []
  | Some c -> List.rev (Option.value (Hashtbl.find_opt t.buckets c) ~default:[])

let lookup t v = List.map (Table.get t.source) (lookup_idx t v)
let lookup_gather t v = Table.gather t.source (lookup_idx t v)
let distinct_keys t = Hashtbl.length t.buckets

let consistent t tbl =
  let n = Table.cardinality t.source in
  Table.cardinality tbl = n
  && Hashtbl.fold (fun _ idxs acc -> acc + List.length idxs) t.buckets 0 = n
  &&
  let idx = Schema.index (Table.schema tbl) t.column in
  Table.fold
    (fun ok row -> ok && List.exists (Row.equal row) (lookup t row.(idx)))
    true tbl
