type contrib = { source : int; row : int }
type row = contrib array

let flag = Atomic.make false
let tracking () = Atomic.get flag
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false

let with_tracking f =
  let prev = tracking () in
  Atomic.set flag true;
  Fun.protect ~finally:(fun () -> Atomic.set flag prev) f

type source = {
  id : int;
  name : string;
  columns : string list;
  get : int -> Value.t array;
}

(* Registration happens on operator entry, which parallel kernels may
   reach from worker domains; the registry is tiny (one entry per base
   table consumed while tracking), so a single mutex is plenty. *)
let lock = Mutex.create ()
let sources : (int, source) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register ~id ~name ~columns ~get =
  locked @@ fun () ->
  if not (Hashtbl.mem sources id) then
    Hashtbl.add sources id { id; name; columns; get }

let source id = locked (fun () -> Hashtbl.find_opt sources id)

let source_name id =
  match source id with Some s -> s.name | None -> Printf.sprintf "#%d" id

let clear () = locked (fun () -> Hashtbl.reset sources)

let base id i = [| { source = id; row = i } |]

let merge a b =
  if Array.length a = 0 then b
  else if Array.length b = 0 then a
  else begin
    let fresh =
      Array.to_list b
      |> List.filter (fun c -> not (Array.exists (( = ) c) a))
    in
    if fresh = [] then a else Array.append a (Array.of_list fresh)
  end

let pp fmt (r : row) =
  if Array.length r = 0 then Format.pp_print_string fmt "<unknown>"
  else
    Array.iteri
      (fun k c ->
        if k > 0 then Format.pp_print_string fmt " + ";
        Format.fprintf fmt "%s[%d]" (source_name c.source) c.row)
      r

let to_string r = Format.asprintf "%a" pp r
