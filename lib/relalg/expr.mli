(** The paper's column-constraint language.

    Constraints are boolean expressions built from column names, literals
    and sets of literals with [=], [<>], [IN], [AND], [OR], [NOT], and the
    ternary form [condition ? true-expr : false-expr] (section 3 of the
    paper).  The same expression type doubles as the WHERE-clause predicate
    of the SQL front end; there it may additionally call registered boolean
    functions such as [isrequest(inmsg)] (section 4.3). *)

type operand =
  | Col of string  (** reference to a column of the row under test *)
  | Const of Value.t  (** literal *)

type cmp = Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Eq of operand * operand
  | Neq of operand * operand
  | Cmp of cmp * operand * operand
      (** ordered comparison under {!Value.order} (numeric across
          Int/Float) — the [speedup < 1.0] shape of telemetry queries *)
  | In of operand * Value.t list
  | Fn of string * operand
      (** [Fn (f, x)]: application of a registered boolean function, e.g.
          [isrequest(inmsg)] *)
  | And of t * t
  | Or of t * t
  | Not of t
  | Ternary of t * t * t  (** [cond ? then_ : else_] *)

val cmp_holds : cmp -> int -> bool
(** [cmp_holds op n] interprets a comparator result [n] (as returned by
    {!Value.order}) under [op]. *)

val cmp_to_string : cmp -> string

type funcs = string -> (Value.t -> bool) option
(** Resolver for registered boolean functions used by {!eval}. *)

exception Unknown_function of string

val no_funcs : funcs
(** Resolver that knows no functions. *)

(** {1 Smart constructors} *)

val col : string -> operand
val s : string -> operand
(** [s x] is [Const (Str x)]. *)

val eq : string -> string -> t
(** [eq c v] is [Eq (Col c, Const (Str v))] — the overwhelmingly common
    atom in protocol constraints. *)

val eq_null : string -> t
val neq : string -> string -> t
val isin : string -> string list -> t
val conj : t list -> t
val disj : t list -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ternary : t -> t -> t -> t
(** [ternary c a b] is [c ? a : b], i.e. [(c AND a) OR (NOT c AND b)]. *)

(** {1 Queries} *)

val free_columns : t -> string list
(** Column names mentioned, without duplicates, in first-mention order. *)

val eval : ?funcs:funcs -> Schema.t -> Value.t array -> t -> bool
(** Evaluate against a row.  @raise Schema.Unknown_column if the expression
    mentions a column absent from the schema, @raise Unknown_function if a
    [Fn] name is not resolved by [funcs]. *)

val compile : ?funcs:funcs -> Schema.t -> t -> Value.t array -> bool
(** Staged evaluator: column indices and functions are resolved once, so
    the returned closure is cheap to apply to many rows.  Raises the same
    exceptions as {!eval}, but at compile time. *)

val compile_columns :
  ?funcs:funcs ->
  Schema.t ->
  dict:(int -> Dict.t) ->
  codes:(int -> int array) ->
  t ->
  int ->
  bool
(** Dictionary-compiled evaluator over columnar storage.  [dict j] and
    [codes j] give column [j]'s dictionary and code buffer (as in
    {!Table.dict} / {!Table.codes}); the result takes a row index.
    Column offsets, constant codes, [IN] masks and function memo tables
    are resolved once at compile time, so the hot path is integer
    compares on code arrays.  A constant that was never interned in the
    relevant column compiles to (almost) constant-false.  Agrees with
    {!eval} on the decoded row; raises the same exceptions, at compile
    time.  The returned closure is safe to call from {!Par.Pool}
    workers. *)

val pp : Format.formatter -> t -> unit
(** Paper-style rendering using [?:] for ternaries. *)

val to_sql : t -> string
(** SQL-style rendering (ternaries expand to AND/OR form). *)
