(** Per-column value dictionaries for the columnar storage engine.

    Every column of a {!Table} owns (or shares) a dictionary that interns
    the values appearing in it.  Cells are stored as integer codes into
    the dictionary, so the hot-path comparisons of the relational
    operators — selection predicates, distinct, set membership, join keys
    — are integer compares instead of boxed {!Value.t} traversals.

    Dictionaries are append-only: a code, once assigned, always decodes
    to the same value, which is what makes it safe for derived tables
    (selections, projections, joins) to share their parents'
    dictionaries.  Interning happens only in the spawning domain (table
    construction); pool workers only read, so no locking is needed. *)

type t

val create : unit -> t

val size : t -> int
(** Number of distinct values interned so far.  Codes are [0..size-1]. *)

val intern : t -> Value.t -> int
(** The code of [v], assigning the next free code on first sight.
    Equal values always intern to the same code. *)

val code_opt : t -> Value.t -> int option
(** Read-only lookup: the code of [v] if it has been interned.  Safe to
    call from pool workers. *)

val value : t -> int -> Value.t
(** Decode.  @raise Invalid_argument on an out-of-range code. *)

val hits : t -> int
(** How many {!intern} calls found an existing entry. *)

val misses : t -> int
(** How many {!intern} calls allocated a new code (= {!size}). *)

val hit_rate : t -> float
(** [hits / (hits + misses)], or [0.] before the first intern.  High hit
    rates are the whole point: protocol tables draw their cells from
    small per-column domains. *)

val bytes : t -> int
(** Approximate heap footprint of the dictionary (entries plus decode
    array), in bytes. *)

val translate : from:t -> into:t -> int array
(** [translate ~from ~into] maps every code of [from] to the code of the
    same value in [into], or [-1] when the value has not been interned
    there.  Computed eagerly (read-only on both dictionaries), so the
    result can be consulted from pool workers. *)
