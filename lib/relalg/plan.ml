type t =
  | Scan of string
  | Select of Expr.t * t
  | Project of string list * t
  | Distinct of t
  | Sort of (string * [ `Asc | `Desc ]) list * t
  | Limit of int * t
  | Union of t * t
  | Except of t * t
  | Intersect of t * t
  | Count of t
  | Group_count of string list * t
  | Join of (string * string) list * t * t
  | Empty of string list

let of_query q =
  let rec go (q : Sql_ast.query) =
    match q with
    | Sql_ast.Select { distinct; columns; from; where; order_by; limit } ->
        let dir = function Sql_ast.Asc -> `Asc | Sql_ast.Desc -> `Desc in
        let sort p =
          match order_by with
          | [] -> p
          | keys -> Sort (List.map (fun (c, d) -> (c, dir d)) keys, p)
        in
        let p = Scan from in
        let p = match where with None -> p | Some e -> Select (e, p) in
        (* Plain projections sort below the Project node so ORDER BY may
           use columns the SELECT list drops; aggregates sort above,
           over their output columns. *)
        let p, sorted =
          match columns with
          | Sql_ast.Star -> (sort p, true)
          | Sql_ast.Columns cs -> (Project (cs, sort p), true)
          | Sql_ast.Count -> (Count p, false)
          | Sql_ast.Group_count cols -> (Group_count (cols, p), false)
        in
        let p = if distinct then Distinct p else p in
        let p = if sorted then p else sort p in
        (match limit with None -> p | Some n -> Limit (n, p))
    | Sql_ast.Union (a, b) -> Union (go a, go b)
    | Sql_ast.Except (a, b) -> Except (go a, go b)
    | Sql_ast.Intersect (a, b) -> Intersect (go a, go b)
  in
  go q

(* ------------------------------------------------------------------ *)
(* Predicate simplification                                            *)
(* ------------------------------------------------------------------ *)

let rec simplify_predicate (e : Expr.t) : Expr.t =
  match e with
  | Expr.True | Expr.False | Expr.Fn _ -> e
  | Expr.Eq (Expr.Const a, Expr.Const b) ->
      if Value.equal a b then Expr.True else Expr.False
  | Expr.Neq (Expr.Const a, Expr.Const b) ->
      if Value.equal a b then Expr.False else Expr.True
  | Expr.Cmp (op, Expr.Const a, Expr.Const b) ->
      if Expr.cmp_holds op (Value.order a b) then Expr.True else Expr.False
  | Expr.Eq _ | Expr.Neq _ | Expr.Cmp _ -> e
  | Expr.In (_, []) -> Expr.False
  | Expr.In (Expr.Const a, vs) ->
      if List.exists (Value.equal a) vs then Expr.True else Expr.False
  | Expr.In (x, [ v ]) -> Expr.Eq (x, Expr.Const v)
  | Expr.In _ -> e
  | Expr.And (a, b) -> (
      match simplify_predicate a, simplify_predicate b with
      | Expr.True, x | x, Expr.True -> x
      | Expr.False, _ | _, Expr.False -> Expr.False
      | a, b -> Expr.And (a, b))
  | Expr.Or (a, b) -> (
      match simplify_predicate a, simplify_predicate b with
      | Expr.False, x | x, Expr.False -> x
      | Expr.True, _ | _, Expr.True -> Expr.True
      | a, b -> Expr.Or (a, b))
  | Expr.Not a -> (
      match simplify_predicate a with
      | Expr.True -> Expr.False
      | Expr.False -> Expr.True
      | Expr.Not x -> x
      | a -> Expr.Not a)
  | Expr.Ternary (c, a, b) -> (
      match simplify_predicate c with
      | Expr.True -> simplify_predicate a
      | Expr.False -> simplify_predicate b
      | c -> Expr.Ternary (c, simplify_predicate a, simplify_predicate b))

(* ------------------------------------------------------------------ *)
(* Plan rewriting                                                      *)
(* ------------------------------------------------------------------ *)

let rec rewrite p =
  match p with
  | Scan _ | Empty _ -> p
  | Select (e, inner) -> (
      let e = simplify_predicate e in
      let inner = rewrite inner in
      match e, inner with
      | Expr.True, _ -> inner
      | Expr.False, _ -> (
          (* collapse only when the schema is statically known; a bare
             scan's schema lives in the database, so keep the (cheap)
             never-true selection there *)
          match schema_hint inner with
          | Some cols -> Empty cols
          | None -> Select (Expr.False, inner))
      | _, Empty cols -> Empty cols
      (* merge adjacent selections *)
      | _, Select (e', deeper) -> Select (Expr.And (e, e'), deeper)
      (* push the selection below a projection: legal because the
         predicate can only mention projected columns *)
      | _, Project (cols, deeper) -> Project (cols, rewrite (Select (e, deeper)))
      (* push through set operators *)
      | _, Union (a, b) -> Union (rewrite (Select (e, a)), rewrite (Select (e, b)))
      | _, Except (a, b) -> Except (rewrite (Select (e, a)), rewrite (Select (e, b)))
      | _, Intersect (a, b) ->
          Intersect (rewrite (Select (e, a)), rewrite (Select (e, b)))
      | _ -> Select (e, inner))
  | Project (cols, inner) -> (
      match rewrite inner with
      | Empty _ -> Empty cols
      (* collapse nested projections to the outermost *)
      | Project (_, deeper) -> Project (cols, deeper)
      | inner -> Project (cols, inner))
  | Distinct inner -> (
      match rewrite inner with
      | Empty cols -> Empty cols
      | Distinct deeper -> Distinct deeper
      | inner -> Distinct inner)
  | Sort (keys, inner) -> (
      match rewrite inner with
      | Empty cols -> Empty cols
      | inner -> Sort (keys, inner))
  | Limit (n, inner) -> (
      match rewrite inner, schema_hint inner with
      | Empty cols, _ -> Empty cols
      | _, Some cols when n = 0 -> Empty cols
      | inner, _ -> Limit (n, inner))
  | Count inner -> Count (rewrite inner)
  | Group_count (cols, inner) -> Group_count (cols, rewrite inner)
  | Join (on, a, b) ->
      (* an empty side empties the join; schema-aware predicate pushdown
         into join sides happens in the cost-based planner, which can
         resolve scan schemas against the database *)
      Join (on, rewrite a, rewrite b)
  | Union (a, b) -> (
      match rewrite a, rewrite b with
      (* set operators produce distinct results; Empty is the unit *)
      | Empty _, x | x, Empty _ -> Distinct x
      | a, b -> Union (a, b))
  | Except (a, b) -> (
      match rewrite a, rewrite b with
      | Empty cols, _ -> Empty cols
      | a, Empty _ -> Distinct a
      | a, b -> Except (a, b))
  | Intersect (a, b) -> (
      match rewrite a, rewrite b with
      | Empty cols, _ -> Empty cols
      | _, Empty cols -> Empty cols
      | a, b -> Intersect (a, b))

and schema_hint = function
  | Project (cols, _) | Empty cols -> Some cols
  | Scan _ -> None
  | Select (_, p) | Distinct p | Sort (_, p) | Limit (_, p) -> schema_hint p
  | Union (a, b) | Except (a, b) | Intersect (a, b) -> (
      match schema_hint a with Some c -> Some c | None -> schema_hint b)
  | Count _ -> Some [ "count" ]
  | Group_count (cols, _) -> Some (cols @ [ "count" ])
  | Join (on, a, b) -> (
      (* all left columns, then the right columns that are not join keys *)
      match schema_hint a, schema_hint b with
      | Some ca, Some cb ->
          let keys = List.map snd on in
          Some (ca @ List.filter (fun c -> not (List.mem c keys)) cb)
      | _ -> None)

let rec optimize p =
  let p' = rewrite p in
  if p' = p then p else optimize p'

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let rec execute db p =
  match p with
  | Scan name -> Database.find db name
  | Select (e, inner) ->
      Ops.select ~funcs:(Database.functions db) e (execute db inner)
  | Project (cols, inner) -> Ops.project cols (execute db inner)
  | Distinct inner -> Table.distinct (execute db inner)
  | Sort (keys, inner) -> Ops.order_by keys (execute db inner)
  | Limit (n, inner) -> Ops.limit n (execute db inner)
  | Count inner ->
      Table.of_rows ~name:"<count>"
        (Schema.of_list [ "count" ])
        [ [| Value.Int (Table.cardinality (execute db inner)) |] ]
  | Group_count (cols, inner) ->
      Table.of_rows ~name:"<group>"
        (Schema.of_list (cols @ [ "count" ]))
        (List.map
           (fun (key, n) -> Array.append key [| Value.Int n |])
           (Ops.group_count ~by:cols (execute db inner)))
  | Union (a, b) -> Ops.union (execute db a) (execute db b)
  | Except (a, b) -> Ops.except (execute db a) (execute db b)
  | Intersect (a, b) -> Ops.intersect (execute db a) (execute db b)
  | Join (on, a, b) -> Ops.equi_join ~on (execute db a) (execute db b)
  | Empty cols -> Table.create ~name:"<empty>" (Schema.of_list cols)

let explain p =
  let buf = Buffer.create 256 in
  let rec go indent p =
    let pr fmt = Printf.ksprintf (fun s ->
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_string buf s;
        Buffer.add_char buf '\n') fmt
    in
    match p with
    | Scan name -> pr "scan %s" name
    | Select (e, inner) ->
        pr "select %s" (Format.asprintf "%a" Expr.pp e);
        go (indent + 2) inner
    | Project (cols, inner) ->
        pr "project [%s]" (String.concat ", " cols);
        go (indent + 2) inner
    | Distinct inner -> pr "distinct"; go (indent + 2) inner
    | Sort (keys, inner) ->
        pr "sort [%s]"
          (String.concat ", "
             (List.map
                (fun (c, d) ->
                  c ^ match d with `Asc -> "" | `Desc -> " desc")
                keys));
        go (indent + 2) inner
    | Limit (n, inner) -> pr "limit %d" n; go (indent + 2) inner
    | Count inner -> pr "count"; go (indent + 2) inner
    | Group_count (cols, inner) ->
        pr "group count by [%s]" (String.concat ", " cols);
        go (indent + 2) inner
    | Union (a, b) -> pr "union"; go (indent + 2) a; go (indent + 2) b
    | Except (a, b) -> pr "except"; go (indent + 2) a; go (indent + 2) b
    | Intersect (a, b) -> pr "intersect"; go (indent + 2) a; go (indent + 2) b
    | Join (on, a, b) ->
        pr "join [%s]"
          (String.concat ", "
             (List.map (fun (l, r) -> Printf.sprintf "%s=%s" l r) on));
        go (indent + 2) a;
        go (indent + 2) b
    | Empty cols -> pr "empty [%s]" (String.concat ", " cols)
  in
  go 0 p;
  Buffer.contents buf

let optimize_to_fixpoint = optimize

let run ?(optimize = true) db src =
  let plan = of_query (Sql_parser.parse_query src) in
  let plan = if optimize then optimize_to_fixpoint plan else plan in
  execute db plan
