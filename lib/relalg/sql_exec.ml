exception Exec_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

let obs_reg = lazy (Obs.Metrics.registry "relalg")
let obs_counter name = Obs.Metrics.counter (Lazy.force obs_reg) name

(* The reference row-at-a-time interpreter: one {!Ops} call per clause,
   in the fixed textbook order.  Kept verbatim as the differential-test
   oracle for the cost-based planner below. *)
let rec run_query_reference db (q : Sql_ast.query) =
  match q with
  | Select { distinct; columns; from; where; order_by; limit } ->
      let table =
        match Database.find_opt db from with
        | Some t -> t
        | None -> error "unknown table %s" from
      in
      let table =
        match where with
        | None -> table
        | Some pred -> Ops.select ~funcs:(Database.functions db) pred table
      in
      let dir = function Sql_ast.Asc -> `Asc | Sql_ast.Desc -> `Desc in
      let sort t =
        match order_by with
        | [] -> t
        | keys -> Ops.order_by (List.map (fun (c, d) -> (c, dir d)) keys) t
      in
      (* Plain projections sort {e upstream}, so ORDER BY may use
         columns the SELECT list drops (projection preserves row
         order).  Aggregates sort downstream, over their output columns
         ([count] included). *)
      let table, sorted =
        match columns with
        | Sql_ast.Star -> (sort table, true)
        | Sql_ast.Columns cols -> (Ops.project cols (sort table), true)
        | Sql_ast.Count ->
            ( Table.of_rows ~name:"<count>"
                (Schema.of_list [ "count" ])
                [ [| Value.Int (Table.cardinality table) |] ],
              false )
        | Sql_ast.Group_count cols ->
            let groups = Ops.group_count ~by:cols table in
            ( Table.of_rows ~name:"<group>"
                (Schema.of_list (cols @ [ "count" ]))
                (List.map
                   (fun (key, n) -> Array.append key [| Value.Int n |])
                   groups),
              false )
      in
      let table = if distinct then Table.distinct table else table in
      let table = if sorted then table else sort table in
      let table =
        match limit with None -> table | Some n -> Ops.limit n table
      in
      Table.with_name "<query>" table
  | Union (a, b) ->
      Ops.union (run_query_reference db a) (run_query_reference db b)
  | Except (a, b) ->
      Ops.except (run_query_reference db a) (run_query_reference db b)
  | Intersect (a, b) ->
      Ops.intersect (run_query_reference db a) (run_query_reference db b)

let rec referenced_tables (q : Sql_ast.query) =
  match q with
  | Select { from; _ } -> [ from ]
  | Union (a, b) | Except (a, b) | Intersect (a, b) ->
      referenced_tables a @ referenced_tables b

(* Dispatch: the cost-based planner runs the query through the
   vectorized engine when it is active and no referenced table carries
   lineage (provenance must flow through the reference operators).
   Unknown tables are reported with the reference path's error message
   either way.  Planner executions land in the plan observatory under
   [label] (the SQL text when coming through {!query}); the "sql" site
   applies only when no more specific call-site label (invariant id,
   solver phase) is already active. *)
let run_query ?label db (q : Sql_ast.query) =
  let tables =
    List.map
      (fun name ->
        match Database.find_opt db name with
        | Some t -> t
        | None -> error "unknown table %s" name)
      (referenced_tables q)
  in
  if
    Planner.active ()
    && List.for_all (fun t -> Table.lineage t = None) tables
  then
    let run () = Planner.run_query ?label db q in
    match Obs.Planlog.site () with
    | None -> Obs.Planlog.with_site "sql" run
    | Some _ -> run ()
  else run_query_reference db q

(* sys.* tables are engine-materialized snapshots: readable like any
   table, but not a valid target for DDL/DML. *)
let check_writable name =
  if Database.is_system_name name then
    error "%s is a read-only system table (the sys. prefix is reserved)" name

let run_statement db (s : Sql_ast.statement) =
  match s with
  | Query q -> db, Some (run_query db q)
  | Create_table_as (name, q) ->
      check_writable name;
      let t = Table.with_name name (run_query db q) in
      Database.replace db t, Some t
  | Insert (name, rows) ->
      check_writable name;
      let t =
        match Database.find_opt db name with
        | Some t -> t
        | None -> error "unknown table %s" name
      in
      let t = Table.add_all t (List.map Row.of_list rows) in
      Database.replace db t, None
  | Drop_table name ->
      check_writable name;
      if not (Database.mem db name) then error "unknown table %s" name;
      Database.remove db name, None

let query db src =
  Obs.Trace.with_span ~cat:"relalg"
    ~args:[ "query", Obs.Json.Str src ]
    "sql.query"
  @@ fun () ->
  let result = run_query ~label:src db (Sql_parser.parse_query src) in
  Obs.Metrics.incr (obs_counter "queries");
  Obs.Metrics.add (obs_counter "rows_returned") (Table.cardinality result);
  result

let exec db src =
  Obs.Trace.with_span ~cat:"relalg"
    ~args:[ "statement", Obs.Json.Str src ]
    "sql.exec"
  @@ fun () ->
  Obs.Metrics.incr (obs_counter "statements");
  run_statement db (Sql_parser.parse_statement src)

let exec_script db stmts =
  List.fold_left (fun db src -> fst (exec db src)) db stmts

let is_empty db src = Table.is_empty (query db src)
