(** Hash indexes over a single column.

    The workhorse access path behind the physical planner
    ({!Physical}): an equality predicate on an indexed column becomes a
    hash lookup instead of a scan.  Indexes are explicit immutable values
    built from a table snapshot — rebuilding after table updates is the
    caller's concern ({!Physical}'s store does it by watching
    {!Table.id}).

    Since the columnar refactor the buckets hold row numbers keyed by
    dictionary code: probing first resolves the value through the
    column's dictionary, so a value that never occurs in the table
    misses in O(1), and a hit gathers rows by index without decoding. *)

type t

val build : Table.t -> string -> t
(** Index the given column. @raise Schema.Unknown_column. *)

val source : t -> Table.t
(** The table snapshot the index was built from. *)

val table_name : t -> string
val column : t -> string

val lookup : t -> Value.t -> Row.t list
(** All rows whose indexed cell equals the value, in table order. *)

val lookup_idx : t -> Value.t -> int list
(** Row numbers (into {!source}) whose indexed cell equals the value, in
    table order.  No row is decoded. *)

val lookup_gather : t -> Value.t -> Table.t
(** The matching rows as a table sharing the source's dictionaries —
    what {!Physical.execute_access} materializes for an index lookup. *)

val distinct_keys : t -> int

val consistent : t -> Table.t -> bool
(** Every row of the table is reachable through the index and vice versa
    (used by the property tests). *)
