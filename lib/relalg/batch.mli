(** Vectorized physical operators over fixed-size batches of dictionary
    codes.

    The row-at-a-time engine in {!Ops} interprets one {!Value} row per
    operator call; this module is the batch-of-codes alternative the
    cost-based planner ({!Planner}) compiles to.  A {!source} streams
    batches of up to {!batch_rows} rows as plain [int] code vectors over
    per-operator column buffers, so selection and projection inner loops
    are tight integer loops with no per-row boxing, and the blocking
    operators (join/group/distinct/sort/top-k) key their hash and
    direct-address indexes on combined dictionary codes instead of
    polymorphic row hashing.

    Every operator preserves the reference engine's ordering semantics:
    select/project/limit keep input order, distinct and group are
    first-occurrence, sort is stable under {!Value.order}, and
    {!join_tables} emits pairs in the same (left-major, right ascending)
    order as {!Ops.equi_join} — differentially tested in the suite.

    Lineage is not propagated here: callers gate on
    {!Lineage.tracking} / {!Table.lineage} and fall back to {!Ops}
    (and {!join_tables} double-checks, delegating to {!Ops.equi_join}
    when either input carries lineage). *)

val batch_rows : int
(** Rows per re-batching operator's batch (1024).  Borrowed table scans
    ({!of_table}) emit one batch of the full cardinality instead;
    operators size their buffers to the stream's declared width, so
    either shape flows through every consumer. *)

type source
(** A pull-based stream of batches.  Each pull refills (or, for borrowed
    scans, reveals) the source's own stable column buffers and returns
    the number of valid rows, so compiled predicates can bind to the
    buffers once, before the first pull. *)

val schema : source -> Schema.t

val of_table : Table.t -> source
(** Borrow the table's code buffers as a single full-cardinality batch —
    no per-batch copy, safe because {!Table.codes} buffers are immutable
    by contract.  Bytes handed out this way are counted by the
    [batch.bytes_borrowed] counter of the ["relalg"] metrics registry
    (vs [batch.bytes_copied] for filter gathers and drains), so
    [sys.metrics] shows the scan-copy win. *)

val select : ?funcs:Expr.funcs -> Expr.t -> source -> source
(** Filter with a predicate compiled once against the input buffers
    ({!Expr.compile_columns}); surviving rows are gathered contiguously,
    preserving order. *)

val project : string list -> source -> source
(** Zero-copy column selection: aliases the parent's buffers. *)

val limit : int -> source -> source
(** First [n] rows; stops pulling upstream once satisfied. *)

val tap : (int -> unit) -> source -> source
(** Observe the stream: [f] is called with each non-empty batch's row
    count — how the planner records actual per-operator cardinalities
    for [EXPLAIN --analyze] without materializing. *)

val timed : (int64 -> int -> unit) -> source -> source
(** Time the stream: [f ns b] is called after every pull with the wall
    time spent in it (inclusive of upstream pulls) and the pull's result
    ([-1] at end of stream) — how the planner fills per-operator
    [actual_ms]/[batches] for the plan observatory. *)

val count : source -> int
(** Drain, counting rows. *)

val to_table : name:string -> source -> Table.t
(** Drain into a table sharing the source's dictionaries. *)

val group_table : by:string list -> source -> Table.t
(** [GROUP BY … COUNT]: one row per distinct key in first-occurrence
    order, schema [by @ ["count"]], named ["<group>"].  Uses a dense
    direct-address index when the product of key-dictionary sizes is
    small, an open-addressing code-keyed hash table otherwise. *)

val distinct_table : name:string -> source -> Table.t
(** First-occurrence dedup over whole rows (same index strategy as
    {!group_table}). *)

val sort_table : name:string -> (string * [ `Asc | `Desc ]) list -> source -> Table.t
(** Stable sort under {!Value.order}, matching {!Ops.order_by}. *)

val topk_table :
  name:string -> int -> (string * [ `Asc | `Desc ]) list -> source -> Table.t
(** First [k] rows of the stable sort, computed with a bounded
    sorted-insertion buffer instead of materializing and sorting the
    whole input — the planner's rewrite of [LIMIT k] over [ORDER BY]. *)

val join_tables :
  ?build_left:bool ->
  on:(string * string) list ->
  Table.t ->
  Table.t ->
  Table.t
(** Hash equi-join keyed on dictionary codes (right-side key codes are
    translated into the left dictionaries, so probe compares are integer
    equality).  Output rows, schema and name match {!Ops.equi_join}
    exactly, whichever side is built: when the left (smaller) side is the
    build side, matches are restored to left-major order by a stable
    counting sort.  [?build_left] overrides the cardinality heuristic
    (used by tests).

    @raise Ops.Schema_clash on non-key column name collisions. *)
