module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  codes : int Vtbl.t;  (* value -> code *)
  mutable values : Value.t array;  (* code -> value; length is capacity *)
  mutable size : int;
  mutable hits : int;
}

let create () =
  { codes = Vtbl.create 16; values = Array.make 8 Value.Null; size = 0; hits = 0 }

let size d = d.size

let intern d v =
  match Vtbl.find_opt d.codes v with
  | Some c ->
      d.hits <- d.hits + 1;
      c
  | None ->
      let c = d.size in
      if c = Array.length d.values then begin
        let values = Array.make (2 * c) Value.Null in
        Array.blit d.values 0 values 0 c;
        d.values <- values
      end;
      d.values.(c) <- v;
      d.size <- c + 1;
      Vtbl.add d.codes v c;
      c

let code_opt d v = Vtbl.find_opt d.codes v

let value d c =
  if c < 0 || c >= d.size then
    invalid_arg (Printf.sprintf "Dict.value: code %d of %d" c d.size);
  d.values.(c)

let hits d = d.hits
let misses d = d.size

let hit_rate d =
  let total = d.hits + d.size in
  if total = 0 then 0. else float_of_int d.hits /. float_of_int total

let word = Sys.word_size / 8

let value_bytes = function
  | Value.Null | Value.Int _ | Value.Bool _ | Value.Float _ -> word
  | Value.Str s -> (3 * word) + String.length s

let translate ~from ~into =
  Array.init from.size (fun c ->
      match Vtbl.find_opt into.codes from.values.(c) with
      | Some c' -> c'
      | None -> -1)

let bytes d =
  let entries = ref 0 in
  for c = 0 to d.size - 1 do
    entries := !entries + value_bytes d.values.(c)
  done;
  (* decode array + one hashtable bucket (~4 words) per entry *)
  (Array.length d.values * word) + (d.size * 4 * word) + !entries
