(** Abstract syntax for the SQL subset used by the paper.

    The subset covers exactly what the methodology needs: [SELECT
    [DISTINCT] cols FROM t WHERE pred], set operators [UNION] / [EXCEPT] /
    [INTERSECT], [CREATE TABLE name AS query], [INSERT INTO name VALUES
    …], and [DROP TABLE].  WHERE predicates are {!Expr.t} values and so
    additionally admit the paper's ternary [cond ? p1 : p2] notation and
    registered boolean functions such as [isrequest(inmsg)]. *)

(** What the SELECT clause projects. *)
type projection =
  | Star  (** [SELECT *] *)
  | Columns of string list
  | Count  (** [SELECT COUNT] of all rows: a one-row, one-column result *)
  | Group_count of string list
      (** [SELECT c1, …, COUNT] with [GROUP BY c1, …]: one row per
          distinct key, with a trailing [count] column *)

type order = Asc | Desc

type select = {
  distinct : bool;
  columns : projection;
  from : string;
  where : Expr.t option;
  order_by : (string * order) list;
      (** [ORDER BY c1 [ASC|DESC], …]; sorts under {!Value.order} after
          projection (and after the grouped count, so [count] is
          orderable) *)
  limit : int option;  (** [LIMIT n], applied after ordering *)
}

type query =
  | Select of select
  | Union of query * query
  | Except of query * query
  | Intersect of query * query

type statement =
  | Query of query
  | Create_table_as of string * query
  | Insert of string * Value.t list list
  | Drop_table of string

val pp_query : Format.formatter -> query -> unit
val pp_statement : Format.formatter -> statement -> unit
