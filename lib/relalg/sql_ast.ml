type projection =
  | Star
  | Columns of string list
  | Count
  | Group_count of string list

type order = Asc | Desc

type select = {
  distinct : bool;
  columns : projection;
  from : string;
  where : Expr.t option;
  order_by : (string * order) list;
  limit : int option;
}

type query =
  | Select of select
  | Union of query * query
  | Except of query * query
  | Intersect of query * query

type statement =
  | Query of query
  | Create_table_as of string * query
  | Insert of string * Value.t list list
  | Drop_table of string

let pp_select fmt s =
  Format.fprintf fmt "select %s%s from %s"
    (if s.distinct then "distinct " else "")
    (match s.columns with
    | Star -> "*"
    | Columns cs -> String.concat ", " cs
    | Count -> "COUNT(*)"
    | Group_count cs -> String.concat ", " cs ^ ", COUNT(*)")
    s.from;
  (match s.where with
  | None -> ()
  | Some e -> Format.fprintf fmt " where %a" Expr.pp e);
  (match s.columns with
  | Group_count cs -> Format.fprintf fmt " group by %s" (String.concat ", " cs)
  | Star | Columns _ | Count -> ());
  (match s.order_by with
  | [] -> ()
  | keys ->
      Format.fprintf fmt " order by %s"
        (String.concat ", "
           (List.map
              (fun (col, dir) ->
                col ^ match dir with Asc -> "" | Desc -> " desc")
              keys)));
  match s.limit with
  | None -> ()
  | Some n -> Format.fprintf fmt " limit %d" n

let rec pp_query fmt = function
  | Select s -> pp_select fmt s
  | Union (a, b) -> Format.fprintf fmt "(%a union %a)" pp_query a pp_query b
  | Except (a, b) -> Format.fprintf fmt "(%a except %a)" pp_query a pp_query b
  | Intersect (a, b) ->
      Format.fprintf fmt "(%a intersect %a)" pp_query a pp_query b

let pp_statement fmt = function
  | Query q -> pp_query fmt q
  | Create_table_as (n, q) ->
      Format.fprintf fmt "create table %s as %a" n pp_query q
  | Insert (n, rows) ->
      Format.fprintf fmt "insert into %s values %s" n
        (String.concat ", "
           (List.map
              (fun vs ->
                "(" ^ String.concat ", " (List.map Value.to_sql vs) ^ ")")
              rows))
  | Drop_table n -> Format.fprintf fmt "drop table %s" n
