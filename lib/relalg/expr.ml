type operand = Col of string | Const of Value.t

type cmp = Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Eq of operand * operand
  | Neq of operand * operand
  | Cmp of cmp * operand * operand
  | In of operand * Value.t list
  | Fn of string * operand
  | And of t * t
  | Or of t * t
  | Not of t
  | Ternary of t * t * t

let cmp_holds op n =
  match op with Lt -> n < 0 | Le -> n <= 0 | Gt -> n > 0 | Ge -> n >= 0

let cmp_to_string = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

type funcs = string -> (Value.t -> bool) option

exception Unknown_function of string

let no_funcs _ = None
let col c = Col c
let s x = Const (Value.Str x)
let eq c v = Eq (Col c, Const (Value.Str v))
let eq_null c = Eq (Col c, Const Value.Null)
let neq c v = Neq (Col c, Const (Value.Str v))
let isin c vs = In (Col c, List.map Value.str vs)

let conj = function
  | [] -> True
  | e :: es -> List.fold_left (fun acc x -> And (acc, x)) e es

let disj = function
  | [] -> False
  | e :: es -> List.fold_left (fun acc x -> Or (acc, x)) e es

let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ternary c a b = Ternary (c, a, b)

let free_columns e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let add = function
    | Col c ->
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          acc := c :: !acc
        end
    | Const _ -> ()
  in
  let rec go = function
    | True | False -> ()
    | Eq (a, b) | Neq (a, b) | Cmp (_, a, b) -> add a; add b
    | In (a, _) | Fn (_, a) -> add a
    | And (a, b) | Or (a, b) -> go a; go b
    | Not a -> go a
    | Ternary (c, a, b) -> go c; go a; go b
  in
  go e;
  List.rev !acc

let eval ?(funcs = no_funcs) schema row e =
  let operand = function
    | Col c -> row.(Schema.index schema c)
    | Const v -> v
  in
  let rec go = function
    | True -> true
    | False -> false
    | Eq (a, b) -> Value.equal (operand a) (operand b)
    | Neq (a, b) -> not (Value.equal (operand a) (operand b))
    | Cmp (op, a, b) -> cmp_holds op (Value.order (operand a) (operand b))
    | In (a, vs) ->
        let v = operand a in
        List.exists (Value.equal v) vs
    | Fn (f, a) -> (
        match funcs f with
        | Some p -> p (operand a)
        | None -> raise (Unknown_function f))
    | And (a, b) -> go a && go b
    | Or (a, b) -> go a || go b
    | Not a -> not (go a)
    | Ternary (c, a, b) -> if go c then go a else go b
  in
  go e

let compile ?(funcs = no_funcs) schema e =
  let operand = function
    | Col c ->
        let i = Schema.index schema c in
        fun row -> row.(i)
    | Const v -> fun _ -> v
  in
  let rec go = function
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Eq (a, b) ->
        let fa = operand a and fb = operand b in
        fun row -> Value.equal (fa row) (fb row)
    | Neq (a, b) ->
        let fa = operand a and fb = operand b in
        fun row -> not (Value.equal (fa row) (fb row))
    | Cmp (op, a, b) ->
        let fa = operand a and fb = operand b in
        fun row -> cmp_holds op (Value.order (fa row) (fb row))
    | In (a, vs) ->
        let fa = operand a in
        fun row ->
          let v = fa row in
          List.exists (Value.equal v) vs
    | Fn (f, a) -> (
        match funcs f with
        | Some p ->
            let fa = operand a in
            fun row -> p (fa row)
        | None -> raise (Unknown_function f))
    | And (a, b) ->
        let fa = go a and fb = go b in
        fun row -> fa row && fb row
    | Or (a, b) ->
        let fa = go a and fb = go b in
        fun row -> fa row || fb row
    | Not a ->
        let fa = go a in
        fun row -> not (fa row)
    | Ternary (c, a, b) ->
        let fc = go c and fa = go a and fb = go b in
        fun row -> if fc row then fa row else fb row
  in
  go e

(* Dictionary-compiled evaluator.  Column offsets, constant codes, IN
   masks and function memo tables are all resolved once against the
   table's dictionaries; the returned closure takes a row *index* and does
   integer compares on the code arrays.  Codes interned after compile time
   (a dictionary that grew under a shared buffer) fall back to decoding,
   so the closure always agrees with [eval] on the decoded row. *)
let compile_columns ?(funcs = no_funcs) schema ~dict ~codes e =
  let column c =
    let j = Schema.index schema c in
    (dict j, codes j)
  in
  let equality a b =
    match (a, b) with
    | Const va, Const vb ->
        let r = Value.equal va vb in
        fun _ -> r
    | Col c, Const v | Const v, Col c -> (
        let d, cs = column c in
        match Dict.code_opt d v with
        | Some code -> fun i -> cs.(i) = code
        | None ->
            let n = Dict.size d in
            fun i ->
              let ci = cs.(i) in
              ci >= n && Value.equal (Dict.value d ci) v)
    | Col ca, Col cb ->
        let da, csa = column ca and db, csb = column cb in
        if da == db then fun i -> csa.(i) = csb.(i)
        else
          let map = Dict.translate ~from:da ~into:db in
          let na = Array.length map and nb = Dict.size db in
          fun i ->
            let a = csa.(i) and b = csb.(i) in
            if a < na && b < nb then map.(a) = b
            else Value.equal (Dict.value da a) (Dict.value db b)
  in
  (* Dictionary codes are interning order, not value order, so ordered
     comparisons decode the cell; sys.* telemetry scans are small.  A
     per-code memo would pay off only on large low-cardinality columns. *)
  let decode_operand = function
    | Const v -> fun _ -> v
    | Col c ->
        let d, cs = column c in
        fun i -> Dict.value d cs.(i)
  in
  let rec go = function
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Eq (a, b) -> equality a b
    | Neq (a, b) ->
        let f = equality a b in
        fun i -> not (f i)
    | Cmp (op, a, b) ->
        let fa = decode_operand a and fb = decode_operand b in
        fun i -> cmp_holds op (Value.order (fa i) (fb i))
    | In (Const v, vs) ->
        let r = List.exists (Value.equal v) vs in
        fun _ -> r
    | In (Col c, vs) ->
        let d, cs = column c in
        let n = Dict.size d in
        let mask = Array.make n false in
        List.iter
          (fun v ->
            match Dict.code_opt d v with
            | Some code when code < n -> mask.(code) <- true
            | _ -> ())
          vs;
        fun i ->
          let ci = cs.(i) in
          if ci < n then mask.(ci)
          else
            let v = Dict.value d ci in
            List.exists (Value.equal v) vs
    | Fn (f, a) -> (
        match funcs f with
        | None -> raise (Unknown_function f)
        | Some p -> (
            match a with
            | Const v -> fun _ -> p v
            | Col c ->
                let d, cs = column c in
                let n = Dict.size d in
                (* -1 unknown / 0 false / 1 true.  Workers may race on a
                   cell, but [p] is deterministic so they write the same
                   value — the memo only ever converges. *)
                let memo = Array.make n (-1) in
                fun i ->
                  let ci = cs.(i) in
                  if ci < n then begin
                    let m = memo.(ci) in
                    if m >= 0 then m = 1
                    else begin
                      let r = p (Dict.value d ci) in
                      memo.(ci) <- (if r then 1 else 0);
                      r
                    end
                  end
                  else p (Dict.value d ci)))
    | And (a, b) ->
        let fa = go a and fb = go b in
        fun i -> fa i && fb i
    | Or (a, b) ->
        let fa = go a and fb = go b in
        fun i -> fa i || fb i
    | Not a ->
        let fa = go a in
        fun i -> not (fa i)
    | Ternary (c, a, b) ->
        let fc = go c and fa = go a and fb = go b in
        fun i -> if fc i then fa i else fb i
  in
  go e

let pp_operand fmt = function
  | Col c -> Format.pp_print_string fmt c
  | Const v -> Format.pp_print_string fmt (Value.to_sql v)

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp_operand a pp_operand b
  | Neq (a, b) -> Format.fprintf fmt "%a <> %a" pp_operand a pp_operand b
  | Cmp (op, a, b) ->
      Format.fprintf fmt "%a %s %a" pp_operand a (cmp_to_string op) pp_operand b
  | In (a, vs) ->
      Format.fprintf fmt "%a in (%s)" pp_operand a
        (String.concat ", " (List.map Value.to_sql vs))
  | Fn (f, a) -> Format.fprintf fmt "%s(%a)" f pp_operand a
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf fmt "not %a" pp a
  | Ternary (c, a, b) -> Format.fprintf fmt "(%a ? %a : %a)" pp c pp a pp b

let to_sql e =
  (* Ternaries have no SQL surface syntax; expand before rendering. *)
  let rec expand = function
    | (True | False | Eq _ | Neq _ | Cmp _ | In _ | Fn _) as atom -> atom
    | And (a, b) -> And (expand a, expand b)
    | Or (a, b) -> Or (expand a, expand b)
    | Not a -> Not (expand a)
    | Ternary (c, a, b) ->
        let c = expand c in
        Or (And (c, expand a), And (Not c, expand b))
  in
  Format.asprintf "%a" pp (expand e)
