(** Hand-written lexer for the SQL subset.

    Keywords are case-insensitive; identifiers are
    [[A-Za-z_][A-Za-z0-9_.]*] (dots allowed so prefixed columns like
    [ED.inmsg] lex as one name); string literals are single-quoted with
    [''] as the escape for a quote. *)

type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | FLOAT of float  (** [digits.digits] only — no exponent form *)
  | KW of string  (** uppercased keyword: SELECT, FROM, WHERE, … *)
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | QUESTION
  | COLON
  | SEMI
  | EOF

exception Lex_error of { pos : int; message : string }

val tokenize : string -> token list
(** Whole-input tokenization, ending with [EOF].
    @raise Lex_error on an illegal character or unterminated string. *)

val pp_token : Format.formatter -> token -> unit
