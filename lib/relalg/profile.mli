(** Table statistics: the numbers the paper reports about its tables
    ("the table D is typically specified only for the legal input
    combinations and as a result is quite sparse", "the number of columns
    … is an order of magnitude smaller than the number of rows").

    Used by the experiment harness (E3) and available to users profiling
    their own controller specifications. *)

type column_stats = {
  column : string;
  distinct : int;  (** distinct non-NULL values *)
  nulls : int;  (** NULL (dont-care / no-op) cells *)
  most_common : (Value.t * int) option;
  dict_entries : int;
      (** size of the column's dictionary; can exceed [distinct] when the
          dictionary is shared with an ancestor table *)
}

type t = {
  table : string;
  rows : int;
  columns : int;
  null_cells : int;
  total_cells : int;
  per_column : column_stats list;
  storage_bytes : int;  (** {!Table.storage_bytes} of the profiled table *)
  dict_hit_rate : float;  (** {!Table.dict_hit_rate} of the profiled table *)
}

val sparsity : t -> float
(** Fraction of cells that are NULL — the paper's "quite sparse". *)

val column_sparsity : t -> column_stats -> float
(** Fraction of a column's cells that are NULL. *)

val profile : Table.t -> t

val to_string : t -> string
(** An aligned per-column summary with per-column sparsity and the share
    of rows covered by the most common value. *)

val to_json : t -> Obs.Json.t
(** The same numbers machine-readable ([stats --json]); per-column
    objects carry [mode]/[mode_count] only when a mode exists. *)
