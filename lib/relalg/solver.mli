(** Controller-table generation from column tables and column constraints
    (section 3 of the paper).

    A table is described by its {e column tables} (one per column,
    enumerating the legal values, always including [NULL] for protocol
    columns) and one {e column constraint} per column — a boolean
    {!Expr.t} relating that column to the others.  The generated table is
    the set of satisfying assignments of the conjunction of all column
    constraints, i.e. the cross product of the column tables pruned by the
    constraints.

    Two strategies are provided:
    - {!generate_monolithic} materializes the full cross product and filters
      by the whole conjunction — the paper reports ~6 hours for the
      directory table this way;
    - {!generate} adds one column at a time, filtering by each constraint as
      soon as all columns it mentions are bound — the paper reports a few
      minutes.  Both produce the same table; the incremental strategy just
      prunes dead branches early.

    Each call also returns {!stats} (candidate rows materialized and
    constraint evaluations) so the complexity gap can be measured exactly,
    independently of machine speed. *)

type role = Input | Output

type column = {
  cname : string;
  role : role;
  domain : Value.t list;  (** the column table: legal values, in order *)
}

type spec
(** A validated table specification. *)

type column_stats = {
  column : string;
  considered : int;  (** candidate extensions tried while adding the column *)
  kept : int;  (** rows surviving the column's applicable constraints *)
}

type stats = {
  candidates : int;  (** candidate (partial) rows materialized *)
  evaluations : int;  (** constraint evaluations performed *)
  per_column : (string * int) list;
      (** rows surviving after each column is added (incremental) or a
          single entry for the full product (monolithic) *)
  pruning : column_stats list;
      (** per-column candidate/pruned breakdown, in column-addition
          order — the measured shape of the paper's "prune dead branches
          early" argument *)
}

val pruned : column_stats -> int
(** [considered - kept]. *)

exception Invalid_spec of string

val make :
  name:string ->
  columns:column list ->
  constraints:(string * Expr.t) list ->
  spec
(** Build a spec.  Every constrained column must exist; a column without an
    entry in [constraints] is unconstrained ([Expr.True]); constraints may
    mention any columns of the table.
    @raise Invalid_spec on unknown columns, duplicate columns, or an empty
    domain. *)

val name : spec -> string
val columns : spec -> column list
val inputs : spec -> column list
val outputs : spec -> column list
val constraint_of : spec -> string -> Expr.t
val search_space : spec -> int
(** Product of domain sizes — the size of the unpruned cross product. *)

val generate : ?funcs:Expr.funcs -> spec -> Table.t * stats
(** Incremental (column-at-a-time) generation: inputs first, in declaration
    order, then outputs.  A constraint is applied at the first point all its
    columns are bound. *)

val generate_monolithic : ?funcs:Expr.funcs -> spec -> Table.t * stats
(** Full cross product, then filter by the conjunction of all constraints.
    Same result as {!generate}; exponentially more work. *)
