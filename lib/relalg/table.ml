(* Columnar storage: each column is a growable array of integer codes into
   a per-column dictionary.  A table value is an immutable *view* — (name,
   schema, columns, nrows, id) — over buffers that may be shared with other
   views.  [add] extends a buffer in place only when this view's nrows is
   the buffer's high-water mark (i.e. no other view has already claimed the
   tail); otherwise it branch-copies.  This gives O(1) amortized append on
   the common build-up pattern while keeping every published table value
   semantically immutable. *)

type buf = { mutable data : int array; mutable len : int }
type col = { dict : Dict.t; buf : buf }

type t = {
  name : string;
  schema : Schema.t;
  cols : col array;
  nrows : int;
  id : int;
  lin : Lineage.row array option;
      (** per-row base contributors, populated only under
          {!Lineage.tracking}; [None] keeps the hot path lineage-free *)
}

exception Arity_mismatch of { table : string; expected : int; got : int }

let next_id = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add next_id 1

let check_arity t row =
  let expected = Schema.arity t.schema and got = Array.length row in
  if expected <> got then raise (Arity_mismatch { table = t.name; expected; got })

let fresh_col cap = { dict = Dict.create (); buf = { data = Array.make (max 8 cap) 0; len = 0 } }

let create ~name schema =
  let arity = Schema.arity schema in
  { name; schema; cols = Array.init arity (fun _ -> fresh_col 8); nrows = 0;
    id = fresh_id (); lin = None }

let of_rows ~name schema rows =
  let expected = Schema.arity schema in
  let n = List.length rows in
  let cols = Array.init expected (fun _ -> fresh_col n) in
  let i = ref 0 in
  List.iter
    (fun row ->
      let got = Array.length row in
      if got <> expected then raise (Arity_mismatch { table = name; expected; got });
      for j = 0 to expected - 1 do
        cols.(j).buf.data.(!i) <- Dict.intern cols.(j).dict row.(j)
      done;
      incr i)
    rows;
  Array.iter (fun c -> c.buf.len <- n) cols;
  { name; schema; cols; nrows = n; id = fresh_id (); lin = None }

let name t = t.name
let with_name name t = { t with name; id = fresh_id () }
let schema t = t.schema
let cardinality t = t.nrows
let arity t = Schema.arity t.schema
let is_empty t = t.nrows = 0
let id t = t.id

let get t i =
  Array.map (fun c -> Dict.value c.dict c.buf.data.(i)) t.cols

let rows t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get t i :: acc) in
  loop (t.nrows - 1) []

(* ------------------------------ lineage ------------------------------- *)

let lineage t = t.lin

(* Does the result of an operation over [t] need lineage?  Either the
   input already carries some (keep propagating even if tracking was
   turned off mid-pipeline) or tracking is on and [t] is a base whose
   identity lineage we synthesize. *)
let want_lin t = t.lin <> None || Lineage.tracking ()

let lineage_rows t =
  match t.lin with
  | Some a -> a
  | None ->
      Lineage.register ~id:t.id ~name:t.name
        ~columns:(Schema.columns t.schema) ~get:(get t);
      Array.init t.nrows (Lineage.base t.id)

let with_lineage t lin =
  if Array.length lin <> t.nrows then
    invalid_arg
      (Printf.sprintf "Table.with_lineage: %d lineage rows for %d table rows"
         (Array.length lin) t.nrows);
  { t with lin = Some lin }

(* Append one cell to a column.  In place when [nrows] is the buffer's
   high-water mark (no other view owns the tail), branch-copy otherwise. *)
let push_col nrows col v =
  let code = Dict.intern col.dict v in
  let buf = col.buf in
  if buf.len = nrows then begin
    if Array.length buf.data = nrows then begin
      let data = Array.make (max 8 (2 * nrows)) 0 in
      Array.blit buf.data 0 data 0 nrows;
      buf.data <- data
    end;
    buf.data.(nrows) <- code;
    buf.len <- nrows + 1;
    col
  end
  else begin
    let data = Array.make (max 8 (2 * (nrows + 1))) 0 in
    Array.blit buf.data 0 data 0 nrows;
    data.(nrows) <- code;
    { col with buf = { data; len = nrows + 1 } }
  end

let add t row =
  check_arity t row;
  let cols = Array.mapi (fun j col -> push_col t.nrows col row.(j)) t.cols in
  (* a hand-appended row is a fresh base fact: it has no contributors *)
  let lin = Option.map (fun a -> Array.append a [| [||] |]) t.lin in
  { t with cols; lin; nrows = t.nrows + 1; id = fresh_id () }

let add_all t extra = List.fold_left add t extra

let key_of_codes cols i =
  Array.map (fun c -> c.buf.data.(i)) cols

let mem t row =
  if Array.length row <> arity t then false
  else
    let key = Array.make (Array.length t.cols) 0 in
    let resolved =
      try
        Array.iteri
          (fun j c ->
            match Dict.code_opt c.dict row.(j) with
            | Some code -> key.(j) <- code
            | None -> raise Exit)
          t.cols;
        true
      with Exit -> false
    in
    resolved
    &&
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i < t.nrows do
      if key_of_codes t.cols !i = key then found := true;
      incr i
    done;
    !found

let cell t row col = row.(Schema.index t.schema col)

let iter f t =
  for i = 0 to t.nrows - 1 do
    f (get t i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.nrows - 1 do
    acc := f !acc (get t i)
  done;
  !acc

let iter_column f t col =
  let j = Schema.index t.schema col in
  let { dict; buf } = t.cols.(j) in
  for i = 0 to t.nrows - 1 do
    f (Dict.value dict buf.data.(i))
  done

(* shared tail of gather/filter_idx: copy rows [idx.(0..m-1)] of every
   column with a tight loop; when the index is the identity over the
   whole table, share the column records instead (safe for the same
   reason [select_columns] sharing is: push_col branch-copies as soon
   as two views contend for a buffer's tail) *)
let gather_idx ~name t idx m =
  (* one up-front range check makes the unsafe per-column loops sound
     even for caller-supplied indices (public [gather]) *)
  for k = 0 to m - 1 do
    if idx.(k) < 0 || idx.(k) >= t.nrows then
      invalid_arg
        (Printf.sprintf "Table.gather: row %d out of range (0..%d)" idx.(k)
           (t.nrows - 1))
  done;
  let identity =
    m = t.nrows
    &&
    let k = ref 0 in
    while !k < m && idx.(!k) = !k do
      incr k
    done;
    !k = m
  in
  let cols =
    if identity then t.cols
    else
      Array.map
        (fun c ->
          let src = c.buf.data in
          let data = Array.make (max 8 m) 0 in
          (* unsafe is sound here: k < m = length data, and every
             idx.(k) is a row index < nrows <= length src *)
          for k = 0 to m - 1 do
            Array.unsafe_set data k
              (Array.unsafe_get src (Array.unsafe_get idx k))
          done;
          { dict = c.dict; buf = { data; len = m } })
        t.cols
  in
  let lin =
    if not (want_lin t) then None
    else
      let src = lineage_rows t in
      Some (if identity then src else Array.init m (fun k -> src.(idx.(k))))
  in
  { name; schema = t.schema; cols; nrows = m; id = fresh_id (); lin }

let gather ?name t idxs =
  let idx = Array.of_list idxs in
  gather_idx
    ~name:(Option.value name ~default:t.name)
    t idx (Array.length idx)

let filter_idx p t =
  let idx = Array.make (max 1 t.nrows) 0 in
  let m = ref 0 in
  for i = 0 to t.nrows - 1 do
    if p i then begin
      idx.(!m) <- i;
      incr m
    end
  done;
  gather_idx ~name:t.name t idx !m

let filter p t = filter_idx (fun i -> p (get t i)) t

let map_rows f t =
  of_rows ~name:t.name t.schema (List.map f (rows t))

let sort t =
  let decoded = Array.init t.nrows (get t) in
  let idx = Array.init t.nrows Fun.id in
  Array.sort
    (fun i j ->
      let c = Row.compare decoded.(i) decoded.(j) in
      if c <> 0 then c else compare i j)
    idx;
  gather t (Array.to_list idx)

let distinct t =
  let seen = Hashtbl.create (max 16 t.nrows) in
  let kept = ref [] in
  (* forward pass: keep the first occurrence of each code tuple *)
  for i = 0 to t.nrows - 1 do
    let key = key_of_codes t.cols i in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      kept := i :: !kept
    end
  done;
  gather t (List.rev !kept)

(* Map every code of [a]'s column [j] into [b]'s dictionary space (-1 when
   the value is absent from [b]'s dictionary).  Physically shared
   dictionaries get the identity map for free. *)
let translation a_col b_col =
  if a_col.dict == b_col.dict then None
  else begin
    let n = Dict.size a_col.dict in
    let map = Array.make n (-1) in
    for c = 0 to n - 1 do
      match Dict.code_opt b_col.dict (Dict.value a_col.dict c) with
      | Some c' -> map.(c) <- c'
      | None -> ()
    done;
    Some map
  end

let translated_key trans a_cols i =
  let arity = Array.length a_cols in
  let key = Array.make arity 0 in
  let ok = ref true in
  for j = 0 to arity - 1 do
    let c = a_cols.(j).buf.data.(i) in
    let c' = match trans.(j) with None -> c | Some map -> map.(c) in
    if c' < 0 then ok := false else key.(j) <- c'
  done;
  if !ok then Some key else None

let row_code_set t =
  let set = Hashtbl.create (max 16 t.nrows) in
  for i = 0 to t.nrows - 1 do
    Hashtbl.replace set (key_of_codes t.cols i) ()
  done;
  set

let subset a b =
  if not (Schema.union_compatible a.schema b.schema) then false
  else if a.nrows = 0 then true
  else begin
    let bset = row_code_set b in
    let trans = Array.init (Array.length a.cols) (fun j -> translation a.cols.(j) b.cols.(j)) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < a.nrows do
      (match translated_key trans a.cols !i with
      | Some key -> if not (Hashtbl.mem bset key) then ok := false
      | None -> ok := false);
      incr i
    done;
    !ok
  end

let equal_as_sets a b = subset a b && subset b a

let row_membership ~of_:b a =
  let bset = row_code_set b in
  let trans = Array.init (Array.length a.cols) (fun j -> translation a.cols.(j) b.cols.(j)) in
  fun i ->
    match translated_key trans a.cols i with
    | Some key -> Hashtbl.mem bset key
    | None -> false

let select_columns ?name schema t js =
  let cols = Array.of_list (List.map (fun j -> t.cols.(j)) js) in
  (* a projection keeps every row, so the lineage array is shared *)
  let lin = if want_lin t then Some (lineage_rows t) else None in
  { name = Option.value name ~default:t.name; schema; cols; nrows = t.nrows;
    id = fresh_id (); lin }

let concat a b =
  let n = a.nrows + b.nrows in
  let cols =
    Array.mapi
      (fun j ca ->
        let cb = b.cols.(j) in
        let data = Array.make (max 8 n) 0 in
        Array.blit ca.buf.data 0 data 0 a.nrows;
        if ca.dict == cb.dict then Array.blit cb.buf.data 0 data a.nrows b.nrows
        else begin
          (* re-intern b's values into a's dictionary via a memo table *)
          let map = Array.make (Dict.size cb.dict) (-1) in
          for i = 0 to b.nrows - 1 do
            let c = cb.buf.data.(i) in
            let c' =
              if map.(c) >= 0 then map.(c)
              else begin
                let c' = Dict.intern ca.dict (Dict.value cb.dict c) in
                map.(c) <- c';
                c'
              end
            in
            data.(a.nrows + i) <- c'
          done
        end;
        { dict = ca.dict; buf = { data; len = n } })
      a.cols
  in
  let lin =
    if want_lin a || want_lin b then
      Some (Array.append (lineage_rows a) (lineage_rows b))
    else None
  in
  { name = a.name; schema = a.schema; cols; nrows = n; id = fresh_id (); lin }

let of_columns ?lineage:lin ~name schema ~nrows pairs =
  (match lin with
  | Some l when Array.length l <> nrows ->
      invalid_arg
        (Printf.sprintf "Table.of_columns: %d lineage rows for %d table rows"
           (Array.length l) nrows)
  | _ -> ());
  let cols =
    Array.map (fun (dict, data) -> { dict; buf = { data; len = nrows } }) pairs
  in
  { name; schema; cols; nrows; id = fresh_id (); lin }

let dict t j = t.cols.(j).dict
let codes t j = t.cols.(j).buf.data

let to_string t =
  let cols = Schema.columns t.schema in
  let header = Array.of_list cols in
  let width = Array.map String.length header in
  let decoded = rows t in
  List.iter
    (fun row ->
      Array.iteri
        (fun i v -> width.(i) <- max width.(i) (String.length (Value.to_string v)))
        row)
    decoded;
  let buf = Buffer.create 256 in
  let pad i s =
    Buffer.add_string buf s;
    Buffer.add_string buf (String.make (width.(i) - String.length s + 2) ' ')
  in
  Array.iteri pad header;
  Buffer.add_char buf '\n';
  Array.iteri (fun i _ -> pad i (String.make width.(i) '-')) header;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Array.iteri (fun i v -> pad i (Value.to_string v)) row;
      Buffer.add_char buf '\n')
    decoded;
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "%s [%d rows]@.%s" t.name (cardinality t) (to_string t)

let row_assoc t row =
  List.mapi (fun i c -> c, row.(i)) (Schema.columns t.schema)

let distinct_dicts t =
  Array.fold_left
    (fun acc c -> if List.memq c.dict acc then acc else c.dict :: acc)
    [] t.cols

let storage_bytes t =
  let word = Sys.word_size / 8 in
  let codes_bytes =
    Array.fold_left (fun acc c -> acc + (Array.length c.buf.data * word)) 0 t.cols
  in
  codes_bytes + List.fold_left (fun acc d -> acc + Dict.bytes d) 0 (distinct_dicts t)

let dict_sizes t =
  List.mapi (fun j c -> c, Dict.size t.cols.(j).dict) (Schema.columns t.schema)

let dict_hit_rate t =
  let hits, misses =
    List.fold_left
      (fun (h, m) d -> (h + Dict.hits d, m + Dict.misses d))
      (0, 0) (distinct_dicts t)
  in
  if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)
