(* EXPLAIN ANALYZE: execute a physical plan while timing every operator
   and counting the rows that flow through it — the runtime counterpart
   of Physical.explain.

   Each operator is also recorded as an Obs span (category "relalg"), so
   a --trace run shows the operator tree on the timeline, and per-query
   row counters accumulate in the "relalg" metric registry. *)

type node = {
  op : string;  (** one-line operator description *)
  rows_in : int;  (** rows consumed (sum of the children's outputs) *)
  rows_out : int;
  bytes_out : int;  (** columnar storage footprint of the operator's output *)
  materialized : bool;
      (** whether the operator allocated fresh code buffers ([true]) or
          returned a zero-copy view / the stored table itself ([false]) *)
  dict_hit : float;  (** dictionary hit rate of the output table *)
  elapsed_ns : int64;  (** inclusive wall time *)
  children : node list;
}

let reg = lazy (Obs.Metrics.registry "relalg")
let rows_scanned () = Obs.Metrics.counter (Lazy.force reg) "rows_scanned"
let rows_returned () = Obs.Metrics.counter (Lazy.force reg) "rows_returned"
let operators_run () = Obs.Metrics.counter (Lazy.force reg) "operators_run"
let queries_analyzed () = Obs.Metrics.counter (Lazy.force reg) "queries_analyzed"
let rows_materialized () = Obs.Metrics.counter (Lazy.force reg) "rows_materialized"
let rows_streamed () = Obs.Metrics.counter (Lazy.force reg) "rows_streamed"
let bytes_materialized () = Obs.Metrics.counter (Lazy.force reg) "bytes_materialized"

let describe : Physical.t -> string = function
  | Physical.Access (Physical.Seq_scan name) -> "seq scan " ^ name
  | Physical.Access (Physical.Index_lookup { table; column; value; residual }) ->
      Printf.sprintf "index lookup %s.%s = %s%s" table column
        (Value.to_sql value)
        (match residual with
        | None -> ""
        | Some e -> Format.asprintf " [filter %a]" Expr.pp e)
  | Physical.Select (e, _) -> Format.asprintf "filter %a" Expr.pp e
  | Physical.Project (cols, _) ->
      Printf.sprintf "project [%s]" (String.concat ", " cols)
  | Physical.Distinct _ -> "distinct"
  | Physical.Sort (keys, _) ->
      Printf.sprintf "sort [%s]"
        (String.concat ", "
           (List.map
              (fun (c, d) -> c ^ match d with `Asc -> "" | `Desc -> " desc")
              keys))
  | Physical.Limit (n, _) -> Printf.sprintf "limit %d" n
  | Physical.Union _ -> "union"
  | Physical.Except _ -> "except"
  | Physical.Intersect _ -> "intersect"
  | Physical.Join (on, _, _) ->
      Printf.sprintf "hash join [%s]"
        (String.concat ", "
           (List.map (fun (l, r) -> Printf.sprintf "%s=%s" l r) on))
  | Physical.Count _ -> "count"
  | Physical.Group_count (cols, _) ->
      Printf.sprintf "group count by [%s]" (String.concat ", " cols)
  | Physical.Empty cols ->
      Printf.sprintf "empty [%s]" (String.concat ", " cols)

let store_db = Physical.store_db

let rec execute store (p : Physical.t) : Table.t * node =
  let op = describe p in
  Obs.Trace.with_span ~cat:"relalg" op @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let finish ?(rows_in = -1) ?(materialized = true) children table =
    let rows_in =
      if rows_in >= 0 then rows_in
      else List.fold_left (fun acc c -> acc + c.rows_out) 0 children
    in
    let rows_out = Table.cardinality table in
    let bytes_out = Table.storage_bytes table in
    Obs.Metrics.incr (operators_run ());
    if materialized then begin
      Obs.Metrics.add (rows_materialized ()) rows_out;
      Obs.Metrics.add (bytes_materialized ()) bytes_out
    end
    else Obs.Metrics.add (rows_streamed ()) rows_out;
    ( table,
      {
        op;
        rows_in;
        rows_out;
        bytes_out;
        materialized;
        dict_hit = Table.dict_hit_rate table;
        elapsed_ns = Obs.Clock.since t0;
        children;
      } )
  in
  let funcs = Database.functions (store_db store) in
  match p with
  | Physical.Access a ->
      let source_rows =
        match a with
        | Physical.Seq_scan name
        | Physical.Index_lookup { table = name; _ } ->
            Table.cardinality (Database.find (store_db store) name)
      in
      let table = Physical.execute_access store a in
      Obs.Metrics.add (rows_scanned ()) (Table.cardinality table);
      (* a seq scan hands back the stored table itself; an index lookup
         gathers matching rows into fresh buffers *)
      let materialized =
        match a with Physical.Seq_scan _ -> false | _ -> true
      in
      finish ~rows_in:source_rows ~materialized [] table
  | Physical.Select (pred, inner) ->
      let t, c = execute store inner in
      finish [ c ] (Ops.select ~funcs pred t)
  | Physical.Project (cols, inner) ->
      let t, c = execute store inner in
      (* zero-copy: shares the child's buffers and dictionaries *)
      finish ~materialized:false [ c ] (Ops.project cols t)
  | Physical.Distinct inner ->
      let t, c = execute store inner in
      finish [ c ] (Table.distinct t)
  | Physical.Sort (keys, inner) ->
      let t, c = execute store inner in
      finish [ c ] (Ops.order_by keys t)
  | Physical.Limit (n, inner) ->
      let t, c = execute store inner in
      (* a prefix gather copies codes but not dictionaries *)
      finish [ c ] (Ops.limit n t)
  | Physical.Union (a, b) ->
      let ta, ca = execute store a in
      let tb, cb = execute store b in
      finish [ ca; cb ] (Ops.union ta tb)
  | Physical.Except (a, b) ->
      let ta, ca = execute store a in
      let tb, cb = execute store b in
      finish [ ca; cb ] (Ops.except ta tb)
  | Physical.Intersect (a, b) ->
      let ta, ca = execute store a in
      let tb, cb = execute store b in
      finish [ ca; cb ] (Ops.intersect ta tb)
  | Physical.Join (on, a, b) ->
      let ta, ca = execute store a in
      let tb, cb = execute store b in
      finish [ ca; cb ] (Ops.equi_join ~on ta tb)
  | Physical.Count inner ->
      let t, c = execute store inner in
      finish [ c ]
        (Table.of_rows ~name:"<count>"
           (Schema.of_list [ "count" ])
           [ [| Value.Int (Table.cardinality t) |] ])
  | Physical.Group_count (cols, inner) ->
      let t, c = execute store inner in
      finish [ c ]
        (Table.of_rows ~name:"<group>"
           (Schema.of_list (cols @ [ "count" ]))
           (List.map
              (fun (key, n) -> Array.append key [| Value.Int n |])
              (Ops.group_count ~by:cols t)))
  | Physical.Empty cols ->
      finish ~materialized:false []
        (Table.create ~name:"<empty>" (Schema.of_list cols))

type result = {
  table : Table.t;
  root : node;
  logical : Plan.t;
  physical : Physical.t;
  total_ns : int64;
}

let run ?(indexes = []) store src =
  Obs.Trace.with_span ~cat:"relalg"
    ~args:[ "query", Obs.Json.Str src ]
    "sql.analyze"
  @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let logical =
    Obs.Trace.with_span ~cat:"relalg" "plan.optimize" (fun () ->
        Plan.optimize (Plan.of_query (Sql_parser.parse_query src)))
  in
  let physical = Physical.physicalize ~indexes logical in
  let table, root = execute store physical in
  Obs.Metrics.incr (queries_analyzed ());
  Obs.Metrics.add (rows_returned ()) (Table.cardinality table);
  { table; root; logical; physical; total_ns = Obs.Clock.since t0 }

let render_node root =
  let buf = Buffer.create 512 in
  let rec go indent n =
    let self_ns =
      Int64.sub n.elapsed_ns
        (List.fold_left (fun acc c -> Int64.add acc c.elapsed_ns) 0L n.children)
    in
    Printf.ksprintf (Buffer.add_string buf)
      "%s%-*s rows in=%-6d out=%-6d %s %6s dict-hit=%3.0f%% time=%8.3f ms \
       (self %.3f ms)\n"
      (String.make indent ' ')
      (max 1 (46 - indent))
      n.op n.rows_in n.rows_out
      (if n.materialized then "mat   " else "stream")
      (Obs.Json.human_bytes n.bytes_out)
      (100. *. n.dict_hit)
      (Obs.Clock.to_ms n.elapsed_ns)
      (Obs.Clock.to_ms self_ns);
    List.iter (go (indent + 2)) n.children
  in
  go 0 root;
  Buffer.contents buf

let render r =
  Printf.sprintf "%stotal: %.3f ms, %d rows\n" (render_node r.root)
    (Obs.Clock.to_ms r.total_ns)
    (Table.cardinality r.table)

let rec node_to_json n =
  Obs.Json.Obj
    [
      "op", Obs.Json.Str n.op;
      "rows_in", Obs.Json.Int n.rows_in;
      "rows_out", Obs.Json.Int n.rows_out;
      "bytes_out", Obs.Json.Int n.bytes_out;
      "materialized", Obs.Json.Bool n.materialized;
      "dict_hit", Obs.Json.Float n.dict_hit;
      "elapsed_ns", Obs.Json.Float (Int64.to_float n.elapsed_ns);
      "children", Obs.Json.List (List.map node_to_json n.children);
    ]

let to_json r =
  Obs.Json.Obj
    [
      "schema", Obs.Json.Str "asura-explain/1";
      "rows", Obs.Json.Int (Table.cardinality r.table);
      "total_ns", Obs.Json.Float (Int64.to_float r.total_ns);
      "physical", Obs.Json.Str (Physical.explain r.physical);
      "plan", node_to_json r.root;
    ]
