(** The central database: a catalog of named tables plus registered boolean
    functions usable in WHERE clauses (e.g. [isrequest(inmsg)], section 4.3
    of the paper).

    A database value is immutable; [add]/[register_function] return updated
    catalogs. *)

type t

exception Unknown_table of string
exception Duplicate_table of string

exception Reserved_name of string
(** Raised by {!add}/{!replace}/{!remove} for names under the [sys.]
    prefix, which is reserved for engine-materialized telemetry tables
    ({!Systables} in [lib/obs/systables]). *)

val system_prefix : string
(** ["sys."] *)

val is_system_name : string -> bool
(** Whether a table name lies in the reserved [sys.] namespace. *)

val empty : t
val add : t -> Table.t -> t
(** Register a table under its own name.
    @raise Duplicate_table
    @raise Reserved_name on a [sys.]-prefixed name. *)

val replace : t -> Table.t -> t
(** Like {!add} but overwrites an existing binding.
    @raise Reserved_name on a [sys.]-prefixed name. *)

val add_system : t -> Table.t -> t
(** {!add} without the [sys.] guard — the registration path for the
    telemetry snapshotter, not for user data. @raise Duplicate_table. *)

val replace_system : t -> Table.t -> t
(** {!replace} without the [sys.] guard. *)

val remove : t -> string -> t
(** @raise Reserved_name on a [sys.]-prefixed name. *)

val find : t -> string -> Table.t
(** @raise Unknown_table. *)

val find_opt : t -> string -> Table.t option
val mem : t -> string -> bool
val tables : t -> Table.t list
(** All tables, in registration order. *)

val table_names : t -> string list

val register_function : t -> string -> (Value.t -> bool) -> t
(** Make a boolean function available to SQL WHERE clauses and
    {!Expr.eval}. *)

val functions : t -> Expr.funcs
(** Function resolver for this database. *)

val of_tables : Table.t list -> t
