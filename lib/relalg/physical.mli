(** Physical planning: choosing access paths for a logical plan.

    Given the columns that carry indexes, {!physicalize} rewrites
    [select … from t where c = 'v' and rest] into an index lookup on [c]
    with [rest] as a residual filter — the classical
    logical-plan → physical-plan step of a relational engine (and the
    other half of the paper's "query optimization techniques inherent in
    relational database systems").

    Index construction is handled by an {!store}: a lazy cache of
    {!Index.t} values per (table, column), built on first use against the
    database snapshot. *)

type access =
  | Seq_scan of string
  | Index_lookup of {
      table : string;
      column : string;
      value : Value.t;
      residual : Expr.t option;  (** remaining conjuncts, applied per row *)
    }

type t =
  | Access of access
  | Select of Expr.t * t
  | Project of string list * t
  | Distinct of t
  | Sort of (string * [ `Asc | `Desc ]) list * t
  | Limit of int * t
  | Union of t * t
  | Except of t * t
  | Intersect of t * t
  | Count of t
  | Group_count of string list * t
  | Join of (string * string) list * t * t
  | Empty of string list

type store
(** Lazy index cache bound to one database snapshot.  Entries remember
    the {!Table.id} of the snapshot they were built from, so a table
    re-registered under the same name (e.g. by [CREATE TABLE … AS]) is
    re-indexed on next use instead of served stale. *)

val make_store : Database.t -> store

val store_db : store -> Database.t
(** The database snapshot the store was built over. *)

val with_db : store -> Database.t -> store
(** The same index cache over a different database snapshot — the way to
    carry warm indexes across [CREATE TABLE]/[INSERT] statements.  Cache
    entries whose table changed storage identity are rebuilt lazily. *)

val indexed_columns : (string * string) list -> string -> string list
(** Columns declared indexed for a table, from a [(table, column)] list. *)

val physicalize : indexes:(string * string) list -> Plan.t -> t
(** Choose access paths: a [Select] directly over a [Scan] whose
    predicate contains a top-level [col = literal] conjunct on an indexed
    column becomes an {!access.Index_lookup}. *)

val execute : store -> t -> Table.t
(** Evaluate; index lookups hit the store's cache. *)

val execute_access : store -> access -> Table.t
(** Evaluate one access path (the leaves of {!execute}); exposed so
    {!Analyze} can time each operator individually. *)

val run : ?indexes:(string * string) list -> store -> string -> Table.t
(** Parse → logical optimize → physicalize → execute against the store's
    database. *)

val explain : t -> string
