type t =
  | Null
  | Str of string
  | Int of int
  | Bool of bool
  | Float of float

let equal a b =
  match a, b with
  | Null, Null -> true
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Float x, Float y -> Float.equal x y
  | (Null | Str _ | Int _ | Bool _ | Float _), _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

(* Numeric-aware ordering for SQL comparison predicates and ORDER BY:
   Int and Float compare by magnitude, everything else falls back to
   the strict total order.  Kept separate from [compare] so sorting and
   set-like dedup stay consistent with [equal] (where Int 1 <> Float 1.). *)
let order a b =
  match a, b with
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | _ -> compare a b

let hash = function
  | Null -> 0
  | Bool b -> if b then 17 else 19
  | Int i -> 23 * i + 5
  | Float f -> 29 * Hashtbl.hash f + 11
  | Str s -> 31 * Hashtbl.hash s + 7

let is_null = function
  | Null -> true
  | Str _ | Int _ | Bool _ | Float _ -> false

let str s = Str s

(* Floats always render with a decimal point (or exponent) so they can
   never collide with an Int rendering and survive CSV round-trips. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string = function
  | Null -> "-"
  | Str s -> s
  | Int i -> string_of_int i
  | Bool b -> string_of_bool b
  | Float f -> float_repr f

let to_sql = function
  | Null -> "NULL"
  | Str s -> "'" ^ s ^ "'"
  | Int i -> string_of_int i
  | Bool b -> if b then "TRUE" else "FALSE"
  | Float f -> float_repr f

let pp fmt v = Format.pp_print_string fmt (to_string v)
