(** Logical query plans and a rule-based optimizer.

    The paper attributes the speed of its invariant checking to "the many
    query optimization techniques inherent in relational database
    systems"; this module supplies the classical ones that matter for the
    emptiness-check workload: predicate simplification, selection
    merging, pushing selections below projections and through set
    operators, and short-circuiting provably-empty branches.

    {!execute} evaluates a plan against a database; optimization is
    semantics-preserving ({!optimize} then {!execute} equals direct
    execution — property-tested in the test suite). *)

type t =
  | Scan of string  (** a named table *)
  | Select of Expr.t * t
  | Project of string list * t
  | Distinct of t
  | Sort of (string * [ `Asc | `Desc ]) list * t
      (** stable sort by columns under {!Value.order} *)
  | Limit of int * t  (** first [n] rows in current order *)
  | Union of t * t
  | Except of t * t
  | Intersect of t * t
  | Count of t  (** row count of the subplan *)
  | Group_count of string list * t  (** one row per key with a count *)
  | Join of (string * string) list * t * t
      (** equi-join on [(left col, right col)] pairs; output schema is all
          left columns then the non-key right columns, as {!Ops.equi_join} *)
  | Empty of string list  (** a provably-empty relation with this schema *)

val of_query : Sql_ast.query -> t
(** Direct (unoptimized) translation of a parsed query. *)

val optimize : t -> t
(** Apply the rewrite rules to a fixpoint. *)

val simplify_predicate : Expr.t -> Expr.t
(** Constant folding and identity elimination on a predicate:
    [x AND true = x], [not (not p) = p], ['a' = 'b'] folds to [false],
    ternaries with constant conditions collapse, etc. *)

val execute : Database.t -> t -> Table.t

val explain : t -> string
(** Indented tree rendering, EXPLAIN-style. *)

val run : ?optimize:bool -> Database.t -> string -> Table.t
(** Parse, plan, optionally optimize, execute. *)
