open Sql_lexer

exception Parse_error of string

type cursor = { toks : token array; mutable pos : int }

let error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt
let peek c = c.toks.(c.pos)
let advance c = c.pos <- c.pos + 1

let next c =
  let t = peek c in
  advance c;
  t

let expect c t =
  let got = next c in
  if got <> t then
    error "expected %s, got %s"
      (Format.asprintf "%a" pp_token t)
      (Format.asprintf "%a" pp_token got)

let expect_ident c =
  match next c with
  | IDENT s -> s
  | t -> error "expected identifier, got %s" (Format.asprintf "%a" pp_token t)

let accept c t = if peek c = t then (advance c; true) else false

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

let literal c =
  match next c with
  | STRING s -> Value.Str s
  | INT i -> Value.Int i
  | FLOAT f -> Value.Float f
  | KW "NULL" -> Value.Null
  | KW "TRUE" -> Value.Bool true
  | KW "FALSE" -> Value.Bool false
  | t -> error "expected literal, got %s" (Format.asprintf "%a" pp_token t)

let operand c =
  match peek c with
  | IDENT s -> advance c; Expr.Col s
  | STRING _ | INT _ | FLOAT _ | KW ("NULL" | "TRUE" | "FALSE") ->
      Expr.Const (literal c)
  | t -> error "expected operand, got %s" (Format.asprintf "%a" pp_token t)

let literal_list c =
  expect c LPAREN;
  let rec go acc =
    let v = literal c in
    if accept c COMMA then go (v :: acc)
    else begin
      expect c RPAREN;
      List.rev (v :: acc)
    end
  in
  go []

let rec predicate c =
  let cond = or_expr c in
  if accept c QUESTION then begin
    let then_ = predicate c in
    expect c COLON;
    let else_ = predicate c in
    Expr.Ternary (cond, then_, else_)
  end
  else cond

and or_expr c =
  let left = and_expr c in
  if accept c (KW "OR") then Expr.Or (left, or_expr c) else left

and and_expr c =
  let left = not_expr c in
  if accept c (KW "AND") then Expr.And (left, and_expr c) else left

and not_expr c =
  if accept c (KW "NOT") then Expr.Not (not_expr c) else atom c

and atom c =
  match peek c with
  | LPAREN ->
      advance c;
      let p = predicate c in
      expect c RPAREN;
      p
  | KW "TRUE" -> advance c; Expr.True
  | KW "FALSE" -> advance c; Expr.False
  | IDENT name when c.toks.(c.pos + 1) = LPAREN ->
      (* Boolean function application, e.g. isrequest(inmsg). *)
      advance c;
      advance c;
      let arg = operand c in
      expect c RPAREN;
      Expr.Fn (name, arg)
  | _ ->
      let left = operand c in
      comparison c left

and comparison c left =
  match peek c with
  | EQ -> advance c; Expr.Eq (left, operand c)
  | NEQ -> advance c; Expr.Neq (left, operand c)
  | LT -> advance c; Expr.Cmp (Expr.Lt, left, operand c)
  | LE -> advance c; Expr.Cmp (Expr.Le, left, operand c)
  | GT -> advance c; Expr.Cmp (Expr.Gt, left, operand c)
  | GE -> advance c; Expr.Cmp (Expr.Ge, left, operand c)
  | KW "IN" -> advance c; Expr.In (left, literal_list c)
  | KW "NOT" ->
      advance c;
      expect c (KW "IN");
      Expr.Not (Expr.In (left, literal_list c))
  | t -> (
      (* No operator: a bare column is a boolean test, as in
         [WHERE NOT covered] over the sys.* telemetry tables. *)
      match left with
      | Expr.Col _ -> Expr.Eq (left, Expr.Const (Value.Bool true))
      | Expr.Const _ ->
          error "expected comparison operator, got %s"
            (Format.asprintf "%a" pp_token t))

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let count_star_ahead c =
  match peek c with
  | IDENT id ->
      String.lowercase_ascii id = "count" && c.toks.(c.pos + 1) = LPAREN
  | _ -> false

let eat_count_star c =
  advance c;
  advance c;
  expect c STAR;
  expect c RPAREN

let select_columns c =
  if accept c STAR then Sql_ast.Star
  else if count_star_ahead c then begin
    eat_count_star c;
    Sql_ast.Count
  end
  else
    let rec go acc =
      if count_star_ahead c then begin
        (* trailing COUNT star: a grouped aggregate *)
        eat_count_star c;
        Sql_ast.Group_count (List.rev acc)
      end
      else
        let col = expect_ident c in
        if accept c COMMA then go (col :: acc)
        else Sql_ast.Columns (List.rev (col :: acc))
    in
    go []

let rec query c =
  let left = simple_query c in
  match peek c with
  | KW "UNION" -> advance c; Sql_ast.Union (left, query c)
  | KW "EXCEPT" -> advance c; Sql_ast.Except (left, query c)
  | KW "INTERSECT" -> advance c; Sql_ast.Intersect (left, query c)
  | _ -> left

and simple_query c =
  match peek c with
  | LPAREN ->
      advance c;
      let q = query c in
      expect c RPAREN;
      q
  | KW "SELECT" ->
      advance c;
      let distinct = accept c (KW "DISTINCT") in
      let columns = select_columns c in
      expect c (KW "FROM");
      let from = expect_ident c in
      let where = if accept c (KW "WHERE") then Some (predicate c) else None in
      (match columns with
      | Sql_ast.Group_count cols ->
          expect c (KW "GROUP");
          expect c (KW "BY");
          let rec keys acc =
            let k = expect_ident c in
            if accept c COMMA then keys (k :: acc) else List.rev (k :: acc)
          in
          let by = keys [] in
          if by <> cols then
            error "GROUP BY keys (%s) must match the projected columns (%s)"
              (String.concat ", " by) (String.concat ", " cols)
      | Sql_ast.Star | Sql_ast.Columns _ | Sql_ast.Count -> ());
      let order_by =
        if accept c (KW "ORDER") then begin
          expect c (KW "BY");
          let rec keys acc =
            let col = expect_ident c in
            let dir =
              if accept c (KW "DESC") then Sql_ast.Desc
              else begin
                ignore (accept c (KW "ASC"));
                Sql_ast.Asc
              end
            in
            if accept c COMMA then keys ((col, dir) :: acc)
            else List.rev ((col, dir) :: acc)
          in
          keys []
        end
        else []
      in
      let limit =
        if accept c (KW "LIMIT") then
          match next c with
          | INT n when n >= 0 -> Some n
          | t ->
              error "expected row count after LIMIT, got %s"
                (Format.asprintf "%a" pp_token t)
        else None
      in
      Sql_ast.Select { distinct; columns; from; where; order_by; limit }
  | t -> error "expected SELECT, got %s" (Format.asprintf "%a" pp_token t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let tuple_rows c =
  let rec go acc =
    let row = literal_list c in
    if accept c COMMA then go (row :: acc) else List.rev (row :: acc)
  in
  go []

let statement c =
  match peek c with
  | KW "CREATE" ->
      advance c;
      expect c (KW "TABLE");
      let name = expect_ident c in
      expect c (KW "AS");
      Sql_ast.Create_table_as (name, query c)
  | KW "INSERT" ->
      advance c;
      expect c (KW "INTO");
      let name = expect_ident c in
      expect c (KW "VALUES");
      Sql_ast.Insert (name, tuple_rows c)
  | KW "DROP" ->
      advance c;
      expect c (KW "TABLE");
      Sql_ast.Drop_table (expect_ident c)
  | _ -> Sql_ast.Query (query c)

let finish c =
  ignore (accept c SEMI);
  match peek c with
  | EOF -> ()
  | t -> error "trailing input at %s" (Format.asprintf "%a" pp_token t)

let cursor_of src = { toks = Array.of_list (tokenize src); pos = 0 }

let parse_statement src =
  let c = cursor_of src in
  let s = statement c in
  finish c;
  s

let parse_query src =
  let c = cursor_of src in
  let q = query c in
  finish c;
  q

let parse_predicate src =
  let c = cursor_of src in
  let p = predicate c in
  finish c;
  p
