open Relalg

type assignment = { msg : string; src : string; dst : string; vc : string }
type t = { name : string; rows : assignment list }

let vc0 = "VC0"
let vc1 = "VC1"
let vc2 = "VC2"
let vc3 = "VC3"
let vc4 = "VC4"

let role = Protocol.Topology.node_class_to_string

let canonical m =
  role m.Protocol.Message.src, role m.Protocol.Message.dst

(* Channel for each message in its canonical direction, given the channel
   used by the directory-to-memory request path. *)
let base ~name ~mem_req_vc =
  let assign m =
    let src, dst = canonical m in
    let open Protocol.Message in
    let vc =
      match m.category, m.class_ with
      | Mem, Request -> Some mem_req_vc
      | Mem, Response -> Some vc2
      | Impl, _ -> None
      | _, Request ->
          if src = "local" && dst = "home" then Some vc0
          else if src = "home" && dst = "remote" then Some vc1
          else None
      | _, Response ->
          if src = "remote" && dst = "home" then Some vc2
          else if src = "home" && dst = "local" then Some vc3
          else None
    in
    Option.map (fun vc -> { msg = m.name; src; dst; vc }) vc
  in
  { name; rows = List.filter_map assign Protocol.Message.all }

let initial = base ~name:"V-initial" ~mem_req_vc:vc0
let with_vc4 = base ~name:"V-vc4" ~mem_req_vc:vc4

let remove t ~msg ~src ~dst =
  {
    t with
    rows =
      List.filter
        (fun a -> not (a.msg = msg && a.src = src && a.dst = dst))
        t.rows;
  }

let debugged =
  (* mread and the unacknowledged sharing writeback mupdate are the two
     requests the directory issues while consuming responses; both move to
     the dedicated hardware path (the paper's fix, which names mread). *)
  let v = remove with_vc4 ~msg:"mread" ~src:"home" ~dst:"home" in
  let v = remove v ~msg:"mupdate" ~src:"home" ~dst:"home" in
  { v with name = "V-debugged" }

let standard = [ initial; with_vc4; debugged ]

let lookup t ~msg ~src ~dst =
  List.find_map
    (fun a ->
      if a.msg = msg && a.src = src && a.dst = dst then Some a.vc else None)
    t.rows

let channels t =
  List.sort_uniq String.compare (List.map (fun a -> a.vc) t.rows)

let schema = Schema.of_list [ "m"; "s"; "d"; "v" ]

let to_table t =
  Table.of_rows ~name:t.name schema
    (List.map
       (fun a -> Row.strings [ a.msg; a.src; a.dst; a.vc ])
       t.rows)

let of_table tbl =
  let rows =
    Table.fold
      (fun acc row ->
        match Array.to_list row with
        | [ Value.Str msg; Value.Str src; Value.Str dst; Value.Str vc ] ->
            { msg; src; dst; vc } :: acc
        | _ -> acc)
      [] tbl
  in
  { name = Table.name tbl; rows = List.rev rows }

let reassign t ~msg ~src ~dst ~vc =
  let t = remove t ~msg ~src ~dst in
  { t with rows = t.rows @ [ { msg; src; dst; vc } ] }
