open Relalg

type assign = { msg : string; src : string; dst : string; vc : string }
type dep = { input : assign; output : assign }

type provenance =
  | Direct of string
  | Composed of {
      first : string;
      second : string;
      placement : Protocol.Topology.placement;
      exact : bool;
    }

type entry = {
  dep : dep;
  provenance : provenance;
  origin : (string * int) list;
}

let obs_reg = lazy (Obs.Metrics.registry "checker")
let obs_counter name = Obs.Metrics.counter (Lazy.force obs_reg) name

(* Read one (msg, src, dst) column triple off a row, resolving dont-care
   role cells from the message's canonical direction. *)
let triple_of_row schema row (mc, sc, dc) =
  let get c = row.(Schema.index schema c) in
  match get mc with
  | Value.Str msg ->
      let fallback f =
        match Protocol.Message.find msg with
        | Some m -> Some (Protocol.Topology.node_class_to_string (f m))
        | None -> None
      in
      let resolve cell f =
        match cell with
        | Value.Str s -> Some s
        | Value.Null -> fallback f
        | Value.Int _ | Value.Bool _ | Value.Float _ -> None
      in
      Option.bind (resolve (get sc) (fun m -> m.Protocol.Message.src))
        (fun src ->
          Option.map
            (fun dst -> msg, src, dst)
            (resolve (get dc) (fun m -> m.Protocol.Message.dst)))
  | Value.Null | Value.Int _ | Value.Bool _ | Value.Float _ -> None

let assign_of ~v (msg, src, dst) =
  Option.map
    (fun vc -> { msg; src; dst; vc })
    (Vcassign.lookup v ~msg ~src ~dst)

let individual ~v (c : Protocol.controller) =
  let tbl = Protocol.Ctrl_spec.table c.Protocol.spec in
  let schema = Table.schema tbl in
  let name = Protocol.Ctrl_spec.name c.Protocol.spec in
  let of_row i row =
    List.concat_map
      (fun in_triple ->
        match
          Option.bind (triple_of_row schema row in_triple) (assign_of ~v)
        with
        | None -> []
        | Some input ->
            List.filter_map
              (fun out_triple ->
                Option.bind
                  (Option.bind (triple_of_row schema row out_triple)
                     (assign_of ~v))
                  (fun output ->
                    Some
                      {
                        dep = { input; output };
                        provenance = Direct name;
                        origin = [ (name, i) ];
                      }))
              c.Protocol.out_triples)
      c.Protocol.in_triples
  in
  (* indexed scan, decoding one row at a time: the row number becomes the
     entry's origin so diagnostics can point back at the controller row *)
  let acc = ref [] in
  for i = Table.cardinality tbl - 1 downto 0 do
    acc := of_row i (Table.get tbl i) :: !acc
  done;
  List.concat !acc

let relocate placement d =
  let c = Protocol.Topology.canon_string placement in
  let move a = { a with src = c a.src; dst = c a.dst } in
  { input = move d.input; output = move d.output }

let matches ~ignore_messages out inp =
  out.src = inp.src && out.dst = inp.dst && out.vc = inp.vc
  && (ignore_messages || out.msg = inp.msg)

(* Pure pairwise composition — no observability recording, so it is safe
   to run on pool worker domains; callers account the match counts after
   the join. *)
let merge_origin a b =
  a @ List.filter (fun x -> not (List.mem x a)) b

let compose_core ~ignore_messages ~placement (n1, t1) (n2, t2) =
  let reloc t = List.map (fun e -> (relocate placement e.dep, e.origin)) t in
  let t1 = reloc t1 and t2 = reloc t2 in
  let provenance =
    Composed
      { first = n1; second = n2; placement; exact = not ignore_messages }
  in
  let entry (r, ro) (s, so) =
    {
      dep = { input = r.input; output = s.output };
      provenance;
      origin = merge_origin ro so;
    }
  in
  if Relalg.Planner.enabled () && List.compare_length_with t2 8 > 0 then begin
    (* hash-join shape: bucket the inner side by its match key once
       instead of scanning it per outer entry.  Buckets keep [t2] order,
       and [t1] drives iteration, so the output order is exactly the
       nested loop's. *)
    let key a =
      a.src ^ "\x00" ^ a.dst ^ "\x00" ^ a.vc
      ^ if ignore_messages then "" else "\x00" ^ a.msg
    in
    let buckets = Hashtbl.create (2 * List.length t2) in
    List.iter
      (fun ((s, _) as e) ->
        let k = key s.input in
        Hashtbl.replace buckets k
          (match Hashtbl.find_opt buckets k with
          | Some tail -> e :: tail
          | None -> [ e ]))
      (List.rev t2);
    List.concat_map
      (fun ((r, _) as outer) ->
        match Hashtbl.find_opt buckets (key r.output) with
        | None -> []
        | Some inners -> List.map (entry outer) inners)
      t1
  end
  else
    List.concat_map
      (fun ((r, _) as outer) ->
        List.filter_map
          (fun ((s, _) as inner) ->
            if matches ~ignore_messages r.output s.input then
              Some (entry outer inner)
            else None)
          t2)
      t1

(* per-placement-relation match counts for the composition pass *)
let record_matches placement matched =
  Obs.Metrics.add
    (obs_counter
       ("compose_matches."
       ^ Protocol.Topology.placement_to_string placement))
    (List.length matched)

(* One plan-observatory record per composition.  Compose is a
   programmatic join that bypasses the SQL planner, but its physical
   choice — hash-bucketed vs nested loop, decided by ASURA_PLANNER and
   the inner cardinality — is a plan decision the fingerprint must
   witness, so plan diffs catch a silent path flip here too.  Recorded
   from the spawning domain only (this wrapper, not [compose_core],
   which runs on pool workers). *)
let record_plan ~ignore_messages ~placement (n1, t1) (n2, t2) matched total_ns =
  if Obs.Config.on () then begin
    let len1 = List.length t1 and len2 = List.length t2 in
    let hash_path = Relalg.Planner.enabled () && len2 > 8 in
    let place = Protocol.Topology.placement_to_string placement in
    let fingerprint =
      Obs.Planlog.fingerprint
        [
          "compose";
          n1;
          n2;
          place;
          (if hash_path then "hash-bucket" else "nested-loop");
          (if ignore_messages then "inexact" else "exact");
        ]
    in
    (* each outer entry is expected to continue one transaction: the
       uninformed unit-match estimate est = |t1| *)
    let est = float_of_int len1 in
    let rows_out = List.length matched in
    let ns = Int64.to_float total_ns in
    let scan name len =
      {
        Obs.Planlog.op = "scan " ^ name;
        est_rows = float_of_int len;
        est_cost = float_of_int len;
        actual_rows = len;
        actual_ns = 0.;
        batches = 0;
      }
    in
    Obs.Planlog.record ~site:"dependency.compose" ~fingerprint
      ~query:(Printf.sprintf "compose %s . %s @ %s" n1 n2 place)
      ~est_cost:(float_of_int (len1 + len2) +. est)
      ~total_ns:ns ~rows_out
      [
        {
          Obs.Planlog.op =
            Printf.sprintf "compose %s (key=src,dst,vc%s)"
              (if hash_path then "hash-bucket" else "nested-loop")
              (if ignore_messages then "" else ",msg");
          est_rows = est;
          est_cost = float_of_int (len1 + len2) +. est;
          actual_rows = rows_out;
          actual_ns = ns;
          batches = 0;
        };
        scan n1 len1;
        scan n2 len2;
      ]
  end

let compose ~ignore_messages ~placement t1 t2 =
  let t0 = Obs.Clock.now_ns () in
  let matched = compose_core ~ignore_messages ~placement t1 t2 in
  let total_ns = Obs.Clock.since t0 in
  record_matches placement matched;
  record_plan ~ignore_messages ~placement t1 t2 matched total_ns;
  matched

let dedup entries =
  let seen = Hashtbl.create 256 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e.dep then false
      else begin
        Hashtbl.add seen e.dep ();
        true
      end)
    entries

let compose_closure ~ignore_messages ~placements entries =
  let parts =
    Par.Pool.map_list ~min_chunk:1
      (fun placement ->
        ( placement,
          compose_core ~ignore_messages ~placement ("closure", entries)
            ("closure", entries) ))
      placements
  in
  List.iter (fun (placement, matched) -> record_matches placement matched) parts;
  List.concat_map snd parts

let protocol_dependency ?placements ?(interleavings = true)
    ?(fixpoint = false) ~v controllers =
  Obs.Trace.with_span ~cat:"checker"
    ~args:[ "assignment", Obs.Json.Str v.Vcassign.name ]
    "checker.dependency"
  @@ fun () ->
  let placements =
    Option.value placements ~default:Protocol.Topology.all_placements
  in
  let named =
    Obs.Trace.with_span ~cat:"checker" "checker.individual" @@ fun () ->
    let extracted =
      Par.Pool.map_list ~min_chunk:1
        (fun c ->
          Protocol.Ctrl_spec.name c.Protocol.spec, dedup (individual ~v c))
        controllers
    in
    List.iter
      (fun (name, deps) ->
        Obs.Metrics.add
          (obs_counter ("direct_deps." ^ name))
          (List.length deps))
      extracted;
    extracted
  in
  let modes = if interleavings then [ false; true ] else [ false ] in
  let composed =
    Obs.Trace.with_span ~cat:"checker" "checker.compose" @@ fun () ->
    (* Fan the pairwise compositions — the five quad-placement relations
       times both matching modes times every ordered controller pair —
       across the domain pool as independent work items.  Flattening the
       nested iteration into a job list and concatenating results in job
       order reproduces the sequential nesting order exactly. *)
    let jobs =
      List.concat_map
        (fun placement ->
          List.concat_map
            (fun ignore_messages ->
              List.concat_map
                (fun t1 ->
                  List.map
                    (fun t2 -> placement, ignore_messages, t1, t2)
                    named)
                named)
            modes)
        placements
    in
    let parts =
      Par.Pool.map_list ~min_chunk:1
        (fun (placement, ignore_messages, t1, t2) ->
          placement, compose_core ~ignore_messages ~placement t1 t2)
        jobs
    in
    List.iter
      (fun (placement, matched) -> record_matches placement matched)
      parts;
    List.concat_map snd parts
  in
  let base = dedup (List.concat_map snd named @ composed) in
  Obs.Metrics.set
    (Obs.Metrics.gauge (Lazy.force obs_reg) "dependency_table_rows")
    (float_of_int (List.length base));
  if not fixpoint then base
  else begin
    (* iterate self-composition until no new dependency appears *)
    let rec iterate acc =
      let next =
        dedup
          (acc
          @ List.concat_map
              (fun ignore_messages ->
                compose_closure ~ignore_messages ~placements acc)
              modes)
      in
      if List.length next = List.length acc then acc else iterate next
    in
    iterate base
  end

let dep_schema =
  Schema.of_list
    [ "inmsg"; "insrc"; "indst"; "invc"; "outmsg"; "outsrc"; "outdst";
      "outvc" ]

let to_table ~name entries =
  let row e =
    let i = e.dep.input and o = e.dep.output in
    Row.strings [ i.msg; i.src; i.dst; i.vc; o.msg; o.src; o.dst; o.vc ]
  in
  Table.of_rows ~name dep_schema (List.map row entries)

let pp_assign fmt a =
  Format.fprintf fmt "(%s, %s, %s, %s)" a.msg a.src a.dst a.vc

let pp_dep fmt d =
  Format.fprintf fmt "%a -> %a" pp_assign d.input pp_assign d.output

let pp_provenance fmt = function
  | Direct n -> Format.fprintf fmt "direct from %s" n
  | Composed { first; second; placement; exact } ->
      Format.fprintf fmt "composed %s . %s under %s%s" first second
        (Protocol.Topology.placement_to_string placement)
        (if exact then "" else " ignoring messages")

let pp_origin fmt origin =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
    (fun fmt (table, row) -> Format.fprintf fmt "%s[row %d]" table row)
    fmt origin
