(** Explainable verdicts: from a failing check back to the table rows
    that caused it.

    The paper's workflow hands designers a cycle of virtual channels and
    expects them to reconstruct the offending protocol scenario by hand
    (the Figure 4 narrative: a writeback and a read-exclusive
    interleaved over VC2/VC4).  This module automates that
    reconstruction using the row-level provenance now carried by the
    engine:

    - each dependency entry knows the controller rows it was read off
      ({!Dependency.entry}[.origin]), so every cycle edge can be
      rendered as concrete controller transitions — which message is
      consumed, in which state, and which messages are emitted;
    - SQL invariant violations propagate {!Relalg.Lineage} through the
      relational operators, so every violating row can be decoded back
      into the base-table rows it was derived from. *)

val deadlock : Deadlock.report -> string
(** A Figure-4-style narrative for each VCG cycle: the channels in
    order; per edge, the witnessing dependencies with the controller
    rows behind them (non-NULL cells only — the transition's input
    message, state fields and output messages); and, per channel on the
    cycle, which controller transitions send into it (the traffic that
    can fill the queue and stall the cycle). *)

val deadlock_dot : Deadlock.report -> string
(** Graphviz export of just the witness subgraph: the channels on some
    cycle, each edge labeled with one witnessing dependency and its
    controller-row origin. *)

val invariant : Relalg.Database.t -> Invariant.t -> bool * string
(** Re-run one invariant under {!Relalg.Lineage.with_tracking} and
    explain the outcome: [(passed, narrative)].  For a violated SQL
    invariant every counterexample row is printed together with the
    base-table rows its lineage decodes to; native checks that build
    rows from scratch are reported without lineage. *)
