open Relalg

let pr buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

(* ------------------------- row rendering ------------------------------ *)

let controller_table name =
  Option.map
    (fun c -> Protocol.Ctrl_spec.table c.Protocol.spec)
    (Protocol.find name)

(* "col=val" for every non-NULL cell: a controller row is sparse, so the
   populated cells are exactly the transition's story — input message,
   state lookups/updates, output messages. *)
let non_null_cells schema row =
  List.filteri (fun j _ -> row.(j) <> Value.Null) (Schema.columns schema)
  |> List.map (fun c ->
         Printf.sprintf "%s=%s"
           c
           (Value.to_string row.(Schema.index schema c)))

let render_controller_row buf ~indent (name, i) =
  match controller_table name with
  | Some tbl when i < Table.cardinality tbl ->
      pr buf "%s%s[row %d]: %s\n" indent name i
        (String.concat " " (non_null_cells (Table.schema tbl) (Table.get tbl i)))
  | _ -> pr buf "%s%s[row %d]\n" indent name i

(* --------------------------- deadlock --------------------------------- *)

let max_witnesses = 3
let max_feeders = 6

(* The Direct dependencies sending into [vc], deduplicated by
   (controller, consumed message, emitted message): the transitions whose
   output traffic can fill the channel's queue. *)
let feeders entries vc =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (e : Dependency.entry) ->
      match e.provenance with
      | Dependency.Direct ctrl when e.dep.output.Dependency.vc = vc ->
          let key = (ctrl, e.dep.input.Dependency.msg, e.dep.output.Dependency.msg) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some (ctrl, e)
          end
      | _ -> None)
    entries

let edge_of cycle step =
  let nodes = Array.of_list cycle.Vcgraph.Cycles.nodes in
  let n = Array.length nodes in
  (nodes.(step), nodes.((step + 1) mod n))

let render_witness buf (e : Dependency.entry) =
  pr buf "      %s  [%s]\n"
    (Format.asprintf "%a" Dependency.pp_dep e.Dependency.dep)
    (Format.asprintf "%a" Dependency.pp_provenance e.Dependency.provenance);
  if e.Dependency.origin <> [] then begin
    pr buf "        read off controller row(s):\n";
    List.iter (render_controller_row buf ~indent:"        ") e.Dependency.origin
  end

let render_cycle buf entries i (c : _ Vcgraph.Cycles.cycle) =
  pr buf "cycle %d: %s\n" (i + 1) (Format.asprintf "%a" Vcgraph.Cycles.pp c);
  List.iteri
    (fun step witnesses ->
      let src, dst = edge_of c step in
      pr buf "  edge %s -> %s — consuming a message on %s needs queue space \
              on %s (%d witnessing dependencies):\n"
        src dst src dst (List.length witnesses);
      List.iteri
        (fun k e -> if k < max_witnesses then render_witness buf e)
        witnesses;
      if List.length witnesses > max_witnesses then
        pr buf "      ... %d more\n" (List.length witnesses - max_witnesses))
    c.Vcgraph.Cycles.labels;
  (* Who else sends into each channel of the cycle: the traffic that can
     fill its queue and make the dependency bite (the paper's wb/readex
     interleaving is reconstructed from exactly this). *)
  pr buf "  traffic feeding the cycle's channels:\n";
  List.iter
    (fun vc ->
      let fs = feeders entries vc in
      pr buf "    into %s:\n" vc;
      List.iteri
        (fun k (ctrl, (e : Dependency.entry)) ->
          if k < max_feeders then begin
            pr buf "      %s, consuming %s, sends %s (%s -> %s on %s)\n" ctrl
              e.Dependency.dep.input.Dependency.msg
              e.Dependency.dep.output.Dependency.msg
              e.Dependency.dep.output.Dependency.src
              e.Dependency.dep.output.Dependency.dst vc;
            List.iter
              (render_controller_row buf ~indent:"        ")
              e.Dependency.origin
          end)
        fs;
      if List.length fs > max_feeders then
        pr buf "      ... %d more\n" (List.length fs - max_feeders))
    c.Vcgraph.Cycles.nodes

let deadlock (r : Deadlock.report) =
  let buf = Buffer.create 4096 in
  pr buf "why deadlock? (assignment %s)\n" r.Deadlock.assignment.Vcassign.name;
  (match r.Deadlock.cycles with
  | [] ->
      pr buf
        "  no cycle in the virtual-channel dependency graph: every chain of \
         \"consume here needs space there\" terminates, so no set of full \
         queues can wait on itself.  Deadlock free.\n"
  | cycles ->
      pr buf
        "  %d cycle(s) in the virtual-channel dependency graph — each is a \
         ring of channels whose queues can all be full waiting on each \
         other:\n\n"
        (List.length cycles);
      List.iteri (fun i c -> render_cycle buf r.Deadlock.entries i c) cycles);
  Buffer.contents buf

let dot_escape s = String.concat "\\n" (String.split_on_char '\n' s)

let deadlock_dot (r : Deadlock.report) =
  let buf = Buffer.create 1024 in
  pr buf "digraph why {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  let nodes = Hashtbl.create 8 and edges = Hashtbl.create 8 in
  List.iter
    (fun (c : _ Vcgraph.Cycles.cycle) ->
      List.iter
        (fun vc ->
          if not (Hashtbl.mem nodes vc) then begin
            Hashtbl.add nodes vc ();
            pr buf "  \"%s\";\n" vc
          end)
        c.Vcgraph.Cycles.nodes;
      List.iteri
        (fun step witnesses ->
          let src, dst = edge_of c step in
          if not (Hashtbl.mem edges (src, dst)) then begin
            Hashtbl.add edges (src, dst) ();
            let label =
              match witnesses with
              | [] -> ""
              | (e : Dependency.entry) :: _ ->
                  dot_escape
                    (Printf.sprintf "%s\n%s"
                       (Format.asprintf "%a" Dependency.pp_dep e.Dependency.dep)
                       (Format.asprintf "%a" Dependency.pp_origin
                          e.Dependency.origin))
            in
            pr buf "  \"%s\" -> \"%s\" [label=\"%s\"];\n" src dst label
          end)
        c.Vcgraph.Cycles.labels)
    r.Deadlock.cycles;
  pr buf "}\n";
  Buffer.contents buf

(* --------------------------- invariant -------------------------------- *)

let max_violations = 5

let render_contrib buf (c : Lineage.contrib) =
  match Lineage.source c.Lineage.source with
  | None -> pr buf "      %s[row %d]\n" (Lineage.source_name c.Lineage.source) c.Lineage.row
  | Some s ->
      let row = s.Lineage.get c.Lineage.row in
      let rendered =
        List.concat
          (List.mapi
             (fun j col ->
               if row.(j) = Value.Null then []
               else [ Printf.sprintf "%s=%s" col (Value.to_string row.(j)) ])
             s.Lineage.columns)
      in
      pr buf "      %s[row %d]: %s\n" s.Lineage.name c.Lineage.row
        (String.concat " " rendered)

let invariant db (inv : Invariant.t) =
  Lineage.with_tracking @@ fun () ->
  let r = Invariant.run db inv in
  let buf = Buffer.create 2048 in
  pr buf "why invariant %s?\n  \"%s\" (over %s)\n" inv.Invariant.id
    inv.Invariant.description inv.Invariant.controller;
  (match inv.Invariant.check with
  | Invariant.Sql q -> pr buf "  check: [%s] selects the violating rows\n" q
  | Invariant.Native _ -> pr buf "  check: native (non-SQL) counterexample search\n");
  let v = r.Invariant.violations in
  if r.Invariant.passed then
    pr buf "  HOLDS: the check selected no rows — no reachable controller \
            row contradicts it.\n"
  else begin
    pr buf "  VIOLATED: %d counterexample row(s)%s\n" (Table.cardinality v)
      (if Table.cardinality v > max_violations then
         Printf.sprintf " (showing %d)" max_violations
       else "");
    let schema = Table.schema v in
    let lin = Table.lineage v in
    for i = 0 to min (Table.cardinality v) max_violations - 1 do
      pr buf "  row %d: %s\n" i
        (String.concat " " (non_null_cells schema (Table.get v i)));
      match lin with
      | None ->
          pr buf "    (no lineage: rows were built directly, not derived \
                  from base tables)\n"
      | Some lin ->
          if Array.length lin.(i) = 0 then
            pr buf "    (no base contributors recorded)\n"
          else begin
            pr buf "    derived from %s:\n" (Lineage.to_string lin.(i));
            Array.iter (render_contrib buf) lin.(i)
          end
    done
  end;
  (r.Invariant.passed, Buffer.contents buf)
