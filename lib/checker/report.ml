type options = {
  include_tables : bool;
  include_constraints : bool;
  assignment : Vcassign.t;
}

let default_options =
  {
    include_tables = false;
    include_constraints = false;
    assignment = Vcassign.debugged;
  }

let buffer_printf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let deadlock_section r =
  let buf = Buffer.create 1024 in
  let pr fmt = buffer_printf buf fmt in
  pr "## Deadlock analysis (%s)\n\n" r.Deadlock.assignment.Vcassign.name;
  pr "| metric | value |\n|---|---|\n";
  pr "| dependency rows | %d |\n" (List.length r.Deadlock.entries);
  pr "| channels | %d |\n" (Vcgraph.Digraph.num_vertices r.Deadlock.vcg);
  pr "| channel edges | %d |\n" (Vcgraph.Digraph.num_edges r.Deadlock.vcg);
  pr "| cycles | %d |\n\n" (List.length r.Deadlock.cycles);
  if r.Deadlock.cycles = [] then
    pr "**No cycles: the assignment is deadlock free.**\n"
  else begin
    pr "**Potential deadlocks — each cycle needs review:**\n\n";
    List.iteri
      (fun i (c : _ Vcgraph.Cycles.cycle) ->
        pr "%d. `%s`\n" (i + 1) (Format.asprintf "%a" Vcgraph.Cycles.pp c);
        List.iter
          (fun witnesses ->
            match witnesses with
            | (e : Dependency.entry) :: _ ->
                pr "   - %s (%s)\n"
                  (Format.asprintf "%a" Dependency.pp_dep e.dep)
                  (Format.asprintf "%a" Dependency.pp_provenance e.provenance)
            | [] -> ())
          c.labels)
      r.Deadlock.cycles
  end;
  Buffer.contents buf

let invariant_section results =
  let buf = Buffer.create 1024 in
  let pr fmt = buffer_printf buf fmt in
  let failures = Invariant.failures results in
  pr "## Protocol invariants\n\n";
  pr "%d invariants checked, %d failed.\n\n" (List.length results)
    (List.length failures);
  pr "| invariant | table | status | description |\n|---|---|---|---|\n";
  List.iter
    (fun (r : Invariant.result) ->
      pr "| `%s` | %s | %s | %s |\n" r.invariant.id r.invariant.controller
        (if r.passed then "ok" else "**FAIL**")
        r.invariant.description)
    results;
  List.iter
    (fun (r : Invariant.result) ->
      pr "\n### Violations of `%s`\n\n```\n%s```\n" r.invariant.id
        (Relalg.Table.to_string r.violations))
    failures;
  Buffer.contents buf

let generate ?(options = default_options) () =
  let buf = Buffer.create 8192 in
  let pr fmt = buffer_printf buf fmt in
  pr "# Enhanced architecture specification\n\n";
  pr "Protocol: ASURA directory-based MESI coherence (reconstruction).\n\n";
  pr "## Controller tables\n\n";
  pr "| table | rows | columns | scenarios |\n|---|---|---|---|\n";
  List.iter
    (fun c ->
      let t = Protocol.Ctrl_spec.table c.Protocol.spec in
      pr "| %s | %d | %d | %d |\n" (Relalg.Table.name t)
        (Relalg.Table.cardinality t) (Relalg.Table.arity t)
        (List.length (Protocol.Ctrl_spec.scenarios c.Protocol.spec)))
    Protocol.controllers;
  pr "\n%d message types, %d busy states, %d placements considered.\n\n"
    (List.length Protocol.Message.all)
    (List.length Protocol.State.all_busy_states)
    (List.length Protocol.Topology.all_placements);
  pr "## Table profiles\n\n";
  pr "Per-column sparsity and most-common values (the paper's \"the table \
     D … is quite sparse\"):\n\n";
  List.iter
    (fun c ->
      let t = Protocol.Ctrl_spec.table c.Protocol.spec in
      pr "```\n%s```\n\n"
        (Relalg.Profile.to_string (Relalg.Profile.profile t)))
    Protocol.controllers;
  if options.include_constraints then begin
    pr "## Column constraints\n\n";
    List.iter
      (fun c ->
        pr "```\n%s```\n\n"
          (Protocol.Ctrl_spec.constraints_listing c.Protocol.spec))
      Protocol.controllers
  end;
  if options.include_tables then begin
    pr "## Full tables\n\n";
    List.iter
      (fun c ->
        let t = Protocol.Ctrl_spec.table c.Protocol.spec in
        pr "### %s\n\n```\n%s```\n\n" (Relalg.Table.name t)
          (Relalg.Table.to_string t))
      Protocol.controllers
  end;
  pr "## Virtual-channel assignment\n\n```\n%s```\n\n"
    (Relalg.Table.to_string (Vcassign.to_table options.assignment));
  pr "%s\n" (deadlock_section (Deadlock.analyze options.assignment));
  pr "%s" (invariant_section (Invariant.run_all (Protocol.database ())));
  Buffer.contents buf
