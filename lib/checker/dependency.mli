(** Channel-dependency extraction and composition (section 4.1).

    A {e dependency} says: consuming a message that arrived on one virtual
    channel requires queue space on another.  Dependencies are read off
    the controller tables: every row with an incoming assignment (message,
    source, destination, channel) ∈ V and an outgoing assignment ∈ V
    contributes one dependency per outgoing message column.

    Dependencies are then {e composed} pairwise: if row R's output
    assignment matches row S's input assignment, the transitive dependency
    (R.input, S.output) is added.  Matching is relaxed in two steps, per
    the paper:
    - {e quad placement}: under each of the five placements of
      (local, home, remote) into quads, roles in the same quad are
      identified (they share physical channels), so e.g. a [remote → home]
      input matches a [home → home] output when H = R;
    - {e transaction interleaving}: message names are ignored, matching on
      (source, destination, channel) only — two different transactions
      queued behind each other on the same channel. *)

type assign = { msg : string; src : string; dst : string; vc : string }

type dep = { input : assign; output : assign }

type provenance =
  | Direct of string  (** read directly off the named controller table *)
  | Composed of {
      first : string;
      second : string;
      placement : Protocol.Topology.placement;
      exact : bool;  (** false when matched ignoring messages *)
    }

type entry = {
  dep : dep;
  provenance : provenance;
  origin : (string * int) list;
      (** Row-level lineage: the controller-table rows this dependency was
          read off, as (controller name, 0-based row index) pairs.  A
          [Direct] entry has exactly one; a [Composed] entry the union of
          both parents', order preserved. *)
}

val individual : v:Vcassign.t -> Protocol.controller -> entry list
(** The individual controller dependency table. *)

val relocate : Protocol.Topology.placement -> dep -> dep
(** Rewrite the roles of both assignments to their quad representatives —
    the paper's "R2 is modified to R2'" step.  Channels are unchanged. *)

val compose :
  ignore_messages:bool ->
  placement:Protocol.Topology.placement ->
  string * entry list ->
  string * entry list ->
  entry list
(** [compose (n1, t1) (n2, t2)]: all transitive dependencies obtained by
    matching outputs of [t1] against inputs of [t2] after relocating both
    under [placement]. *)

val protocol_dependency :
  ?placements:Protocol.Topology.placement list ->
  ?interleavings:bool ->
  ?fixpoint:bool ->
  v:Vcassign.t ->
  Protocol.controller list ->
  entry list
(** The overall protocol dependency table: union of all individual tables
    and all pairwise compositions under every placement (default: all
    five), with ([interleavings], default true) and without the
    message-ignoring relaxation.  Duplicate dependencies are merged,
    keeping the first provenance.

    [fixpoint] (default false) repeats the composition until no new
    dependency appears — the paper's footnote: "to ensure that [the]
    protocol dependency table includes all the dependencies, it is
    necessary to repeatedly compose … until no new dependencies are
    added.  However, in practice this was not needed."  Experiment E13
    verifies the footnote: the fixpoint adds rows but no new channel
    edges or cycles. *)

val compose_closure :
  ignore_messages:bool ->
  placements:Protocol.Topology.placement list ->
  entry list ->
  entry list
(** One self-composition round over an accumulated dependency set, used
    by the fixpoint iteration. *)

val to_table : name:string -> entry list -> Relalg.Table.t
(** Eight-column tabular form
    (inmsg, insrc, indst, invc, outmsg, outsrc, outdst, outvc). *)

val pp_dep : Format.formatter -> dep -> unit
val pp_provenance : Format.formatter -> provenance -> unit

val pp_origin : Format.formatter -> (string * int) list -> unit
(** ["D[row 12] + M[row 3]"]. *)
