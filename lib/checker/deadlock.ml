type report = {
  assignment : Vcassign.t;
  entries : Dependency.entry list;
  vcg : Dependency.entry list Vcgraph.Digraph.t;
  cycles : Dependency.entry list Vcgraph.Cycles.cycle list;
}

let analyze ?placements ?interleavings ?fixpoint ?controllers assignment =
  Obs.Trace.with_span ~cat:"checker"
    ~args:[ "assignment", Obs.Json.Str assignment.Vcassign.name ]
    "deadlock.analyze"
  @@ fun () ->
  let controllers =
    Option.value controllers ~default:Protocol.deadlock_controllers
  in
  let entries =
    Dependency.protocol_dependency ?placements ?interleavings ?fixpoint
      ~v:assignment controllers
  in
  let vcg =
    Obs.Trace.with_span ~cat:"checker" "checker.vcg_build" (fun () ->
        Vcg.build entries)
  in
  let cycles =
    Obs.Trace.with_span ~cat:"checker" "checker.cycles" (fun () ->
        Vcg.cycles vcg)
  in
  let reg = Obs.Metrics.registry "checker" in
  Obs.Metrics.add (Obs.Metrics.counter reg "cycles_found") (List.length cycles);
  { assignment; entries; vcg; cycles }

let is_deadlock_free r = r.cycles = []

let cycles_through r vc = Vcgraph.Cycles.involving r.cycles vc

let summary r =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "deadlock analysis for %s\n" r.assignment.Vcassign.name;
  pr "  protocol dependency table: %d rows\n" (List.length r.entries);
  pr "  VCG: %d channels, %d edges\n"
    (Vcgraph.Digraph.num_vertices r.vcg)
    (Vcgraph.Digraph.num_edges r.vcg);
  (match r.cycles with
  | [] -> pr "  no cycles: deadlock free\n"
  | cycles ->
      pr "  %d cycle(s) found:\n" (List.length cycles);
      List.iteri
        (fun i (c : _ Vcgraph.Cycles.cycle) ->
          pr "  cycle %d: %s\n" (i + 1)
            (Format.asprintf "%a" Vcgraph.Cycles.pp c);
          List.iteri
            (fun step witnesses ->
              pr "    edge %d (%d witnessing dependencies):\n" (step + 1)
                (List.length witnesses);
              List.iteri
                (fun k (e : Dependency.entry) ->
                  if k < 3 then
                    pr "      %s  [%s]\n"
                      (Format.asprintf "%a" Dependency.pp_dep e.dep)
                      (Format.asprintf "%a" Dependency.pp_provenance
                         e.provenance))
                witnesses)
            c.labels)
        cycles);
  Buffer.contents buf

let narrative () =
  [
    ( "four channels VC0-VC3; directory-to-memory requests share VC0",
      analyze Vcassign.initial );
    ( "VC4 added for directory-to-memory requests (paper Figure 4 setup)",
      analyze Vcassign.with_vc4 );
    ( "mread moved to a dedicated hardware path (the paper's fix)",
      analyze Vcassign.debugged );
  ]
