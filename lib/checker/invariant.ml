open Relalg

type check = Sql of string | Native of (Database.t -> Table.t)

type t = {
  id : string;
  description : string;
  controller : string;
  check : check;
}

type result = { invariant : t; passed : bool; violations : Table.t }

let sql id controller description q =
  { id; description; controller; check = Sql q }

let native id controller description f =
  { id; description; controller; check = Native f }

let violation_rows rows =
  Table.of_rows ~name:"violations" (Schema.of_list [ "witness" ])
    (List.map (fun w -> [| Value.str w |]) rows)

(* ------------------------------------------------------------------ *)
(* Native checks                                                       *)
(* ------------------------------------------------------------------ *)

(* A controller table must be a function of its inputs: no two rows may
   agree on every input column yet disagree on an output.  Runs entirely
   in code space: within one table, cells are equal iff their dictionary
   codes are, so both the input-key grouping and the full-row comparison
   are integer work; a key is only decoded to report a violation. *)
let determinism_check db =
  ignore db;
  let bad = ref [] in
  List.iter
    (fun (c : Protocol.controller) ->
      let tbl = Protocol.Ctrl_spec.table c.Protocol.spec in
      let name = Protocol.Ctrl_spec.name c.Protocol.spec in
      let ins = Protocol.Ctrl_spec.input_columns c.Protocol.spec in
      let projected = Ops.project ins tbl in
      let schema = Table.schema tbl in
      let n = Table.cardinality tbl in
      let all = Array.init (Table.arity tbl) (Table.codes tbl) in
      let key_cols =
        Array.of_list
          (List.map (fun col -> all.(Schema.index schema col)) ins)
      in
      let seen = Hashtbl.create 64 in
      for i = 0 to n - 1 do
        let key = Array.map (fun cs -> cs.(i)) key_cols in
        match Hashtbl.find_opt seen key with
        | None -> Hashtbl.add seen key i
        | Some i0 ->
            if not (Array.for_all (fun cs -> cs.(i0) = cs.(i)) all) then
              bad :=
                Printf.sprintf "%s: duplicate inputs %s" name
                  (Format.asprintf "%a" Row.pp (Table.get projected i))
                :: !bad
      done)
    Protocol.controllers;
  violation_rows (List.rev !bad)

(* Distinct strings of a column, straight off the dictionary: mark the
   codes that occur, decode each marked code once. *)
let distinct_values tbl col =
  let j = Schema.index (Table.schema tbl) col in
  let dict = Table.dict tbl j and codes = Table.codes tbl j in
  let present = Array.make (max 1 (Dict.size dict)) false in
  for i = 0 to Table.cardinality tbl - 1 do
    present.(codes.(i)) <- true
  done;
  let acc = ref [] in
  Array.iteri
    (fun c p ->
      if p then
        match Dict.value dict c with
        | Value.Str s -> acc := s :: !acc
        | _ -> ())
    present;
  List.sort_uniq String.compare !acc

(* Every snoop response a cache can emit (in reply to a snoop the
   directory actually sends) must be handled by some D response row. *)
let snoop_coverage_check db =
  let d = Database.find db "D" and c = Database.find db "C" in
  let sent = distinct_values d "remmsg" in
  let handled = distinct_values d "inmsg" in
  let schema_c = Table.schema c in
  (* membership of each dictionary entry is decided once per code; the
     row scan is then two array reads and two boolean lookups *)
  let ji = Schema.index schema_c "inmsg"
  and jr = Schema.index schema_c "respmsg" in
  let di = Table.dict c ji and dr = Table.dict c jr in
  let in_set d values =
    Array.init (Dict.size d) (fun code ->
        match Dict.value d code with
        | Value.Str s -> List.mem s values
        | _ -> false)
  in
  let snoop_sent = in_set di sent and resp_handled = in_set dr handled in
  let ci = Table.codes c ji and cr = Table.codes c jr in
  let bad = ref [] in
  for i = 0 to Table.cardinality c - 1 do
    if snoop_sent.(ci.(i)) && not resp_handled.(cr.(i)) then
      match (Dict.value di ci.(i), Dict.value dr cr.(i)) with
      | Value.Str snoop, Value.Str resp ->
          bad :=
            Printf.sprintf "C answers %s with unhandled %s" snoop resp :: !bad
      | _ -> ()
  done;
  violation_rows (List.sort_uniq String.compare !bad)

(* Every request the processor interface can issue must have at least one
   serving row and one retry row in D. *)
let request_coverage_check db =
  let d = Database.find db "D" and pif = Database.find db "PIF" in
  let issued = distinct_values pif "reqmsg" in
  let served =
    distinct_values
      (Planner.select (Expr.eq "bdirlookup" "miss") d)
      "inmsg"
  in
  let retried =
    distinct_values (Planner.select (Expr.eq "locmsg" "retry") d) "inmsg"
  in
  let bad =
    List.concat_map
      (fun m ->
        (if List.mem m served then []
         else [ Printf.sprintf "no serving row in D for %s" m ])
        @
        if
          List.mem m retried
          || List.mem m [ "repl"; "racevict" ] (* droppable hints *)
        then []
        else [ Printf.sprintf "no retry row in D for %s" m ])
      issued
  in
  violation_rows bad

(* Every response the directory can send to the requester must be handled
   by the node controller. *)
let local_response_coverage_check db =
  let d = Database.find db "D" and n = Database.find db "N" in
  let sent = distinct_values d "locmsg" in
  let handled = distinct_values n "inmsg" in
  violation_rows
    (List.filter_map
       (fun m ->
         if List.mem m handled then None
         else Some (Printf.sprintf "N does not handle %s" m))
       sent)

let busy_family name =
  match String.split_on_char '-' name with
  | "Busy" :: txn :: _ -> Some txn
  | _ -> None

(* Busy-directory updates stay within one transaction family. *)
let busy_family_check db =
  let d = Database.find db "D" in
  let schema = Table.schema d in
  let get row c = row.(Schema.index schema c) in
  let bad = ref [] in
  Table.iter
    (fun row ->
      match get row "bdirop", get row "bdirst", get row "nxtbdirst" with
      | Value.Str "update", Value.Str from_, Value.Str to_ -> (
          match busy_family from_, busy_family to_ with
          | Some f1, Some f2 when f1 <> f2 ->
              bad := Printf.sprintf "update %s -> %s crosses families" from_ to_ :: !bad
          | _ -> ())
      | _ -> ())
    d;
  violation_rows (List.rev !bad)

(* Every busy family that is allocated is eventually deallocated and vice
   versa (otherwise the busy directory leaks or a dealloc is dead code). *)
let busy_lifecycle_check db =
  let d = Database.find db "D" in
  let families op col =
    List.sort_uniq compare
      (List.filter_map busy_family
         (distinct_values (Planner.select (Expr.eq "bdirop" op) d) col))
  in
  let allocated = families "alloc" "nxtbdirst" in
  let deallocated = families "dealloc" "bdirst" in
  let missing tag l1 l2 =
    List.filter_map
      (fun f ->
        if List.mem f l2 then None
        else Some (Printf.sprintf "family %s %s" f tag))
      l1
  in
  violation_rows
    (missing "allocated but never deallocated" allocated deallocated
    @ missing "deallocated but never allocated" deallocated allocated)

(* Every busy state the directory can enter must have consuming rows for
   everything it waits on, or a transaction can hang there forever.  The
   expected stimuli per pending suffix: s/sd wait on snoop responses,
   d/sd on a memory response, w on the owner's crossing writeback, m/sm
   on the memory ack, sr/sm on the late snoop response. *)
let busy_progress_check db =
  let d = Database.find db "D" in
  let entered =
    List.sort_uniq String.compare
      (distinct_values (Planner.select (Expr.neq "bdirop" "dealloc") d) "nxtbdirst")
  in
  let consumed_by state msgs =
    not
      (Table.is_empty
         (Planner.select
            Expr.(eq "bdirst" state &&& isin "inmsg" msgs)
            d))
  in
  let snoop_responses = [ "idone"; "sdata"; "sack"; "snack"; "swbdata" ] in
  let needs state =
    match String.rindex_opt state '-' with
    | None -> []
    | Some i -> (
        match String.sub state (i + 1) (String.length state - i - 1) with
        | "sd" -> [ "snoop response", snoop_responses;
                    "memory response", [ "mdata"; "mack"; "mnack" ] ]
        | "s" -> [ "snoop response", snoop_responses ]
        | "d" -> [ "memory response", [ "mdata"; "mack"; "mnack" ] ]
        | "w" -> [ "crossing writeback", [ "wb" ] ]
        | "m" -> [ "memory ack", [ "mack"; "mnack" ] ]
        | "sm" -> [ "memory ack", [ "mack"; "mnack" ];
                    "late snoop response", [ "snack" ] ]
        | "sr" -> [ "late snoop response", [ "snack" ] ]
        | "c" -> [ "completion ack", [ "compl" ] ]
        | _ -> [])
  in
  let bad =
    List.concat_map
      (fun state ->
        if state = "I" then []
        else
          List.filter_map
            (fun (what, msgs) ->
              if consumed_by state msgs then None
              else Some (Printf.sprintf "%s can hang: no %s row" state what))
            (needs state))
      entered
  in
  violation_rows bad

(* ------------------------------------------------------------------ *)
(* The suite                                                           *)
(* ------------------------------------------------------------------ *)

let all =
  [
    (* -- directory state / presence vector (paper, section 4.3) ------ *)
    sql "d-mesi-pv-one" "D"
      "a MESI line has exactly one owner in the presence vector"
      "SELECT dirst, dirpv FROM D WHERE dirst = 'MESI' AND NOT dirpv = 'one'";
    sql "d-si-pv-many" "D" "an SI line has one or more sharers"
      "SELECT dirst, dirpv FROM D WHERE dirst = 'SI' AND NOT dirpv IN ('one','gone')";
    sql "d-i-pv-zero" "D" "an invalid line has no sharers"
      "SELECT dirst, dirpv FROM D WHERE dirst = 'I' AND NOT dirpv = 'zero'";
    sql "d-reqpv-consistent" "D"
      "a set requester presence bit implies a non-empty presence vector"
      "SELECT reqpv, dirpv FROM D WHERE reqpv = 'in' AND dirpv = 'zero'";
    (* -- directory / busy-directory mutual exclusion (paper) --------- *)
    sql "d-dir-bdir-exclusive" "D"
      "a line lives in the directory or the busy directory, never both"
      "SELECT dirst, bdirst FROM D WHERE NOT dirst = 'I' AND NOT dirst = NULL AND NOT bdirst = 'I' AND NOT bdirst = NULL";
    (* -- request serialization (paper) -------------------------------- *)
    sql "d-busy-retry" "D"
      "a request that finds the line busy is answered retry"
      "SELECT inmsg, bdirst, locmsg FROM D WHERE isrequest(inmsg) AND inmsgres = 'reqq' AND bdirlookup = 'hit' AND NOT locmsg = 'retry' AND NOT (inmsg = 'wb' AND locmsg = 'compl') AND NOT inmsg IN ('repl','racevict')";
    sql "d-retry-frozen" "D" "a retried request changes no state"
      "SELECT inmsg, bdirst FROM D WHERE locmsg = 'retry' AND bdirlookup = 'hit' AND (NOT dirwr = NULL OR NOT bdirop = NULL OR NOT remmsg = NULL OR NOT memmsg = NULL)";
    sql "d-dealloc-only-on-completion" "D"
      "a busy entry closes with D receiving a compl or sending a terminal response (the paper's completion invariant)"
      "SELECT inmsg, bdirst, locmsg FROM D WHERE bdirop = 'dealloc' AND locmsg = NULL AND NOT inmsg = 'compl'";
    sql "d-response-needs-busy" "D"
      "responses are only consumed against a busy entry"
      "SELECT inmsg FROM D WHERE isresponse(inmsg) AND NOT bdirlookup = 'hit'";
    sql "d-response-never-retried" "D" "responses are never retried"
      "SELECT inmsg FROM D WHERE isresponse(inmsg) AND locmsg = 'retry'";
    (* -- lookup-result consistency ------------------------------------ *)
    sql "d-dirlookup-hit" "D" "a directory hit implies a tracked state"
      "SELECT dirst, dirlookup FROM D WHERE dirlookup = 'hit' AND NOT dirst IN ('SI','MESI')";
    sql "d-dirlookup-miss" "D" "a directory miss implies the invalid state"
      "SELECT dirst, dirlookup FROM D WHERE dirlookup = 'miss' AND NOT dirst = 'I'";
    sql "d-bdirlookup-hit" "D" "a busy-directory hit carries a busy state"
      "SELECT bdirst FROM D WHERE bdirlookup = 'hit' AND (bdirst = 'I' OR bdirst = NULL)";
    sql "d-bdirlookup-miss" "D" "a busy-directory miss carries no busy state"
      "SELECT bdirst FROM D WHERE bdirlookup = 'miss' AND NOT bdirst = NULL AND NOT bdirst = 'I'";
    (* -- message-direction well-formedness ----------------------------- *)
    sql "d-locmsg-class" "D" "messages to the requester are responses"
      "SELECT locmsg FROM D WHERE NOT locmsg = NULL AND NOT isresponse(locmsg)";
    sql "d-locmsg-route" "D" "requester responses are routed home -> local"
      "SELECT locmsg, locmsgsrc, locmsgdest FROM D WHERE NOT locmsg = NULL AND (NOT locmsgsrc = 'home' OR NOT locmsgdest = 'local')";
    sql "d-remmsg-class" "D" "messages to remote nodes are snoop requests"
      "SELECT remmsg FROM D WHERE NOT remmsg = NULL AND NOT remmsg IN ('sinv','sread','sflush','sdown','sioread','siowrite')";
    sql "d-remmsg-route" "D" "snoops are routed home -> remote"
      "SELECT remmsg, remmsgsrc, remmsgdest FROM D WHERE NOT remmsg = NULL AND (NOT remmsgsrc = 'home' OR NOT remmsgdest = 'remote')";
    sql "d-memmsg-class" "D" "messages to memory are memory-path requests"
      "SELECT memmsg FROM D WHERE NOT memmsg = NULL AND NOT memmsg IN ('mread','mwrite','mrmw','mupdate','mioread','miowrite')";
    sql "d-memmsg-route" "D" "memory requests stay inside the home quad"
      "SELECT memmsg, memmsgsrc, memmsgdest FROM D WHERE NOT memmsg = NULL AND (NOT memmsgsrc = 'home' OR NOT memmsgdest = 'home')";
    sql "d-request-source" "D" "requests arrive from the local role"
      "SELECT inmsg, inmsgsrc FROM D WHERE isrequest(inmsg) AND inmsgres = 'reqq' AND NOT inmsgsrc = 'local'";
    sql "d-response-source" "D" "responses arrive from remote nodes or home"
      "SELECT inmsg, inmsgsrc FROM D WHERE isresponse(inmsg) AND NOT inmsgres = 'ackq' AND NOT inmsgsrc IN ('remote','home')";
    (* -- busy-directory lifecycle -------------------------------------- *)
    sql "d-alloc-on-request" "D" "busy entries are allocated by requests"
      "SELECT inmsg FROM D WHERE bdirop = 'alloc' AND NOT inmsgres = 'reqq'";
    sql "d-update-on-response" "D" "busy entries are updated by responses"
      "SELECT inmsg FROM D WHERE bdirop = 'update' AND NOT inmsgres = 'respq' AND NOT inmsg = 'wb'";
    sql "d-dealloc-on-response" "D"
      "busy entries are deallocated by responses or completion acks"
      "SELECT inmsg FROM D WHERE bdirop = 'dealloc' AND NOT inmsgres IN ('respq','ackq')";
    sql "d-alloc-targets-busy" "D" "allocation installs a busy state"
      "SELECT nxtbdirst FROM D WHERE bdirop = 'alloc' AND (nxtbdirst = 'I' OR nxtbdirst = NULL)";
    sql "d-dealloc-clears" "D" "deallocation clears the busy state"
      "SELECT nxtbdirst FROM D WHERE bdirop = 'dealloc' AND NOT nxtbdirst = 'I'";
    sql "d-alloc-loads-pv" "D"
      "allocation snapshots the presence vector into the busy entry"
      "SELECT nxtbdirpv FROM D WHERE bdirop = 'alloc' AND NOT nxtbdirpv IN ('repl','drepl')";
    sql "d-busy-noop-without-op" "D"
      "the busy state never changes without a busy-directory operation"
      "SELECT nxtbdirst FROM D WHERE bdirop = NULL AND NOT nxtbdirst = NULL";
    (* -- sharing-state transfer ----------------------------------------- *)
    sql "d-ownership-transfer" "D"
      "granting ownership installs exactly the requester in the vector"
      "SELECT nxtdirst, nxtdirpv FROM D WHERE nxtdirst = 'MESI' AND NOT nxtdirpv = 'repl'";
    sql "d-data-has-source" "D" "data responses name their data source"
      "SELECT locmsg, datasrc FROM D WHERE locmsg IN ('data','datax') AND datasrc = NULL";
    sql "d-owner-data-provenance" "D"
      "owner-sourced data comes from a data-bearing snoop response"
      "SELECT inmsg, datasrc FROM D WHERE datasrc = 'owner' AND inmsgres = 'respq' AND NOT inmsg IN ('sdata','swbdata')";
    sql "d-grant-awaits-ack" "D"
      "granting data holds the entry in the completion-ack phase"
      "SELECT locmsg, nxtbdirst FROM D WHERE locmsg IN ('data','datax') AND NOT nxtbdirst IN ('Busy-read-c','Busy-fetch-c','Busy-readex-c','Busy-swap-c','Busy-upgrade-c')";
    sql "d-ack-deallocates" "D"
      "a completion ack always releases the busy entry and publishes state"
      "SELECT inmsg, bdirop FROM D WHERE inmsg = 'compl' AND inmsgres = 'ackq' AND (NOT bdirop = 'dealloc' OR NOT dirwr = 'yes')";
    sql "d-io-no-coherence" "D" "I/O transactions bypass coherence machinery"
      "SELECT inmsg FROM D WHERE addrspace = 'io' AND (NOT remmsg = NULL OR NOT dirwr = NULL)";
    sql "d-wb-to-memory" "D" "writebacks of owned lines reach memory"
      "SELECT inmsg, memmsg FROM D WHERE inmsg IN ('wb','flush') AND dirst = 'MESI' AND NOT memmsg = 'mwrite'";
    sql "d-snoop-only-when-cached" "D"
      "snoops are sent only when the directory says the line is cached"
      "SELECT dirst, remmsg FROM D WHERE NOT remmsg = NULL AND inmsgres = 'reqq' AND NOT dirst IN ('SI','MESI')";
    (* -- writeback-absorption and completion-ack discipline ------------ *)
    sql "d-absorb-forwards-data" "D"
      "an absorbed writeback reaches memory and completes to its issuer"
      "SELECT inmsg, memmsg, locmsg FROM D WHERE inmsg = 'wb' AND bdirop = 'update' AND (NOT memmsg = 'mwrite' OR NOT locmsg = 'compl')";
    sql "d-w-needs-snack" "D"
      "the awaiting-writeback state is entered only on the owner's snack"
      "SELECT inmsg, nxtbdirst FROM D WHERE nxtbdirst IN ('Busy-read-w','Busy-fetch-w','Busy-readex-w','Busy-swap-w','Busy-upgrade-w') AND NOT inmsg = 'snack'";
    sql "d-m-needs-wb-or-snack" "D"
      "the ack-then-refetch state follows a writeback or its late snack"
      "SELECT inmsg, nxtbdirst FROM D WHERE nxtbdirst IN ('Busy-read-m','Busy-fetch-m','Busy-readex-m','Busy-swap-m','Busy-upgrade-m') AND NOT inmsg IN ('wb','snack')";
    sql "d-sr-needs-mack" "D"
      "the refetch-on-snack state is entered once the write is ordered"
      "SELECT inmsg, nxtbdirst FROM D WHERE nxtbdirst IN ('Busy-read-sr','Busy-fetch-sr','Busy-readex-sr','Busy-swap-sr','Busy-upgrade-sr') AND NOT inmsg = 'mack'";
    sql "d-refetch-after-order" "D"
      "a late snack after an absorbed writeback triggers the memory refetch"
      "SELECT inmsg, memmsg FROM D WHERE bdirst IN ('Busy-read-sr','Busy-fetch-sr','Busy-readex-sr','Busy-swap-sr','Busy-upgrade-sr') AND inmsg = 'snack' AND NOT memmsg = 'mread'";
    sql "d-ack-phase-quiet" "D"
      "no protocol response can arrive during the completion-ack phase"
      "SELECT inmsg, bdirst FROM D WHERE bdirst IN ('Busy-read-c','Busy-fetch-c','Busy-readex-c','Busy-swap-c','Busy-upgrade-c') AND inmsgres = 'respq'";
    sql "d-grant-enters-ack-phase" "D"
      "entering the ack phase always carries the grant to the requester"
      "SELECT locmsg, nxtbdirst FROM D WHERE nxtbdirst IN ('Busy-read-c','Busy-fetch-c','Busy-readex-c','Busy-swap-c','Busy-upgrade-c') AND NOT locmsg IN ('data','datax','compl')";
    sql "d-no-snoop-from-responses" "D"
      "response processing never snoops (no VC2 -> VC1 dependency)"
      "SELECT inmsg, remmsg FROM D WHERE inmsgres = 'respq' AND NOT remmsg = NULL";
    sql "d-io-busy-families" "D"
      "I/O transactions allocate only I/O busy families"
      "SELECT inmsg, nxtbdirst FROM D WHERE addrspace = 'io' AND bdirop = 'alloc' AND NOT nxtbdirst IN ('Busy-ioread-d','Busy-iowrite-d','Busy-iormw-d')";
    sql "d-locks-never-busy" "D"
      "lock traffic resolves immediately: no busy-directory entries"
      "SELECT inmsg, bdirop FROM D WHERE inmsg IN ('lock','unlock') AND NOT bdirop = NULL";
    (* -- memory controller ---------------------------------------------- *)
    sql "m-always-responds" "M" "memory answers every request"
      "SELECT inmsg FROM M WHERE outmsg = NULL AND NOT inmsg = 'mupdate'";
    sql "m-responds-responses" "M" "memory emits only response messages"
      "SELECT outmsg FROM M WHERE NOT outmsg = NULL AND NOT isresponse(outmsg)";
    sql "m-err-nacks" "M" "an ECC error is reported as mnack"
      "SELECT eccst, outmsg FROM M WHERE eccst = 'err' AND NOT inmsg = 'mupdate' AND NOT outmsg = 'mnack'";
    sql "m-read-data" "M" "a successful read returns data"
      "SELECT inmsg, outmsg FROM M WHERE inmsg = 'mread' AND eccst = 'ok' AND NOT outmsg = 'mdata'";
    sql "m-write-ack" "M" "a successful write is acknowledged"
      "SELECT inmsg, outmsg FROM M WHERE inmsg = 'mwrite' AND eccst = 'ok' AND NOT outmsg = 'mack'";
    (* -- cache (snoop) controller ---------------------------------------- *)
    sql "c-snoop-answered" "C" "every snoop gets a response"
      "SELECT inmsg FROM C WHERE inmsgres = 'snpq' AND respmsg = NULL";
    sql "c-inval-invalidates" "C" "sinv and sflush leave the line invalid"
      "SELECT inmsg, nxtcachest FROM C WHERE inmsg IN ('sinv','sflush') AND inmsgres = 'snpq' AND NOT nxtcachest = 'I'";
    sql "c-sread-downgrades" "C" "sread of a dirty line supplies data and downgrades"
      "SELECT nxtcachest FROM C WHERE inmsg = 'sread' AND cachest = 'M' AND NOT (respmsg = 'sdata' AND nxtcachest = 'S')";
    sql "c-dirty-not-lost" "C" "dirty data always leaves in a data message"
      "SELECT cachest, respmsg, nodemsg FROM C WHERE cachest = 'M' AND NOT nxtcachest = 'M' AND NOT respmsg IN ('sdata','swbdata') AND NOT nodemsg = 'cwbdata'";
    sql "c-no-sinv-on-owner" "C" "owners are flushed, never blind-invalidated"
      "SELECT cachest FROM C WHERE inmsg = 'sinv' AND cachest = 'M'";
    (* -- node controller --------------------------------------------------- *)
    sql "n-retry-no-reissue" "N"
      "retry consumption never emits a network request (deadlock freedom)"
      "SELECT inmsg, netmsg FROM N WHERE inmsg = 'retry' AND NOT netmsg = NULL";
    sql "n-responses-resolve" "N"
      "every consumed response resolves the pending operation"
      "SELECT inmsg FROM N WHERE inmsgres = 'respq' AND procresult = NULL AND cachemsg = NULL";
    (* -- remote access cache ------------------------------------------------ *)
    sql "rac-snoop-answered" "RAC" "every RAC snoop gets a response"
      "SELECT inmsg FROM RAC WHERE inmsgres = 'snpq' AND respmsg = NULL";
    sql "rac-evict-internal" "RAC"
      "evictions are issued only by the background engine"
      "SELECT inmsg FROM RAC WHERE NOT evictmsg = NULL AND NOT inmsgres = 'evq'";
    sql "rac-dirty-not-lost" "RAC" "dirty RAC data always leaves in a data message"
      "SELECT racst FROM RAC WHERE racst = 'M' AND NOT nxtracst = 'M' AND NOT respmsg IN ('sdata','swbdata') AND NOT evictmsg = 'wb'";
    (* -- I/O controller ------------------------------------------------------ *)
    sql "io-always-responds" "IO" "the device bus answers every request"
      "SELECT inmsg FROM IO WHERE outmsg = NULL";
    sql "io-busy-nacks" "IO" "a busy device is reported as mnack"
      "SELECT devst, outmsg FROM IO WHERE devst = 'busy' AND NOT outmsg = 'mnack'";
    (* -- processor interface --------------------------------------------------- *)
    sql "pif-requests-only" "PIF" "the processor interface emits only requests"
      "SELECT reqmsg FROM PIF WHERE NOT reqmsg = NULL AND NOT isrequest(reqmsg)";
    sql "pif-store-miss" "PIF" "a store miss requests exclusive ownership"
      "SELECT procop, reqmsg FROM PIF WHERE procop = 'store' AND cachest = 'I' AND NOT reqmsg = 'readex'";
    sql "pif-resolution" "PIF"
      "every processor operation either issues a request or completes"
      "SELECT procop FROM PIF WHERE reqmsg = NULL AND procresult = NULL";
    (* -- native cross-table checks ----------------------------------------------- *)
    native "x-deterministic" "*"
      "every controller table is a function of its input columns"
      determinism_check;
    native "x-snoop-coverage" "*"
      "every snoop response a cache can emit is handled by the directory"
      snoop_coverage_check;
    native "x-request-coverage" "*"
      "every processor-issued request has serving and retry rows in D"
      request_coverage_check;
    native "x-local-response-coverage" "*"
      "every directory response to the requester is handled by the node"
      local_response_coverage_check;
    native "d-busy-family-preserved" "D"
      "busy-directory updates stay within one transaction family"
      busy_family_check;
    native "d-busy-lifecycle" "D"
      "busy families are both allocated and deallocated" busy_lifecycle_check;
    native "d-busy-progress" "D"
      "every reachable busy state has rows consuming what it waits on"
      busy_progress_check;
  ]

let find id = List.find_opt (fun i -> i.id = id) all

let obs_reg = lazy (Obs.Metrics.registry "checker")

(* Per-invariant checked/violated counters feed the invariant hit
   matrix of `asura report` via the manifest metrics snapshot; the two
   aggregates give the one-line totals. *)
let record_result inv ~passed ~nviolations =
  let reg = Lazy.force obs_reg in
  Obs.Metrics.incr (Obs.Metrics.counter reg ("inv." ^ inv.id ^ ".checked"));
  Obs.Metrics.incr (Obs.Metrics.counter reg "invariants_checked");
  if not passed then begin
    Obs.Metrics.add
      (Obs.Metrics.counter reg ("inv." ^ inv.id ^ ".violated"))
      nviolations;
    Obs.Metrics.incr (Obs.Metrics.counter reg "invariants_violated")
  end

let run db inv =
  let violations =
    (* the invariant id tags every plan its check executes (SQL directly,
       native checks through whatever queries/joins they issue), so
       sys.plans attributes planner work to the invariant that caused it *)
    Obs.Planlog.with_site ("invariant:" ^ inv.id) @@ fun () ->
    match inv.check with
    | Sql q -> Sql_exec.query db q
    | Native f -> f db
  in
  let passed = Table.is_empty violations in
  record_result inv ~passed ~nviolations:(Table.cardinality violations);
  { invariant = inv; passed; violations }

let run_all ?invariants db =
  List.map (run db) (Option.value invariants ~default:all)

let failures results = List.filter (fun r -> not r.passed) results

let summary results =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun r ->
      pr "%-32s %-4s %s\n" r.invariant.id
        (if r.passed then "ok" else "FAIL")
        r.invariant.description;
      if not r.passed then begin
        pr "%s" (Table.to_string (Table.with_name "violations" r.violations))
      end)
    results;
  let failed = List.length (failures results) in
  pr "%d invariants checked, %d failed\n" (List.length results) failed;
  Buffer.contents buf
