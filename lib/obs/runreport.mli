(** Cross-run aggregation behind [asura report].

    Inputs are JSON documents the toolchain emits elsewhere —
    [asura-run/1] manifests, [asura-bench/*] snapshots, [asura-stats/1],
    [asura-explain/\{1,2\}] and [asura-plans/1] — classified by their
    ["schema"] field.  Coverage bitmaps from multiple runs are ORed per
    (table, rows); decoding uncovered rows back to readable transitions
    needs the protocol layer, so renderers take an optional [decode]
    callback supplied by the CLI. *)

type input =
  | Run of Json.t
  | Bench of Json.t
  | Stats of Json.t
  | Explain of Json.t
  | Plans of Json.t

val classify : Json.t -> (input, string) result
(** [Error] for a missing or unsupported ["schema"] field. *)

type t = {
  runs : (string * Json.t) list;  (** label (file name) × manifest *)
  benches : (string * Json.t) list;
  stats : (string * Json.t) list;
  explains : (string * Json.t) list;
  plan_docs : (string * Json.t) list;  (** standalone asura-plans/1 *)
}

val collect : (string * Json.t) list -> t * (string * string) list
(** Classify every labeled document.  Malformed ones (bad or missing
    ["schema"]) are skipped rather than failing the aggregation; they
    come back as [(label, reason)] warnings in input order. *)

val is_empty : t -> bool
(** No document of any kind survived classification. *)

val coverage : t -> Coverage.table_coverage list
(** Bitmaps ORed across all run manifests; tables whose row count
    differs between runs stay separate entries. *)

val overall_percent : t -> float
(** 100 when no coverage was recorded at all. *)

val invariant_matrix : t -> (string * (int * int) list) list
(** Per invariant id, the (checked, violated) counts of each run, in
    run order — extracted from the [inv.<id>.checked]/[.violated]
    counters of the manifests' metric snapshots. *)

val bench_diff : ?threshold:float -> t -> (string * float * float * float * bool) list
(** First-vs-last bench snapshot: (name, baseline ns, latest ns, ratio,
    ratio > threshold) per benchmark present in both — the same diff
    the CI baseline gate applies ([threshold] defaults to 3x). *)

val plans : t -> Planlog.entry list
(** Plan-observatory entries merged across every run manifest's embedded
    ["plans"] member and every standalone [asura-plans/1] snapshot, via
    {!Planlog.aggregate} — the same aggregation the systables layer
    materializes as [sys.plans]. *)

val events : t -> Flightrec.doc_event list
(** Flight-recorder events concatenated across every run manifest's
    embedded ["events"] member ({!Flightrec.of_json}) — the same rows
    the systables layer materializes as [sys.events] from manifests. *)

val events_dropped : t -> int
(** Records lost to ring wrap-around, summed over the manifests. *)

val event_tag_counts : Flightrec.doc_event list -> (string * int) list
(** [(tag, count)] sorted by tag — an order-free projection. *)

val event_fire_counts :
  Flightrec.doc_event list -> ((string * int) * int) list
(** [((table, row), firings)] sorted hottest-first — per-rule firing
    counts keyed exactly like transition coverage. *)

val event_steal_counts : Flightrec.doc_event list -> (int * int) list
(** [(thief domain, steals)] sorted by domain — the work-stealing
    imbalance evidence (scheduling-dependent, not a determinism view). *)

type decode = table:string -> rows:int -> row:int -> string option
(** Decode row [row] of table [table] to a readable transition; [rows]
    is the row count the coverage bitmap was recorded against, so the
    decoder can refuse when its regenerated table has a different
    shape. *)

val render_markdown :
  ?decode:decode ->
  ?max_uncovered:int ->
  ?skipped:(string * string) list ->
  t ->
  string
(** [max_uncovered] caps the decoded uncovered-row listing per table
    (default 10; the remainder is summarized).  [skipped] — typically
    the warnings from {!collect} plus unreadable files — is listed in a
    "Skipped inputs" section so the report records what it did not
    see. *)

val render_html :
  ?decode:decode ->
  ?max_uncovered:int ->
  ?skipped:(string * string) list ->
  t ->
  string

val to_json : ?decode:decode -> ?skipped:(string * string) list -> t -> Json.t
(** Schema [asura-report/1]. *)
