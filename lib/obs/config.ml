(* Global on/off switch for the whole observability layer.

   Every recording entry point (spans, counters, histogram observations)
   checks this one flag first, so with instrumentation disabled the cost
   of an instrumented call site is a single load-and-branch — effectively
   a no-op on the hot paths. *)

let enabled = ref false
let enable () = enabled := true
let disable () = enabled := false
let on () = !enabled

let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f
