(** Monotonic clock, nanosecond resolution. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; never goes backwards. *)

val to_us : int64 -> float
val to_ms : int64 -> float
val to_s : int64 -> float

val since : int64 -> int64
(** [since t0] is [now_ns () - t0]. *)

val timed : (unit -> 'a) -> 'a * int64
(** Run a thunk, returning its result and elapsed nanoseconds. *)
