(** The plan observatory's collector.

    One aggregated record per executed plan, keyed by (call-site label,
    structural fingerprint).  The cost-based planner and the vectorized
    consumers that bypass it (solver row extension, dependency compose)
    report each execution with per-operator estimated vs. actual
    telemetry; {!Runlog} embeds the snapshot in run manifests, and the
    {!Systables} layer materializes it as [sys.plans] / [sys.plan_ops].

    Mutex-guarded and gated on {!Config.on} exactly like {!Metrics}:
    recording from any domain is safe, and an uninstrumented run pays a
    single branch.  Types are plain strings/floats because obs sits
    below relalg. *)

val fingerprint : string list -> string
(** FNV-1a 64-bit hash of the canonical node strings, as 16 hex chars.
    Stable across processes, OCaml versions and platforms — safe to
    persist in manifests and committed baselines. *)

(** {1 Call-site labels} *)

val with_site : string -> (unit -> 'a) -> 'a
(** Tag every plan recorded by the thunk with this label (labels nest;
    the innermost wins).  Used as ["invariant:<id>"],
    ["solver.generate"], ["workload:<name>"], … *)

val site : unit -> string option
(** The innermost active label, if any. *)

val current_site : unit -> string
(** {!site}, defaulting to ["adhoc"]. *)

(** {1 Recording} *)

(** Per-operator telemetry for one execution, in pre-order (parent
    before children); [actual_ns] is inclusive of children. *)
type op = {
  op : string;
  est_rows : float;
  est_cost : float;
  actual_rows : int;
  actual_ns : float;
  batches : int;
}

val record :
  ?site:string ->
  fingerprint:string ->
  query:string ->
  est_cost:float ->
  total_ns:float ->
  rows_out:int ->
  op list ->
  unit
(** Report one plan execution.  No-op unless {!Config.on}.  Executions
    sharing (site, fingerprint) aggregate: execs, times and rows sum;
    estimates (structural per fingerprint) are kept from the first. *)

(** {1 Snapshot} *)

type op_rec = {
  seq : int;
  o_op : string;
  o_est_rows : float;
  o_est_cost : float;
  mutable o_actual_rows : int;  (** summed across execs *)
  mutable o_actual_ns : float;
  mutable o_batches : int;
}

type entry = {
  e_fingerprint : string;
  e_site : string;
  e_query : string;
  e_est_cost : float;
  mutable e_execs : int;
  mutable e_total_ns : float;
  mutable e_rows_out : int;
  e_ops : op_rec array;
}

val snapshot : unit -> entry list
(** Deep copy of the log, deterministically ordered by
    (site, query, fingerprint). *)

val reset : unit -> unit

val misest : entry -> float
(** Worst per-node estimation error: max over operators of the symmetric
    1-smoothed ratio between estimated and mean-actual rows ([>= 1.0],
    [1.0] = perfect). *)

(** {1 JSON} *)

val schema_name : string
(** ["asura-plans/1"]. *)

val to_json : unit -> Json.t
(** The live log as an [asura-plans/1] document — embedded under the
    ["plans"] key of run manifests. *)

val entries_to_json : entry list -> Json.t
val entry_to_json : entry -> Json.t

val of_json : Json.t -> entry list
(** Parse an [asura-plans/1] document, or any document carrying a
    ["plans"] member of that shape (run manifests embed one).  Returns
    [[]] when absent. *)

val aggregate : entry list list -> entry list
(** Merge per-manifest entry lists by (site, fingerprint): actuals sum,
    estimates are kept from the first occurrence.  Ordered like
    {!snapshot}. *)

(** {1 Fingerprint diff} *)

(** One difference between two snapshots, matched by (site, query) — the
    logical identity that survives a plan change.  [before]/[after] are
    the old and new entries; [None] on one side means added/removed. *)
type change = {
  c_site : string;
  c_query : string;
  before : entry option;
  after : entry option;
}

val diff : entry list -> entry list -> change list * int
(** [diff old new] pairs entries by (site, query) and reports every key
    whose fingerprint set differs, plus the count of unchanged plans.
    Execution counts and timings are deliberately NOT compared — two
    runs of the same workload at different speeds diff clean. *)

val render_change : change -> string
(** Human-readable rendering with per-node est-vs-actual deltas. *)
