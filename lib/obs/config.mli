(** Global switch for the observability layer.

    All recording entry points ({!Trace}, {!Metrics}) test this flag
    before doing any work, so instrumented call sites cost a single
    branch when disabled. *)

val enable : unit -> unit
val disable : unit -> unit

val on : unit -> bool
(** Current state; [false] at startup. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run a thunk with instrumentation enabled, restoring the previous
    state afterwards (also on exceptions). *)
