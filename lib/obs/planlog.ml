(* The plan observatory's collector: one aggregated record per executed
   plan, keyed by (site, fingerprint).  The planner (and the handful of
   vectorized consumers that bypass it: solver extension, dependency
   compose) report each execution here with its structural fingerprint,
   per-operator estimates and measured actuals; manifests embed the
   snapshot so `asura report` / `asura plan` can aggregate and diff
   plans across runs.

   Like {!Metrics}, one mutex covers every mutation and recording is
   gated on {!Config.on}, so an uninstrumented run pays a single branch
   per executed plan.  All recording happens on the spawning domain
   (workers stay observability-free, as everywhere in obs).

   This module is deliberately planner-agnostic — plain strings and
   floats — because obs sits below relalg in the dependency order. *)

(* ----------------------------- fingerprint ---------------------------- *)

(* FNV-1a over the canonical node strings, 64-bit, rendered as hex.
   Implemented here (not [Hashtbl.hash]) so fingerprints are stable
   across OCaml versions, word sizes and processes — they are persisted
   in manifests and committed baselines, and `plan diff` compares them
   across sessions. *)
let fingerprint parts =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let byte b = h := Int64.mul (Int64.logxor !h (Int64.of_int b)) prime in
  List.iter
    (fun s ->
      String.iter (fun c -> byte (Char.code c)) s;
      (* separator so ["ab";"c"] and ["a";"bc"] differ *)
      byte 0x1f)
    parts;
  Printf.sprintf "%016Lx" !h

(* ------------------------------- types -------------------------------- *)

(* What a call site reports for one operator of one execution. *)
type op = {
  op : string;  (** operator kind, e.g. "hash join [k=k] (build=left)" *)
  est_rows : float;
  est_cost : float;  (** cumulative cost estimate at this node *)
  actual_rows : int;
  actual_ns : float;  (** inclusive of children (wall time at this node) *)
  batches : int;
}

(* Aggregated per-operator telemetry: estimates are per-execution (fixed
   for a fingerprint by construction), actuals accumulate across
   executions of the same plan. *)
type op_rec = {
  seq : int;
  o_op : string;
  o_est_rows : float;
  o_est_cost : float;
  mutable o_actual_rows : int;
  mutable o_actual_ns : float;
  mutable o_batches : int;
}

type entry = {
  e_fingerprint : string;
  e_site : string;
  e_query : string;  (** sql text or programmatic-op summary *)
  e_est_cost : float;
  mutable e_execs : int;
  mutable e_total_ns : float;
  mutable e_rows_out : int;
  e_ops : op_rec array;
}

(* ------------------------------ the log ------------------------------- *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let entries : (string * string, entry) Hashtbl.t = Hashtbl.create 64

(* Call-site labels form a dynamic stack so an outer consumer (an
   invariant check, the solver) tags the SQL and programmatic plans it
   runs underneath; {!Sql_exec} only applies its default "sql" label
   when nothing more specific is active. *)
let sites : string list ref = ref []

let site () = locked (fun () -> match !sites with [] -> None | s :: _ -> Some s)

let with_site s f =
  locked (fun () -> sites := s :: !sites);
  Fun.protect
    ~finally:(fun () ->
      locked (fun () ->
          sites := match !sites with [] -> [] | _ :: rest -> rest))
    f

let current_site () = Option.value ~default:"adhoc" (site ())

let record ?site:s ~fingerprint:fp ~query ~est_cost ~total_ns ~rows_out ops =
  if Config.on () then begin
    let site = match s with Some s -> s | None -> current_site () in
    locked @@ fun () ->
    match Hashtbl.find_opt entries (site, fp) with
    | Some e ->
        e.e_execs <- e.e_execs + 1;
        e.e_total_ns <- e.e_total_ns +. total_ns;
        e.e_rows_out <- e.e_rows_out + rows_out;
        List.iteri
          (fun i (o : op) ->
            if i < Array.length e.e_ops then begin
              let r = e.e_ops.(i) in
              r.o_actual_rows <- r.o_actual_rows + o.actual_rows;
              r.o_actual_ns <- r.o_actual_ns +. o.actual_ns;
              r.o_batches <- r.o_batches + o.batches
            end)
          ops
    | None ->
        Hashtbl.add entries (site, fp)
          {
            e_fingerprint = fp;
            e_site = site;
            e_query = query;
            e_est_cost = est_cost;
            e_execs = 1;
            e_total_ns = total_ns;
            e_rows_out = rows_out;
            e_ops =
              Array.of_list
                (List.mapi
                   (fun seq (o : op) ->
                     {
                       seq;
                       o_op = o.op;
                       o_est_rows = o.est_rows;
                       o_est_cost = o.est_cost;
                       o_actual_rows = o.actual_rows;
                       o_actual_ns = o.actual_ns;
                       o_batches = o.batches;
                     })
                   ops);
          }
  end

let copy_entry e =
  {
    e with
    e_ops = Array.map (fun r -> { r with seq = r.seq }) e.e_ops;
  }

let snapshot () =
  locked (fun () -> Hashtbl.fold (fun _ e acc -> copy_entry e :: acc) entries [])
  |> List.sort (fun a b ->
         compare
           (a.e_site, a.e_query, a.e_fingerprint)
           (b.e_site, b.e_query, b.e_fingerprint))

let reset () = locked (fun () -> Hashtbl.reset entries)

(* ------------------------------- misest ------------------------------- *)

(* Worst per-node estimation error: the max over operators of the
   symmetric ratio between estimated and mean-actual output rows,
   1-smoothed so empty results and zero estimates stay finite.  1.0 is a
   perfect plan; 10.0 means some operator was off by an order of
   magnitude either way. *)
let misest e =
  let execs = max 1 e.e_execs in
  Array.fold_left
    (fun acc r ->
      let actual = float_of_int r.o_actual_rows /. float_of_int execs in
      let est = max 0. r.o_est_rows in
      let ratio = (max actual est +. 1.) /. (min actual est +. 1.) in
      max acc ratio)
    1.0 e.e_ops

(* ------------------------------- JSON --------------------------------- *)

let schema_name = "asura-plans/1"

let op_to_json (r : op_rec) =
  Json.Obj
    [
      ("seq", Json.Int r.seq);
      ("op", Json.Str r.o_op);
      ("est_rows", Json.Float r.o_est_rows);
      ("est_cost", Json.Float r.o_est_cost);
      ("actual_rows", Json.Int r.o_actual_rows);
      ("actual_ms", Json.Float (r.o_actual_ns /. 1e6));
      ("batches", Json.Int r.o_batches);
    ]

let entry_to_json e =
  Json.Obj
    [
      ("fingerprint", Json.Str e.e_fingerprint);
      ("site", Json.Str e.e_site);
      ("query", Json.Str e.e_query);
      ("est_cost", Json.Float e.e_est_cost);
      ("execs", Json.Int e.e_execs);
      ("total_ms", Json.Float (e.e_total_ns /. 1e6));
      ("rows_out", Json.Int e.e_rows_out);
      ("misest", Json.Float (misest e));
      ("ops", Json.List (Array.to_list (Array.map op_to_json e.e_ops)));
    ]

let entries_to_json es =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("plans", Json.List (List.map entry_to_json es));
    ]

let to_json () = entries_to_json (snapshot ())

let jstr d k = Option.bind (Json.member k d) Json.to_str
let jnum d k = Option.bind (Json.member k d) Json.to_number

let jint d k = Option.map int_of_float (jnum d k)

let op_of_json d =
  match (jint d "seq", jstr d "op") with
  | Some seq, Some o_op ->
      Some
        {
          seq;
          o_op;
          o_est_rows = Option.value ~default:0. (jnum d "est_rows");
          o_est_cost = Option.value ~default:0. (jnum d "est_cost");
          o_actual_rows = Option.value ~default:0 (jint d "actual_rows");
          o_actual_ns =
            Option.value ~default:0. (jnum d "actual_ms") *. 1e6;
          o_batches = Option.value ~default:0 (jint d "batches");
        }
  | _ -> None

let entry_of_json d =
  match (jstr d "fingerprint", jstr d "site") with
  | Some fp, Some site ->
      Some
        {
          e_fingerprint = fp;
          e_site = site;
          e_query = Option.value ~default:"?" (jstr d "query");
          e_est_cost = Option.value ~default:0. (jnum d "est_cost");
          e_execs = max 1 (Option.value ~default:1 (jint d "execs"));
          e_total_ns =
            Option.value ~default:0. (jnum d "total_ms") *. 1e6;
          e_rows_out = Option.value ~default:0 (jint d "rows_out");
          e_ops =
            (match Json.member "ops" d with
            | Some (Json.List ops) ->
                Array.of_list (List.filter_map op_of_json ops)
            | _ -> [||]);
        }
  | _ -> None

(* Accepts either an asura-plans/1 document or any document with a
   "plans" member of that shape (run manifests, plan snapshots). *)
let of_json doc =
  let plans =
    match Json.member "plans" doc with
    | Some (Json.Obj _ as nested) -> (
        match Json.member "plans" nested with Some l -> Some l | None -> None)
    | Some (Json.List _ as l) -> Some l
    | None -> None
    | Some _ -> None
  in
  match plans with
  | Some (Json.List es) -> List.filter_map entry_of_json es
  | _ -> []

(* ----------------------------- aggregation ---------------------------- *)

(* Merge entry lists (one per manifest) by (site, fingerprint): execs,
   times, rows and per-operator actuals add up; estimates are structural
   and identical for a given fingerprint, so the first entry's are kept.
   The result ordering matches {!snapshot}. *)
let aggregate lists =
  let tbl : (string * string, entry) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (List.iter (fun e ->
         match Hashtbl.find_opt tbl (e.e_site, e.e_fingerprint) with
         | None -> Hashtbl.add tbl (e.e_site, e.e_fingerprint) (copy_entry e)
         | Some acc ->
             acc.e_execs <- acc.e_execs + e.e_execs;
             acc.e_total_ns <- acc.e_total_ns +. e.e_total_ns;
             acc.e_rows_out <- acc.e_rows_out + e.e_rows_out;
             Array.iteri
               (fun i r ->
                 if i < Array.length acc.e_ops then begin
                   let a = acc.e_ops.(i) in
                   a.o_actual_rows <- a.o_actual_rows + r.o_actual_rows;
                   a.o_actual_ns <- a.o_actual_ns +. r.o_actual_ns;
                   a.o_batches <- a.o_batches + r.o_batches
                 end)
               e.e_ops))
    lists;
  Hashtbl.fold (fun _ e acc -> e :: acc) tbl []
  |> List.sort (fun a b ->
         compare
           (a.e_site, a.e_query, a.e_fingerprint)
           (b.e_site, b.e_query, b.e_fingerprint))

(* -------------------------------- diff -------------------------------- *)

(* Plans are matched across snapshots by (site, query): the logical
   workload identity, which survives a plan change.  A matched pair with
   different fingerprints is the regression signal — the planner now
   produces a different physical plan for the same query. *)
type change = {
  c_site : string;
  c_query : string;
  before : entry option;  (** [None]: plan only in the new snapshot *)
  after : entry option;  (** [None]: plan only in the old snapshot *)
}

let diff_key e = (e.e_site, e.e_query)

let diff old_es new_es =
  let index es =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun e ->
        let k = diff_key e in
        Hashtbl.replace tbl k
          (match Hashtbl.find_opt tbl k with
          | Some l -> l @ [ e ]
          | None -> [ e ]))
      es;
    tbl
  in
  let old_t = index old_es and new_t = index new_es in
  let keys =
    List.sort_uniq compare (List.map diff_key old_es @ List.map diff_key new_es)
  in
  let unchanged = ref 0 in
  let fps = List.map (fun e -> e.e_fingerprint) in
  let changes =
    List.concat_map
      (fun ((site, query) as k) ->
        let olds = Option.value ~default:[] (Hashtbl.find_opt old_t k) in
        let news = Option.value ~default:[] (Hashtbl.find_opt new_t k) in
        if List.sort compare (fps olds) = List.sort compare (fps news) then begin
          unchanged := !unchanged + List.length olds;
          []
        end
        else
          match (olds, news) with
          | [], news ->
              List.map
                (fun e -> { c_site = site; c_query = query; before = None; after = Some e })
                news
          | olds, [] ->
              List.map
                (fun e -> { c_site = site; c_query = query; before = Some e; after = None })
                olds
          | o :: _, n :: _ ->
              [ { c_site = site; c_query = query; before = Some o; after = Some n } ])
      keys
  in
  (changes, !unchanged)

let render_ops buf tag e =
  let execs = max 1 e.e_execs in
  Printf.ksprintf (Buffer.add_string buf) "  %s %s  (cost=%.0f, %d exec%s)\n"
    tag e.e_fingerprint e.e_est_cost e.e_execs
    (if e.e_execs = 1 then "" else "s");
  Array.iter
    (fun r ->
      let actual = float_of_int r.o_actual_rows /. float_of_int execs in
      Printf.ksprintf (Buffer.add_string buf)
        "  %s   #%d %-44s est=%-9.0f actual=%-9.0f x%.1f\n" tag r.seq r.o_op
        r.o_est_rows actual
        ((max actual r.o_est_rows +. 1.) /. (min actual r.o_est_rows +. 1.)))
    e.e_ops

let render_change c =
  let buf = Buffer.create 256 in
  let kind =
    match (c.before, c.after) with
    | Some _, Some _ -> "changed"
    | None, Some _ -> "added"
    | Some _, None -> "removed"
    | None, None -> "?"
  in
  Printf.ksprintf (Buffer.add_string buf) "%s plan [%s] %s\n" kind c.c_site
    c.c_query;
  Option.iter (render_ops buf "-") c.before;
  Option.iter (render_ops buf "+") c.after;
  Buffer.contents buf
