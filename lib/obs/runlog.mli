(** Persistent run manifests (schema [asura-run/1]) and the live
    [--progress] heartbeat.

    A manifest records one toolchain invocation end to end: argv, git
    revision, start date, wall time, command-contributed notes, the
    coverage summary and a metrics snapshot.  The CLI calls {!configure}
    at startup and {!write} from an [at_exit] hook so every exit path
    persists the run. *)

(** {2 Sink}

    Heartbeats (and, under [--log-file], the CLI's log reporter) write
    to this channel — stderr by default, so command stdout stays
    machine-parseable under [--progress]. *)

val set_sink : out_channel -> unit
val sink : unit -> out_channel

(** {2 Manifest} *)

val configure : dir:string -> cmd:string -> argv:string array -> unit
(** Arm manifest writing: the file will land in [dir] as
    [<timestamp>-<cmd>.json].  Resets the wall-time origin and notes. *)

val configured : unit -> bool

val note : string -> Json.t -> unit
(** Attach a command-specific field to the manifest (replaces an earlier
    note under the same key).  Safe from any domain, but commands only
    call it from the spawning domain. *)

val manifest : unit -> Json.t
(** The current manifest document (works even when not {!configured};
    used by tests and the zero-state edge case). *)

val write : unit -> string option
(** Write the manifest file, creating the directory if needed; [None]
    when not {!configured}, otherwise the path written. *)

(** {2 Heartbeat} *)

val enable_progress : ?interval_s:float -> unit -> unit
(** Arm {!tick}; [interval_s] defaults to 1s ([0.] emits on every
    tick — used by tests). *)

val disable_progress : unit -> unit
val progress_on : unit -> bool

val tick : (unit -> string) -> unit
(** Emit [render ()] to the sink if at least the configured interval
    has passed since the last beat; cheap no-op otherwise.  Call only
    from the spawning domain (never a parallel worker). *)

(** {2 Lifecycle} *)

val reset : unit -> unit
(** Disarm manifest + progress and drop notes.  Meant for tests. *)
