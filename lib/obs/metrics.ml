(* Counters, gauges and histograms grouped into named registries — one
   registry per subsystem (relalg, solver, checker, mcheck, sim), so each
   layer owns its namespace and a report can render them side by side.

   Handles are cheap mutable records; creation is memoized per
   (registry, name).  Mutation entry points check {!Config.on} so a
   disabled build pays one branch per call site. *)

type counter = { c_name : string; mutable count : int }

type gauge = {
  g_name : string;
  mutable value : float;
  mutable g_max : float;
  mutable samples : int;
}

type histogram = {
  h_name : string;
  bounds : float array;  (** strictly increasing upper bucket bounds *)
  counts : int array;  (** length = length bounds + 1 (overflow bucket) *)
  mutable sum : float;
  mutable n : int;
  mutable h_min : float;
  mutable h_max : float;
}

type registry = {
  r_name : string;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let registries : (string, registry) Hashtbl.t = Hashtbl.create 8
let registry_order : string list ref = ref []

(* One lock covers handle creation and all enabled-mode mutation, making
   every entry point safe to call from any domain.  The parallel kernels
   deliberately keep their workers metric-free (per-chunk deltas are
   merged by the spawning domain at pool join), so this lock is
   uncontended in practice; it exists so stray instrumentation in shared
   code can never corrupt a registry. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let registry name =
  locked @@ fun () ->
  match Hashtbl.find_opt registries name with
  | Some r -> r
  | None ->
      let r =
        {
          r_name = name;
          counters = Hashtbl.create 16;
          gauges = Hashtbl.create 8;
          histograms = Hashtbl.create 8;
        }
      in
      Hashtbl.add registries name r;
      registry_order := name :: !registry_order;
      r

let all_registries () =
  locked (fun () -> List.rev_map (Hashtbl.find registries) !registry_order)

let memo tbl name make =
  locked @@ fun () ->
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v

(* ------------------------------ counters ------------------------------ *)

let counter reg name =
  memo reg.counters name (fun () -> { c_name = name; count = 0 })

let incr c = if Config.on () then locked (fun () -> c.count <- c.count + 1)
let add c n = if Config.on () then locked (fun () -> c.count <- c.count + n)
let count c = c.count

let aggregate name =
  List.fold_left
    (fun acc r ->
      match Hashtbl.find_opt r.counters name with
      | Some c -> acc + c.count
      | None -> acc)
    0 (all_registries ())

(* ------------------------------- gauges ------------------------------- *)

let gauge reg name =
  memo reg.gauges name (fun () ->
      { g_name = name; value = 0.; g_max = neg_infinity; samples = 0 })

let set g v =
  if Config.on () then
    locked (fun () ->
        g.value <- v;
        if v > g.g_max then g.g_max <- v;
        g.samples <- g.samples + 1)

let gauge_value g = g.value
let gauge_max g = if g.samples = 0 then 0. else g.g_max

(* ----------------------------- histograms ----------------------------- *)

let exponential_bounds ?(start = 1.) ?(factor = 2.) count =
  Array.init count (fun i -> start *. (factor ** float_of_int i))

let default_bounds = exponential_bounds ~start:1. ~factor:4. 10

(* Lookup-or-create: a second registration under the same name returns
   the existing histogram untouched — bounds (including malformed ones)
   are only validated when the handle is actually created, so multiple
   runs in one process can re-request their instruments freely. *)
let histogram ?(bounds = default_bounds) reg name =
  memo reg.histograms name (fun () ->
      Array.iteri
        (fun i b ->
          if i > 0 && b <= bounds.(i - 1) then
            invalid_arg ("histogram " ^ name ^ ": bounds must be increasing"))
        bounds;
      {
        h_name = name;
        bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sum = 0.;
        n = 0;
        h_min = infinity;
        h_max = neg_infinity;
      })

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if Config.on () then
    locked (fun () ->
        let i = bucket_index h.bounds v in
        h.counts.(i) <- h.counts.(i) + 1;
        h.sum <- h.sum +. v;
        h.n <- h.n + 1;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v)

let observations h = h.n
let mean h = if h.n = 0 then 0. else h.sum /. float_of_int h.n

let quantile h q =
  if h.n = 0 then 0.
  else begin
    let rank = Float.max 1. (Float.round (q *. float_of_int h.n)) in
    let rec go i acc =
      if i >= Array.length h.counts then h.h_max
      else
        let acc = acc + h.counts.(i) in
        if float_of_int acc >= rank then
          if i < Array.length h.bounds then h.bounds.(i) else h.h_max
        else go (i + 1) acc
    in
    go 0 0
  end

(* ------------------------------- reset -------------------------------- *)

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ r ->
      Hashtbl.iter (fun _ c -> c.count <- 0) r.counters;
      Hashtbl.iter
        (fun _ g ->
          g.value <- 0.;
          g.g_max <- neg_infinity;
          g.samples <- 0)
        r.gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.sum <- 0.;
          h.n <- 0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity)
        r.histograms)
    registries

let clear () =
  locked @@ fun () ->
  Hashtbl.reset registries;
  registry_order := []

(* ------------------------------ rendering ----------------------------- *)

let sorted_values tbl name_of =
  List.sort
    (fun a b -> compare (name_of a) (name_of b))
    (Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])

let render_registry buf r =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let counters = sorted_values r.counters (fun c -> c.c_name) in
  let gauges = sorted_values r.gauges (fun g -> g.g_name) in
  let histograms = sorted_values r.histograms (fun h -> h.h_name) in
  if counters <> [] || gauges <> [] || histograms <> [] then begin
    pr "[%s]\n" r.r_name;
    List.iter (fun c -> pr "  %-32s %12d\n" c.c_name c.count) counters;
    List.iter
      (fun g -> pr "  %-32s %12.1f (max %.1f)\n" g.g_name g.value (gauge_max g))
      gauges;
    List.iter
      (fun h ->
        pr "  %-32s n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f\n"
          h.h_name h.n (mean h) (quantile h 0.5) (quantile h 0.95)
          (quantile h 0.99)
          (if h.n = 0 then 0. else h.h_max);
        if h.n > 0 then begin
          pr "    buckets:";
          Array.iteri
            (fun i c ->
              if c > 0 then
                if i < Array.length h.bounds then
                  pr " <=%g:%d" h.bounds.(i) c
                else pr " >%g:%d" h.bounds.(Array.length h.bounds - 1) c)
            h.counts;
          pr "\n"
        end)
      histograms
  end

let summary () =
  let buf = Buffer.create 1024 in
  List.iter (render_registry buf) (all_registries ());
  Buffer.contents buf

(* Typed snapshot backing the sys.metrics system table: one stat per
   instrument, in the same deterministic order as [to_json] (registries
   sorted by name; counters, then gauges, then histograms, each sorted
   by instrument name). *)
type stat = {
  s_registry : string;
  s_name : string;
  s_kind : [ `Counter | `Gauge | `Histogram ];
  s_value : float;
  s_n : int;
  s_max : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
}

let snapshot () =
  let regs =
    List.sort (fun a b -> compare a.r_name b.r_name) (all_registries ())
  in
  List.concat_map
    (fun r ->
      let stat name kind value n mx p50 p95 p99 =
        {
          s_registry = r.r_name;
          s_name = name;
          s_kind = kind;
          s_value = value;
          s_n = n;
          s_max = mx;
          s_p50 = p50;
          s_p95 = p95;
          s_p99 = p99;
        }
      in
      List.map
        (fun c ->
          stat c.c_name `Counter (float_of_int c.count) c.count
            (float_of_int c.count) 0. 0. 0.)
        (sorted_values r.counters (fun c -> c.c_name))
      @ List.map
          (fun g -> stat g.g_name `Gauge g.value g.samples (gauge_max g) 0. 0. 0.)
          (sorted_values r.gauges (fun g -> g.g_name))
      @ List.map
          (fun h ->
            stat h.h_name `Histogram (mean h) h.n
              (if h.n = 0 then 0. else h.h_max)
              (quantile h 0.5) (quantile h 0.95) (quantile h 0.99))
          (sorted_values r.histograms (fun h -> h.h_name)))
    regs

(* The machine-readable snapshot embedded in run manifests.  Registries
   and instruments are rendered in sorted order so two identical runs
   produce byte-identical JSON. *)
let to_json () =
  let registry_json r =
    let counters = sorted_values r.counters (fun c -> c.c_name) in
    let gauges = sorted_values r.gauges (fun g -> g.g_name) in
    let histograms = sorted_values r.histograms (fun h -> h.h_name) in
    if counters = [] && gauges = [] && histograms = [] then None
    else
      let fields = [] in
      let fields =
        if histograms = [] then fields
        else
          ( "histograms",
            Json.Obj
              (List.map
                 (fun h ->
                   ( h.h_name,
                     Json.Obj
                       [
                         ("n", Json.Int h.n);
                         ("mean", Json.Float (mean h));
                         ("p50", Json.Float (quantile h 0.5));
                         ("p95", Json.Float (quantile h 0.95));
                         ("p99", Json.Float (quantile h 0.99));
                         ("max", Json.Float (if h.n = 0 then 0. else h.h_max));
                       ] ))
                 histograms) )
          :: fields
      in
      let fields =
        if gauges = [] then fields
        else
          ( "gauges",
            Json.Obj
              (List.map
                 (fun g ->
                   ( g.g_name,
                     Json.Obj
                       [
                         ("value", Json.Float g.value);
                         ("max", Json.Float (gauge_max g));
                       ] ))
                 gauges) )
          :: fields
      in
      let fields =
        if counters = [] then fields
        else
          ( "counters",
            Json.Obj (List.map (fun c -> (c.c_name, Json.Int c.count)) counters)
          )
          :: fields
      in
      Some (r.r_name, Json.Obj fields)
  in
  let regs =
    List.sort
      (fun a b -> compare a.r_name b.r_name)
      (all_registries ())
  in
  Json.Obj (List.filter_map registry_json regs)
