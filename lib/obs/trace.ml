(* Span and event recording, exported in the Chrome trace-event format
   (load the file in chrome://tracing or https://ui.perfetto.dev).

   Spans are recorded as complete ("ph":"X") events when they finish, so
   a child always appears in the buffer before its parent; nesting is
   recovered by the viewer from ts/dur containment on the same thread
   track.  Counter samples become "ph":"C" events, which Perfetto renders
   as stacked time series — used for the simulator's per-virtual-channel
   queue occupancy. *)

type args = (string * Json.t) list

type event =
  | Complete of {
      name : string;
      cat : string;
      ts_us : float;  (** microseconds since the first recorded event *)
      dur_us : float;
      depth : int;  (** nesting depth at the time the span was open *)
      tid : int;  (** recording domain, the Chrome-trace thread track *)
      args : args;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      tid : int;
      args : args;
    }
  | Counter of { name : string; ts_us : float; values : (string * float) list }

(* The buffer and epoch are shared across domains; one mutex guards them.
   Recording only happens while tracing is enabled, so the disabled hot
   path still pays a single load-and-branch and never touches the lock. *)
let lock = Mutex.create ()
let buffer : event list ref = ref []
let epoch : int64 option ref = ref None

(* Span nesting is a per-domain notion: a worker's spans must not skew
   the depth bookkeeping of the domain that spawned it. *)
let nesting_key = Domain.DLS.new_key (fun () -> ref 0)
let nesting () = Domain.DLS.get nesting_key
let tid () = (Domain.self () :> int)

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () =
  locked (fun () ->
      buffer := [];
      epoch := None);
  nesting () := 0

(* Callers must hold [lock]. *)
let now_us_unlocked () =
  match !epoch with
  | Some e -> Clock.to_us (Int64.sub (Clock.now_ns ()) e)
  | None ->
      epoch := Some (Clock.now_ns ());
      0.

let now_us () = locked now_us_unlocked

let record ev = locked (fun () -> buffer := ev :: !buffer)

let with_span ?(cat = "app") ?(args = []) name f =
  if not (Config.on ()) then f ()
  else begin
    let ts = now_us () in
    let tid = tid () in
    let nesting = nesting () in
    let depth = !nesting in
    incr nesting;
    let finish () =
      decr nesting;
      record
        (Complete
           { name; cat; ts_us = ts; dur_us = now_us () -. ts; depth; tid; args })
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant ?(cat = "app") ?(args = []) name =
  if Config.on () then
    record (Instant { name; cat; ts_us = now_us (); tid = tid (); args })

let counter name values =
  if Config.on () then record (Counter { name; ts_us = now_us (); values })

let events () = locked (fun () -> List.rev !buffer)

(* ------------------------- chrome trace export ------------------------ *)

let event_to_json ev =
  let common name cat ph ts tid =
    [ "name", Json.Str name; "cat", Json.Str cat; "ph", Json.Str ph;
      "ts", Json.Float ts; "pid", Json.Int 1; "tid", Json.Int tid ]
  in
  match ev with
  | Complete { name; cat; ts_us; dur_us; args; tid; depth = _ } ->
      Json.Obj
        (common name cat "X" ts_us tid
        @ [ "dur", Json.Float dur_us; "args", Json.Obj args ])
  | Instant { name; cat; ts_us; tid; args } ->
      Json.Obj
        (common name cat "i" ts_us tid
        @ [ "s", Json.Str "t"; "args", Json.Obj args ])
  | Counter { name; ts_us; values } ->
      Json.Obj
        (common name "counter" "C" ts_us 0
        @ [ "args", Json.Obj (List.map (fun (k, v) -> k, Json.Float v) values) ])

let to_json () =
  Json.Obj
    [
      "traceEvents", Json.List (List.map event_to_json (events ()));
      "displayTimeUnit", Json.Str "ms";
    ]

let export () = Json.to_string (to_json ())

let save filename =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export ()))

(* ------------------------------ roll-up ------------------------------- *)

type span_stat = {
  span : string;
  count : int;
  total_us : float;
  min_us : float;
  max_us : float;
}

let span_stats () =
  let tbl : (string, span_stat) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (function
      | Complete { name; dur_us; _ } -> (
          match Hashtbl.find_opt tbl name with
          | None ->
              order := name :: !order;
              Hashtbl.add tbl name
                {
                  span = name;
                  count = 1;
                  total_us = dur_us;
                  min_us = dur_us;
                  max_us = dur_us;
                }
          | Some s ->
              Hashtbl.replace tbl name
                {
                  s with
                  count = s.count + 1;
                  total_us = s.total_us +. dur_us;
                  min_us = Float.min s.min_us dur_us;
                  max_us = Float.max s.max_us dur_us;
                })
      | Instant _ | Counter _ -> ())
    (events ());
  List.rev_map (Hashtbl.find tbl) !order
