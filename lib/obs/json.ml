(* A deliberately small JSON tree: enough to emit Chrome trace-event
   files and BENCH_*.json snapshots, and to parse them back in tests.
   No external dependency (the container has no yojson). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------ rendering ----------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* ------------------------------- parsing ------------------------------ *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_exn src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error "expected %c at %d, found %c" c !pos c'
    | None -> parse_error "expected %c at %d, found end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else parse_error "bad literal at %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then parse_error "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub src !pos 4) in
              pos := !pos + 4;
              (* non-BMP characters are not produced by this library *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
              go ()
          | _ -> parse_error "bad escape at %d" !pos)
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> parse_error "bad number %S at %d" s start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            k, v
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> (
        match c with
        | '0' .. '9' | '-' -> parse_number ()
        | c -> parse_error "unexpected character %c at %d" c !pos)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing input at %d" !pos;
  v

let parse src =
  match parse_exn src with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------ accessors ----------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None
let to_str = function Str s -> Some s | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let human_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%dB" n
  else if f < 1024. *. 1024. then Printf.sprintf "%.1fKB" (f /. 1024.)
  else if f < 1024. *. 1024. *. 1024. then
    Printf.sprintf "%.1fMB" (f /. (1024. *. 1024.))
  else Printf.sprintf "%.1fGB" (f /. (1024. *. 1024. *. 1024.))
