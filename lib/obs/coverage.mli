(** Transition coverage bitmaps: which rows of each controller table
    have ever fired.

    The store is sharded per domain (like the mcheck dedup table) so
    recording is legal from inside parallel workers; {!snapshot} ORs the
    shards, and because OR is commutative and idempotent the merged
    bitmap is bit-identical no matter how work was scheduled.

    Recording is gated by its own switch, independent of {!Config}: a
    run can collect coverage without paying for spans/metrics and vice
    versa. *)

val enable : unit -> unit
val disable : unit -> unit

val on : unit -> bool
(** Current state; [false] at startup. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run a thunk with coverage recording enabled, restoring the previous
    state afterwards (also on exceptions). *)

val register : id:int -> name:string -> rows:int -> unit
(** Associate a runtime [Table.id] with a table name and row count.
    Idempotent per id; must happen before rows of that table can be
    recorded (unregistered records are dropped). *)

val record : id:int -> row:int -> unit
(** Mark row [row] of the table registered under [id] as fired.  Safe
    from any domain; a single branch when coverage is off. *)

val lookup : id:int -> (string * int) option
(** The (name, rows) a runtime id was registered under — how consumers
    that persist events keyed by table id ({!Flightrec}) translate the
    process-local id into a stable name. *)

(** {2 Snapshots} *)

type table_coverage = {
  name : string;
  rows : int;
  covered : int;  (** popcount of [bitmap] *)
  bitmap : Bytes.t;
      (** LSB-first: row [r] is bit [r land 7] of byte [r lsr 3] *)
}

val snapshot : unit -> table_coverage list
(** Merge all shards; entries for tables sharing (name, rows) — e.g. a
    regenerated copy of the same controller — are ORed together.  Sorted
    by name for deterministic output. *)

val is_covered : table_coverage -> int -> bool
val uncovered : table_coverage -> int list

val totals : table_coverage list -> int * int
(** [(covered, rows)] summed over all tables. *)

val percent : covered:int -> rows:int -> float
(** 100 when [rows = 0]. *)

(** {2 Persistence} *)

val to_hex : Bytes.t -> string
val of_hex : string -> Bytes.t

val table_to_json : table_coverage -> Json.t
val to_json : unit -> Json.t
(** [{covered; rows; percent; tables = [{table; rows; covered; percent;
    bitmap(hex)}]}] — the coverage summary embedded in run manifests. *)

(** {2 Lifecycle}

    Only call these while no pool jobs are in flight (any caller outside
    a worker is): they touch bitmaps owned by other domains' shards. *)

val reset : unit -> unit
(** Zero all bitmaps, keeping table registrations. *)

val clear : unit -> unit
(** Also drop table registrations.  Meant for test isolation. *)
