(** Labeled metric registries: counters, gauges and histograms.

    One registry per subsystem ([Metrics.registry "mcheck"], …); handles
    are memoized per (registry, name) so call sites can re-request them
    cheaply.  All mutators are no-ops while {!Config.on} is [false]. *)

type counter
type gauge
type histogram
type registry

val registry : string -> registry
(** Find or create a named registry. *)

val all_registries : unit -> registry list
(** In creation order. *)

(** {2 Counters} *)

val counter : registry -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val aggregate : string -> int
(** Sum of every counter with this name across all registries. *)

(** {2 Gauges} *)

val gauge : registry -> string -> gauge

val set : gauge -> float -> unit
(** Record the current value; the maximum ever set is kept too. *)

val gauge_value : gauge -> float
val gauge_max : gauge -> float

(** {2 Histograms} *)

val exponential_bounds : ?start:float -> ?factor:float -> int -> float array
(** [exponential_bounds ~start ~factor n]: [start], [start*factor], … *)

val histogram : ?bounds:float array -> registry -> string -> histogram
(** [bounds] are strictly increasing upper bucket bounds; an implicit
    overflow bucket is appended.  Defaults to 10 powers of 4.

    Lookup-or-create: re-requesting an existing name returns the
    existing histogram with its original bounds — the [bounds] argument
    (even a malformed one) is ignored then, so repeated runs in one
    process never raise on re-registration.
    @raise Invalid_argument if the handle is being created and [bounds]
    is not strictly increasing. *)

val observe : histogram -> float -> unit
val observations : histogram -> int
val mean : histogram -> float

val quantile : histogram -> float -> float
(** Bucket-resolution quantile estimate ([quantile h 0.5] = median). *)

(** {2 Lifecycle and rendering} *)

val reset : unit -> unit
(** Zero every metric in every registry (handles stay valid). *)

val clear : unit -> unit
(** Drop every registry entirely.  Existing handles keep working but are
    no longer rendered; call sites that re-request their registry get a
    fresh one.  Meant for test isolation. *)

val summary : unit -> string
(** Aligned text rendering of every non-empty registry. *)

val to_json : unit -> Json.t
(** Machine-readable snapshot of every non-empty registry (sorted, so
    identical runs render byte-identically); embedded under ["metrics"]
    in [asura-run/1] manifests. *)

(** One instrument's current state, as surfaced by the [sys.metrics]
    system table.  [s_value] is the count of a counter, the current value
    of a gauge, and the mean of a histogram; the quantile fields are zero
    for non-histograms. *)
type stat = {
  s_registry : string;
  s_name : string;
  s_kind : [ `Counter | `Gauge | `Histogram ];
  s_value : float;
  s_n : int;  (** counter count / gauge sample count / histogram n *)
  s_max : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
}

val snapshot : unit -> stat list
(** Every instrument of every registry in the same deterministic order as
    {!to_json}: registries sorted by name; within one, counters, then
    gauges, then histograms, each sorted by instrument name. *)
