(** The exploration flight recorder.

    Per-domain fixed-capacity ring buffers of packed integer event
    records: tag, monotonic-delta timestamp, and three payload words —
    five int stores per event, no allocation in steady state.  The
    model-checking engines, the visited set and the constraint solver
    record their dynamics here (rule firings, dedup hits, steals,
    visited-set growth, solver column extension), so that a violation,
    a deadlock or an interrupt can be explained from the last
    milliseconds of evidence.  On by default; [ASURA_FLIGHTREC=off]
    disables it (the bench overhead pair uses this).

    Sharded per domain exactly like {!Coverage}: recording is legal
    from inside parallel workers, and {!drain} timestamp-merges the
    rings from a quiescent caller.  Only order-free projections of the
    stream ({!counts_by_tag}, {!fire_counts}) are part of the seq-vs-par
    determinism contract — interleaving and steal events are
    scheduling-dependent by nature. *)

(** {1 Tags}

    Stable small-int tags; payload meaning per tag:
    - [expand]: a=depth, b=frontier / in-flight size when expanded
    - [fire]: a=coverage table id ({!Coverage.register}), b=row, c=depth
    - [dedup]: a=depth, b=1 for a hit (already visited), 0 for an insert
    - [steal]: a=thief participant, b=victim participant
    - [compact]: a=shard, b=new shard capacity (visited-set growth)
    - [solver_gen]: a=rows generated, b=columns bound
    - [solver_extend]: a=candidate rows considered, b=rows kept
    - [violation]: a=violation kind code, b=max depth
    - [deadlock]: a=max depth
    - [stop]: a=stop reason code, b=states explored *)

val tag_expand : int
val tag_fire : int
val tag_dedup : int
val tag_steal : int
val tag_compact : int
val tag_solver_gen : int
val tag_solver_extend : int
val tag_violation : int
val tag_deadlock : int
val tag_stop : int

val tag_name : int -> string
val tag_of_name : string -> int option

val stop_complete : int
val stop_budget : int
val stop_violation : int
val stop_name : int -> string

(** {1 Recording} *)

val enable : unit -> unit
val disable : unit -> unit

val on : unit -> bool
(** [true] at startup unless [ASURA_FLIGHTREC=off]. *)

val with_disabled : (unit -> 'a) -> 'a
(** Run a thunk with recording off, restoring the previous state (also
    on exceptions).  The bench overhead pair measures against this. *)

val record : tag:int -> ?a:int -> ?b:int -> ?c:int -> unit -> unit
(** Append one event to the calling domain's ring.  A single branch
    when recording is off; never allocates, never blocks.  A full ring
    overwrites its oldest record. *)

val set_capacity : int -> unit
(** Ring capacity in records per domain (default 4096, clamped to at
    least 16).  Resets all existing rings.  Only call while quiescent. *)

(** {1 Drain}

    Only call while no pool jobs are in flight (any caller outside a
    worker is): the rings belong to other domains.  Draining does not
    clear the rings. *)

type event = {
  t_ns : int64;  (** absolute monotonic stamp, reconstructed *)
  dom : int;  (** ring creation-order index, stable and small *)
  tag : int;
  a : int;
  b : int;
  c : int;
}

val drain : unit -> event list
(** All surviving records, merged across rings in timestamp order. *)

val total : unit -> int
(** Records ever written, including those overwritten by wrap-around. *)

val dropped : unit -> int
(** Records lost to wrap-around ([total] minus what {!drain} returns). *)

val reset : unit -> unit
(** Zero every ring.  Only call while quiescent. *)

(** {1 Order-free projections}

    The determinism-contract views: counts keyed by stable attributes,
    independent of inter-domain interleaving.  Deterministic across
    domain counts for tags whose cause is deterministic (expand, fire,
    dedup) — steal and compact are scheduling-dependent. *)

val counts_by_tag : event list -> (int * int) list
(** [(tag, count)], sorted by tag. *)

val fire_counts : event list -> ((int * int) * int) list
(** [((coverage table id, row), firings)], sorted — per-rule firing
    counts. *)

(** {1 Signals} *)

val arm_signal_drain : unit -> unit
(** Install SIGINT/SIGTERM handlers that call [exit 130]/[exit 143], so
    the at_exit manifest writer drains the rings and the recording of an
    interrupted run survives.  Idempotent; never overrides an inability
    to trap (e.g. non-Unix). *)

(** {1 JSON} *)

val schema_name : string
(** ["asura-events/1"]. *)

val to_json : unit -> Json.t
(** The live drain as an [asura-events/1] document — embedded under the
    ["events"] key of run manifests.  Timestamps become microseconds
    relative to the oldest surviving event; fire events gain a ["table"]
    member (via {!Coverage.lookup}) because coverage ids are
    process-local. *)

val events_to_json : event list -> Json.t

(** Parsed form of a persisted event. *)
type doc_event = {
  d_t_us : float;
  d_dom : int;
  d_tag : string;
  d_a : int;
  d_b : int;
  d_c : int;
  d_table : string option;
}

val of_json : Json.t -> doc_event list
(** Parse an [asura-events/1] document, or any document carrying an
    ["events"] member of that shape (run manifests).  [[]] when
    absent. *)

val doc_dropped : Json.t -> int
(** The ["dropped"] count carried by a persisted events document. *)

val docs_to_json : ?dropped:int -> doc_event list -> Json.t
(** Re-serialize persisted events (e.g. concatenated across manifests)
    as an [asura-events/1] document. *)
