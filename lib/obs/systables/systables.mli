(** Self-hosted telemetry: the engine's own observability surfaces
    (spans, metrics, coverage, run manifests, bench snapshots)
    materialized as relational tables under the reserved [sys.]
    namespace, so the SQL front end queries the checker the same way it
    queries a protocol.

    Two ingestion modes:
    - {b live} ({!attach_live}): snapshot this process's trace buffer,
      metric registries and coverage shards;
    - {b manifest-backed} ({!attach_docs}): flatten the JSON documents
      under a [--runs] directory — the same inputs [asura report]
      aggregates, through the same {!Obs.Runreport.collect}, so SQL
      answers and report answers agree by construction.

    Tables are attached with {!Relalg.Database.replace_system}; user SQL
    cannot create or mutate them ([sys.] is reserved at the catalog). *)

val table_names : string list
(** Every table this module can attach, for [--help] and docs. *)

val mentions_sys : string -> bool
(** Does the SQL text reference a [sys.]-prefixed identifier?  Used by
    the CLI to decide whether to snapshot telemetry before executing.
    Conservative: a match inside a string literal also returns [true]. *)

(** {1 Live tables} *)

val spans : unit -> Relalg.Table.t
(** [sys.spans](name, cat, parent, tid, depth, start_us, dur_us): one
    row per completed span.  [parent] is reconstructed from the
    completion-ordered buffer (child precedes parent; the parent of a
    depth-[d] span is the enclosing depth-[d-1] span on the same
    domain) and is [NULL] for roots. *)

val span_stats : unit -> Relalg.Table.t
(** [sys.span_stats](span, count, total_us, mean_us, min_us, max_us):
    spans rolled up by name — pre-aggregated so "slowest operators" is
    an [ORDER BY total_us DESC LIMIT n] away in a SUM-less SQL
    subset. *)

val metrics : unit -> Relalg.Table.t
(** [sys.metrics](registry, key, kind, value, n, max, p50, p95, p99):
    every instrument of every registry; [kind] is ["counter"],
    ["gauge"] or ["histogram"], quantiles are 0 for non-histograms. *)

val coverage : unit -> Relalg.Table.t
(** [sys.coverage](table_name, row, covered, description): one row per
    controller-table row of the live coverage shards.  [description]
    decodes the row through the protocol layer and is [NULL] when the
    bitmap's recorded shape no longer matches the regenerated
    controller. *)

val coverage_of : Obs.Coverage.table_coverage list -> Relalg.Table.t
(** Same table from explicit entries (e.g. manifest bitmaps merged by
    {!Obs.Runreport.coverage}). *)

(** {1 Manifest-backed tables}

    Inputs are labeled documents: [(file name, parsed JSON)]. *)

val runs : (string * Obs.Json.t) list -> Relalg.Table.t
(** [sys.runs](file, cmd, argv, date, git_rev, elapsed_s, covered,
    rows, coverage_pct, states_per_sec): one row per [asura-run/1]
    manifest, with the coverage summary and the [mcheck] throughput
    gauge flattened in so cross-run trend queries are single-table. *)

val run_metrics : (string * Obs.Json.t) list -> Relalg.Table.t
(** [sys.run_metrics](file, registry, key, kind, value): every
    persisted instrument of every manifest (histograms surface their
    mean). *)

val bench : (string * Obs.Json.t) list -> Relalg.Table.t
(** [sys.bench](file, date, kind, name, baseline_ns, measured_ns,
    speedup, regression): seq-vs-par pairs ([kind = "par"]) and
    representation comparisons ([kind = "representation"]) of every
    [asura-bench/*] snapshot; [regression] is [speedup < 1.0]. *)

(** {1 Plan observatory tables} *)

val plans_of : Obs.Planlog.entry list -> Relalg.Table.t
(** [sys.plans](fingerprint, site, query, est_cost, execs, total_ms,
    rows_out, misest): one row per (site, fingerprint) plan record.
    [misest] is pre-computed ({!Obs.Planlog.misest}) so "worst estimated
    plans" is [ORDER BY misest DESC] in the SUM-less SQL subset. *)

val plan_ops_of : Obs.Planlog.entry list -> Relalg.Table.t
(** [sys.plan_ops](fingerprint, site, seq, op, est_rows, est_cost,
    actual_rows, actual_ms, batches): per-operator detail in pre-order,
    joinable back to [sys.plans] on (fingerprint, site). *)

(** {1 Flight recorder table} *)

val events_of : Obs.Flightrec.doc_event list -> Relalg.Table.t
(** [sys.events](seq, t_us, dom, tag, a, b, c, table_name, detail): one
    row per surviving flight-recorder event in timestamp-merge order.
    [t_us] is microseconds relative to the oldest surviving event;
    [table_name] is set for rule firings; [detail] decodes firings back
    to readable transitions through the same protocol-layer decoder
    [sys.coverage] uses, and names the stop reason on [stop] rows. *)

val events : unit -> Relalg.Table.t
(** The live ring drain as [sys.events].  Built by round-tripping
    {!Obs.Flightrec.to_json} through {!Obs.Flightrec.of_json}, so live
    and manifest-backed variants agree by construction. *)

(** {1 Attaching} *)

val attach_live : Relalg.Database.t -> Relalg.Database.t
(** Attach [sys.spans], [sys.span_stats], [sys.metrics], [sys.coverage],
    [sys.plans], [sys.plan_ops] and [sys.events] snapshotted from the
    live registries. *)

val attach_docs :
  (string * Obs.Json.t) list ->
  Relalg.Database.t ->
  Relalg.Database.t * (string * string) list
(** Attach [sys.runs], [sys.run_metrics], [sys.bench], [sys.coverage],
    [sys.plans], [sys.plan_ops] and [sys.events] built from labeled
    documents.  The plan and event tables come from {!Obs.Runreport} —
    the same aggregations [asura report] renders — so SQL answers and
    report answers agree by construction.  Returns the [(label,
    reason)] list of documents {!Obs.Runreport.collect} skipped. *)

(** {1 Canned queries} *)

type canned = {
  key : string;  (** CLI name, e.g. ["slowest-operators"] *)
  title : string;
  sql : string;
  live : bool;  (** reads live tables (vs manifest-backed ones) *)
}

val canned : canned list
(** The [asura top] query library — each entry is plain SQL over the
    [sys.] tables, executed through the ordinary planner. *)

(** {1 Plan workload} *)

val plan_workload_site : string
(** ["workload:plans"] — the site label every workload execution records
    under. *)

val plan_workload_sql : string list
(** The SQL half of the deterministic plan workload. *)

val run_plan_workload : Relalg.Database.t -> unit
(** Execute the deterministic plan workload (SQL shapes plus the bench
    rep-join-group programmatic shapes) against [db], recording every
    plan under {!plan_workload_site}.  The basis of [asura plan
    snapshot], the golden fingerprint tests and the CI plan gate: two
    runs produce identical fingerprints; flipping a join build side
    (e.g. [ASURA_PLAN_BUILD=right]) changes exactly the join
    fingerprints. *)

(** {1 Trend} *)

val trend_sql : string
(** The query [trend] runs over [sys.runs]. *)

val trend : (string * Obs.Json.t) list -> string
(** Markdown table charting coverage percent and states/s across run
    manifests, computed by executing {!trend_sql} over an attached
    [sys.runs] — not by walking manifest JSON. *)

(** {1 Export} *)

val table_to_json : Relalg.Table.t -> Obs.Json.t
(** Generic relational → JSON dump ([{table; columns; rows}]), used by
    tests and CI artifacts to round-trip [sys.] snapshots. *)
