(* Engine telemetry as relational tables: the paper's thesis turned on
   the toolchain itself.  Spans, metrics, coverage bitmaps, run
   manifests and bench snapshots become ordinary columnar Table.t
   values under the reserved sys. namespace, so the same SQL front end
   that audits ASURA audits the checker — including the planner,
   EXPLAIN ANALYZE and lineage, which all work on telemetry for free.

   This is its own library (not part of obs) because the ingest side
   needs relalg and protocol, and relalg itself depends on obs — folding
   it into obs would close a dependency cycle. *)

open Relalg
module Json = Obs.Json

let table_names =
  [
    "sys.spans";
    "sys.span_stats";
    "sys.metrics";
    "sys.coverage";
    "sys.runs";
    "sys.run_metrics";
    "sys.bench";
    "sys.plans";
    "sys.plan_ops";
    "sys.events";
  ]

(* A query "mentions" the sys namespace when some identifier-shaped
   token starts with "sys." — the trigger for the CLI to snapshot the
   live registries before executing.  A false positive (the token in a
   string literal) only costs an unused snapshot. *)
let mentions_sys src =
  let n = String.length src in
  let at_word_start i =
    i = 0
    ||
    match src.[i - 1] with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> false
    | _ -> true
  in
  let rec go i =
    if i + 4 > n then false
    else if
      at_word_start i
      && (src.[i] = 's' || src.[i] = 'S')
      && (src.[i + 1] = 'y' || src.[i + 1] = 'Y')
      && (src.[i + 2] = 's' || src.[i + 2] = 'S')
      && src.[i + 3] = '.'
    then true
    else go (i + 1)
  in
  go 0

(* ------------------------------ sys.spans ----------------------------- *)

(* Trace events arrive in completion order, so a child span always
   precedes its parent in the buffer.  Scanning the buffer in reverse
   therefore visits every span before any of its descendants, and the
   parent of a span at depth d on domain t is simply the depth d-1 span
   most recently seen (in that reverse scan) on the same domain. *)
let span_rows () =
  let events = Array.of_list (Obs.Trace.events ()) in
  let last : (int * int, string) Hashtbl.t = Hashtbl.create 32 in
  let rows = ref [] in
  for i = 0 to Array.length events - 1 do
    match events.(Array.length events - 1 - i) with
    | Obs.Trace.Complete { name; cat; ts_us; dur_us; depth; tid; args = _ } ->
        let parent =
          if depth = 0 then Value.Null
          else
            match Hashtbl.find_opt last (tid, depth - 1) with
            | Some p -> Value.Str p
            | None -> Value.Null
        in
        Hashtbl.replace last (tid, depth) name;
        rows :=
          [|
            Value.Str name;
            Value.Str cat;
            parent;
            Value.Int tid;
            Value.Int depth;
            Value.Float ts_us;
            Value.Float dur_us;
          |]
          :: !rows
    | Obs.Trace.Instant _ | Obs.Trace.Counter _ -> ()
  done;
  (* accumulated from a reverse scan, so !rows is back in buffer order *)
  !rows

let spans_schema =
  Schema.of_list
    [ "name"; "cat"; "parent"; "tid"; "depth"; "start_us"; "dur_us" ]

let spans () = Table.of_rows ~name:"sys.spans" spans_schema (span_rows ())

let span_stats_schema =
  Schema.of_list [ "span"; "count"; "total_us"; "mean_us"; "min_us"; "max_us" ]

(* Pre-aggregated because the SQL subset has no SUM: "slowest operators"
   is then ORDER BY total_us DESC LIMIT n over this table. *)
let span_stats () =
  Table.of_rows ~name:"sys.span_stats" span_stats_schema
    (List.map
       (fun (s : Obs.Trace.span_stat) ->
         [|
           Value.Str s.span;
           Value.Int s.count;
           Value.Float s.total_us;
           Value.Float
             (if s.count = 0 then 0. else s.total_us /. float_of_int s.count);
           Value.Float s.min_us;
           Value.Float s.max_us;
         |])
       (Obs.Trace.span_stats ()))

(* ----------------------------- sys.metrics ---------------------------- *)

let metrics_schema =
  Schema.of_list
    [ "registry"; "key"; "kind"; "value"; "n"; "max"; "p50"; "p95"; "p99" ]

let kind_string = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

let metrics () =
  Table.of_rows ~name:"sys.metrics" metrics_schema
    (List.map
       (fun (s : Obs.Metrics.stat) ->
         [|
           Value.Str s.s_registry;
           Value.Str s.s_name;
           Value.Str (kind_string s.s_kind);
           Value.Float s.s_value;
           Value.Int s.s_n;
           Value.Float s.s_max;
           Value.Float s.s_p50;
           Value.Float s.s_p95;
           Value.Float s.s_p99;
         |])
       (Obs.Metrics.snapshot ()))

(* ---------------------------- sys.coverage ---------------------------- *)

(* One row per controller-table row, so uncovered-transition queries are
   plain WHERE NOT covered.  The description comes from the protocol
   layer's row decoder and is NULL when the bitmap's recorded shape no
   longer matches the regenerated controller (different protocol
   version) — the same refusal the report renderer applies. *)
let describe ~table ~rows ~row =
  match Protocol.find table with
  | None -> Value.Null
  | Some c ->
      let spec = c.Protocol.spec in
      let t = Protocol.Ctrl_spec.table spec in
      if Table.cardinality t = rows && row >= 0 && row < rows then
        Value.Str (Protocol.Ctrl_spec.describe_row spec row)
      else Value.Null

let coverage_schema =
  Schema.of_list [ "table_name"; "row"; "covered"; "description" ]

let coverage_of entries =
  let rows =
    List.concat_map
      (fun (tc : Obs.Coverage.table_coverage) ->
        List.init tc.rows (fun row ->
            [|
              Value.Str tc.name;
              Value.Int row;
              Value.Bool (Obs.Coverage.is_covered tc row);
              describe ~table:tc.name ~rows:tc.rows ~row;
            |]))
      entries
  in
  Table.of_rows ~name:"sys.coverage" coverage_schema rows

let coverage () = coverage_of (Obs.Coverage.snapshot ())

(* ------------------------------ sys.runs ------------------------------ *)

let jstr ?(default = Value.Null) doc k =
  match Option.bind (Json.member k doc) Json.to_str with
  | Some s -> Value.Str s
  | None -> default

let jnum ?(default = Value.Null) doc k =
  match Option.bind (Json.member k doc) Json.to_number with
  | Some f -> Value.Float f
  | None -> default

let path doc keys = List.fold_left (fun d k -> Option.bind d (Json.member k)) (Some doc) keys

let path_num doc keys = Option.bind (path doc keys) Json.to_number

let runs_schema =
  Schema.of_list
    [
      "file";
      "cmd";
      "argv";
      "date";
      "git_rev";
      "elapsed_s";
      "covered";
      "rows";
      "coverage_pct";
      "states_per_sec";
      "engine";
      "probabilistic";
    ]

let run_row (label, doc) =
  let argv =
    match Option.bind (Json.member "argv" doc) Json.to_list with
    | Some parts ->
        Value.Str
          (String.concat " " (List.filter_map Json.to_str parts))
    | None -> Value.Null
  in
  let intv keys =
    match path_num doc keys with
    | Some f -> Value.Int (int_of_float f)
    | None -> Value.Null
  in
  [|
    Value.Str label;
    jstr doc "cmd";
    argv;
    jstr doc "date";
    jstr doc "git_rev";
    jnum doc "elapsed_s";
    intv [ "coverage"; "covered" ];
    intv [ "coverage"; "rows" ];
    (match path_num doc [ "coverage"; "percent" ] with
    | Some f -> Value.Float f
    | None -> Value.Null);
    (match
       path_num doc [ "metrics"; "mcheck"; "gauges"; "states_per_sec"; "value" ]
     with
    | Some f -> Value.Float f
    | None -> Value.Null);
    (* which exploration core a model-checking run used, and whether its
       dedup was hash-compacted (probabilistic coverage): non-mcheck
       manifests leave both NULL *)
    (match Option.bind (path doc [ "mcheck"; "engine" ]) Json.to_str with
    | Some s -> Value.Str s
    | None -> Value.Null);
    (match path doc [ "mcheck"; "probabilistic" ] with
    | Some (Json.Bool b) -> Value.Bool b
    | Some _ | None -> Value.Null);
  |]

let runs docs = Table.of_rows ~name:"sys.runs" runs_schema (List.map run_row docs)

(* --------------------------- sys.run_metrics -------------------------- *)

let run_metrics_schema =
  Schema.of_list [ "file"; "registry"; "key"; "kind"; "value" ]

(* Flatten each manifest's metrics snapshot: one row per instrument.
   Histograms surface their mean under "value"; the full quantile set of
   the LIVE registries is in sys.metrics — manifests only persist the
   summary fields. *)
let run_metric_rows (label, doc) =
  match Json.member "metrics" doc with
  | Some (Json.Obj registries) ->
      List.concat_map
        (fun (reg, groups) ->
          let section kind value_of name =
            match Json.member name groups with
            | Some (Json.Obj entries) ->
                List.filter_map
                  (fun (key, v) ->
                    Option.map
                      (fun value ->
                        [|
                          Value.Str label;
                          Value.Str reg;
                          Value.Str key;
                          Value.Str kind;
                          Value.Float value;
                        |])
                      (value_of v))
                  entries
            | _ -> []
          in
          section "counter" Json.to_number "counters"
          @ section "gauge"
              (fun v -> Option.bind (Json.member "value" v) Json.to_number)
              "gauges"
          @ section "histogram"
              (fun v -> Option.bind (Json.member "mean" v) Json.to_number)
              "histograms")
        registries
  | _ -> []

let run_metrics docs =
  Table.of_rows ~name:"sys.run_metrics" run_metrics_schema
    (List.concat_map run_metric_rows docs)

(* ------------------------------ sys.bench ----------------------------- *)

let bench_schema =
  Schema.of_list
    [
      "file";
      "date";
      "kind";
      "name";
      "baseline_ns";
      "measured_ns";
      "speedup";
      "regression";
    ]

(* Both speedup families normalize the same way: baseline is the slow
   reference (sequential / list-of-rows), measured is the contender
   (parallel / columnar), and speedup < 1.0 flags a regression. *)
let bench_rows (label, doc) =
  let date = jstr doc "date" in
  let entry kind name baseline measured speedup =
    [|
      Value.Str label;
      date;
      Value.Str kind;
      Value.Str name;
      Value.Float baseline;
      Value.Float measured;
      Value.Float speedup;
      Value.Bool (speedup < 1.0);
    |]
  in
  let members k =
    match Json.member k doc with Some (Json.List l) -> l | _ -> []
  in
  List.filter_map
    (fun e ->
      match
        ( Option.bind (Json.member "name" e) Json.to_str,
          Option.bind (Json.member "seq_ns" e) Json.to_number,
          Option.bind (Json.member "par_ns" e) Json.to_number,
          Option.bind (Json.member "speedup" e) Json.to_number )
      with
      | Some n, Some seq, Some par, Some sp -> Some (entry "par" n seq par sp)
      | _ -> None)
    (members "pairs")
  @ List.filter_map
      (fun e ->
        match
          ( Option.bind (Json.member "name" e) Json.to_str,
            Option.bind (Json.member "listrep_ns" e) Json.to_number,
            Option.bind (Json.member "columnar_ns" e) Json.to_number,
            Option.bind (Json.member "speedup" e) Json.to_number )
        with
        | Some n, Some lst, Some col, Some sp ->
            Some (entry "representation" n lst col sp)
        | _ -> None)
      (members "representation")

let bench docs =
  Table.of_rows ~name:"sys.bench" bench_schema (List.concat_map bench_rows docs)

(* ------------------------- sys.plans / sys.plan_ops ------------------- *)

let plans_schema =
  Schema.of_list
    [ "fingerprint"; "site"; "query"; "est_cost"; "execs"; "total_ms";
      "rows_out"; "misest" ]

(* One row per (site, fingerprint) — the plan observatory's aggregation
   unit.  misest is pre-computed (max per-node estimation error) so the
   acceptance query "worst estimated plans" stays ORDER BY misest DESC
   in the SUM-less SQL subset, exactly like sys.span_stats. *)
let plans_of entries =
  Table.of_rows ~name:"sys.plans" plans_schema
    (List.map
       (fun (e : Obs.Planlog.entry) ->
         [|
           Value.Str e.e_fingerprint;
           Value.Str e.e_site;
           Value.Str e.e_query;
           Value.Float e.e_est_cost;
           Value.Int e.e_execs;
           Value.Float (e.e_total_ns /. 1e6);
           Value.Int e.e_rows_out;
           Value.Float (Obs.Planlog.misest e);
         |])
       entries)

let plan_ops_schema =
  Schema.of_list
    [ "fingerprint"; "site"; "seq"; "op"; "est_rows"; "est_cost";
      "actual_rows"; "actual_ms"; "batches" ]

(* Per-operator detail, joinable back to sys.plans on (fingerprint,
   site); seq is the pre-order position within the plan. *)
let plan_ops_of entries =
  Table.of_rows ~name:"sys.plan_ops" plan_ops_schema
    (List.concat_map
       (fun (e : Obs.Planlog.entry) ->
         Array.to_list
           (Array.map
              (fun (o : Obs.Planlog.op_rec) ->
                [|
                  Value.Str e.e_fingerprint;
                  Value.Str e.e_site;
                  Value.Int o.seq;
                  Value.Str o.o_op;
                  Value.Float o.o_est_rows;
                  Value.Float o.o_est_cost;
                  Value.Int o.o_actual_rows;
                  Value.Float (o.o_actual_ns /. 1e6);
                  Value.Int o.o_batches;
                |])
              e.e_ops))
       entries)

(* ----------------------------- sys.events ----------------------------- *)

(* The flight recorder's ring drain as a relation: one row per surviving
   event, in merge (timestamp) order, with fire events decoded back to
   readable transitions through the same protocol-layer row decoder
   sys.coverage uses.  Both the live and the manifest-backed variants
   are built from the SAME persisted shape ({!Obs.Flightrec.doc_event}):
   the live path round-trips through Flightrec.to_json/of_json, so
   `asura events` on a manifest and on a live run agree by
   construction. *)
let events_schema =
  Schema.of_list
    [ "seq"; "t_us"; "dom"; "tag"; "a"; "b"; "c"; "table_name"; "detail" ]

let event_detail (e : Obs.Flightrec.doc_event) =
  match e.d_tag, e.d_table with
  | "fire", Some table -> (
      match Protocol.find table with
      | None -> Value.Null
      | Some c ->
          let spec = c.Protocol.spec in
          let t = Protocol.Ctrl_spec.table spec in
          describe ~table ~rows:(Table.cardinality t) ~row:e.d_b)
  | "stop", _ -> Value.Str (Obs.Flightrec.stop_name e.d_a)
  | _ -> Value.Null

let events_of (evs : Obs.Flightrec.doc_event list) =
  Table.of_rows ~name:"sys.events" events_schema
    (List.mapi
       (fun seq (e : Obs.Flightrec.doc_event) ->
         [|
           Value.Int seq;
           Value.Float e.d_t_us;
           Value.Int e.d_dom;
           Value.Str e.d_tag;
           Value.Int e.d_a;
           Value.Int e.d_b;
           Value.Int e.d_c;
           (match e.d_table with Some t -> Value.Str t | None -> Value.Null);
           event_detail e;
         |])
       evs)

let live_events () = Obs.Flightrec.of_json (Obs.Flightrec.to_json ())
let events () = events_of (live_events ())

(* ------------------------------- attach ------------------------------- *)

let put db t = Database.replace_system db t

(* Live snapshot: what the current process has recorded so far.  The
   coverage table matches the report renderer because both read the same
   shard-merged snapshot. *)
let attach_live db =
  let db = put db (spans ()) in
  let db = put db (span_stats ()) in
  let db = put db (metrics ()) in
  let db = put db (coverage ()) in
  let plan_entries = Obs.Planlog.snapshot () in
  let db = put db (plans_of plan_entries) in
  let db = put db (plan_ops_of plan_entries) in
  put db (events ())

(* Manifest-backed snapshot: sys.coverage is built from the SAME
   Runreport aggregation (bitmaps ORed per (table, rows)) that asura
   report renders, so the uncovered counts of the acceptance query agree
   with the report by construction. *)
let attach_docs docs db =
  let agg, skipped = Obs.Runreport.collect docs in
  let db = put db (runs agg.Obs.Runreport.runs) in
  let db = put db (run_metrics agg.Obs.Runreport.runs) in
  let db = put db (bench agg.Obs.Runreport.benches) in
  let db = put db (coverage_of (Obs.Runreport.coverage agg)) in
  (* the SAME aggregation asura report renders and exports under its
     "plans" member, so the CI parity check (sys.plans vs report --json)
     holds by construction *)
  let plan_entries = Obs.Runreport.plans agg in
  let db = put db (plans_of plan_entries) in
  let db = put db (plan_ops_of plan_entries) in
  (* likewise: the same event concatenation asura report aggregates
     under its "events" member *)
  let db = put db (events_of (Obs.Runreport.events agg)) in
  (db, skipped)

(* ---------------------------- canned queries -------------------------- *)

type canned = {
  key : string;
  title : string;
  sql : string;
  live : bool;  (** needs the live registries (vs manifest-backed tables) *)
}

let canned =
  [
    {
      key = "slowest-operators";
      title = "Slowest operators (by total span time)";
      sql =
        "SELECT span, count, total_us, mean_us, max_us FROM sys.span_stats \
         ORDER BY total_us DESC LIMIT 10";
      live = true;
    };
    {
      key = "hottest-tables";
      title = "Hottest controller tables (covered transitions)";
      sql =
        "SELECT table_name, COUNT(*) FROM sys.coverage WHERE covered GROUP \
         BY table_name ORDER BY count DESC";
      live = true;
    };
    {
      key = "uncovered-by-controller";
      title = "Uncovered transitions per controller";
      sql =
        "SELECT table_name, COUNT(*) FROM sys.coverage WHERE NOT covered \
         GROUP BY table_name ORDER BY count DESC";
      live = true;
    };
    {
      key = "hottest-plans";
      title = "Hottest plans (by total execution time)";
      sql =
        "SELECT fingerprint, site, query, execs, total_ms, rows_out FROM \
         sys.plans ORDER BY total_ms DESC LIMIT 10";
      live = true;
    };
    {
      key = "worst-misest";
      title = "Worst cardinality misestimates (est vs actual)";
      sql =
        "SELECT fingerprint, site, query, misest, est_cost, rows_out FROM \
         sys.plans ORDER BY misest DESC LIMIT 5";
      live = true;
    };
    {
      key = "speedup-regressions";
      title = "Bench speedup regressions (speedup < 1.0)";
      sql =
        "SELECT kind, name, speedup, baseline_ns, measured_ns FROM sys.bench \
         WHERE regression ORDER BY speedup LIMIT 20";
      live = false;
    };
    {
      key = "hottest-rules";
      title = "Hottest rules (by recorded firings)";
      sql =
        "SELECT table_name, b, detail, COUNT(*) FROM sys.events WHERE tag = \
         'fire' GROUP BY table_name, b, detail ORDER BY count DESC LIMIT 10";
      live = true;
    };
    {
      key = "steals-by-domain";
      title = "Work-stealing imbalance (steals per thief domain)";
      sql =
        "SELECT a, COUNT(*) FROM sys.events WHERE tag = 'steal' GROUP BY a \
         ORDER BY count DESC";
      live = true;
    };
    {
      key = "dedup-by-depth";
      title = "Dedup hits vs inserts by depth";
      sql =
        "SELECT a, b, COUNT(*) FROM sys.events WHERE tag = 'dedup' GROUP BY \
         a, b ORDER BY a, b";
      live = true;
    };
  ]

(* ---------------------------- plan workload --------------------------- *)

(* The deterministic workload behind [asura plan snapshot], the golden
   fingerprint tests and the CI plan gate.  A fixed set of SQL and
   programmatic shapes over the generated protocol tables, chosen to
   cover every physical decision the fingerprint witnesses: predicate
   placement, top-k recognition, distinct, group and — through the bench
   rep-join-group shape — the hash-join build-side choice that
   ASURA_PLAN_BUILD flips for the planted-regression drill.  Running it
   twice yields identical fingerprints, so a clean diff is the expected
   baseline state. *)
let plan_workload_site = "workload:plans"

let plan_workload_sql =
  [
    "SELECT dirst, dirpv FROM D WHERE dirst = 'MESI' AND NOT dirpv = 'one'";
    "SELECT * FROM D WHERE inmsg = 'readex'";
    "SELECT inmsg, COUNT(*) FROM D GROUP BY inmsg ORDER BY count DESC \
     LIMIT 5";
    "SELECT DISTINCT locmsg FROM D ORDER BY locmsg";
  ]

let run_plan_workload db =
  Obs.Planlog.with_site plan_workload_site @@ fun () ->
  List.iter (fun q -> ignore (Sql_exec.query db q)) plan_workload_sql;
  (* join back a distinct projection, then a two-column group — the
     join's build side is the decision the plan gate drills *)
  match Database.find_opt db "D" with
  | None -> ()
  | Some d ->
      let states = Planner.distinct (Ops.project [ "dirst"; "dirpv" ] d) in
      ignore
        (Planner.equi_join
           ~on:[ "dirst", "dirst"; "dirpv", "dirpv" ]
           d states);
      ignore (Planner.group_count ~by:[ "inmsg"; "dirst" ] d)

(* ------------------------------- trend -------------------------------- *)

(* Coverage / throughput across manifests, computed by querying sys.runs
   through the planner rather than walking manifest JSON: the system
   tables are the single source for cross-run analytics. *)
let trend_sql =
  "SELECT file, date, coverage_pct, states_per_sec FROM sys.runs ORDER BY \
   date, file"

let bar width pct =
  let filled =
    max 0 (min width (int_of_float (Float.round (pct *. float_of_int width /. 100.))))
  in
  String.concat "" (List.init width (fun i -> if i < filled then "█" else "·"))

let trend docs =
  let db, _ = attach_docs docs Database.empty in
  let t = Sql_exec.query db trend_sql in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "## Trend (coverage / throughput per manifest)\n\n";
  if Table.is_empty t then
    pr "_No run manifests to chart._\n"
  else begin
    pr "| manifest | date | coverage | | states/s |\n";
    pr "|---|---|---:|---|---:|\n";
    Table.iter
      (fun row ->
        let cell i = row.(i) in
        let str v = match v with Value.Str s -> s | _ -> "-" in
        let pct =
          match cell 2 with Value.Float f -> Some f | _ -> None
        in
        let rate =
          match cell 3 with Value.Float f -> Some f | _ -> None
        in
        pr "| %s | %s | %s | `%s` | %s |\n"
          (str (cell 0))
          (str (cell 1))
          (match pct with Some f -> Printf.sprintf "%.1f%%" f | None -> "-")
          (match pct with Some f -> bar 20 f | None -> String.make 20 ' ')
          (match rate with Some f -> Printf.sprintf "%.0f" f | None -> "-"))
      t
  end;
  Buffer.contents buf

(* ------------------------------ export ------------------------------- *)

(* Generic table → JSON rows, used by tests (round-tripping sys.runs)
   and by artifact-producing CI steps. *)
let table_to_json t =
  let schema = Table.schema t in
  let cols = Schema.columns schema in
  let cell = function
    | Value.Null -> Json.Null
    | Value.Str s -> Json.Str s
    | Value.Int i -> Json.Int i
    | Value.Bool b -> Json.Bool b
    | Value.Float f -> Json.Float f
  in
  Json.Obj
    [
      ("table", Json.Str (Table.name t));
      ("columns", Json.List (List.map (fun c -> Json.Str c) cols));
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map cell (Array.to_list row)))
             (Table.rows t)) );
    ]
