(** Minimal JSON tree with a renderer and a parser.

    Backs the Chrome trace-event export and the machine-readable bench
    snapshots; the parser exists so tests can round-trip what the
    toolchain emits without an external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val parse : string -> (t, string) result

exception Parse_error of string

val parse_exn : string -> t

(** Accessors, [None] on shape mismatch: *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_str : t -> string option

val to_number : t -> float option
(** Ints are widened to float. *)

val human_bytes : int -> string
(** Render a byte count for humans: ["512B"], ["4.2KB"], ["1.3MB"], …
    Used by [stats]/[explain --analyze] when reporting storage
    footprints. *)
