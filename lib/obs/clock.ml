(* Monotonic time source (CLOCK_MONOTONIC via bechamel's stub), in
   nanoseconds.  Wall-clock time is unsuitable for spans: NTP slews it
   backwards. *)

let now_ns () : int64 = Monotonic_clock.now ()
let to_us ns = Int64.to_float ns /. 1_000.
let to_ms ns = Int64.to_float ns /. 1_000_000.
let to_s ns = Int64.to_float ns /. 1_000_000_000.
let since t0 = Int64.sub (now_ns ()) t0

let timed f =
  let t0 = now_ns () in
  let v = f () in
  v, since t0
