(* Cross-run aggregation behind `asura report`: classify input JSON
   documents by their schema field, merge coverage bitmaps across run
   manifests, extract the invariant hit matrix from metric snapshots,
   and render the lot as markdown / HTML / JSON.

   This lives in lib/obs (not bin/) so the aggregation logic is unit
   testable; the one thing it cannot do from here is decode uncovered
   row indices back to readable transitions — that needs the protocol
   layer, so renderers accept a [decode] callback the CLI supplies. *)

let schema_of doc = Option.bind (Json.member "schema" doc) Json.to_str

type input =
  | Run of Json.t  (** asura-run/1 manifest *)
  | Bench of Json.t  (** asura-bench/\{1,2,3\} snapshot *)
  | Stats of Json.t  (** asura-stats/1 *)
  | Explain of Json.t  (** asura-explain/\{1,2\} *)
  | Plans of Json.t  (** asura-plans/1 snapshot (asura plan snapshot) *)

let classify doc =
  match schema_of doc with
  | Some "asura-run/1" -> Ok (Run doc)
  | Some s when String.length s >= 12 && String.sub s 0 12 = "asura-bench/" ->
      Ok (Bench doc)
  | Some "asura-stats/1" -> Ok (Stats doc)
  | Some ("asura-explain/1" | "asura-explain/2") -> Ok (Explain doc)
  | Some "asura-plans/1" -> Ok (Plans doc)
  | Some s -> Error (Printf.sprintf "unsupported schema %S" s)
  | None -> Error "document has no \"schema\" field"

type t = {
  runs : (string * Json.t) list;
  benches : (string * Json.t) list;
  stats : (string * Json.t) list;
  explains : (string * Json.t) list;
  plan_docs : (string * Json.t) list;
}

(* A malformed document no longer poisons the whole report: it is
   skipped and surfaced as a (label, reason) warning, so one corrupt
   manifest in runs/ cannot hide the coverage of every healthy run. *)
let collect labeled =
  let rec go acc skipped = function
    | [] ->
        ( {
            runs = List.rev acc.runs;
            benches = List.rev acc.benches;
            stats = List.rev acc.stats;
            explains = List.rev acc.explains;
            plan_docs = List.rev acc.plan_docs;
          },
          List.rev skipped )
    | (label, doc) :: rest -> (
        match classify doc with
        | Error e -> go acc ((label, e) :: skipped) rest
        | Ok (Run d) -> go { acc with runs = (label, d) :: acc.runs } skipped rest
        | Ok (Bench d) ->
            go { acc with benches = (label, d) :: acc.benches } skipped rest
        | Ok (Stats d) ->
            go { acc with stats = (label, d) :: acc.stats } skipped rest
        | Ok (Explain d) ->
            go { acc with explains = (label, d) :: acc.explains } skipped rest
        | Ok (Plans d) ->
            go { acc with plan_docs = (label, d) :: acc.plan_docs } skipped rest)
  in
  go
    { runs = []; benches = []; stats = []; explains = []; plan_docs = [] }
    [] labeled

let is_empty agg =
  agg.runs = [] && agg.benches = [] && agg.stats = [] && agg.explains = []
  && agg.plan_docs = []

(* ------------------------- coverage aggregation ----------------------- *)

(* Pull the per-table coverage entries out of one manifest. *)
let manifest_tables doc =
  match Option.bind (Json.member "coverage" doc) (Json.member "tables") with
  | None -> []
  | Some tables ->
      List.filter_map
        (fun entry ->
          match
            ( Option.bind (Json.member "table" entry) Json.to_str,
              Option.bind (Json.member "rows" entry) Json.to_number,
              Option.bind (Json.member "bitmap" entry) Json.to_str )
          with
          | Some name, Some rows, Some hex -> (
              try Some (name, int_of_float rows, Coverage.of_hex hex)
              with Invalid_argument _ -> None)
          | _ -> None)
        (Option.value ~default:[] (Json.to_list tables))

(* OR together the bitmaps of every run manifest, merging tables that
   agree on (name, rows); a table whose row count changed between runs
   is kept as a separate entry rather than silently mis-merged. *)
let coverage agg =
  let merged : (string * int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (_, doc) ->
      List.iter
        (fun (name, rows, bitmap) ->
          let key = (name, rows) in
          match Hashtbl.find_opt merged key with
          | Some acc ->
              let n = min (Bytes.length acc) (Bytes.length bitmap) in
              for i = 0 to n - 1 do
                Bytes.set acc i
                  (Char.chr
                     (Char.code (Bytes.get acc i)
                     lor Char.code (Bytes.get bitmap i)))
              done
          | None ->
              let acc = Bytes.make ((rows + 7) / 8) '\000' in
              let n = min (Bytes.length acc) (Bytes.length bitmap) in
              Bytes.blit bitmap 0 acc 0 n;
              Hashtbl.add merged key acc;
              order := key :: !order)
        (manifest_tables doc))
    agg.runs;
  List.rev_map
    (fun (name, rows) ->
      let bitmap = Hashtbl.find merged (name, rows) in
      let covered =
        let n = ref 0 in
        Bytes.iter
          (fun c ->
            let rec pop b acc = if b = 0 then acc else pop (b lsr 1) (acc + (b land 1)) in
            n := !n + pop (Char.code c) 0)
          bitmap;
        !n
      in
      { Coverage.name; rows; covered; bitmap })
    !order
  |> List.sort (fun a b ->
         compare (a.Coverage.name, a.Coverage.rows) (b.Coverage.name, b.Coverage.rows))

let overall_percent agg =
  let covered, rows = Coverage.totals (coverage agg) in
  Coverage.percent ~covered ~rows

(* ------------------------ invariant hit matrix ------------------------ *)

(* Per-invariant checked/violated counters live in the "checker"
   registry of each manifest's metrics snapshot as inv.<id>.checked /
   inv.<id>.violated. *)
let invariant_counts doc =
  match
    Option.bind
      (Option.bind (Json.member "metrics" doc) (Json.member "checker"))
      (Json.member "counters")
  with
  | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (key, v) ->
          match (String.split_on_char '.' key, Json.to_number v) with
          | [ "inv"; id; "checked" ], Some n ->
              let _, viol = Option.value ~default:(0, 0) (List.assoc_opt id acc) in
              (id, (int_of_float n, viol)) :: List.remove_assoc id acc
          | [ "inv"; id; "violated" ], Some n ->
              let c, _ = Option.value ~default:(0, 0) (List.assoc_opt id acc) in
              (id, (c, int_of_float n)) :: List.remove_assoc id acc
          | _ -> acc)
        [] fields
  | _ -> []

let invariant_matrix agg =
  let per_run = List.map (fun (label, doc) -> (label, invariant_counts doc)) agg.runs in
  let ids =
    List.sort_uniq compare
      (List.concat_map (fun (_, counts) -> List.map fst counts) per_run)
  in
  List.map
    (fun id ->
      ( id,
        List.map
          (fun (_, counts) ->
            Option.value ~default:(0, 0) (List.assoc_opt id counts))
          per_run ))
    ids

(* --------------------------- plan observatory ------------------------- *)

(* Run manifests embed their plan log under "plans" (asura-run/1 stays
   additive); standalone asura-plans/1 snapshots carry it top-level.
   Planlog.of_json understands both shapes, so aggregation is one merge
   over every input that has anything to say about plans. *)
let plans agg =
  Planlog.aggregate
    (List.map (fun (_, doc) -> Planlog.of_json doc) agg.runs
    @ List.map (fun (_, doc) -> Planlog.of_json doc) agg.plan_docs)

(* ----------------------------- flight recorder ------------------------ *)

(* Run manifests embed their ring drain under "events"; Flightrec.of_json
   understands both the embedded member and a standalone asura-events/1
   document (asura events dump --json), so the report and sys.events
   aggregate the same inputs by construction. *)
let events agg =
  List.concat_map (fun (_, doc) -> Flightrec.of_json doc) agg.runs

let events_dropped agg =
  List.fold_left (fun n (_, doc) -> n + Flightrec.doc_dropped doc) 0 agg.runs

(* Order-free rollups over persisted events, shared by the markdown and
   JSON renderers.  Rule firings are keyed by (table, row) — the same
   attribution coverage uses — steals by (thief, victim). *)
let event_tag_counts evs =
  List.sort compare
    (List.fold_left
       (fun acc (e : Flightrec.doc_event) ->
         let n = Option.value ~default:0 (List.assoc_opt e.d_tag acc) in
         (e.d_tag, n + 1) :: List.remove_assoc e.d_tag acc)
       [] evs)

let event_fire_counts evs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Flightrec.doc_event) ->
      if e.d_tag = "fire" then begin
        let key = (Option.value ~default:"?" e.d_table, e.d_b) in
        Hashtbl.replace tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      end)
    evs;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (ka, na) (kb, nb) -> compare (-na, ka) (-nb, kb))

let event_steal_counts evs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Flightrec.doc_event) ->
      if e.d_tag = "steal" then
        Hashtbl.replace tbl e.d_a
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.d_a)))
    evs;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> List.sort compare

(* ------------------------------ bench diff ---------------------------- *)

let bench_measurements doc =
  match Json.member "benchmarks" doc with
  | Some (Json.List entries) ->
      List.filter_map
        (fun e ->
          match
            ( Option.bind (Json.member "name" e) Json.to_str,
              Option.bind (Json.member "ns_per_run" e) Json.to_number )
          with
          | Some n, Some ns -> Some (n, ns)
          | _ -> None)
        entries
  | _ -> []

let bench_pairs doc =
  match Json.member "pairs" doc with
  | Some (Json.List entries) ->
      List.filter_map
        (fun e ->
          match
            ( Option.bind (Json.member "name" e) Json.to_str,
              Option.bind (Json.member "seq_ns" e) Json.to_number,
              Option.bind (Json.member "par_ns" e) Json.to_number,
              Option.bind (Json.member "speedup" e) Json.to_number )
          with
          | Some n, Some s, Some p, Some sp -> Some (n, s, p, sp)
          | _ -> None)
        entries
  | _ -> []

(* The same diff the CI baseline gate applies: per-benchmark new/old
   ratio between the first snapshot (baseline) and the last, flagged
   beyond the given threshold. *)
let bench_diff ?(threshold = 3.0) agg =
  match agg.benches with
  | (_, first) :: (_ :: _ as rest) ->
      let last = snd (List.nth rest (List.length rest - 1)) in
      let old_ns = bench_measurements first in
      let new_ns = bench_measurements last in
      List.filter_map
        (fun (name, o) ->
          match List.assoc_opt name new_ns with
          | Some n when o > 0. -> Some (name, o, n, n /. o, n /. o > threshold)
          | _ -> None)
        old_ns
  | _ -> []

(* ------------------------------ rendering ----------------------------- *)

type decode = table:string -> rows:int -> row:int -> string option

let run_summary_row doc =
  let str k = Option.bind (Json.member k doc) Json.to_str in
  let num k = Option.bind (Json.member k doc) Json.to_number in
  ( Option.value ~default:"?" (str "cmd"),
    Option.value ~default:"?" (str "date"),
    Option.value ~default:"-" (str "git_rev"),
    Option.value ~default:0. (num "elapsed_s") )

let md_escape s =
  String.concat "\\|" (String.split_on_char '|' s)

let render_markdown ?(decode : decode option) ?(max_uncovered = 10)
    ?(skipped = []) agg =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "# asura run report\n\n";
  if skipped <> [] then begin
    pr "## Skipped inputs\n\n";
    List.iter
      (fun (label, reason) ->
        pr "- %s — %s\n" (md_escape label) (md_escape reason))
      skipped;
    pr "\n"
  end;
  if agg.runs <> [] then begin
    pr "## Runs\n\n";
    pr "| manifest | cmd | date | git | elapsed |\n";
    pr "|---|---|---|---|---|\n";
    List.iter
      (fun (label, doc) ->
        let cmd, date, git, elapsed = run_summary_row doc in
        pr "| %s | %s | %s | %s | %.2fs |\n" (md_escape label) cmd date git
          elapsed)
      agg.runs;
    pr "\n";
    let cov = coverage agg in
    pr "## Transition coverage\n\n";
    if cov = [] then pr "_No coverage recorded (runs without --manifest coverage)._\n\n"
    else begin
      pr "| controller table | rows | covered | coverage |\n";
      pr "|---|---:|---:|---:|\n";
      List.iter
        (fun (tc : Coverage.table_coverage) ->
          pr "| %s | %d | %d | %.1f%% |\n" tc.name tc.rows tc.covered
            (Coverage.percent ~covered:tc.covered ~rows:tc.rows))
        cov;
      let covered, rows = Coverage.totals cov in
      pr "| **total** | **%d** | **%d** | **%.1f%%** |\n\n" rows covered
        (Coverage.percent ~covered ~rows);
      let any_uncovered =
        List.exists (fun tc -> tc.Coverage.covered < tc.Coverage.rows) cov
      in
      if any_uncovered then begin
        pr "### Uncovered transitions\n\n";
        List.iter
          (fun (tc : Coverage.table_coverage) ->
            let missing = Coverage.uncovered tc in
            if missing <> [] then begin
              pr "**%s** — %d of %d rows never fired:\n\n" tc.name
                (List.length missing) tc.rows;
              let shown, hidden =
                if List.length missing <= max_uncovered then (missing, 0)
                else
                  ( List.filteri (fun i _ -> i < max_uncovered) missing,
                    List.length missing - max_uncovered )
              in
              List.iter
                (fun row ->
                  match decode with
                  | Some d -> (
                      match d ~table:tc.name ~rows:tc.rows ~row with
                      | Some desc -> pr "- row %d: %s\n" row desc
                      | None -> pr "- row %d\n" row)
                  | None -> pr "- row %d\n" row)
                shown;
              if hidden > 0 then pr "- … and %d more\n" hidden;
              pr "\n"
            end)
          cov
      end
    end;
    (match invariant_matrix agg with
    | [] -> ()
    | matrix ->
        pr "## Invariant hit matrix\n\n";
        pr "| invariant |%s\n"
          (String.concat ""
             (List.map
                (fun (label, _) ->
                  Printf.sprintf " %s |" (md_escape (Filename.basename label)))
                agg.runs));
        pr "|---|%s\n" (String.concat "" (List.map (fun _ -> "---|") agg.runs));
        List.iter
          (fun (id, cells) ->
            pr "| %s |%s\n" id
              (String.concat ""
                 (List.map
                    (fun (checked, violated) ->
                      if violated > 0 then
                        Printf.sprintf " %d ✗%d |" checked violated
                      else Printf.sprintf " %d |" checked)
                    cells)))
          matrix;
        pr "\n")
  end;
  List.iter
    (fun (label, doc) ->
      pr "## Benchmarks — %s\n\n" (md_escape label);
      (match bench_pairs doc with
      | [] -> ()
      | pairs ->
          pr "| benchmark | seq ms | par ms | speedup |\n";
          pr "|---|---:|---:|---:|\n";
          List.iter
            (fun (name, seq_ns, par_ns, speedup) ->
              pr "| %s | %.3f | %.3f | %.2fx%s |\n" name (seq_ns /. 1e6)
                (par_ns /. 1e6) speedup
                (if speedup < 1.0 then " ⚠ regression" else ""))
            pairs;
          pr "\n");
      match bench_measurements doc with
      | [] -> pr "_No measurements._\n\n"
      | ms -> pr "%d measurements.\n\n" (List.length ms))
    agg.benches;
  (match bench_diff agg with
  | [] -> ()
  | diff ->
      pr "## Baseline diff (first vs last bench snapshot)\n\n";
      pr "| benchmark | baseline ms | latest ms | ratio |\n";
      pr "|---|---:|---:|---:|\n";
      List.iter
        (fun (name, o, n, ratio, bad) ->
          pr "| %s | %.3f | %.3f | %.2fx%s |\n" name (o /. 1e6) (n /. 1e6)
            ratio
            (if bad then " ⚠ slowdown" else ""))
        diff;
      pr "\n");
  (match plans agg with
  | [] -> ()
  | entries ->
      pr "## Plan observatory\n\n";
      pr "%d distinct plans across %d executions.\n\n" (List.length entries)
        (List.fold_left (fun n e -> n + e.Planlog.e_execs) 0 entries);
      pr "| fingerprint | site | query | execs | total ms | rows | misest |\n";
      pr "|---|---|---|---:|---:|---:|---:|\n";
      let worst_first =
        List.sort
          (fun a b -> compare (Planlog.misest b) (Planlog.misest a))
          entries
      in
      List.iteri
        (fun i (e : Planlog.entry) ->
          if i < max_uncovered then
            pr "| `%s` | %s | %s | %d | %.3f | %d | %.2fx |\n" e.e_fingerprint
              (md_escape e.e_site) (md_escape e.e_query) e.e_execs
              (e.e_total_ns /. 1e6) e.e_rows_out (Planlog.misest e))
        worst_first;
      if List.length worst_first > max_uncovered then
        pr "| … %d more | | | | | | |\n"
          (List.length worst_first - max_uncovered);
      pr "\n");
  (match events agg with
  | [] -> ()
  | evs ->
      pr "## Flight recorder\n\n";
      pr "%d events drained (%d overwritten by ring wrap-around).\n\n"
        (List.length evs) (events_dropped agg);
      pr "| event | count |\n|---|---:|\n";
      List.iter
        (fun (tag, n) -> pr "| %s | %d |\n" (md_escape tag) n)
        (event_tag_counts evs);
      pr "\n";
      (match event_fire_counts evs with
      | [] -> ()
      | fires ->
          pr "### Hottest rules\n\n";
          pr "| controller table | row | firings |\n|---|---:|---:|\n";
          List.iteri
            (fun i ((table, row), n) ->
              if i < max_uncovered then
                pr "| %s | %d | %d |\n" (md_escape table) row n)
            fires;
          pr "\n");
      match event_steal_counts evs with
      | [] -> ()
      | steals ->
          pr "### Steals by domain\n\n";
          pr "| domain | steals |\n|---:|---:|\n";
          List.iter (fun (dom, n) -> pr "| %d | %d |\n" dom n) steals;
          pr "\n");
  List.iter
    (fun (label, _) -> pr "_Validated %s (asura-stats/1)._\n" (md_escape label))
    agg.stats;
  List.iter
    (fun (label, doc) ->
      pr "_Validated %s (%s)._\n" (md_escape label)
        (Option.value ~default:"asura-explain/?" (schema_of doc)))
    agg.explains;
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Minimal HTML: the markdown content is line-structured enough (ATX
   headings, pipe tables, list items) to convert mechanically; anything
   unrecognized becomes a paragraph. *)
let render_html ?decode ?max_uncovered ?skipped agg =
  let md = render_markdown ?decode ?max_uncovered ?skipped agg in
  let buf = Buffer.create (String.length md * 2) in
  Buffer.add_string buf
    "<!doctype html>\n<html><head><meta charset=\"utf-8\"><title>asura run \
     report</title>\n<style>body{font-family:sans-serif;margin:2em}table{border-collapse:collapse}td,th{border:1px \
     solid #999;padding:4px 8px}</style></head><body>\n";
  let in_table = ref false in
  let in_list = ref false in
  let close_blocks () =
    if !in_table then (Buffer.add_string buf "</table>\n"; in_table := false);
    if !in_list then (Buffer.add_string buf "</ul>\n"; in_list := false)
  in
  let cells line =
    String.split_on_char '|' line
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  String.split_on_char '\n' md
  |> List.iter (fun line ->
         let t = String.trim line in
         if t = "" then close_blocks ()
         else if String.length t > 1 && t.[0] = '#' then begin
           close_blocks ();
           let level = if String.length t > 2 && t.[1] = '#' then
               if String.length t > 3 && t.[2] = '#' then 3 else 2
             else 1
           in
           let text = String.trim (String.sub t level (String.length t - level)) in
           Buffer.add_string buf
             (Printf.sprintf "<h%d>%s</h%d>\n" level (html_escape text) level)
         end
         else if String.length t > 1 && t.[0] = '|' then begin
           if String.length t > 2 && t.[1] = '-' then ()  (* separator row *)
           else begin
             if not !in_table then begin
               close_blocks ();
               Buffer.add_string buf "<table>\n";
               in_table := true
             end;
             Buffer.add_string buf "<tr>";
             List.iter
               (fun c ->
                 Buffer.add_string buf
                   (Printf.sprintf "<td>%s</td>" (html_escape c)))
               (cells t);
             Buffer.add_string buf "</tr>\n"
           end
         end
         else if String.length t > 1 && t.[0] = '-' && t.[1] = ' ' then begin
           if !in_table then (Buffer.add_string buf "</table>\n"; in_table := false);
           if not !in_list then begin
             Buffer.add_string buf "<ul>\n";
             in_list := true
           end;
           Buffer.add_string buf
             (Printf.sprintf "<li>%s</li>\n"
                (html_escape (String.sub t 2 (String.length t - 2))))
         end
         else begin
           close_blocks ();
           Buffer.add_string buf (Printf.sprintf "<p>%s</p>\n" (html_escape t))
         end);
  close_blocks ();
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let to_json ?(decode : decode option) ?(skipped = []) agg =
  let cov = coverage agg in
  let covered, rows = Coverage.totals cov in
  Json.Obj
    [
      ("schema", Json.Str "asura-report/1");
      ( "skipped",
        Json.List
          (List.map
             (fun (label, reason) ->
               Json.Obj
                 [ ("file", Json.Str label); ("reason", Json.Str reason) ])
             skipped) );
      ( "runs",
        Json.List
          (List.map
             (fun (label, doc) ->
               let cmd, date, git, elapsed = run_summary_row doc in
               Json.Obj
                 [
                   ("file", Json.Str label);
                   ("cmd", Json.Str cmd);
                   ("date", Json.Str date);
                   ("git_rev", Json.Str git);
                   ("elapsed_s", Json.Float elapsed);
                 ])
             agg.runs) );
      ( "coverage",
        Json.Obj
          [
            ("covered", Json.Int covered);
            ("rows", Json.Int rows);
            ("percent", Json.Float (Coverage.percent ~covered ~rows));
            ("tables", Json.List (List.map Coverage.table_to_json cov));
          ] );
      ( "uncovered",
        Json.Obj
          (List.filter_map
             (fun (tc : Coverage.table_coverage) ->
               match Coverage.uncovered tc with
               | [] -> None
               | missing ->
                   Some
                     ( tc.name,
                       Json.List
                         (List.map
                            (fun row ->
                              let desc =
                                Option.join
                                  (Option.map
                                     (fun d ->
                                       d ~table:tc.name ~rows:tc.rows ~row)
                                     decode)
                              in
                              Json.Obj
                                (("row", Json.Int row)
                                :: (match desc with
                                   | Some d -> [ ("transition", Json.Str d) ]
                                   | None -> [])))
                            missing) ))
             cov) );
      ( "invariants",
        Json.List
          (List.map
             (fun (id, cells) ->
               Json.Obj
                 [
                   ("id", Json.Str id);
                   ( "runs",
                     Json.List
                       (List.map
                          (fun (checked, violated) ->
                            Json.Obj
                              [
                                ("checked", Json.Int checked);
                                ("violated", Json.Int violated);
                              ])
                          cells) );
                 ])
             (invariant_matrix agg)) );
      ( "bench_diff",
        Json.List
          (List.map
             (fun (name, o, n, ratio, bad) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("baseline_ns", Json.Float o);
                   ("latest_ns", Json.Float n);
                   ("ratio", Json.Float ratio);
                   ("slowdown", Json.Bool bad);
                 ])
             (bench_diff agg)) );
      (* same aggregation the systables layer materializes as sys.plans,
         so CI can assert parity between the SQL path and the report *)
      ("plans", Planlog.entries_to_json (plans agg));
      (* and the same rollups sys.events canned queries compute, for the
         flight-recorder parity assert *)
      ( "events",
        let evs = events agg in
        Json.Obj
          [
            ("count", Json.Int (List.length evs));
            ("dropped", Json.Int (events_dropped agg));
            ( "by_tag",
              Json.Obj
                (List.map
                   (fun (tag, n) -> (tag, Json.Int n))
                   (event_tag_counts evs)) );
            ( "top_rules",
              Json.List
                (List.filteri
                   (fun i _ -> i < 10)
                   (List.map
                      (fun ((table, row), n) ->
                        Json.Obj
                          [
                            ("table", Json.Str table);
                            ("row", Json.Int row);
                            ("firings", Json.Int n);
                          ])
                      (event_fire_counts evs))) );
            ( "steals",
              Json.List
                (List.map
                   (fun (dom, n) ->
                     Json.Obj
                       [ ("domain", Json.Int dom); ("steals", Json.Int n) ])
                   (event_steal_counts evs)) );
          ] );
    ]
