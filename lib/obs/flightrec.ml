(* The exploration flight recorder: per-domain fixed-capacity ring
   buffers of packed integer event records.

   Spans and counters summarize a run; the recorder keeps the *dynamics*
   — which rule fired on which state, when a steal happened, when dedup
   saturated — so that a violation, deadlock or signal can be explained
   from the last milliseconds of evidence.  It is on by default, so the
   write path is engineered to vanish into the noise of a model-checking
   step: one enabled-check branch, one monotonic clock read, five int
   stores into a pre-allocated ring, no allocation in steady state.

   Recording must be legal from inside parallel workers (expand, dedup
   and steal events originate there), so the store is sharded exactly
   like {!Coverage}: each domain writes a private ring obtained through
   Domain.DLS, and {!drain} merges the rings by timestamp from a
   quiescent caller.  Like coverage bitmaps, only order-free projections
   of the stream (per-tag counts, per-rule firing counts) are part of
   the determinism contract — inter-domain interleaving and steal events
   are scheduling-dependent by nature.

   A record is [stride] consecutive ints:
     word 0  tag (see {!tag_name})
     word 1  timestamp delta in ns from the previous record of this ring
             (monotonic clock, so reconstruction walks backwards from
             the ring's last absolute stamp)
     word 2..4  payload a, b, c (tag-specific; unused slots are 0)
   A full ring overwrites its oldest record — the recorder keeps the
   most recent window by construction, and {!dropped} reports how much
   history fell off the back. *)

(* ------------------------------- tags --------------------------------- *)

let tag_expand = 0 (* a=depth, b=frontier / in-flight size *)
let tag_fire = 1 (* a=coverage table id, b=row, c=depth *)
let tag_dedup = 2 (* a=depth, b=1 if hit else 0 *)
let tag_steal = 3 (* a=thief participant, b=victim participant *)
let tag_compact = 4 (* a=shard, b=new capacity (visited-set growth) *)
let tag_solver_gen = 5 (* a=rows generated, b=columns bound *)
let tag_solver_extend = 6 (* a=candidates considered, b=rows kept *)
let tag_violation = 7 (* a=violation kind code, b=max depth *)
let tag_deadlock = 8 (* a=max depth *)
let tag_stop = 9 (* a=stop reason code, b=states explored *)

let tag_name = function
  | 0 -> "expand"
  | 1 -> "fire"
  | 2 -> "dedup"
  | 3 -> "steal"
  | 4 -> "compact"
  | 5 -> "solver_gen"
  | 6 -> "solver_extend"
  | 7 -> "violation"
  | 8 -> "deadlock"
  | 9 -> "stop"
  | n -> Printf.sprintf "tag%d" n

let tag_of_name = function
  | "expand" -> Some tag_expand
  | "fire" -> Some tag_fire
  | "dedup" -> Some tag_dedup
  | "steal" -> Some tag_steal
  | "compact" -> Some tag_compact
  | "solver_gen" -> Some tag_solver_gen
  | "solver_extend" -> Some tag_solver_extend
  | "violation" -> Some tag_violation
  | "deadlock" -> Some tag_deadlock
  | "stop" -> Some tag_stop
  | _ -> None

(* stop reason codes (payload a of [tag_stop]) *)
let stop_complete = 0
let stop_budget = 1
let stop_violation = 2

let stop_name = function
  | 0 -> "complete"
  | 1 -> "budget"
  | 2 -> "violation"
  | n -> Printf.sprintf "stop%d" n

(* ------------------------------- rings -------------------------------- *)

let stride = 5
let default_capacity = 4096

(* On by default (the whole point is that the evidence is already there
   when something goes wrong); ASURA_FLIGHTREC=off is the bench escape
   hatch for measuring the recorder's own overhead. *)
let enabled =
  ref
    (match Sys.getenv_opt "ASURA_FLIGHTREC" with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true)

let enable () = enabled := true
let disable () = enabled := false
let on () = !enabled

let with_disabled f =
  let prev = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := prev) f

type ring = {
  dom : int;  (* creation-order index, stable and small *)
  mutable buf : int array;  (* capacity * stride *)
  mutable cap : int;  (* capacity in records *)
  mutable head : int;  (* total records ever written to this ring *)
  mutable last_ns : int64;  (* absolute stamp of the newest record *)
}

(* The lock covers the ring list and capacity; ring buffers themselves
   are domain-private and written lock-free. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let rings : ring list ref = ref []
let capacity = ref default_capacity

let ring_key =
  Domain.DLS.new_key (fun () ->
      locked (fun () ->
          let r =
            {
              dom = List.length !rings;
              buf = Array.make (!capacity * stride) 0;
              cap = !capacity;
              head = 0;
              last_ns = 0L;
            }
          in
          rings := r :: !rings;
          r))

let set_capacity n =
  let n = max 16 n in
  locked (fun () ->
      capacity := n;
      List.iter
        (fun r ->
          r.buf <- Array.make (n * stride) 0;
          r.cap <- n;
          r.head <- 0;
          r.last_ns <- 0L)
        !rings)

let record ~tag ?(a = 0) ?(b = 0) ?(c = 0) () =
  if !enabled then begin
    let r = Domain.DLS.get ring_key in
    let now = Clock.now_ns () in
    let dt =
      if r.head = 0 then 0
      else
        let d = Int64.to_int (Int64.sub now r.last_ns) in
        if d < 0 then 0 else d
    in
    r.last_ns <- now;
    let slot = r.head mod r.cap * stride in
    let buf = r.buf in
    buf.(slot) <- tag;
    buf.(slot + 1) <- dt;
    buf.(slot + 2) <- a;
    buf.(slot + 3) <- b;
    buf.(slot + 4) <- c;
    r.head <- r.head + 1
  end

(* ------------------------------- drain -------------------------------- *)

type event = {
  t_ns : int64;  (** absolute monotonic stamp, reconstructed *)
  dom : int;
  tag : int;
  a : int;
  b : int;
  c : int;
}

(* Decode one ring oldest-first.  Absolute stamps are reconstructed
   backwards from [last_ns]: record i's stored delta is t(i) - t(i-1),
   so walking newest to oldest subtracts each record's own delta. *)
let ring_events r =
  let n = min r.head r.cap in
  let out = ref [] in
  let t = ref r.last_ns in
  for k = 0 to n - 1 do
    let slot = (r.head - 1 - k) mod r.cap * stride in
    let buf = r.buf in
    out :=
      {
        t_ns = !t;
        dom = r.dom;
        tag = buf.(slot);
        a = buf.(slot + 2);
        b = buf.(slot + 3);
        c = buf.(slot + 4);
      }
      :: !out;
    t := Int64.sub !t (Int64.of_int buf.(slot + 1))
  done;
  !out

(* Only call from a quiescent caller (no pool jobs in flight): the rings
   belong to other domains.  Par.Pool entry points only return after
   every chunk completes, so any caller outside a worker qualifies. *)
let drain () =
  let evs = locked (fun () -> List.concat_map ring_events !rings) in
  List.stable_sort
    (fun x y ->
      let ct = Int64.compare x.t_ns y.t_ns in
      if ct <> 0 then ct else compare x.dom y.dom)
    evs

let total () = locked (fun () -> List.fold_left (fun n r -> n + r.head) 0 !rings)

let dropped () =
  locked (fun () ->
      List.fold_left (fun n r -> n + max 0 (r.head - r.cap)) 0 !rings)

let reset () =
  locked (fun () ->
      List.iter
        (fun r ->
          Array.fill r.buf 0 (Array.length r.buf) 0;
          r.head <- 0;
          r.last_ns <- 0L)
        !rings)

(* ------------------------ order-free projections ---------------------- *)

(* The determinism-contract views of the stream: counts keyed by stable
   attributes, independent of inter-domain interleaving. *)

let counts_by_tag evs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace tbl e.tag
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.tag)))
    evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun a b -> compare (fst a) (fst b))

let fire_counts evs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.tag = tag_fire then
        Hashtbl.replace tbl (e.a, e.b)
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl (e.a, e.b))))
    evs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun a b -> compare (fst a) (fst b))

(* ----------------------------- signals -------------------------------- *)

(* Turn SIGINT/SIGTERM into an orderly [exit] so the at_exit manifest
   writer (Runlog) drains the rings: the flight recording of an
   interrupted run survives in its manifest.  130/143 are the
   conventional 128+signo codes. *)
let signals_armed = ref false

let arm_signal_drain () =
  if not !signals_armed then begin
    signals_armed := true;
    let handler code = Sys.Signal_handle (fun _ -> Stdlib.exit code) in
    (try Sys.set_signal Sys.sigint (handler 130)
     with Invalid_argument _ | Sys_error _ -> ());
    try Sys.set_signal Sys.sigterm (handler 143)
    with Invalid_argument _ | Sys_error _ -> ()
  end

(* ------------------------------- JSON --------------------------------- *)

let schema_name = "asura-events/1"

(* Fire events carry a runtime coverage table id, which is process-local
   — persisted documents carry the registered table name instead, via
   {!Coverage.lookup}. *)
let event_to_json ~t0 e =
  let base =
    [
      ("t_us", Json.Float (Int64.to_float (Int64.sub e.t_ns t0) /. 1e3));
      ("dom", Json.Int e.dom);
      ("tag", Json.Str (tag_name e.tag));
      ("a", Json.Int e.a);
      ("b", Json.Int e.b);
      ("c", Json.Int e.c);
    ]
  in
  let named =
    if e.tag = tag_fire then
      match Coverage.lookup ~id:e.a with
      | Some (name, _) -> base @ [ ("table", Json.Str name) ]
      | None -> base
    else base
  in
  Json.Obj named

let events_to_json evs =
  let t0 = match evs with [] -> 0L | e :: _ -> e.t_ns in
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("count", Json.Int (List.length evs));
      ("recorded", Json.Int (total ()));
      ("dropped", Json.Int (dropped ()));
      ("events", Json.List (List.map (event_to_json ~t0) evs));
    ]

let to_json () = events_to_json (drain ())

(* Parsed form of a persisted event: timestamps are relative
   microseconds within the originating run, and fire events carry the
   table name rather than a process-local id. *)
type doc_event = {
  d_t_us : float;
  d_dom : int;
  d_tag : string;
  d_a : int;
  d_b : int;
  d_c : int;
  d_table : string option;
}

let jnum d k = Option.bind (Json.member k d) Json.to_number
let jint d k = Option.map int_of_float (jnum d k)
let jstr d k = Option.bind (Json.member k d) Json.to_str

let doc_event_of_json d =
  match jstr d "tag" with
  | None -> None
  | Some tag ->
      Some
        {
          d_t_us = Option.value ~default:0. (jnum d "t_us");
          d_dom = Option.value ~default:0 (jint d "dom");
          d_tag = tag;
          d_a = Option.value ~default:0 (jint d "a");
          d_b = Option.value ~default:0 (jint d "b");
          d_c = Option.value ~default:0 (jint d "c");
          d_table = jstr d "table";
        }

(* Accepts an asura-events/1 document or any document with an "events"
   member of that shape (run manifests embed one). *)
let of_json doc =
  let node =
    match Json.member "events" doc with
    | Some (Json.Obj _ as nested) -> Some nested
    | Some (Json.List _) -> Some doc
    | _ -> if Json.member "schema" doc = Some (Json.Str schema_name) then Some doc else None
  in
  match node with
  | None -> []
  | Some n -> (
      match Json.member "events" n with
      | Some (Json.List evs) -> List.filter_map doc_event_of_json evs
      | _ -> [])

(* Re-serialize persisted events (e.g. the concatenation of several
   manifests' drains) back into an asura-events/1 document, so `asura
   events dump --runs` emits the same shape as a live dump. *)
let docs_to_json ?(dropped = 0) evs =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("count", Json.Int (List.length evs));
      ("recorded", Json.Int (List.length evs + dropped));
      ("dropped", Json.Int dropped);
      ( "events",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 ([
                    ("t_us", Json.Float e.d_t_us);
                    ("dom", Json.Int e.d_dom);
                    ("tag", Json.Str e.d_tag);
                    ("a", Json.Int e.d_a);
                    ("b", Json.Int e.d_b);
                    ("c", Json.Int e.d_c);
                  ]
                 @
                 match e.d_table with
                 | Some t -> [ ("table", Json.Str t) ]
                 | None -> []))
             evs) );
    ]

let doc_dropped doc =
  match Json.member "events" doc with
  | Some (Json.Obj _ as nested) ->
      Option.value ~default:0 (jint nested "dropped")
  | _ -> Option.value ~default:0 (jint doc "dropped")
