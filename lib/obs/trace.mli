(** Span/event recording with Chrome trace-event export.

    All entry points are no-ops while {!Config.on} is [false].  Events
    accumulate in a global in-memory buffer; {!save} writes a JSON file
    loadable in [chrome://tracing] or Perfetto. *)

type args = (string * Json.t) list

type event =
  | Complete of {
      name : string;
      cat : string;
      ts_us : float;  (** microseconds since the first recorded event *)
      dur_us : float;
      depth : int;  (** nesting depth when the span opened (0 = root) *)
      tid : int;
          (** id of the domain that recorded the span — each domain gets
              its own thread track in the Chrome-trace view, so worker
              chunks of a parallel kernel appear under the domain that
              ran them *)
      args : args;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      tid : int;
      args : args;
    }
  | Counter of { name : string; ts_us : float; values : (string * float) list }

(** Recording is safe from any domain: the buffer is mutex-guarded and
    span nesting depth is tracked per domain. *)

val with_span : ?cat:string -> ?args:args -> string -> (unit -> 'a) -> 'a
(** Time a thunk; the span is recorded when it returns (also on
    exceptions).  Spans nest freely. *)

val instant : ?cat:string -> ?args:args -> string -> unit
(** A point-in-time marker. *)

val counter : string -> (string * float) list -> unit
(** A counter sample; Perfetto renders series of these as a stacked
    time-series track. *)

val events : unit -> event list
(** Recorded events, oldest first (completion order for spans: a child
    span always precedes its parent). *)

val reset : unit -> unit

val to_json : unit -> Json.t
val export : unit -> string

val save : string -> unit
(** Write the Chrome trace JSON to a file. *)

type span_stat = {
  span : string;
  count : int;
  total_us : float;
  min_us : float;
  max_us : float;
}

val span_stats : unit -> span_stat list
(** Spans rolled up by name, in first-appearance order. *)
