(* Transition coverage: one bitmap per registered controller table,
   recording which rows have ever fired.

   Recording must be legal from inside parallel workers (the mcheck BFS
   expands states in worker domains), so the store is sharded exactly
   like the mcheck dedup table: each domain writes a private bitmap
   obtained through Domain.DLS, and {!snapshot} ORs the shards together.
   OR is commutative and idempotent, so the merged bitmap is independent
   of worker scheduling — the parallel result is bit-identical to the
   sequential one, which keeps the Par.Pool determinism contract intact
   (see lib/par/pool.mli).

   Bitmaps are keyed by the runtime [Table.id] of the generating table;
   ids are process-local, so anything persisted (run manifests) carries
   the table {e name} and row count instead, letting a later process
   re-associate coverage with a regenerated table of the same shape. *)

type table = { t_name : string; t_rows : int }

type table_coverage = {
  name : string;
  rows : int;
  covered : int;
  bitmap : Bytes.t;  (** LSB-first: row [r] is bit [r land 7] of byte [r lsr 3] *)
}

let enabled = ref false
let enable () = enabled := true
let disable () = enabled := false
let on () = !enabled

let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f

(* The lock covers the table registry and the shard list; the bitmaps
   themselves are domain-private and written lock-free. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let tables : (int, table) Hashtbl.t = Hashtbl.create 16
let shards : (int, Bytes.t) Hashtbl.t list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let h = Hashtbl.create 16 in
      locked (fun () -> shards := h :: !shards);
      h)

let register ~id ~name ~rows =
  locked (fun () ->
      if not (Hashtbl.mem tables id) then
        Hashtbl.add tables id { t_name = name; t_rows = rows })

let lookup ~id =
  locked (fun () ->
      Option.map
        (fun t -> (t.t_name, t.t_rows))
        (Hashtbl.find_opt tables id))

let bytes_for rows = (rows + 7) / 8

let set_bit b row =
  let i = row lsr 3 in
  if i >= 0 && i < Bytes.length b then
    Bytes.set b i
      (Char.chr (Char.code (Bytes.get b i) lor (1 lsl (row land 7))))

let record ~id ~row =
  if !enabled then begin
    let shard = Domain.DLS.get shard_key in
    match Hashtbl.find_opt shard id with
    | Some b -> set_bit b row
    | None -> (
        match locked (fun () -> Hashtbl.find_opt tables id) with
        | None -> ()  (* unregistered table: drop silently *)
        | Some t ->
            let b = Bytes.make (bytes_for t.t_rows) '\000' in
            Hashtbl.add shard id b;
            set_bit b row)
  end

(* ------------------------------ snapshot ------------------------------ *)

let popcount_byte =
  Array.init 256 (fun i ->
      let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
      go i 0)

let popcount b =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte.(Char.code c)) b;
  !n

let or_into ~dst src =
  let n = min (Bytes.length dst) (Bytes.length src) in
  for i = 0 to n - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lor Char.code (Bytes.get src i)))
  done

let snapshot () =
  locked @@ fun () ->
  let merged : (string * int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun id t ->
      let key = (t.t_name, t.t_rows) in
      let acc =
        match Hashtbl.find_opt merged key with
        | Some b -> b
        | None ->
            let b = Bytes.make (bytes_for t.t_rows) '\000' in
            Hashtbl.add merged key b;
            b
      in
      List.iter
        (fun shard ->
          match Hashtbl.find_opt shard id with
          | Some b -> or_into ~dst:acc b
          | None -> ())
        !shards)
    tables;
  Hashtbl.fold
    (fun (name, rows) bitmap acc ->
      { name; rows; covered = popcount bitmap; bitmap } :: acc)
    merged []
  |> List.sort (fun a b -> compare (a.name, a.rows) (b.name, b.rows))

let is_covered tc row =
  row >= 0 && row < tc.rows
  && (row lsr 3) < Bytes.length tc.bitmap
  && Char.code (Bytes.get tc.bitmap (row lsr 3)) land (1 lsl (row land 7)) <> 0

let uncovered tc =
  List.filter (fun r -> not (is_covered tc r)) (List.init tc.rows Fun.id)

let totals snap =
  List.fold_left (fun (c, r) tc -> (c + tc.covered, r + tc.rows)) (0, 0) snap

let percent ~covered ~rows =
  if rows = 0 then 100. else 100. *. float_of_int covered /. float_of_int rows

(* ----------------------------- hex codec ------------------------------ *)

let to_hex b =
  let out = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string out (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents out

let of_hex s =
  if String.length s mod 2 <> 0 then invalid_arg "Coverage.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Coverage.of_hex: not a hex digit"
  in
  Bytes.init
    (String.length s / 2)
    (fun i -> Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

(* ------------------------------- JSON --------------------------------- *)

let table_to_json tc =
  Json.Obj
    [
      ("table", Json.Str tc.name);
      ("rows", Json.Int tc.rows);
      ("covered", Json.Int tc.covered);
      ("percent", Json.Float (percent ~covered:tc.covered ~rows:tc.rows));
      ("bitmap", Json.Str (to_hex tc.bitmap));
    ]

let to_json () =
  let snap = snapshot () in
  let covered, rows = totals snap in
  Json.Obj
    [
      ("covered", Json.Int covered);
      ("rows", Json.Int rows);
      ("percent", Json.Float (percent ~covered ~rows));
      ("tables", Json.List (List.map table_to_json snap));
    ]

(* ------------------------------ lifecycle ----------------------------- *)

(* Both of these may only run while no pool jobs are in flight: they
   touch bitmaps owned by other domains' shards.  Par.Pool entry points
   only return after every chunk completes, so any caller outside a
   worker is already quiescent. *)

let reset () = locked (fun () -> List.iter Hashtbl.reset !shards)

let clear () =
  locked (fun () ->
      List.iter Hashtbl.reset !shards;
      Hashtbl.reset tables)
