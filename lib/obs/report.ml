(* The --stats text renderer: span roll-up followed by all metric
   registries. *)

let render () =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match Trace.span_stats () with
  | [] -> ()
  | stats ->
      pr "=== spans ===\n";
      pr "%-36s %8s %12s %12s %12s\n" "span" "count" "total ms" "mean us"
        "max us";
      List.iter
        (fun (s : Trace.span_stat) ->
          pr "%-36s %8d %12.3f %12.1f %12.1f\n" s.span s.count
            (s.total_us /. 1000.)
            (s.total_us /. float_of_int s.count)
            s.max_us)
        stats);
  let metrics = Metrics.summary () in
  if metrics <> "" then begin
    pr "=== metrics ===\n";
    Buffer.add_string buf metrics
  end;
  Buffer.contents buf

let reset () =
  Trace.reset ();
  Metrics.clear ();
  Coverage.reset ();
  Runlog.reset ()
