(** Text summary of everything recorded so far. *)

val render : unit -> string
(** Span roll-up (by name) followed by every metric registry; empty
    string when nothing was recorded. *)

val reset : unit -> unit
(** Clear the trace buffer and zero all metrics. *)
