(** Text summary of everything recorded so far. *)

val render : unit -> string
(** Span roll-up (by name) followed by every metric registry; empty
    string when nothing was recorded. *)

val reset : unit -> unit
(** Clear the trace buffer, zero all metrics and coverage bitmaps
    (registrations survive), and disarm any pending run manifest. *)
