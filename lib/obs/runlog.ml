(* Persistent run manifests and the live --progress heartbeat.

   A manifest is one JSON document (schema asura-run/1) describing a
   whole toolchain invocation: argv, git revision, wall time, the
   coverage summary and a metrics snapshot, plus free-form notes the
   command contributes ("mcheck.states_explored", "sim.steps", ...).
   The CLI configures a manifest directory at startup and writes the
   file from an at_exit hook, so every exit path — including violation
   exit code 1 — still persists the run.

   The heartbeat is poll-based: long-running loops call {!tick} from the
   spawning domain (the mcheck sequential loop and the parallel merge
   loop, never a worker), and a line is emitted at most once per
   interval.  Workers stay heartbeat-free, so the determinism contract
   of Par.Pool is untouched. *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------- sink --------------------------------- *)

(* Heartbeats (and the CLI's Logs reporter, under --log-file) go to this
   channel: stderr by default so stdout stays parseable under
   --progress. *)

let sink_ch = ref stderr
let set_sink oc = sink_ch := oc
let sink () = !sink_ch

(* ------------------------------ manifest ------------------------------ *)

type state = {
  mutable dir : string option;
  mutable cmd : string;
  mutable argv : string list;
  mutable t0 : int64;  (** monotonic, for elapsed *)
  mutable started_at : float;  (** Unix epoch seconds *)
  mutable notes : (string * Json.t) list;  (** newest first, key-replacing *)
}

let st =
  {
    dir = None;
    cmd = "run";
    argv = [];
    t0 = Clock.now_ns ();
    started_at = 0.;
    notes = [];
  }

let configured () = locked (fun () -> st.dir <> None)

let configure ~dir ~cmd ~argv =
  locked (fun () ->
      st.dir <- Some dir;
      st.cmd <- cmd;
      st.argv <- Array.to_list argv;
      st.t0 <- Clock.now_ns ();
      st.started_at <- Unix.gettimeofday ();
      st.notes <- [])

let note key v =
  locked (fun () ->
      st.notes <- (key, v) :: List.remove_assoc key st.notes)

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None)
  with _ -> None

let iso8601 epoch =
  let tm = Unix.gmtime epoch in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let timestamp_slug epoch =
  let tm = Unix.gmtime epoch in
  Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let manifest () =
  let cmd, argv, t0, started_at, notes =
    locked (fun () -> (st.cmd, st.argv, st.t0, st.started_at, st.notes))
  in
  let started_at = if started_at = 0. then Unix.gettimeofday () else started_at in
  Json.Obj
    ([
       ("schema", Json.Str "asura-run/1");
       ("cmd", Json.Str cmd);
       ("argv", Json.List (List.map (fun a -> Json.Str a) argv));
       ("date", Json.Str (iso8601 started_at));
       ( "git_rev",
         match git_rev () with Some r -> Json.Str r | None -> Json.Null );
       ("elapsed_s", Json.Float (Clock.to_s (Clock.since t0)));
     ]
    @ List.rev notes
    @ [
        ("coverage", Coverage.to_json ());
        ("metrics", Metrics.to_json ());
        (* the plan observatory's snapshot, so reports and `asura plan
           diff` can aggregate planner decisions across runs; stays an
           additive asura-run/1 field *)
        ("plans", Planlog.to_json ());
        (* the flight recorder's ring drain — the last few thousand
           events per domain before this exit, whatever its reason *)
        ("events", Flightrec.to_json ());
      ])

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write () =
  match locked (fun () -> st.dir) with
  | None -> None
  | Some dir ->
      let doc = manifest () in
      let started_at = locked (fun () -> st.started_at) in
      let started_at =
        if started_at = 0. then Unix.gettimeofday () else started_at
      in
      let cmd = locked (fun () -> st.cmd) in
      ensure_dir dir;
      let path =
        Filename.concat dir
          (Printf.sprintf "%s-%s.json" (timestamp_slug started_at) cmd)
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Json.to_string doc);
          output_char oc '\n');
      Some path

(* ------------------------------ heartbeat ----------------------------- *)

let progress_interval : float option ref = ref None
let last_beat = ref Int64.min_int

let enable_progress ?(interval_s = 1.0) () =
  progress_interval := Some interval_s;
  last_beat := Int64.min_int

let disable_progress () = progress_interval := None
let progress_on () = !progress_interval <> None

let tick render =
  match !progress_interval with
  | None -> ()
  | Some iv ->
      let now = Clock.now_ns () in
      if
        !last_beat = Int64.min_int
        || Clock.to_s (Int64.sub now !last_beat) >= iv
      then begin
        last_beat := now;
        let oc = !sink_ch in
        output_string oc (render ());
        output_char oc '\n';
        flush oc
      end

(* ------------------------------ lifecycle ----------------------------- *)

let reset () =
  locked (fun () ->
      st.dir <- None;
      st.cmd <- "run";
      st.argv <- [];
      st.t0 <- Clock.now_ns ();
      st.started_at <- 0.;
      st.notes <- []);
  progress_interval := None;
  last_beat := Int64.min_int
