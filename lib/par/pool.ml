(* Persistent domain pool with chunked, deterministic parallel map.

   Worker domains block on a condition variable waiting for jobs; a
   parallel region enqueues one job per chunk (minus one, which the
   calling domain runs itself), then waits on a per-region latch.  Chunk
   results land in slot [i] of a result array, so the merge order is
   fixed by construction no matter which domain finishes first. *)

(* ------------------------- parallelism degree ------------------------- *)

let env_domains () =
  match Sys.getenv_opt "ASURA_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

let requested = Atomic.make (env_domains ())
let available () = Domain.recommended_domain_count ()
let domains () = Atomic.get requested
let set_domains n = Atomic.set requested (max 1 n)

let with_domains n f =
  let prev = domains () in
  set_domains n;
  Fun.protect ~finally:(fun () -> set_domains prev) f

(* Workers mark themselves so a parallel call made from inside a chunk
   function degrades to the sequential path instead of re-entering (and
   possibly starving) the pool. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key
let sequential () = in_worker () || domains () <= 1

(* ------------------------------ the pool ------------------------------ *)

let obs_reg = lazy (Obs.Metrics.registry "par")

type pool = {
  lock : Mutex.t;
  work_available : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable workers : int;  (** domains spawned so far *)
}

let pool =
  {
    lock = Mutex.create ();
    work_available = Condition.create ();
    jobs = Queue.create ();
    workers = 0;
  }

(* Chunk functions run here must be pure per the contract in the mli;
   the one sanctioned side effect is Obs.Coverage.record, whose
   per-domain bitmap shards (keyed off this domain's DLS) merge by
   bitwise OR and so cannot observe scheduling order. *)
let worker_loop () =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.jobs do
      Condition.wait pool.work_available pool.lock
    done;
    let job = Queue.pop pool.jobs in
    Mutex.unlock pool.lock;
    job ();
    loop ()
  in
  loop ()

(* Workers are never joined: they idle on the condition variable and die
   with the process.  [ensure_workers] grows the pool to the high-water
   mark of requested degrees.  Every Domain.spawn is counted in the
   "spawn" counter of the "par" registry: spawning a domain costs
   hundreds of microseconds, so any hot path that re-spawns per region
   (instead of reusing the resident pool) shows up immediately — the
   regression test over a multi-level parallel search pins this at
   [domains - 1] no matter how many regions ran. *)
let spawn_counter = lazy (Obs.Metrics.counter (Lazy.force obs_reg) "spawn")

let ensure_workers n =
  Mutex.lock pool.lock;
  let missing = n - pool.workers in
  if missing > 0 then begin
    pool.workers <- n;
    Mutex.unlock pool.lock;
    for _ = 1 to missing do
      Obs.Metrics.incr (Lazy.force spawn_counter);
      ignore (Domain.spawn worker_loop : unit Domain.t)
    done
  end
  else Mutex.unlock pool.lock

(* --------------------- contention instrumentation ---------------------
   Workers stay metric-free (the determinism contract): each chunk only
   stamps raw clock readings into caller-owned arrays, and the spawning
   domain folds them into the "par" registry after the join.  With
   observability off no clock is read and no array is allocated. *)

let ms_bounds = Obs.Metrics.exponential_bounds ~start:0.01 ~factor:4. 12

let chunk_hist =
  lazy (Obs.Metrics.histogram ~bounds:ms_bounds (Lazy.force obs_reg) "chunk_ms")

let wait_hist =
  lazy
    (Obs.Metrics.histogram ~bounds:ms_bounds (Lazy.force obs_reg)
       "queue_wait_ms")

(* Stable short labels for the domains that ever ran a chunk, in order of
   first appearance ("d0" is whichever domain spawned the first region). *)
let slot_lock = Mutex.create ()
let slots : (int, string) Hashtbl.t = Hashtbl.create 8

let slot_name did =
  Mutex.lock slot_lock;
  let name =
    match Hashtbl.find_opt slots did with
    | Some s -> s
    | None ->
        let s = Printf.sprintf "d%d" (Hashtbl.length slots) in
        Hashtbl.add slots did s;
        s
  in
  Mutex.unlock slot_lock;
  name

let us ns = Int64.to_int (Int64.div ns 1000L)

let record_region ~t0 ~starts ~stops ~doms n =
  let reg = Lazy.force obs_reg in
  Obs.Metrics.incr (Obs.Metrics.counter reg "regions");
  Obs.Metrics.add (Obs.Metrics.counter reg "chunks") n;
  let join_t = Obs.Clock.now_ns () in
  for i = 0 to n - 1 do
    if stops.(i) <> 0L then begin
      let busy = Int64.sub stops.(i) starts.(i) in
      let wait = Int64.sub starts.(i) t0 in
      Obs.Metrics.observe (Lazy.force chunk_hist) (Obs.Clock.to_ms busy);
      Obs.Metrics.observe (Lazy.force wait_hist) (Obs.Clock.to_ms wait);
      let s = slot_name doms.(i) in
      Obs.Metrics.add (Obs.Metrics.counter reg ("busy_us." ^ s)) (us busy);
      Obs.Metrics.add (Obs.Metrics.counter reg ("idle_us." ^ s)) (us wait)
    end
  done;
  (* how long the spawning domain sat at the barrier after finishing its
     own chunk — the load-imbalance cost of the region *)
  if stops.(0) <> 0L then
    Obs.Metrics.add
      (Obs.Metrics.counter reg "join_wait_us")
      (us (Int64.sub join_t stops.(0)))

(* Time spent by the spawning domain stitching chunk results back
   together (Array.concat / List.concat in the entry points below). *)
let timed_merge f =
  if not (Obs.Config.on ()) then f ()
  else begin
    let t0 = Obs.Clock.now_ns () in
    let r = f () in
    Obs.Metrics.add
      (Obs.Metrics.counter (Lazy.force obs_reg) "merge_us")
      (us (Obs.Clock.since t0));
    r
  end

(* Run every thunk, chunk 0 on the calling domain, the rest on workers;
   return only once all have finished.  The first exception (by chunk
   index) is re-raised in the calling domain after the join, so a failing
   chunk cannot leave workers writing into freed result slots. *)
let run_chunks (thunks : (unit -> unit) array) =
  let n = Array.length thunks in
  if n = 1 then thunks.(0) ()
  else begin
    ensure_workers (n - 1);
    let record = Obs.Config.on () in
    let t0 = if record then Obs.Clock.now_ns () else 0L in
    let starts = if record then Array.make n 0L else [||] in
    let stops = if record then Array.make n 0L else [||] in
    let doms = if record then Array.make n 0 else [||] in
    let timed i f () =
      if record then begin
        starts.(i) <- Obs.Clock.now_ns ();
        doms.(i) <- (Domain.self () :> int)
      end;
      f ();
      if record then stops.(i) <- Obs.Clock.now_ns ()
    in
    let failures = Array.make n None in
    let remaining = Atomic.make (n - 1) in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let guarded i f () =
      (try f () with e -> failures.(i) <- Some e);
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_lock;
        Condition.signal all_done;
        Mutex.unlock done_lock
      end
    in
    Mutex.lock pool.lock;
    for i = 1 to n - 1 do
      Queue.push (guarded i (timed i thunks.(i))) pool.jobs
    done;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    (try timed 0 thunks.(0) () with e -> failures.(0) <- Some e);
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    if record then record_region ~t0 ~starts ~stops ~doms n;
    Array.iter (function Some e -> raise e | None -> ()) failures
  end

(* ------------------------- chunked entry points ------------------------ *)

(* Small-work fallback: below this many items, a chunked parallel region
   runs inline on the calling domain.  Fanning a region out costs queue
   and condition-variable traffic plus a barrier, and every resident
   domain makes each stop-the-world minor collection more expensive —
   for small inputs that fixed cost dwarfs any parallel win (the
   generate-D-incremental and deadlock-V-vc4 seq-vs-par regressions were
   exactly this shape).  The work-stealing frontier ([steal_loop]) is
   not affected: its job count is unknown up front. *)
let default_inline_below = 128

let inline_below =
  ref
    (match Sys.getenv_opt "ASURA_PAR_INLINE" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 0 -> n
        | _ -> default_inline_below)
    | None -> default_inline_below)

let set_inline_below n = inline_below := max 0 n

let degree ?(min_chunk = 1) n =
  if sequential () || n <= min_chunk || n < !inline_below then 1
  else min (domains ()) (max 1 (n / max 1 min_chunk))

(* Contiguous (offset, length) ranges with sizes differing by at most 1. *)
let ranges n d =
  let base = n / d and extra = n mod d in
  Array.init d (fun i ->
      (i * base) + min i extra, base + if i < extra then 1 else 0)

let map_chunks ?min_chunk f a =
  let n = Array.length a in
  let d = degree ?min_chunk n in
  if d <= 1 then [| f a |]
  else begin
    let rs = ranges n d in
    let out = Array.make d None in
    run_chunks
      (Array.init d (fun i () ->
           let lo, len = rs.(i) in
           out.(i) <- Some (f (Array.sub a lo len))));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array ?min_chunk f a =
  let d = degree ?min_chunk (Array.length a) in
  if d <= 1 then Array.map f a
  else
    let parts = map_chunks ?min_chunk (Array.map f) a in
    timed_merge (fun () -> Array.concat (Array.to_list parts))

let map_list ?min_chunk f l =
  let d = degree ?min_chunk (List.length l) in
  if d <= 1 then List.map f l
  else
    Array.to_list (map_array ?min_chunk f (Array.of_list l))

let concat_map_list ?min_chunk f l =
  let d = degree ?min_chunk (List.length l) in
  if d <= 1 then List.concat_map f l
  else
    let parts =
      map_chunks ?min_chunk
        (fun chunk -> List.concat_map f (Array.to_list chunk))
        (Array.of_list l)
    in
    timed_merge (fun () -> List.concat (Array.to_list parts))

let filter_list ?min_chunk p l =
  let d = degree ?min_chunk (List.length l) in
  if d <= 1 then List.filter p l
  else
    let parts =
      map_chunks ?min_chunk
        (fun chunk -> List.filter p (Array.to_list chunk))
        (Array.of_list l)
    in
    timed_merge (fun () -> List.concat (Array.to_list parts))

(* --------------------------- work stealing ---------------------------

   A frontier that never globally synchronizes: each participant owns a
   deque (LIFO at its own end, FIFO at the thief end, the classic
   work-stealing discipline), processes jobs and pushes successors
   locally, and steals from a random victim when its own deque drains.
   Termination is detected with a global count of unfinished jobs: a job
   is "unfinished" from push until its [work] call returns, so the count
   can only reach zero once no job is queued anywhere and no job is
   mid-execution (whose pushes could refill a deque).

   Participants run as ordinary pool jobs through [run_chunks], so the
   resident worker domains are reused — a steal region spawns nothing
   once the pool has reached its high-water mark ("spawn" counter).

   Idle participants first sweep every victim twice, then park on a
   condition variable; pushes and the final decrement broadcast, so a
   parked thief cannot miss the wakeup that carries the last work (the
   parked counter and the re-check both happen under the same lock).
   On a single hardware thread this matters more than steal latency:
   spinning thieves would eat the very core the owner needs. *)

type 'job deque = {
  dq_lock : Mutex.t;
  mutable buf : 'job array;
  mutable head : int;  (** index of the oldest job (thief end) *)
  mutable tail : int;  (** one past the newest job (owner end) *)
}

let deque_create () =
  { dq_lock = Mutex.create (); buf = [||]; head = 0; tail = 0 }

let deque_push d j =
  Mutex.lock d.dq_lock;
  let cap = Array.length d.buf in
  if d.tail - d.head = cap then begin
    (* full: compact into a doubled buffer *)
    let buf = Array.make (max 64 (2 * cap)) j in
    Array.blit d.buf (d.head mod max 1 cap) buf 0 (cap - (d.head mod max 1 cap));
    if cap > 0 then
      Array.blit d.buf 0 buf
        (cap - (d.head mod cap))
        (d.head mod cap);
    d.buf <- buf;
    d.head <- 0;
    d.tail <- cap
  end;
  d.buf.(d.tail mod Array.length d.buf) <- j;
  d.tail <- d.tail + 1;
  Mutex.unlock d.dq_lock

let deque_pop d =
  Mutex.lock d.dq_lock;
  let r =
    if d.tail = d.head then None
    else begin
      d.tail <- d.tail - 1;
      Some d.buf.(d.tail mod Array.length d.buf)
    end
  in
  Mutex.unlock d.dq_lock;
  r

let deque_steal d =
  Mutex.lock d.dq_lock;
  let r =
    if d.tail = d.head then None
    else begin
      let j = d.buf.(d.head mod Array.length d.buf) in
      d.head <- d.head + 1;
      Some j
    end
  in
  Mutex.unlock d.dq_lock;
  r

type 'job ctl = { push : 'job -> unit; stop : unit -> unit }

let steal_loop (type job acc) ?workers ~(init : int -> acc)
    ~(work : acc -> job ctl -> job -> unit) (jobs : job list) : acc array =
  let w = match workers with Some w -> max 1 w | None -> domains () in
  if w = 1 || sequential () then begin
    (* Degenerate single-participant loop: a FIFO queue, so at one
       domain the processing order is exactly breadth-first — the same
       order as the sequential reference engine. *)
    let acc = init 0 in
    let q = Queue.create () in
    let stopped = ref false in
    let ctl =
      { push = (fun j -> Queue.add j q); stop = (fun () -> stopped := true) }
    in
    List.iter (fun j -> Queue.add j q) jobs;
    while (not !stopped) && not (Queue.is_empty q) do
      work acc ctl (Queue.pop q)
    done;
    [| acc |]
  end
  else begin
    let deques = Array.init w (fun _ -> deque_create ()) in
    let pending = Atomic.make 0 in
    let stopped = Atomic.make false in
    let park_lock = Mutex.create () in
    let park_cond = Condition.create () in
    let parked = Atomic.make 0 in
    let wake_all () =
      if Atomic.get parked > 0 then begin
        Mutex.lock park_lock;
        Condition.broadcast park_cond;
        Mutex.unlock park_lock
      end
    in
    let accs = Array.init w init in
    (* Seed round-robin so the first sweep finds work everywhere. *)
    List.iteri
      (fun i j ->
        Atomic.incr pending;
        deque_push deques.(i mod w) j)
      jobs;
    let participant self () =
      let rng = Random.State.make [| 0x57ea1; self |] in
      let my = deques.(self) in
      let ctl =
        {
          push =
            (fun j ->
              Atomic.incr pending;
              deque_push my j;
              wake_all ());
          stop =
            (fun () ->
              Atomic.set stopped true;
              wake_all ());
        }
      in
      let acc = accs.(self) in
      let finish_job () =
        if Atomic.fetch_and_add pending (-1) = 1 then
          (* the very last job: nothing queued, nothing mid-flight *)
          wake_all ()
      in
      let try_steal () =
        (* one randomized sweep over the other participants *)
        let off = 1 + Random.State.int rng (w - 1) in
        let rec go k =
          if k = w - 1 then None
          else
            let victim = (self + off + k) mod w in
            match deque_steal deques.(victim) with
            | Some j ->
                (* flight-record the migration: per-domain steal counts
                   are the imbalance evidence `asura events top` shows *)
                Obs.Flightrec.record ~tag:Obs.Flightrec.tag_steal ~a:self
                  ~b:victim ();
                Some j
            | None -> go (k + 1)
        in
        go 0
      in
      let rec loop idle_sweeps =
        if Atomic.get stopped then ()
        else
          match deque_pop my with
          | Some j ->
              work acc ctl j;
              finish_job ();
              loop 0
          | None -> (
              if Atomic.get pending = 0 then ()
              else
                match try_steal () with
                | Some j ->
                    work acc ctl j;
                    finish_job ();
                    loop 0
                | None ->
                    if idle_sweeps < 2 then loop (idle_sweeps + 1)
                    else begin
                      (* park until a push / the last job / stop *)
                      Mutex.lock park_lock;
                      Atomic.incr parked;
                      if (not (Atomic.get stopped)) && Atomic.get pending > 0
                      then Condition.wait park_cond park_lock;
                      Atomic.decr parked;
                      Mutex.unlock park_lock;
                      loop 0
                    end)
      in
      try loop 0
      with e ->
        (* a crashed participant must not strand the others at the
           termination barrier *)
        Atomic.set stopped true;
        Mutex.lock park_lock;
        Condition.broadcast park_cond;
        Mutex.unlock park_lock;
        raise e
    in
    run_chunks (Array.init w participant);
    accs
  end

let map_reduce ?min_chunk ~map ~merge ~init a =
  let parts =
    map_chunks ?min_chunk
      (fun chunk ->
        Array.fold_left (fun acc x -> merge acc (map x)) init chunk)
      a
  in
  if Array.length parts = 1 then parts.(0)
  else Array.fold_left merge init parts
