(** A dependency-free domain pool for the data-parallel kernels.

    The paper's whole methodology is bulk relational work — cross-product
    pruning, pairwise composition, breadth-first reachability — and those
    kernels split into independent chunks whose results only need to be
    concatenated back in chunk order.  This module provides exactly that:
    chunked parallel map / map-reduce over arrays and lists with a
    {e deterministic merge order}, so the parallel result is structurally
    identical to the sequential one, element for element.

    Worker domains are spawned lazily on first use and then persist,
    blocked on a condition variable, so a long run pays the spawn cost
    once.  With [domains () <= 1] every entry point falls back to the
    plain [Stdlib] sequential implementation ([List.map],
    [List.concat_map], …), making the sequential path byte-identical to a
    build without this module.

    Determinism contract: callers must pass chunk functions that are pure
    (no shared mutable state, no I/O, no observability recording); all
    bookkeeping belongs in the spawning domain, after the join.  Chunk
    results are merged left-to-right in chunk index order.

    Two carve-outs: transition-coverage recording ({!Obs.Coverage.record})
    and flight-recorder events ({!Obs.Flightrec.record}) are legal inside
    workers.  Each domain writes a private shard (a bitmap, a ring), and
    the only projections consumers may treat as deterministic are
    order-free merges — bitmap OR for coverage, per-tag / per-rule counts
    for events.  Anything whose merge is order-sensitive (ordered traces,
    interleavings) remains scheduling-dependent and is reported as such.

    Nested parallel regions are not parallelized: a call made from inside
    a worker runs sequentially, so kernels freely compose without
    deadlocking the pool. *)

val available : unit -> int
(** [Domain.recommended_domain_count ()] — what the hardware offers. *)

val domains : unit -> int
(** Current parallelism degree.  Initialized from the [ASURA_DOMAINS]
    environment variable (default [1]); [--domains N] on the CLI calls
    {!set_domains}. *)

val set_domains : int -> unit
(** Set the parallelism degree (clamped to at least 1). *)

val with_domains : int -> (unit -> 'a) -> 'a
(** Run a thunk under a temporary parallelism degree, restoring the
    previous degree afterwards (exception-safe). *)

val sequential : unit -> bool
(** [domains () <= 1], or the caller is itself a pool worker. *)

val in_worker : unit -> bool
(** Is the calling domain a pool worker? *)

val degree : ?min_chunk:int -> int -> int
(** [degree ~min_chunk n]: how many chunks {!map_chunks} would split [n]
    items into — [1] means the sequential fallback.  Each chunk gets at
    least [min_chunk] items (default [1]), and inputs smaller than the
    {!set_inline_below} threshold always run inline: for small regions
    the queue/barrier traffic and extra GC coordination of a fan-out
    cost more than the parallelism recovers. *)

val set_inline_below : int -> unit
(** Set the small-work threshold (item count) below which chunked entry
    points run inline regardless of {!domains}.  Default [128],
    overridable with the [ASURA_PAR_INLINE] environment variable; [0]
    disables the fallback.  {!steal_loop} is unaffected. *)

val map_chunks : ?min_chunk:int -> ('a array -> 'b) -> 'a array -> 'b array
(** Split the input into [degree] contiguous chunks, apply [f] to each
    chunk (in parallel when [degree > 1]), and return the per-chunk
    results in chunk order.  With one chunk this is [[| f input |]] run in
    the calling domain. *)

val map_array : ?min_chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with index-aligned (deterministic) output. *)

val map_list : ?min_chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], preserving order. *)

val concat_map_list : ?min_chunk:int -> ('a -> 'b list) -> 'a list -> 'b list
(** Parallel [List.concat_map], preserving order. *)

val filter_list : ?min_chunk:int -> ('a -> bool) -> 'a list -> 'a list
(** Parallel [List.filter], preserving order. *)

type 'job ctl = { push : 'job -> unit; stop : unit -> unit }
(** Handle given to {!steal_loop} work functions: [push] enqueues a new
    job on the calling participant's own deque; [stop] requests global
    early termination (best-effort — jobs already mid-execution finish). *)

val steal_loop :
  ?workers:int ->
  init:(int -> 'acc) ->
  work:('acc -> 'job ctl -> 'job -> unit) ->
  'job list ->
  'acc array
(** Work-stealing parallel loop: the initial [jobs] are dealt round-robin
    to [workers] participants (default {!domains}[ ()]), each of which
    repeatedly pops from its own deque — newest first — executes
    [work acc ctl job], and steals the {e oldest} job from a random victim
    when its own deque is empty.  Terminates when every pushed job has
    been executed (detected by a global unfinished-job count) or when
    [ctl.stop] is called.  Returns the per-participant accumulators in
    participant order.

    Unlike the chunked entry points, the execution order — and therefore
    anything order-sensitive a caller folds into its accumulators — is
    {e not} deterministic at [workers > 1]; callers needing the
    deterministic-merge contract must only extract order-free results
    (sets, bitmap ORs, sums) from the accumulator array.  With
    [workers = 1] (or under {!sequential}) the loop degenerates to a
    single FIFO queue on the calling domain, i.e. exact breadth-first
    order.  Participants are ordinary pool jobs, so the resident worker
    domains are reused ("spawn" counter in the ["par"] registry counts
    every [Domain.spawn]). *)

val map_reduce :
  ?min_chunk:int ->
  map:('a -> 'b) ->
  merge:('b -> 'b -> 'b) ->
  init:'b ->
  'a array ->
  'b
(** Each chunk folds [merge acc (map x)] left-to-right from [init]; chunk
    results are then merged left-to-right in chunk order.  Equal to the
    sequential fold whenever [merge] is associative with [init] as a left
    identity. *)
