(* The ASURA protocol model: messages, states, topology, controller
   generation. *)

open Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let test_message_inventory () =
  check "about 50 messages" true (List.length Message.all >= 45);
  List.iter
    (fun name ->
      check ("paper message " ^ name) true (Message.find name <> None))
    [ "readex"; "wb"; "sinv"; "mread"; "data"; "idone"; "compl"; "retry";
      "dfdback" ];
  check "names unique" true
    (let names = List.map (fun m -> m.Message.name) Message.all in
     List.length (List.sort_uniq compare names) = List.length names)

let test_message_classification () =
  check "readex is a request" true (Message.is_request "readex");
  check "data is a response" true (Message.is_response "data");
  check "nothing is both" true
    (List.for_all
       (fun m ->
         Message.is_request m.Message.name <> Message.is_response m.Message.name)
       Message.all);
  check "unknown name" false (Message.is_request "bogus")

let test_message_directions () =
  check "local requests go local->home" true
    (List.for_all
       (fun n ->
         let m = Message.find_exn n in
         m.Message.src = Topology.Local && m.Message.dst = Topology.Home)
       Message.local_requests);
  check "snoops go home->remote" true
    (List.for_all
       (fun n -> (Message.find_exn n).Message.dst = Topology.Remote)
       Message.snoop_requests);
  check_int "memory path has both directions"
    (List.length Message.memory_requests + List.length Message.memory_responses)
    (List.length (List.filter (fun m -> m.Message.category = Message.Mem) Message.all))

let test_states () =
  check_int "MESI has four states" 4 (List.length State.all_cache_states);
  check_str "busy encoding" "Busy-readex-sd"
    (State.busy_to_string { State.txn = State.T_readex; pending = State.Sd });
  check "busy roundtrip" true
    (List.for_all
       (fun b -> State.busy_of_string (State.busy_to_string b) = Some b)
       State.all_busy_states);
  check "about 40-60 busy states" true
    (let n = List.length State.all_busy_states in
     n >= 39 && n <= 70);
  check_int "bdir domain adds I" (List.length State.all_busy_states + 1)
    (List.length State.bdir_domain)

let test_pv_ops () =
  let module S = State in
  Alcotest.(check (option string)) "inc zero" (Some "one") (S.apply_pv_op "inc" "zero");
  Alcotest.(check (option string)) "inc one" (Some "gone") (S.apply_pv_op "inc" "one");
  Alcotest.(check (option string)) "dec one" (Some "zero") (S.apply_pv_op "dec" "one");
  Alcotest.(check (option string)) "dec gone stays abstract" (Some "gone")
    (S.apply_pv_op "dec" "gone");
  Alcotest.(check (option string)) "dec zero illegal" None (S.apply_pv_op "dec" "zero");
  Alcotest.(check (option string)) "repl" (Some "one") (S.apply_pv_op "repl" "gone")

let test_placements () =
  check_int "five placements" 5 (List.length Topology.all_placements);
  check "same quad reflexive" true
    (List.for_all
       (fun p ->
         List.for_all
           (fun c -> Topology.same_quad p c c)
           Topology.all_node_classes)
       Topology.all_placements);
  check "L<>H=R merges home/remote" true
    (Topology.same_quad Topology.Hr_same Topology.Home Topology.Remote);
  check "L<>H=R separates local" false
    (Topology.same_quad Topology.Hr_same Topology.Local Topology.Home);
  check_str "canon rewrites remote to home under L<>H=R" "home"
    (Topology.canon_string Topology.Hr_same "remote");
  check_str "canon under all-distinct is identity" "remote"
    (Topology.canon_string Topology.All_distinct "remote");
  check_str "non-role strings pass through" "VC2"
    (Topology.canon_string Topology.All_same "VC2")

let test_placement_canon_consistent () =
  (* canon agrees with same_quad: same canon iff same quad *)
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              check "canon iff same_quad" true
                (Topology.same_quad p a b
                = (Topology.canon p a = Topology.canon p b)))
            Topology.all_node_classes)
        Topology.all_node_classes)
    Topology.all_placements

let test_concrete_placement () =
  let sys = Topology.default_system in
  check_int "64-ish processors: 16 nodes" 16 (Topology.node_count sys);
  check "classify same quad" true
    (Topology.placement_of sys ~local:0 ~home:1 ~remote:2 = Topology.All_same);
  check "classify H=R" true
    (Topology.placement_of sys ~local:0 ~home:5 ~remote:6 = Topology.Hr_same);
  check "classify distinct" true
    (Topology.placement_of sys ~local:0 ~home:5 ~remote:10
    = Topology.All_distinct)

let test_eight_controllers () =
  check_int "eight controller tables" 8 (List.length Protocol.controllers);
  let names = List.map (fun c -> Ctrl_spec.name c.Protocol.spec) Protocol.controllers in
  Alcotest.(check (list string)) "names"
    [ "D"; "M"; "C"; "N"; "RAC"; "IO"; "PIF"; "LK" ] names;
  check "link excluded from deadlock analysis" true
    (not (List.exists (fun c -> Ctrl_spec.name c.Protocol.spec = "LK")
            Protocol.deadlock_controllers))

let test_directory_table_shape () =
  let d = Dir_controller.table () in
  check_int "31 columns" 31 (Relalg.Table.arity d);
  check "hundreds of rows" true (Relalg.Table.cardinality d > 500);
  check "row count stable across calls" true
    (Relalg.Table.cardinality d = Relalg.Table.cardinality (Dir_controller.table ()))

let test_figure3 () =
  let fig = Dir_controller.figure3 () in
  let cell row col = Relalg.Table.cell fig row col in
  let rows = Relalg.Table.rows fig in
  (* the paper's opening row: readex against SI sends sinv and mread *)
  let si_row =
    List.find
      (fun r ->
        Relalg.Value.equal (cell r "inmsg") (Relalg.Value.str "readex")
        && Relalg.Value.equal (cell r "dirst") (Relalg.Value.str "SI")
        && Relalg.Value.equal (cell r "dirpv") (Relalg.Value.str "one"))
      rows
  in
  check_str "snoop" "sinv" (Relalg.Value.to_string (cell si_row "remmsg"));
  check_str "memory read" "mread" (Relalg.Value.to_string (cell si_row "memmsg"));
  (* the Busy-sd interleavings from Figure 2 *)
  check "busy-sd to busy-d on last idone" true
    (List.exists
       (fun r ->
         Relalg.Value.equal (cell r "inmsg") (Relalg.Value.str "idone")
         && Relalg.Value.equal (cell r "dirst") (Relalg.Value.str "Busy-readex-sd")
         && Relalg.Value.equal (cell r "nxtdirst") (Relalg.Value.str "Busy-readex-d"))
       rows);
  check "busy-sd to busy-s on data" true
    (List.exists
       (fun r ->
         Relalg.Value.equal (cell r "inmsg") (Relalg.Value.str "mdata")
         && Relalg.Value.equal (cell r "dirst") (Relalg.Value.str "Busy-readex-sd")
         && Relalg.Value.equal (cell r "nxtdirst") (Relalg.Value.str "Busy-readex-s"))
       rows)

let test_generation_strategies_agree_on_m () =
  (* full incremental/monolithic agreement on a real (small) controller *)
  let spec = Ctrl_spec.to_solver_spec Mem_controller.spec in
  let a, _ = Relalg.Solver.generate spec in
  let b, _ = Relalg.Solver.generate_monolithic spec in
  check "M generated identically" true (Relalg.Table.equal_as_sets a b)

let test_ctrl_spec_validation () =
  let bad_scenario = { Ctrl_spec.label = "x"; when_ = [ "nosuch", Ctrl_spec.V "v" ]; emit = [] } in
  check "unknown column rejected" true
    (try
       ignore (Ctrl_spec.with_scenarios Mem_controller.spec [ bad_scenario ]);
       false
     with Ctrl_spec.Invalid_controller _ -> true);
  let bad_value =
    { Ctrl_spec.label = "x"; when_ = [ "inmsg", Ctrl_spec.V "nosuchmsg" ]; emit = [] }
  in
  check "out-of-domain value rejected" true
    (try
       ignore (Ctrl_spec.with_scenarios Mem_controller.spec [ bad_value ]);
       false
     with Ctrl_spec.Invalid_controller _ -> true)

let test_constraint_rendering () =
  let listing = Ctrl_spec.constraints_listing Mem_controller.spec in
  check "lists each column" true
    (List.for_all
       (fun c ->
         let re = c ^ ":" in
         let rec contains i =
           i + String.length re <= String.length listing
           && (String.sub listing i (String.length re) = re || contains (i + 1))
         in
         contains 0)
       (Ctrl_spec.input_columns Mem_controller.spec))

let test_scenario_editing () =
  let spec' = Ctrl_spec.drop_scenario Mem_controller.spec "mread-ok" in
  check_int "one fewer scenario"
    (List.length (Ctrl_spec.scenarios Mem_controller.spec) - 1)
    (List.length (Ctrl_spec.scenarios spec'));
  let tbl, _ = Ctrl_spec.generate spec' in
  check "dropped scenario removes rows" true
    (Relalg.Table.cardinality tbl
    < Relalg.Table.cardinality (Mem_controller.table ()))

let suite =
  [
    Alcotest.test_case "message inventory" `Quick test_message_inventory;
    Alcotest.test_case "request/response classification" `Quick test_message_classification;
    Alcotest.test_case "message directions" `Quick test_message_directions;
    Alcotest.test_case "state encodings" `Quick test_states;
    Alcotest.test_case "presence-vector ops" `Quick test_pv_ops;
    Alcotest.test_case "quad placements" `Quick test_placements;
    Alcotest.test_case "canon vs same_quad" `Quick test_placement_canon_consistent;
    Alcotest.test_case "concrete placements" `Quick test_concrete_placement;
    Alcotest.test_case "eight controllers" `Quick test_eight_controllers;
    Alcotest.test_case "directory table shape" `Quick test_directory_table_shape;
    Alcotest.test_case "figure 3 rows" `Quick test_figure3;
    Alcotest.test_case "strategies agree on M" `Quick test_generation_strategies_agree_on_m;
    Alcotest.test_case "spec validation" `Quick test_ctrl_spec_validation;
    Alcotest.test_case "constraint rendering" `Quick test_constraint_rendering;
    Alcotest.test_case "scenario editing" `Quick test_scenario_editing;
  ]
