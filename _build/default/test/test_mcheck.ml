(* The explicit-state model-checker baseline, driven by the generated
   controller tables. *)

open Mcheck

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let tables = lazy (Semantics.load_tables ())

let config ?(nodes = 2) ?(addrs = 1) ?(capacity = 3) ?(io_addrs = []) ops =
  { Semantics.nodes; addrs; ops; capacity; io_addrs; lossy = false }

let run ?(max_states = 120_000) cfg =
  Explore.run ~max_states ~tables:(Lazy.force tables) cfg

let test_state_basics () =
  let st = Mstate.initial ~nodes:2 ~addrs:1 in
  check "initially quiescent" true (Mstate.quiescent st);
  check_int "no messages" 0 (List.length (Mstate.queue_heads st));
  let msg = { Mstate.m = "read"; src = 0; dst = Mstate.dir; addr = 0; fresh = true } in
  let st = Mstate.enqueue st ~cls:"reqq" msg in
  check "not quiescent with traffic" false (Mstate.quiescent st);
  (match Mstate.dequeue st (0, Mstate.dir, "reqq") with
  | Some (m, st') ->
      check "fifo returns the message" true (m.Mstate.m = "read");
      check "dequeue empties" true (Mstate.quiescent st')
  | None -> Alcotest.fail "dequeue failed");
  check "keys are canonical" true (Mstate.key st = Mstate.key st)

let test_fifo_order () =
  let st = Mstate.initial ~nodes:1 ~addrs:1 in
  let m name = { Mstate.m = name; src = 0; dst = Mstate.dir; addr = 0; fresh = true } in
  let st = Mstate.enqueue (Mstate.enqueue st ~cls:"reqq" (m "first")) ~cls:"reqq" (m "second") in
  match Mstate.dequeue st (0, Mstate.dir, "reqq") with
  | Some (x, st') ->
      check "fifo head" true (x.Mstate.m = "first");
      check "fifo second" true
        (match Mstate.dequeue st' (0, Mstate.dir, "reqq") with
        | Some (y, _) -> y.Mstate.m = "second"
        | None -> false)
  | None -> Alcotest.fail "dequeue failed"

let test_pv_encode () =
  Alcotest.(check string) "zero" "zero" (Mstate.pv_encode 0);
  Alcotest.(check string) "one" "one" (Mstate.pv_encode 0b100);
  Alcotest.(check string) "gone" "gone" (Mstate.pv_encode 0b101);
  check_int "popcount" 3 (Mstate.popcount 0b1011)

let test_single_transaction () =
  (* one load: issue, mread, mdata, data, ack; quiescent with S line *)
  let cfg = config ~nodes:1 [ "load" ] in
  let r = run cfg in
  check "complete" true r.Explore.complete;
  check "no violations" true (r.Explore.violation = None);
  check "non-trivial state count" true (r.Explore.explored > 5)

let test_load_store_clean () =
  let r = run (config [ "load"; "store" ]) in
  check "complete" true r.Explore.complete;
  check "no violations" true (r.Explore.violation = None)

let test_full_workload_clean () =
  let r = run (config [ "load"; "store"; "evictmod"; "evictsh" ]) in
  check "complete" true r.Explore.complete;
  check "no violations" true (r.Explore.violation = None)

let test_state_explosion_with_nodes () =
  (* the paper's argument against model checkers: growth in node count *)
  let states n =
    (run ~max_states:60_000 (config ~nodes:n [ "load"; "store" ])).Explore.explored
  in
  let s2 = states 2 and s3 = states 3 in
  check "3 nodes blow up vs 2 nodes" true (s3 > 3 * s2)

let test_seeded_hang_found () =
  (* drop the last-idone row: Busy-readex-sd never drains; the checker
     must report the wedge with a concrete trace *)
  let spec' =
    Protocol.Ctrl_spec.drop_scenario Protocol.Dir_controller.spec
      "readex-idone-sd-last"
  in
  let tables' = Semantics.load_tables_with ~dir:spec' () in
  let r =
    Explore.run ~max_states:200_000 ~tables:tables'
      (config ~nodes:3 [ "load"; "store" ])
  in
  match r.Explore.violation with
  | Some v ->
      check "found a problem" true
        (v.Explore.kind = `Deadlock || v.Explore.kind = `Unhandled);
      check "has a trace" true (v.Explore.trace <> [])
  | None -> Alcotest.fail "seeded hang not found"

let test_seeded_stale_data_found () =
  (* drop the sharing writeback: a read after a dirty downgrade and a
     silent eviction returns stale memory *)
  let spec' =
    Protocol.Ctrl_spec.map_scenario Protocol.Dir_controller.spec
      "read-sdata-grant"
      (fun s ->
        { s with emit = List.filter (fun (c, _) -> c <> "memmsg") s.emit })
  in
  let tables' = Semantics.load_tables_with ~dir:spec' () in
  let r =
    Explore.run ~max_states:300_000 ~tables:tables'
      (config [ "load"; "store"; "evictmod"; "evictsh" ])
  in
  match r.Explore.violation with
  | Some v -> check "stale data detected" true (v.Explore.kind = `Stale_data)
  | None -> Alcotest.fail "stale data not found"

let test_io_workload_clean () =
  (* one I/O line served by the device-bus controller: ioread/iowrite
     serialize through the busy directory like everything else *)
  let cfg = config ~nodes:2 ~io_addrs:[ 0 ] [ "ioload"; "iostore" ] in
  let r = run cfg in
  check "complete" true r.Explore.complete;
  check "no violations" true (r.Explore.violation = None);
  check "explored io interleavings" true (r.Explore.explored > 20)

let test_mixed_spaces_clean () =
  (* a memory line and an I/O line side by side *)
  let cfg =
    config ~nodes:2 ~addrs:2 ~io_addrs:[ 1 ]
      [ "load"; "store"; "ioload"; "iostore" ]
  in
  let r = run ~max_states:200_000 cfg in
  check "no violations" true (r.Explore.violation = None)

let test_lock_workload_clean () =
  (* lock/unlock ride the directory like tiny transactions: contention
     resolves through retry, no coherence machinery is touched *)
  let cfg = config ~nodes:2 [ "lockacq"; "lockrel" ] in
  let r = run cfg in
  check "complete" true r.Explore.complete;
  check "no violations" true (r.Explore.violation = None)

let test_symmetry_reduction () =
  (* the canonical key must respect permutation orbits... *)
  let st = Mcheck.Mstate.initial ~nodes:3 ~addrs:1 in
  let st_a = Mcheck.Mstate.set_cache st ~node:0 ~addr:0 "S" in
  let st_b = Mcheck.Mstate.set_cache st ~node:2 ~addr:0 "S" in
  check "permuted states share a canonical key" true
    (Mcheck.Mstate.canonical_key ~nodes:3 st_a
    = Mcheck.Mstate.canonical_key ~nodes:3 st_b);
  check "distinct states keep distinct keys" false
    (Mcheck.Mstate.canonical_key ~nodes:3 st_a
    = Mcheck.Mstate.canonical_key ~nodes:3 st);
  (* ... and the reduced search gives the same verdict on fewer states *)
  let cfg = config ~nodes:3 [ "load"; "store" ] in
  let plain = run ~max_states:200_000 cfg in
  let reduced =
    Explore.run ~max_states:200_000 ~symmetry:true ~tables:(Lazy.force tables) cfg
  in
  check "same verdict" true
    (plain.Explore.violation = None && reduced.Explore.violation = None);
  check "both complete" true (plain.Explore.complete && reduced.Explore.complete);
  check "at least 3x fewer states" true
    (3 * reduced.Explore.explored < plain.Explore.explored)

let test_symmetry_still_finds_bugs () =
  let spec' =
    Protocol.Ctrl_spec.map_scenario Protocol.Dir_controller.spec
      "read-sdata-grant"
      (fun s ->
        { s with emit = List.filter (fun (c, _) -> c <> "memmsg") s.emit })
  in
  let tables' = Semantics.load_tables_with ~dir:spec' () in
  let r =
    Explore.run ~max_states:300_000 ~symmetry:true ~tables:tables'
      (config [ "load"; "store"; "evictmod"; "evictsh" ])
  in
  check "stale data still found under symmetry" true
    (match r.Explore.violation with
    | Some v -> v.Explore.kind = `Stale_data
    | None -> false)

let test_lossy_links_found () =
  (* with faulty links the protocol has no recovery: the checker finds a
     wedge (the paper's protocol likewise assumes reliable channels) *)
  let cfg =
    { (config [ "load"; "store" ]) with Semantics.lossy = true }
  in
  let r = run ~max_states:150_000 cfg in
  (match r.Explore.violation with
  | Some v ->
      check "wedge or orphan found" true
        (v.Explore.kind = `Deadlock || v.Explore.kind = `Coherence);
      check "a DROP appears in the trace" true
        (List.exists
           (fun l -> String.length l >= 4 && String.sub l 0 4 = "DROP")
           v.Explore.trace)
  | None -> Alcotest.fail "loss tolerated?");
  (* the orphaned-transaction invariant stays silent without loss *)
  let clean = run (config [ "load"; "store" ]) in
  check "loss-free run clean under the orphan invariant" true
    (clean.Explore.violation = None)

let test_bounded_search_reports_incomplete () =
  let r = run ~max_states:50 (config ~nodes:3 [ "load"; "store" ]) in
  check "bounded" false r.Explore.complete;
  check_int "respected the bound" 50 r.Explore.explored

let suite =
  [
    Alcotest.test_case "state basics" `Quick test_state_basics;
    Alcotest.test_case "fifo ordering" `Quick test_fifo_order;
    Alcotest.test_case "pv encoding" `Quick test_pv_encode;
    Alcotest.test_case "single transaction" `Quick test_single_transaction;
    Alcotest.test_case "load/store exhaustive" `Slow test_load_store_clean;
    Alcotest.test_case "full workload exhaustive" `Slow test_full_workload_clean;
    Alcotest.test_case "state explosion with node count" `Slow test_state_explosion_with_nodes;
    Alcotest.test_case "seeded hang found with trace" `Slow test_seeded_hang_found;
    Alcotest.test_case "seeded stale data found" `Slow test_seeded_stale_data_found;
    Alcotest.test_case "io workload exhaustive" `Slow test_io_workload_clean;
    Alcotest.test_case "mixed address spaces" `Slow test_mixed_spaces_clean;
    Alcotest.test_case "lock workload exhaustive" `Slow test_lock_workload_clean;
    Alcotest.test_case "lossy links produce wedges" `Quick test_lossy_links_found;
    Alcotest.test_case "symmetry reduction" `Slow test_symmetry_reduction;
    Alcotest.test_case "symmetry preserves bug finding" `Slow test_symmetry_still_finds_bugs;
    Alcotest.test_case "bounded search reports incomplete" `Quick test_bounded_search_reports_incomplete;
  ]
