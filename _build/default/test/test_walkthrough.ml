(* Executed transaction walkthroughs for the design document. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let walkthroughs = lazy (Sim.Walkthrough.all ())

let find name =
  List.find (fun (w : Sim.Walkthrough.t) -> w.name = name) (Lazy.force walkthroughs)

let test_all_complete () =
  check_int "seven representative transactions" 7
    (List.length (Lazy.force walkthroughs));
  List.iter
    (fun (w : Sim.Walkthrough.t) ->
      check (w.name ^ " produced a trace") true (w.trace <> []);
      check (w.name ^ " produced a chart") true (String.length w.chart > 0))
    (Lazy.force walkthroughs)

let test_transaction_content () =
  check "read miss fetches memory" true
    (contains (find "read miss").chart "mread");
  check "store miss invalidates" true
    (contains (find "store miss with invalidations").chart "sinv");
  check "upgrade moves no data" false
    (contains (find "ownership upgrade").chart "mread");
  check "writeback reaches memory" true
    (contains (find "writeback").chart "mwrite");
  check "dirty read uses the sharing writeback" true
    (contains (find "read from a dirty owner").chart "mupdate");
  check "io served by the device bus" true
    (contains (find "uncached I/O read").chart "mioread");
  check "lock grant" true (contains (find "lock handoff").chart "lockgrant")

let test_markdown () =
  let md = Sim.Walkthrough.to_markdown (Lazy.force walkthroughs) in
  check "has section headers" true (contains md "### read miss");
  check "charts fenced" true (contains md "```")

let suite =
  [
    Alcotest.test_case "all transactions complete" `Quick test_all_complete;
    Alcotest.test_case "transaction content" `Quick test_transaction_content;
    Alcotest.test_case "markdown rendering" `Quick test_markdown;
  ]
