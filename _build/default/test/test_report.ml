(* The design-review report, the fixpoint composition (paper footnote 2),
   and SQL conveniences over the protocol database. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_report_sections () =
  let r = Checker.Deadlock.analyze Checker.Vcassign.with_vc4 in
  let s = Checker.Report.deadlock_section r in
  check "names the assignment" true (contains s "V-vc4");
  check "lists cycles" true (contains s "VC2 -> VC4");
  let clean = Checker.Report.deadlock_section (Checker.Deadlock.analyze Checker.Vcassign.debugged) in
  check "clean verdict" true (contains clean "deadlock free")

let test_invariant_section () =
  let results = Checker.Invariant.run_all (Protocol.database ()) in
  let s = Checker.Report.invariant_section results in
  check "mentions the paper invariant" true (contains s "d-mesi-pv-one");
  check "no failures section" false (contains s "**FAIL**")

let test_full_report () =
  let s = Checker.Report.generate () in
  check "has controller table section" true (contains s "## Controller tables");
  check "has assignment" true (contains s "V-debugged");
  check "has invariants" true (contains s "## Protocol invariants");
  check "is substantial" true (String.length s > 2000)

(* --- the paper's footnote 2: fixpoint composition adds no cycles ----- *)

let test_fixpoint_footnote () =
  let base = Checker.Deadlock.analyze Checker.Vcassign.with_vc4 in
  let fixed = Checker.Deadlock.analyze ~fixpoint:true Checker.Vcassign.with_vc4 in
  (* the closure can only add dependencies ... *)
  check "fixpoint adds (or keeps) dependencies" true
    (List.length fixed.Checker.Deadlock.entries
    >= List.length base.Checker.Deadlock.entries);
  (* ... but, as the paper observed, no new channel edges or cycles *)
  check_int "same number of channel edges"
    (Vcgraph.Digraph.num_edges base.Checker.Deadlock.vcg)
    (Vcgraph.Digraph.num_edges fixed.Checker.Deadlock.vcg);
  check_int "same number of cycles"
    (List.length base.Checker.Deadlock.cycles)
    (List.length fixed.Checker.Deadlock.cycles)

let test_fixpoint_on_debugged () =
  let fixed = Checker.Deadlock.analyze ~fixpoint:true Checker.Vcassign.debugged in
  check "still deadlock free at the fixpoint" true
    (Checker.Deadlock.is_deadlock_free fixed)

(* --- SQL conveniences over the real protocol database ---------------- *)

let test_count_over_protocol () =
  let db = Protocol.database () in
  let t = Relalg.Sql_exec.query db "SELECT COUNT(*) FROM D WHERE locmsg = 'retry'" in
  match (List.hd (Relalg.Table.rows t)).(0) with
  | Relalg.Value.Int n -> check "many retry rows" true (n > 500)
  | _ -> Alcotest.fail "expected an integer count"

let test_planner_over_protocol () =
  let db = Protocol.database () in
  let q =
    "SELECT inmsg, locmsg FROM D WHERE bdirlookup = 'hit' AND isrequest(inmsg) \
     AND NOT locmsg = NULL"
  in
  check "planner agrees with executor on D" true
    (Relalg.Table.equal_as_sets (Relalg.Plan.run db q)
       (Relalg.Sql_exec.query db q))

let suite =
  [
    Alcotest.test_case "deadlock section" `Quick test_report_sections;
    Alcotest.test_case "invariant section" `Quick test_invariant_section;
    Alcotest.test_case "full report" `Slow test_full_report;
    Alcotest.test_case "fixpoint footnote (paper fn. 2)" `Slow test_fixpoint_footnote;
    Alcotest.test_case "fixpoint on debugged assignment" `Slow test_fixpoint_on_debugged;
    Alcotest.test_case "count over the protocol db" `Quick test_count_over_protocol;
    Alcotest.test_case "planner over the protocol db" `Quick test_planner_over_protocol;
  ]
