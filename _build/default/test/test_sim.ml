(* The queue-accurate simulator and the Figure 4 replay. *)

open Sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_channel_mapping () =
  let v = Checker.Vcassign.with_vc4 in
  let ch cls src dst name = Channel.of_message ~v ~cls ~src ~dst name in
  check "request on VC0" true
    (ch "reqq" 0 Mcheck.Mstate.dir "readex" = Channel.Vc "VC0");
  check "snoop on VC1" true
    (ch "snp" Mcheck.Mstate.dir 1 "sinv" = Channel.Vc "VC1");
  check "snoop response on VC2" true
    (ch "respq" 1 Mcheck.Mstate.dir "idone" = Channel.Vc "VC2");
  check "grant on VC3" true
    (ch "resp" Mcheck.Mstate.dir 0 "datax" = Channel.Vc "VC3");
  check "memory request on VC4" true
    (ch "memq" Mcheck.Mstate.dir Mcheck.Mstate.mem "mread" = Channel.Vc "VC4");
  check "memory response on VC2" true
    (ch "respq" Mcheck.Mstate.mem Mcheck.Mstate.dir "mack" = Channel.Vc "VC2");
  check "completion acks are dedicated" true
    (ch "ackq" 0 Mcheck.Mstate.dir "compl" = Channel.Dedicated "ack");
  check "mread dedicated after the fix" true
    (Channel.of_message ~v:Checker.Vcassign.debugged ~cls:"memq"
       ~src:Mcheck.Mstate.dir ~dst:Mcheck.Mstate.mem "mread"
    = Channel.Dedicated "mread");
  check "dedicated never blocks" false
    (Channel.is_blocking (Channel.Dedicated "mread"))

let test_occupancy () =
  let v = Checker.Vcassign.with_vc4 in
  let st = Mcheck.Mstate.initial ~nodes:2 ~addrs:1 in
  let st =
    Mcheck.Mstate.enqueue st ~cls:"reqq"
      { Mcheck.Mstate.m = "readex"; src = 0; dst = Mcheck.Mstate.dir; addr = 0; fresh = true }
  in
  let st =
    Mcheck.Mstate.enqueue st ~cls:"reqq"
      { Mcheck.Mstate.m = "wb"; src = 1; dst = Mcheck.Mstate.dir; addr = 0; fresh = true }
  in
  Alcotest.(check (list (pair string int))) "two requests on VC0"
    [ "VC0", 2 ] (Channel.occupancy ~v st);
  Alcotest.(check (list string)) "over capacity 1" [ "VC0" ]
    (Channel.over_capacity ~v ~capacity:(fun _ -> 1) st);
  Alcotest.(check (list string)) "within capacity 2" []
    (Channel.over_capacity ~v ~capacity:(fun _ -> 2) st)

let test_readex_walkthrough () =
  let result, trace = Scenario.readex_walkthrough Checker.Vcassign.debugged in
  (match result with
  | Runner.Quiescent _ -> ()
  | Runner.Deadlock _ -> Alcotest.fail "walkthrough wedged");
  (* the Figure 2 message sequence appears in order *)
  let find needle =
    let rec go i = function
      | [] -> None
      | l :: rest ->
          if
            String.length l >= String.length needle
            && String.sub l 0 (String.length needle) = needle
          then Some i
          else go (i + 1) rest
    in
    go 0 trace
  in
  let pos s = Option.get (find s) in
  check "readex before sinv" true (pos "deliver readex" < pos "deliver sinv");
  check "sinv before idone" true (pos "deliver sinv" < pos "deliver idone");
  check "idone before datax" true (pos "deliver idone" < pos "deliver datax");
  check "two sharers invalidated" true
    (List.length (List.filter (fun l -> find "deliver idone" <> None && String.length l > 13 && String.sub l 0 13 = "deliver idone") trace) = 2)

let test_contention_serializes () =
  let result, trace = Scenario.contention Checker.Vcassign.debugged in
  (match result with
  | Runner.Quiescent _ -> ()
  | Runner.Deadlock _ -> Alcotest.fail "contention wedged");
  check "a retry was issued" true
    (List.exists
       (fun l -> String.length l >= 13 && String.sub l 0 13 = "deliver retry")
       trace)

let test_figure4_deadlock () =
  match fst (Scenario.figure4 Checker.Vcassign.with_vc4) with
  | Runner.Deadlock { occupancy; blocked; _ } ->
      check "VC2 occupied" true (List.mem_assoc "VC2" occupancy);
      check "VC4 occupied" true (List.mem_assoc "VC4" occupancy);
      check_int "both parties blocked" 2 (List.length blocked)
  | Runner.Quiescent _ -> Alcotest.fail "expected the Figure 4 deadlock"

let test_figure4_fix_drains () =
  match fst (Scenario.figure4 Checker.Vcassign.debugged) with
  | Runner.Quiescent { steps } -> check "made progress" true (steps > 10)
  | Runner.Deadlock _ -> Alcotest.fail "debugged assignment wedged"

let test_figure4_blocked_parties () =
  (* the wedge is exactly the paper's circular wait: the directory stuck
     on a memory response, memory stuck on a directory-bound writeback *)
  match fst (Scenario.figure4 Checker.Vcassign.with_vc4) with
  | Runner.Deadlock { blocked; _ } ->
      let mentions needle =
        List.exists
          (fun l ->
            String.length l >= String.length needle
            && String.sub l 0 (String.length needle) = needle)
          blocked
      in
      check "directory blocked on mack" true (mentions "mack");
      check "memory blocked on mwrite" true (mentions "mwrite")
  | Runner.Quiescent _ -> Alcotest.fail "expected the Figure 4 deadlock"

let test_stress_many_seeds () =
  (* every seed must drain under the debugged assignment *)
  List.iter
    (fun seed ->
      match Sim.Scenario.stress ~seed ~rounds:150 Checker.Vcassign.debugged with
      | Runner.Quiescent _, issued ->
          check (Printf.sprintf "seed %d issued work" seed) true (issued > 0)
      | Runner.Deadlock _, _ ->
          Alcotest.fail (Printf.sprintf "seed %d wedged" seed))
    [ 1; 7; 42; 1337; 99991 ]

(* --------------- the implementation-level feedback path ------------- *)

let drive_without_drains t =
  (* push every in-flight message through the gated directory without
     ever retiring updates: the second directory write must defer *)
  let rec go t =
    match Mcheck.Mstate.queue_heads t.Impl_runner.base with
    | [] -> t
    | ((src, dst, cls), msg) :: _ ->
        let base =
          match Mcheck.Mstate.dequeue t.Impl_runner.base (src, dst, cls) with
          | Some (_, b) -> b
          | None -> assert false
        in
        go (Impl_runner.deliver { t with Impl_runner.base } ~cls ~dst msg)
  in
  go t

let test_feedback_defers_and_replays () =
  let tables = Mcheck.Semantics.load_tables () in
  let st = Mcheck.Mstate.initial ~nodes:2 ~addrs:2 in
  let issue st node addr =
    Option.get (Mcheck.Semantics.issue_op tables st ~node ~addr ~op:"load")
  in
  let st = issue (issue st 0 0) 1 1 in
  let t = drive_without_drains (Impl_runner.make ~upd_capacity:1 st) in
  check "one completion deferred through dfdback" true
    (t.Impl_runner.deferred >= 1);
  check "feedback queue holds the deferral" true (t.Impl_runner.feedback <> []);
  (* retire updates and replay: the system must converge *)
  let rec settle n t =
    if n > 100 then Alcotest.fail "feedback never drained"
    else if
      Mcheck.Mstate.quiescent t.Impl_runner.base
      && t.Impl_runner.feedback = []
    then t
    else
      settle (n + 1)
        (Impl_runner.replay_feedback (Impl_runner.drain_update t))
  in
  let t = settle 0 t in
  (* final architectural state must equal the unconstrained run *)
  let unconstrained =
    let rec go st =
      match Mcheck.Mstate.queue_heads st with
      | [] -> st
      | ((src, dst, cls), msg) :: _ -> (
          match Mcheck.Mstate.dequeue st (src, dst, cls) with
          | Some (_, st') -> (
              match Mcheck.Semantics.deliver tables st' ~cls ~dst msg with
              | Mcheck.Semantics.Next st'' -> go st''
              | Broken r -> Alcotest.fail r)
          | None -> assert false)
    in
    go (issue (issue (Mcheck.Mstate.initial ~nodes:2 ~addrs:2) 0 0) 1 1)
  in
  check "same final state as the unconstrained run" true
    (Mcheck.Mstate.key t.Impl_runner.base = Mcheck.Mstate.key unconstrained)

let test_feedback_run_to_completion () =
  let tables = Mcheck.Semantics.load_tables () in
  let st = Mcheck.Mstate.initial ~nodes:2 ~addrs:2 in
  let st =
    Option.get (Mcheck.Semantics.issue_op tables st ~node:0 ~addr:0 ~op:"store")
  in
  let st =
    Option.get (Mcheck.Semantics.issue_op tables st ~node:1 ~addr:1 ~op:"store")
  in
  let t = Impl_runner.run_to_completion (Impl_runner.make ~upd_capacity:1 st) in
  check "quiescent" true (Mcheck.Mstate.quiescent t.Impl_runner.base);
  check "stats render" true (String.length (Impl_runner.stats t) > 0)

let test_script_errors () =
  let config =
    { Runner.v = Checker.Vcassign.debugged;
      capacity = Runner.uniform_capacity 4; nodes = 1; addrs = 1;
      io_addrs = [] }
  in
  let st = Mcheck.Mstate.initial ~nodes:1 ~addrs:1 in
  check "delivering from an empty queue fails" true
    (try
       ignore
         (Runner.run
            ~script:[ Runner.Deliver { src = 0; dst = Mcheck.Mstate.dir; cls = "reqq" } ]
            config st);
       false
     with Runner.Script_error _ -> true)

let suite =
  [
    Alcotest.test_case "channel mapping" `Quick test_channel_mapping;
    Alcotest.test_case "occupancy accounting" `Quick test_occupancy;
    Alcotest.test_case "figure 2 walkthrough" `Quick test_readex_walkthrough;
    Alcotest.test_case "contention serializes" `Quick test_contention_serializes;
    Alcotest.test_case "figure 4 deadlock replayed" `Quick test_figure4_deadlock;
    Alcotest.test_case "figure 4 fix drains" `Quick test_figure4_fix_drains;
    Alcotest.test_case "figure 4 blocked parties" `Quick test_figure4_blocked_parties;
    Alcotest.test_case "randomized stress drains" `Slow test_stress_many_seeds;
    Alcotest.test_case "feedback path defers and replays" `Quick test_feedback_defers_and_replays;
    Alcotest.test_case "gated run to completion" `Quick test_feedback_run_to_completion;
    Alcotest.test_case "script errors" `Quick test_script_errors;
  ]
