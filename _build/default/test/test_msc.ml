(* Message-sequence-chart rendering. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_parse () =
  let events =
    Sim.Msc.parse_trace
      [
        "issue store node0 addr0";
        "deliver readex 0->-1 (reqq)";
        "deliver mread -1->-2 (memq)";
        "deliver datax -1->0 (resp) addr0";
        "reissue node1 addr0";
        "garbage line";
      ]
  in
  check_int "parsed events" 5 (List.length events);
  (match List.nth events 1 with
  | Sim.Msc.Message { msg = "readex"; src = Sim.Msc.Node 0; dst = Sim.Msc.Directory; cls = "reqq" } -> ()
  | _ -> Alcotest.fail "readex delivery misparsed");
  match List.nth events 2 with
  | Sim.Msc.Message { src = Sim.Msc.Directory; dst = Sim.Msc.Memory; _ } -> ()
  | _ -> Alcotest.fail "negative endpoints misparsed"

let test_participants_order () =
  let events =
    Sim.Msc.parse_trace
      [ "deliver mread -1->-2 (memq)"; "deliver readex 2->-1 (reqq)";
        "deliver data -1->0 (resp)" ]
  in
  Alcotest.(check (list string)) "nodes, then dir, then mem"
    [ "node0"; "node2"; "dir"; "mem" ]
    (List.map Sim.Msc.participant_label (Sim.Msc.participants events))

let test_figure2_chart () =
  let _, trace = Sim.Scenario.readex_walkthrough Checker.Vcassign.debugged in
  let chart = Sim.Msc.render_run trace in
  check "shows the request" true (contains chart "readex");
  check "shows the invalidations" true (contains chart "sinv");
  check "shows the grant" true (contains chart "datax");
  check "shows the completion ack" true (contains chart "compl (ackq)");
  check "has lifelines" true (contains chart "|");
  (* readex appears before sinv, which appears before datax *)
  let pos needle =
    let rec go i =
      if i + String.length needle > String.length chart then -1
      else if String.sub chart i (String.length needle) = needle then i
      else go (i + 1)
    in
    go 0
  in
  check "causal order" true (pos "readex" < pos "sinv" && pos "sinv" < pos "datax")

let test_latex_form () =
  let _, trace = Sim.Scenario.figure4 Checker.Vcassign.with_vc4 in
  let tex = Sim.Msc.to_latex ~title:"figure4" (Sim.Msc.parse_trace trace) in
  check "picture environment" true (contains tex "\\begin{picture}");
  check "vectors for messages" true (contains tex "\\vector");
  check "balanced end" true (contains tex "\\end{picture}")

let test_empty_trace () =
  check "empty trace renders" true
    (String.length (Sim.Msc.render_run [ "nonsense" ]) > 0)

let suite =
  [
    Alcotest.test_case "trace parsing" `Quick test_parse;
    Alcotest.test_case "participant ordering" `Quick test_participants_order;
    Alcotest.test_case "figure 2 chart" `Quick test_figure2_chart;
    Alcotest.test_case "latex form" `Quick test_latex_form;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
  ]
