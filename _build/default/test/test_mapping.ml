(* Mapping the debugged table to an implementation — the paper's
   section 5. *)

open Mapping
open Relalg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ed = lazy (Extend.ed ())
let impl_db = lazy (Partition.run ())

let str_cell t row col = Value.to_string (Table.cell t row col)

let test_ed_shape () =
  let ed = Lazy.force ed in
  check_int "34 columns (D's 31 plus qstatus, dqstatus, fdctx, fdback)" 35
    (Table.arity ed);
  check "more rows than D" true
    (Table.cardinality ed > Table.cardinality (Protocol.Dir_controller.table ()))

let test_ed_blocked_requests_retry () =
  let ed = Lazy.force ed in
  let blocked = Ops.select (Expr.eq "qstatus" "Full") ed in
  check "blocked variants exist" true (not (Table.is_empty blocked));
  check "every blocked request retries or feeds back" true
    (List.for_all
       (fun row ->
         str_cell blocked row "locmsg" = "retry"
         || str_cell blocked row "fdback" = "dfdback")
       (Table.rows blocked));
  check "blocked requests change no state" true
    (List.for_all
       (fun row ->
         str_cell blocked row "bdirop" = "-" && str_cell blocked row "dirwr" = "-")
       (Table.rows blocked))

let test_ed_feedback_on_full_update_queue () =
  let ed = Lazy.force ed in
  let deferred =
    Ops.select Expr.(eq "dqstatus" "Full" &&& eq_null "qstatus") ed
  in
  check "deferred variants exist" true (not (Table.is_empty deferred));
  check "deferrals only feed back" true
    (List.for_all
       (fun row ->
         str_cell deferred row "fdback" = "dfdback"
         && str_cell deferred row "locmsg" = "-"
         && str_cell deferred row "dirwr" = "-")
       (Table.rows deferred))

let test_ed_dfdback_rows () =
  let ed = Lazy.force ed in
  let replays = Ops.select (Expr.eq "inmsg" "dfdback") ed in
  check "replay rows exist" true (not (Table.is_empty replays));
  check "replays carry their originating response" true
    (List.for_all (fun row -> str_cell replays row "fdctx" <> "-")
       (Table.rows replays));
  check "replays arrive as requests" true
    (List.for_all (fun row -> str_cell replays row "inmsgres" = "reqq")
       (Table.rows replays))

let test_ed_unblocked_preserves_d () =
  let ed = Lazy.force ed in
  let d = Protocol.Dir_controller.table () in
  let normal =
    Ops.select
      Expr.(
        eq_null "fdctx"
        &&& Not (eq "inmsg" "dfdback")
        &&& (eq "qstatus" "NotFull" ||| eq "dqstatus" "NotFull"
            ||| (eq_null "qstatus" &&& eq_null "dqstatus")))
      ed
  in
  let projected =
    Table.distinct (Ops.project (Schema.columns (Table.schema d)) normal)
  in
  check "unblocked ED rows contain D" true (Table.subset d projected)

let test_ed_deterministic () =
  let ed = Lazy.force ed in
  let inputs = Ops.project Extend.input_columns ed in
  check_int "ED is a function of its inputs"
    (Table.cardinality (Table.distinct inputs))
    (Table.cardinality (Table.distinct ed))

let test_nine_tables () =
  let db = Lazy.force impl_db in
  let tables = Partition.implementation_tables db in
  check_int "nine implementation tables" 9 (List.length tables);
  check_int "nine groups" 9 (List.length Partition.groups);
  check_int "five request-side tables" 5
    (List.length (List.filter (fun g -> g.Partition.side = `Request) Partition.groups));
  (* requests and responses are disjoint partitions of ED *)
  let req = Database.find db "Request_locmsg" in
  let resp = Database.find db "Response_locmsg" in
  check "partitions are non-trivial" true
    (Table.cardinality req > 0 && Table.cardinality resp > 0)

let test_partition_is_sql () =
  (* the statements really are executable SQL text *)
  let stmts = Partition.sql_statements () in
  check_int "nine statements" 9 (List.length stmts);
  List.iter
    (fun src ->
      match Relalg.Sql_parser.parse_statement src with
      | Relalg.Sql_ast.Create_table_as _ -> ()
      | _ -> Alcotest.fail ("not CREATE TABLE AS: " ^ src))
    stmts

let test_reconstruction () =
  let outcome = Reconstruct.check ~db:(Lazy.force impl_db) () in
  check "ED rebuilt exactly" true outcome.Reconstruct.ed_preserved;
  check "D contained in the rebuild" true outcome.Reconstruct.d_preserved;
  check_int "no missing rows" 0 (Table.cardinality outcome.Reconstruct.missing_rows)

let test_reconstruction_detects_damage () =
  (* drop rows from one implementation table: the round trip must fail *)
  let db = Lazy.force impl_db in
  let damaged =
    let t = Database.find db "Request_remmsg" in
    let keep = ref true in
    Table.filter
      (fun _ ->
        let k = !keep in
        keep := false;
        k)
      t
  in
  let db = Database.replace db damaged in
  let outcome = Reconstruct.check ~db () in
  check "damage detected" false outcome.Reconstruct.d_preserved

(* ------------------------------ codegen ----------------------------- *)

let test_rules_respect_specificity () =
  let t =
    Table.of_rows ~name:"t"
      (Schema.of_list [ "a"; "b"; "out" ])
      [
        Row.of_list [ Value.str "x"; Value.Null; Value.str "general" ];
        Row.of_list [ Value.str "x"; Value.str "y"; Value.str "specific" ];
      ]
  in
  let rules = Codegen.rules_of_table ~inputs:[ "a"; "b" ] ~outputs:[ "out" ] t in
  (* the more specific rule must fire first *)
  Alcotest.(check (option (list (pair string string))))
    "specific wins"
    (Some [ "out", "specific" ])
    (Codegen.eval_rules rules [ "a", "x"; "b", "y" ]);
  Alcotest.(check (option (list (pair string string))))
    "general still reachable"
    (Some [ "out", "general" ])
    (Codegen.eval_rules rules [ "a", "x"; "b", "z" ])

let test_generated_logic_agrees_everywhere () =
  let db = Lazy.force impl_db in
  List.iter
    (fun (g : Partition.group) ->
      let t = Database.find db g.Partition.table_name in
      check (g.Partition.table_name ^ " agrees") true
        (Codegen.agrees_with_table ~inputs:Extend.input_columns
           ~outputs:g.Partition.payload t))
    Partition.groups

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_verilog_emission () =
  let emitted = Codegen.emit_all (Lazy.force impl_db) in
  check_int "nine modules" 9 (List.length emitted);
  List.iter
    (fun (name, code) ->
      check (name ^ " has module header") true (contains code "module");
      check (name ^ " has localparams") true (contains code "localparam");
      check (name ^ " marked generated") true (contains code "do not edit"))
    emitted

let test_ocaml_emission () =
  let rules =
    Codegen.rules_of_table ~inputs:[ "a" ] ~outputs:[ "o" ]
      (Table.of_rows ~name:"mini"
         (Schema.of_list [ "a"; "o" ])
         [ Row.strings [ "x"; "y" ] ])
  in
  let code = Codegen.to_ocaml ~name:"mini" rules in
  check "defines a function" true (contains code "let mini");
  check "mentions the binding" true (contains code "\"x\"")

let suite =
  [
    Alcotest.test_case "ED shape" `Quick test_ed_shape;
    Alcotest.test_case "blocked requests retry" `Quick test_ed_blocked_requests_retry;
    Alcotest.test_case "full update queue feeds back" `Quick test_ed_feedback_on_full_update_queue;
    Alcotest.test_case "dfdback replay rows" `Quick test_ed_dfdback_rows;
    Alcotest.test_case "unblocked ED preserves D" `Quick test_ed_unblocked_preserves_d;
    Alcotest.test_case "ED determinism" `Quick test_ed_deterministic;
    Alcotest.test_case "nine implementation tables" `Quick test_nine_tables;
    Alcotest.test_case "partitioning is real SQL" `Quick test_partition_is_sql;
    Alcotest.test_case "reconstruction round trip" `Quick test_reconstruction;
    Alcotest.test_case "reconstruction detects damage" `Quick test_reconstruction_detects_damage;
    Alcotest.test_case "rule specificity" `Quick test_rules_respect_specificity;
    Alcotest.test_case "generated logic agrees with tables" `Quick test_generated_logic_agrees_everywhere;
    Alcotest.test_case "verilog emission" `Quick test_verilog_emission;
    Alcotest.test_case "ocaml emission" `Quick test_ocaml_emission;
  ]
