test/main.mli:
