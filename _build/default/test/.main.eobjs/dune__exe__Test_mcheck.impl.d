test/test_mcheck.ml: Alcotest Explore Lazy List Mcheck Mstate Protocol Semantics String
