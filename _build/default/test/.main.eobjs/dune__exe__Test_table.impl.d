test/test_table.ml: Alcotest Expr List Ops Profile Protocol QCheck QCheck_alcotest Relalg Row Schema String Table Value
