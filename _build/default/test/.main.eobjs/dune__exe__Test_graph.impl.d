test/test_graph.ml: Alcotest Cycles Digraph Dot List Printf QCheck QCheck_alcotest Scc String Vcgraph
