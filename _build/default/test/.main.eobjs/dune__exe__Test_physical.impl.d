test/test_physical.ml: Alcotest Array Expr Index Lazy List Ops Physical Plan Protocol QCheck QCheck_alcotest Relalg Row Schema Sql_exec Sql_parser String Sys Table Value
