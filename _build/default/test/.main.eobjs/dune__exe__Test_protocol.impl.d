test/test_protocol.ml: Alcotest Ctrl_spec Dir_controller List Mem_controller Message Protocol Relalg State String Topology
