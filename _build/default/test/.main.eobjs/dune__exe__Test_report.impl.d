test/test_report.ml: Alcotest Array Checker List Protocol Relalg String Vcgraph
