test/test_mapping.ml: Alcotest Codegen Database Expr Extend Lazy List Mapping Ops Partition Protocol Reconstruct Relalg Row Schema String Table Value
