test/test_msc.ml: Alcotest Checker List Sim String
