test/test_checker.ml: Alcotest Checker Deadlock Dependency Invariant Lazy List Option Printf Protocol Relalg String Vcassign Vcgraph
