test/test_sql.ml: Alcotest Array Database Expr Format List Relalg Row Schema Sql_ast Sql_exec Sql_lexer Sql_parser Table Value
