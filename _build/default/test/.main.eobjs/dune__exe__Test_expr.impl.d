test/test_expr.ml: Alcotest Expr Format QCheck QCheck_alcotest Relalg Row Schema Value
