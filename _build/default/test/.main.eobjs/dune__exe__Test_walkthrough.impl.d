test/test_walkthrough.ml: Alcotest Lazy List Sim String
