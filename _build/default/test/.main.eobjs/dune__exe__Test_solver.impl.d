test/test_solver.ml: Alcotest Expr List Printf QCheck QCheck_alcotest Relalg Solver Table Value
