test/test_sim.ml: Alcotest Channel Checker Impl_runner List Mcheck Option Printf Runner Scenario Sim String
