test/test_ctrl_spec_props.ml: Expr List Ops Protocol QCheck QCheck_alcotest Relalg String Table
