test/test_plan.ml: Alcotest Array Csv Database Expr List Ops Plan Printf Protocol QCheck QCheck_alcotest Relalg Row Schema Sql_exec Sql_parser String Table Value
