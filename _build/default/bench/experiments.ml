(* The experiment harness: regenerates every table, figure and headline
   number of the paper (see DESIGN.md's experiment index E1-E11) and
   prints paper-vs-measured rows.  EXPERIMENTS.md records the results. *)

open Relalg

let section id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let kv fmt = Printf.printf fmt

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  x, Unix.gettimeofday () -. t0

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — the protocol message inventory                       *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1" "message inventory (paper Figure 1: ~50 message types)";
  let total = List.length Protocol.Message.all in
  let requests =
    List.length (List.filter (fun m -> m.Protocol.Message.class_ = Protocol.Message.Request) Protocol.Message.all)
  in
  kv "paper: around 50 messages      measured: %d (%d requests, %d responses)\n"
    total requests (total - requests);
  kv "paper-named messages present: readex wb sinv mread data idone compl retry dfdback\n";
  kv "groups: %d local requests, %d snoops, %d snoop responses, %d local responses, %d memory-path\n"
    (List.length Protocol.Message.local_requests)
    (List.length Protocol.Message.snoop_requests)
    (List.length Protocol.Message.snoop_responses)
    (List.length Protocol.Message.local_responses)
    (List.length Protocol.Message.memory_requests
    + List.length Protocol.Message.memory_responses)

(* ------------------------------------------------------------------ *)
(* E2: Figures 2 and 3 — the read-exclusive transaction                *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2" "the readex transaction rows of D (paper Figure 3)";
  let fig = Protocol.Dir_controller.figure3 () in
  print_string (Table.to_string fig);
  let _, trace = Sim.Scenario.readex_walkthrough Checker.Vcassign.debugged in
  kv "\nthe same transaction executed (paper Figure 2):\n\n%s\n"
    (Sim.Msc.render_run trace);
  kv "(datax is the combined data+compl response; Busy rows come from the\n";
  kv " busy directory; the -c rows are the completion-ack handshake the\n";
  kv " paper describes as 'D receiving a compl response')\n"

(* ------------------------------------------------------------------ *)
(* E3: section 3 — table sizes                                          *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3" "controller-table statistics (paper section 3)";
  kv "%-6s %8s %8s\n" "table" "rows" "columns";
  List.iter
    (fun c ->
      let t = Protocol.Ctrl_spec.table c.Protocol.spec in
      kv "%-6s %8d %8d\n" (Table.name t) (Table.cardinality t) (Table.arity t))
    Protocol.controllers;
  let db = Protocol.database () in
  let grouped =
    Relalg.Sql_exec.query db
      "SELECT inmsgres, COUNT(*) FROM D GROUP BY inmsgres"
  in
  kv "D rows by arrival resource (SQL GROUP BY):\n%s"
    (Relalg.Table.to_string grouped);
  let d = Protocol.Dir_controller.table () in
  let prof = Relalg.Profile.profile d in
  kv "D sparsity: %.0f%% of cells are NULL (the paper: 'quite sparse')\n"
    (100. *. Relalg.Profile.sparsity prof);
  kv "columns (%d) are an order of magnitude fewer than rows (%d)\n"
    prof.Relalg.Profile.columns prof.Relalg.Profile.rows;
  kv "paper D: 30 columns x ~500 rows, ~40 busy states, 8 tables\n";
  kv "ours  D: %d columns x %d rows, %d busy states, %d tables\n"
    (Table.arity d) (Table.cardinality d)
    (List.length Protocol.State.all_busy_states)
    (List.length Protocol.controllers)

(* ------------------------------------------------------------------ *)
(* E4: incremental vs monolithic generation                            *)
(* ------------------------------------------------------------------ *)

(* a synthetic k-column controller in the style of D: each column
   constrained against its predecessor, domains of size 4 *)
let chain_spec k =
  let domain = List.map Value.str [ "p"; "q"; "r"; "s" ] in
  let columns =
    List.init k (fun i ->
        {
          Solver.cname = Printf.sprintf "c%d" i;
          role = (if i = 0 then Solver.Input else Solver.Output);
          domain;
        })
  in
  let constraints =
    List.init (k - 1) (fun i ->
        ( Printf.sprintf "c%d" (i + 1),
          Expr.(
            ternary
              (eq (Printf.sprintf "c%d" i) "p")
              (eq (Printf.sprintf "c%d" (i + 1)) "q")
              (isin (Printf.sprintf "c%d" (i + 1)) [ "p"; "r" ])) ))
  in
  Solver.make ~name:(Printf.sprintf "chain%d" k) ~columns ~constraints

let e4 () =
  section "E4"
    "incremental vs monolithic generation (paper: minutes vs ~6 hours)";
  kv "%-8s %14s %14s %12s %12s\n" "columns" "incr-cands" "mono-cands"
    "incr-ms" "mono-ms";
  List.iter
    (fun k ->
      let spec = chain_spec k in
      let (_, si), ti = time (fun () -> Solver.generate spec) in
      let (_, sm), tm = time (fun () -> Solver.generate_monolithic spec) in
      kv "%-8d %14d %14d %12.2f %12.2f\n" k si.Solver.candidates
        sm.Solver.candidates (ti *. 1000.) (tm *. 1000.))
    [ 4; 6; 8; 10; 12 ];
  let spec = Protocol.Ctrl_spec.to_solver_spec Protocol.Dir_controller.spec in
  let (_, sd), td = time (fun () -> Solver.generate spec) in
  kv "full D: incremental %d candidates in %.2f ms;\n" sd.Solver.candidates
    (td *. 1000.);
  kv "        monolithic would enumerate %.3e candidates (the paper's ~6 hours)\n"
    (float_of_int (Solver.search_space spec))

(* ------------------------------------------------------------------ *)
(* E5: sections 4.1-4.2 — deadlock detection                           *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5" "deadlock detection across the paper's three assignments";
  List.iter
    (fun (desc, r) ->
      let _, t = time (fun () -> Checker.Deadlock.analyze r.Checker.Deadlock.assignment) in
      kv "\n--- %s (%.0f ms) ---\n" desc (t *. 1000.);
      kv "dependency rows: %d   VCG: %d channels, %d edges   cycles: %d\n"
        (List.length r.Checker.Deadlock.entries)
        (Vcgraph.Digraph.num_vertices r.Checker.Deadlock.vcg)
        (Vcgraph.Digraph.num_edges r.Checker.Deadlock.vcg)
        (List.length r.Checker.Deadlock.cycles);
      List.iter
        (fun (c : _ Vcgraph.Cycles.cycle) ->
          kv "  cycle: %s\n" (Format.asprintf "%a" Vcgraph.Cycles.pp c))
        r.Checker.Deadlock.cycles)
    (Checker.Deadlock.narrative ());
  kv "\npaper: several cycles with VC0-VC3; a VC2/VC4 cycle (Figure 4) after\n";
  kv "adding VC4, incl. the composed self-loop R3; clean after the fix.\n";
  (* show the witnesses of the VC2<->VC4 cycle, the paper's R1/R2 rows *)
  let r = Checker.Deadlock.analyze Checker.Vcassign.with_vc4 in
  List.iter
    (fun (c : _ Vcgraph.Cycles.cycle) ->
      if List.sort compare c.nodes = [ "VC2"; "VC4" ] then begin
        kv "\nwitnesses of the VC2 <-> VC4 cycle:\n";
        List.iter
          (fun witnesses ->
            List.iteri
              (fun i (e : Checker.Dependency.entry) ->
                if i < 2 then
                  kv "  %s  [%s]\n"
                    (Format.asprintf "%a" Checker.Dependency.pp_dep e.dep)
                    (Format.asprintf "%a" Checker.Dependency.pp_provenance
                       e.provenance))
              witnesses)
          c.labels
      end)
    r.Checker.Deadlock.cycles

(* ------------------------------------------------------------------ *)
(* E6: section 4.3 — protocol invariants                               *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6" "protocol invariants (paper: ~50 checked in under 5 minutes)";
  let db = Protocol.database () in
  let results, t = time (fun () -> Checker.Invariant.run_all db) in
  let failed = Checker.Invariant.failures results in
  kv "paper: ~50 invariants, < 5 min on a Sparc 10\n";
  kv "ours : %d invariants, %.1f ms, %d failed\n" (List.length results)
    (t *. 1000.) (List.length failed);
  let by_ctrl =
    List.sort_uniq compare
      (List.map (fun (r : Checker.Invariant.result) -> r.invariant.controller) results)
  in
  List.iter
    (fun c ->
      kv "  %-4s %d invariants\n" c
        (List.length
           (List.filter
              (fun (r : Checker.Invariant.result) -> r.invariant.controller = c)
              results)))
    by_ctrl

(* ------------------------------------------------------------------ *)
(* E7/E8: section 5 — mapping to hardware                              *)
(* ------------------------------------------------------------------ *)

let e7_e8 () =
  section "E7" "implementation mapping (paper: ED + nine tables + check)";
  let ed, t_ed = time (fun () -> Mapping.Extend.ed ()) in
  kv "ED: %d rows x %d columns (%.0f ms)\n" (Table.cardinality ed)
    (Table.arity ed) (t_ed *. 1000.);
  let db, t_part = time (fun () -> Mapping.Partition.run ()) in
  kv "implementation tables (%.0f ms):\n" (t_part *. 1000.);
  List.iter
    (fun t -> kv "  %-18s %5d rows\n" (Table.name t) (Table.cardinality t))
    (Mapping.Partition.implementation_tables db);
  let outcome, t_rec = time (fun () -> Mapping.Reconstruct.check ~db ()) in
  kv "reconstruction (%.0f ms): ED preserved = %b, D contained = %b\n"
    (t_rec *. 1000.) outcome.Mapping.Reconstruct.ed_preserved
    outcome.Mapping.Reconstruct.d_preserved;
  section "E8" "code generation agrees with the tables";
  List.iter
    (fun (g : Mapping.Partition.group) ->
      let t = Database.find db g.Mapping.Partition.table_name in
      let ok =
        Mapping.Codegen.agrees_with_table ~inputs:Mapping.Extend.input_columns
          ~outputs:g.Mapping.Partition.payload t
      in
      let code =
        Mapping.Codegen.to_verilog ~name:g.Mapping.Partition.table_name
          (Mapping.Codegen.rules_of_table ~inputs:Mapping.Extend.input_columns
             ~outputs:g.Mapping.Partition.payload t)
      in
      kv "  %-18s agrees=%b  %6d lines of verilog\n"
        g.Mapping.Partition.table_name ok
        (List.length (String.split_on_char '\n' code)))
    Mapping.Partition.groups

(* ------------------------------------------------------------------ *)
(* E9: the model-checker baseline and state explosion                  *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9"
    "explicit-state model checking vs SQL static analysis (state explosion)";
  let tables = Mcheck.Semantics.load_tables () in
  kv "%-28s %10s %12s %10s %10s\n" "configuration" "states" "transitions"
    "time-s" "complete";
  List.iter
    (fun (nodes, ops) ->
      let cfg = { Mcheck.Semantics.nodes; addrs = 1; ops; capacity = 3; io_addrs = []; lossy = false } in
      let r = Mcheck.Explore.run ~max_states:400_000 ~tables cfg in
      kv "%d nodes, %-14s %10d %12d %10.2f %10b\n" nodes
        (String.concat "," ops) r.Mcheck.Explore.explored
        r.Mcheck.Explore.transitions r.Mcheck.Explore.elapsed
        r.Mcheck.Explore.complete)
    [
      1, [ "load"; "store" ];
      2, [ "load"; "store" ];
      2, [ "load"; "store"; "evictmod"; "evictsh" ];
      3, [ "load"; "store" ];
      3, [ "load"; "store"; "evictmod"; "evictsh" ];
      4, [ "load"; "store" ];
    ];
  (* the classical mitigation, for scale: one representative per
     node-permutation orbit (Murphi's scalarset symmetry) *)
  List.iter
    (fun nodes ->
      let cfg =
        { Mcheck.Semantics.nodes; addrs = 1; ops = [ "load"; "store" ];
          capacity = 3; io_addrs = []; lossy = false }
      in
      let r = Mcheck.Explore.run ~max_states:400_000 ~symmetry:true ~tables cfg in
      kv "%d nodes, load,store +symmetry %8d %12d %10.2f %10b\n" nodes
        r.Mcheck.Explore.explored r.Mcheck.Explore.transitions
        r.Mcheck.Explore.elapsed r.Mcheck.Explore.complete)
    [ 3; 4 ];
  let _, t_static =
    time (fun () ->
        let db = Protocol.database () in
        ignore (Checker.Invariant.run_all db);
        ignore (Checker.Deadlock.analyze Checker.Vcassign.debugged))
  in
  kv "SQL static analysis of the same protocol: %.2f s, independent of node count\n"
    t_static;
  kv "(the paper: model checkers 'have a lot of reasoning power' but need\n";
  kv " extensive abstraction to avoid state explosion)\n"

(* ------------------------------------------------------------------ *)
(* E10: Figure 4 replayed dynamically                                  *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10" "Figure 4 replay in the queue-accurate simulator";
  List.iter
    (fun (name, v) ->
      let result, _ = Sim.Scenario.figure4 v in
      kv "%-12s %s\n" name (Format.asprintf "%a" Sim.Runner.pp_result result))
    [ "V-vc4", Checker.Vcassign.with_vc4; "V-debugged", Checker.Vcassign.debugged ];
  let _, trace = Sim.Scenario.figure4 Checker.Vcassign.with_vc4 in
  kv "\nthe interleaving, as a sequence chart (paper Figure 4):\n\n%s\n"
    (Sim.Msc.render_run trace);
  kv "paper: wb(B)/readex(A) interleaving wedges VC2 and VC4; the dedicated\n";
  kv "mread path resolves it.\n"

(* ------------------------------------------------------------------ *)
(* E11: the seeded-error corpus — early detection                      *)
(* ------------------------------------------------------------------ *)

type seeded = {
  bug : string;
  caught_by : string;
  detect : unit -> bool;  (** true when the toolchain catches the bug *)
}

let seeded_corpus () =
  let db = Protocol.database () in
  let with_dir spec' inv =
    let tbl, _ = Protocol.Ctrl_spec.generate spec' in
    let db = Database.replace db (Table.with_name "D" tbl) in
    not
      (Checker.Invariant.run db (Option.get (Checker.Invariant.find inv)))
        .Checker.Invariant.passed
  in
  let drop l = Protocol.Ctrl_spec.drop_scenario Protocol.Dir_controller.spec l in
  [
    {
      bug = "drop busy-retry serialization";
      caught_by = "x-request-coverage";
      detect = (fun () -> with_dir (drop Protocol.Dir_controller.busy_retry_label)
                   "x-request-coverage");
    };
    {
      bug = "grant MESI with inc instead of repl";
      caught_by = "d-ownership-transfer";
      detect =
        (fun () ->
          with_dir
            (Protocol.Ctrl_spec.map_scenario Protocol.Dir_controller.spec
               "ack-exclusive" (fun s ->
                 {
                   s with
                   emit =
                     List.map
                       (fun (c, o) ->
                         if c = "nxtdirpv" then c, Protocol.Ctrl_spec.Out "inc"
                         else c, o)
                       s.emit;
                 }))
            "d-ownership-transfer");
    };
    {
      bug = "dealloc without completing to the requester";
      caught_by = "d-dealloc-only-on-completion";
      detect =
        (fun () ->
          with_dir
            (Protocol.Ctrl_spec.map_scenario Protocol.Dir_controller.spec
               "wb-mack-compl" (fun s ->
                 { s with emit = List.filter (fun (c, _) -> c <> "locmsg") s.emit }))
            "d-dealloc-only-on-completion");
    };
    {
      bug = "drop both idone rows of Busy-readex-sd";
      caught_by = "d-busy-progress";
      detect =
        (fun () ->
          with_dir
            (Protocol.Ctrl_spec.drop_scenario (drop "readex-idone-sd-last")
               "readex-idone-sd-more")
            "d-busy-progress");
    };
    {
      bug = "node reissues requests from retry processing";
      caught_by = "deadlock check (VC0..VC3 cycle)";
      detect =
        (fun () ->
          let buggy =
            {
              Protocol.node with
              Protocol.spec =
                Protocol.Ctrl_spec.with_scenarios Protocol.Node_controller.spec
                  (Protocol.Ctrl_spec.scenarios Protocol.Node_controller.spec
                  @ [ Protocol.Node_controller.naive_retry_scenario ]);
            }
          in
          let controllers =
            List.map
              (fun c ->
                if Protocol.Ctrl_spec.name c.Protocol.spec = "N" then buggy
                else c)
              Protocol.deadlock_controllers
          in
          not
            (Checker.Deadlock.is_deadlock_free
               (Checker.Deadlock.analyze ~controllers Checker.Vcassign.debugged)));
    };
    {
      bug = "memory requests share VC0 (paper's initial assignment)";
      caught_by = "deadlock check";
      detect =
        (fun () ->
          not
            (Checker.Deadlock.is_deadlock_free
               (Checker.Deadlock.analyze Checker.Vcassign.initial)));
    };
    {
      bug = "mread shares VC4 (paper's Figure 4)";
      caught_by = "deadlock check";
      detect =
        (fun () ->
          not
            (Checker.Deadlock.is_deadlock_free
               (Checker.Deadlock.analyze Checker.Vcassign.with_vc4)));
    };
    {
      bug = "drop the sharing writeback (stale memory)";
      caught_by = "model checker (stale data)";
      detect =
        (fun () ->
          let spec' =
            Protocol.Ctrl_spec.map_scenario Protocol.Dir_controller.spec
              "read-sdata-grant" (fun s ->
                { s with emit = List.filter (fun (c, _) -> c <> "memmsg") s.emit })
          in
          let tables = Mcheck.Semantics.load_tables_with ~dir:spec' () in
          let r =
            Mcheck.Explore.run ~max_states:300_000 ~tables
              {
                Mcheck.Semantics.nodes = 2; addrs = 1;
                ops = [ "load"; "store"; "evictmod"; "evictsh" ];
                capacity = 3; io_addrs = []; lossy = false;
              }
          in
          r.Mcheck.Explore.violation <> None);
    };
  ]

let e11 () =
  section "E11" "seeded-error corpus: every bug caught before implementation";
  let corpus = seeded_corpus () in
  let caught = ref 0 in
  List.iter
    (fun s ->
      let ok, t = time s.detect in
      if ok then incr caught;
      kv "  %-48s %-36s %s (%.0f ms)\n" s.bug s.caught_by
        (if ok then "CAUGHT" else "MISSED") (t *. 1000.))
    corpus;
  kv "%d / %d seeded errors detected statically or by the baseline checker\n"
    !caught (List.length corpus)

(* ------------------------------------------------------------------ *)
(* E12: the relaxation ladder (ablation of section 4.1)                *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12" "which relaxation finds which dependency (ablation)";
  let v = Checker.Vcassign.with_vc4 in
  let controllers = Protocol.deadlock_controllers in
  kv "%-44s %8s %8s %8s
" "relaxation level" "deps" "edges" "cycles";
  List.iter
    (fun (label, placements, interleavings) ->
      let entries =
        Checker.Dependency.protocol_dependency ~placements ~interleavings ~v
          controllers
      in
      let vcg = Checker.Vcg.build entries in
      kv "%-44s %8d %8d %8d
" label (List.length entries)
        (Vcgraph.Digraph.num_edges vcg)
        (List.length (Checker.Vcg.cycles vcg)))
    [
      ( "exact match only (L<>H<>R)",
        [ Protocol.Topology.All_distinct ], false );
      "+ all five quad placements", Protocol.Topology.all_placements, false;
      ( "+ message-agnostic (interleavings)",
        Protocol.Topology.all_placements, true );
    ];
  kv "(our reconstruction's memory-path rows compose exactly, so the\n\
     channel-level verdict is already visible with exact matching; the\n\
     relaxations triple the witnessing dependencies - more scenarios\n\
     behind each edge for the designer to review, as in the paper)\n"

(* ------------------------------------------------------------------ *)
(* E13: footnote 2 — fixpoint composition                              *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13" "fixpoint composition (paper footnote: 'not needed in practice')";
  List.iter
    (fun (name, v) ->
      let base, tb = time (fun () -> Checker.Deadlock.analyze v) in
      let fixed, tf = time (fun () -> Checker.Deadlock.analyze ~fixpoint:true v) in
      kv "%-12s one round: %4d deps, %d cycles (%.0f ms);  fixpoint: %4d deps, %d cycles (%.0f ms)
"
        name
        (List.length base.Checker.Deadlock.entries)
        (List.length base.Checker.Deadlock.cycles)
        (tb *. 1000.)
        (List.length fixed.Checker.Deadlock.entries)
        (List.length fixed.Checker.Deadlock.cycles)
        (tf *. 1000.))
    [
      "V-initial", Checker.Vcassign.initial;
      "V-vc4", Checker.Vcassign.with_vc4;
      "V-debugged", Checker.Vcassign.debugged;
    ];
  kv "the closure multiplies dependency rows and (for the initial\n\
     assignment) adds a spurious extra cycle - the paper's stated reason\n\
     for abandoning transitive closure ('an excessive number of spurious\n\
     cycles'); one composition round is the right operating point\n"

(* ------------------------------------------------------------------ *)
(* E14: the dfdback feedback path, dynamically (Figure 5)              *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14" "ED gating and the dfdback feedback path (paper Figure 5)";
  let tables = Mcheck.Semantics.load_tables () in
  let initial =
    let st = Mcheck.Mstate.initial ~nodes:2 ~addrs:2 in
    let st =
      Option.get
        (Mcheck.Semantics.issue_op tables st ~node:0 ~addr:0 ~op:"store")
    in
    Option.get (Mcheck.Semantics.issue_op tables st ~node:1 ~addr:1 ~op:"store")
  in
  (* drive every delivery through the gated directory with the update
     engine stalled, then let it drain *)
  let rec drive t =
    match Mcheck.Mstate.queue_heads t.Sim.Impl_runner.base with
    | [] -> t
    | ((src, dst, cls), msg) :: _ ->
        let base =
          match Mcheck.Mstate.dequeue t.Sim.Impl_runner.base (src, dst, cls) with
          | Some (_, b) -> b
          | None -> assert false
        in
        drive (Sim.Impl_runner.deliver { t with Sim.Impl_runner.base } ~cls ~dst msg)
  in
  let rec settle n t =
    if
      Mcheck.Mstate.quiescent t.Sim.Impl_runner.base
      && t.Sim.Impl_runner.feedback = []
      || n > 100
    then t
    else
      settle (n + 1)
        (drive (Sim.Impl_runner.replay_feedback (Sim.Impl_runner.drain_update t)))
  in
  List.iter
    (fun cap ->
      let t = settle 0 (drive (Sim.Impl_runner.make ~upd_capacity:cap initial)) in
      kv "update-queue capacity %d: %s -> %s\n" cap
        (Sim.Impl_runner.stats t)
        (if Mcheck.Mstate.quiescent t.Sim.Impl_runner.base then "quiescent"
         else "STUCK"))
    [ 1; 2; 4 ];
  kv "responses deferred through the feedback path replay once the update\n";
  kv "queue drains; the final architectural state matches the unconstrained\n";
  kv "run (checked in the test suite)\n"

(* ------------------------------------------------------------------ *)
(* E15: message loss (the link controller's crcdrop row)               *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15" "sensitivity to message loss (LK crcdrop)";
  let tables = Mcheck.Semantics.load_tables () in
  let cfg =
    { Mcheck.Semantics.nodes = 2; addrs = 1; ops = [ "load"; "store" ];
      capacity = 3; io_addrs = []; lossy = true }
  in
  let r = Mcheck.Explore.run ~max_states:150_000 ~tables cfg in
  (match r.Mcheck.Explore.violation with
  | Some v ->
      kv "a single dropped message wedges the protocol (%d-step trace):\n"
        (List.length v.Mcheck.Explore.trace);
      List.iter (fun l -> kv "  %s\n" l) v.Mcheck.Explore.trace
  | None -> kv "unexpectedly tolerant of loss\n");
  kv "the protocol assumes reliable channels (as the paper's does); the\n";
  kv "link controller's crcdrop behaviour therefore demands link-level\n";
  kv "retransmission below the protocol - a requirement made explicit by\n";
  kv "the orphaned-transaction invariant in the model checker\n"

let run_all () =
  e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7_e8 (); e9 (); e10 (); e11 ();
  e12 (); e13 (); e14 (); e15 ()
