bench/experiments.ml: Checker Database Expr Format List Mapping Mcheck Option Printf Protocol Relalg Sim Solver String Table Unix Value Vcgraph
