bench/main.ml: Analyze Bechamel Benchmark Checker Experiments Hashtbl Instance Lazy List Mapping Mcheck Measure Printf Protocol Relalg Sim Staged Test Time Toolkit
