bench/main.mli:
