(* Invariant audit: run the full static-invariant suite, then seed a
   protocol bug and watch the suite localize it — the paper's "errors
   found by static analyses are analyzed, the specification is modified
   and the process is repeated".

   Run with: dune exec examples/invariant_audit.exe *)

let () =
  let db = Protocol.database () in

  (* 1. the debugged protocol: everything passes *)
  let results = Checker.Invariant.run_all db in
  Printf.printf "debugged protocol: %d invariants, %d failures\n"
    (List.length results)
    (List.length (Checker.Invariant.failures results));

  (* 2. a designer "simplifies" the upgrade grant: the ownership handover
     increments the presence vector instead of replacing it *)
  Printf.printf "\nseeding a bug: ack-exclusive publishes pv with inc...\n";
  let buggy_spec =
    Protocol.Ctrl_spec.map_scenario Protocol.Dir_controller.spec
      "ack-exclusive" (fun s ->
        {
          s with
          emit =
            List.map
              (fun (c, o) ->
                if c = "nxtdirpv" then c, Protocol.Ctrl_spec.Out "inc" else c, o)
              s.emit;
        })
  in
  let buggy_d, _ = Protocol.Ctrl_spec.generate buggy_spec in
  let buggy_db =
    Relalg.Database.replace db (Relalg.Table.with_name "D" buggy_d)
  in
  let results = Checker.Invariant.run_all buggy_db in
  List.iter
    (fun (r : Checker.Invariant.result) ->
      Printf.printf "\ncaught by %s (%s):\n%s" r.invariant.id
        r.invariant.description
        (Relalg.Table.to_string r.violations))
    (Checker.Invariant.failures results);

  (* 3. the same check, written directly as the paper writes it *)
  Printf.printf "paper-style check on the buggy table:\n";
  let q =
    "SELECT nxtdirst, nxtdirpv FROM D WHERE nxtdirst = 'MESI' AND NOT \
     nxtdirpv = 'repl'"
  in
  Printf.printf "  [%s] = empty?  %b\n" q (Relalg.Sql_exec.is_empty buggy_db q)
