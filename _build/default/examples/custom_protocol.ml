(* Custom protocol: the paper claims "the approach can be easily applied
   to other cache coherence protocols [and] hardware based I/O
   protocols".  This example builds a little two-hop MSI write-invalidate
   protocol from scratch with the public API — its own column tables,
   scenarios, channel assignment — and runs the same generation,
   invariant and deadlock machinery on it.

   Run with: dune exec examples/custom_protocol.exe *)

open Protocol.Ctrl_spec

(* ------------------------- the home controller ---------------------- *)

let home_spec =
  make ~name:"HOME"
    ~inputs:
      [
        "inmsg", [ "getS"; "getM"; "putM"; "invack" ];
        "inmsgsrc", [ "local"; "remote" ];
        "inmsgdest", [ "home" ];
        "state", [ "I"; "S"; "M"; "Pending" ];
      ]
    ~outputs:
      [
        "rspmsg", [ "dataS"; "dataM"; "done"; "stall" ];
        "rspmsgsrc", [ "home" ];
        "rspmsgdest", [ "local" ];
        "invmsg", [ "inv" ];
        "invmsgsrc", [ "home" ];
        "invmsgdest", [ "remote" ];
        "nxtstate", [ "I"; "S"; "M"; "Pending" ];
      ]
    ~scenarios:
      [
        {
          label = "getS-clean";
          when_ = [ "inmsg", V "getS"; "inmsgsrc", V "local";
                    "inmsgdest", V "home"; "state", Among [ "I"; "S" ] ];
          emit = [ "rspmsg", Out "dataS"; "rspmsgsrc", Out "home";
                   "rspmsgdest", Out "local"; "nxtstate", Out "S" ];
        };
        {
          label = "getM-clean";
          when_ = [ "inmsg", V "getM"; "inmsgsrc", V "local";
                    "inmsgdest", V "home"; "state", Among [ "I"; "S" ] ];
          emit = [ "rspmsg", Out "dataM"; "rspmsgsrc", Out "home";
                   "rspmsgdest", Out "local";
                   "invmsg", Out "inv"; "invmsgsrc", Out "home";
                   "invmsgdest", Out "remote"; "nxtstate", Out "Pending" ];
        };
        {
          label = "busy-stall";
          when_ = [ "inmsg", Among [ "getS"; "getM" ]; "inmsgsrc", V "local";
                    "inmsgdest", V "home"; "state", V "Pending" ];
          emit = [ "rspmsg", Out "stall"; "rspmsgsrc", Out "home";
                   "rspmsgdest", Out "local" ];
        };
        {
          label = "invack-settle";
          when_ = [ "inmsg", V "invack"; "inmsgsrc", V "remote";
                    "inmsgdest", V "home"; "state", V "Pending" ];
          emit = [ "nxtstate", Out "M" ];
        };
        {
          label = "putM";
          when_ = [ "inmsg", V "putM"; "inmsgsrc", V "local";
                    "inmsgdest", V "home"; "state", V "M" ];
          emit = [ "rspmsg", Out "done"; "rspmsgsrc", Out "home";
                   "rspmsgdest", Out "local"; "nxtstate", Out "I" ];
        };
      ]

(* ------------------------- the cache controller --------------------- *)

let cache_spec =
  make ~name:"CPU"
    ~inputs:
      [
        "inmsg", [ "inv"; "dataS"; "dataM" ];
        "inmsgsrc", [ "home" ];
        "inmsgdest", [ "remote"; "local" ];
        "line", [ "I"; "S"; "M" ];
      ]
    ~outputs:
      [
        "ackmsg", [ "invack" ];
        "ackmsgsrc", [ "remote" ];
        "ackmsgdest", [ "home" ];
        "nxtline", [ "I"; "S"; "M" ];
      ]
    ~scenarios:
      [
        {
          label = "inv";
          when_ = [ "inmsg", V "inv"; "inmsgsrc", V "home";
                    "inmsgdest", V "remote"; "line", Among [ "I"; "S" ] ];
          emit = [ "ackmsg", Out "invack"; "ackmsgsrc", Out "remote";
                   "ackmsgdest", Out "home"; "nxtline", Out "I" ];
        };
        {
          label = "fillS";
          when_ = [ "inmsg", V "dataS"; "inmsgsrc", V "home";
                    "inmsgdest", V "local" ];
          emit = [ "nxtline", Out "S" ];
        };
        {
          label = "fillM";
          when_ = [ "inmsg", V "dataM"; "inmsgsrc", V "home";
                    "inmsgdest", V "local" ];
          emit = [ "nxtline", Out "M" ];
        };
      ]

(* wrap the specs as controllers for the dependency machinery *)
let home =
  {
    Protocol.spec = home_spec;
    location = Protocol.Topology.Home;
    in_triples = [ "inmsg", "inmsgsrc", "inmsgdest" ];
    out_triples =
      [ "rspmsg", "rspmsgsrc", "rspmsgdest"; "invmsg", "invmsgsrc", "invmsgdest" ];
    include_in_deadlock = true;
  }

let cpu =
  {
    Protocol.spec = cache_spec;
    location = Protocol.Topology.Remote;
    in_triples = [ "inmsg", "inmsgsrc", "inmsgdest" ];
    out_triples = [ "ackmsg", "ackmsgsrc", "ackmsgdest" ];
    include_in_deadlock = true;
  }

(* --------------------------- channel plans -------------------------- *)

(* a naive two-channel plan: everything to home on CH-A, everything from
   home on CH-B *)
let naive_v =
  {
    Checker.Vcassign.name = "msi-naive";
    rows =
      [
        { Checker.Vcassign.msg = "getS"; src = "local"; dst = "home"; vc = "CH-A" };
        { msg = "getM"; src = "local"; dst = "home"; vc = "CH-A" };
        { msg = "putM"; src = "local"; dst = "home"; vc = "CH-A" };
        { msg = "invack"; src = "remote"; dst = "home"; vc = "CH-A" };
        { msg = "dataS"; src = "home"; dst = "local"; vc = "CH-B" };
        { msg = "dataM"; src = "home"; dst = "local"; vc = "CH-B" };
        { msg = "done"; src = "home"; dst = "local"; vc = "CH-B" };
        { msg = "stall"; src = "home"; dst = "local"; vc = "CH-B" };
        { msg = "inv"; src = "home"; dst = "remote"; vc = "CH-B" };
      ];
  }

(* the fix: invalidation acks get their own channel *)
let fixed_v =
  Checker.Vcassign.reassign naive_v ~msg:"invack" ~src:"remote" ~dst:"home"
    ~vc:"CH-C"
  |> fun v -> { v with Checker.Vcassign.name = "msi-fixed" }

let () =
  (* generate both tables from their constraints *)
  List.iter
    (fun spec ->
      let t = Protocol.Ctrl_spec.table spec in
      Printf.printf "%-5s %3d rows x %d columns\n" (Relalg.Table.name t)
        (Relalg.Table.cardinality t) (Relalg.Table.arity t))
    [ home_spec; cache_spec ];

  (* a protocol-specific invariant, in SQL *)
  let db =
    Relalg.Database.of_tables
      [ Protocol.Ctrl_spec.table home_spec; Protocol.Ctrl_spec.table cache_spec ]
  in
  Printf.printf "\ninvariant: a pending home never hands out data: %s\n"
    (if
       Relalg.Sql_exec.is_empty db
         "SELECT state, rspmsg FROM HOME WHERE state = 'Pending' AND rspmsg IN ('dataS','dataM')"
     then "holds"
     else "VIOLATED");

  (* the same deadlock machinery as ASURA, on the custom protocol *)
  List.iter
    (fun v ->
      let r = Checker.Deadlock.analyze ~controllers:[ home; cpu ] v in
      Printf.printf "\n%s: %d dependencies, %d cycles%s\n"
        v.Checker.Vcassign.name
        (List.length r.Checker.Deadlock.entries)
        (List.length r.Checker.Deadlock.cycles)
        (if Checker.Deadlock.is_deadlock_free r then " (deadlock free)" else "");
      List.iter
        (fun (c : _ Vcgraph.Cycles.cycle) ->
          Printf.printf "  cycle %s\n" (Format.asprintf "%a" Vcgraph.Cycles.pp c))
        r.Checker.Deadlock.cycles)
    [ naive_v; fixed_v ]
