examples/hardware_mapping.mli:
