examples/custom_protocol.ml: Checker Format List Printf Protocol Relalg Vcgraph
