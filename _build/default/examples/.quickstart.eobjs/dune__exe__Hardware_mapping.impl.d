examples/hardware_mapping.ml: List Mapping Printf Relalg String
