examples/quickstart.mli:
