examples/deadlock_hunt.ml: Checker Format List Printf Sim String Vcgraph
