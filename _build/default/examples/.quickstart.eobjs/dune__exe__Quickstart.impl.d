examples/quickstart.ml: Checker Printf Protocol Relalg
