examples/model_check.ml: Checker Format List Mcheck Protocol Sys
