examples/invariant_audit.ml: Checker List Printf Protocol Relalg
