examples/invariant_audit.mli:
