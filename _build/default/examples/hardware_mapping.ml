(* Hardware mapping: extend the debugged directory table with queue and
   feedback machinery, partition it into the nine implementation tables
   with real SQL, verify the mapping preserved the debugged behaviour,
   and emit controller logic (paper section 5).

   Run with: dune exec examples/hardware_mapping.exe *)

let () =
  (* 1. ED: D plus qstatus / dqstatus / fdctx inputs and the fdback output *)
  let ed = Mapping.Extend.ed () in
  Printf.printf "ED: %d rows x %d columns\n"
    (Relalg.Table.cardinality ed) (Relalg.Table.arity ed);

  (* 2. the nine CREATE TABLE ... AS SELECT DISTINCT statements *)
  Printf.printf "\npartitioning SQL:\n";
  List.iter
    (fun stmt ->
      Printf.printf "  %s...\n" (String.sub stmt 0 (min 72 (String.length stmt))))
    (Mapping.Partition.sql_statements ());
  let db = Mapping.Partition.run () in
  List.iter
    (fun t ->
      Printf.printf "  -> %-18s %6d rows\n" (Relalg.Table.name t)
        (Relalg.Table.cardinality t))
    (Mapping.Partition.implementation_tables db);

  (* 3. reconstruction: the mapping must preserve the debugged table *)
  let o = Mapping.Reconstruct.check ~db () in
  Printf.printf
    "\nreconstruction check: ED preserved = %b, D contained in rebuild = %b\n"
    o.Mapping.Reconstruct.ed_preserved o.Mapping.Reconstruct.d_preserved;

  (* 4. code generation, with the independent agreement check *)
  let g = List.nth Mapping.Partition.groups 1 (* Request_remmsg *) in
  let t = Relalg.Database.find db g.Mapping.Partition.table_name in
  let rules =
    Mapping.Codegen.rules_of_table ~inputs:Mapping.Extend.input_columns
      ~outputs:g.Mapping.Partition.payload t
  in
  Printf.printf "\n%s: %d rules; generated logic agrees with the table: %b\n"
    g.Mapping.Partition.table_name (List.length rules)
    (Mapping.Codegen.agrees_with_table ~inputs:Mapping.Extend.input_columns
       ~outputs:g.Mapping.Partition.payload t);
  let verilog = Mapping.Codegen.to_verilog ~name:g.Mapping.Partition.table_name rules in
  Printf.printf "\nfirst lines of the generated Verilog:\n";
  List.iteri
    (fun i line -> if i < 14 then Printf.printf "  %s\n" line)
    (String.split_on_char '\n' verilog)
