(* Quickstart: the whole methodology on the built-in ASURA protocol in
   five steps — generate, inspect, query, check, map.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Generate the directory controller table from its column
     constraints (paper section 3). *)
  let d = Protocol.Dir_controller.table () in
  Printf.printf "1. generated D: %d rows x %d columns\n"
    (Relalg.Table.cardinality d) (Relalg.Table.arity d);

  (* 2. Look at the paper's Figure 3: the read-exclusive transaction. *)
  Printf.printf "\n2. the readex transaction (Figure 3):\n%s"
    (Relalg.Table.to_string (Protocol.Dir_controller.figure3 ()));

  (* 3. Ask questions in SQL.  The database holds all eight controller
     tables with isrequest/isresponse registered. *)
  let db = Protocol.database () in
  let busy_answers =
    Relalg.Sql_exec.query db
      "SELECT DISTINCT inmsg, locmsg FROM D WHERE bdirlookup = 'hit' AND \
       isrequest(inmsg) AND NOT locmsg = NULL"
  in
  Printf.printf "\n3. what does a busy directory answer requests with?\n%s"
    (Relalg.Table.to_string busy_answers);

  (* 4. Check a protocol invariant the paper quotes verbatim: directory
     state and presence vector must be consistent. *)
  let ok =
    Relalg.Sql_exec.is_empty db
      "SELECT dirst, dirpv FROM D WHERE dirst = 'MESI' AND NOT dirpv = 'one'"
  in
  Printf.printf "\n4. [Select ... ] = empty check: MESI implies one owner: %s\n"
    (if ok then "holds" else "VIOLATED");

  (* 5. Check the debugged channel assignment is deadlock free. *)
  let report = Checker.Deadlock.analyze Checker.Vcassign.debugged in
  Printf.printf "\n5. deadlock analysis of %s: %s\n"
    report.Checker.Deadlock.assignment.Checker.Vcassign.name
    (if Checker.Deadlock.is_deadlock_free report then "deadlock free"
     else "CYCLES FOUND")
