lib/checker/vcg.ml: Dependency Hashtbl List Printf Vcgraph
