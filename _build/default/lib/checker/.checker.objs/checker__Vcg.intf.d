lib/checker/vcg.mli: Dependency Vcgraph
