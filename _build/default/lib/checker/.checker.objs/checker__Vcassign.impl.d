lib/checker/vcassign.ml: Array List Option Protocol Relalg Row Schema String Table Value
