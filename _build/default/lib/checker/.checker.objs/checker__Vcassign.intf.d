lib/checker/vcassign.mli: Relalg
