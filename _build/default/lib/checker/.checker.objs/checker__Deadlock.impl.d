lib/checker/deadlock.ml: Buffer Dependency Format List Option Printf Protocol Vcassign Vcg Vcgraph
