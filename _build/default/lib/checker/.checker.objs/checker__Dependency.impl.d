lib/checker/dependency.ml: Array Format Hashtbl List Option Protocol Relalg Row Schema Table Value Vcassign
