lib/checker/dependency.mli: Format Protocol Relalg Vcassign
