lib/checker/invariant.ml: Array Buffer Database Expr Format List Ops Option Printf Protocol Relalg Row Schema Sql_exec String Table Value
