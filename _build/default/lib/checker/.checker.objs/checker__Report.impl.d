lib/checker/report.ml: Buffer Deadlock Dependency Format Invariant List Printf Protocol Relalg Vcassign Vcgraph
