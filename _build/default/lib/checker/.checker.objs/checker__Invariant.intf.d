lib/checker/invariant.mli: Relalg
