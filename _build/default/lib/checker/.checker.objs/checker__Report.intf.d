lib/checker/report.mli: Deadlock Invariant Vcassign
