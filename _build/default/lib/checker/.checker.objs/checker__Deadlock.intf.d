lib/checker/deadlock.mli: Dependency Protocol Vcassign Vcgraph
