(** The end-to-end deadlock check (sections 4.1–4.2).

    Takes a virtual-channel assignment and the controller tables, builds
    the protocol dependency table and the VCG, and reports the cycles.
    Running it over the paper's three assignments reproduces the
    narrative: many cycles with VC0–VC3, the VC2/VC4 writeback/readex
    cycle once VC4 is added, and a clean bill once [mread] moves to a
    dedicated hardware path. *)

type report = {
  assignment : Vcassign.t;
  entries : Dependency.entry list;  (** the protocol dependency table *)
  vcg : Dependency.entry list Vcgraph.Digraph.t;
  cycles : Dependency.entry list Vcgraph.Cycles.cycle list;
}

val analyze :
  ?placements:Protocol.Topology.placement list ->
  ?interleavings:bool ->
  ?fixpoint:bool ->
  ?controllers:Protocol.controller list ->
  Vcassign.t ->
  report
(** Defaults: all five placements, message-ignoring relaxation on, one
    composition round (no fixpoint), and
    {!Protocol.deadlock_controllers}. *)

val is_deadlock_free : report -> bool

val cycles_through : report -> string -> Dependency.entry list Vcgraph.Cycles.cycle list
(** Cycles visiting the given virtual channel. *)

val summary : report -> string
(** Human-readable report: dependency-table size, VCG size, and each cycle
    with the dependency rows along it — the artifact handed to the design
    team in the paper's flow. *)

val narrative : unit -> (string * report) list
(** The three standard assignments analyzed in order, tagged with a
    one-line description of the paper's corresponding step. *)
