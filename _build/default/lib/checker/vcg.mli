(** The virtual-channel dependency graph (VCG).

    Vertices are virtual channels; a directed edge (vc1, vc2) means some
    protocol step consumes a message on vc1 only if it can queue one on
    vc2.  Many dependency rows can induce the same channel edge, so each
    edge carries the full list of witnessing dependency-table entries and
    cycles are enumerated over the condensed channel graph — this is how
    the paper reports them (cycles of channels, analyzed by reading the
    rows along them). *)

val build : Dependency.entry list -> Dependency.entry list Vcgraph.Digraph.t
(** One edge per (input-channel, output-channel) pair; the label collects
    every dependency entry witnessing the edge, in first-seen order. *)

val cycles :
  ?limit:int ->
  Dependency.entry list Vcgraph.Digraph.t ->
  Dependency.entry list Vcgraph.Cycles.cycle list

val is_acyclic : Dependency.entry list Vcgraph.Digraph.t -> bool

val to_dot : Dependency.entry list Vcgraph.Digraph.t -> string
(** Graphviz rendering; edges annotated with a witness count. *)
