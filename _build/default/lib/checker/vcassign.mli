(** Virtual-channel assignments — the table V of section 4.1.

    V has four columns (m, s, d, v): message [m] sent from source role [s]
    to destination role [d] travels on virtual channel [v].  Three
    assignments from the paper's narrative are provided:

    - {!initial}: four channels VC0–VC3; the directory-to-memory traffic
      shares VC0 (requests) — the configuration in which "several cycles
      leading to deadlocks were found", "most … involving the directory
      controller and the memory controller at the home node";
    - {!with_vc4}: a dedicated VC4 carries directory-to-memory requests —
      the configuration in which the paper's Figure 4 wb/readex deadlock
      (a VC2/VC4 cycle) survives;
    - {!debugged}: additionally, [mread] moves to a dedicated hardware
      path (not a shared virtual channel, hence absent from V) — the
      paper's final fix; the VCG becomes acyclic. *)

type assignment = { msg : string; src : string; dst : string; vc : string }

type t = { name : string; rows : assignment list }

val vc0 : string
val vc1 : string
val vc2 : string
val vc3 : string
val vc4 : string

val initial : t
val with_vc4 : t
val debugged : t
val standard : t list
(** The three above, in narrative order. *)

val lookup : t -> msg:string -> src:string -> dst:string -> string option
(** The channel assigned to a (message, source, destination) triple. *)

val channels : t -> string list
(** Distinct channels, sorted. *)

val to_table : t -> Relalg.Table.t
(** As a database table named after the assignment, columns (m, s, d, v). *)

val of_table : Relalg.Table.t -> t
(** Inverse of {!to_table}; ignores rows with NULL cells. *)

val reassign : t -> msg:string -> src:string -> dst:string -> vc:string -> t
(** Functional update of one triple's channel (adding it if absent). *)

val remove : t -> msg:string -> src:string -> dst:string -> t
(** Drop a triple from V — i.e. move that message to a dedicated
    hardware path outside the virtual-channel fabric. *)
