(** The enhanced-architecture-specification report.

    The paper's workflow produces "an enhanced architecture specification
    … with multiple controller tables" plus the results of the static
    analyses, which architects, designers and the testing team review.
    This module renders that document as Markdown: the system inventory,
    every controller table's statistics (optionally the full rows), the
    channel assignment, the deadlock verdict with cycles, and the
    invariant results. *)

type options = {
  include_tables : bool;  (** embed full controller tables (large) *)
  include_constraints : bool;  (** embed the derived column constraints *)
  assignment : Vcassign.t;
}

val default_options : options

val generate : ?options:options -> unit -> string
(** The full Markdown report for the built-in protocol. *)

val deadlock_section : Deadlock.report -> string
val invariant_section : Invariant.result list -> string
