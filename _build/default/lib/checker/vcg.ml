let build entries =
  (* Group the dependency entries by channel pair, preserving order. *)
  let groups : (string * string, Dependency.entry list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let order = ref [] in
  List.iter
    (fun (e : Dependency.entry) ->
      let key = e.dep.input.vc, e.dep.output.vc in
      match Hashtbl.find_opt groups key with
      | Some cell -> cell := e :: !cell
      | None ->
          Hashtbl.add groups key (ref [ e ]);
          order := key :: !order)
    entries;
  List.fold_left
    (fun g key ->
      let src, dst = key in
      let witnesses = List.rev !(Hashtbl.find groups key) in
      Vcgraph.Digraph.add_edge ~src ~dst ~label:witnesses g)
    Vcgraph.Digraph.empty (List.rev !order)

let cycles ?limit g = Vcgraph.Cycles.enumerate ?limit g
let is_acyclic g = Vcgraph.Scc.is_acyclic g

let to_dot g =
  Vcgraph.Dot.to_dot ~name:"vcg"
    ~edge_label:(fun witnesses ->
      Printf.sprintf "%d deps" (List.length witnesses))
    g
