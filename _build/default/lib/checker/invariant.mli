(** Static protocol invariants checked over the controller tables with SQL
    (section 4.3 of the paper — "All of the protocol invariants (around
    50) are checked … within 5 minutes").

    An invariant is either a SQL emptiness check — the query selects the
    {e violating} rows, so an empty result means the invariant holds
    (the paper's [\[Select …\] = empty] idiom) — or a native check for
    properties SQL's single-table subset cannot express (determinism,
    cross-table coverage), which likewise returns the counterexample rows.

    The three invariants quoted verbatim in the paper appear here as
    [d-mesi-pv-one] / [d-si-pv-many] / [d-i-pv-zero] (directory
    state/presence-vector consistency), [d-dir-bdir-exclusive] (directory
    vs busy-directory mutual exclusion) and [d-busy-retry] /
    [d-dealloc-only-on-completion] (request serialization), adapted to the
    NULL-as-dont-care convention of sparse rows. *)

type check =
  | Sql of string  (** query selecting violating rows; empty = pass *)
  | Native of (Relalg.Database.t -> Relalg.Table.t)

type t = {
  id : string;
  description : string;
  controller : string;  (** table primarily concerned, or ["*"] *)
  check : check;
}

type result = {
  invariant : t;
  passed : bool;
  violations : Relalg.Table.t;  (** counterexample rows (empty if passed) *)
}

val all : t list
(** The full suite, ~50 invariants across the eight controller tables. *)

val find : string -> t option
val run : Relalg.Database.t -> t -> result
val run_all : ?invariants:t list -> Relalg.Database.t -> result list
val failures : result list -> result list
val summary : result list -> string
(** One line per invariant plus a pass/fail tally. *)
