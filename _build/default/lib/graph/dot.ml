let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
      (List.init (String.length s) (String.get s)))

let to_dot ?(name = "vcg") ?edge_label g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" (escape v)))
    (Digraph.vertices g);
  List.iter
    (fun (src, dst, l) ->
      let attr =
        match edge_label with
        | None -> ""
        | Some f -> Printf.sprintf " [label=\"%s\"]" (escape (f l))
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n" (escape src) (escape dst) attr))
    (Digraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let highlight_cycles ?(name = "vcg") g cycles =
  let on_cycle = Hashtbl.create 16 in
  List.iter
    (fun (c : _ Cycles.cycle) ->
      let rec mark = function
        | [] -> ()
        | [ last ] -> (
            match c.nodes with
            | first :: _ -> Hashtbl.replace on_cycle (last, first) ()
            | [] -> ())
        | a :: (b :: _ as rest) ->
            Hashtbl.replace on_cycle (a, b) ();
            mark rest
      in
      mark c.nodes)
    cycles;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" (escape v)))
    (Digraph.vertices g);
  List.iter
    (fun (src, dst, _) ->
      let attr =
        if Hashtbl.mem on_cycle (src, dst) then
          " [color=red, penwidth=2.0]"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n" (escape src) (escape dst) attr))
    (Digraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
