(** Directed graphs with string vertices and labelled edges.

    Used for the virtual-channel dependency graph (VCG): vertices are
    virtual channels, edge labels carry the dependency-table row that
    induced the edge so cycle reports can be traced back to protocol
    scenarios. *)

type 'a t

val empty : 'a t
val add_vertex : string -> 'a t -> 'a t
val add_edge : src:string -> dst:string -> label:'a -> 'a t -> 'a t
(** Adds both endpoints as vertices if absent.  Parallel edges with
    distinct labels are kept; an identical (src, dst, label) edge is not
    duplicated when labels are structurally comparable. *)

val of_edges : (string * string * 'a) list -> 'a t
val vertices : 'a t -> string list
(** Sorted. *)

val successors : 'a t -> string -> (string * 'a) list
(** Outgoing (dst, label) pairs; empty for unknown vertices. *)

val edges : 'a t -> (string * string * 'a) list
val mem_vertex : 'a t -> string -> bool
val mem_edge : 'a t -> src:string -> dst:string -> bool
val num_vertices : 'a t -> int
val num_edges : 'a t -> int
val transpose : 'a t -> 'a t
val restrict : 'a t -> (string -> bool) -> 'a t
(** Induced subgraph on the vertices satisfying the predicate. *)

val reachable : 'a t -> string -> string list
(** Vertices reachable from a source (including it), sorted. *)

val self_loops : 'a t -> (string * 'a) list
