module Smap = Map.Make (String)

type 'a t = { succ : (string * 'a) list Smap.t }

let empty = { succ = Smap.empty }

let add_vertex v g =
  if Smap.mem v g.succ then g else { succ = Smap.add v [] g.succ }

let add_edge ~src ~dst ~label g =
  let g = add_vertex src (add_vertex dst g) in
  let outs = Smap.find src g.succ in
  if List.exists (fun (d, l) -> d = dst && l = label) outs then g
  else { succ = Smap.add src ((dst, label) :: outs) g.succ }

let of_edges es =
  List.fold_left (fun g (src, dst, label) -> add_edge ~src ~dst ~label g) empty es

let vertices g = List.map fst (Smap.bindings g.succ)

let successors g v =
  match Smap.find_opt v g.succ with Some outs -> outs | None -> []

let edges g =
  Smap.fold
    (fun src outs acc ->
      List.fold_left (fun acc (dst, l) -> (src, dst, l) :: acc) acc outs)
    g.succ []

let mem_vertex g v = Smap.mem v g.succ
let mem_edge g ~src ~dst = List.exists (fun (d, _) -> d = dst) (successors g src)
let num_vertices g = Smap.cardinal g.succ
let num_edges g = Smap.fold (fun _ outs acc -> acc + List.length outs) g.succ 0

let transpose g =
  List.fold_left
    (fun acc (src, dst, label) -> add_edge ~src:dst ~dst:src ~label acc)
    (List.fold_left (fun acc v -> add_vertex v acc) empty (vertices g))
    (edges g)

let restrict g keep =
  Smap.fold
    (fun src outs acc ->
      if not (keep src) then acc
      else
        let acc = add_vertex src acc in
        List.fold_left
          (fun acc (dst, label) ->
            if keep dst then add_edge ~src ~dst ~label acc else acc)
          acc outs)
    g.succ empty

let reachable g source =
  let visited = Hashtbl.create 16 in
  let rec go v =
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.add visited v ();
      List.iter (fun (d, _) -> go d) (successors g v)
    end
  in
  if mem_vertex g source then go source;
  List.sort String.compare (Hashtbl.fold (fun v () acc -> v :: acc) visited [])

let self_loops g =
  Smap.fold
    (fun src outs acc ->
      List.fold_left
        (fun acc (dst, l) -> if src = dst then (src, l) :: acc else acc)
        acc outs)
    g.succ []
