type 'a cycle = { nodes : string list; labels : 'a list }

exception Limit

(* Johnson's elementary-circuit algorithm.  Each cycle is discovered from
   its lexicographically smallest vertex, so no cycle is reported twice. *)
let enumerate ?(limit = 10_000) g =
  let results = ref [] in
  let count = ref 0 in
  let run start =
    let sub = Digraph.restrict g (fun v -> String.compare v start >= 0) in
    let blocked = Hashtbl.create 16 in
    let blist : (string, string list) Hashtbl.t = Hashtbl.create 16 in
    let rec unblock v =
      if Hashtbl.mem blocked v then begin
        Hashtbl.remove blocked v;
        let bs = Option.value (Hashtbl.find_opt blist v) ~default:[] in
        Hashtbl.remove blist v;
        List.iter unblock bs
      end
    in
    let rec circuit path v =
      Hashtbl.replace blocked v ();
      let found = ref false in
      List.iter
        (fun (w, label) ->
          if w = start then begin
            let full = List.rev ((v, label) :: path) in
            results :=
              { nodes = List.map fst full; labels = List.map snd full }
              :: !results;
            incr count;
            if !count >= limit then raise Limit;
            found := true
          end
          else if not (Hashtbl.mem blocked w) then
            if circuit ((v, label) :: path) w then found := true)
        (Digraph.successors sub v);
      if !found then unblock v
      else
        List.iter
          (fun (w, _) ->
            let bs = Option.value (Hashtbl.find_opt blist w) ~default:[] in
            if not (List.mem v bs) then Hashtbl.replace blist w (v :: bs))
          (Digraph.successors sub v);
      !found
    in
    ignore (circuit [] start)
  in
  (try List.iter run (Digraph.vertices g) with Limit -> ());
  List.rev !results

let count ?limit g = List.length (enumerate ?limit g)
let involving cycles v = List.filter (fun c -> List.mem v c.nodes) cycles

let pp fmt c =
  match c.nodes with
  | [] -> Format.pp_print_string fmt "<empty cycle>"
  | first :: _ ->
      Format.fprintf fmt "%s -> %s"
        (String.concat " -> " c.nodes)
        first
