(** Graphviz DOT export of dependency graphs, for inclusion in design
    reviews (the paper's workflow hands cycle reports to architects). *)

val to_dot :
  ?name:string ->
  ?edge_label:('a -> string) ->
  'a Digraph.t ->
  string
(** Render a digraph; [edge_label] (default: none) annotates edges. *)

val highlight_cycles :
  ?name:string -> 'a Digraph.t -> 'a Cycles.cycle list -> string
(** Render with edges on any given cycle drawn red and bold. *)
