(** Strongly connected components (Tarjan's algorithm, iterative).

    The deadlock check only needs to know whether the VCG has a cycle: that
    is equivalent to some SCC having more than one vertex or a vertex with
    a self-loop. *)

val components : 'a Digraph.t -> string list list
(** SCCs in reverse topological order; each component sorted. *)

val cyclic_components : 'a Digraph.t -> string list list
(** Components that contain a cycle: size > 1, or a single vertex with a
    self-loop. *)

val is_acyclic : 'a Digraph.t -> bool
