lib/graph/dot.mli: Cycles Digraph
