lib/graph/digraph.ml: Hashtbl List Map String
