lib/graph/cycles.mli: Digraph Format
