lib/graph/cycles.ml: Digraph Format Hashtbl List Option String
