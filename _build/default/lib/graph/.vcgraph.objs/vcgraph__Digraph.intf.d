lib/graph/digraph.mli:
