lib/graph/dot.ml: Buffer Cycles Digraph Hashtbl List Printf String
