(** Elementary-cycle enumeration (Johnson's algorithm).

    The paper reports the cycles of the VCG so designers can analyse each
    one manually (section 4.2); this module produces them with the edge
    labels (dependency rows) along the cycle, which is exactly what the
    deadlock report prints. *)

type 'a cycle = {
  nodes : string list;  (** vertices in order; the cycle closes back to the head *)
  labels : 'a list;  (** label of the edge leaving each vertex, same order *)
}

val enumerate : ?limit:int -> 'a Digraph.t -> 'a cycle list
(** All elementary cycles, each reported once starting from its smallest
    vertex.  [limit] (default 10_000) caps the number returned, guarding
    against pathological dependency tables. *)

val count : ?limit:int -> 'a Digraph.t -> int

val involving : 'a cycle list -> string -> 'a cycle list
(** Cycles passing through the given vertex. *)

val pp : Format.formatter -> 'a cycle -> unit
(** Renders as [vc2 -> vc4 -> vc2]. *)
