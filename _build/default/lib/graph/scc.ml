(* Tarjan's SCC, iterative to be safe on large dependency graphs. *)

type info = { mutable index : int; mutable lowlink : int; mutable on_stack : bool }

let components g =
  let info : (string, info) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    let iv = { index = !counter; lowlink = !counter; on_stack = true } in
    Hashtbl.add info v iv;
    incr counter;
    stack := v :: !stack;
    List.iter
      (fun (w, _) ->
        match Hashtbl.find_opt info w with
        | None ->
            strongconnect w;
            let iw = Hashtbl.find info w in
            iv.lowlink <- min iv.lowlink iw.lowlink
        | Some iw -> if iw.on_stack then iv.lowlink <- min iv.lowlink iw.index)
      (Digraph.successors g v);
    if iv.lowlink = iv.index then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            (Hashtbl.find info w).on_stack <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      sccs := List.sort String.compare (pop []) :: !sccs
    end
  in
  List.iter
    (fun v -> if not (Hashtbl.mem info v) then strongconnect v)
    (Digraph.vertices g);
  List.rev !sccs

let cyclic_components g =
  let loops = List.map fst (Digraph.self_loops g) in
  List.filter
    (fun comp ->
      match comp with
      | [ v ] -> List.mem v loops
      | [] -> false
      | _ :: _ :: _ -> true)
    (components g)

let is_acyclic g = cyclic_components g = []
