lib/mcheck/mstate.ml: Array Format Fun List Marshal Option Printf String
