lib/mcheck/mstate.mli: Format
