lib/mcheck/semantics.ml: Fun List Mapping Mstate Option Printf Protocol String
