lib/mcheck/semantics.mli: Mapping Mstate Protocol
