lib/mcheck/explore.mli: Format Semantics
