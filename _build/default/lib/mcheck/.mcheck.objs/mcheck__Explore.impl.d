lib/mcheck/explore.ml: Format Hashtbl List Mstate Printf Queue Semantics String Sys
