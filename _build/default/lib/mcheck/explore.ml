type violation = {
  kind : [ `Coherence | `Stale_data | `Unhandled | `Deadlock ];
  detail : string;
  trace : string list;
}

type result = {
  explored : int;
  transitions : int;
  max_depth : int;
  elapsed : float;
  violation : violation option;
  complete : bool;
}

let classify detail =
  if String.length detail >= 5 && String.sub detail 0 5 = "stale" then
    `Stale_data
  else `Unhandled

let run ?(max_states = 200_000) ?(symmetry = false) ?tables config =
  let tables = match tables with Some t -> t | None -> Semantics.load_tables () in
  let t0 = Sys.time () in
  let state_key =
    if symmetry then Mstate.canonical_key ~nodes:config.Semantics.nodes
    else Mstate.key
  in
  let initial = Mstate.initial ~nodes:config.Semantics.nodes ~addrs:config.addrs in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let parent : (string, string * string) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let initial_key = state_key initial in
  Hashtbl.add visited initial_key ();
  Queue.add (initial, initial_key, 0) queue;
  let explored = ref 0 and transitions = ref 0 and max_depth = ref 0 in
  let trace_to key =
    let rec go key acc =
      match Hashtbl.find_opt parent key with
      | None -> acc
      | Some (pkey, label) -> go pkey (label :: acc)
    in
    go key []
  in
  let finish violation complete =
    {
      explored = !explored;
      transitions = !transitions;
      max_depth = !max_depth;
      elapsed = Sys.time () -. t0;
      violation;
      complete;
    }
  in
  let exception Found of violation in
  try
    while not (Queue.is_empty queue) do
      if !explored >= max_states then raise Exit;
      let st, key, depth = Queue.take queue in
      incr explored;
      if depth > !max_depth then max_depth := depth;
      (match Semantics.state_violations config st with
      | [] -> ()
      | detail :: _ ->
          raise (Found { kind = `Coherence; detail; trace = trace_to key }));
      let succs = Semantics.successors tables config st in
      if succs = [] && not (Mstate.quiescent st) then
        raise
          (Found
             {
               kind = `Deadlock;
               detail = "no transition enabled but work is pending";
               trace = trace_to key;
             });
      List.iter
        (fun (label, outcome) ->
          incr transitions;
          match outcome with
          | Semantics.Broken detail ->
              raise
                (Found
                   {
                     kind = classify detail;
                     detail;
                     trace = trace_to key @ [ label ];
                   })
          | Semantics.Next st' ->
              let key' = state_key st' in
              if not (Hashtbl.mem visited key') then begin
                Hashtbl.add visited key' ();
                Hashtbl.add parent key' (key, label);
                Queue.add (st', key', depth + 1) queue
              end)
        succs
    done;
    finish None true
  with
  | Exit -> finish None false
  | Found v -> finish (Some v) true

let pp_result fmt r =
  Format.fprintf fmt
    "states=%d transitions=%d depth=%d time=%.2fs %s" r.explored r.transitions
    r.max_depth r.elapsed
    (match r.violation with
    | None -> if r.complete then "no violations" else "bounded, no violations"
    | Some v ->
        Printf.sprintf "VIOLATION %s (trace length %d)" v.detail
          (List.length v.trace))
