(** Concrete protocol configurations for the explicit-state baseline
    model checker (the comparator of section 4.2: "Model checkers … have
    a lot of reasoning power … However, … the controller tables need to
    be extensively abstracted to avoid the state explosion problem").

    A state fixes [nodes] caches and [addrs] cache lines homed at one
    directory, plus every in-flight message.  Channels are FIFO per
    (source, destination, class) — request, response, snoop and
    memory-path traffic travel on separate channels, which is exactly the
    virtual-channel structure of the protocol (and what makes the
    writeback-absorption path sound: the memory queue orders the absorbed
    [mwrite] before the refetching [mread]).

    Data is abstracted to a freshness bit: a data-bearing message or the
    memory copy is {e fresh} when it reflects the latest write to the
    line.  A completing read that delivers stale data is a coherence
    violation — this is what catches writeback races. *)

(** Endpoints: nodes are [0 .. n-1]. *)
val dir : int
(** The home directory/protocol engine (-1). *)

val mem : int
(** The home memory controller (-2). *)

type msg = {
  m : string;  (** message name, e.g. ["readex"] *)
  src : int;
  dst : int;
  addr : int;
  fresh : bool;  (** data-bearing payload reflects the latest write *)
}

type busy = {
  bst : string;  (** busy state, e.g. ["Busy-readex-sd"] *)
  requester : int;
  acks : int;  (** bitmask of nodes still owing snoop responses *)
  snapshot : int;  (** sharer set captured when the entry was allocated *)
  data_fresh : bool;  (** freshness of the data collected so far *)
}

type addr_state = {
  dirst : string;  (** "I" | "SI" | "MESI" *)
  sharers : int;  (** bitmask *)
  busy : busy option;
  mem_fresh : bool;  (** home memory holds the latest data *)
}

type t = {
  addrs : addr_state list;  (** per address *)
  caches : string list list;  (** [caches.(node).(addr)] in MESI *)
  pend : string option list list;  (** outstanding processor op per node/addr *)
  queues : ((int * int * string) * msg list) list;
      (** FIFO per (src, dst, class); kept sorted by key, no empties *)
}

val initial : nodes:int -> addrs:int -> t
(** Everything invalid, memory fresh, queues empty. *)

val key : t -> string
(** Canonical serialization for the visited set. *)

val permute : (int -> int) -> nodes:int -> t -> t
(** Rename the nodes of a state by a permutation of [0 .. nodes-1]:
    caches, pending ops, presence bitmasks, busy requesters/acks and
    message endpoints all move together. *)

val canonical_key : nodes:int -> t -> string
(** Symmetry-reduced key: the lexicographically smallest {!key} over all
    node permutations.  Nodes are fully interchangeable in the protocol,
    so exploring one representative per orbit is sound (Murphi's
    scalarset reduction); worthwhile up to the 4-node configurations the
    explosion experiments use. *)

val enqueue : t -> cls:string -> msg -> t
val dequeue : t -> int * int * string -> (msg * t) option
val queue_heads : t -> ((int * int * string) * msg) list

val addr_state : t -> int -> addr_state
val set_addr : t -> int -> addr_state -> t
val cache : t -> node:int -> addr:int -> string
val set_cache : t -> node:int -> addr:int -> string -> t
val pending : t -> node:int -> addr:int -> string option
val set_pending : t -> node:int -> addr:int -> string option -> t

val popcount : int -> int
val pv_encode : int -> string
(** Bitmask cardinality as the zero/one/gone table encoding. *)

val quiescent : t -> bool
(** No in-flight messages, no busy entries, no pending processor ops. *)

val pp : Format.formatter -> t -> unit
