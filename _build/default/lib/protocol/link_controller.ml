open Ctrl_spec

(* Every message that crosses a quad boundary in some role. *)
let inter_quad_messages =
  Message.names
    (List.filter
       (fun m -> m.Message.src <> m.Message.dst)
       Message.all)

let inputs =
  [
    "inmsg", inter_quad_messages;
    "inport", [ "north"; "south"; "east"; "west" ];
    "linkst", [ "up"; "down" ];
  ]

let outputs =
  [
    "fwdmsg", inter_quad_messages;
    "outport", [ "fabric" ];
    "linkevent", [ "crcdrop" ];
  ]

let scenarios =
  [
    {
      label = "forward-up";
      when_ =
        [
          "inmsg", Among inter_quad_messages;
          "inport", Among [ "north"; "south"; "east"; "west" ];
          "linkst", V "up";
        ];
      emit = [ "fwdmsg", Copy "inmsg"; "outport", Out "fabric" ];
    };
    {
      label = "drop-down";
      when_ =
        [
          "inmsg", Among inter_quad_messages;
          "inport", Among [ "north"; "south"; "east"; "west" ];
          "linkst", V "down";
        ];
      emit = [ "linkevent", Out "crcdrop" ];
    };
  ]

let spec = make ~name:"LK" ~inputs ~outputs ~scenarios
let table () = Ctrl_spec.table spec
