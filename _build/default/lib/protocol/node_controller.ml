open Ctrl_spec

let inputs =
  [
    ( "inmsg",
      [ "data"; "datax"; "compl"; "retry"; "nack"; "iodata"; "iocompl";
        "intack"; "lockgrant"; "racfill"; "cinvack"; "cwbdata" ] );
    "inmsgsrc", [ "home"; "local" ];
    "inmsgdest", [ "local" ];
    "inmsgres", [ "respq"; "cacheq" ];
    ( "pendop",
      [ "read"; "write"; "rmw"; "ifetch"; "upgrade"; "wback"; "io"; "lockop";
        "syncop"; "introp" ] );
  ]

let outputs =
  [
    "cachemsg", [ "cfill"; "cinvreq"; "cwbreq" ];
    "cachemsgsrc", [ "local" ];
    "cachemsgdest", [ "local" ];
    "cachemsgres", [ "cacheq" ];
    "cachefill", [ "shared"; "excl" ];
    "procresult", [ "done"; "fault"; "retrylater" ];
    "nxtpendop", [ "none" ];
    (* the naive-retry seeded bug emits on these network columns *)
    "netmsg", [ "read"; "readex"; "upgrade" ];
    "ackmsg", [ "compl" ];
    "ackmsgsrc", [ "local" ];
    "ackmsgdest", [ "home" ];
    "ackmsgres", [ "ackq" ];
    "netmsgsrc", [ "local" ];
    "netmsgdest", [ "home" ];
    "netmsgres", [ "reqq" ];
  ]

let from_home label inmsg ~pendop ~emit =
  {
    label;
    when_ =
      ([
         "inmsg", V inmsg; "inmsgsrc", V "home"; "inmsgdest", V "local";
         "inmsgres", V "respq";
       ]
      @ match pendop with None -> [] | Some p -> [ "pendop", p ]);
    emit;
  }

let fill kind =
  [
    "cachemsg", Out "cfill"; "cachemsgsrc", Out "local";
    "cachemsgdest", Out "local"; "cachemsgres", Out "cacheq";
    "cachefill", Out kind;
  ]

let finish result = [ "procresult", Out result; "nxtpendop", Out "none" ]

(* Confirm an installed grant back to the directory. *)
let ack =
  [
    "ackmsg", Out "compl"; "ackmsgsrc", Out "local";
    "ackmsgdest", Out "home"; "ackmsgres", Out "ackq";
  ]

let scenarios =
  [
    from_home "data-read" "data"
      ~pendop:(Some (Among [ "read"; "ifetch" ]))
      ~emit:(fill "shared" @ finish "done" @ ack);
    from_home "datax-write" "datax"
      ~pendop:(Some (Among [ "write"; "rmw"; "upgrade" ]))
      ~emit:(fill "excl" @ finish "done" @ ack);
    from_home "racfill-read" "racfill" ~pendop:(Some (V "read"))
      ~emit:(fill "shared" @ finish "done" @ ack);
    from_home "compl-upgrade" "compl" ~pendop:(Some (V "upgrade"))
      ~emit:(fill "excl" @ finish "done" @ ack);
    from_home "compl-wback" "compl" ~pendop:(Some (V "wback"))
      ~emit:(finish "done");
    from_home "compl-sync" "compl" ~pendop:(Some (V "syncop"))
      ~emit:(finish "done");
    from_home "compl-unlock" "compl" ~pendop:(Some (V "lockop"))
      ~emit:(finish "done");
    from_home "iodata-done" "iodata" ~pendop:(Some (V "io"))
      ~emit:(finish "done");
    from_home "iocompl-done" "iocompl" ~pendop:(Some (V "io"))
      ~emit:(finish "done");
    from_home "intack-done" "intack" ~pendop:(Some (V "introp"))
      ~emit:(finish "done");
    from_home "lockgrant-done" "lockgrant" ~pendop:(Some (V "lockop"))
      ~emit:(finish "done");
    (* retry: report to the processor interface; no network reissue *)
    from_home "retry-backoff" "retry" ~pendop:None
      ~emit:(finish "retrylater");
    from_home "nack-fault" "nack" ~pendop:None ~emit:(finish "fault");
    (* cache interface completions *)
    {
      label = "cinvack-done";
      when_ =
        [
          "inmsg", V "cinvack"; "inmsgsrc", V "local";
          "inmsgdest", V "local"; "inmsgres", V "cacheq";
        ];
      emit = finish "done";
    };
    {
      label = "cwbdata-done";
      when_ =
        [
          "inmsg", V "cwbdata"; "inmsgsrc", V "local";
          "inmsgdest", V "local"; "inmsgres", V "cacheq";
        ];
      emit = finish "done";
    };
  ]

(* The seeded bug for E11: reissuing the pending request directly while
   consuming the retry response makes VC0 progress depend on VC3 space,
   closing the VC0 -> VC1 -> VC2 -> VC3 -> VC0 cycle. *)
let naive_retry_scenario =
  {
    label = "retry-naive-reissue";
    when_ =
      [
        "inmsg", V "retry"; "inmsgsrc", V "home"; "inmsgdest", V "local";
        "inmsgres", V "respq"; "pendop", V "read";
      ];
    emit =
      [
        "netmsg", Out "read"; "netmsgsrc", Out "local";
        "netmsgdest", Out "home"; "netmsgres", Out "reqq";
      ];
  }

let spec = make ~name:"N" ~inputs ~outputs ~scenarios
let table () = Ctrl_spec.table spec
