module Topology = Topology
module Message = Message
module State = State
module Ctrl_spec = Ctrl_spec
module Dir_controller = Dir_controller
module Mem_controller = Mem_controller
module Cache_controller = Cache_controller
module Node_controller = Node_controller
module Rac_controller = Rac_controller
module Io_controller = Io_controller
module Pif_controller = Pif_controller
module Link_controller = Link_controller

type controller = {
  spec : Ctrl_spec.t;
  location : Topology.node_class;
  in_triples : (string * string * string) list;
  out_triples : (string * string * string) list;
  include_in_deadlock : bool;
}

let directory =
  {
    spec = Dir_controller.spec;
    location = Topology.Home;
    in_triples = [ "inmsg", "inmsgsrc", "inmsgdest" ];
    out_triples =
      [
        "locmsg", "locmsgsrc", "locmsgdest";
        "remmsg", "remmsgsrc", "remmsgdest";
        "memmsg", "memmsgsrc", "memmsgdest";
      ];
    include_in_deadlock = true;
  }

let memory =
  {
    spec = Mem_controller.spec;
    location = Topology.Home;
    in_triples = [ "inmsg", "inmsgsrc", "inmsgdest" ];
    out_triples = [ "outmsg", "outmsgsrc", "outmsgdest" ];
    include_in_deadlock = true;
  }

let cache =
  {
    spec = Cache_controller.spec;
    location = Topology.Remote;
    in_triples = [ "inmsg", "inmsgsrc", "inmsgdest" ];
    out_triples =
      [ "respmsg", "respmsgsrc", "respmsgdest";
        "nodemsg", "nodemsgsrc", "nodemsgdest" ];
    include_in_deadlock = true;
  }

let node =
  {
    spec = Node_controller.spec;
    location = Topology.Local;
    in_triples = [ "inmsg", "inmsgsrc", "inmsgdest" ];
    out_triples =
      [ "cachemsg", "cachemsgsrc", "cachemsgdest";
        "netmsg", "netmsgsrc", "netmsgdest";
        "ackmsg", "ackmsgsrc", "ackmsgdest" ];
    include_in_deadlock = true;
  }

let rac =
  {
    spec = Rac_controller.spec;
    location = Topology.Remote;
    in_triples = [ "inmsg", "inmsgsrc", "inmsgdest" ];
    out_triples =
      [
        "respmsg", "respmsgsrc", "respmsgdest";
        "evictmsg", "evictmsgsrc", "evictmsgdest";
        "fwdmsg", "fwdmsgsrc", "fwdmsgdest";
      ];
    include_in_deadlock = true;
  }

let io =
  {
    spec = Io_controller.spec;
    location = Topology.Home;
    in_triples = [ "inmsg", "inmsgsrc", "inmsgdest" ];
    out_triples = [ "outmsg", "outmsgsrc", "outmsgdest" ];
    include_in_deadlock = true;
  }

let pif =
  {
    spec = Pif_controller.spec;
    location = Topology.Local;
    in_triples = [];
    out_triples = [ "reqmsg", "reqmsgsrc", "reqmsgdest" ];
    include_in_deadlock = true;
  }

let link =
  {
    spec = Link_controller.spec;
    location = Topology.Home;
    in_triples = [];
    out_triples = [];
    include_in_deadlock = false;
  }

let controllers = [ directory; memory; cache; node; rac; io; pif; link ]

let deadlock_controllers =
  List.filter (fun c -> c.include_in_deadlock) controllers

let find name =
  List.find_opt (fun c -> Ctrl_spec.name c.spec = name) controllers

let tables () = List.map (fun c -> Ctrl_spec.table c.spec) controllers

let database () =
  Message.register (Relalg.Database.of_tables (tables ()))

let total_rows () =
  List.fold_left (fun acc t -> acc + Relalg.Table.cardinality t) 0 (tables ())
