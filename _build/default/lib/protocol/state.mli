(** Protocol state spaces and their table encodings (section 2 of the
    paper).

    Cache lines use MESI.  The directory tracks each line with a directory
    state [I] / [SI] / [MESI] plus a presence vector; in-flight
    transactions are tracked in a separate {e busy directory} whose entries
    carry Busy states of the form [Busy-<txn>-<pending>] — the paper's
    Busy-sd / Busy-s / Busy-d discipline, one family per transaction type
    (~40 Busy states in all).

    Presence vectors are encoded in tables the way the paper's Figure 3
    encodes them: the current value as [zero] / [one] / [gone] (no sharers,
    exactly one, more than one) and next-state updates as operations
    [inc] / [dec] / [repl] / [drepl]. *)

(** {1 Cache states (MESI)} *)

type cache_state = M | E | S | I_cache

val cache_state_to_string : cache_state -> string
val cache_state_of_string : string -> cache_state option
val all_cache_states : cache_state list

(** {1 Directory states} *)

type dir_state =
  | Dir_i  (** not cached anywhere *)
  | Dir_si  (** shared or invalid: clean copies may exist *)
  | Dir_mesi  (** possibly modified/exclusive at exactly one node *)

val dir_state_to_string : dir_state -> string
val dir_state_of_string : string -> dir_state option
val all_dir_states : dir_state list

(** {1 Busy states} *)

(** Transaction families that allocate a busy-directory entry. *)
type txn =
  | T_read
  | T_fetch
  | T_readex
  | T_swap
  | T_upgrade
  | T_wb
  | T_flush
  | T_repl
  | T_ioread
  | T_iowrite
  | T_iormw
  | T_lock
  | T_racevict

val txn_to_string : txn -> string
val all_txns : txn list

val txn_of_request : string -> txn option
(** The busy family a local request message maps to, e.g.
    [txn_of_request "readex" = Some T_readex]. *)

(** What the directory is still waiting for.  The last three states
    implement writeback-race absorption: when a flush snoop crosses the
    owner's in-flight [wb], the directory absorbs the writeback instead of
    retrying it (otherwise the requester would read stale memory). *)
type pending =
  | Sd  (** both snoop response(s) and a memory response *)
  | S  (** snoop response(s) only *)
  | D  (** memory response only *)
  | W  (** snack seen from the owner: its writeback is in flight *)
  | Mw  (** writeback absorbed and forwarded: memory ack pending, then read *)
  | Sm  (** writeback absorbed early: snoop response and memory ack pending *)
  | Sr  (** writeback absorbed and ordered: snoop response pending, then refetch *)
  | C
      (** data granted: awaiting the requester's completion ack (the
          paper: a transaction "must complete with either D receiving a
          compl response or with D sending such a response").  Holding
          the entry until the ack arrives keeps later snoops from
          overtaking the in-flight grant. *)

val pending_to_string : pending -> string

type busy = { txn : txn; pending : pending }

val busy_to_string : busy -> string
(** e.g. [Busy-readex-sd]. *)

val busy_of_string : string -> busy option

val coherent_txns : txn list
(** The cacheable-data families (read, fetch, readex, swap, upgrade) that
    can race with an owner writeback. *)

val all_busy_states : busy list
(** [txn × {sd, s, d}] plus [coherent_txns × {w, m, sm, sr, c}] — 64
    states, the order of the paper's "around 40 Busy states". *)

val busy_strings : string list

(** {1 Busy-directory state column}

    The busy-directory state column [bdirst] ranges over ["I"] (no entry)
    plus every busy state. *)

val bdir_domain : string list

(** {1 Presence-vector encodings} *)

val pv_values : string list
(** [zero; one; gone]. *)

val pv_ops : string list
(** [inc; dec; repl; drepl] — next-presence-vector operations. *)

val lookup_values : string list
(** [hit; miss] — the directory / busy-directory lookup-result columns. *)

val apply_pv_op : string -> string -> string option
(** [apply_pv_op op pv]: abstract transition of the encoded presence
    vector, e.g. [apply_pv_op "dec" "one" = Some "zero"];
    [apply_pv_op "dec" "gone"] is [Some "gone"] (still >1 or =1 — the
    abstraction keeps [gone] because more than one sharer minus one may
    still exceed one).  [None] when the operation is illegal in that
    state (e.g. [dec] of [zero]). *)
