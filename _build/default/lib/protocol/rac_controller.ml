open Ctrl_spec

let inputs =
  [
    "inmsg", [ "sinv"; "sread"; "sflush"; "sdown"; "evict"; "fillin" ];
    "inmsgsrc", [ "home"; "local" ];
    "inmsgdest", [ "remote"; "local" ];
    "inmsgres", [ "snpq"; "evq"; "fillq" ];
    "racst", [ "M"; "E"; "S"; "I" ];
    "racfull", [ "yes"; "no" ];
  ]

let outputs =
  [
    "respmsg", [ "idone"; "sdata"; "sack"; "snack"; "swbdata" ];
    "respmsgsrc", [ "remote" ];
    "respmsgdest", [ "home" ];
    "respmsgres", [ "respq" ];
    "evictmsg", [ "racevict"; "wb" ];
    "evictmsgsrc", [ "local" ];
    "evictmsgdest", [ "home" ];
    "evictmsgres", [ "reqq" ];
    "fwdmsg", [ "racfill" ];
    "fwdmsgsrc", [ "local" ];
    "fwdmsgdest", [ "local" ];
    "fwdmsgres", [ "cacheq" ];
    "nxtracst", [ "M"; "E"; "S"; "I" ];
  ]

let snoop label inmsg racst ~resp ~nxt =
  {
    label;
    when_ =
      [
        "inmsg", V inmsg; "inmsgsrc", V "home"; "inmsgdest", V "remote";
        "inmsgres", V "snpq"; "racst", racst;
      ];
    emit =
      [
        "respmsg", Out resp; "respmsgsrc", Out "remote";
        "respmsgdest", Out "home"; "respmsgres", Out "respq";
        "nxtracst", Out nxt;
      ];
  }

let evict label racst ~msg ~nxt =
  {
    label;
    when_ =
      [
        "inmsg", V "evict"; "inmsgsrc", V "local"; "inmsgdest", V "local";
        "inmsgres", V "evq"; "racst", racst; "racfull", V "yes";
      ];
    emit =
      [
        "evictmsg", Out msg; "evictmsgsrc", Out "local";
        "evictmsgdest", Out "home"; "evictmsgres", Out "reqq";
        "nxtracst", Out nxt;
      ];
  }

let scenarios =
  [
    snoop "sinv-shared" "sinv" (Among [ "S"; "E" ]) ~resp:"idone" ~nxt:"I";
    snoop "sinv-gone" "sinv" (V "I") ~resp:"idone" ~nxt:"I";
    snoop "sread-dirty" "sread" (V "M") ~resp:"sdata" ~nxt:"S";
    snoop "sread-clean" "sread" (V "E") ~resp:"sdata" ~nxt:"S";
    snoop "sread-gone" "sread" (Among [ "S"; "I" ]) ~resp:"snack" ~nxt:"I";
    snoop "sflush-dirty" "sflush" (V "M") ~resp:"swbdata" ~nxt:"I";
    snoop "sflush-clean" "sflush" (V "E") ~resp:"sdata" ~nxt:"I";
    snoop "sflush-gone" "sflush" (Among [ "S"; "I" ]) ~resp:"snack" ~nxt:"I";
    snoop "sdown-clean" "sdown" (V "E") ~resp:"sack" ~nxt:"S";
    snoop "sdown-dirty" "sdown" (V "M") ~resp:"sdata" ~nxt:"S";
    snoop "sdown-gone" "sdown" (Among [ "S"; "I" ]) ~resp:"snack" ~nxt:"I";
    (* capacity evictions from the background engine *)
    evict "evict-shared" (Among [ "S"; "E" ]) ~msg:"racevict" ~nxt:"I";
    evict "evict-dirty" (V "M") ~msg:"wb" ~nxt:"I";
    (* fills delivered to the requesting node inside the quad *)
    {
      label = "fill-forward";
      when_ =
        [
          "inmsg", V "fillin"; "inmsgsrc", V "local"; "inmsgdest", V "local";
          "inmsgres", V "fillq";
        ];
      emit =
        [
          "fwdmsg", Out "racfill"; "fwdmsgsrc", Out "local";
          "fwdmsgdest", Out "local"; "fwdmsgres", Out "cacheq";
          "nxtracst", Out "S";
        ];
    };
  ]

let spec = make ~name:"RAC" ~inputs ~outputs ~scenarios
let table () = Ctrl_spec.table spec
