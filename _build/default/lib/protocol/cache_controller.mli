(** The cache (snoop) controller table C, one per node.

    Answers the directory's snoop requests against the node's MESI line
    state and serves the node controller's internal cache interface.
    Snoop rows are the source of the VC1 → VC2 dependencies in the VCG:
    a snoop arriving on VC1 can only be consumed if its response can be
    queued on VC2.

    Reconstruction conventions: [sinv] is only ever sent to clean sharers
    (the directory flushes dirty owners with [sflush]), so [sinv] against
    [M] has no row; a snoop finding [I] means the line was silently
    evicted (E-state replacement) and answers [idone] (for sinv) or
    [snack] (data-expecting snoops). *)

val spec : Ctrl_spec.t
val table : unit -> Relalg.Table.t
