lib/protocol/link_controller.ml: Ctrl_spec List Message
