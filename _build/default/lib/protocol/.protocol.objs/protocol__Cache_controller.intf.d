lib/protocol/cache_controller.mli: Ctrl_spec Relalg
