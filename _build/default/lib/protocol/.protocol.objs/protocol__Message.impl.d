lib/protocol/message.ml: Hashtbl List Relalg Topology
