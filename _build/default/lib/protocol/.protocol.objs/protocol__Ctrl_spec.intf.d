lib/protocol/ctrl_spec.mli: Relalg
