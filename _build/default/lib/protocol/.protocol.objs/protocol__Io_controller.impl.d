lib/protocol/io_controller.ml: Ctrl_spec
