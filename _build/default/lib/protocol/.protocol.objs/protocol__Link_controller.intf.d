lib/protocol/link_controller.mli: Ctrl_spec Relalg
