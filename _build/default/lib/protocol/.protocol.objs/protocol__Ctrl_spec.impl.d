lib/protocol/ctrl_spec.ml: Buffer Expr Format Hashtbl List Printf Relalg Solver Table Value
