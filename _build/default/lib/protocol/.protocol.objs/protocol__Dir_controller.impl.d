lib/protocol/dir_controller.ml: Array Ctrl_spec List Message Printf Relalg Schema State String Table Topology Value
