lib/protocol/pif_controller.mli: Ctrl_spec Relalg
