lib/protocol/topology.mli:
