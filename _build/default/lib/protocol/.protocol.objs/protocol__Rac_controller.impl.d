lib/protocol/rac_controller.ml: Ctrl_spec
