lib/protocol/state.mli:
