lib/protocol/mem_controller.ml: Ctrl_spec
