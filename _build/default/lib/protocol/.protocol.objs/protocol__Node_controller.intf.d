lib/protocol/node_controller.mli: Ctrl_spec Relalg
