lib/protocol/pif_controller.ml: Ctrl_spec Message
