lib/protocol/io_controller.mli: Ctrl_spec Relalg
