lib/protocol/state.ml: List Printf
