lib/protocol/topology.ml: List Printf
