lib/protocol/message.mli: Relalg Topology
