lib/protocol/node_controller.ml: Ctrl_spec
