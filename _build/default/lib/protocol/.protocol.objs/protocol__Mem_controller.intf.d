lib/protocol/mem_controller.mli: Ctrl_spec Relalg
