lib/protocol/cache_controller.ml: Ctrl_spec
