lib/protocol/dir_controller.mli: Ctrl_spec Relalg
