lib/protocol/rac_controller.mli: Ctrl_spec Relalg
