open Ctrl_spec

let inputs =
  [
    "inmsg", [ "mioread"; "miowrite" ];
    "inmsgsrc", [ "home" ];
    "inmsgdest", [ "home" ];
    "inmsgres", [ "memq" ];
    "devst", [ "ready"; "busy" ];
  ]

let outputs =
  [
    "outmsg", [ "mdata"; "mack"; "mnack" ];
    "outmsgsrc", [ "home" ];
    "outmsgdest", [ "home" ];
    "outmsgres", [ "respq" ];
    "devop", [ "rd"; "wr" ];
  ]

let scen label inmsg devst outmsg devop =
  {
    label;
    when_ =
      [
        "inmsg", V inmsg; "inmsgsrc", V "home"; "inmsgdest", V "home";
        "inmsgres", V "memq"; "devst", V devst;
      ];
    emit =
      [
        "outmsg", Out outmsg; "outmsgsrc", Out "home";
        "outmsgdest", Out "home"; "outmsgres", Out "respq";
      ]
      @ (match devop with None -> [] | Some op -> [ "devop", Out op ]);
  }

let scenarios =
  [
    scen "ioread-ready" "mioread" "ready" "mdata" (Some "rd");
    scen "ioread-busy" "mioread" "busy" "mnack" None;
    scen "iowrite-ready" "miowrite" "ready" "mack" (Some "wr");
    scen "iowrite-busy" "miowrite" "busy" "mnack" None;
  ]

let spec = make ~name:"IO" ~inputs ~outputs ~scenarios
let table () = Ctrl_spec.table spec
