type cache_state = M | E | S | I_cache

let cache_state_to_string = function M -> "M" | E -> "E" | S -> "S" | I_cache -> "I"

let cache_state_of_string = function
  | "M" -> Some M
  | "E" -> Some E
  | "S" -> Some S
  | "I" -> Some I_cache
  | _ -> None

let all_cache_states = [ M; E; S; I_cache ]

type dir_state = Dir_i | Dir_si | Dir_mesi

let dir_state_to_string = function
  | Dir_i -> "I"
  | Dir_si -> "SI"
  | Dir_mesi -> "MESI"

let dir_state_of_string = function
  | "I" -> Some Dir_i
  | "SI" -> Some Dir_si
  | "MESI" -> Some Dir_mesi
  | _ -> None

let all_dir_states = [ Dir_i; Dir_si; Dir_mesi ]

type txn =
  | T_read
  | T_fetch
  | T_readex
  | T_swap
  | T_upgrade
  | T_wb
  | T_flush
  | T_repl
  | T_ioread
  | T_iowrite
  | T_iormw
  | T_lock
  | T_racevict

let txn_to_string = function
  | T_read -> "read"
  | T_fetch -> "fetch"
  | T_readex -> "readex"
  | T_swap -> "swap"
  | T_upgrade -> "upgrade"
  | T_wb -> "wb"
  | T_flush -> "flush"
  | T_repl -> "repl"
  | T_ioread -> "ioread"
  | T_iowrite -> "iowrite"
  | T_iormw -> "iormw"
  | T_lock -> "lock"
  | T_racevict -> "racevict"

let all_txns =
  [
    T_read; T_fetch; T_readex; T_swap; T_upgrade; T_wb; T_flush; T_repl;
    T_ioread; T_iowrite; T_iormw; T_lock; T_racevict;
  ]

let txn_of_request name =
  List.find_opt (fun t -> txn_to_string t = name) all_txns

type pending = Sd | S | D | W | Mw | Sm | Sr | C

let pending_to_string = function
  | Sd -> "sd"
  | S -> "s"
  | D -> "d"
  | W -> "w"
  | Mw -> "m"
  | Sm -> "sm"
  | Sr -> "sr"
  | C -> "c"

type busy = { txn : txn; pending : pending }

let busy_to_string b =
  Printf.sprintf "Busy-%s-%s" (txn_to_string b.txn) (pending_to_string b.pending)

let coherent_txns = [ T_read; T_fetch; T_readex; T_swap; T_upgrade ]

let all_busy_states =
  List.concat_map
    (fun txn -> List.map (fun pending -> { txn; pending }) [ Sd; S; D ])
    all_txns
  @ List.concat_map
      (fun txn -> List.map (fun pending -> { txn; pending }) [ W; Mw; Sm; Sr; C ])
      coherent_txns

let busy_of_string s =
  List.find_opt (fun b -> busy_to_string b = s) all_busy_states

let busy_strings = List.map busy_to_string all_busy_states
let bdir_domain = "I" :: busy_strings
let pv_values = [ "zero"; "one"; "gone" ]
let pv_ops = [ "inc"; "dec"; "repl"; "drepl" ]
let lookup_values = [ "hit"; "miss" ]

(* Abstract presence-vector arithmetic over the zero/one/gone encoding.
   [gone] means "more than one sharer": decrementing it may leave one or
   many, so the abstraction conservatively stays at [gone] until an exact
   count is observable; the busy-directory pv column is what tracks the
   precise remaining-ack count in the protocol, and it is decremented with
   the same rules. *)
let apply_pv_op op pv =
  match op, pv with
  | "inc", "zero" -> Some "one"
  | "inc", ("one" | "gone") -> Some "gone"
  | "dec", "one" -> Some "zero"
  | "dec", "gone" -> Some "gone"
  | "dec", "zero" -> None
  | "repl", ("zero" | "one" | "gone") -> Some "one"
  | "drepl", "one" -> Some "one"
  | "drepl", "gone" -> Some "gone"
  | "drepl", "zero" -> None
  | _ -> None
