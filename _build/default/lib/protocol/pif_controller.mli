(** The processor-interface controller table PIF, one per processor.

    Turns processor operations (loads, stores, atomics, I/O, locks) into
    protocol requests on the request channel (VC0), or completes them
    locally on a cache hit.  Its inputs arrive from the processor port,
    not from a virtual channel, so PIF rows induce no channel
    dependencies — transactions {e originate} here, which is what lets
    retry-backoff reissue safely (see {!Node_controller}). *)

val spec : Ctrl_spec.t
val table : unit -> Relalg.Table.t
