(** The home memory controller table M.

    Receives directory-to-memory requests on the memory path (the paper's
    VC4 in the debugged channel assignment) and answers on the home
    response path (VC2): [mread] → [mdata], [mwrite] → [mack], [mrmw] →
    [mdata].  An ECC-style error state produces [mnack], exercising D's
    abort path.  This controller is one half of the paper's Figure 4
    deadlock: its dependency row (mwrite in on VC4, mack out on VC2) is
    the paper's R1. *)

val spec : Ctrl_spec.t
val table : unit -> Relalg.Table.t
