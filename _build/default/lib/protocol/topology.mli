(** System topology: node roles and quad-placement relations.

    ASURA is a group of up to 4 quads, 4 nodes per quad, 2–4 processors
    per node, with one protocol engine (directory) per quad.  For static
    analysis only three {e roles} matter (section 2.1): the [Local] node
    that initiates a transaction, the [Home] node owning the memory and
    directory for the line, and [Remote] nodes that may cache it.

    Virtual channels are physical-channel partitions {e between quads}, so
    two roles placed in the same quad share channels.  The five possible
    quad placements of (L, H, R) — section 4.1 — drive the relaxed
    dependency composition. *)

type node_class = Local | Home | Remote

val node_class_to_string : node_class -> string
(** ["local"], ["home"], ["remote"] — the encodings stored in tables. *)

val node_class_of_string : string -> node_class option
val all_node_classes : node_class list

(** A placement is a partition of [{L, H, R}] into quads. *)
type placement =
  | All_same  (** L=H=R *)
  | Lh_same  (** L=H, R apart *)
  | Hr_same  (** H=R, L apart *)
  | Lr_same  (** L=R, H apart *)
  | All_distinct  (** L, H, R pairwise distinct quads *)

val all_placements : placement list
(** All five, with [All_distinct] first (the exact-match base case). *)

val placement_to_string : placement -> string
(** Paper notation, e.g. ["L<>H=R"] for {!Hr_same}. *)

val same_quad : placement -> node_class -> node_class -> bool

val canon : placement -> node_class -> node_class
(** Representative of a role's quad-equivalence class, choosing the
    smallest of [Local < Home < Remote] in the class.  Two roles share a
    quad iff their canons coincide; rewriting dependency rows through
    [canon] implements the paper's "modify R2 to R2'" step. *)

val canon_string : placement -> string -> string
(** {!canon} lifted to table encodings; non-role strings pass through. *)

(** {1 Concrete system instances} (used by the simulator and the
    model-checker baseline) *)

type system = {
  quads : int;  (** 1–4 *)
  nodes_per_quad : int;  (** up to 4 *)
}

val default_system : system
(** 4 quads × 4 nodes — the full ASURA configuration. *)

val node_count : system -> int
val quad_of_node : system -> int -> int
(** @raise Invalid_argument on an out-of-range node id. *)

val placement_of : system -> local:int -> home:int -> remote:int -> placement
(** Classify a concrete (local, home, remote) node triple. *)
