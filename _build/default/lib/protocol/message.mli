(** The protocol message inventory (Figure 1 of the paper).

    The paper's protocol uses "around 50 different types of messages",
    classified as requests and responses, exchanged among the directory,
    memory, node, cache and remote-access-cache controllers.  The paper
    names only a subset (readex, wb, sinv, mread, data, idone, compl,
    retry, Dfdback, …); the remainder is reconstructed here as a standard
    DASH-style directory protocol inventory and documented per message.

    Each message has a canonical (source-role, destination-role) pair used
    by the default virtual-channel assignment of section 4.2:
    - requests local → home on VC0,
    - snoop requests home → remote on VC1,
    - snoop and memory responses → home on VC2,
    - responses home → local on VC3,
    - memory-path requests home → home (directory to memory) on VC4. *)

type class_ = Request | Response

type category =
  | Coherent  (** cacheable memory transactions *)
  | Io  (** uncached I/O transactions *)
  | Special  (** state-communication messages (snoops, acks, retry) *)
  | Mem  (** directory-to-memory path inside the home quad *)
  | Impl  (** implementation-defined (section 5): [dfdback] *)

type t = {
  name : string;
  class_ : class_;
  category : category;
  src : Topology.node_class;  (** canonical sender role *)
  dst : Topology.node_class;  (** canonical receiver role *)
  description : string;
}

val all : t list
(** The full inventory, ~50 messages. *)

val find : string -> t option
val find_exn : string -> t
(** @raise Not_found. *)

val names : t list -> string list
val is_request : string -> bool
(** The paper's [isrequest(...)] SQL function; false for unknown names. *)

val is_response : string -> bool

val local_requests : string list
(** Requests a node issues to its home directory (arrive on VC0). *)

val snoop_requests : string list
(** Requests the directory issues to remote nodes (VC1). *)

val snoop_responses : string list
(** Responses remote nodes send back to the directory (VC2). *)

val local_responses : string list
(** Responses the directory sends to the requesting node (VC3). *)

val memory_requests : string list
(** Directory-to-memory requests (VC4 / dedicated path). *)

val memory_responses : string list
(** Memory-to-directory responses (VC2). *)

val register : Relalg.Database.t -> Relalg.Database.t
(** Register [isrequest] and [isresponse] as SQL boolean functions. *)
