open Ctrl_spec

let inputs =
  [
    ( "procop",
      [ "load"; "store"; "rmw"; "ifetch"; "ioload"; "iostore"; "iormwop";
        "lockacq"; "lockrel"; "membar"; "sendint"; "evictsh"; "evictmod" ] );
    "cachest", [ "M"; "E"; "S"; "I" ];
  ]

let outputs =
  [
    "reqmsg", Message.local_requests;
    "reqmsgsrc", [ "local" ];
    "reqmsgdest", [ "home" ];
    "reqmsgres", [ "reqq" ];
    ( "pendop",
      [ "read"; "write"; "rmw"; "ifetch"; "upgrade"; "wback"; "io"; "lockop";
        "syncop"; "introp" ] );
    "procresult", [ "done" ];
  ]

let issue ?fire_and_forget:(faf = false) label procop ?cachest reqmsg pendop =
  {
    label;
    when_ =
      ("procop", V procop)
      :: (match cachest with None -> [] | Some st -> [ "cachest", st ]);
    emit =
      [
        "reqmsg", Out reqmsg; "reqmsgsrc", Out "local";
        "reqmsgdest", Out "home"; "reqmsgres", Out "reqq";
      ]
      @
      if faf then [ "procresult", Out "done" ]
      else [ "pendop", Out pendop ];
  }

let hit label procop cachest =
  {
    label;
    when_ = [ "procop", V procop; "cachest", cachest ];
    emit = [ "procresult", Out "done" ];
  }

let scenarios =
  [
    (* cacheable loads *)
    hit "load-hit" "load" (Among [ "M"; "E"; "S" ]);
    issue "load-miss" "load" ~cachest:(V "I") "read" "read";
    hit "ifetch-hit" "ifetch" (Among [ "M"; "E"; "S" ]);
    issue "ifetch-miss" "ifetch" ~cachest:(V "I") "fetch" "ifetch";
    (* cacheable stores *)
    hit "store-hit" "store" (Among [ "M"; "E" ]);
    issue "store-upgrade" "store" ~cachest:(V "S") "upgrade" "upgrade";
    issue "store-miss" "store" ~cachest:(V "I") "readex" "write";
    (* atomics always serialize at the home *)
    issue "rmw-any" "rmw" "swap" "rmw";
    (* replacements *)
    issue "evict-dirty" "evictmod" ~cachest:(V "M") "wb" "wback";
    issue ~fire_and_forget:true "evict-clean" "evictsh"
      ~cachest:(Among [ "E"; "S" ]) "repl" "wback";
    (* uncached I/O *)
    issue "ioload" "ioload" "ioread" "io";
    issue "iostore" "iostore" "iowrite" "io";
    issue "iormw" "iormwop" "iormw" "io";
    (* synchronization and interrupts *)
    issue "lock-acquire" "lockacq" "lock" "lockop";
    issue "lock-release" "lockrel" "unlock" "lockop";
    issue "membar" "membar" "sync" "syncop";
    issue "sendint" "sendint" "intr" "introp";
  ]

let spec = make ~name:"PIF" ~inputs ~outputs ~scenarios
let table () = Ctrl_spec.table spec
