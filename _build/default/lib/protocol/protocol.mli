(** The complete ASURA protocol: all eight controller tables and the
    metadata the static checkers need.

    The paper: "A total of 8 controller database tables were automatically
    generated, updated and maintained throughout the development cycle."
    Here they are D (directory), M (memory), C (cache/snoop), N (node),
    RAC (remote access cache), IO (home device bus), PIF (processor
    interface) and LK (inter-quad link). *)

(** {1 Components} *)

module Topology = Topology
module Message = Message
module State = State
module Ctrl_spec = Ctrl_spec
module Dir_controller = Dir_controller
module Mem_controller = Mem_controller
module Cache_controller = Cache_controller
module Node_controller = Node_controller
module Rac_controller = Rac_controller
module Io_controller = Io_controller
module Pif_controller = Pif_controller
module Link_controller = Link_controller

(** {1 The eight controllers} *)

type controller = {
  spec : Ctrl_spec.t;
  location : Topology.node_class;
      (** the role at which this controller executes; resolves dont-care
          source/destination cells when matching against the
          virtual-channel assignment *)
  in_triples : (string * string * string) list;
      (** (message, source, destination) column triples for inputs *)
  out_triples : (string * string * string) list;
      (** same for outputs; one dependency-table entry per triple *)
  include_in_deadlock : bool;
      (** the link controller is the transport itself and is excluded *)
}

val directory : controller
val memory : controller
val cache : controller
val node : controller
val rac : controller
val io : controller
val pif : controller
val link : controller

val controllers : controller list
(** All eight, D first. *)

val deadlock_controllers : controller list
(** Those participating in the channel-dependency analysis. *)

val find : string -> controller option
(** Look up by table name (D, M, C, N, RAC, IO, PIF, LK). *)

val tables : unit -> Relalg.Table.t list
(** All eight generated tables (memoized). *)

val database : unit -> Relalg.Database.t
(** A database containing all eight tables, with [isrequest] /
    [isresponse] registered. *)

val total_rows : unit -> int
