type class_ = Request | Response
type category = Coherent | Io | Special | Mem | Impl

type t = {
  name : string;
  class_ : class_;
  category : category;
  src : Topology.node_class;
  dst : Topology.node_class;
  description : string;
}

let m name class_ category src dst description =
  { name; class_; category; src; dst; description }

open Topology

(* The inventory.  Messages named by the paper keep the paper's names
   (readex, wb, sinv, mread, data, idone, compl, retry, dfdback); the rest
   follow DASH-style conventions.  51 messages in total. *)
let all =
  [
    (* -- requests issued by a node to the home directory (VC0) ------- *)
    m "read" Request Coherent Local Home "read shared: cache read miss";
    m "fetch" Request Coherent Local Home "instruction fetch (read, never dirty)";
    m "readex" Request Coherent Local Home "read exclusive: write miss, wants M";
    m "swap" Request Coherent Local Home "atomic read-modify-write";
    m "upgrade" Request Coherent Local Home "S -> M ownership upgrade, no data";
    m "wb" Request Coherent Local Home "writeback of a modified line";
    m "flush" Request Coherent Local Home "write back and invalidate";
    m "repl" Request Coherent Local Home "replacement hint: shared line evicted";
    m "ioread" Request Io Local Home "uncached I/O read";
    m "iowrite" Request Io Local Home "uncached I/O write";
    m "iormw" Request Io Local Home "uncached I/O read-modify-write";
    m "sync" Request Special Local Home "memory-barrier completion probe";
    m "intr" Request Special Local Home "cross-node interrupt delivery";
    m "lock" Request Special Local Home "acquire a synchronization lock";
    m "unlock" Request Special Local Home "release a synchronization lock";
    (* -- snoop requests from the directory to remote nodes (VC1) ----- *)
    m "sinv" Request Special Home Remote "invalidate the cached copy";
    m "sread" Request Special Home Remote "fetch data from the M owner, downgrade to S";
    m "sflush" Request Special Home Remote "fetch data from the M owner and invalidate";
    m "sdown" Request Special Home Remote "downgrade E/M to S without data transfer";
    m "sioread" Request Io Home Remote "forward an I/O read to the owning device node";
    m "siowrite" Request Io Home Remote "forward an I/O write to the owning device node";
    (* -- snoop responses from remote nodes to the directory (VC2) ---- *)
    m "idone" Response Special Remote Home "invalidation done";
    m "sdata" Response Coherent Remote Home "snoop data from the previous owner";
    m "sack" Response Special Remote Home "snoop acknowledged, no data movement";
    m "snack" Response Special Remote Home "snoop missed: line no longer cached";
    m "swbdata" Response Coherent Remote Home "snoop data, owner also wrote back";
    (* -- responses from the directory to the requesting node (VC3) --- *)
    m "data" Response Coherent Home Local "data response, shared";
    m "datax" Response Coherent Home Local "data response, exclusive ownership";
    m "compl" Response Special Home Local "transaction complete";
    m "retry" Response Special Home Local "busy: reissue the request later";
    m "nack" Response Special Home Local "negative acknowledge";
    m "iodata" Response Io Home Local "I/O read data";
    m "iocompl" Response Io Home Local "I/O write complete";
    m "intack" Response Special Home Local "interrupt accepted";
    m "lockgrant" Response Special Home Local "lock acquired";
    m "racfill" Response Coherent Home Local "remote-access-cache line fill";
    (* -- directory-to-memory path inside the home quad (VC4) --------- *)
    m "mread" Request Mem Home Home "read a line from home memory";
    m "mwrite" Request Mem Home Home "write a line back to home memory";
    m "mrmw" Request Mem Home Home "atomic read-modify-write at memory";
    m "mupdate" Request Mem Home Home
      "sharing writeback: dirty snoop data copied back to memory, unacknowledged";
    m "mioread" Request Mem Home Home "I/O-space read at the home device";
    m "miowrite" Request Mem Home Home "I/O-space write at the home device";
    (* -- memory-to-directory responses (VC2 at home) ----------------- *)
    m "mdata" Response Mem Home Home "memory read data";
    m "mack" Response Mem Home Home "memory write acknowledged";
    m "mnack" Response Mem Home Home "memory operation refused (e.g. ECC error)";
    (* -- node-internal cache interface (within the local node) ------- *)
    m "cinvreq" Request Special Local Local "node controller asks its cache to invalidate";
    m "cinvack" Response Special Local Local "cache invalidation acknowledged";
    m "cwbreq" Request Special Local Local "node controller asks its cache for dirty data";
    m "cwbdata" Response Special Local Local "dirty data from the local cache";
    m "cfill" Response Special Local Local "line fill delivered to the local cache";
    (* -- remote-access-cache maintenance ------------------------------ *)
    m "racevict" Request Coherent Local Home "RAC capacity eviction of a shared line";
    (* -- implementation-defined (section 5) --------------------------- *)
    m "dfdback" Request Impl Home Home
      "feedback request: response reinjected into the request controller \
       when the directory update queue is full";
  ]

let by_name = Hashtbl.create 64
let () = List.iter (fun msg -> Hashtbl.replace by_name msg.name msg) all
let find name = Hashtbl.find_opt by_name name

let find_exn name =
  match find name with Some msg -> msg | None -> raise Not_found

let names msgs = List.map (fun msg -> msg.name) msgs

let is_request name =
  match find name with Some msg -> msg.class_ = Request | None -> false

let is_response name =
  match find name with Some msg -> msg.class_ = Response | None -> false

let select p = names (List.filter p all)

let local_requests =
  select (fun msg ->
      msg.class_ = Request && msg.src = Local && msg.dst = Home)

let snoop_requests =
  select (fun msg ->
      msg.class_ = Request && msg.src = Home && msg.dst = Remote)

let snoop_responses =
  select (fun msg ->
      msg.class_ = Response && msg.src = Remote && msg.dst = Home)

let local_responses =
  select (fun msg ->
      msg.class_ = Response && msg.src = Home && msg.dst = Local)

let memory_requests = select (fun msg -> msg.category = Mem && msg.class_ = Request)
let memory_responses = select (fun msg -> msg.category = Mem && msg.class_ = Response)

let register db =
  let lift p = function Relalg.Value.Str s -> p s | _ -> false in
  let db = Relalg.Database.register_function db "isrequest" (lift is_request) in
  Relalg.Database.register_function db "isresponse" (lift is_response)
