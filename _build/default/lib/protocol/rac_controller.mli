(** The remote-access-cache controller table RAC, one per quad.

    The RAC caches lines homed in other quads on behalf of the quad's
    nodes.  It is snooped by remote home directories exactly like a node
    cache (VC1 in, VC2 out) and runs a background eviction engine that
    issues [racevict] requests; evictions are triggered by an internal
    capacity event ([inmsgres = evq]), never by response processing, so
    the RAC adds no VC3 → VC0 dependency. *)

val spec : Ctrl_spec.t
val table : unit -> Relalg.Table.t
