(** The directory controller table D (sections 2.1 and 3 of the paper).

    D is the protocol engine of a quad: it serializes all transactions to
    the addresses homed in the quad, tracks sharing in the directory
    (state + presence vector) and in-flight transactions in the busy
    directory, snoops remote nodes, and reads/writes home memory.

    The table has 30 columns — 11 inputs and 19 outputs:

    inputs:  [inmsg inmsgsrc inmsgdest inmsgres addrspace
              dirst dirpv bdirst bdirpv dirlookup bdirlookup]
    outputs: [locmsg locmsgsrc locmsgdest locmsgres
              remmsg remmsgsrc remmsgdest remmsgres
              memmsg memmsgsrc memmsgdest memmsgres
              nxtdirst nxtdirpv nxtbdirst nxtbdirpv dirwr bdirop datasrc]

    Protocol conventions encoded here (where the paper is silent we follow
    DASH-style rules, documented per scenario label):
    - a request that finds the line busy is answered [retry], for every
      request type against every busy state (the paper's serialization
      discipline, and the bulk of the table's rows — "all transaction
      interleavings");
    - starting a transaction moves the line from the directory to the busy
      directory ([dirwr = yes], [nxtdirst = I], [bdirop = alloc]), so the
      mutual-exclusion invariant between the two structures holds;
    - [datax] is the combined exclusive-data + completion response (the
      paper sends separate [data] and [compl]; one output column per
      destination forces the combined form — see EXPERIMENTS.md, E2);
    - dirty remote data is collected with [sread] / [sflush] and never
      written back to memory from response processing, so the debugged
      virtual-channel assignment is deadlock-free (see
      {!Checker.Deadlock}). *)

val spec : Ctrl_spec.t
(** The full specification (column tables + scenarios). *)

val table : unit -> Relalg.Table.t
(** The generated table (memoized). *)

val input_columns : string list
val output_columns : string list

val busy_retry_label : string
(** The scenario serializing requests against busy lines — the target of
    the seeded-bug experiment that breaks the serialization invariant. *)

val readex_scenario_labels : string list
(** The scenarios reproducing the paper's Figure 2/3 read-exclusive
    transaction. *)

val figure3 : unit -> Relalg.Table.t
(** The paper's Figure 3: the readex-transaction rows of D projected onto
    (inmsg, dirst, dirpv, locmsg, remmsg, memmsg, nxtdirst, nxtdirpv),
    with busy states shown in the dirst column as in the paper. *)
