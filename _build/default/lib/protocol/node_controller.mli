(** The node controller table N, one per node.

    Sits between the protocol network and the node's cache/processor:
    consumes directory responses arriving on the local response channel
    (VC3) and drives the cache interface and the processor result port.

    A deliberate design rule with a deadlock-freedom consequence: on
    [retry] the node controller reports [retrylater] to the processor
    interface and emits {e no} network message — reissue happens from the
    processor side as a fresh transaction.  A naive design that reissues
    the request directly from response processing would create a
    VC3 → VC0 dependency closing a cycle through the whole request path;
    the seeded-bug experiment (E11) adds exactly that scenario and shows
    the SQL deadlock check catching it. *)

val spec : Ctrl_spec.t
val table : unit -> Relalg.Table.t

val naive_retry_scenario : Ctrl_spec.scenario
(** The buggy "reissue on retry from the response path" scenario used by
    the seeded-bug experiments. *)
