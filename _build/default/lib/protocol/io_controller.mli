(** The home I/O (device bus) controller table IO.

    Receives the directory's uncached-I/O requests on the memory path and
    answers on the home response path, mirroring {!Mem_controller} for the
    I/O address space.  A busy device yields [mnack], which D turns into a
    [nack] to the requester. *)

val spec : Ctrl_spec.t
val table : unit -> Relalg.Table.t
