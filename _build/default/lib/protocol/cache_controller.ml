open Ctrl_spec

let inputs =
  [
    "inmsg", [ "sinv"; "sread"; "sflush"; "sdown"; "cinvreq"; "cwbreq"; "cfill" ];
    "inmsgsrc", [ "home"; "local" ];
    "inmsgdest", [ "remote"; "local" ];
    "inmsgres", [ "snpq"; "cacheq" ];
    "cachest", [ "M"; "E"; "S"; "I" ];
    "filltype", [ "shared"; "excl" ];
  ]

let outputs =
  [
    "respmsg", [ "idone"; "sdata"; "sack"; "snack"; "swbdata" ];
    "respmsgsrc", [ "remote" ];
    "respmsgdest", [ "home" ];
    "respmsgres", [ "respq" ];
    "nodemsg", [ "cinvack"; "cwbdata" ];
    "nodemsgsrc", [ "local" ];
    "nodemsgdest", [ "local" ];
    "nodemsgres", [ "cacheq" ];
    "nxtcachest", [ "M"; "E"; "S"; "I" ];
  ]

(* A snoop from the home directory, matched against the line state. *)
let snoop label inmsg cachest ~resp ~nxt =
  {
    label;
    when_ =
      [
        "inmsg", V inmsg; "inmsgsrc", V "home"; "inmsgdest", V "remote";
        "inmsgres", V "snpq"; "cachest", cachest;
      ];
    emit =
      [
        "respmsg", Out resp; "respmsgsrc", Out "remote";
        "respmsgdest", Out "home"; "respmsgres", Out "respq";
        "nxtcachest", Out nxt;
      ];
  }

(* An internal request from the node controller on the cache interface. *)
let internal label inmsg ?filltype ?(cachest : input_spec option) ~emit () =
  {
    label;
    when_ =
      [
        "inmsg", V inmsg; "inmsgsrc", V "local"; "inmsgdest", V "local";
        "inmsgres", V "cacheq";
      ]
      @ (match cachest with None -> [] | Some st -> [ "cachest", st ])
      @ (match filltype with None -> [] | Some f -> [ "filltype", V f ]);
    emit;
  }

let to_node msg =
  [
    "nodemsg", Out msg; "nodemsgsrc", Out "local"; "nodemsgdest", Out "local";
    "nodemsgres", Out "cacheq";
  ]

let scenarios =
  [
    (* invalidations: sinv targets clean sharers only *)
    snoop "sinv-shared" "sinv" (Among [ "S"; "E" ]) ~resp:"idone" ~nxt:"I";
    snoop "sinv-gone" "sinv" (V "I") ~resp:"idone" ~nxt:"I";
    (* read-downgrade of an owner *)
    snoop "sread-dirty" "sread" (V "M") ~resp:"sdata" ~nxt:"S";
    snoop "sread-clean" "sread" (V "E") ~resp:"sdata" ~nxt:"S";
    snoop "sread-gone" "sread" (Among [ "S"; "I" ]) ~resp:"snack" ~nxt:"I";
    (* flush of an owner *)
    snoop "sflush-dirty" "sflush" (V "M") ~resp:"swbdata" ~nxt:"I";
    snoop "sflush-clean" "sflush" (V "E") ~resp:"sdata" ~nxt:"I";
    snoop "sflush-gone" "sflush" (Among [ "S"; "I" ]) ~resp:"snack" ~nxt:"I";
    (* downgrade without data movement *)
    snoop "sdown-clean" "sdown" (V "E") ~resp:"sack" ~nxt:"S";
    snoop "sdown-dirty" "sdown" (V "M") ~resp:"sdata" ~nxt:"S";
    snoop "sdown-gone" "sdown" (Among [ "S"; "I" ]) ~resp:"snack" ~nxt:"I";
    (* node-controller internal interface *)
    internal "cinvreq-ack" "cinvreq"
      ~cachest:(Among [ "S"; "E"; "I" ])
      ~emit:(to_node "cinvack" @ [ "nxtcachest", Out "I" ])
      ();
    internal "cwbreq-data" "cwbreq" ~cachest:(V "M")
      ~emit:(to_node "cwbdata" @ [ "nxtcachest", Out "I" ])
      ();
    internal "cfill-shared" "cfill" ~filltype:"shared"
      ~emit:[ "nxtcachest", Out "S" ]
      ();
    internal "cfill-excl" "cfill" ~filltype:"excl"
      ~emit:[ "nxtcachest", Out "M" ]
      ();
  ]

let spec = make ~name:"C" ~inputs ~outputs ~scenarios
let table () = Ctrl_spec.table spec
