open Ctrl_spec

let inputs =
  [
    "inmsg", [ "mread"; "mwrite"; "mrmw"; "mupdate" ];
    "inmsgsrc", [ "home" ];
    "inmsgdest", [ "home" ];
    "inmsgres", [ "memq" ];
    "eccst", [ "ok"; "err" ];
  ]

let outputs =
  [
    "outmsg", [ "mdata"; "mack"; "mnack" ];
    "outmsgsrc", [ "home" ];
    "outmsgdest", [ "home" ];
    "outmsgres", [ "respq" ];
    "memop", [ "rd"; "wr"; "rmw" ];
  ]

let scen ?outmsg label inmsg eccst memop =
  {
    label;
    when_ =
      [
        "inmsg", V inmsg; "inmsgsrc", V "home"; "inmsgdest", V "home";
        "inmsgres", V "memq"; "eccst", V eccst;
      ];
    emit =
      (match outmsg with
      | None -> []
      | Some out ->
          [
            "outmsg", Out out; "outmsgsrc", Out "home";
            "outmsgdest", Out "home"; "outmsgres", Out "respq";
          ])
      @ (match memop with None -> [] | Some op -> [ "memop", Out op ]);
  }

let scenarios =
  [
    scen "mread-ok" "mread" "ok" ~outmsg:"mdata" (Some "rd");
    scen "mread-err" "mread" "err" ~outmsg:"mnack" None;
    scen "mwrite-ok" "mwrite" "ok" ~outmsg:"mack" (Some "wr");
    scen "mwrite-err" "mwrite" "err" ~outmsg:"mnack" None;
    scen "mrmw-ok" "mrmw" "ok" ~outmsg:"mdata" (Some "rmw");
    scen "mrmw-err" "mrmw" "err" ~outmsg:"mnack" None;
    (* sharing writebacks are fire-and-forget: the busy entry that caused
       them is already in its completion phase *)
    scen "mupdate-ok" "mupdate" "ok" (Some "wr");
    scen "mupdate-err" "mupdate" "err" None;
  ]

let spec = make ~name:"M" ~inputs ~outputs ~scenarios
let table () = Ctrl_spec.table spec
