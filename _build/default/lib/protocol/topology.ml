type node_class = Local | Home | Remote

let node_class_to_string = function
  | Local -> "local"
  | Home -> "home"
  | Remote -> "remote"

let node_class_of_string = function
  | "local" -> Some Local
  | "home" -> Some Home
  | "remote" -> Some Remote
  | _ -> None

let all_node_classes = [ Local; Home; Remote ]

type placement = All_same | Lh_same | Hr_same | Lr_same | All_distinct

let all_placements = [ All_distinct; All_same; Lh_same; Hr_same; Lr_same ]

let placement_to_string = function
  | All_same -> "L=H=R"
  | Lh_same -> "L=H<>R"
  | Hr_same -> "L<>H=R"
  | Lr_same -> "L=R<>H"
  | All_distinct -> "L<>H<>R"

let same_quad p a b =
  a = b
  ||
  match p with
  | All_same -> true
  | All_distinct -> false
  | Lh_same -> (a = Local && b = Home) || (a = Home && b = Local)
  | Hr_same -> (a = Home && b = Remote) || (a = Remote && b = Home)
  | Lr_same -> (a = Local && b = Remote) || (a = Remote && b = Local)

let rank = function Local -> 0 | Home -> 1 | Remote -> 2

let canon p a =
  let candidates = List.filter (same_quad p a) all_node_classes in
  List.fold_left
    (fun best c -> if rank c < rank best then c else best)
    a candidates

let canon_string p s =
  match node_class_of_string s with
  | Some c -> node_class_to_string (canon p c)
  | None -> s

type system = { quads : int; nodes_per_quad : int }

let default_system = { quads = 4; nodes_per_quad = 4 }
let node_count sys = sys.quads * sys.nodes_per_quad

let quad_of_node sys n =
  if n < 0 || n >= node_count sys then
    invalid_arg (Printf.sprintf "Topology.quad_of_node: node %d" n);
  n / sys.nodes_per_quad

let placement_of sys ~local ~home ~remote =
  let ql = quad_of_node sys local
  and qh = quad_of_node sys home
  and qr = quad_of_node sys remote in
  if ql = qh && qh = qr then All_same
  else if ql = qh then Lh_same
  else if qh = qr then Hr_same
  else if ql = qr then Lr_same
  else All_distinct
