(** The inter-quad link controller table LK.

    Forwards every inter-quad protocol message between the quad's router
    ports, cut-through when the link is up and with a CRC-error drop
    otherwise.  The link controller {e is} the transport whose occupancy
    the virtual channels model, so it is excluded from the channel
    dependency analysis ([include_in_deadlock = false] in
    {!Protocol.controllers}); including it would add a spurious self-loop
    on every channel. *)

val spec : Ctrl_spec.t
val table : unit -> Relalg.Table.t
