type t = Vc of string | Dedicated of string

let to_string = function Vc s -> s | Dedicated s -> "HW:" ^ s
let is_blocking = function Vc _ -> true | Dedicated _ -> false

let roles ~cls ~src ~dst =
  ignore dst;
  match cls with
  | "reqq" -> "local", "home"
  | "snp" -> "home", "remote"
  | "resp" -> "home", "local"
  | "memq" -> "home", "home"
  | "respq" -> if src = Mcheck.Mstate.mem then "home", "home" else "remote", "home"
  | "ackq" -> "local", "home"
  | _ -> "local", "home"

let of_message ~v ~cls ~src ~dst name =
  if cls = "ackq" then Dedicated "ack"
  else
    let s, d = roles ~cls ~src ~dst in
    match Checker.Vcassign.lookup v ~msg:name ~src:s ~dst:d with
    | Some vc -> Vc vc
    | None -> Dedicated name

let occupancy ~v (st : Mcheck.Mstate.t) =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun ((src, dst, cls), q) ->
      List.iter
        (fun (m : Mcheck.Mstate.msg) ->
          match of_message ~v ~cls ~src ~dst m.m with
          | Vc vc ->
              Hashtbl.replace counts vc
                (1 + Option.value (Hashtbl.find_opt counts vc) ~default:0)
          | Dedicated _ -> ())
        q)
    st.queues;
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [])

let over_capacity ~v ~capacity st =
  List.filter_map
    (fun (vc, n) -> if n > capacity vc then Some vc else None)
    (occupancy ~v st)
