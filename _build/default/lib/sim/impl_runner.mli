(** Implementation-level simulation: the ED table's queue gating and the
    dfdback feedback path, exercised dynamically (paper section 5,
    Figure 5).

    The hardware directory of Figure 5 consults two status bits before
    committing to a row: [qstatus] (output queues / busy directory full →
    answer [retry]) and [dqstatus] (directory update queue full → convert
    the response into a [dfdback] request, re-injected through the
    feedback path once the queue drains).  This runner wraps the
    behavioural semantics with exactly that gate, evaluated on the
    {e generated ED table}: every delivery is first classified by its ED
    row, and only a [Proceed] verdict executes the architectural
    behaviour.

    The intended invariant, checked by the tests and experiment E14: a
    run with a tiny update queue defers some responses through dfdback
    but converges to the same final state as an unconstrained run. *)

type t = {
  base : Mcheck.Mstate.t;
  upd_capacity : int;  (** slots in the directory update queue *)
  upd_used : int;  (** slots currently occupied by in-flight updates *)
  feedback : (string * Mcheck.Mstate.msg) list;
      (** deferred responses with their arrival class, FIFO *)
  deferred : int;  (** statistics: deferrals taken *)
  retried : int;  (** statistics: requests bounced on full queues *)
}

type gate =
  | Proceed  (** execute the architectural row *)
  | Bounce  (** answered retry because qstatus = Full *)
  | Defer  (** converted to dfdback because dqstatus = Full *)

val make : ?upd_capacity:int -> Mcheck.Mstate.t -> t

val gate : t -> cls:string -> Mcheck.Mstate.msg -> gate
(** Classify a delivery by its ED row under the current queue statuses. *)

val deliver : t -> cls:string -> dst:int -> Mcheck.Mstate.msg -> t
(** Pop-and-process one message through the gate: [Proceed] runs the
    table semantics (consuming an update slot if the row writes the
    directory), [Defer] pushes the message onto the feedback path,
    [Bounce] emits a retry.
    @raise Failure if the architectural row is missing (protocol bug). *)

val drain_update : t -> t
(** The directory-update engine retires one queued update. *)

val replay_feedback : t -> t
(** Re-inject the oldest deferred response as its dfdback request; a
    no-op while the update queue is still full. *)

val run_to_completion : ?max_steps:int -> ?drain_every:int -> t -> t
(** Alternate deliveries (round-robin over the base state's queues),
    drains and replays until quiescent.  [drain_every] (default 1) slows
    the update engine down to one retirement per that many rounds; a
    slower engine forces more responses through the feedback path.
    @raise Failure if the step budget is exhausted. *)

val stats : t -> string
