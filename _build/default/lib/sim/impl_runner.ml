type t = {
  base : Mcheck.Mstate.t;
  upd_capacity : int;
  upd_used : int;
  feedback : (string * Mcheck.Mstate.msg) list;
  deferred : int;
  retried : int;
}

type gate = Proceed | Bounce | Defer

let tables = lazy (Mcheck.Semantics.load_tables ())

let ed_rules =
  lazy
    (Mapping.Codegen.rules_of_table ~inputs:Mapping.Extend.input_columns
       ~outputs:Mapping.Extend.output_columns (Mapping.Extend.ed ()))

let mem_only_config =
  { Mcheck.Semantics.nodes = 0; addrs = 0; ops = []; capacity = 0; io_addrs = []; lossy = false }

let make ?(upd_capacity = 1) base =
  { base; upd_capacity; upd_used = 0; feedback = []; deferred = 0; retried = 0 }

let statuses t =
  let dq = if t.upd_used >= t.upd_capacity then "Full" else "NotFull" in
  (* the behavioural simulator already applies channel backpressure, so
     the output queues are never oversubscribed here *)
  [ "qstatus", "NotFull"; "dqstatus", dq ]

let ed_outputs t ~cls msg =
  let binding =
    Mcheck.Semantics.dir_binding mem_only_config t.base ~cls msg @ statuses t
  in
  Mapping.Codegen.eval_rules (Lazy.force ed_rules) binding

let gate t ~cls msg =
  match ed_outputs t ~cls msg with
  | None -> Proceed (* no gating row: fall through to the table semantics *)
  | Some outputs ->
      if List.assoc_opt "fdback" outputs = Some "dfdback" then Defer
      else if
        List.assoc_opt "locmsg" outputs = Some "retry"
        && List.assoc_opt "bdirop" outputs = None
        && cls = "reqq"
        && List.assoc_opt "qstatus" (statuses t) = Some "Full"
      then Bounce
      else Proceed

(* Whether the architectural row writes the directory (and therefore
   occupies an update-queue slot). *)
let writes_directory t ~cls msg =
  let binding = Mcheck.Semantics.dir_binding mem_only_config t.base ~cls msg in
  match
    Mapping.Codegen.eval_rules
      (Mcheck.Semantics.directory_rules (Lazy.force tables))
      binding
  with
  | Some outputs -> List.assoc_opt "dirwr" outputs = Some "yes"
  | None -> false

let apply t ~cls ~dst msg =
  let slot = if dst = Mcheck.Mstate.dir then writes_directory t ~cls msg else false in
  match Mcheck.Semantics.deliver (Lazy.force tables) t.base ~cls ~dst msg with
  | Mcheck.Semantics.Next base ->
      { t with base; upd_used = (t.upd_used + if slot then 1 else 0) }
  | Mcheck.Semantics.Broken reason -> failwith reason

let deliver t ~cls ~dst msg =
  if dst <> Mcheck.Mstate.dir then apply t ~cls ~dst msg
  else
    match gate t ~cls msg with
    | Proceed -> apply t ~cls ~dst msg
    | Bounce ->
        let retry =
          { Mcheck.Mstate.m = "retry"; src = Mcheck.Mstate.dir; dst = msg.src;
            addr = msg.addr; fresh = true }
        in
        {
          t with
          base = Mcheck.Mstate.enqueue t.base ~cls:"resp" retry;
          retried = t.retried + 1;
        }
    | Defer ->
        { t with feedback = t.feedback @ [ cls, msg ]; deferred = t.deferred + 1 }

let drain_update t = { t with upd_used = max 0 (t.upd_used - 1) }

let replay_feedback t =
  match t.feedback with
  | [] -> t
  | (cls, msg) :: rest ->
      if t.upd_used >= t.upd_capacity then t
      else
        let t = { t with feedback = rest } in
        (* the replay performs the original response's behaviour on its
           original arrival class *)
        apply t ~cls ~dst:Mcheck.Mstate.dir msg

let quiescent t =
  Mcheck.Mstate.quiescent t.base && t.feedback = [] && t.upd_used = 0

let run_to_completion ?(max_steps = 10_000) ?(drain_every = 1) t =
  let rec go steps t =
    if steps > max_steps then failwith "Impl_runner: step budget exhausted"
    else if quiescent t then t
    else
      (* one scheduling round: a delivery if possible; the update engine
         retires a queued update every [drain_every] rounds (a slower
         engine forces more traffic through the feedback path) *)
      let maybe_drain t =
        if steps mod drain_every = 0 then replay_feedback (drain_update t)
        else t
      in
      match Mcheck.Mstate.queue_heads t.base with
      | ((src, dst, cls), msg) :: _ ->
          let t' =
            match Mcheck.Mstate.dequeue t.base (src, dst, cls) with
            | Some (_, base) -> deliver { t with base } ~cls ~dst msg
            | None -> assert false
          in
          go (steps + 1) (maybe_drain t')
      | [] -> go (steps + 1) (replay_feedback (drain_update t))
  in
  go 0 t

let stats t =
  Printf.sprintf "deferred=%d retried=%d upd_used=%d feedback=%d" t.deferred
    t.retried t.upd_used (List.length t.feedback)
