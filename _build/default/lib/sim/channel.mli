(** Mapping in-flight messages to virtual channels.

    The simulator enforces capacities at the {e channel} level: every
    message is assigned a channel by the V table (section 4.1), keyed by
    its name and the roles of its endpoints, and all traffic sharing a
    channel competes for the same finite slots — which is precisely what
    creates the Figure 4 deadlock.  Messages absent from V ride dedicated
    resources (the paper's fix path for [mread], the reserved
    completion-ack slots) and never block. *)

type t = Vc of string | Dedicated of string

val to_string : t -> string
val is_blocking : t -> bool
(** Dedicated resources are sized for the worst case and never block. *)

val of_message :
  v:Checker.Vcassign.t -> cls:string -> src:int -> dst:int -> string -> t
(** Channel of a message: [cls] is the FIFO class it travels on (reqq /
    respq / snp / resp / memq / ackq), [src]/[dst] its concrete endpoints
    ({!Mcheck.Mstate.dir} / {!Mcheck.Mstate.mem} / node ids). *)

val occupancy : v:Checker.Vcassign.t -> Mcheck.Mstate.t -> (string * int) list
(** Messages in flight per blocking channel, sorted by channel name. *)

val over_capacity :
  v:Checker.Vcassign.t ->
  capacity:(string -> int) ->
  Mcheck.Mstate.t ->
  string list
(** Blocking channels whose occupancy exceeds their capacity. *)
