(** The queue-accurate protocol simulator.

    Executes the same table-driven semantics as the model checker, but
    under a single schedule with finite virtual channels: a delivery is
    possible only if all its outputs fit their channels.  A scripted
    prefix pins the interesting interleaving (the paper's Figure 4 needs
    a specific crossing of two transactions); afterwards the runner
    free-runs deliveries round-robin until the system drains or wedges.

    A wedged run reports the circular wait: which channels are full and
    which blocked delivery each one is waiting on — the dynamic
    counterpart of the static VCG cycle. *)

type config = {
  v : Checker.Vcassign.t;  (** channel assignment under test *)
  capacity : string -> int;  (** slots per virtual channel *)
  nodes : int;
  addrs : int;
  io_addrs : int list;  (** addresses in the uncached I/O space *)
}

val uniform_capacity : int -> string -> int

type event =
  | Issue of { node : int; addr : int; op : string }
  | Deliver of { src : int; dst : int; cls : string }
      (** deliver the head of this FIFO *)

type result =
  | Quiescent of { steps : int }
  | Deadlock of {
      steps : int;
      occupancy : (string * int) list;  (** in-flight per channel *)
      blocked : string list;  (** one line per undeliverable queue head *)
    }

exception Script_error of string
(** A scripted event was not enabled (or a table had no row for it). *)

val run :
  ?script:event list ->
  ?trace:(string -> unit) ->
  ?max_steps:int ->
  config ->
  Mcheck.Mstate.t ->
  result * Mcheck.Mstate.t

val pp_result : Format.formatter -> result -> unit
