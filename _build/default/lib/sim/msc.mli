(** Message-sequence-chart rendering of simulator traces.

    The paper's Figure 2 (the read-exclusive transaction) and Figure 4
    (the deadlock scenario) are message-sequence charts; this module
    regenerates them from executed traces rather than by hand.  A trace
    is the list of step labels produced by {!Runner.run} (or
    {!Mcheck.Explore} counterexamples); deliveries are drawn as arrows
    between the participant lifelines, issues and reissues as local
    events. *)

type participant = Node of int | Directory | Memory

val participant_label : participant -> string

type event =
  | Message of { msg : string; src : participant; dst : participant;
                 cls : string }
  | Local of { where : participant; what : string }

val parse_trace : string list -> event list
(** Recover structured events from step labels; unrecognized lines are
    dropped. *)

val participants : event list -> participant list
(** Everyone mentioned, local nodes first, then the directory, then
    memory. *)

val to_ascii : ?title:string -> event list -> string
(** Fixed-width lifeline chart, one row per event:

    {v
    node0        dir          mem
      |--readex-->|            |
      |           |---mread--->|
    v} *)

val to_latex : ?title:string -> event list -> string
(** A msc-style LaTeX picture (tikz-free, plain [picture] environment)
    suitable for dropping into a design document. *)

val render_run : ?title:string -> string list -> string
(** [parse_trace] then [to_ascii]. *)
