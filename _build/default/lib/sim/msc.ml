type participant = Node of int | Directory | Memory

let participant_label = function
  | Node n -> Printf.sprintf "node%d" n
  | Directory -> "dir"
  | Memory -> "mem"

type event =
  | Message of { msg : string; src : participant; dst : participant;
                 cls : string }
  | Local of { where : participant; what : string }

let endpoint id =
  if id = Mcheck.Mstate.dir then Directory
  else if id = Mcheck.Mstate.mem then Memory
  else Node id

let parse_line line =
  match String.split_on_char ' ' line with
  | "deliver" :: msg :: route :: cls :: _ ->
      (* route is "<src>-><dst>" where ids may be negative (dir = -1,
         memory = -2), so try every "->" occurrence *)
      let n = String.length route in
      let rec try_arrow i =
        if i + 1 >= n then None
        else if route.[i] = '-' && route.[i + 1] = '>' then
          match
            ( int_of_string_opt (String.sub route 0 i),
              int_of_string_opt (String.sub route (i + 2) (n - i - 2)) )
          with
          | Some s, Some d ->
              let cls =
                if String.length cls >= 2 && cls.[0] = '(' then
                  String.sub cls 1 (String.length cls - 2)
                else cls
              in
              Some (Message { msg; src = endpoint s; dst = endpoint d; cls })
          | _ -> try_arrow (i + 1)
        else try_arrow (i + 1)
      in
      try_arrow 0
  | "issue" :: op :: node :: rest ->
      let addr = match rest with a :: _ -> " " ^ a | [] -> "" in
      Option.map
        (fun n -> Local { where = Node n; what = op ^ addr })
        (int_of_string_opt
           (String.sub node 4 (max 0 (String.length node - 4))))
  | "reissue" :: node :: _ ->
      Option.map
        (fun n -> Local { where = Node n; what = "reissue" })
        (int_of_string_opt
           (String.sub node 4 (max 0 (String.length node - 4))))
  | _ -> None

let parse_trace lines = List.filter_map parse_line lines

let participants events =
  let mentioned = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      match ev with
      | Message { src; dst; _ } ->
          Hashtbl.replace mentioned src ();
          Hashtbl.replace mentioned dst ()
      | Local { where; _ } -> Hashtbl.replace mentioned where ())
    events;
  let nodes =
    List.sort compare
      (Hashtbl.fold
         (fun p () acc -> match p with Node n -> n :: acc | _ -> acc)
         mentioned [])
  in
  List.map (fun n -> Node n) nodes
  @ (if Hashtbl.mem mentioned Directory then [ Directory ] else [])
  @ if Hashtbl.mem mentioned Memory then [ Memory ] else []

let to_ascii ?title events =
  let ps = participants events in
  if ps = [] then "(empty trace)\n"
  else begin
    let widest_label =
      List.fold_left
        (fun acc ev ->
          match ev with
          | Message { msg; cls; _ } -> max acc (String.length msg + String.length cls + 3)
          | Local { what; _ } -> max acc (String.length what + 2))
        8 events
    in
    let spacing = widest_label + 6 in
    let xs = List.mapi (fun i p -> p, (i * spacing) + 4) ps in
    let width = (List.length ps - 1) * spacing + 16 in
    let buf = Buffer.create 1024 in
    (match title with
    | Some t -> Buffer.add_string buf (t ^ "\n\n")
    | None -> ());
    (* header *)
    let header = Bytes.make width ' ' in
    List.iter
      (fun (p, x) ->
        let label = participant_label p in
        let start = max 0 (x - (String.length label / 2)) in
        Bytes.blit_string label 0 header start
          (min (String.length label) (width - start)))
      xs;
    let header = Bytes.to_string header in
    let hlen = ref (String.length header) in
    while !hlen > 0 && header.[!hlen - 1] = ' ' do decr hlen done;
    Buffer.add_string buf (String.sub header 0 !hlen);
    Buffer.add_char buf '\n';
    let lifeline_row () =
      let row = Bytes.make width ' ' in
      List.iter (fun (_, x) -> Bytes.set row x '|') xs;
      row
    in
    let emit row =
      (* trim trailing spaces *)
      let s = Bytes.to_string row in
      let len = ref (String.length s) in
      while !len > 0 && s.[!len - 1] = ' ' do decr len done;
      Buffer.add_string buf (String.sub s 0 !len);
      Buffer.add_char buf '\n'
    in
    List.iter
      (fun ev ->
        let row = lifeline_row () in
        (match ev with
        | Message { msg; src; dst; cls } ->
            let x1 = List.assoc src xs and x2 = List.assoc dst xs in
            if x1 = x2 then begin
              (* self message: mark at the lifeline *)
              let label = Printf.sprintf "(%s %s)" msg cls in
              Bytes.blit_string label 0 row (x1 + 2)
                (min (String.length label) (width - x1 - 2))
            end
            else begin
              let lo = min x1 x2 and hi = max x1 x2 in
              for i = lo + 1 to hi - 1 do
                if Bytes.get row i = ' ' then Bytes.set row i '-'
              done;
              if x2 > x1 then Bytes.set row (hi - 1) '>'
              else Bytes.set row (lo + 1) '<';
              let label = Printf.sprintf " %s (%s) " msg cls in
              let start = ((lo + hi) / 2) - (String.length label / 2) in
              let start = max (lo + 2) start in
              Bytes.blit_string label 0 row start
                (min (String.length label) (max 0 (hi - 1 - start)))
            end
        | Local { where; what } ->
            let x = List.assoc where xs in
            Bytes.set row x '*';
            let label = " " ^ what in
            Bytes.blit_string label 0 row (x + 1)
              (min (String.length label) (width - x - 1)));
        emit row)
      events;
    emit (lifeline_row ());
    Buffer.contents buf
  end

let to_latex ?title events =
  let ps = participants events in
  let n = List.length ps in
  let col p =
    let rec idx i = function
      | [] -> 0
      | q :: rest -> if q = p then i else idx (i + 1) rest
    in
    idx 0 ps
  in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%% generated message-sequence chart%s\n"
    (match title with Some t -> ": " ^ t | None -> "");
  pr "\\begin{picture}(%d,%d)\n" (n * 30) ((List.length events + 2) * 10);
  let top = (List.length events + 1) * 10 in
  List.iteri
    (fun i p ->
      pr "  \\put(%d,%d){\\makebox(0,0){%s}}\n" ((i * 30) + 15) top
        (participant_label p);
      pr "  \\put(%d,0){\\line(0,1){%d}}\n" ((i * 30) + 15) (top - 5))
    ps;
  List.iteri
    (fun row ev ->
      let y = top - ((row + 1) * 10) in
      match ev with
      | Message { msg; src; dst; _ } ->
          let x1 = (col src * 30) + 15 and x2 = (col dst * 30) + 15 in
          if x1 <> x2 then begin
            let dir = if x2 > x1 then 1 else -1 in
            pr "  \\put(%d,%d){\\vector(%d,0){%d}}\n" x1 y dir (abs (x2 - x1));
            pr "  \\put(%d,%d){\\makebox(0,0)[b]{\\scriptsize %s}}\n"
              ((x1 + x2) / 2) (y + 2) msg
          end
          else
            pr "  \\put(%d,%d){\\makebox(0,0)[l]{\\scriptsize (%s)}}\n"
              (x1 + 2) y msg
      | Local { where; what } ->
          pr "  \\put(%d,%d){\\makebox(0,0)[l]{\\scriptsize *%s}}\n"
            ((col where * 30) + 17) y what)
    events;
  pr "\\end{picture}\n";
  Buffer.contents buf

let render_run ?title lines = to_ascii ?title (parse_trace lines)
