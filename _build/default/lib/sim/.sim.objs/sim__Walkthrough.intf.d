lib/sim/walkthrough.mli: Checker
