lib/sim/msc.mli:
