lib/sim/walkthrough.ml: Buffer Checker Fun List Mcheck Msc Printf Runner
