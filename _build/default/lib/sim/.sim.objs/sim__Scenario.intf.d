lib/sim/scenario.mli: Checker Mcheck Runner
