lib/sim/channel.mli: Checker Mcheck
