lib/sim/impl_runner.ml: Lazy List Mapping Mcheck Printf
