lib/sim/impl_runner.mli: Mcheck
