lib/sim/runner.mli: Checker Format Mcheck
