lib/sim/channel.ml: Checker Hashtbl List Mcheck Option
