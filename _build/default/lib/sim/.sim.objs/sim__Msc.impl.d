lib/sim/msc.ml: Buffer Bytes Hashtbl List Mcheck Option Printf String
