lib/sim/runner.ml: Channel Checker Format Fun Lazy List Mcheck Printf
