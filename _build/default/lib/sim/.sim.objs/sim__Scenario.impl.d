lib/sim/scenario.ml: Array Channel Checker List Mcheck Random Runner
