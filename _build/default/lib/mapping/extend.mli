(** The extended directory table ED (section 5 of the paper).

    Hardware details are added to the debugged table D: finite output
    queues (locmsg / remmsg / memmsg / upd) summarized by a [qstatus]
    input, a directory-update queue summarized by [dqstatus], and a
    feedback path that reinjects a response into the request controller as
    a [dfdback] request when the update queue is full.

    The transformation rules, following the paper's description:
    - a request with [qstatus = Full] is answered [retry] and changes
      nothing (the retry entry is pre-allocated in the locmsg queue);
    - a request with [qstatus = NotFull] behaves as in D; [dqstatus] is
      not consulted for requests;
    - a response that needs a directory update ([dirwr = yes]) with
      [dqstatus = Full] emits only [fdback = dfdback]; with
      [dqstatus = NotFull] it behaves as in D; responses that do not
      update the directory are unaffected;
    - the reinjected [dfdback] request carries its originating response in
      a context column [fdctx] and performs the deferred behaviour when
      both queues have space, re-feeding itself while the update queue
      remains full.

    ED therefore has D's 30 columns plus inputs [qstatus], [dqstatus],
    [fdctx] and output [fdback] — 34 columns. *)

val qstatus_values : string list
(** [Full; NotFull]. *)

val input_columns : string list
(** ED's 14 input columns, in order. *)

val output_columns : string list
(** ED's 20 output columns, in order. *)

val ed : unit -> Relalg.Table.t
(** The extended table (memoized), generated from {!Protocol.Dir_controller}. *)

val database : unit -> Relalg.Database.t
(** A database holding ED (and the eight controller tables) with the SQL
    functions registered — the input to {!Partition}. *)
