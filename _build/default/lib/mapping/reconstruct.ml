open Relalg

type outcome = {
  rebuilt_ed : Table.t;
  ed_preserved : bool;
  d_preserved : bool;
  missing_rows : Table.t;
}

let join_side db side =
  let tables =
    List.filter_map
      (fun (g : Partition.group) ->
        if g.side = side then Some (Database.find db g.table_name) else None)
      Partition.groups
  in
  let on = List.map (fun c -> c, c) Extend.input_columns in
  match tables with
  | [] -> invalid_arg "Reconstruct.join_side"
  | first :: rest -> List.fold_left (fun acc t -> Ops.equi_join ~on acc t) first rest

let reconstruct db =
  let request = join_side db `Request and response = join_side db `Response in
  let full_order = Extend.input_columns @ Extend.output_columns in
  (* The response side carries no remote-message columns (responses never
     snoop), so the missing columns are re-added as NULL (no-op). *)
  let complete t =
    let schema = Table.schema t in
    let widened =
      List.fold_left
        (fun acc c ->
          if Schema.mem schema c then acc
          else Ops.add_column ~name:c (fun _ -> Value.Null) acc)
        t full_order
    in
    Ops.project full_order widened
  in
  Table.with_name "ED-rebuilt"
    (Ops.union (complete request) (complete response))

let check ?db () =
  let db = match db with Some db -> db | None -> Partition.run () in
  let rebuilt_ed = reconstruct db in
  let ed = Extend.ed () in
  let ed_preserved = Table.equal_as_sets rebuilt_ed ed in
  (* D is recovered from the rebuilt ED by taking the unblocked variants
     and dropping the implementation columns. *)
  let unblocked =
    Expr.(
      eq_null "fdctx"
      &&& Not (eq "inmsg" "dfdback")
      &&& (eq "qstatus" "NotFull" ||| eq "dqstatus" "NotFull"
          ||| (eq_null "qstatus" &&& eq_null "dqstatus")))
  in
  let d = Protocol.Dir_controller.table () in
  let d_cols = Schema.columns (Table.schema d) in
  let projected =
    Table.distinct (Ops.project d_cols (Ops.select unblocked rebuilt_ed))
  in
  let d_preserved = Table.subset d projected in
  let missing_rows =
    Table.with_name "missing-from-reconstruction" (Ops.except d projected)
  in
  { rebuilt_ed; ed_preserved; d_preserved; missing_rows }
