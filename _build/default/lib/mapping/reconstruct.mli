(** Reconstruction check: mapping to hardware preserves the debugged table
    (section 5).

    "Each SQL table operation that modifies an extended table must specify
    the corresponding SQL table operations to reconstruct the original
    table from the resulting tables … it is checked using SQL constraints
    that the resulting table contains the original debugged table."

    The inverse of {!Partition} is a join of each side's tables on ED's
    input columns followed by a union; {!check} verifies that the rebuilt
    table equals ED and still contains every row of D. *)

type outcome = {
  rebuilt_ed : Relalg.Table.t;
  ed_preserved : bool;  (** rebuilt ED = original ED (as row sets) *)
  d_preserved : bool;  (** original D ⊆ projection of the rebuilt ED *)
  missing_rows : Relalg.Table.t;  (** D rows lost by the mapping, if any *)
}

val reconstruct : Relalg.Database.t -> Relalg.Table.t
(** Rebuild ED from the nine implementation tables in a database produced
    by {!Partition.run}. *)

val check : ?db:Relalg.Database.t -> unit -> outcome
(** Run the full round trip (partition, reconstruct, compare). *)
