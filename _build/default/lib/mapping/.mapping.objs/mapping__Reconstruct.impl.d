lib/mapping/reconstruct.ml: Database Expr Extend List Ops Partition Protocol Relalg Schema Table Value
