lib/mapping/partition.mli: Relalg
