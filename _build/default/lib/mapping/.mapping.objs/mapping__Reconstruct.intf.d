lib/mapping/reconstruct.mli: Relalg
