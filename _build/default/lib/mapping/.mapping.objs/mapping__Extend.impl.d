lib/mapping/extend.ml: Array Database List Protocol Relalg Schema Table Value
