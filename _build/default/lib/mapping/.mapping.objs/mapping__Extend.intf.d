lib/mapping/extend.mli: Relalg
