lib/mapping/codegen.ml: Array Buffer Database Extend Hashtbl List Option Partition Printf Relalg Schema String Table Value
