lib/mapping/partition.ml: Extend List Printf Relalg String
