lib/mapping/codegen.mli: Relalg
