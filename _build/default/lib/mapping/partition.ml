type group = {
  table_name : string;
  side : [ `Request | `Response ];
  payload : string list;
}

let locmsg_cols = [ "locmsg"; "locmsgsrc"; "locmsgdest"; "locmsgres" ]
let remmsg_cols = [ "remmsg"; "remmsgsrc"; "remmsgdest"; "remmsgres" ]
let memmsg_cols = [ "memmsg"; "memmsgsrc"; "memmsgdest"; "memmsgres" ]
let dirupd_cols = [ "nxtdirst"; "nxtdirpv"; "dirwr"; "fdback" ]
let bdirupd_cols = [ "bdirop"; "nxtbdirst"; "nxtbdirpv" ]

let groups =
  [
    { table_name = "Request_locmsg"; side = `Request; payload = locmsg_cols };
    { table_name = "Request_remmsg"; side = `Request; payload = remmsg_cols };
    { table_name = "Request_memmsg"; side = `Request; payload = memmsg_cols };
    { table_name = "Request_dirupd"; side = `Request; payload = dirupd_cols };
    {
      table_name = "Request_bdirupd";
      side = `Request;
      payload = bdirupd_cols @ [ "datasrc" ];
    };
    { table_name = "Response_locmsg";
      side = `Response;
      payload = locmsg_cols @ [ "datasrc" ] };
    { table_name = "Response_memmsg"; side = `Response; payload = memmsg_cols };
    { table_name = "Response_dirupd"; side = `Response; payload = dirupd_cols };
    { table_name = "Response_bdirupd"; side = `Response; payload = bdirupd_cols };
  ]

let statement g =
  let cols = Extend.input_columns @ g.payload in
  let side_pred =
    match g.side with
    | `Request -> "isrequest(inmsg)"
    | `Response -> "isresponse(inmsg)"
  in
  Printf.sprintf "CREATE TABLE %s AS SELECT DISTINCT %s FROM ED WHERE %s"
    g.table_name (String.concat ", " cols) side_pred

let sql_statements () = List.map statement groups

let run () = Relalg.Sql_exec.exec_script (Extend.database ()) (sql_statements ())

let implementation_tables db =
  List.map (fun g -> Relalg.Database.find db g.table_name) groups
