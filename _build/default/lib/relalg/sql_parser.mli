(** Recursive-descent parser for the SQL subset (see {!Sql_ast}).

    Besides standard predicate syntax ([=], [<>], [IN], [AND/OR/NOT],
    parentheses, boolean function application), WHERE clauses accept the
    paper's ternary constraint notation [cond ? p1 : p2], so column
    constraints from section 3 parse verbatim. *)

exception Parse_error of string

val parse_statement : string -> Sql_ast.statement
(** Parse one statement (an optional trailing [;] is allowed).
    @raise Parse_error / @raise Sql_lexer.Lex_error. *)

val parse_query : string -> Sql_ast.query
(** Parse a bare query. *)

val parse_predicate : string -> Expr.t
(** Parse a WHERE-style predicate on its own — used to read column
    constraints written in the paper's concrete syntax. *)
