type t = Value.t array

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash a = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 a
let of_list = Array.of_list
let to_list = Array.to_list
let strings ss = Array.of_list (List.map Value.str ss)

let pp fmt r =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (List.map Value.to_string (to_list r)))

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
