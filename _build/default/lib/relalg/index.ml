module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  table_name : string;
  column : string;
  buckets : Row.t list Vtbl.t;  (* rows in reverse table order *)
  size : int;
}

let build tbl column =
  let idx = Schema.index (Table.schema tbl) column in
  let buckets = Vtbl.create 64 in
  Table.iter
    (fun row ->
      let key = row.(idx) in
      let existing = Option.value (Vtbl.find_opt buckets key) ~default:[] in
      Vtbl.replace buckets key (row :: existing))
    tbl;
  { table_name = Table.name tbl; column; buckets; size = Table.cardinality tbl }

let table_name t = t.table_name
let column t = t.column

let lookup t v =
  List.rev (Option.value (Vtbl.find_opt t.buckets v) ~default:[])

let distinct_keys t = Vtbl.length t.buckets

let consistent t tbl =
  Table.cardinality tbl = t.size
  && Vtbl.fold (fun _ rows acc -> acc + List.length rows) t.buckets 0 = t.size
  &&
  let idx = Schema.index (Table.schema tbl) t.column in
  Table.fold
    (fun ok row -> ok && List.exists (Row.equal row) (lookup t row.(idx)))
    true tbl
