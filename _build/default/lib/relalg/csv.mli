(** CSV import/export of tables — the interchange format for the "SQL
    report generation" step and for loading channel assignments or
    externally-edited controller tables back into the database.

    Cells are rendered with {!Value.to_sql}-style typing rules on input:
    an empty cell or the literal [NULL] reads back as [Null], an integer
    literal as [Int], [true]/[false] as [Bool], anything else as [Str].
    Cells containing commas, quotes or newlines are double-quoted with
    [""] escaping, per RFC 4180. *)

exception Csv_error of { line : int; message : string }

val to_string : Table.t -> string
(** Header line (the schema) followed by one line per row. *)

val of_string : name:string -> string -> Table.t
(** Parse a CSV document; the first line is the schema.
    @raise Csv_error on ragged rows or unterminated quotes. *)

val save : filename:string -> Table.t -> unit
val load : name:string -> filename:string -> Table.t
