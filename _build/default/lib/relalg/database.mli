(** The central database: a catalog of named tables plus registered boolean
    functions usable in WHERE clauses (e.g. [isrequest(inmsg)], section 4.3
    of the paper).

    A database value is immutable; [add]/[register_function] return updated
    catalogs. *)

type t

exception Unknown_table of string
exception Duplicate_table of string

val empty : t
val add : t -> Table.t -> t
(** Register a table under its own name. @raise Duplicate_table. *)

val replace : t -> Table.t -> t
(** Like {!add} but overwrites an existing binding. *)

val remove : t -> string -> t
val find : t -> string -> Table.t
(** @raise Unknown_table. *)

val find_opt : t -> string -> Table.t option
val mem : t -> string -> bool
val tables : t -> Table.t list
(** All tables, in registration order. *)

val table_names : t -> string list

val register_function : t -> string -> (Value.t -> bool) -> t
(** Make a boolean function available to SQL WHERE clauses and
    {!Expr.eval}. *)

val functions : t -> Expr.funcs
(** Function resolver for this database. *)

val of_tables : Table.t list -> t
