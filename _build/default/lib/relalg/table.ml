type t = { name : string; schema : Schema.t; rows : Row.t list }

exception Arity_mismatch of { table : string; expected : int; got : int }

let check_arity t row =
  let expected = Schema.arity t.schema and got = Array.length row in
  if expected <> got then raise (Arity_mismatch { table = t.name; expected; got })

let create ~name schema = { name; schema; rows = [] }

let of_rows ~name schema rows =
  let t = { name; schema; rows } in
  List.iter (check_arity t) rows;
  t

let name t = t.name
let with_name name t = { t with name }
let schema t = t.schema
let rows t = t.rows
let cardinality t = List.length t.rows
let arity t = Schema.arity t.schema
let is_empty t = t.rows = []

let add t row =
  check_arity t row;
  { t with rows = t.rows @ [ row ] }

let add_all t extra =
  List.iter (check_arity t) extra;
  { t with rows = t.rows @ extra }

let mem t row = List.exists (Row.equal row) t.rows
let cell t row col = row.(Schema.index t.schema col)
let iter f t = List.iter f t.rows
let fold f init t = List.fold_left f init t.rows
let filter p t = { t with rows = List.filter p t.rows }

let map_rows f t =
  let t' = { t with rows = List.map f t.rows } in
  List.iter (check_arity t') t'.rows;
  t'

let sort t = { t with rows = List.sort Row.compare t.rows }

let distinct t =
  let seen = Row.Tbl.create (List.length t.rows) in
  let keep row =
    if Row.Tbl.mem seen row then false
    else begin
      Row.Tbl.add seen row ();
      true
    end
  in
  { t with rows = List.filter keep t.rows }

let row_set t =
  let set = Row.Tbl.create (List.length t.rows) in
  List.iter (fun r -> Row.Tbl.replace set r ()) t.rows;
  set

let subset a b =
  if not (Schema.union_compatible a.schema b.schema) then false
  else
    let bs = row_set b in
    List.for_all (Row.Tbl.mem bs) a.rows

let equal_as_sets a b = subset a b && subset b a

let to_string t =
  let cols = Schema.columns t.schema in
  let header = Array.of_list cols in
  let width = Array.map String.length header in
  List.iter
    (fun row ->
      Array.iteri
        (fun i v -> width.(i) <- max width.(i) (String.length (Value.to_string v)))
        row)
    t.rows;
  let buf = Buffer.create 256 in
  let pad i s =
    Buffer.add_string buf s;
    Buffer.add_string buf (String.make (width.(i) - String.length s + 2) ' ')
  in
  Array.iteri pad header;
  Buffer.add_char buf '\n';
  Array.iteri (fun i _ -> pad i (String.make width.(i) '-')) header;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Array.iteri (fun i v -> pad i (Value.to_string v)) row;
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "%s [%d rows]@.%s" t.name (cardinality t) (to_string t)

let row_assoc t row =
  List.mapi (fun i c -> c, row.(i)) (Schema.columns t.schema)
