(** Hash indexes over a single column.

    The workhorse access path behind the physical planner
    ({!Physical}): an equality predicate on an indexed column becomes a
    hash lookup instead of a scan.  Indexes are explicit immutable values
    built from a table snapshot — rebuilding after table updates is the
    caller's concern (the methodology's tables are generate-once). *)

type t

val build : Table.t -> string -> t
(** Index the given column. @raise Schema.Unknown_column. *)

val table_name : t -> string
val column : t -> string

val lookup : t -> Value.t -> Row.t list
(** All rows whose indexed cell equals the value, in table order. *)

val distinct_keys : t -> int

val consistent : t -> Table.t -> bool
(** Every row of the table is reachable through the index and vice versa
    (used by the property tests). *)
