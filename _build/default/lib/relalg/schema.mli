(** Relation schemas: an ordered sequence of distinct column names.

    Column order matters for printing and for positional row access, but all
    relational operations address columns by name.  Lookups are O(1) via an
    internal index. *)

type t

exception Duplicate_column of string
exception Unknown_column of string

val of_list : string list -> t
(** Build a schema from column names, in order.
    @raise Duplicate_column if a name repeats. *)

val columns : t -> string list
(** Column names in declaration order. *)

val arity : t -> int
val mem : t -> string -> bool

val index : t -> string -> int
(** Position of a column. @raise Unknown_column if absent. *)

val index_opt : t -> string -> int option

val append : t -> string list -> t
(** [append s cols] extends [s] with new columns on the right.
    @raise Duplicate_column on clash with existing columns. *)

val project : t -> string list -> t
(** Sub-schema with the given columns, in the {e given} order.
    @raise Unknown_column if any is absent. *)

val rename : t -> (string * string) list -> t
(** [rename s [(old, new_); ...]] renames columns; unmentioned columns keep
    their names. @raise Unknown_column / @raise Duplicate_column. *)

val equal : t -> t -> bool
(** Same columns in the same order. *)

val union_compatible : t -> t -> bool
(** Same arity and same column names in the same order (the precondition for
    UNION / EXCEPT / INTERSECT). *)

val pp : Format.formatter -> t -> unit
