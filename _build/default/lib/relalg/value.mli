(** Typed atomic values stored in relation cells.

    The paper's column tables hold symbolic protocol constants (message
    names, state names, presence-vector encodings) plus the distinguished
    [NULL] value, which denotes a dont-care on input columns and a no-op on
    output columns.  Unlike ANSI SQL, [NULL] here is an ordinary first-class
    constant: [Null = Null] holds.  This matches how the paper uses NULL
    (rows are generated with NULL cells and later compared for containment),
    and avoids three-valued logic the paper never relies on. *)

type t =
  | Null  (** dont-care (input column) / no-op (output column) *)
  | Str of string  (** symbolic constant, e.g. ["readex"], ["Busy-sd"] *)
  | Int of int  (** numeric constant, e.g. a queue capacity *)
  | Bool of bool  (** boolean constant *)

val equal : t -> t -> bool
(** Structural equality; [equal Null Null = true]. *)

val compare : t -> t -> int
(** Total order used for sorting and set-like table operations.  [Null] is
    smallest; then [Bool], [Int], [Str]. *)

val hash : t -> int
(** Hash consistent with {!equal}. *)

val is_null : t -> bool

val str : string -> t
(** [str s] is [Str s]. *)

val to_string : t -> string
(** Rendering used in table printouts and generated reports; [Null] prints
    as ["-"]. *)

val to_sql : t -> string
(** Rendering as a SQL literal; strings are single-quoted, [Null] prints as
    [NULL]. *)

val pp : Format.formatter -> t -> unit
