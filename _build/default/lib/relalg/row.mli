(** Rows (tuples) of a relation: flat arrays of {!Value.t}, positionally
    aligned with a {!Schema.t}. *)

type t = Value.t array

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic over {!Value.compare}. *)

val hash : t -> int

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val strings : string list -> t
(** Convenience: build a row of [Str] cells (["-"] does {e not} map to
    [Null]; use {!of_list} with explicit [Null]s where needed). *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
