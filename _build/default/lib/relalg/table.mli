(** Relations: a named schema plus a sequence of rows.

    Tables are immutable values; every operation returns a new table.  Rows
    keep insertion order (useful for printing controller tables in the
    paper's layout) but all set-like operations ({!Ops}) treat a table as a
    set of rows. *)

type t

exception Arity_mismatch of { table : string; expected : int; got : int }

val create : name:string -> Schema.t -> t
(** Empty table. *)

val of_rows : name:string -> Schema.t -> Row.t list -> t
(** @raise Arity_mismatch if any row length differs from the schema arity. *)

val name : t -> string
val with_name : string -> t -> t
val schema : t -> Schema.t
val rows : t -> Row.t list
(** Rows in insertion order. *)

val cardinality : t -> int
val arity : t -> int
val is_empty : t -> bool

val add : t -> Row.t -> t
(** Append one row. @raise Arity_mismatch. *)

val add_all : t -> Row.t list -> t
val mem : t -> Row.t -> bool

val cell : t -> Row.t -> string -> Value.t
(** [cell t row col] reads a named field of a row of [t].
    @raise Schema.Unknown_column. *)

val iter : (Row.t -> unit) -> t -> unit
val fold : ('a -> Row.t -> 'a) -> 'a -> t -> 'a
val filter : (Row.t -> bool) -> t -> t
val map_rows : (Row.t -> Row.t) -> t -> t
(** Row-wise rewrite preserving the schema. @raise Arity_mismatch if the
    function changes row length. *)

val sort : t -> t
(** Rows in {!Row.compare} order. *)

val distinct : t -> t
(** Remove duplicate rows, keeping the first occurrence of each. *)

val equal_as_sets : t -> t -> bool
(** Same schema (column names in order) and same set of rows. *)

val subset : t -> t -> bool
(** [subset a b]: every row of [a] occurs in [b] (schemas must be
    union-compatible).  This is the paper's "resulting table contains the
    original debugged table" check for implementation mappings. *)

val to_string : t -> string
(** Aligned textual rendering with a header line, as in Figure 3. *)

val pp : Format.formatter -> t -> unit

val row_assoc : t -> Row.t -> (string * Value.t) list
(** A row as (column, value) pairs, in schema order. *)
