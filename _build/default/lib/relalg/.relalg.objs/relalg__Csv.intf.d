lib/relalg/csv.mli: Table
