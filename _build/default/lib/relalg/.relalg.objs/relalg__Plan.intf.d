lib/relalg/plan.mli: Database Expr Sql_ast Table
