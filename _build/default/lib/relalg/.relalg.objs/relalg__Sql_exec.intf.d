lib/relalg/sql_exec.mli: Database Sql_ast Table
