lib/relalg/sql_lexer.ml: Buffer Format List Printf String
