lib/relalg/sql_exec.ml: Array Database List Ops Printf Row Schema Sql_ast Sql_parser Table Value
