lib/relalg/csv.ml: Buffer Fun List Printf Row Schema String Table Value
