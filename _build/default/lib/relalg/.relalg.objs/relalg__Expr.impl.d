lib/relalg/expr.ml: Array Format Hashtbl List Schema String Value
