lib/relalg/ops.ml: Array Expr List Option Printf Row Schema Table
