lib/relalg/value.ml: Bool Format Hashtbl Int String
