lib/relalg/profile.mli: Table Value
