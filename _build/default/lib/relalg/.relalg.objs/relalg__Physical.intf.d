lib/relalg/physical.mli: Database Expr Plan Table Value
