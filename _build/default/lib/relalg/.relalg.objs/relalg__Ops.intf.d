lib/relalg/ops.mli: Expr Row Schema Table Value
