lib/relalg/sql_ast.mli: Expr Format Value
