lib/relalg/index.mli: Row Table Value
