lib/relalg/table.ml: Array Buffer Format List Row Schema String Value
