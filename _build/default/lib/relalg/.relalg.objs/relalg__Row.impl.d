lib/relalg/row.ml: Array Format Hashtbl List Set String Value
