lib/relalg/expr.mli: Format Schema Value
