lib/relalg/sql_parser.ml: Array Expr Format List Printf Sql_ast Sql_lexer String Value
