lib/relalg/profile.ml: Array Buffer Hashtbl List Option Printf Schema Table Value
