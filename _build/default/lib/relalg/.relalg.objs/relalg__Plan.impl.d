lib/relalg/plan.ml: Array Buffer Database Expr Format List Ops Printf Schema Sql_ast Sql_parser String Table Value
