lib/relalg/index.ml: Array Hashtbl List Option Row Schema Table Value
