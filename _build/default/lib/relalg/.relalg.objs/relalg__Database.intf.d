lib/relalg/database.mli: Expr Table Value
