lib/relalg/sql_parser.mli: Expr Sql_ast
