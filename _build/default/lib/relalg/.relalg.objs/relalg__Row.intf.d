lib/relalg/row.mli: Format Hashtbl Set Value
