lib/relalg/database.ml: List Table Value
