lib/relalg/solver.ml: Array Expr Hashtbl List Printf Schema Table Value
