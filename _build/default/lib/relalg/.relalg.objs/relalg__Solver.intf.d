lib/relalg/solver.mli: Expr Table Value
