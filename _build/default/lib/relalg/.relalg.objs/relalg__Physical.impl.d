lib/relalg/physical.ml: Array Buffer Database Expr Format Hashtbl Index List Ops Plan Printf Schema Sql_parser String Table Value
