lib/relalg/sql_ast.ml: Expr Format List String Value
