lib/relalg/sql_lexer.mli: Format
