lib/relalg/table.mli: Format Row Schema Value
