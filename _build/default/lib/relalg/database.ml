type t = {
  tables : (string * Table.t) list;  (* registration order *)
  funcs : (string * (Value.t -> bool)) list;
}

exception Unknown_table of string
exception Duplicate_table of string

let empty = { tables = []; funcs = [] }

let add db table =
  let n = Table.name table in
  if List.mem_assoc n db.tables then raise (Duplicate_table n);
  { db with tables = db.tables @ [ n, table ] }

let replace db table =
  let n = Table.name table in
  if List.mem_assoc n db.tables then
    { db with tables = List.map (fun (k, t) -> if k = n then k, table else k, t) db.tables }
  else add db table

let remove db n = { db with tables = List.remove_assoc n db.tables }

let find db n =
  match List.assoc_opt n db.tables with
  | Some t -> t
  | None -> raise (Unknown_table n)

let find_opt db n = List.assoc_opt n db.tables
let mem db n = List.mem_assoc n db.tables
let tables db = List.map snd db.tables
let table_names db = List.map fst db.tables

let register_function db name f = { db with funcs = (name, f) :: db.funcs }
let functions db name = List.assoc_opt name db.funcs
let of_tables ts = List.fold_left add empty ts
