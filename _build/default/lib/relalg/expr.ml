type operand = Col of string | Const of Value.t

type t =
  | True
  | False
  | Eq of operand * operand
  | Neq of operand * operand
  | In of operand * Value.t list
  | Fn of string * operand
  | And of t * t
  | Or of t * t
  | Not of t
  | Ternary of t * t * t

type funcs = string -> (Value.t -> bool) option

exception Unknown_function of string

let no_funcs _ = None
let col c = Col c
let s x = Const (Value.Str x)
let eq c v = Eq (Col c, Const (Value.Str v))
let eq_null c = Eq (Col c, Const Value.Null)
let neq c v = Neq (Col c, Const (Value.Str v))
let isin c vs = In (Col c, List.map Value.str vs)

let conj = function
  | [] -> True
  | e :: es -> List.fold_left (fun acc x -> And (acc, x)) e es

let disj = function
  | [] -> False
  | e :: es -> List.fold_left (fun acc x -> Or (acc, x)) e es

let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ternary c a b = Ternary (c, a, b)

let free_columns e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let add = function
    | Col c ->
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          acc := c :: !acc
        end
    | Const _ -> ()
  in
  let rec go = function
    | True | False -> ()
    | Eq (a, b) | Neq (a, b) -> add a; add b
    | In (a, _) | Fn (_, a) -> add a
    | And (a, b) | Or (a, b) -> go a; go b
    | Not a -> go a
    | Ternary (c, a, b) -> go c; go a; go b
  in
  go e;
  List.rev !acc

let eval ?(funcs = no_funcs) schema row e =
  let operand = function
    | Col c -> row.(Schema.index schema c)
    | Const v -> v
  in
  let rec go = function
    | True -> true
    | False -> false
    | Eq (a, b) -> Value.equal (operand a) (operand b)
    | Neq (a, b) -> not (Value.equal (operand a) (operand b))
    | In (a, vs) ->
        let v = operand a in
        List.exists (Value.equal v) vs
    | Fn (f, a) -> (
        match funcs f with
        | Some p -> p (operand a)
        | None -> raise (Unknown_function f))
    | And (a, b) -> go a && go b
    | Or (a, b) -> go a || go b
    | Not a -> not (go a)
    | Ternary (c, a, b) -> if go c then go a else go b
  in
  go e

let compile ?(funcs = no_funcs) schema e =
  let operand = function
    | Col c ->
        let i = Schema.index schema c in
        fun row -> row.(i)
    | Const v -> fun _ -> v
  in
  let rec go = function
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Eq (a, b) ->
        let fa = operand a and fb = operand b in
        fun row -> Value.equal (fa row) (fb row)
    | Neq (a, b) ->
        let fa = operand a and fb = operand b in
        fun row -> not (Value.equal (fa row) (fb row))
    | In (a, vs) ->
        let fa = operand a in
        fun row ->
          let v = fa row in
          List.exists (Value.equal v) vs
    | Fn (f, a) -> (
        match funcs f with
        | Some p ->
            let fa = operand a in
            fun row -> p (fa row)
        | None -> raise (Unknown_function f))
    | And (a, b) ->
        let fa = go a and fb = go b in
        fun row -> fa row && fb row
    | Or (a, b) ->
        let fa = go a and fb = go b in
        fun row -> fa row || fb row
    | Not a ->
        let fa = go a in
        fun row -> not (fa row)
    | Ternary (c, a, b) ->
        let fc = go c and fa = go a and fb = go b in
        fun row -> if fc row then fa row else fb row
  in
  go e

let pp_operand fmt = function
  | Col c -> Format.pp_print_string fmt c
  | Const v -> Format.pp_print_string fmt (Value.to_sql v)

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp_operand a pp_operand b
  | Neq (a, b) -> Format.fprintf fmt "%a <> %a" pp_operand a pp_operand b
  | In (a, vs) ->
      Format.fprintf fmt "%a in (%s)" pp_operand a
        (String.concat ", " (List.map Value.to_sql vs))
  | Fn (f, a) -> Format.fprintf fmt "%s(%a)" f pp_operand a
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf fmt "not %a" pp a
  | Ternary (c, a, b) -> Format.fprintf fmt "(%a ? %a : %a)" pp c pp a pp b

let to_sql e =
  (* Ternaries have no SQL surface syntax; expand before rendering. *)
  let rec expand = function
    | (True | False | Eq _ | Neq _ | In _ | Fn _) as atom -> atom
    | And (a, b) -> And (expand a, expand b)
    | Or (a, b) -> Or (expand a, expand b)
    | Not a -> Not (expand a)
    | Ternary (c, a, b) ->
        let c = expand c in
        Or (And (c, expand a), And (Not c, expand b))
  in
  Format.asprintf "%a" pp (expand e)
