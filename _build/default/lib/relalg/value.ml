type t = Null | Str of string | Int of int | Bool of bool

let equal a b =
  match a, b with
  | Null, Null -> true
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | (Null | Str _ | Int _ | Bool _), _ -> false

let rank = function Null -> 0 | Bool _ -> 1 | Int _ -> 2 | Str _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let hash = function
  | Null -> 0
  | Bool b -> if b then 17 else 19
  | Int i -> 23 * i + 5
  | Str s -> 31 * Hashtbl.hash s + 7

let is_null = function Null -> true | Str _ | Int _ | Bool _ -> false
let str s = Str s

let to_string = function
  | Null -> "-"
  | Str s -> s
  | Int i -> string_of_int i
  | Bool b -> string_of_bool b

let to_sql = function
  | Null -> "NULL"
  | Str s -> "'" ^ s ^ "'"
  | Int i -> string_of_int i
  | Bool b -> if b then "TRUE" else "FALSE"

let pp fmt v = Format.pp_print_string fmt (to_string v)
