type t = { cols : string array; idx : (string, int) Hashtbl.t }

exception Duplicate_column of string
exception Unknown_column of string

let of_list names =
  let cols = Array.of_list names in
  let idx = Hashtbl.create (Array.length cols) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem idx c then raise (Duplicate_column c);
      Hashtbl.add idx c i)
    cols;
  { cols; idx }

let columns s = Array.to_list s.cols
let arity s = Array.length s.cols
let mem s c = Hashtbl.mem s.idx c

let index s c =
  match Hashtbl.find_opt s.idx c with
  | Some i -> i
  | None -> raise (Unknown_column c)

let index_opt s c = Hashtbl.find_opt s.idx c
let append s extra = of_list (columns s @ extra)

let project s keep =
  List.iter (fun c -> ignore (index s c)) keep;
  of_list keep

let rename s mapping =
  List.iter (fun (old, _) -> ignore (index s old)) mapping;
  let renamed c = match List.assoc_opt c mapping with Some n -> n | None -> c in
  of_list (List.map renamed (columns s))

let equal a b = columns a = columns b
let union_compatible = equal

let pp fmt s =
  Format.fprintf fmt "(%s)" (String.concat ", " (columns s))
