(* List-of-rows reference implementation of the relational core.

   This is the representation lib/relalg used before the columnar
   storage engine: a table is its schema plus a plain list of value
   arrays, predicates are interpreted per row with [Expr.eval], and
   set operations hash whole rows.  It exists only as the baseline
   side of the representation benchmarks in [main] — keep it honest
   (hash joins, hashed distinct) rather than a strawman, so measured
   speedups reflect the storage change and not a worse algorithm. *)

open Relalg

type t = { schema : Schema.t; rows : Row.t list }

let of_table tbl = { schema = Table.schema tbl; rows = Table.rows tbl }
let cardinality t = List.length t.rows

let select ?funcs pred t =
  { t with rows = List.filter (fun r -> Expr.eval ?funcs t.schema r pred) t.rows }

let project cols t =
  let idxs = List.map (Schema.index t.schema) cols in
  {
    schema = Schema.project t.schema cols;
    rows =
      List.map
        (fun r -> Array.of_list (List.map (fun i -> r.(i)) idxs))
        t.rows;
  }

(* rows hashed as value lists (arrays hash by address under the
   polymorphic hash in some runtimes; lists are structural everywhere) *)
let row_key r = Array.to_list r

let distinct t =
  let seen = Hashtbl.create 64 in
  let rows =
    List.filter
      (fun r ->
        let k = row_key r in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      t.rows
  in
  { t with rows }

let union a b = distinct { a with rows = a.rows @ b.rows }

let except a b =
  let inb = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace inb (row_key r) ()) b.rows;
  distinct
    { a with rows = List.filter (fun r -> not (Hashtbl.mem inb (row_key r))) a.rows }

let group_count ~by t =
  let idxs = List.map (Schema.index t.schema) by in
  let counts = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      let k = List.map (fun i -> r.(i)) idxs in
      match Hashtbl.find_opt counts k with
      | Some n -> Hashtbl.replace counts k (n + 1)
      | None ->
          Hashtbl.add counts k 1;
          order := k :: !order)
    t.rows;
  List.rev_map (fun k -> (Array.of_list k, Hashtbl.find counts k)) !order

(* hash join: bucket [b] by its key values, probe with [a]'s; keeps all
   columns of [a] plus the non-key columns of [b], like Ops.equi_join *)
let equi_join ~on a b =
  let aidx = List.map (fun (ca, _) -> Schema.index a.schema ca) on in
  let bidx = List.map (fun (_, cb) -> Schema.index b.schema cb) on in
  let bkeys = List.map snd on in
  let bkeep =
    List.filter (fun c -> not (List.mem c bkeys)) (Schema.columns b.schema)
  in
  let bkeep_idx = List.map (Schema.index b.schema) bkeep in
  let buckets = Hashtbl.create 64 in
  List.iter
    (fun rb ->
      let k = List.map (fun i -> rb.(i)) bidx in
      let prev = Option.value ~default:[] (Hashtbl.find_opt buckets k) in
      Hashtbl.replace buckets k (rb :: prev))
    b.rows;
  let rows =
    List.concat_map
      (fun ra ->
        let k = List.map (fun i -> ra.(i)) aidx in
        match Hashtbl.find_opt buckets k with
        | None -> []
        | Some matches ->
            List.rev_map
              (fun rb ->
                Array.append ra
                  (Array.of_list (List.map (fun i -> rb.(i)) bkeep_idx)))
              matches)
      a.rows
  in
  { schema = Schema.append a.schema bkeep; rows }
