(* Benchmark entry point: first the experiment harness that regenerates
   every table/figure of the paper (E1-E11), then Bechamel
   micro-benchmarks of each pipeline stage. *)

open Bechamel
open Toolkit

let dir_solver_spec =
  lazy (Protocol.Ctrl_spec.to_solver_spec Protocol.Dir_controller.spec)

let db = lazy (Protocol.database ())
let mcheck_tables = lazy (Mcheck.Semantics.load_tables ())

(* Each benchmark regenerates one of the paper's artifacts. *)
let benchmarks =
  [
    (* E2/E3: controller-table generation *)
    Test.make ~name:"generate-D-incremental"
      (Staged.stage (fun () ->
           ignore (Relalg.Solver.generate (Lazy.force dir_solver_spec))));
    Test.make ~name:"generate-M-monolithic"
      (Staged.stage (fun () ->
           ignore
             (Relalg.Solver.generate_monolithic
                (Protocol.Ctrl_spec.to_solver_spec Protocol.Mem_controller.spec))));
    (* E5: the three deadlock analyses *)
    Test.make ~name:"deadlock-V-initial"
      (Staged.stage (fun () ->
           ignore (Checker.Deadlock.analyze Checker.Vcassign.initial)));
    Test.make ~name:"deadlock-V-vc4"
      (Staged.stage (fun () ->
           ignore (Checker.Deadlock.analyze Checker.Vcassign.with_vc4)));
    Test.make ~name:"deadlock-V-debugged"
      (Staged.stage (fun () ->
           ignore (Checker.Deadlock.analyze Checker.Vcassign.debugged)));
    (* E6: the invariant suite *)
    Test.make ~name:"invariants-all"
      (Staged.stage (fun () ->
           ignore (Checker.Invariant.run_all (Lazy.force db))));
    Test.make ~name:"invariant-sql-single"
      (Staged.stage (fun () ->
           ignore
             (Relalg.Sql_exec.is_empty (Lazy.force db)
                "SELECT dirst, dirpv FROM D WHERE dirst = 'MESI' AND NOT dirpv = 'one'")));
    (* E7: the mapping pipeline *)
    Test.make ~name:"mapping-partition"
      (Staged.stage (fun () -> ignore (Mapping.Partition.run ())));
    (* query engine: sequential scan vs hash-index access path *)
    Test.make ~name:"select-D-seqscan"
      (Staged.stage (fun () ->
           ignore
             (Relalg.Sql_exec.query (Lazy.force db)
                "SELECT * FROM D WHERE inmsg = 'readex'")));
    Test.make ~name:"select-D-indexed"
      (Staged.stage
         (let store = Relalg.Physical.make_store (Lazy.force db) in
          let indexes = [ "D", "inmsg" ] in
          ignore (Relalg.Physical.run ~indexes store "SELECT * FROM D WHERE inmsg = 'readex'");
          fun () ->
            ignore
              (Relalg.Physical.run ~indexes store
                 "SELECT * FROM D WHERE inmsg = 'readex'")));
    (* E9: one bounded model-checking run *)
    Test.make ~name:"mcheck-2node-loadstore"
      (Staged.stage (fun () ->
           ignore
             (Mcheck.Explore.run ~max_states:5_000
                ~tables:(Lazy.force mcheck_tables)
                {
                  Mcheck.Semantics.nodes = 2; addrs = 1;
                  ops = [ "load"; "store" ]; capacity = 3; io_addrs = []; lossy = false;
                })));
    Test.make ~name:"mcheck-3node-symmetry"
      (Staged.stage (fun () ->
           ignore
             (Mcheck.Explore.run ~max_states:5_000 ~symmetry:true
                ~tables:(Lazy.force mcheck_tables)
                {
                  Mcheck.Semantics.nodes = 3; addrs = 1;
                  ops = [ "load"; "store" ]; capacity = 3; io_addrs = []; lossy = false;
                })));
    (* E10: the simulator replay *)
    Test.make ~name:"sim-figure4-replay"
      (Staged.stage (fun () ->
           ignore (Sim.Scenario.figure4 Checker.Vcassign.with_vc4)));
  ]

let run_benchmarks () =
  Printf.printf "\n=== Bechamel timings (per regeneration) ===\n%!";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None
      ~stabilize:false ()
  in
  let measurements = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (x :: _) -> x
            | _ -> nan
          in
          measurements := (name, ns) :: !measurements;
          Printf.printf "%-28s %12.3f ms/run\n%!" name (ns /. 1e6))
        analyzed)
    benchmarks;
  List.rev !measurements

(* Machine-readable perf snapshot (BENCH_<date>.json, schema
   asura-bench/1) so successive PRs can track the performance
   trajectory without re-parsing the text output. *)
let write_json measurements =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let json =
    Obs.Json.Obj
      [
        "schema", Obs.Json.Str "asura-bench/1";
        "date", Obs.Json.Str date;
        "ocaml", Obs.Json.Str Sys.ocaml_version;
        "word_size", Obs.Json.Int Sys.word_size;
        ( "benchmarks",
          Obs.Json.List
            (List.map
               (fun (name, ns) ->
                 Obs.Json.Obj
                   [
                     "name", Obs.Json.Str name;
                     "ns_per_run", Obs.Json.Float ns;
                   ])
               measurements) );
      ]
  in
  let file = Printf.sprintf "BENCH_%s.json" date in
  let oc = open_out file in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %d measurements to %s\n" (List.length measurements)
    file

let () =
  let json = Array.exists (( = ) "--json") Sys.argv in
  Printf.printf "ASURA coherence-protocol design toolchain: benchmark suite\n";
  if json then begin
    (* machine-readable mode: micro-benchmarks only, plus the snapshot *)
    let measurements = run_benchmarks () in
    write_json measurements
  end
  else begin
    Printf.printf "(reproduces every table/figure of the IPPS 2003 paper)\n";
    Experiments.run_all ();
    ignore (run_benchmarks ())
  end
