(* Benchmark entry point: first the experiment harness that regenerates
   every table/figure of the paper (E1-E11), then Bechamel
   micro-benchmarks of each pipeline stage. *)

open Bechamel
open Toolkit

let dir_solver_spec =
  lazy (Protocol.Ctrl_spec.to_solver_spec Protocol.Dir_controller.spec)

let db = lazy (Protocol.database ())
let mcheck_tables = lazy (Mcheck.Semantics.load_tables ())

(* Each benchmark regenerates one of the paper's artifacts. *)
let benchmarks =
  [
    (* E2/E3: controller-table generation *)
    Test.make ~name:"generate-D-incremental"
      (Staged.stage (fun () ->
           ignore (Relalg.Solver.generate (Lazy.force dir_solver_spec))));
    Test.make ~name:"generate-M-monolithic"
      (Staged.stage (fun () ->
           ignore
             (Relalg.Solver.generate_monolithic
                (Protocol.Ctrl_spec.to_solver_spec Protocol.Mem_controller.spec))));
    (* E5: the three deadlock analyses *)
    Test.make ~name:"deadlock-V-initial"
      (Staged.stage (fun () ->
           ignore (Checker.Deadlock.analyze Checker.Vcassign.initial)));
    Test.make ~name:"deadlock-V-vc4"
      (Staged.stage (fun () ->
           ignore (Checker.Deadlock.analyze Checker.Vcassign.with_vc4)));
    Test.make ~name:"deadlock-V-debugged"
      (Staged.stage (fun () ->
           ignore (Checker.Deadlock.analyze Checker.Vcassign.debugged)));
    (* E6: the invariant suite *)
    Test.make ~name:"invariants-all"
      (Staged.stage (fun () ->
           ignore (Checker.Invariant.run_all (Lazy.force db))));
    Test.make ~name:"invariant-sql-single"
      (Staged.stage (fun () ->
           ignore
             (Relalg.Sql_exec.is_empty (Lazy.force db)
                "SELECT dirst, dirpv FROM D WHERE dirst = 'MESI' AND NOT dirpv = 'one'")));
    (* E7: the mapping pipeline *)
    Test.make ~name:"mapping-partition"
      (Staged.stage (fun () -> ignore (Mapping.Partition.run ())));
    (* query engine: sequential scan vs hash-index access path *)
    Test.make ~name:"select-D-seqscan"
      (Staged.stage (fun () ->
           ignore
             (Relalg.Sql_exec.query (Lazy.force db)
                "SELECT * FROM D WHERE inmsg = 'readex'")));
    Test.make ~name:"select-D-indexed"
      (Staged.stage
         (let store = Relalg.Physical.make_store (Lazy.force db) in
          let indexes = [ "D", "inmsg" ] in
          ignore (Relalg.Physical.run ~indexes store "SELECT * FROM D WHERE inmsg = 'readex'");
          fun () ->
            ignore
              (Relalg.Physical.run ~indexes store
                 "SELECT * FROM D WHERE inmsg = 'readex'")));
    (* E9: one bounded model-checking run *)
    Test.make ~name:"mcheck-2node-loadstore"
      (Staged.stage (fun () ->
           ignore
             (Mcheck.Explore.run ~max_states:5_000
                ~tables:(Lazy.force mcheck_tables)
                {
                  Mcheck.Semantics.nodes = 2; addrs = 1;
                  ops = [ "load"; "store" ]; capacity = 3; io_addrs = []; lossy = false;
                })));
    Test.make ~name:"mcheck-3node-symmetry"
      (Staged.stage (fun () ->
           ignore
             (Mcheck.Explore.run ~max_states:5_000 ~symmetry:true
                ~tables:(Lazy.force mcheck_tables)
                {
                  Mcheck.Semantics.nodes = 3; addrs = 1;
                  ops = [ "load"; "store" ]; capacity = 3; io_addrs = []; lossy = false;
                })));
    (* E10: the simulator replay *)
    Test.make ~name:"sim-figure4-replay"
      (Staged.stage (fun () ->
           ignore (Sim.Scenario.figure4 Checker.Vcassign.with_vc4)));
  ]

(* --- exploration-core A/B pairs --------------------------------------
   The same bounded search through explicitly pinned engines.  The
   packed/boxed pair isolates the representation change (bit-packed
   vectors + open addressing vs Marshal strings + Hashtbl) on one
   domain; the steal/level pair compares the two parallel frontiers at
   the requested degree.  Both surface in the JSON snapshot "pairs". *)
let mcheck_engine_cfg =
  {
    Mcheck.Semantics.nodes = 2; addrs = 1; ops = [ "load"; "store" ];
    capacity = 3; io_addrs = []; lossy = false;
  }

let mcheck_engine_test ~name engine =
  Test.make ~name
    (Staged.stage (fun () ->
         ignore
           (Mcheck.Explore.run ~max_states:5_000 ~engine
              ~tables:(Lazy.force mcheck_tables) mcheck_engine_cfg)))

let engine_baseline_benchmarks =
  [
    mcheck_engine_test ~name:"mcheck-2node-boxed" `Seq;
    mcheck_engine_test ~name:"mcheck-2node-packed" `Seq_packed;
  ]

let engine_degree_benchmarks =
  [
    mcheck_engine_test ~name:"mcheck-2node-level" `Level;
    mcheck_engine_test ~name:"mcheck-2node-steal" `Steal;
    (* the flight-recorder overhead control: the same steal-engine search
       with event recording compiled in but switched off, so the
       recorder-on-vs-off pair prices the always-on default.  The CI gate
       holds the on/off ratio at <= 1.05x. *)
    Test.make ~name:"mcheck-2node-steal-recoff"
      (Staged.stage (fun () ->
           Obs.Flightrec.with_disabled (fun () ->
               ignore
                 (Mcheck.Explore.run ~max_states:5_000 ~engine:`Steal
                    ~tables:(Lazy.force mcheck_tables) mcheck_engine_cfg))));
  ]

(* (pair name, reference measurement, candidate measurement, domains the
   pair ran at); speedup = reference / candidate. *)
let engine_pair_specs ~domains =
  [
    "mcheck-pack-vs-boxed", "mcheck-2node-boxed", "mcheck-2node-packed", 1;
    "mcheck-steal-vs-level", "mcheck-2node-level", "mcheck-2node-steal", domains;
    (* reference = recording off, candidate = recording on: speedup is
       off/on, so the <= 1.05x overhead budget reads as speedup >= 0.952 *)
    ( "mcheck-recorder-on-vs-off", "mcheck-2node-steal-recoff",
      "mcheck-2node-steal", domains );
  ]

(* --- columnar vs list-of-rows representation ------------------------
   The storage engine keeps tables columnar and dictionary-encoded;
   [Listrep] is the list-of-rows representation it replaced.  Each
   E3/E4/E6-style workload runs the same operator pipeline through
   both, and the JSON snapshot pairs them with their speedup. *)

let rep_d = lazy (Protocol.Dir_controller.table ())
let rep_dl = lazy (Listrep.of_table (Lazy.force rep_d))

let rep_workloads =
  let open Relalg in
  let e3_pred = Expr.(eq "inmsg" "readex" &&& eq "bdirlookup" "hit") in
  let e4_a = Expr.eq "inmsg" "readex"
  and e4_b = Expr.eq "inmsg" "wb"
  and e4_c = Expr.eq "dirst" "SI" in
  (* a violation scan, like the E6 invariants: select the rows breaking
     the MESI/dirpv invariant (an empty result on a correct D — the
     work is the full-table scan, not the materialization) *)
  let e6_pred = Expr.(eq "dirst" "MESI" &&& neq "dirpv" "one") in
  [
    (* E3-style: local-message fan-out of one request class *)
    ( "select-distinct",
      (fun () ->
        Table.cardinality
          (Table.distinct
             (Ops.project [ "locmsg" ] (Ops.select e3_pred (Lazy.force rep_d))))),
      fun () ->
        Listrep.cardinality
          (Listrep.distinct
             (Listrep.project [ "locmsg" ]
                (Listrep.select e3_pred (Lazy.force rep_dl)))) );
    (* E4-style: assembling a dependency table from per-class unions *)
    ( "union-except",
      (fun () ->
        let d = Lazy.force rep_d in
        Table.cardinality
          (Ops.except
             (Ops.union (Ops.select e4_a d) (Ops.select e4_b d))
             (Ops.select e4_c d))),
      fun () ->
        let d = Lazy.force rep_dl in
        Listrep.cardinality
          (Listrep.except
             (Listrep.union (Listrep.select e4_a d) (Listrep.select e4_b d))
             (Listrep.select e4_c d)) );
    (* E6-style: one ternary invariant scanned over all of D *)
    ( "invariant-scan",
      (fun () -> Table.cardinality (Ops.select e6_pred (Lazy.force rep_d))),
      fun () ->
        Listrep.cardinality (Listrep.select e6_pred (Lazy.force rep_dl)) );
    (* E6-style: join D back to its state summary, plus a group count *)
    ( "join-group",
      (fun () ->
        let d = Lazy.force rep_d in
        let states = Table.distinct (Ops.project [ "dirst"; "dirpv" ] d) in
        Table.cardinality
          (Ops.equi_join ~on:[ "dirst", "dirst"; "dirpv", "dirpv" ] d states)
        + List.length (Ops.group_count ~by:[ "inmsg"; "dirst" ] d)),
      fun () ->
        let d = Lazy.force rep_dl in
        let states = Listrep.distinct (Listrep.project [ "dirst"; "dirpv" ] d) in
        Listrep.cardinality
          (Listrep.equi_join ~on:[ "dirst", "dirst"; "dirpv", "dirpv" ] d states)
        + List.length (Listrep.group_count ~by:[ "inmsg"; "dirst" ] d) );
    (* the same join+group workload through the cost-based planner's
       vectorized batch engine vs. the row-at-a-time list-of-rows
       reference — the pair the planner PR is gated on (join-group above
       shows the pre-planner columnar operators stuck near 1.0x on it) *)
    ( "join-group-planner",
      (fun () ->
        let d = Lazy.force rep_d in
        let states = Planner.distinct (Ops.project [ "dirst"; "dirpv" ] d) in
        Table.cardinality
          (Planner.equi_join ~on:[ "dirst", "dirst"; "dirpv", "dirpv" ] d
             states)
        + Table.cardinality (Planner.group_count ~by:[ "inmsg"; "dirst" ] d)),
      fun () ->
        let d = Lazy.force rep_dl in
        let states = Listrep.distinct (Listrep.project [ "dirst"; "dirpv" ] d) in
        Listrep.cardinality
          (Listrep.equi_join ~on:[ "dirst", "dirst"; "dirpv", "dirpv" ] d states)
        + List.length (Listrep.group_count ~by:[ "inmsg"; "dirst" ] d) );
  ]

(* Both sides of every pair must compute the same answer, or the
   timings compare different work. *)
let rep_sanity =
  lazy
    (List.iter
       (fun (name, columnar, listrep) ->
         let c = columnar () and l = listrep () in
         if c <> l then
           failwith
             (Printf.sprintf
                "representation bench %s disagrees: columnar=%d listrep=%d"
                name c l))
       rep_workloads)

let rep_benchmarks =
  List.concat_map
    (fun (name, columnar, listrep) ->
      [
        Test.make ~name:("rep-" ^ name ^ "-columnar")
          (Staged.stage (fun () -> ignore (columnar ())));
        Test.make ~name:("rep-" ^ name ^ "-listrep")
          (Staged.stage (fun () -> ignore (listrep ())));
      ])
    rep_workloads

(* The benchmarks whose hot path is parallelized; each runs twice in
   machine-readable mode, pinned to one domain and at the requested
   degree, so the JSON snapshot records the seq/par pair. *)
let paired_names =
  [ "generate-D-incremental"; "deadlock-V-vc4"; "mcheck-3node-symmetry" ]

(* --only SUBSTR: restrict every suite to benchmarks whose name contains
   SUBSTR, so one pair (say the recorder overhead gate) can be
   re-measured in seconds instead of re-running the whole suite.  The
   JSON snapshot then carries only the selected measurements. *)
let only =
  let argv = Sys.argv in
  let o = ref None in
  Array.iteri
    (fun i arg ->
      if arg = "--only" && i + 1 < Array.length argv then o := Some argv.(i + 1))
    argv;
  !o

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let keep test =
  match only with
  | None -> true
  | Some sub -> contains ~sub (Test.name test)

let ols_estimate ~name benchmark analyzed =
  (* Refuse to report a regression slope fitted to fewer than two
     samples — that is not an estimate, it is noise — rather than let a
     NaN leak into the JSON snapshot and poison downstream comparisons. *)
  let samples = Array.length benchmark.Benchmark.lr in
  if samples < 2 then
    failwith
      (Printf.sprintf
         "bench %s: only %d raw sample(s); OLS needs at least 2 — raise \
          the quota or run limit"
         name samples);
  match Analyze.OLS.estimates analyzed with
  | Some (ns :: _) when not (Float.is_nan ns) -> ns
  | Some _ | None ->
      failwith
        (Printf.sprintf
           "bench %s: OLS fit over %d samples produced no estimate" name
           samples)

let run_one ~domains test =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None
      ~stabilize:false ()
  in
  let results =
    Par.Pool.with_domains domains (fun () ->
        Benchmark.all cfg [ instance ] test)
  in
  let analyzed = Analyze.all ols instance results in
  let measurements = ref [] in
  Hashtbl.iter
    (fun name a ->
      let ns = ols_estimate ~name (Hashtbl.find results name) a in
      measurements := (name, ns) :: !measurements;
      Printf.printf "%-34s %12.3f ms/run\n%!" name (ns /. 1e6))
    analyzed;
  !measurements

let run_benchmarks ~domains () =
  Lazy.force rep_sanity;
  Printf.printf "\n=== Bechamel timings (per regeneration) ===\n%!";
  (* The representation pairs run first, on a quiet heap: the macro
     benchmarks (solver, mcheck) leave behind a large major heap whose
     collection overhead inflates these allocation-heavy sub-millisecond
     measurements several-fold if they run after. *)
  List.concat_map
    (fun test -> run_one ~domains test)
    (List.filter keep (rep_benchmarks @ benchmarks @ engine_baseline_benchmarks))

(* Seq/par A-B runs: re-measure each parallelized benchmark at the
   requested degree under a "-par" name; the baseline suite above
   already measured the same workload pinned to one domain. *)
let run_pairs ~domains () =
  if domains <= 1 then []
  else begin
    Printf.printf "\n=== parallel variants (--domains %d) ===\n%!" domains;
    List.concat_map
      (fun test ->
        List.map
          (fun (name, ns) -> name ^ "-par", ns)
          (run_one ~domains test))
      (List.filter
         (fun test -> keep test && List.mem (Test.name test) paired_names)
         benchmarks)
  end

(* The steal/level comparison needs both engines at the requested
   degree; at one domain both degenerate to sequential search, so the
   pair would measure nothing. *)
let run_engine_pairs ~domains () =
  if domains <= 1 then []
  else begin
    Printf.printf "\n=== exploration engines (--domains %d) ===\n%!" domains;
    List.concat_map
      (fun test -> run_one ~domains test)
      (List.filter keep engine_degree_benchmarks)
  end

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let rev = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when rev <> "" -> rev
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

(* Machine-readable perf snapshot (BENCH_<date>.json, schema
   asura-bench/3) so successive PRs can track the performance
   trajectory without re-parsing the text output.  v2 added the domain
   count, the git revision, and seq/par pairs with their speedups;
   baseline entries are measured pinned to one domain, "-par" entries
   at the requested degree.  v3 adds "representation": columnar vs
   list-of-rows timings of the same workload, with speedups. *)
let write_json ~domains measurements =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let pairs =
    List.filter_map
      (fun name ->
        match
          List.assoc_opt name measurements,
          List.assoc_opt (name ^ "-par") measurements
        with
        | Some seq_ns, Some par_ns ->
            Some
              (Obs.Json.Obj
                 [
                   "name", Obs.Json.Str name;
                   "seq_ns", Obs.Json.Float seq_ns;
                   "par_ns", Obs.Json.Float par_ns;
                   "domains", Obs.Json.Int domains;
                   "speedup", Obs.Json.Float (seq_ns /. par_ns);
                 ])
        | _ -> None)
      paired_names
  in
  (* engine A/B pairs ride the same array: "seq_ns" holds the reference
     side (boxed / level), "par_ns" the candidate (packed / steal) *)
  let pairs =
    pairs
    @ List.filter_map
        (fun (pname, ref_name, cand_name, d) ->
          match
            ( List.assoc_opt ref_name measurements,
              List.assoc_opt cand_name measurements )
          with
          | Some ref_ns, Some cand_ns ->
              Some
                (Obs.Json.Obj
                   [
                     "name", Obs.Json.Str pname;
                     "seq_ns", Obs.Json.Float ref_ns;
                     "par_ns", Obs.Json.Float cand_ns;
                     "domains", Obs.Json.Int d;
                     "speedup", Obs.Json.Float (ref_ns /. cand_ns);
                   ])
          | _ -> None)
        (engine_pair_specs ~domains)
  in
  let representation =
    List.filter_map
      (fun (name, _, _) ->
        match
          ( List.assoc_opt ("rep-" ^ name ^ "-columnar") measurements,
            List.assoc_opt ("rep-" ^ name ^ "-listrep") measurements )
        with
        | Some col_ns, Some list_ns ->
            Some
              (Obs.Json.Obj
                 [
                   "name", Obs.Json.Str name;
                   "columnar_ns", Obs.Json.Float col_ns;
                   "listrep_ns", Obs.Json.Float list_ns;
                   "speedup", Obs.Json.Float (list_ns /. col_ns);
                 ])
        | _ -> None)
      rep_workloads
  in
  (* Seq/par pairs where the parallel run is a slowdown (speedup < 1.0):
     surfaced both as a dedicated JSON array and as one-line warnings, so
     a CI log shows the regression without parsing the snapshot. *)
  let regressions =
    List.filter_map
      (fun name ->
        match
          List.assoc_opt name measurements,
          List.assoc_opt (name ^ "-par") measurements
        with
        | Some seq_ns, Some par_ns when seq_ns /. par_ns < 1.0 ->
            let speedup = seq_ns /. par_ns in
            (* stderr: with --json this must never interleave with the
               snapshot on stdout *)
            Printf.eprintf
              "WARNING: %s: parallel run is %.2fx the sequential time \
               (speedup %.2f < 1.0 at %d domains)\n"
              name (par_ns /. seq_ns) speedup domains;
            Some
              (Obs.Json.Obj
                 [
                   "name", Obs.Json.Str name;
                   "seq_ns", Obs.Json.Float seq_ns;
                   "par_ns", Obs.Json.Float par_ns;
                   "domains", Obs.Json.Int domains;
                   "speedup", Obs.Json.Float speedup;
                 ])
        | _ -> None)
      paired_names
  in
  let json =
    Obs.Json.Obj
      [
        "schema", Obs.Json.Str "asura-bench/3";
        "date", Obs.Json.Str date;
        "ocaml", Obs.Json.Str Sys.ocaml_version;
        "word_size", Obs.Json.Int Sys.word_size;
        "domains", Obs.Json.Int domains;
        "git_rev", Obs.Json.Str (git_rev ());
        ( "benchmarks",
          Obs.Json.List
            (List.map
               (fun (name, ns) ->
                 Obs.Json.Obj
                   [
                     "name", Obs.Json.Str name;
                     "ns_per_run", Obs.Json.Float ns;
                   ])
               measurements) );
        "pairs", Obs.Json.List pairs;
        "regressions", Obs.Json.List regressions;
        "representation", Obs.Json.List representation;
      ]
  in
  let file = Printf.sprintf "BENCH_%s.json" date in
  let oc = open_out file in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %d measurements to %s\n" (List.length measurements)
    file;
  if Obs.Runlog.configured () then
    Obs.Runlog.note "bench"
      (Obs.Json.Obj
         [
           "snapshot", Obs.Json.Str file;
           "measurements", Obs.Json.Int (List.length measurements);
           "pairs", Obs.Json.Int (List.length pairs);
           "regressions", Obs.Json.Int (List.length regressions);
         ])

let parse_domains () =
  let argv = Sys.argv in
  let domains = ref (Par.Pool.domains ()) in
  Array.iteri
    (fun i arg ->
      if arg = "--domains" && i + 1 < Array.length argv then
        match int_of_string_opt argv.(i + 1) with
        | Some n when n >= 1 -> domains := n
        | Some _ | None ->
            Printf.eprintf "bad --domains value %S\n" argv.(i + 1);
            exit 2)
    argv;
  !domains

(* --manifest [DIR]: persist an asura-run/1 manifest of this bench
   invocation (same flag the CLI takes; DIR defaults to "runs"). *)
let parse_manifest () =
  let argv = Sys.argv in
  let dir = ref None in
  Array.iteri
    (fun i arg ->
      if arg = "--manifest" then
        if
          i + 1 < Array.length argv
          && String.length argv.(i + 1) > 0
          && argv.(i + 1).[0] <> '-'
        then dir := Some argv.(i + 1)
        else dir := Some "runs")
    argv;
  !dir

let () =
  let json = Array.exists (( = ) "--json") Sys.argv in
  let domains = parse_domains () in
  (match parse_manifest () with
  | None -> ()
  | Some dir ->
      Obs.Config.enable ();
      Obs.Coverage.enable ();
      Obs.Runlog.configure ~dir ~cmd:"bench" ~argv:Sys.argv;
      Obs.Runlog.note "domains" (Obs.Json.Int domains);
      at_exit (fun () ->
          match Obs.Runlog.write () with
          | Some path -> Printf.eprintf "wrote run manifest to %s\n" path
          | None -> ()));
  Printf.printf "ASURA coherence-protocol design toolchain: benchmark suite\n";
  if json then begin
    (* machine-readable mode: micro-benchmarks only, plus the snapshot;
       the baseline suite is pinned to one domain so snapshots stay
       comparable across machines and settings *)
    let baseline = run_benchmarks ~domains:1 () in
    let measurements =
      baseline @ run_pairs ~domains () @ run_engine_pairs ~domains ()
    in
    write_json ~domains measurements
  end
  else begin
    Printf.printf "(reproduces every table/figure of the IPPS 2003 paper)\n";
    Experiments.run_all ();
    ignore (run_benchmarks ~domains ());
    ignore (run_pairs ~domains ());
    ignore (run_engine_pairs ~domains ())
  end
